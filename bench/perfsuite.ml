(* Fixed-seed performance + parity suite.

   Unlike the paper-figure experiments (which use Bechamel sampling and
   per-call fresh seeds), this suite runs every workload for a fixed
   iteration count from a fixed seed and reports wall time, executions/sec
   and shared-memory ops/sec — numbers that are comparable build-to-build
   on the same machine.  It also records the parity observables (buggy /
   racy execution counts, distinct races, total op counts, litmus outcome
   histograms): the hot-path optimisation work promises bit-for-bit
   identical fixed-seed outcomes, and diffing two runs of this suite is
   how that promise is checked (see README "Performance").

   `main.exe -- perf --json FILE` embeds the whole document under the
   "perf" key; BENCH_*.json files at the repo root are assembled from two
   such runs (pre- and post-optimisation). *)

let seed = 20260806L
let iters_ds = ref 400
let iters_app = ref 50
let iters_litmus = ref 2500

(* Campaign sharding (`--jobs N`).  The parity observables are
   bit-identical for every job count — only the wall times change — so
   jobs > 1 runs are diffable against the sequential baseline exactly
   like build-to-build comparisons. *)
let jobs = ref 1

let quick () =
  iters_ds := 20;
  iters_app := 3;
  iters_litmus := 150

(* The last document produced, picked up by main.ml's --json writer. *)
let last_doc : Jsonx.t option ref = ref None

type row = {
  r_name : string;
  r_iters : int;
  r_scale : int;
  r_wall : float;
  r_ops : int;
  r_buggy : int;
  r_racy : int;
  r_distinct : int;
  r_mean_steps : float;
  r_top_heap_words : int;  (* GC high-water after the campaign *)
  r_live_words : int;
}

let run_workload (w : Registry.t) ~iters =
  let config = Tool.config ~seed ~max_steps:150_000 Tool.C11tester in
  let s, wall =
    Stats.timed (fun () ->
        Tester.run_parallel ~jobs:!jobs ~config ~iters
          (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale))
  in
  (* memory high-water next to ops/s: Gc.stat is the expensive exact
     readout (live_words walks the heap), taken once per campaign after
     the timed region so it never perturbs the wall numbers *)
  let gc = Gc.stat () in
  let ops = s.Tester.total_atomic_ops + s.Tester.total_na_ops in
  {
    r_name = w.Registry.name;
    r_iters = iters;
    r_scale = w.Registry.default_scale;
    r_wall = wall;
    r_ops = ops;
    r_buggy = s.Tester.buggy_executions;
    r_racy = s.Tester.race_executions;
    r_distinct = List.length s.Tester.distinct_races;
    r_mean_steps = s.Tester.mean_steps;
    r_top_heap_words = gc.Gc.top_heap_words;
    r_live_words = gc.Gc.live_words;
  }

let row_to_json r =
  Jsonx.Obj
    [
      ("name", Jsonx.String r.r_name);
      ("iters", Jsonx.Int r.r_iters);
      ("scale", Jsonx.Int r.r_scale);
      ("wall_s", Jsonx.Float r.r_wall);
      ( "execs_per_s",
        Jsonx.Float (if r.r_wall > 0.0 then float_of_int r.r_iters /. r.r_wall else nan) );
      ( "ops_per_s",
        Jsonx.Float (if r.r_wall > 0.0 then float_of_int r.r_ops /. r.r_wall else nan) );
      ("total_ops", Jsonx.Int r.r_ops);
      ("buggy_executions", Jsonx.Int r.r_buggy);
      ("race_executions", Jsonx.Int r.r_racy);
      ("distinct_races", Jsonx.Int r.r_distinct);
      ("mean_steps", Jsonx.Float r.r_mean_steps);
      ("gc_top_heap_words", Jsonx.Int r.r_top_heap_words);
      ("gc_live_words", Jsonx.Int r.r_live_words);
    ]

(* Deterministically ordered litmus histogram: sorted by outcome, not by
   frequency, so the JSON is diffable across builds. *)
let litmus_row (t : Litmus.t) =
  let config = Tool.config ~seed Tool.C11tester in
  let hist, wall =
    Stats.timed (fun () ->
        Litmus.explore ~jobs:!jobs ~config ~iters:!iters_litmus t)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) hist in
  let weak = Litmus.weak_observed hist t in
  let violations = List.filter (fun (o, _) -> not (t.Litmus.allowed o)) hist in
  (t, sorted, weak, violations, wall)

let litmus_to_json (t, sorted, weak, violations, wall) =
  Jsonx.Obj
    [
      ("name", Jsonx.String t.Litmus.name);
      ("iters", Jsonx.Int !iters_litmus);
      ("wall_s", Jsonx.Float wall);
      ("weak_observed", Jsonx.Bool weak);
      ("violations", Jsonx.Int (List.length violations));
      ( "outcomes",
        Jsonx.List
          (List.map
             (fun (o, n) ->
               Jsonx.Obj
                 [
                   ( "outcome",
                     Jsonx.List (List.map (fun v -> Jsonx.Int v) o) );
                   ("count", Jsonx.Int n);
                 ])
             sorted) );
    ]

let run () =
  Bench_util.header
    (Printf.sprintf
       "Fixed-seed perf suite (seed %Ld%s): wall time, throughput and parity \
        observables per workload"
       seed
       (if !jobs > 1 then Printf.sprintf ", %d domains" !jobs else ""));
  Printf.printf "%-16s %6s %9s %10s %12s %6s %6s %5s\n" "workload" "iters"
    "wall" "execs/s" "ops/s" "buggy" "racy" "races";
  let rows =
    List.map
      (fun (w : Registry.t) ->
        let iters =
          match w.Registry.category with
          | Registry.Application -> !iters_app
          | Registry.Injected | Registry.Data_structure -> !iters_ds
        in
        let r = run_workload w ~iters in
        Printf.printf "%-16s %6d %9s %10.1f %12.0f %6d %6d %5d\n%!" r.r_name
          r.r_iters
          (Bench_util.pp_seconds r.r_wall)
          (float_of_int r.r_iters /. r.r_wall)
          (float_of_int r.r_ops /. r.r_wall)
          r.r_buggy r.r_racy r.r_distinct;
        Metrics.set_gauge Bench_util.metrics
          ("perf.wall_s." ^ r.r_name) r.r_wall;
        Metrics.set_gauge Bench_util.metrics
          ("perf.ops_per_s." ^ r.r_name)
          (float_of_int r.r_ops /. r.r_wall);
        r)
      Registry.all
  in
  let litmus = List.map litmus_row Litmus.catalog in
  let litmus_wall =
    List.fold_left (fun acc (_, _, _, _, w) -> acc +. w) 0.0 litmus
  in
  let total_wall =
    List.fold_left (fun acc r -> acc +. r.r_wall) litmus_wall rows
  in
  let total_ops = List.fold_left (fun acc r -> acc + r.r_ops) 0 rows in
  Printf.printf
    "litmus suite: %d tests in %s\ntotal: %s wall, %d ops (%.0f ops/s \
     aggregate)\n%!"
    (List.length litmus)
    (Bench_util.pp_seconds litmus_wall)
    (Bench_util.pp_seconds total_wall)
    total_ops
    (float_of_int total_ops /. total_wall);
  Metrics.set_gauge Bench_util.metrics "perf.total_wall_s" total_wall;
  Metrics.set_gauge Bench_util.metrics "perf.total_ops_per_s"
    (float_of_int total_ops /. total_wall);
  let gc = Gc.stat () in
  Printf.printf "memory high-water: %d top-heap words, %d live\n%!"
    gc.Gc.top_heap_words gc.Gc.live_words;
  Metrics.set_gauge Bench_util.metrics "perf.gc_top_heap_words"
    (float_of_int gc.Gc.top_heap_words);
  last_doc :=
    Some
      (Jsonx.Obj
         [
           ("schema", Jsonx.String "c11-perfsuite-v1");
           ("seed", Jsonx.String (Int64.to_string seed));
           ("jobs", Jsonx.Int !jobs);
           ("total_wall_s", Jsonx.Float total_wall);
           ("total_ops", Jsonx.Int total_ops);
           ( "total_ops_per_s",
             Jsonx.Float (float_of_int total_ops /. total_wall) );
           ("gc_top_heap_words", Jsonx.Int gc.Gc.top_heap_words);
           ("gc_live_words", Jsonx.Int gc.Gc.live_words);
           ("workloads", Jsonx.List (List.map row_to_json rows));
           ("litmus", Jsonx.List (List.map litmus_to_json litmus));
         ])
