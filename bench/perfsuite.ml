(* Fixed-seed performance + parity suite.

   Unlike the paper-figure experiments (which use Bechamel sampling and
   per-call fresh seeds), this suite runs every workload for a fixed
   iteration count from a fixed seed and reports wall time, executions/sec
   and shared-memory ops/sec — numbers that are comparable build-to-build
   on the same machine.  It also records the parity observables (buggy /
   racy execution counts, distinct races, total op counts, litmus outcome
   histograms): the hot-path optimisation work promises bit-for-bit
   identical fixed-seed outcomes, and diffing two runs of this suite is
   how that promise is checked (see README "Performance").

   `main.exe -- perf --json FILE` embeds the whole document under the
   "perf" key; BENCH_*.json files at the repo root are assembled from two
   such runs (pre- and post-optimisation). *)

let seed = 20260806L
let iters_ds = ref 400
let iters_app = ref 50
let iters_litmus = ref 2500
let cache_iters = ref 300

(* Campaign sharding (`--jobs N`).  The parity observables are
   bit-identical for every job count — only the wall times change — so
   jobs > 1 runs are diffable against the sequential baseline exactly
   like build-to-build comparisons. *)
let jobs = ref 1

(* Scale-tier shrink factor: quick mode divides the registry's paper-scale
   tier scales so CI smoke runs finish in seconds instead of minutes. *)
let scale_divisor = ref 1

let quick () =
  iters_ds := 20;
  iters_app := 3;
  iters_litmus := 150;
  scale_divisor := 200;
  cache_iters := 40

(* The last documents produced, picked up by main.ml's --json writer. *)
let last_doc : Jsonx.t option ref = ref None
let last_scale_doc : Jsonx.t option ref = ref None

type row = {
  r_name : string;
  r_iters : int;
  r_scale : int;
  r_wall : float;
  r_ops : int;
  r_buggy : int;
  r_racy : int;
  r_distinct : int;
  r_mean_steps : float;
  r_top_heap_words : int;  (* GC high-water after the campaign *)
  r_live_words : int;
}

let run_workload (w : Registry.t) ~iters =
  let config = Tool.config ~seed ~max_steps:150_000 Tool.C11tester in
  let s, wall =
    Stats.timed (fun () ->
        Tester.run_parallel ~jobs:!jobs ~config ~iters
          (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale))
  in
  (* memory high-water next to ops/s: Gc.stat is the expensive exact
     readout (live_words walks the heap), taken once per campaign after
     the timed region so it never perturbs the wall numbers *)
  let gc = Gc.stat () in
  let ops = s.Tester.total_atomic_ops + s.Tester.total_na_ops in
  {
    r_name = w.Registry.name;
    r_iters = iters;
    r_scale = w.Registry.default_scale;
    r_wall = wall;
    r_ops = ops;
    r_buggy = s.Tester.buggy_executions;
    r_racy = s.Tester.race_executions;
    r_distinct = List.length s.Tester.distinct_races;
    r_mean_steps = s.Tester.mean_steps;
    r_top_heap_words = gc.Gc.top_heap_words;
    r_live_words = gc.Gc.live_words;
  }

let row_to_json r =
  Jsonx.Obj
    [
      ("name", Jsonx.String r.r_name);
      ("iters", Jsonx.Int r.r_iters);
      ("scale", Jsonx.Int r.r_scale);
      ("wall_s", Jsonx.Float r.r_wall);
      ( "execs_per_s",
        Jsonx.Float (if r.r_wall > 0.0 then float_of_int r.r_iters /. r.r_wall else nan) );
      ( "ops_per_s",
        Jsonx.Float (if r.r_wall > 0.0 then float_of_int r.r_ops /. r.r_wall else nan) );
      ("total_ops", Jsonx.Int r.r_ops);
      ("buggy_executions", Jsonx.Int r.r_buggy);
      ("race_executions", Jsonx.Int r.r_racy);
      ("distinct_races", Jsonx.Int r.r_distinct);
      ("mean_steps", Jsonx.Float r.r_mean_steps);
      ("gc_top_heap_words", Jsonx.Int r.r_top_heap_words);
      ("gc_live_words", Jsonx.Int r.r_live_words);
    ]

(* Deterministically ordered litmus histogram: sorted by outcome, not by
   frequency, so the JSON is diffable across builds. *)
let litmus_row (t : Litmus.t) =
  let config = Tool.config ~seed Tool.C11tester in
  let hist, wall =
    Stats.timed (fun () ->
        Litmus.explore ~jobs:!jobs ~config ~iters:!iters_litmus t)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) hist in
  let weak = Litmus.weak_observed hist t in
  let violations = List.filter (fun (o, _) -> not (t.Litmus.allowed o)) hist in
  (t, sorted, weak, violations, wall)

let litmus_to_json (t, sorted, weak, violations, wall) =
  Jsonx.Obj
    [
      ("name", Jsonx.String t.Litmus.name);
      ("iters", Jsonx.Int !iters_litmus);
      ("wall_s", Jsonx.Float wall);
      ("weak_observed", Jsonx.Bool weak);
      ("violations", Jsonx.Int (List.length violations));
      ( "outcomes",
        Jsonx.List
          (List.map
             (fun (o, n) ->
               Jsonx.Obj
                 [
                   ( "outcome",
                     Jsonx.List (List.map (fun v -> Jsonx.Int v) o) );
                   ("count", Jsonx.Int n);
                 ])
             sorted) );
    ]

let run () =
  Bench_util.header
    (Printf.sprintf
       "Fixed-seed perf suite (seed %Ld%s): wall time, throughput and parity \
        observables per workload"
       seed
       (if !jobs > 1 then Printf.sprintf ", %d domains" !jobs else ""));
  Printf.printf "%-16s %6s %9s %10s %12s %6s %6s %5s\n" "workload" "iters"
    "wall" "execs/s" "ops/s" "buggy" "racy" "races";
  let rows =
    List.map
      (fun (w : Registry.t) ->
        let iters =
          match w.Registry.category with
          | Registry.Application -> !iters_app
          | Registry.Injected | Registry.Data_structure -> !iters_ds
        in
        let r = run_workload w ~iters in
        Printf.printf "%-16s %6d %9s %10.1f %12.0f %6d %6d %5d\n%!" r.r_name
          r.r_iters
          (Bench_util.pp_seconds r.r_wall)
          (float_of_int r.r_iters /. r.r_wall)
          (float_of_int r.r_ops /. r.r_wall)
          r.r_buggy r.r_racy r.r_distinct;
        Metrics.set_gauge Bench_util.metrics
          ("perf.wall_s." ^ r.r_name) r.r_wall;
        Metrics.set_gauge Bench_util.metrics
          ("perf.ops_per_s." ^ r.r_name)
          (float_of_int r.r_ops /. r.r_wall);
        r)
      Registry.all
  in
  let litmus = List.map litmus_row Litmus.catalog in
  let litmus_wall =
    List.fold_left (fun acc (_, _, _, _, w) -> acc +. w) 0.0 litmus
  in
  let total_wall =
    List.fold_left (fun acc r -> acc +. r.r_wall) litmus_wall rows
  in
  let total_ops = List.fold_left (fun acc r -> acc + r.r_ops) 0 rows in
  Printf.printf
    "litmus suite: %d tests in %s\ntotal: %s wall, %d ops (%.0f ops/s \
     aggregate)\n%!"
    (List.length litmus)
    (Bench_util.pp_seconds litmus_wall)
    (Bench_util.pp_seconds total_wall)
    total_ops
    (float_of_int total_ops /. total_wall);
  Metrics.set_gauge Bench_util.metrics "perf.total_wall_s" total_wall;
  Metrics.set_gauge Bench_util.metrics "perf.total_ops_per_s"
    (float_of_int total_ops /. total_wall);
  let gc = Gc.stat () in
  Printf.printf "memory high-water: %d top-heap words, %d live\n%!"
    gc.Gc.top_heap_words gc.Gc.live_words;
  Metrics.set_gauge Bench_util.metrics "perf.gc_top_heap_words"
    (float_of_int gc.Gc.top_heap_words);
  last_doc :=
    Some
      (Jsonx.Obj
         [
           ("schema", Jsonx.String "c11-perfsuite-v1");
           ("seed", Jsonx.String (Int64.to_string seed));
           ("jobs", Jsonx.Int !jobs);
           ("total_wall_s", Jsonx.Float total_wall);
           ("total_ops", Jsonx.Int total_ops);
           ( "total_ops_per_s",
             Jsonx.Float (float_of_int total_ops /. total_wall) );
           ("gc_top_heap_words", Jsonx.Int gc.Gc.top_heap_words);
           ("gc_live_words", Jsonx.Int gc.Gc.live_words);
           ("workloads", Jsonx.List (List.map row_to_json rows));
           ("litmus", Jsonx.List (List.map litmus_to_json litmus));
         ])

(* ---------- paper-scale tier ------------------------------------------ *)

(* Single executions in the 1M–10M-op range (Registry.scale_tier scales,
   aggressive pruning), measured three ways per workload:

     off      — certification disabled: the engine-only baseline
     stream   — streaming certification with hb-closed prefix retirement
                (the shipping default)
     posthoc  — the pre-streaming post-hoc certifier, at tier/64 scale
                only: it retains and re-walks the whole trace, so at full
                tier scale it is quadratically infeasible — which is
                precisely what the streaming rewrite removes

   Within one process `Gc.stat`'s top_heap_words is monotone, so the
   phases run in cost order (off rows first, then stream, then the small
   posthoc/stream pair): each row's high-water is dominated by its own
   phase or an earlier, strictly cheaper one.  Cross-process numbers for
   the trajectory file are taken from separate `c11test run --scale tier`
   invocations. *)

type scale_row = {
  s_name : string;
  s_mode : string;  (* off | stream | posthoc *)
  s_scale : int;
  s_steps : float;
  s_ops : int;
  s_wall : float;
  s_certified_ops : int;
  s_retired_ops : int;
  s_top_heap_words : int;
  s_live_words : int;
}

let scale_config ~certify ~stream =
  {
    (Tool.config ~seed
       ~prune:(Pruner.Aggressive { window = 4096; interval = 64 })
       ~max_steps:30_000_000 Tool.C11tester)
    with
    Engine.certify;
    cert_stream = stream;
  }

let run_scale_one (w : Registry.t) ~mode ~scale =
  let config =
    match mode with
    | "off" -> scale_config ~certify:false ~stream:true
    | "stream" -> scale_config ~certify:true ~stream:true
    | "posthoc" -> scale_config ~certify:true ~stream:false
    | m -> invalid_arg ("run_scale_one: unknown mode " ^ m)
  in
  Gc.compact ();
  let s, wall =
    Stats.timed (fun () ->
        Tester.run ~config ~iters:1
          (w.Registry.run ~variant:Variant.Correct ~scale))
  in
  let gc = Gc.stat () in
  {
    s_name = w.Registry.name;
    s_mode = mode;
    s_scale = scale;
    s_steps = s.Tester.mean_steps;
    s_ops = s.Tester.total_atomic_ops + s.Tester.total_na_ops;
    s_wall = wall;
    s_certified_ops = s.Tester.certified_ops;
    s_retired_ops = s.Tester.retired_prefix_ops;
    s_top_heap_words = gc.Gc.top_heap_words;
    s_live_words = gc.Gc.live_words;
  }

let scale_row_to_json r =
  Jsonx.Obj
    [
      ("name", Jsonx.String r.s_name);
      ("mode", Jsonx.String r.s_mode);
      ("scale", Jsonx.Int r.s_scale);
      ("steps", Jsonx.Float r.s_steps);
      ("total_ops", Jsonx.Int r.s_ops);
      ("wall_s", Jsonx.Float r.s_wall);
      ( "ops_per_s",
        Jsonx.Float
          (if r.s_wall > 0.0 then float_of_int r.s_ops /. r.s_wall else nan)
      );
      ("certified_ops", Jsonx.Int r.s_certified_ops);
      ("retired_prefix_ops", Jsonx.Int r.s_retired_ops);
      ("gc_top_heap_words", Jsonx.Int r.s_top_heap_words);
      ("gc_live_words", Jsonx.Int r.s_live_words);
    ]

let print_scale_row r =
  Printf.printf "%-12s %-8s %8d %9.0f %9s %12.0f %11d %11d %9.1fMw\n%!"
    r.s_name r.s_mode r.s_scale r.s_steps
    (Bench_util.pp_seconds r.s_wall)
    (if r.s_wall > 0.0 then float_of_int r.s_ops /. r.s_wall else nan)
    r.s_certified_ops r.s_retired_ops
    (float_of_int r.s_top_heap_words /. 1e6)

let run_scale () =
  Bench_util.header
    (Printf.sprintf
       "Paper-scale tier (seed %Ld%s): single 1M-10M-op executions, \
        aggressive pruning; certification off vs streaming, plus a \
        post-hoc point at tier/64 where the old certifier is still \
        feasible"
       seed
       (if !scale_divisor > 1 then
          Printf.sprintf ", scales divided by %d (quick)" !scale_divisor
        else ""));
  let tier = Registry.scale_tier in
  let tier_scale w =
    match w.Registry.scale_tier with
    | Some s -> max 50 (s / !scale_divisor)
    | None -> assert false
  in
  Printf.printf "%-12s %-8s %8s %9s %9s %12s %11s %11s %9s\n" "workload"
    "mode" "scale" "steps" "wall" "ops/s" "certified" "retired" "top-heap";
  let row w ~mode ~scale =
    let r = run_scale_one w ~mode ~scale in
    print_scale_row r;
    Metrics.set_gauge Bench_util.metrics
      (Printf.sprintf "scale.wall_s.%s.%s" r.s_name r.s_mode)
      r.s_wall;
    r
  in
  (* off rows first: top_heap_words is monotone within the process *)
  let off = List.map (fun w -> row w ~mode:"off" ~scale:(tier_scale w)) tier in
  let stream =
    List.map (fun w -> row w ~mode:"stream" ~scale:(tier_scale w)) tier
  in
  (* pre/post pair at a size where the post-hoc certifier is feasible *)
  let curve =
    List.concat_map
      (fun w ->
        let scale = max 50 (tier_scale w / 64) in
        let posthoc = row w ~mode:"posthoc" ~scale in
        let stream = row w ~mode:"stream" ~scale in
        [ posthoc; stream ])
      tier
  in
  List.iter2
    (fun o s ->
      Printf.printf
        "%-12s streaming overhead %.2fx wall, retirement %.1f%% of \
         certified ops\n%!"
        o.s_name
        (s.s_wall /. o.s_wall)
        (if s.s_certified_ops > 0 then
           100.0 *. float_of_int s.s_retired_ops
           /. float_of_int s.s_certified_ops
         else nan))
    off stream;
  last_scale_doc :=
    Some
      (Jsonx.Obj
         [
           ("schema", Jsonx.String "c11-scaletier-v1");
           ("seed", Jsonx.String (Int64.to_string seed));
           ("scale_divisor", Jsonx.Int !scale_divisor);
           ("rows", Jsonx.List (List.map scale_row_to_json (off @ stream)));
           ("posthoc_curve", Jsonx.List (List.map scale_row_to_json curve));
         ])

(* ---------- result cache: cold vs warm campaign replay ----------------- *)

(* The multi-process fabric's content-addressed cache (lib/svc) promises
   that a warm re-run of an identical campaign spawns no workers and
   performs zero engine executions.  This experiment measures what that
   buys: the same fixed-seed campaign run twice against one cache
   directory — cold (populating) then warm (replaying) — reporting both
   walls, the speedup and the hit rate, and checking the replayed summary
   is byte-identical to the computed one. *)

let last_cache_doc : Jsonx.t option ref = ref None
let cache_workloads = [ "ms-queue"; "seqlock"; "chase-lev-deque" ]

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

type cache_row = {
  c_name : string;
  c_iters : int;
  c_cold_wall : float;
  c_warm_wall : float;
  c_hits : int;
  c_stores : int;
  c_warm_executions : int;
  c_parity : bool;  (* warm merged summary byte-identical to cold *)
}

let cache_row_to_json r =
  Jsonx.Obj
    [
      ("name", Jsonx.String r.c_name);
      ("iters", Jsonx.Int r.c_iters);
      ("cold_wall_s", Jsonx.Float r.c_cold_wall);
      ("warm_wall_s", Jsonx.Float r.c_warm_wall);
      ( "warm_speedup",
        Jsonx.Float
          (if r.c_warm_wall > 0.0 then r.c_cold_wall /. r.c_warm_wall else nan)
      );
      ("warm_hits", Jsonx.Int r.c_hits);
      ("cold_stores", Jsonx.Int r.c_stores);
      ( "warm_hit_rate",
        Jsonx.Float
          (if r.c_stores > 0 then
             float_of_int r.c_hits /. float_of_int r.c_stores
           else nan) );
      ("warm_executions", Jsonx.Int r.c_warm_executions);
      ("parity", Jsonx.Bool r.c_parity);
    ]

let run_cache_one ~exe (w : Registry.t) =
  let iters = !cache_iters in
  let campaign =
    Svc.Run_c
      {
        workload = w.Registry.name;
        buggy = true;
        scale = w.Registry.default_scale;
        config = Tool.config ~seed ~max_steps:150_000 Tool.C11tester;
        iters;
      }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "c11bench_cache_%d_%s" (Unix.getpid ()) w.Registry.name)
  in
  rm_rf dir;
  let open_cache () =
    match Cache.open_dir dir with
    | Ok c -> c
    | Error msg -> failwith (Printf.sprintf "cache dir %s: %s" dir msg)
  in
  let campaign_run cache =
    match Svc.run_campaign ~exe ~cache ~workers:2 ~jobs:1 campaign with
    | Ok (Svc.M_run s, st) -> (s, st)
    | Ok _ -> failwith "unexpected merged payload"
    | Error msg -> failwith ("campaign fabric: " ^ msg)
  in
  let cold_cache = open_cache () in
  let (cold_summary, cold_st), cold_wall =
    Stats.timed (fun () -> campaign_run cold_cache)
  in
  let warm_cache = open_cache () in
  let (warm_summary, warm_st), warm_wall =
    Stats.timed (fun () -> campaign_run warm_cache)
  in
  rm_rf dir;
  let render s = Jsonx.to_string (Tester.summary_to_json s) in
  let cold_stats = Option.get cold_st.Svc.st_cache in
  let warm_stats = Option.get warm_st.Svc.st_cache in
  {
    c_name = w.Registry.name;
    c_iters = iters;
    c_cold_wall = cold_wall;
    c_warm_wall = warm_wall;
    c_hits = warm_stats.Cache.hits;
    c_stores = cold_stats.Cache.stores;
    c_warm_executions = warm_st.Svc.st_executions_run;
    c_parity = render cold_summary = render warm_summary;
  }

let run_cache () =
  Bench_util.header
    (Printf.sprintf
       "Result cache (seed %Ld): identical fixed-seed campaigns, cold \
        (computing + populating) vs warm (replaying from the \
        content-addressed cache, zero engine executions)"
       seed);
  match Svc.locate_exe () with
  | None ->
    print_endline "c11test binary not found next to the harness; skipping"
  | Some exe ->
    Printf.printf "%-16s %6s %10s %10s %9s %6s %7s\n" "workload" "iters"
      "cold" "warm" "speedup" "hits" "parity";
    let rows =
      List.map
        (fun name ->
          let w =
            match Registry.find name with
            | Some w -> w
            | None -> failwith ("unknown workload " ^ name)
          in
          let r = run_cache_one ~exe w in
          Printf.printf "%-16s %6d %10s %10s %8.1fx %6d %7s\n%!" r.c_name
            r.c_iters
            (Bench_util.pp_seconds r.c_cold_wall)
            (Bench_util.pp_seconds r.c_warm_wall)
            (if r.c_warm_wall > 0.0 then r.c_cold_wall /. r.c_warm_wall
             else nan)
            r.c_hits
            (if r.c_parity then "ok" else "MISMATCH");
          Metrics.set_gauge Bench_util.metrics
            ("cache.cold_wall_s." ^ r.c_name) r.c_cold_wall;
          Metrics.set_gauge Bench_util.metrics
            ("cache.warm_wall_s." ^ r.c_name) r.c_warm_wall;
          r)
        cache_workloads
    in
    last_cache_doc :=
      Some
        (Jsonx.Obj
           [
             ("schema", Jsonx.String "c11-cachebench-v1");
             ("seed", Jsonx.String (Int64.to_string seed));
             ("workers", Jsonx.Int 2);
             ("rows", Jsonx.List (List.map cache_row_to_json rows));
           ])
