(* Shared helpers for the benchmark harness: Bechamel-based per-run time
   estimation and table formatting. *)

let quota = ref 0.4 (* seconds of sampling per Bechamel measurement *)

(* Shared C11obs registry.  Experiments record their headline numbers
   here (plus the engine's own counters, via [detection_rate]), and
   `main.exe --json FILE` dumps the whole registry in the same schema as
   `c11test run --json`. *)
let metrics = Metrics.create ()

(* Estimate the wall-clock seconds one call of [f] takes, by OLS over
   Bechamel samples. *)
let seconds_per_run ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second !quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let estimates = Hashtbl.fold (fun _ v acc -> v :: acc) results [] in
  let s =
    match estimates with
    | [ est ] -> (
      match Analyze.OLS.estimates est with
      | Some (ns :: _) -> ns /. 1e9
      | Some [] | None -> nan)
    | _ -> nan
  in
  if not (Float.is_nan s) then
    Metrics.set_gauge metrics ("bench.seconds_per_run." ^ name) s;
  s

(* One execution of a workload under a tool, with a per-call fresh seed. *)
let workload_runner ?(max_steps = 400_000) ~tool ~variant ~scale
    (w : Registry.t) =
  let config = Tool.config ~max_steps tool in
  let seeder = Rng.create 424242L in
  fun () ->
    let seed = Rng.next_int64 seeder in
    ignore (Engine.run { config with Engine.seed } (w.Registry.run ~variant ~scale))

let detection_rate ?(max_steps = 150_000) ~tool ~iters ~variant ~scale
    (w : Registry.t) =
  let config = Tool.config ~max_steps tool in
  let s = Tester.run ~metrics ~config ~iters (w.Registry.run ~variant ~scale) in
  let rate = Tester.detection_rate s in
  Metrics.set_gauge metrics
    (Printf.sprintf "bench.detection_rate.%s.%s" w.Registry.name
       (Tool.name tool))
    rate;
  (rate, s)

let hr () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  hr ();
  Printf.printf "%s\n" title;
  hr ()

let pp_seconds s =
  if Float.is_nan s then "n/a"
  else if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let find_workload name =
  match Registry.find name with
  | Some w -> w
  | None -> failwith ("unknown workload " ^ name)
