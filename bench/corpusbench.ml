(* Corpus coverage-gain experiment.

   The experiment lib/corpus exists for, recorded as a bench number: in
   a saturating generator regime (tiny 2-thread / 2-op programs, so
   blind generation keeps re-hitting known execution shapes), a
   coverage-guided corpus campaign reaches strictly more distinct
   C11cov shapes than blind generation at the same program budget.
   Both campaigns are pure functions of the fixed seed, so the gain is
   reproducible build-to-build; the same regime is asserted (guided >
   blind) in test/test_corpus.ml. *)

let seed = 1L
let programs = ref 2_000
let quick () = programs := 600

(* The last document produced, picked up by main.ml's --json writer. *)
let last_doc : Jsonx.t option ref = ref None

let tiny_gen = { Fuzz.default_gen_cfg with Fuzz.g_threads = 2; g_ops = 2 }

let base_cfg () =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = !programs;
    c_seed = seed;
    c_jobs = !Perfsuite.jobs;
    c_gen = tiny_gen;
  }

let run_campaign cfg =
  let t0 = Unix.gettimeofday () in
  let report = Fuzz.campaign ~coverage:true cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let shapes =
    match report.Fuzz.r_coverage with
    | Some c -> Cov.distinct_shapes c
    | None -> 0
  in
  (report, shapes, wall)

let row name report shapes wall =
  let mutated, admitted =
    match report.Fuzz.r_corpus with
    | Some k -> (k.Fuzz.k_mutated, List.length k.Fuzz.k_admitted)
    | None -> (0, 0)
  in
  Printf.printf "%-10s %9.2fs %10d %10d %10d\n" name wall shapes mutated
    admitted;
  ( name,
    Jsonx.Obj
      [
        ("wall_s", Jsonx.Float wall);
        ("distinct_shapes", Jsonx.Int shapes);
        ("mutated", Jsonx.Int mutated);
        ("admitted", Jsonx.Int admitted);
      ] )

let run () =
  Printf.printf
    "\n== corpus: coverage gain over blind generation (%d programs, seed %Ld%s) ==\n"
    !programs seed
    (if !Perfsuite.jobs > 1 then Printf.sprintf ", %d domains" !Perfsuite.jobs
     else "");
  Printf.printf "%-10s %10s %10s %10s %10s\n" "campaign" "wall" "shapes"
    "mutated" "admitted";
  let blind_report, blind_shapes, blind_wall = run_campaign (base_cfg ()) in
  let blind_row = row "blind" blind_report blind_shapes blind_wall in
  let guided_report, guided_shapes, guided_wall =
    run_campaign { (base_cfg ()) with Fuzz.c_corpus = Some (Corpus.plan []) }
  in
  let guided_row = row "guided" guided_report guided_shapes guided_wall in
  let gain = guided_shapes - blind_shapes in
  Printf.printf "coverage gain: %+d distinct shapes (guided - blind)\n" gain;
  if !programs >= 2_000 && gain <= 0 then
    Printf.printf
      "  ** regression: corpus-guided campaign no longer beats blind **\n";
  last_doc :=
    Some
      (Jsonx.Obj
         [
           ("programs", Jsonx.Int !programs);
           ("seed", Jsonx.Int (Int64.to_int seed));
           ("jobs", Jsonx.Int !Perfsuite.jobs);
           ("gain", Jsonx.Int gain);
           ("campaigns", Jsonx.Obj [ blind_row; guided_row ]);
         ])
