(* Fuzzing throughput bench.

   Fixed-seed fuzz campaigns per generation profile, reporting wall
   time, programs/sec (from the fuzz_execute profiling span, the same
   readout the CLI prints), certification rate and generated-op volume —
   plus a mutant-detection latency row: how many programs the
   certifier-backed oracle needs before it catches each seeded engine
   fault.  Numbers are comparable build-to-build on one machine, like
   the perf suite's. *)

let seed = 20260806L
let programs = ref 2_000
let quick () = programs := 300

(* The last document produced, picked up by main.ml's --json writer. *)
let last_doc : Jsonx.t option ref = ref None

let campaign_cfg ?(mutation = None) ?(programs = !programs) profile =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = programs;
    c_seed = seed;
    c_jobs = !Perfsuite.jobs;
    c_gen = { Fuzz.default_gen_cfg with Fuzz.g_profile = profile };
    c_mutation = mutation;
  }

let run_profile profile =
  let prof = Profile.create () in
  let t0 = Unix.gettimeofday () in
  let report = Fuzz.campaign ~profile:prof (campaign_cfg profile) in
  let wall = Unix.gettimeofday () -. t0 in
  (* exact GC readout after the timed region (see perfsuite.ml) *)
  let gc = Gc.stat () in
  (report, prof, wall, gc)

(* Lowest finding index + 1 = programs the campaign needed to see the
   fault; the shards make this jobs-independent. *)
let detection_budget mutation =
  let report =
    Fuzz.campaign (campaign_cfg ~mutation:(Some mutation) ~programs:500 Fuzz.Mixed)
  in
  match report.Fuzz.r_findings with
  | [] -> None
  | f :: _ -> Some (f.Fuzz.f_index + 1, List.length report.Fuzz.r_findings)

let run () =
  Printf.printf "\n== fuzz: differential campaign throughput (%d programs, seed %Ld%s) ==\n"
    !programs seed
    (if !Perfsuite.jobs > 1 then Printf.sprintf ", %d domains" !Perfsuite.jobs
     else "");
  Printf.printf "%-18s %10s %12s %12s %10s %10s\n" "profile" "wall" "prog/s"
    "exec prog/s" "certified" "gen ops";
  let rows =
    List.map
      (fun profile ->
        let report, prof, wall, gc = run_profile profile in
        let exec_rate = Profile.rate prof "fuzz_execute" in
        let overall = float_of_int report.Fuzz.r_programs /. wall in
        Printf.printf "%-18s %9.2fs %12.0f %12.0f %10d %10d\n"
          (Fuzz.profile_name profile)
          wall overall
          (if Float.is_nan exec_rate then 0.0 else exec_rate)
          report.Fuzz.r_certified report.Fuzz.r_gen_ops;
        if report.Fuzz.r_cert_rejected > 0 || report.Fuzz.r_crashes > 0 then
          Printf.printf "  ** %d rejections, %d crashes on the clean engine **\n"
            report.Fuzz.r_cert_rejected report.Fuzz.r_crashes;
        ( Fuzz.profile_name profile,
          Jsonx.Obj
            [
              ("wall_s", Jsonx.Float wall);
              ("programs_per_s", Jsonx.Float overall);
              ("exec_programs_per_s", Jsonx.Float exec_rate);
              ("certified", Jsonx.Int report.Fuzz.r_certified);
              ("cert_rejected", Jsonx.Int report.Fuzz.r_cert_rejected);
              ("crashes", Jsonx.Int report.Fuzz.r_crashes);
              ("generated_ops", Jsonx.Int report.Fuzz.r_gen_ops);
              ("gc_top_heap_words", Jsonx.Int gc.Gc.top_heap_words);
              ("gc_live_words", Jsonx.Int gc.Gc.live_words);
            ] ))
      Fuzz.all_profiles
  in
  Printf.printf "\n%-22s %18s %10s\n" "mutant" "detected after" "findings";
  let mutants =
    List.map
      (fun m ->
        let name = Execution.mutation_name m in
        match detection_budget m with
        | Some (budget, findings) ->
          Printf.printf "%-22s %14d pgms %10d\n" name budget findings;
          (name, Jsonx.Obj [ ("programs", Jsonx.Int budget); ("findings", Jsonx.Int findings) ])
        | None ->
          Printf.printf "%-22s %18s %10d\n" name "NOT DETECTED" 0;
          (name, Jsonx.Null))
      Execution.all_mutations
  in
  last_doc :=
    Some
      (Jsonx.Obj
         [
           ("programs", Jsonx.Int !programs);
           ("jobs", Jsonx.Int !Perfsuite.jobs);
           ("profiles", Jsonx.Obj rows);
           ("mutants", Jsonx.Obj mutants);
         ])
