(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation:

     dune exec bench/main.exe                 # everything (full run)
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --quick      # smaller iteration counts
     dune exec bench/main.exe -- --json F     # also dump metrics as JSON
     dune exec bench/main.exe -- --jobs N perf  # shard perf campaigns

   Experiment ids: fig4 fig14 sec8_1 table1 fig15 table2 fig16 table3
   table4 prune sched perf scale cache fuzz corpus. *)

let experiments : (string * (unit -> unit)) list =
  [
    ("fig4", Experiments.fig4);
    ("fig14", Fig14.run);
    ("sec8_1", Experiments.sec8_1);
    ("table1", Experiments.table1);
    ("fig15", Experiments.fig15);
    ("table2", Experiments.table2);
    ("fig16", Experiments.fig16);
    ("table3", Experiments.table3);
    ("table4", Experiments.table4);
    ("prune", Experiments.prune);
    ("sched", Experiments.sched);
    ("perf", Perfsuite.run);
    ("scale", Perfsuite.run_scale);
    ("cache", Perfsuite.run_cache);
    ("fuzz", Fuzzbench.run);
    ("corpus", Corpusbench.run);
  ]

let usage () =
  Printf.printf
    "usage: main.exe [--quick] [--json FILE] [--jobs N] [experiment ...]\n\
     experiments:\n";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) experiments

(* Extract "--json FILE" from the argument list, returning the file (if
   any) and the remaining arguments. *)
let rec take_json = function
  | [] -> (None, [])
  | "--json" :: file :: rest ->
    let _, rest = take_json rest in
    (Some file, rest)
  | a :: rest ->
    let json, rest = take_json rest in
    (json, a :: rest)

(* Same shape for "--jobs N" (perf-suite campaign sharding). *)
let rec take_jobs = function
  | [] -> (None, [])
  | "--jobs" :: n :: rest ->
    let _, rest = take_jobs rest in
    (int_of_string_opt n, rest)
  | a :: rest ->
    let jobs, rest = take_jobs rest in
    (jobs, a :: rest)

let write_json ~quick ~todo path =
  let perf =
    match !Perfsuite.last_doc with
    | Some doc -> [ ("perf", doc) ]
    | None -> []
  in
  let perf =
    perf
    @
    match !Perfsuite.last_scale_doc with
    | Some doc -> [ ("scale", doc) ]
    | None -> []
  in
  let perf =
    perf
    @
    match !Perfsuite.last_cache_doc with
    | Some doc -> [ ("cache", doc) ]
    | None -> []
  in
  let perf =
    perf
    @
    match !Fuzzbench.last_doc with
    | Some doc -> [ ("fuzz", doc) ]
    | None -> []
  in
  let perf =
    perf
    @
    match !Corpusbench.last_doc with
    | Some doc -> [ ("corpus", doc) ]
    | None -> []
  in
  let doc =
    Jsonx.Obj
      ([
         ("schema", Jsonx.String "c11obs-bench-v1");
         ("quick", Jsonx.Bool quick);
         ( "experiments",
           Jsonx.List (List.map (fun (n, _) -> Jsonx.String n) todo) );
         ("metrics", Metrics.to_json Bench_util.metrics);
       ]
      @ perf)
  in
  let write oc =
    output_string oc (Jsonx.to_pretty_string doc);
    output_char oc '\n'
  in
  if path = "-" then write stdout
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json, args = take_json args in
  let jobs, args = take_jobs args in
  Option.iter
    (fun j -> Perfsuite.jobs := if j <= 0 then Par.available_jobs () else j)
    jobs;
  let quick = List.mem "--quick" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if quick then begin
    Experiments.table2_iters := 150;
    Experiments.sec81_iters := 300;
    Experiments.table1_runs := 5;
    Bench_util.quota := 0.2;
    Perfsuite.quick ();
    Fuzzbench.quick ();
    Corpusbench.quick ()
  end;
  if List.mem "--help" args then usage ()
  else begin
    let todo =
      match selected with
      | [] -> experiments
      | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
              usage ();
              failwith ("unknown experiment " ^ n))
          names
    in
    Printf.printf
      "C11Tester reproduction benchmark harness (%d experiments%s)\n"
      (List.length todo)
      (if quick then ", quick mode" else "");
    List.iter (fun (_, f) -> f ()) todo;
    Option.iter (write_json ~quick ~todo) json
  end
