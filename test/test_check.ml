(* The axiomatic certifier (lib/check).

   Positive direction: engine-produced executions — litmus programs,
   mutex/condvar synchronisation, pruned runs — must certify, and the
   campaign counters must agree across job counts.

   Negative direction (mutation self-tests): corrupt a recorded execution
   — drop a synchronizes-with edge, flip or drop an mo edge, rewire a
   reads-from, break an rmw link — and the certifier must reject it with
   a structured counterexample naming the right axiom.  These mutations
   are exactly the silent-model-bug classes the certifier exists to
   catch; if one stops being rejected, the certifier has gone blind. *)

let check = Alcotest.(check bool)

(* ---------- direct Execution-API harness for mutations ---------- *)

let mk_exec () =
  let rng = Rng.create 7L in
  let race = Race.create () in
  Execution.create ~certify:true ~mode:Execution.Full_c11 ~rng ~race ()

(* Parent stores, spawned child relaxed-loads: the spawn edge is the ONLY
   thing ordering the two actions in certified hb (a relaxed read forms no
   synchronizes-with of its own), so dropping it must show up. *)
let build_mp () =
  let t = mk_exec () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Release ~volatile:false
    1;
  let t1 = Execution.new_thread t ~parent:(Some t0) in
  let v =
    Execution.atomic_load t ~tid:t1 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
  in
  check "mp read the store" true (v = 1);
  t

let axioms_of = function
  | Check.Rejected vs -> List.map (fun v -> v.Check.axiom) vs
  | Check.Certified _ | Check.Not_applicable _ -> []

let rejected_with verdict axiom =
  match verdict with
  | Check.Rejected vs ->
    List.exists
      (fun v -> v.Check.axiom = axiom && v.Check.detail <> "")
      vs
  | Check.Certified _ | Check.Not_applicable _ -> false

let test_positive_direct () =
  match Check.certify (build_mp ()) with
  | Check.Certified s ->
    check "two actions" true (s.Check.actions = 2);
    check "spawn edge recorded" true (s.Check.sync_edges = 1);
    check "graph checked" true s.Check.graph_checked
  | v -> Alcotest.failf "expected Certified, got %a" Check.pp_verdict v

let test_not_applicable_off () =
  let rng = Rng.create 7L in
  let race = Race.create () in
  let t = Execution.create ~mode:Execution.Full_c11 ~rng ~race () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    1;
  match Check.certify t with
  | Check.Not_applicable _ -> ()
  | v -> Alcotest.failf "expected Not_applicable, got %a" Check.pp_verdict v

(* Mutation: drop the spawn synchronizes-with edge.  The engine's clock
   vectors still order store before load; the certified hb no longer does
   — the differential must catch the disagreement. *)
let test_mutation_drop_sw () =
  let t = build_mp () in
  t.Execution.cert_sync_rev <- [];
  let v = Check.certify t in
  check "rejected" true (rejected_with v Check.Hb_differential);
  (match v with
  | Check.Rejected (first :: _) ->
    check "counterexample names actions" true (first.Check.actions <> [])
  | _ -> Alcotest.fail "expected violations")

(* Mutation: rewire a load's reads-from to a store of a different value. *)
let test_mutation_rewire_rf () =
  let t = mk_exec () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Release ~volatile:false
    1;
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Release ~volatile:false
    2;
  let t1 = Execution.new_thread t ~parent:(Some t0) in
  let v =
    Execution.atomic_load t ~tid:t1 ~loc:x ~mo:Memorder.Acquire ~volatile:false
  in
  let trace = Execution.cert_trace t in
  let load =
    List.find (fun (a : Action.t) -> a.kind = Action.Load) trace
  in
  let other =
    List.find
      (fun (a : Action.t) -> a.kind = Action.Store && a.value <> v)
      trace
  in
  load.Action.rf <- Some other;
  check "rejected: rf-wf" true (rejected_with (Check.certify t) Check.Rf_wf)

(* Mutation: reverse an mo edge behind the engine's back (writing the
   node's edge array directly, so the clock vectors are NOT updated).
   Both the per-location coherence cycle and the Theorem-1 differential
   see the corruption. *)
let test_mutation_flip_mo () =
  let t = mk_exec () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    1;
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    2;
  let trace = Execution.cert_trace t in
  let s1 = List.nth trace 0 and s2 = List.nth trace 1 in
  let n1 = Option.get (Mograph.find_node t.Execution.graph s1) in
  let n2 = Option.get (Mograph.find_node t.Execution.graph s2) in
  check "sanity: s1 -mo-> s2" true (Mograph.reaches t.Execution.graph s1 s2);
  n2.Mograph.edges <- [| n1 |];
  n2.Mograph.nedges <- 1;
  let v = Check.certify t in
  check "rejected: coherence cycle" true (rejected_with v Check.Coherence)

(* Mutation: drop an mo edge (same-thread writes must stay mo-ordered).
   A merely-missing edge creates no cycle, so this exercises the CoWW
   completeness obligation and the Theorem-1 differential instead. *)
let test_mutation_drop_mo () =
  let t = mk_exec () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    1;
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    2;
  let trace = Execution.cert_trace t in
  let s1 = List.nth trace 0 in
  let n1 = Option.get (Mograph.find_node t.Execution.graph s1) in
  n1.Mograph.nedges <- 0;
  let v = Check.certify t in
  check "rejected" true (axioms_of v <> []);
  check "CoWW or Theorem-1 names it" true
    (rejected_with v Check.Coherence
    || rejected_with v Check.Theorem1_differential)

(* Mutation: sever the rmw link that pins an RMW immediately after the
   store it read. *)
let test_mutation_break_rmw () =
  let t = mk_exec () in
  let t0 = Execution.new_thread t ~parent:None in
  let x = Execution.fresh_loc t ~atomic:true ~name:(Some "x") in
  Execution.atomic_store t ~tid:t0 ~loc:x ~mo:Memorder.Relaxed ~volatile:false
    1;
  let read =
    Execution.atomic_rmw t ~tid:t0 ~loc:x ~mo:Memorder.Acq_rel ~volatile:false
      ~f:(fun v -> Execution.Rmw_write (v + 1))
  in
  check "rmw read the store" true (read = 1);
  let trace = Execution.cert_trace t in
  let s = List.nth trace 0 in
  let ns = Option.get (Mograph.find_node t.Execution.graph s) in
  ns.Mograph.rmw <- None;
  check "rejected: rmw-atomicity" true
    (rejected_with (Check.certify t) Check.Rmw_atomicity)

(* Mutation: malformed synchronisation edge (unknown thread). *)
let test_mutation_bad_edge () =
  let t = build_mp () in
  Execution.cert_sync_edge t ~from_tid:99 ~from_seq:1 ~to_tid:0 ~to_seq:2;
  check "rejected: sync-wf" true
    (rejected_with (Check.certify t) Check.Sync_wf)

(* ---------- violation plumbing ---------- *)

let test_violation_key_strips_seqs () =
  let v1 =
    { Check.axiom = Check.Coherence; actions = [ 3; 7 ];
      detail = "loc 2: CoWW incomplete — write #3 happens before write #7" }
  in
  let v2 =
    { Check.axiom = Check.Coherence; actions = [ 10; 52 ];
      detail = "loc 2: CoWW incomplete — write #10 happens before write #52" }
  in
  let v3 = { v1 with detail = "loc 9: CoWW incomplete — write #3 happens before write #7" } in
  check "same shape, same key" true
    (Check.violation_key v1 = Check.violation_key v2);
  check "different loc, different key" true
    (Check.violation_key v1 <> Check.violation_key v3)

let test_verdict_json () =
  let v = Check.certify (build_mp ()) in
  match Check.verdict_to_json v with
  | Jsonx.Obj fields ->
    check "verdict field" true
      (List.assoc_opt "verdict" fields = Some (Jsonx.String "certified"))
  | _ -> Alcotest.fail "expected object"

(* ---------- engine-driven positive campaigns ---------- *)

let certify_config seed =
  { Engine.default_config with certify = true; seed }

let test_certify_litmus_campaign () =
  let t = Option.get (Litmus.find "mp_fences") in
  let config = certify_config 11L in
  let summary, _ = Litmus.explore_summary ~config ~iters:60 t in
  check "all certified" true
    (summary.Tester.certified_executions = 60
    && summary.Tester.cert_rejected_executions = 0)

let test_certify_parallel_parity () =
  let t = Option.get (Litmus.find "release_sequence_rmw") in
  let config = certify_config 13L in
  let s1, h1 = Litmus.explore_summary ~jobs:1 ~config ~iters:80 t in
  let s4, h4 = Litmus.explore_summary ~jobs:4 ~config ~iters:80 t in
  check "summaries identical" true (s1 = s4);
  check "histograms identical" true (h1 = h4);
  check "all certified" true (s1.Tester.certified_executions = 80)

(* Mutex hand-off and join edges: contended critical sections certify. *)
let test_certify_mutex_program () =
  let config = certify_config 17L in
  let summary =
    Tester.run ~config ~iters:40 (fun () ->
        let m = C11.Mutex.create () in
        let counter = C11.Nonatomic.make 0 in
        let worker () =
          C11.Mutex.lock m;
          C11.Nonatomic.write counter (C11.Nonatomic.read counter + 1);
          C11.Mutex.unlock m
        in
        let ts = List.init 3 (fun _ -> C11.Thread.spawn worker) in
        List.iter C11.Thread.join ts;
        C11.assert_that
          (C11.Nonatomic.read counter = 3)
          "mutex counter lost an increment")
  in
  check "no bugs" true (summary.Tester.buggy_executions = 0);
  check "all certified" true (summary.Tester.certified_executions = 40)

(* Condvar wakeups synchronise through the mutex relock hand-off. *)
let test_certify_condvar_program () =
  let config = certify_config 19L in
  let summary =
    Tester.run ~config ~iters:40 (fun () ->
        let m = C11.Mutex.create () in
        let cv = C11.Condvar.create () in
        let ready = C11.Nonatomic.make 0 in
        let consumer =
          C11.Thread.spawn (fun () ->
              C11.Mutex.lock m;
              while C11.Nonatomic.read ready = 0 do
                C11.Condvar.wait cv m
              done;
              C11.Mutex.unlock m)
        in
        C11.Mutex.lock m;
        C11.Nonatomic.write ready 1;
        C11.Condvar.signal cv;
        C11.Mutex.unlock m;
        C11.Thread.join consumer)
  in
  check "no bugs" true (summary.Tester.buggy_executions = 0);
  check "all certified" true (summary.Tester.certified_executions = 40)

(* Pruned executions: the graph checks are skipped but everything else
   still runs — and still certifies. *)
let test_certify_pruned () =
  let config =
    {
      (certify_config 23L) with
      Engine.prune = Pruner.Aggressive { window = 8; interval = 8 };
    }
  in
  let summary =
    Tester.run ~config ~iters:20 (fun () ->
        let x = C11.Atomic.make ~name:"x" 0 in
        let w =
          C11.Thread.spawn (fun () ->
              for i = 1 to 40 do
                C11.Atomic.store ~mo:Memorder.Release x i
              done)
        in
        for _ = 1 to 10 do
          ignore (C11.Atomic.load ~mo:Memorder.Acquire x)
        done;
        C11.Thread.join w)
  in
  check "all certified" true
    (summary.Tester.certified_executions = 20
    && summary.Tester.cert_rejected_executions = 0)

(* The buggy versioned-read workload must be flagged by the race detector
   yet still certify (racy executions are still model-consistent). *)
let test_versioned_workload_flagged () =
  let w = Option.get (Registry.find "seqlock-versioned") in
  let config = certify_config 29L in
  let summary =
    Tester.run ~config ~iters:50
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "races flagged" true (summary.Tester.race_executions > 0);
  check "still certifies" true (summary.Tester.cert_rejected_executions = 0);
  let correct =
    Tester.run ~config ~iters:50
      (w.Registry.run ~variant:Variant.Correct ~scale:w.Registry.default_scale)
  in
  check "correct variant clean" true (correct.Tester.buggy_executions = 0);
  check "correct variant certified" true
    (correct.Tester.certified_executions = 50)

let suite =
  [
    Alcotest.test_case "certify: direct mp" `Quick test_positive_direct;
    Alcotest.test_case "certify off -> not applicable" `Quick
      test_not_applicable_off;
    Alcotest.test_case "mutation: drop sw edge" `Quick test_mutation_drop_sw;
    Alcotest.test_case "mutation: rewire rf" `Quick test_mutation_rewire_rf;
    Alcotest.test_case "mutation: flip mo edge" `Quick test_mutation_flip_mo;
    Alcotest.test_case "mutation: drop mo edge" `Quick test_mutation_drop_mo;
    Alcotest.test_case "mutation: break rmw link" `Quick
      test_mutation_break_rmw;
    Alcotest.test_case "mutation: malformed sync edge" `Quick
      test_mutation_bad_edge;
    Alcotest.test_case "violation key strips seqs" `Quick
      test_violation_key_strips_seqs;
    Alcotest.test_case "verdict json" `Quick test_verdict_json;
    Alcotest.test_case "litmus campaign certifies" `Quick
      test_certify_litmus_campaign;
    Alcotest.test_case "parallel certify parity" `Quick
      test_certify_parallel_parity;
    Alcotest.test_case "mutex program certifies" `Quick
      test_certify_mutex_program;
    Alcotest.test_case "condvar program certifies" `Quick
      test_certify_condvar_program;
    Alcotest.test_case "pruned run certifies" `Quick test_certify_pruned;
    Alcotest.test_case "versioned workload flagged" `Quick
      test_versioned_workload_flagged;
  ]
