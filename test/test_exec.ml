(* White-box tests of the operational model: direct calls into Execution,
   plus Memorder/Action basics. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

open Memorder

let fresh () =
  let rng = Rng.create 1L in
  let race = Race.create () in
  Execution.create ~mode:Execution.Full_c11 ~rng ~race ()

let test_memorder_classes () =
  check "acquire class" true
    (List.for_all Memorder.is_acquire [ Acquire; Acq_rel; Seq_cst; Consume ]);
  check "release class" true
    (List.for_all Memorder.is_release [ Release; Acq_rel; Seq_cst ]);
  check "relaxed is neither" true
    ((not (Memorder.is_acquire Relaxed)) && not (Memorder.is_release Relaxed));
  check "roundtrip strings" true
    (List.for_all
       (fun mo -> Memorder.of_string (Memorder.to_string mo) = Some mo)
       Memorder.all);
  check "unknown string" true (Memorder.of_string "weird" = None)

let test_fresh_loc () =
  let e = fresh () in
  let a = Execution.fresh_loc e ~atomic:true ~name:(Some "a") in
  let b = Execution.fresh_loc e ~atomic:false ~name:None in
  check "distinct" true (a <> b);
  check "atomicity recorded" true
    (Execution.is_atomic_loc e a && not (Execution.is_atomic_loc e b))

let test_same_thread_coherence () =
  let e = fresh () in
  let t = Execution.new_thread e ~parent:None in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t ~loc:x 0;
  Execution.atomic_store e ~tid:t ~loc:x ~mo:Relaxed ~volatile:false 1;
  Execution.atomic_store e ~tid:t ~loc:x ~mo:Relaxed ~volatile:false 2;
  (* CoWR/CoRW within a thread: must read the newest own store *)
  for _ = 1 to 20 do
    check_int "reads own latest store" 2
      (Execution.atomic_load e ~tid:t ~loc:x ~mo:Relaxed ~volatile:false)
  done

let test_may_read_from_set () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let t1 = Execution.new_thread e ~parent:(Some t0) in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  Execution.atomic_store e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false 1;
  Execution.atomic_store e ~tid:t1 ~loc:x ~mo:Relaxed ~volatile:false 2;
  match Execution.Internal.find_loc e x with
  | None -> Alcotest.fail "location missing"
  | Some li ->
    let ts = Execution.thread e t1 in
    let candidates =
      Execution.Internal.build_may_read_from e li ts ~is_sc:false
    in
    (* t1 never synchronised with t0, so t0's store does not supersede the
       initialisation for t1: the whole history is readable *)
    let values = List.sort compare (List.map (fun (a : Action.t) -> a.value) candidates) in
    check "candidates are {0, 1, 2}" true (values = [ 0; 1; 2 ]);
    (* after t1 acquires t0's store, the initialisation is hidden *)
    let v = Execution.atomic_load e ~tid:t1 ~loc:x ~mo:Acquire ~volatile:false in
    if v = 1 then begin
      let candidates =
        Execution.Internal.build_may_read_from e li ts ~is_sc:false
      in
      let values =
        List.sort compare (List.map (fun (a : Action.t) -> a.value) candidates)
      in
      check "init superseded after acquire" true (values = [ 1; 2 ])
    end

let test_rmw_claims_store () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  let old =
    Execution.atomic_rmw e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false
      ~f:(fun v -> Execution.Rmw_write (v + 1))
  in
  check_int "rmw read the init" 0 old;
  (* the second RMW must read the first RMW's store, not the claimed init *)
  let old2 =
    Execution.atomic_rmw e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false
      ~f:(fun v -> Execution.Rmw_write (v + 1))
  in
  check_int "second rmw reads the first" 1 old2

let test_failed_cas_is_load () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 5;
  let v =
    Execution.atomic_rmw e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false
      ~f:(fun _ -> Execution.Rmw_keep)
  in
  check_int "failed cas reads" 5 v;
  (* the store it read is still claimable by a real RMW *)
  let v2 =
    Execution.atomic_rmw e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false
      ~f:(fun v -> Execution.Rmw_write (v * 2))
  in
  check_int "store still unclaimed" 5 v2

let test_release_acquire_sync () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let t1 = Execution.new_thread e ~parent:(Some t0) in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  Execution.tick_sync e ~tid:t0;
  let marker = (Execution.thread e t0).Execution.tid in
  ignore marker;
  let seq_before = e.Execution.seq in
  Execution.atomic_store e ~tid:t0 ~loc:x ~mo:Release ~volatile:false 1;
  (* t1 reads with acquire: its clock must now cover t0's release store *)
  let v = Execution.atomic_load e ~tid:t1 ~loc:x ~mo:Acquire ~volatile:false in
  if v = 1 then begin
    let c1 = (Execution.thread e t1).Execution.c in
    check "acquire brings t0's history" true
      (Clockvec.covers c1 ~tid:t0 ~seq:(seq_before + 1))
  end

let test_relaxed_load_no_sync () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let t1 = Execution.new_thread e ~parent:(Some t0) in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  let seq_before = e.Execution.seq in
  Execution.atomic_store e ~tid:t0 ~loc:x ~mo:Release ~volatile:false 1;
  let v = Execution.atomic_load e ~tid:t1 ~loc:x ~mo:Relaxed ~volatile:false in
  if v = 1 then begin
    let c1 = (Execution.thread e t1).Execution.c in
    check "relaxed read does not synchronise" false
      (Clockvec.covers c1 ~tid:t0 ~seq:(seq_before + 1));
    (* but the pending acquire-fence clock has it *)
    let facq = (Execution.thread e t1).Execution.facq in
    check "pending in F_acq" true
      (Clockvec.covers facq ~tid:t0 ~seq:(seq_before + 1));
    (* an acquire fence upgrades it into the thread clock (Figure 9) *)
    Execution.fence e ~tid:t1 ~mo:Acquire;
    let c1 = (Execution.thread e t1).Execution.c in
    check "acquire fence publishes it" true
      (Clockvec.covers c1 ~tid:t0 ~seq:(seq_before + 1))
  end

let test_release_fence_then_relaxed_store () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let t1 = Execution.new_thread e ~parent:(Some t0) in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  Execution.tick_sync e ~tid:t0;
  let payload_seq = e.Execution.seq in
  Execution.fence e ~tid:t0 ~mo:Release;
  Execution.atomic_store e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false 1;
  let v = Execution.atomic_load e ~tid:t1 ~loc:x ~mo:Acquire ~volatile:false in
  if v = 1 then begin
    let c1 = (Execution.thread e t1).Execution.c in
    check "release fence makes the relaxed store release" true
      (Clockvec.covers c1 ~tid:t0 ~seq:payload_seq)
  end

let test_model_error_unknown_thread () =
  let e = fresh () in
  check "unknown thread rejected" true
    (match Execution.thread e 3 with
    | exception Execution.Model_error _ -> true
    | _ -> false)

let test_graph_footprint () =
  let e = fresh () in
  let t0 = Execution.new_thread e ~parent:None in
  let x = Execution.fresh_loc e ~atomic:true ~name:None in
  Execution.na_write e ~tid:t0 ~loc:x 0;
  for i = 1 to 10 do
    Execution.atomic_store e ~tid:t0 ~loc:x ~mo:Relaxed ~volatile:false i
  done;
  check_int "11 retained stores" 11 (Execution.graph_footprint e)

let test_action_happens_before () =
  let a =
    {
      Action.seq = 1;
      tid = 0;
      kind = Action.Store;
      loc = 0;
      mo = Relaxed;
      value = 0;
      rf = None;
      hb_cv = Clockvec.of_slot ~tid:0 ~seq:1;
      rf_cv = None;
      rmw_claimed = false;
      volatile = false;
      mo_node = Action.No_graph_node;
    }
  in
  let b_cv = Clockvec.of_slot ~tid:1 ~seq:2 in
  Clockvec.set b_cv 0 1;
  let b = { a with Action.seq = 2; tid = 1; hb_cv = b_cv } in
  check "a hb b" true (Action.happens_before a b);
  check "b not hb a" false (Action.happens_before b a);
  check "irreflexive" false (Action.happens_before a a);
  check "a is write" true (Action.is_write a);
  check "a is not read" false (Action.is_read a)

let suite =
  [
    Alcotest.test_case "memorder classes" `Quick test_memorder_classes;
    Alcotest.test_case "fresh_loc" `Quick test_fresh_loc;
    Alcotest.test_case "same-thread coherence" `Quick test_same_thread_coherence;
    Alcotest.test_case "may-read-from" `Quick test_may_read_from_set;
    Alcotest.test_case "rmw claims store" `Quick test_rmw_claims_store;
    Alcotest.test_case "failed cas is a load" `Quick test_failed_cas_is_load;
    Alcotest.test_case "release/acquire sync" `Quick test_release_acquire_sync;
    Alcotest.test_case "relaxed load + acquire fence" `Quick test_relaxed_load_no_sync;
    Alcotest.test_case "release fence + relaxed store" `Quick
      test_release_fence_then_relaxed_store;
    Alcotest.test_case "model error" `Quick test_model_error_unknown_thread;
    Alcotest.test_case "graph footprint" `Quick test_graph_footprint;
    Alcotest.test_case "action happens-before" `Quick test_action_happens_before;
  ]
