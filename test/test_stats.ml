(* Statistics helpers used by the evaluation harness. *)

let check = Alcotest.(check bool)
let close a b = abs_float (a -. b) < 1e-9

let test_mean () =
  check "mean" true (close (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0);
  check "empty mean is nan" true (Float.is_nan (Stats.mean []))

let test_stddev () =
  check "constant has zero stddev" true (close (Stats.stddev [ 5.0; 5.0; 5.0 ]) 0.0);
  check "known sample" true (close (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]) (sqrt (32.0 /. 7.0)));
  check "single sample" true (close (Stats.stddev [ 3.0 ]) 0.0)

let test_rsd () =
  check "constant rsd 0" true (close (Stats.rsd_percent [ 4.0; 4.0 ]) 0.0);
  check "zero mean safe" true (close (Stats.rsd_percent [ 1.0; -1.0 ]) 0.0)

let test_geomean () =
  check "geomean of powers" true (close (Stats.geomean [ 1.0; 4.0; 16.0 ]) 4.0);
  check "geomean singleton" true (close (Stats.geomean [ 7.0 ]) 7.0)

let test_median () =
  check "odd" true (close (Stats.median [ 3.0; 1.0; 2.0 ]) 2.0);
  check "even" true (close (Stats.median [ 4.0; 1.0; 3.0; 2.0 ]) 2.5);
  check "empty median is nan" true (Float.is_nan (Stats.median []))

let test_min_max () =
  check "min max" true (Stats.min_max [ 3.0; 1.0; 2.0 ] = (1.0, 3.0));
  let lo, hi = Stats.min_max [] in
  check "empty min_max is nan" true (Float.is_nan lo && Float.is_nan hi)

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check "p0 is min" true (close (Stats.percentile 0.0 xs) 10.0);
  check "p100 is max" true (close (Stats.percentile 100.0 xs) 40.0);
  check "p50 interpolates" true (close (Stats.percentile 50.0 xs) 25.0);
  check "p25 interpolates low" true (close (Stats.percentile 25.0 xs) 17.5);
  check "singleton" true (close (Stats.percentile 99.0 [ 7.0 ]) 7.0);
  check "unsorted input" true
    (close (Stats.percentile 50.0 [ 30.0; 10.0; 20.0 ]) 20.0);
  check "clamped below" true (close (Stats.percentile (-5.0) xs) 10.0);
  check "clamped above" true (close (Stats.percentile 200.0 xs) 40.0);
  check "empty is nan" true (Float.is_nan (Stats.percentile 50.0 []))

let test_rate () =
  check "rate" true (close (Stats.rate ~hits:1 ~total:4) 25.0);
  check "zero total" true (close (Stats.rate ~hits:0 ~total:0) 0.0)

let test_timed_sample () =
  let r, dt = Stats.timed (fun () -> 42) in
  check "result" true (r = 42);
  check "time non-negative" true (dt >= 0.0);
  check "sample count" true (List.length (Stats.sample 3 (fun () -> ())) = 3)

let gen_floats = QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.1 100.0))

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:200 gen_floats (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= arithmetic mean" ~count:200 gen_floats
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let prop_median_bounds =
  QCheck.Test.make ~name:"median within min..max" ~count:200 gen_floats (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.median xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair gen_floats (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p, q)) ->
      let p, q = if p <= q then (p, q) else (q, p) in
      Stats.percentile p xs <= Stats.percentile q xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "rsd" `Quick test_rsd;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "rate" `Quick test_rate;
    Alcotest.test_case "timed/sample" `Quick test_timed_sample;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_mean_bounds;
        prop_geomean_le_mean;
        prop_median_bounds;
        prop_percentile_monotone;
      ]
