(* C11obs: ring buffering, sink fan-out, (ND)JSON round-trips, metrics
   and profile readouts, and the no-perturbation guarantee (attaching
   observers must not change what the engine computes). *)

let check = Alcotest.(check bool)

let ev ?(kind = Obs.Load) ?(mo = "relaxed") ?(detail = "") n =
  { Obs.step = n; tid = n mod 3; kind; loc = n; mo; value = n * 10; detail }

(* --- ring buffer --- *)

let test_ring_wraparound () =
  let t = Obs.create ~ring_capacity:4 () in
  for i = 1 to 10 do
    Obs.emit t (ev i)
  done;
  check "total counts every emit" true (Obs.total t = 10);
  let steps = List.map (fun e -> e.Obs.step) (Obs.ring_events t) in
  check "ring keeps last cap events in order" true (steps = [ 7; 8; 9; 10 ]);
  Obs.clear t;
  check "clear empties ring" true (Obs.ring_events t = []);
  check "clear resets total" true (Obs.total t = 0);
  Obs.emit t (ev 1);
  check "usable after clear" true
    (List.map (fun e -> e.Obs.step) (Obs.ring_events t) = [ 1 ])

let test_ring_partial () =
  let t = Obs.create ~ring_capacity:8 () in
  for i = 1 to 3 do
    Obs.emit t (ev i)
  done;
  check "partial ring, oldest first" true
    (List.map (fun e -> e.Obs.step) (Obs.ring_events t) = [ 1; 2; 3 ])

(* --- sinks --- *)

let test_sink_fanout_order () =
  let log = ref [] in
  let sink tag =
    {
      Obs.sink_name = tag;
      emit = (fun e -> log := (tag, e.Obs.step) :: !log);
      flush = (fun () -> log := (tag ^ "-flush", -1) :: !log);
    }
  in
  let t = Obs.create () in
  check "no sink, no ring => disabled" true (not (Obs.enabled t));
  Obs.add_sink t (sink "a");
  Obs.add_sink t (sink "b");
  check "sink enables tracer" true (Obs.enabled t);
  Obs.emit t (ev 1);
  Obs.emit t (ev 2);
  Obs.flush t;
  check "fan-out in registration order, then flush" true
    (List.rev !log
    = [
        ("a", 1); ("b", 1); ("a", 2); ("b", 2); ("a-flush", -1); ("b-flush", -1);
      ])

let test_memory_sink () =
  let t = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink t sink;
  Obs.emit t (ev 1);
  Obs.emit t (ev 2);
  check "memory sink keeps order" true
    (List.map (fun e -> e.Obs.step) (events ()) = [ 1; 2 ])

let test_null_rejects_sinks () =
  check "null tracer is disabled" true (not (Obs.enabled Obs.null));
  check "attaching a sink to null raises" true
    (match Obs.add_sink Obs.null (fst (Obs.memory_sink ())) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- (ND)JSON round-trips --- *)

let all_kinds =
  [
    Obs.Load; Store; Rmw; Fence; Na_read; Na_write; Sync; Race_check; Prune;
    Sched_pick;
  ]

let test_event_json_roundtrip () =
  List.iteri
    (fun i kind ->
      let e = ev ~kind ~mo:"acquire" ~detail:"rf=42 \"quoted\"\n" i in
      let s = Jsonx.to_string (Obs.event_to_json e) in
      match Jsonx.parse s with
      | Error msg -> Alcotest.failf "parse error on %s: %s" s msg
      | Ok j -> (
        match Obs.event_of_json j with
        | None -> Alcotest.failf "event_of_json failed on %s" s
        | Some e' -> check "event survives JSON round-trip" true (e = e')))
    all_kinds

let test_ndjson_sink_roundtrip () =
  let t = Obs.create ~ring_capacity:16 () in
  List.iteri (fun i kind -> Obs.emit t (ev ~kind i)) all_kinds;
  let path = Filename.temp_file "c11obs" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.drain_to_sink t (Obs.ndjson_sink oc);
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed =
        List.rev_map
          (fun line ->
            match Jsonx.parse line with
            | Ok j -> Obs.event_of_json j
            | Error msg -> Alcotest.failf "bad NDJSON line %s: %s" line msg)
          !lines
      in
      check "one line per event" true (List.length parsed = List.length all_kinds);
      check "NDJSON lines decode to the original events" true
        (List.map Option.get parsed = Obs.ring_events t))

(* --- metrics --- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Metrics.incr m "b";
  Metrics.set_gauge m "g" 2.5;
  Metrics.max_gauge m "peak" 3.0;
  Metrics.max_gauge m "peak" 1.0;
  for i = 1 to 100 do
    Metrics.observe m "h" (float_of_int i)
  done;
  check "counter accumulates" true (Metrics.counter_value m "a" = 5);
  check "counters sorted by name" true
    (Metrics.counters m = [ ("a", 5); ("b", 1) ]);
  check "gauge" true (Metrics.gauge_value m "g" = Some 2.5);
  check "max gauge keeps max" true (Metrics.gauge_value m "peak" = Some 3.0);
  (match Metrics.histo_snapshot m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    check "histo count" true (s.Metrics.count = 100);
    check "histo min/max" true (s.Metrics.min = 1.0 && s.Metrics.max = 100.0);
    check "histo p50 near median" true (abs_float (s.Metrics.p50 -. 50.5) < 1.0));
  check "null metrics is no-op" true
    (Metrics.incr Metrics.null "x";
     Metrics.counter_value Metrics.null "x" = 0)

let mem k j =
  match Jsonx.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" k

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m ~by:7 "ops";
  Metrics.observe m "lat" 1.0;
  Metrics.observe m "lat" 3.0;
  let s = Jsonx.to_string (Metrics.to_json m) in
  match Jsonx.parse s with
  | Error msg -> Alcotest.failf "metrics JSON unparsable: %s" msg
  | Ok j ->
    check "counter in JSON" true
      (Jsonx.to_int (mem "ops" (mem "counters" j)) = Some 7);
    let lat = mem "lat" (mem "histograms" j) in
    check "histogram count in JSON" true
      (Jsonx.to_int (mem "count" lat) = Some 2)

(* --- profile --- *)

let test_profile () =
  let p = Profile.create () in
  for _ = 1 to 5 do
    let t0 = Profile.start p in
    Profile.stop p "phase" t0
  done;
  ignore (Profile.time p "timed" (fun () -> 42));
  (match Profile.snapshot p "phase" with
  | None -> Alcotest.fail "span missing"
  | Some s ->
    check "span count" true (s.Profile.count = 5);
    check "span total non-negative" true (s.Profile.total_ns >= 0));
  check "time records too" true
    (match Profile.snapshot p "timed" with
    | Some s -> s.Profile.count = 1
    | None -> false);
  check "null profile records nothing" true
    (let t0 = Profile.start Profile.null in
     Profile.stop Profile.null "x" t0;
     Profile.snapshots Profile.null = [])

(* --- determinism: observers must not perturb the engine --- *)

let test_tracing_does_not_perturb () =
  let config = { Engine.default_config with Engine.seed = 20260806L } in
  List.iter
    (fun (t : Litmus.t) ->
      let plain = ref [] in
      let observed = ref [] in
      let base =
        Engine.run config (fun () -> plain := t.Litmus.run_once ())
      in
      let obs = Obs.create ~ring_capacity:1024 () in
      let profile = Profile.create () in
      let metrics = Metrics.create () in
      let traced =
        Engine.run ~obs ~profile ~metrics config (fun () ->
            observed := t.Litmus.run_once ())
      in
      check
        (Printf.sprintf "%s: outcome unchanged under observation"
           t.Litmus.name)
        true (base = traced);
      check
        (Printf.sprintf "%s: litmus result unchanged under observation"
           t.Litmus.name)
        true (!plain = !observed);
      check
        (Printf.sprintf "%s: events were recorded" t.Litmus.name)
        true
        (Obs.total obs > 0))
    Litmus.catalog

(* --- Jsonx string hardening: control characters and strict \u --- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_jsonx_control_chars () =
  (* unit cases: tab and newline use their short escapes, other control
     characters (U+0000–U+001F) the \u%04x form; all round-trip *)
  List.iter
    (fun (s, fragment) ->
      let emitted = Jsonx.to_string (Jsonx.String s) in
      check
        (Printf.sprintf "emits %s" (String.escaped fragment))
        true
        (contains emitted fragment);
      check
        (Printf.sprintf "%s round-trips" (String.escaped s))
        true
        (Jsonx.parse emitted = Ok (Jsonx.String s)))
    [
      ("tab\tsep", "\\t");
      ("line\nbreak", "\\n");
      ("cr\rend", "\\r");
      ("bell\007x", "\\u0007");
      ("nul\000end", "\\u0000");
      ("esc\027[0m", "\\u001b");
    ]

let test_jsonx_strict_unicode_escape () =
  check "\\u0041 parses as A" true
    (Jsonx.parse "\"\\u0041\"" = Ok (Jsonx.String "A"));
  check "uppercase hex accepted" true
    (Jsonx.parse "\"\\u000A\"" = Ok (Jsonx.String "\n"));
  (* int_of_string would have accepted these *)
  check "underscore in \\u rejected" true
    (Result.is_error (Jsonx.parse "\"\\u001_\""));
  check "0x-prefixed \\u rejected" true
    (Result.is_error (Jsonx.parse "\"\\u0x41\""));
  check "non-hex \\u rejected" true
    (Result.is_error (Jsonx.parse "\"\\u00zz\""))

let prop_jsonx_string_roundtrip =
  QCheck.Test.make ~name:"Jsonx string round-trip (all byte values)"
    ~count:500 QCheck.string (fun s ->
      Jsonx.parse (Jsonx.to_string (Jsonx.String s)) = Ok (Jsonx.String s))

let suite =
  [
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
    Alcotest.test_case "ring partial fill" `Quick test_ring_partial;
    Alcotest.test_case "sink fan-out order" `Quick test_sink_fanout_order;
    Alcotest.test_case "memory sink" `Quick test_memory_sink;
    Alcotest.test_case "null tracer" `Quick test_null_rejects_sinks;
    Alcotest.test_case "event JSON round-trip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "NDJSON sink round-trip" `Quick test_ndjson_sink_roundtrip;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "metrics JSON" `Quick test_metrics_json;
    Alcotest.test_case "profile spans" `Quick test_profile;
    Alcotest.test_case "tracing does not perturb" `Quick
      test_tracing_does_not_perturb;
    Alcotest.test_case "Jsonx control-char escapes" `Quick
      test_jsonx_control_chars;
    Alcotest.test_case "Jsonx strict \\u escapes" `Quick
      test_jsonx_strict_unicode_escape;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_jsonx_string_roundtrip ]
