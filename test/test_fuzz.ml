(* C11fuzz: generator validity, grammar reach, the certifier-backed
   differential oracle, mutation testing of the engine, the shrinker's
   preservation/minimality contract and the parallel determinism
   contract.

   The mutation tests are the fuzzer's own test: three deliberately
   buggy engines (Execution.mutation) must each be caught by the oracle
   within a bounded program budget and shrunk to a small repro. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen_cfg_of_seed seed =
  (* vary every knob with the seed so 1k seeds cover many shapes *)
  let rng = Rng.create (Int64.of_int (0xC0FFEE + seed)) in
  {
    Fuzz.g_threads = 1 + Rng.int rng 4;
    g_ops = 1 + Rng.int rng 10;
    g_atomic_locs = 1 + Rng.int rng 4;
    g_na_locs = Rng.int rng 3;
    g_mutexes = Rng.int rng 3;
    g_profile = List.nth Fuzz.all_profiles (Rng.int rng 4);
    g_sc_bias = Rng.int rng 30;
  }

(* ---------- generator validity (satellite: 1k seeds) ------------------ *)

let prop_generated_valid =
  QCheck.Test.make ~name:"generated programs are well-formed" ~count:1000
    QCheck.small_nat (fun n ->
      let cfg = gen_cfg_of_seed n in
      let p = Fuzz.generate ~cfg ~seed:(Int64.of_int (n * 7919)) in
      match Fuzz.validate p with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "invalid program: %s" e)

let prop_generation_deterministic =
  QCheck.Test.make ~name:"same seed, same program" ~count:200 QCheck.small_nat
    (fun n ->
      let cfg = gen_cfg_of_seed n in
      let seed = Int64.of_int ((n * 31) + 5) in
      Fuzz.generate ~cfg ~seed = Fuzz.generate ~cfg ~seed)

(* Locks balance per path and joins match spawns by construction; check
   the executable side too: every generated program runs to completion
   under the engine without deadlock or crash. *)
let prop_generated_runnable =
  QCheck.Test.make ~name:"generated programs run cleanly" ~count:100
    QCheck.small_nat (fun n ->
      let cfg = gen_cfg_of_seed n in
      let p = Fuzz.generate ~cfg ~seed:(Int64.of_int ((n * 131) + 17)) in
      let config = Fuzz.engine_config ~mutation:None in
      match
        Fuzz.run_one ~config ~certify:true ~seed:(Fuzz.exec_seed p ~attempt:0) p
      with
      | Fuzz.Passed { certified } -> certified
      | Fuzz.Failed kind ->
        QCheck.Test.fail_reportf "finding on clean engine: %s"
          (Fuzz.finding_key kind))

(* ---------- grammar reach --------------------------------------------- *)

let count_ops pred ps =
  List.fold_left
    (fun acc (p : Fuzz.program) ->
      Array.fold_left
        (fun acc ops ->
          Array.fold_left (fun acc op -> if pred op then acc + 1 else acc) acc ops)
        acc p.Fuzz.p_threads)
    0 ps

let programs_for profile n =
  let cfg =
    { Fuzz.default_gen_cfg with Fuzz.g_profile = profile; g_mutexes = 2; g_na_locs = 2 }
  in
  List.init n (fun i -> Fuzz.generate ~cfg ~seed:(Int64.of_int ((i * 97) + 3)))

let test_grammar_reach () =
  let ps = programs_for Fuzz.Mixed 300 in
  let reached pred = count_ops pred ps > 0 in
  check_bool "loads" true (reached (function Fuzz.Load _ -> true | _ -> false));
  check_bool "stores" true (reached (function Fuzz.Store _ -> true | _ -> false));
  check_bool "rmws" true (reached (function Fuzz.Add _ -> true | _ -> false));
  check_bool "cas" true (reached (function Fuzz.Cas _ -> true | _ -> false));
  check_bool "exchange" true (reached (function Fuzz.Xchg _ -> true | _ -> false));
  check_bool "fences" true (reached (function Fuzz.Fence _ -> true | _ -> false));
  check_bool "na reads" true (reached (function Fuzz.Na_read _ -> true | _ -> false));
  check_bool "na writes" true (reached (function Fuzz.Na_write _ -> true | _ -> false));
  check_bool "locks" true (reached (function Fuzz.Lock _ -> true | _ -> false));
  check_bool "yields" true (reached (function Fuzz.Yield -> true | _ -> false));
  (* every memory order appears on some atomic op *)
  List.iter
    (fun mo ->
      check_bool
        (Printf.sprintf "order %s reached" (Memorder.to_string mo))
        true
        (reached (function
          | Fuzz.Load { mo = m; _ }
          | Fuzz.Store { mo = m; _ }
          | Fuzz.Add { mo = m; _ }
          | Fuzz.Cas { mo = m; _ }
          | Fuzz.Xchg { mo = m; _ }
          | Fuzz.Fence m ->
            m = mo
          | _ -> false)))
    Memorder.all;
  (* reuse accesses are exclusive to the mixed-atomicity profile *)
  check_int "no reuse ops outside mixed-atomicity" 0
    (count_ops (function Fuzz.Reuse_load _ | Fuzz.Reuse_store _ -> true | _ -> false) ps);
  let reuse = programs_for Fuzz.Mixed_atomicity 100 in
  check_bool "mixed-atomicity reaches reuse ops" true
    (count_ops (function Fuzz.Reuse_load _ | Fuzz.Reuse_store _ -> true | _ -> false)
       reuse
    > 0)

let test_sc_heavy_bias () =
  let sc_share ps =
    let mo_count pred = count_ops pred ps in
    let sc =
      mo_count (function
        | Fuzz.Load { mo; _ } | Fuzz.Store { mo; _ } | Fuzz.Add { mo; _ } ->
          Memorder.is_seq_cst mo
        | _ -> false)
    and all =
      mo_count (function
        | Fuzz.Load _ | Fuzz.Store _ | Fuzz.Add _ -> true
        | _ -> false)
    in
    float_of_int sc /. float_of_int (max 1 all)
  in
  let mixed = sc_share (programs_for Fuzz.Mixed 200) in
  let heavy = sc_share (programs_for Fuzz.Sc_heavy 200) in
  check_bool
    (Printf.sprintf "sc-heavy (%.2f) > mixed (%.2f)" heavy mixed)
    true (heavy > mixed +. 0.2)

(* ---------- clean campaign: the zero-rejection oracle ------------------ *)

let campaign_cfg ?(programs = 300) ?(jobs = 1) ?(profile = Fuzz.Mixed)
    ?(mutation = None) ~seed () =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = programs;
    c_seed = seed;
    c_jobs = jobs;
    c_gen = { Fuzz.default_gen_cfg with Fuzz.g_profile = profile };
    c_mutation = mutation;
  }

let test_clean_campaign () =
  let report = Fuzz.campaign (campaign_cfg ~seed:99L ()) in
  check_int "programs" 300 report.Fuzz.r_programs;
  check_int "certified all" 300 report.Fuzz.r_certified;
  check_int "no rejections" 0 report.Fuzz.r_cert_rejected;
  check_int "no crashes" 0 report.Fuzz.r_crashes;
  check_int "no findings" 0 (List.length report.Fuzz.r_findings)

let test_certify_every () =
  (* c_certify_every is a deprecated no-op alias: streaming certification
     is always on, so stride 3 and even 0 certify every program. *)
  let cfg = campaign_cfg ~seed:99L () in
  let report = Fuzz.campaign { cfg with Fuzz.c_certify_every = 3 } in
  check_int "stride 3 ignored: certified all" 300 report.Fuzz.r_certified;
  let report = Fuzz.campaign { cfg with Fuzz.c_certify_every = 0 } in
  check_int "stride 0 ignored: certified all" 300 report.Fuzz.r_certified

(* ---------- mutation testing: the fuzzer finds seeded engine bugs ------ *)

let mutant_budget = 300

let expected_axiom = function
  | Execution.Skip_acquire_merge -> "hb-differential"
  | Execution.Drop_mo_edge -> "coherence"
  | Execution.Weak_release_store -> "hb-differential"

let test_mutant mutation () =
  let report =
    Fuzz.campaign
      (campaign_cfg ~programs:mutant_budget ~seed:42L ~mutation:(Some mutation) ())
  in
  check_bool "mutant detected" true (report.Fuzz.r_findings <> []);
  let f = List.hd report.Fuzz.r_findings in
  check_bool
    (Printf.sprintf "key %s names %s" f.Fuzz.f_key (expected_axiom mutation))
    true
    (let re = expected_axiom mutation in
     let len = String.length re in
     let k = f.Fuzz.f_key in
     let rec contains i =
       i + len <= String.length k && (String.sub k i len = re || contains (i + 1))
     in
     contains 0);
  check_bool
    (Printf.sprintf "shrunk to %d ops (<= 12)" f.Fuzz.f_ops_after)
    true
    (f.Fuzz.f_ops_after <= 12);
  check_bool "repro still well-formed" true (Fuzz.validate f.Fuzz.f_repro = Ok ());
  (* the shrunk repro fails under the mutant with the same key... *)
  let mconfig = Fuzz.engine_config ~mutation:(Some mutation) in
  (match
     Fuzz.run_one ~config:mconfig ~certify:true ~seed:f.Fuzz.f_exec_seed
       f.Fuzz.f_repro
   with
  | Fuzz.Failed kind -> check_bool "repro key" true (Fuzz.finding_key kind = f.Fuzz.f_key)
  | Fuzz.Passed _ -> Alcotest.fail "shrunk repro passed under the mutant");
  (* ...and certifies on the correct engine: the finding is the mutant's *)
  let cconfig = Fuzz.engine_config ~mutation:None in
  match
    Fuzz.run_one ~config:cconfig ~certify:true ~seed:f.Fuzz.f_exec_seed
      f.Fuzz.f_repro
  with
  | Fuzz.Passed _ -> ()
  | Fuzz.Failed kind ->
    Alcotest.failf "repro fails on the correct engine: %s" (Fuzz.finding_key kind)

(* ---------- shrinking: preservation and local minimality --------------- *)

(* Satellite property: every intermediate the shrinker accepts still
   fails with the same key, and the final repro is locally minimal —
   removing any single op unit (or thread) makes the failure vanish. *)
let test_shrink_preserves_failure () =
  let mutation = Some Execution.Drop_mo_edge in
  let config = Fuzz.engine_config ~mutation in
  let cfg = { Fuzz.default_gen_cfg with Fuzz.g_profile = Fuzz.Mixed } in
  (* find a failing program directly *)
  let rec find i =
    if i > 200 then Alcotest.fail "no failing program in 200 tries"
    else begin
      let p = Fuzz.generate ~cfg ~seed:(Rng.substream 42L ~index:i) in
      match
        Fuzz.run_one ~config ~certify:true ~seed:(Fuzz.exec_seed p ~attempt:0) p
      with
      | Fuzz.Failed kind -> (p, Fuzz.finding_key kind)
      | Fuzz.Passed _ -> find (i + 1)
    end
  in
  let p, key = find 0 in
  let intermediates = ref [] in
  let repro, rseed, steps =
    Fuzz.shrink ~on_accept:(fun q -> intermediates := q :: !intermediates) ~config
      ~execs:8 ~key p
  in
  check_int "every accepted reduction observed" steps (List.length !intermediates);
  List.iter
    (fun q ->
      check_bool "intermediate stays well-formed" true (Fuzz.validate q = Ok ());
      check_bool "intermediate still fails with the same key" true
        (Fuzz.reproduces ~config ~execs:8 ~key q <> None))
    !intermediates;
  check_bool "final repro reproduces" true
    (match Fuzz.run_one ~config ~certify:true ~seed:rseed repro with
    | Fuzz.Failed kind -> Fuzz.finding_key kind = key
    | Fuzz.Passed _ -> false);
  (* local minimality at the deletion-unit granularity *)
  List.iter
    (fun candidate ->
      check_bool "removing any single unit kills the failure" true
        (Fuzz.reproduces ~config ~execs:8 ~key candidate = None))
    (Fuzz.deletion_candidates repro)

let test_shrink_deterministic () =
  let mutation = Some Execution.Skip_acquire_merge in
  let report () =
    Fuzz.campaign (campaign_cfg ~programs:200 ~seed:42L ~mutation:(Some (Option.get mutation)) ())
  in
  check_bool "two runs, same findings" true (report () = report ())

(* ---------- parallel determinism --------------------------------------- *)

let test_jobs_parity () =
  let run jobs mutation =
    Fuzz.campaign (campaign_cfg ~programs:200 ~jobs ~seed:7L ~mutation ())
  in
  check_bool "clean campaign: j1 = j4" true (run 1 None = run 4 None);
  let m = Some Execution.Drop_mo_edge in
  let r1 = run 1 m and r4 = run 4 m in
  check_bool "mutant campaign: j1 = j4 (incl. findings)" true (r1 = r4);
  check_bool "mutant campaign found something" true (r1.Fuzz.r_findings <> [])

(* ---------- observability ---------------------------------------------- *)

let test_campaign_metrics () =
  let metrics = Metrics.create () in
  let profile = Profile.create () in
  let report =
    Fuzz.campaign ~metrics ~profile (campaign_cfg ~programs:100 ~seed:3L ())
  in
  check_int "programs counter" 100 (Metrics.counter_value metrics "fuzz.programs");
  check_int "certified counter" report.Fuzz.r_certified
    (Metrics.counter_value metrics "fuzz.certified");
  let rate = Profile.rate profile "fuzz_execute" in
  check_bool "programs/sec readout is live" true (rate > 0.0);
  check_bool "generate span recorded" true
    (Profile.snapshot profile "fuzz_generate" <> None)

(* ---------- repro rendering -------------------------------------------- *)

let test_pp_program_shape () =
  let cfg = { Fuzz.default_gen_cfg with Fuzz.g_mutexes = 1; g_na_locs = 1 } in
  let p = Fuzz.generate ~cfg ~seed:5L in
  let s = Fuzz.program_to_string p in
  let contains needle =
    let ln = String.length needle and ls = String.length s in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "defines repro" true (contains "let repro () =");
  check_bool "names the seed" true (contains "seed 0x");
  check_bool "allocates a0" true (contains "C11.Atomic.make ~name:\"a0\" 0");
  check_bool "spawns and joins" true
    (contains "C11.Thread.spawn" = contains "C11.Thread.join t1")

let suite =
  [
    Alcotest.test_case "grammar reach per profile" `Quick test_grammar_reach;
    Alcotest.test_case "sc-heavy profile biases seq_cst" `Quick test_sc_heavy_bias;
    Alcotest.test_case "clean campaign: zero rejections" `Quick test_clean_campaign;
    Alcotest.test_case "certify-every stride" `Quick test_certify_every;
    Alcotest.test_case "mutant: skip-acquire-merge caught" `Quick
      (test_mutant Execution.Skip_acquire_merge);
    Alcotest.test_case "mutant: drop-mo-edge caught" `Quick
      (test_mutant Execution.Drop_mo_edge);
    Alcotest.test_case "mutant: weak-release-store caught" `Quick
      (test_mutant Execution.Weak_release_store);
    Alcotest.test_case "shrinking preserves the violation" `Quick
      test_shrink_preserves_failure;
    Alcotest.test_case "shrinking is deterministic" `Quick test_shrink_deterministic;
    Alcotest.test_case "campaign parity across job counts" `Quick test_jobs_parity;
    Alcotest.test_case "campaign metrics and spans" `Quick test_campaign_metrics;
    Alcotest.test_case "repro prints as a DSL snippet" `Quick test_pp_program_shape;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_generated_valid; prop_generation_deterministic; prop_generated_runnable ]
