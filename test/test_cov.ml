(* C11cov: canonicalisation invariance, merge determinism (j1 ≡ jN for
   tester and fuzz campaigns), NDJSON round-trip, progress final-record
   parity, and the zero-cost-when-off contract. *)

let check = Alcotest.(check bool)

(* ---------- canonical signatures ---------- *)

(* A small random "execution": events over a handful of thread and
   location ids, loads/rmws optionally reading from an earlier event, a
   few sync edges.  The property under test only needs well-formed input
   (rf indices in range), not a model-valid execution. *)

let kind_of_int = function
  | 0 -> Action.Load
  | 1 -> Action.Store
  | 2 -> Action.Rmw
  | 3 -> Action.Na_store
  | _ -> Action.Fence

let mo_of_int i = List.nth Memorder.all (i mod List.length Memorder.all)

let exec_gen =
  QCheck.Gen.(
    let* nev = int_range 0 12 in
    let* evs =
      list_repeat nev
        (let* tid = int_range 0 3 in
         let* k = int_range 0 4 in
         let kind = kind_of_int k in
         let* loc = int_range 0 3 in
         let loc = if kind = Action.Fence then -1 else loc in
         let* mo = int_range 0 5 in
         let* rf_raw = int_range 0 20 in
         return (tid, kind, loc, mo_of_int mo, rf_raw))
    in
    let evs =
      List.mapi
        (fun i (tid, kind, loc, mo, rf_raw) ->
          let rf =
            (* only reads read-from, and only from a strictly earlier
               event *)
            match kind with
            | Action.Load | Action.Rmw when i > 0 && rf_raw mod 3 = 0 ->
              Some (rf_raw mod i)
            | _ -> None
          in
          { Cov.ev_tid = tid; ev_kind = kind; ev_loc = loc; ev_mo = mo; ev_rf = rf })
        evs
    in
    let* nsync = int_range 0 3 in
    let* sync =
      list_repeat nsync
        (let* a = int_range 0 3 in
         let* b = int_range 0 3 in
         return (a, b))
    in
    return (Array.of_list evs, sync))

let exec_arb =
  QCheck.make
    ~print:(fun (evs, sync) ->
      Printf.sprintf "%d events, %d sync edges: %s" (Array.length evs)
        (List.length sync)
        (Cov.signature evs ~sync))
    exec_gen

(* Injective renamings: add a generated offset and flip parity, which is
   injective on ints; locations keep -1 (fences) fixed. *)
let rename_tid ~off ~flip t = (if flip then 1000 - t else t) + off
let rename_loc ~off ~flip l =
  if l < 0 then l else (if flip then 1000 - l else l) + off

let prop_signature_rename_invariant =
  QCheck.Test.make
    ~name:"canonical signature invariant under thread/location renaming"
    ~count:300
    QCheck.(
      pair exec_arb (pair (pair (int_bound 50) bool) (pair (int_bound 50) bool)))
    (fun ((evs, sync), ((toff, tflip), (loff, lflip))) ->
      let evs' =
        Array.map
          (fun e ->
            {
              e with
              Cov.ev_tid = rename_tid ~off:toff ~flip:tflip e.Cov.ev_tid;
              ev_loc = rename_loc ~off:loff ~flip:lflip e.Cov.ev_loc;
            })
          evs
      in
      let sync' =
        List.map
          (fun (a, b) ->
            (rename_tid ~off:toff ~flip:tflip a, rename_tid ~off:toff ~flip:tflip b))
          sync
      in
      Cov.signature evs ~sync = Cov.signature evs' ~sync:sync')

let test_signature_distinguishes () =
  (* sanity: the signature is not a constant — rf direction matters *)
  let ev tid kind loc rf =
    { Cov.ev_tid = tid; ev_kind = kind; ev_loc = loc; ev_mo = Memorder.Relaxed; ev_rf = rf }
  in
  let a =
    [| ev 0 Action.Store 0 None; ev 1 Action.Load 0 (Some 0) |]
  in
  let b = [| ev 0 Action.Store 0 None; ev 1 Action.Load 0 None |] in
  check "rf edge changes the signature" true
    (Cov.signature a ~sync:[] <> Cov.signature b ~sync:[]);
  check "edges are deduplicated and sorted" true
    (Cov.edges a ~sync:[] = List.sort_uniq String.compare (Cov.edges a ~sync:[]))

(* ---------- campaign parity: j1 ≡ jN ---------- *)

let find_workload name =
  match Registry.find name with
  | Some w -> w
  | None -> Alcotest.fail ("workload not in registry: " ^ name)

let run_with_jobs ~jobs =
  let w = find_workload "seqlock" in
  let config =
    {
      (Tool.config Tool.C11tester) with
      Engine.seed = 42L;
      coverage = true;
      certify = true;
    }
  in
  Tester.run_parallel ~jobs ~config ~iters:40
    (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)

let test_tester_coverage_parity () =
  let s1 = run_with_jobs ~jobs:1 in
  (match s1.Tester.coverage with
  | None -> Alcotest.fail "coverage on but summary.coverage = None"
  | Some c ->
    check "every execution fingerprinted" true (c.Cov.s_executions = 40);
    check "at least one shape" true (Cov.distinct_shapes c > 0));
  List.iter
    (fun jobs ->
      let sn = run_with_jobs ~jobs in
      check
        (Printf.sprintf "coverage summary identical j1 vs j%d" jobs)
        true
        (s1.Tester.coverage = sn.Tester.coverage))
    [ 2; 4 ]

let fuzz_cfg ~jobs =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = 60;
    c_seed = 11L;
    c_jobs = jobs;
  }

let test_fuzz_coverage_parity () =
  let r1 = Fuzz.campaign ~coverage:true (fuzz_cfg ~jobs:1) in
  (match r1.Fuzz.r_coverage with
  | None -> Alcotest.fail "coverage on but r_coverage = None"
  | Some c -> check "every program fingerprinted" true (c.Cov.s_executions = 60));
  List.iter
    (fun jobs ->
      let rn = Fuzz.campaign ~coverage:true (fuzz_cfg ~jobs) in
      check
        (Printf.sprintf "fuzz coverage identical j1 vs j%d" jobs)
        true
        (r1.Fuzz.r_coverage = rn.Fuzz.r_coverage))
    [ 2; 4 ]

(* ---------- NDJSON round-trip ---------- *)

let test_ndjson_roundtrip () =
  let r = Fuzz.campaign ~coverage:true (fuzz_cfg ~jobs:2) in
  match r.Fuzz.r_coverage with
  | None -> Alcotest.fail "no coverage"
  | Some c -> (
    let lines = Cov.summary_to_ndjson c in
    (* every line must survive a textual round-trip too *)
    let reparsed =
      List.map
        (fun j ->
          match Jsonx.parse (Jsonx.to_string j) with
          | Ok j' -> j'
          | Error e -> Alcotest.fail ("unparseable NDJSON line: " ^ e))
        lines
    in
    match Cov.summary_of_ndjson reparsed with
    | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
    | Ok c' -> check "summary round-trips through c11cov-v1" true (c = c'))

let test_ndjson_rejects_malformed () =
  check "empty input rejected" true
    (Result.is_error (Cov.summary_of_ndjson []));
  check "wrong schema rejected" true
    (Result.is_error
       (Cov.summary_of_ndjson
          [ Jsonx.Obj [ ("schema", Jsonx.String "bogus-v1") ] ]));
  check "missing campaign record rejected" true
    (Result.is_error
       (Cov.summary_of_ndjson
          [
            Jsonx.Obj
              [
                ("schema", Jsonx.String "c11cov-v1");
                ("kind", Jsonx.String "shape");
                ("key", Jsonx.String "k");
                ("count", Jsonx.Int 1);
                ("first", Jsonx.Int 0);
              ];
          ]))

(* ---------- progress stream ---------- *)

(* Heartbeat counts and all wall-clock fields are timing-dependent; the
   deterministic surface is the single `final' record with the wall
   fields stripped.  That is exactly what the parity below compares. *)
let wall_fields = [ "elapsed_s"; "exec_per_s"; "gc_top_heap_words"; "gc_heap_words" ]

let final_record_stripped path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let finals =
    List.filter_map
      (fun line ->
        match Jsonx.parse line with
        | Error e -> Alcotest.fail ("bad progress line: " ^ e)
        | Ok (Jsonx.Obj fields) ->
          if List.assoc_opt "kind" fields = Some (Jsonx.String "final") then
            Some
              (List.filter
                 (fun (k, _) -> not (List.mem k wall_fields))
                 fields)
          else None
        | Ok _ -> Alcotest.fail "progress line is not an object")
      (List.rev !lines)
  in
  match finals with
  | [ f ] -> f
  | l -> Alcotest.fail (Printf.sprintf "expected 1 final record, got %d" (List.length l))

let progress_campaign ~jobs path =
  let oc = open_out path in
  let progress = Progress.create ~out:oc ~interval_ns:1_000_000 ~total:60 in
  let r = Fuzz.campaign ~coverage:true ~progress (fuzz_cfg ~jobs) in
  close_out oc;
  r

let test_progress_final_parity () =
  let p1 = Filename.temp_file "c11prog" "j1.ndjson" in
  let p4 = Filename.temp_file "c11prog" "j4.ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p4)
    (fun () ->
      ignore (progress_campaign ~jobs:1 p1);
      ignore (progress_campaign ~jobs:4 p4);
      let f1 = final_record_stripped p1 and f4 = final_record_stripped p4 in
      check "final record identical j1 vs j4 (wall fields stripped)" true
        (f1 = f4);
      check "final record carries schema" true
        (List.assoc_opt "schema" f1 = Some (Jsonx.String "c11progress-v1"));
      check "done = total" true
        (List.assoc_opt "done" f1 = Some (Jsonx.Int 60));
      (* certification is always on in fuzz campaigns, so the streaming
         counters must appear — and, being plain sums, they are part of
         the j1 = j4 parity surface compared above *)
      check "final record carries certified_ops" true
        (match List.assoc_opt "certified_ops" f1 with
        | Some (Jsonx.Int n) -> n > 0
        | _ -> false);
      check "final record carries retired_prefix_ops" true
        (List.assoc_opt "retired_prefix_ops" f1 <> None))

let test_progress_null_is_noop () =
  check "null disabled" true (not (Progress.enabled Progress.null));
  Progress.tick Progress.null ~novel:true ~finding:true;
  Progress.finish Progress.null

(* ---------- zero-cost-when-off ---------- *)

let test_zero_cost_off () =
  let w = find_workload "seqlock" in
  let config = { (Tool.config Tool.C11tester) with Engine.seed = 42L } in
  check "coverage off by default" true (not config.Engine.coverage);
  let summary =
    Tester.run ~config ~iters:5
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "summary.coverage = None when off" true
    (summary.Tester.coverage = None);
  let o = Engine.run config (fun () -> ()) in
  check "outcome.shape = None when off" true (o.Engine.shape = None);
  let r = Fuzz.campaign (fuzz_cfg ~jobs:1) in
  check "r_coverage = None when off" true (r.Fuzz.r_coverage = None)

let suite =
  [
    Alcotest.test_case "signature distinguishes" `Quick
      test_signature_distinguishes;
    Alcotest.test_case "tester coverage parity j1/j2/j4" `Slow
      test_tester_coverage_parity;
    Alcotest.test_case "fuzz coverage parity j1/j2/j4" `Slow
      test_fuzz_coverage_parity;
    Alcotest.test_case "c11cov-v1 NDJSON round-trip" `Quick
      test_ndjson_roundtrip;
    Alcotest.test_case "malformed c11cov-v1 rejected" `Quick
      test_ndjson_rejects_malformed;
    Alcotest.test_case "progress final-record parity j1/j4" `Slow
      test_progress_final_parity;
    Alcotest.test_case "null progress is a no-op" `Quick
      test_progress_null_is_noop;
    Alcotest.test_case "zero-cost when off" `Quick test_zero_cost_off;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_signature_rename_invariant ]
