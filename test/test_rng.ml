(* Deterministic RNG: determinism, bounds and distribution sanity. *)

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  let xs = List.init 100 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 100 (fun _ -> Rng.next_int64 b) in
  check "same seed, same stream" true (xs = ys)

let test_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check "different seeds diverge" false (xs = ys)

let test_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check "split stream differs" false (xs = ys)

let test_int_bounds () =
  let r = Rng.create 3L in
  check "all in bounds" true
    (List.for_all
       (fun _ ->
         let v = Rng.int r 7 in
         v >= 0 && v < 7)
       (List.init 1000 Fun.id))

let test_int_coverage () =
  let r = Rng.create 5L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int r 4) <- true
  done;
  check "all residues reached" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_shuffle_is_permutation () =
  let r = Rng.create 11L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "permutation" true (sorted = Array.init 50 Fun.id)

let test_geometric () =
  let r = Rng.create 13L in
  let samples = List.init 2000 (fun _ -> Rng.geometric r 10) in
  check "all >= 1" true (List.for_all (fun x -> x >= 1) samples);
  let mean =
    float_of_int (List.fold_left ( + ) 0 samples) /. 2000.0
  in
  check "mean near 10" true (mean > 6.0 && mean < 14.0)

let test_float_range () =
  let r = Rng.create 17L in
  check "floats in [0,1)" true
    (List.for_all
       (fun _ ->
         let f = Rng.float r in
         f >= 0.0 && f < 1.0)
       (List.init 1000 Fun.id))

(* Substreams: [substream base ~index:i] must be exactly the i-th draw of
   the sequential [next_int64] stream from the same base — this identity is
   what lets the parallel campaign runner deal execution seeds to any
   worker in any pattern without changing what any one execution does. *)

let test_substream_equals_stream () =
  let r = Rng.create 42L in
  let seq = List.init 200 (fun _ -> Rng.next_int64 r) in
  let sub = List.init 200 (fun i -> Rng.substream 42L ~index:i) in
  check "substream = sequential stream" true (seq = sub)

let test_substream_negative () =
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.substream: index must be non-negative") (fun () ->
      ignore (Rng.substream 1L ~index:(-1)))

(* Leapfrog partition: worker w of j handling indices w, w+j, w+2j, ...
   covers every global index exactly once, and the seed at each index is
   the same for every worker count. *)
let test_substream_leapfrog () =
  let total = 97 in
  let base = 20260806L in
  let reference = Array.init total (fun i -> Rng.substream base ~index:i) in
  List.iter
    (fun jobs ->
      let seen = Array.make total 0 in
      for worker = 0 to jobs - 1 do
        let i = ref worker in
        while !i < total do
          seen.(!i) <- seen.(!i) + 1;
          let s = Rng.substream base ~index:!i in
          if s <> reference.(!i) then
            Alcotest.failf "jobs=%d index %d: seed differs" jobs !i;
          i := !i + jobs
        done
      done;
      if not (Array.for_all (fun n -> n = 1) seen) then
        Alcotest.failf "jobs=%d: partition not exact" jobs)
    [ 1; 2; 3; 4; 7 ]

(* No collisions within a base (mix64 is a bijection, so distinct indices
   give distinct seeds) and no overlap between the windows of nearby bases
   (the gamma stride is astronomically far from +/-1). *)
let test_substream_collisions () =
  let module S = Set.Make (Int64) in
  let n = 10_000 in
  let within = List.init n (fun i -> Rng.substream 7L ~index:i) in
  check "distinct within base" true
    (S.cardinal (S.of_list within) = n);
  let other = List.init n (fun i -> Rng.substream 8L ~index:i) in
  check "no overlap across adjacent bases" true
    (S.is_empty (S.inter (S.of_list within) (S.of_list other)))

let prop_bool_balanced =
  QCheck.Test.make ~name:"bool is roughly balanced" ~count:20
    QCheck.(int_range 1 10000)
    (fun seed ->
      let r = Rng.create (Int64.of_int seed) in
      let trues = ref 0 in
      for _ = 1 to 400 do
        if Rng.bool r then incr trues
      done;
      !trues > 120 && !trues < 280)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "substream = stream" `Quick test_substream_equals_stream;
    Alcotest.test_case "substream negative index" `Quick test_substream_negative;
    Alcotest.test_case "substream leapfrog partition" `Quick
      test_substream_leapfrog;
    Alcotest.test_case "substream collisions" `Quick test_substream_collisions;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_bool_balanced ]
