(* Multi-process campaign fabric (lib/svc): parity with the in-process
   runners, content-addressed cache replay, crash re-claim and degraded
   summaries.

   These tests spawn real worker processes — the c11test binary built
   alongside the suite — so they exercise the spec hand-off, the
   c11svc-v1 wire protocol, Marshal round-trips and the coordinator's
   select loop end to end, not a mock. *)

let check = Alcotest.(check bool)

let exe =
  lazy
    (match Svc.locate_exe () with
    | Some e -> e
    | None -> Alcotest.fail "cannot locate c11test.exe next to the test binary")

let run_campaign ?cache ?kill ~workers ~jobs c =
  match
    Svc.run_campaign ~exe:(Lazy.force exe) ?cache ?kill ~workers ~jobs c
  with
  | Ok r -> r
  | Error msg -> Alcotest.failf "run_campaign: %s" msg

let summary_string s = Jsonx.to_pretty_string (Tester.summary_to_json s)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "c11svc_test_%d_%d" (Unix.getpid ()) !n)
    in
    (match Cache.open_dir d with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "cannot create %s: %s" d msg);
    d

let open_cache dir =
  match Cache.open_dir dir with
  | Ok c -> c
  | Error msg -> Alcotest.failf "open_dir %s: %s" dir msg

(* ---------- campaign fixtures (coverage on: the widest observables) ---- *)

let run_config =
  { (Tool.config ~seed:99L ~max_steps:150_000 Tool.C11tester) with
    Engine.coverage = true;
    certify = true;
  }

let ms_queue () =
  match Registry.find "ms-queue" with
  | Some w -> w
  | None -> Alcotest.fail "ms-queue missing"

let run_spec iters =
  let w = ms_queue () in
  Svc.Run_c
    {
      workload = w.Registry.name;
      buggy = true;
      scale = w.Registry.default_scale;
      config = run_config;
      iters;
    }

let run_baseline iters =
  let w = ms_queue () in
  Tester.run_parallel ~jobs:1 ~config:run_config ~iters
    (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)

let litmus_config =
  { (Tool.config ~seed:7L Tool.C11tester) with Engine.coverage = true }

let mp_relaxed () =
  match Litmus.find "mp_relaxed" with
  | Some t -> t
  | None -> Alcotest.fail "mp_relaxed missing"

let fuzz_cfg =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = 60;
    c_seed = 11L;
    c_jobs = 1;
  }

(* ---------- parity ----------------------------------------------------- *)

let test_run_parity () =
  let baseline = run_baseline 24 in
  List.iter
    (fun workers ->
      let merged, st = run_campaign ~workers ~jobs:1 (run_spec 24) in
      match merged with
      | Svc.M_run s ->
        Alcotest.(check string)
          (Printf.sprintf "summary workers=%d" workers)
          (summary_string baseline) (summary_string s);
        check
          (Printf.sprintf "race reports workers=%d" workers)
          true
          (baseline.Tester.distinct_races = s.Tester.distinct_races);
        check
          (Printf.sprintf "clean workers=%d" workers)
          true
          (st.Svc.st_failed = [] && st.Svc.st_spawned = st.Svc.st_workers)
      | _ -> Alcotest.fail "expected M_run")
    [ 1; 2; 4 ]

let test_run_parity_nested () =
  (* worker processes and in-worker domains compose: still identical *)
  let baseline = run_baseline 24 in
  let merged, _ = run_campaign ~workers:3 ~jobs:2 (run_spec 24) in
  match merged with
  | Svc.M_run s ->
    Alcotest.(check string) "summary workers=3 jobs=2"
      (summary_string baseline) (summary_string s)
  | _ -> Alcotest.fail "expected M_run"

let test_litmus_parity () =
  let t = mp_relaxed () in
  let base_summary, base_hist =
    Litmus.explore_summary ~jobs:1 ~config:litmus_config ~iters:300 t
  in
  List.iter
    (fun workers ->
      let merged, _ =
        run_campaign ~workers ~jobs:1
          (Svc.Litmus_c
             { name = t.Litmus.name; config = litmus_config; iters = 300 })
      in
      match merged with
      | Svc.M_litmus (s, hist) ->
        Alcotest.(check string)
          (Printf.sprintf "litmus summary workers=%d" workers)
          (summary_string base_summary) (summary_string s);
        check
          (Printf.sprintf "litmus histogram workers=%d" workers)
          true
          (Litmus.rank_hist hist = base_hist)
      | _ -> Alcotest.fail "expected M_litmus")
    [ 1; 2; 4 ]

let test_fuzz_parity () =
  let baseline = Fuzz.campaign ~coverage:true fuzz_cfg in
  let render r = Jsonx.to_pretty_string (Fuzz.report_to_json r) in
  List.iter
    (fun workers ->
      let merged, _ =
        run_campaign ~workers ~jobs:1
          (Svc.Fuzz_c { cfg = fuzz_cfg; coverage = true; range = None })
      in
      match merged with
      | Svc.M_fuzz r ->
        Alcotest.(check string)
          (Printf.sprintf "fuzz report workers=%d" workers)
          (render baseline) (render r)
      | _ -> Alcotest.fail "expected M_fuzz")
    [ 1; 2; 4 ]

let test_corpus_fuzz_parity () =
  (* corpus-guided campaign: the fabric's round-barrier wave driver must
     reproduce the in-process round loop byte for byte, admissions
     included *)
  let cfg =
    {
      fuzz_cfg with
      Fuzz.c_programs = 120;
      c_corpus = Some (Corpus.plan ~round:40 []);
    }
  in
  let baseline = Fuzz.campaign ~coverage:true cfg in
  (match baseline.Fuzz.r_corpus with
  | Some k -> check "baseline admitted entries" true (k.Fuzz.k_admitted <> [])
  | None -> Alcotest.fail "baseline has no corpus stats");
  let render r = Jsonx.to_pretty_string (Fuzz.report_to_json r) in
  List.iter
    (fun workers ->
      let merged, _ =
        run_campaign ~workers ~jobs:1
          (Svc.Fuzz_c { cfg; coverage = true; range = None })
      in
      match merged with
      | Svc.M_fuzz r ->
        Alcotest.(check string)
          (Printf.sprintf "corpus fuzz report workers=%d" workers)
          (render baseline) (render r)
      | _ -> Alcotest.fail "expected M_fuzz")
    [ 1; 2; 3 ]

let test_sweep_parity () =
  let family =
    match Sweep.find "rwlock" with
    | Some f -> f
    | None -> Alcotest.fail "rwlock family missing"
  in
  let iters = 30 and seed = 13L in
  let baseline =
    Sweep.merge ~family ~iters ~seed
      [ Sweep.run_shard ~family ~iters ~seed ~start:0 ~stride:1 () ]
  in
  let render r = Jsonx.to_pretty_string (Sweep.result_to_json r) in
  List.iter
    (fun workers ->
      let merged, _ =
        run_campaign ~workers ~jobs:1
          (Svc.Sweep_c
             { sw_family = "rwlock"; sw_iters = iters; sw_seed = seed })
      in
      match merged with
      | Svc.M_sweep r ->
        Alcotest.(check string)
          (Printf.sprintf "sweep result workers=%d" workers)
          (render baseline) (render r)
      | _ -> Alcotest.fail "expected M_sweep")
    [ 1; 2; 4 ]

let test_workers_clamped () =
  (* more workers than executions: clamped, not empty-sharded *)
  let merged, st = run_campaign ~workers:16 ~jobs:1 (run_spec 5) in
  check "clamped to total" true (st.Svc.st_workers = 5);
  match merged with
  | Svc.M_run s -> check "all executions ran" true (s.Tester.executions = 5)
  | _ -> Alcotest.fail "expected M_run"

(* ---------- cache ------------------------------------------------------ *)

let test_cache_warm_replay () =
  let dir = fresh_dir () in
  let cold_cache = open_cache dir in
  let cold, cold_st =
    run_campaign ~cache:cold_cache ~workers:2 ~jobs:1 (run_spec 24)
  in
  let cst = Option.get cold_st.Svc.st_cache in
  check "cold run spawned workers" true (cold_st.Svc.st_spawned = 2);
  check "cold run stored both shards" true
    (cst.Cache.stores = 2 && cst.Cache.hits = 0);
  (* a fresh Cache.t against the same directory: only disk state carries *)
  let warm_cache = open_cache dir in
  let warm, warm_st =
    run_campaign ~cache:warm_cache ~workers:2 ~jobs:1 (run_spec 24)
  in
  let wst = Option.get warm_st.Svc.st_cache in
  check "warm run spawned nothing" true (warm_st.Svc.st_spawned = 0);
  check "warm run executed nothing" true (warm_st.Svc.st_executions_run = 0);
  check "warm run all hits" true (wst.Cache.hits = 2 && wst.Cache.misses = 0);
  match (cold, warm) with
  | Svc.M_run a, Svc.M_run b ->
    Alcotest.(check string) "warm summary byte-identical" (summary_string a)
      (summary_string b)
  | _ -> Alcotest.fail "expected M_run"

let test_cache_key_sensitivity () =
  let e = Lazy.force exe in
  let key ~workers ~worker c = Svc.cache_key ~exe:e ~workers ~jobs:1 ~worker c in
  let base = run_spec 24 in
  check "key is stable" true
    (key ~workers:2 ~worker:0 base = key ~workers:2 ~worker:0 base);
  check "worker index in key" true
    (key ~workers:2 ~worker:0 base <> key ~workers:2 ~worker:1 base);
  check "worker count in key" true
    (key ~workers:2 ~worker:0 base <> key ~workers:4 ~worker:0 base);
  let other_seed =
    Svc.Run_c
      {
        workload = "ms-queue";
        buggy = true;
        scale = (ms_queue ()).Registry.default_scale;
        config = { run_config with Engine.seed = 100L };
        iters = 24;
      }
  in
  check "engine config in key" true
    (key ~workers:2 ~worker:0 base <> key ~workers:2 ~worker:0 other_seed)

let test_cache_corrupt_entry_is_miss () =
  let dir = fresh_dir () in
  let c = open_cache dir in
  let key = String.make 32 'a' in
  Cache.store c ~key [ 1; 2; 3 ];
  check "round trip" true (Cache.lookup c ~key = Some [ 1; 2; 3 ]);
  (* truncate the entry behind the cache's back *)
  let path = Filename.concat (Filename.concat dir "aa") (String.make 30 'a' ^ ".shard") in
  let oc = open_out path in
  output_string oc "c11svc-cache-v1\n";
  close_out oc;
  check "corrupt entry reads as miss" true
    ((Cache.lookup c ~key : int list option) = None);
  check "corrupt entry removed" false (Sys.file_exists path);
  let st = Cache.stats c in
  check "stats counted" true (st.Cache.hits = 1 && st.Cache.misses = 1)

(* ---------- crash re-claim and degraded summaries ---------------------- *)

let test_crash_reclaim_recovers () =
  let baseline = run_baseline 24 in
  let merged, st =
    run_campaign ~kill:(1, 1) ~workers:4 ~jobs:1 (run_spec 24)
  in
  check "extra spawn for the re-claim" true (st.Svc.st_spawned = 5);
  check "no range lost" true (st.Svc.st_failed = []);
  match merged with
  | Svc.M_run s ->
    Alcotest.(check string) "re-claimed campaign identical"
      (summary_string baseline) (summary_string s)
  | _ -> Alcotest.fail "expected M_run"

let test_crash_degraded_deterministic () =
  (* worker 1 dies on both attempts: its range is reported lost and the
     summary is the merge of the survivors — same bytes every time *)
  let run () = run_campaign ~kill:(1, 2) ~workers:4 ~jobs:1 (run_spec 24) in
  let merged_a, st_a = run () in
  let merged_b, st_b = run () in
  check "failed range named" true (st_a.Svc.st_failed = [ 1 ]);
  check "failure deterministic" true (st_b.Svc.st_failed = [ 1 ]);
  check "both attempts spawned" true (st_a.Svc.st_spawned = 5);
  match (merged_a, merged_b) with
  | Svc.M_run a, Svc.M_run b ->
    Alcotest.(check string) "degraded summary deterministic"
      (summary_string a) (summary_string b);
    check "survivors only" true (a.Tester.executions = 24 - 6)
    (* worker 1 of 4 over 24 indices owns 6 executions *)
  | _ -> Alcotest.fail "expected M_run"

(* ---------- progress aggregation --------------------------------------- *)

let test_progress_aggregated () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "c11svc_progress_%d.ndjson" (Unix.getpid ()))
  in
  let oc = open_out path in
  let progress = Progress.create ~out:oc ~interval_ns:0 ~total:24 in
  let merged, _ =
    match
      Svc.run_campaign ~exe:(Lazy.force exe) ~progress ~workers:2 ~jobs:1
        (run_spec 24)
    with
    | Ok r -> r
    | Error msg -> Alcotest.failf "run_campaign: %s" msg
  in
  close_out oc;
  let lines = ref [] in
  let ic = open_in path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let docs =
    List.rev_map
      (fun l ->
        match Jsonx.parse l with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad progress line %s: %s" l e)
      !lines
  in
  let kind j = Option.bind (Jsonx.member "kind" j) Jsonx.to_str in
  let finals = List.filter (fun j -> kind j = Some "final") docs in
  check "exactly one final record" true (List.length finals = 1);
  let final = List.hd finals in
  let int_of k j = Option.bind (Jsonx.member k j) Jsonx.to_int in
  check "final covers every execution" true
    (int_of "done" final = Some 24);
  match merged with
  | Svc.M_run s ->
    check "final findings match merged summary" true
      (int_of "findings" final
      = Some
          (List.length s.Tester.distinct_races
          + List.length s.Tester.distinct_cert_violations))
  | _ -> Alcotest.fail "expected M_run"

let suite =
  [
    Alcotest.test_case "run parity across workers" `Slow test_run_parity;
    Alcotest.test_case "run parity nested workers*jobs" `Slow
      test_run_parity_nested;
    Alcotest.test_case "litmus parity across workers" `Slow test_litmus_parity;
    Alcotest.test_case "fuzz parity across workers" `Slow test_fuzz_parity;
    Alcotest.test_case "corpus fuzz parity across workers" `Slow
      test_corpus_fuzz_parity;
    Alcotest.test_case "sweep parity across workers" `Slow test_sweep_parity;
    Alcotest.test_case "workers clamped to total" `Quick test_workers_clamped;
    Alcotest.test_case "cache warm replay" `Slow test_cache_warm_replay;
    Alcotest.test_case "cache key sensitivity" `Quick
      test_cache_key_sensitivity;
    Alcotest.test_case "cache corrupt entry is miss" `Quick
      test_cache_corrupt_entry_is_miss;
    Alcotest.test_case "crash re-claim recovers" `Slow
      test_crash_reclaim_recovers;
    Alcotest.test_case "crash degraded deterministic" `Slow
      test_crash_degraded_deterministic;
    Alcotest.test_case "progress aggregated across workers" `Slow
      test_progress_aggregated;
  ]
