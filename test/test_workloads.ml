(* Workloads: the Section 8.1 / Table 2 detection behaviour, and the
   correct variants' cleanliness, hold under the reproduction. *)

let check = Alcotest.(check bool)

let rate tool (w : Registry.t) ~variant ~iters =
  let config = Tool.config ~max_steps:150_000 tool in
  let s =
    Tester.run ~config ~iters
      (w.Registry.run ~variant ~scale:w.Registry.default_scale)
  in
  Tester.detection_rate s

let workload name =
  match Registry.find name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

let test_correct_variants_clean () =
  List.iter
    (fun (w : Registry.t) ->
      let r = rate Tool.C11tester w ~variant:Variant.Correct ~iters:60 in
      if r > 0.0 then
        Alcotest.failf "%s: correct variant flagged (%.1f%%)" w.Registry.name r)
    Registry.all

(* Section 8.1: only C11Tester can produce the executions exposing the
   injected seqlock and rwlock bugs. *)
let test_injected_bug name () =
  let w = workload name in
  check (name ^ ": c11tester detects") true
    (rate Tool.C11tester w ~variant:Variant.Buggy ~iters:150 > 10.0);
  check (name ^ ": tsan11 misses") true
    (rate Tool.Tsan11 w ~variant:Variant.Buggy ~iters:150 = 0.0);
  check (name ^ ": tsan11rec misses") true
    (rate Tool.Tsan11rec w ~variant:Variant.Buggy ~iters:150 = 0.0)

(* Table 2 qualitative shape. *)
let test_chase_lev_only_c11tester () =
  let w = workload "chase-lev-deque" in
  check "c11tester detects" true
    (rate Tool.C11tester w ~variant:Variant.Buggy ~iters:100 > 50.0);
  check "tsan11rec misses" true
    (rate Tool.Tsan11rec w ~variant:Variant.Buggy ~iters:100 = 0.0);
  check "tsan11 misses" true
    (rate Tool.Tsan11 w ~variant:Variant.Buggy ~iters:100 = 0.0)

let test_ms_queue_everyone () =
  let w = workload "ms-queue" in
  List.iter
    (fun tool ->
      check
        (Printf.sprintf "ms-queue under %s" (Tool.name tool))
        true
        (rate tool w ~variant:Variant.Buggy ~iters:60 = 100.0))
    Tool.all

let test_controlled_beats_uncontrolled () =
  (* averaged over the windowed-race benchmarks, the controlled schedulers
     find the bug more often than the bursty OS-style scheduler *)
  let benches = [ "linuxrwlocks"; "mcs-lock"; "mpmc-queue" ] in
  let avg tool =
    let rates =
      List.map
        (fun n -> rate tool (workload n) ~variant:Variant.Buggy ~iters:80)
        benches
    in
    List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates)
  in
  let c11 = avg Tool.C11tester and t11 = avg Tool.Tsan11 in
  check "controlled random beats bursty" true (c11 > t11 +. 5.0)

(* Application analogues (Section 8.2). *)

let test_silo_volatile_story () =
  let w = workload "silo" in
  (* C11Tester (volatiles as relaxed atomics): invariant violations, and
     no volatile races reported *)
  let config = Tool.config Tool.C11tester in
  let s =
    Tester.run ~config ~iters:80
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "c11tester: invariant violations" true (s.Tester.assert_executions > 0);
  check "c11tester: volatile races elided" true (s.Tester.race_executions = 0);
  (* volatiles as acquire/release: the violations disappear *)
  let config = Tool.config ~volatile_atomic_mo:Memorder.Acq_rel Tool.C11tester in
  let s =
    Tester.run ~config ~iters:80
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "acq_rel volatiles: no violations" true (s.Tester.assert_executions = 0);
  (* tsan-lineage tools: volatile races, but the weak behaviour is not
     reproduced under controlled scheduling *)
  let config = Tool.config Tool.Tsan11rec in
  let s =
    Tester.run ~config ~iters:80
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "tsan11rec: volatile races reported" true (s.Tester.race_executions > 0);
  check "tsan11rec: weak behaviour not reproduced" true
    (s.Tester.assert_executions = 0)

let test_mabain_app_bug () =
  let w = workload "mabain" in
  let config = Tool.config Tool.C11tester in
  let s =
    Tester.run ~config ~iters:100
      (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale)
  in
  check "missing-drain assertion failures" true (s.Tester.assert_executions > 0);
  check "data races found" true (s.Tester.race_executions > 0)

let test_iris_gdax_races () =
  List.iter
    (fun name ->
      let w = workload name in
      List.iter
        (fun tool ->
          check
            (Printf.sprintf "%s races under %s" name (Tool.name tool))
            true
            (rate tool w ~variant:Variant.Buggy ~iters:40 > 30.0))
        Tool.all)
    [ "iris"; "gdax" ]

let test_jsbench_runs () =
  let w = workload "jsbench" in
  List.iter
    (fun tool ->
      let config = Tool.config tool in
      let s =
        Tester.run ~config ~iters:5
          (w.Registry.run ~variant:Variant.Buggy ~scale:1)
      in
      check
        (Printf.sprintf "jsbench clean under %s" (Tool.name tool))
        true
        (s.Tester.buggy_executions = 0 && s.Tester.deadlocks = 0
       && s.Tester.step_limit_hits = 0))
    Tool.all

let test_jsbench_access_mix () =
  (* Table 3: non-atomic accesses dominate for the JS workload *)
  let w = workload "jsbench" in
  let config = Tool.config Tool.C11tester in
  let s =
    Tester.run ~config ~iters:2 (w.Registry.run ~variant:Variant.Buggy ~scale:2)
  in
  check "more na than atomic" true (s.Tester.total_na_ops > s.Tester.total_atomic_ops)

(* Functional sanity of the data structures themselves. *)

let test_ms_queue_fifo_per_producer () =
  let config = Tool.config Tool.C11tester in
  let s =
    Tester.run ~config ~iters:60 (fun () ->
        let q = Ms_queue.create ~capacity:16 in
        let seen = ref [] in
        let p =
          C11.Thread.spawn (fun () ->
              for v = 1 to 6 do
                Ms_queue.enqueue ~variant:Variant.Correct q v
              done)
        in
        let c =
          C11.Thread.spawn (fun () ->
              for _ = 1 to 6 do
                seen := Ms_queue.dequeue ~variant:Variant.Correct q :: !seen
              done)
        in
        C11.Thread.join p;
        C11.Thread.join c;
        C11.assert_that (List.rev !seen = [ 1; 2; 3; 4; 5; 6 ])
          "single-producer FIFO order")
  in
  check "fifo holds" true (s.Tester.buggy_executions = 0)

let test_chase_lev_no_loss_no_dup () =
  let config = Tool.config Tool.C11tester in
  let s =
    Tester.run ~config ~iters:60 (fun () ->
        let d = Chase_lev.create ~capacity:32 in
        let got = ref [] in
        let record = function
          | Some v -> got := v :: !got
          | None -> ()
        in
        let owner =
          C11.Thread.spawn (fun () ->
              for v = 1 to 8 do
                Chase_lev.push d v
              done;
              for _ = 1 to 8 do
                record (Chase_lev.take d)
              done)
        in
        let thief =
          C11.Thread.spawn (fun () ->
              for _ = 1 to 8 do
                record (Chase_lev.steal ~variant:Variant.Correct d)
              done)
        in
        C11.Thread.join owner;
        C11.Thread.join thief;
        let sorted = List.sort compare !got in
        C11.assert_that
          (List.length sorted = List.length (List.sort_uniq compare sorted))
          "no element taken twice")
  in
  check "no duplicates" true (s.Tester.buggy_executions = 0)

let test_extra_structures () =
  (* the extra suite members behave like classic missing-acquire bugs:
     buggy variants race under every tool, correct variants are clean *)
  List.iter
    (fun name ->
      let w = workload name in
      check (name ^ " buggy detected") true
        (rate Tool.C11tester w ~variant:Variant.Buggy ~iters:100 > 30.0);
      check (name ^ " correct clean") true
        (rate Tool.C11tester w ~variant:Variant.Correct ~iters:100 = 0.0))
    [ "treiber-stack"; "spsc-queue" ]

let test_registry_lookup () =
  check "find silo" true (Registry.find "silo" <> None);
  check "find nothing" true (Registry.find "nope" = None);
  check "category partition" true
    (List.length Registry.injected = 3
    && List.length Registry.data_structures = 9
    && List.length Registry.applications = 5)

let suite =
  [
    Alcotest.test_case "correct variants clean" `Slow test_correct_variants_clean;
    Alcotest.test_case "seqlock injected bug" `Slow (test_injected_bug "seqlock");
    Alcotest.test_case "rwlock injected bug" `Slow (test_injected_bug "rwlock");
    Alcotest.test_case "chase-lev only c11tester" `Slow test_chase_lev_only_c11tester;
    Alcotest.test_case "ms-queue found by all" `Slow test_ms_queue_everyone;
    Alcotest.test_case "controlled beats uncontrolled" `Slow
      test_controlled_beats_uncontrolled;
    Alcotest.test_case "silo volatile story" `Slow test_silo_volatile_story;
    Alcotest.test_case "mabain app bug" `Slow test_mabain_app_bug;
    Alcotest.test_case "iris/gdax races" `Slow test_iris_gdax_races;
    Alcotest.test_case "jsbench runs clean" `Slow test_jsbench_runs;
    Alcotest.test_case "jsbench access mix" `Slow test_jsbench_access_mix;
    Alcotest.test_case "ms-queue fifo" `Slow test_ms_queue_fifo_per_producer;
    Alcotest.test_case "chase-lev no dup" `Slow test_chase_lev_no_loss_no_dup;
    Alcotest.test_case "extra structures" `Slow test_extra_structures;
    Alcotest.test_case "registry" `Quick test_registry_lookup;
  ]
