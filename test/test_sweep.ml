(* Memory-order sweep families (lib/corpus/sweep.ml): golden verdict
   tables, sharding parity and the c11sweep-v1 artifact round-trip.

   The golden tables pin every cell's dynamic verdict (engine +
   certifier over 200 executions, seed 1) and its static lint rule hits.
   To regenerate after an intentional engine/lint change:

     dune exec bin/c11test.exe -- sweep seqlock --iters 200 --seed 1 \
       --ndjson - | jq -r 'select(.record=="cell")
         | "(\"" + .id + "\", \"" + .verdict + "\", [" +
           (.lint_rules | map("\"" + . + "\"") | join("; ")) + "]);"'

   (same for rwlock) and paste the cells below.  Both tables reproduce
   the versioned-read (seqlock) study's findings in model terms: no
   fence-less variant validates, and the fence-bearing variants are
   clean exactly when the first version read is acquire or stronger —
   the study's hardware-clean relaxed-first cells tear in the axiomatic
   model through stale-generation reads hardware rarely exhibits. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let family name =
  match Sweep.find name with
  | Some f -> f
  | None -> Alcotest.failf "sweep family %s missing" name

let run_merged ?(iters = 200) ?(seed = 1L) name =
  let family = family name in
  let shard =
    Sweep.run_shard ~family ~iters ~seed ~start:0 ~stride:1 ()
  in
  Sweep.merge ~family ~iters ~seed [ shard ]

(* ---------- golden verdict tables ------------------------------------- *)

let golden_seqlock =
  [
    ("first=relaxed,second=relaxed,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=acquire,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=seq_cst,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=acquire,second=relaxed,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=acquire,second=acquire,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=acquire,second=seq_cst,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=seq_cst,second=relaxed,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=seq_cst,second=acquire,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=seq_cst,second=seq_cst,fence=none", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=relaxed,fence=acquire", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=acquire,fence=acquire", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=seq_cst,fence=acquire", "torn", ["seqlock-missing-fence"]);
    ("first=acquire,second=relaxed,fence=acquire", "clean", []);
    ("first=acquire,second=acquire,fence=acquire", "clean", []);
    ("first=acquire,second=seq_cst,fence=acquire", "clean", []);
    ("first=seq_cst,second=relaxed,fence=acquire", "clean", []);
    ("first=seq_cst,second=acquire,fence=acquire", "clean", []);
    ("first=seq_cst,second=seq_cst,fence=acquire", "clean", []);
    ("first=relaxed,second=relaxed,fence=seq_cst", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=acquire,fence=seq_cst", "torn", ["seqlock-missing-fence"]);
    ("first=relaxed,second=seq_cst,fence=seq_cst", "torn", ["seqlock-missing-fence"]);
    ("first=acquire,second=relaxed,fence=seq_cst", "clean", []);
    ("first=acquire,second=acquire,fence=seq_cst", "clean", []);
    ("first=acquire,second=seq_cst,fence=seq_cst", "clean", []);
    ("first=seq_cst,second=relaxed,fence=seq_cst", "clean", []);
    ("first=seq_cst,second=acquire,fence=seq_cst", "clean", []);
    ("first=seq_cst,second=seq_cst,fence=seq_cst", "clean", []);
  ]

let golden_rwlock =
  [
    ("wlock=relaxed,wunlock=relaxed", "racy", ["relaxed-publication"]);
    ("wlock=relaxed,wunlock=release", "racy", ["relaxed-publication"]);
    ("wlock=relaxed,wunlock=seq_cst", "racy", ["relaxed-publication"]);
    ("wlock=acquire,wunlock=relaxed", "racy", ["relaxed-publication"]);
    ("wlock=acquire,wunlock=release", "clean", []);
    ("wlock=acquire,wunlock=seq_cst", "clean", []);
    ("wlock=seq_cst,wunlock=relaxed", "racy", ["relaxed-publication"]);
    ("wlock=seq_cst,wunlock=release", "clean", []);
    ("wlock=seq_cst,wunlock=seq_cst", "clean", []);
  ]

let check_golden name golden =
  let r = run_merged name in
  check_int (name ^ " cell count") (List.length golden)
    (List.length r.Sweep.rs_cells);
  List.iter2
    (fun (id, verdict, rules) c ->
      check_str (name ^ " cell id") id c.Sweep.cr_id;
      check_str (id ^ " verdict") verdict
        (Sweep.verdict_name c.Sweep.cr_verdict);
      check_bool (id ^ " lint rules") true (rules = c.Sweep.cr_lint_rules))
    golden r.Sweep.rs_cells

let test_golden_seqlock () = check_golden "seqlock" golden_seqlock
let test_golden_rwlock () = check_golden "rwlock" golden_rwlock

(* The study's bottom line, asserted structurally rather than cell by
   cell: every fence-less seqlock cell fails validation, and a
   fence-bearing cell is clean iff its first read is acquire+. *)
let test_seqlock_structure () =
  let r = run_merged "seqlock" in
  List.iter
    (fun c ->
      let param k = List.assoc k c.Sweep.cr_params in
      let expect_clean =
        param "fence" <> "none" && param "first" <> "relaxed"
      in
      check_bool (c.Sweep.cr_id ^ " clean iff acquire-first + fence")
        expect_clean
        (c.Sweep.cr_verdict = Sweep.V_clean);
      (* differential agreement: the static seqlock lint flags exactly
         the cells the engine tears *)
      check_bool (c.Sweep.cr_id ^ " lint agrees with engine")
        (not expect_clean)
        (List.mem "seqlock-missing-fence" c.Sweep.cr_lint_rules))
    r.Sweep.rs_cells

(* No cell anywhere disagrees with the certifier: the exit-1 verdict is
   reserved for engine/certifier splits and the shipped families have
   none. *)
let test_no_cert_rejections () =
  List.iter
    (fun f ->
      let r = run_merged ~iters:60 f.Sweep.fa_name in
      check_int (f.Sweep.fa_name ^ " exit code") 0 (Sweep.exit_code r);
      List.iter
        (fun c ->
          check_int (c.Sweep.cr_id ^ " cert rejections") 0
            c.Sweep.cr_stats.Sweep.st_cert_rejected)
        r.Sweep.rs_cells)
    Sweep.families

(* ---------- sharding parity -------------------------------------------- *)

let result_string r = Jsonx.to_pretty_string (Sweep.result_to_json r)

let test_shard_parity () =
  let family = family "seqlock" in
  let iters = 40 and seed = 9L in
  let run ~start ~stride =
    Sweep.run_shard ~family ~iters ~seed ~start ~stride ()
  in
  let sequential =
    Sweep.merge ~family ~iters ~seed [ run ~start:0 ~stride:1 ]
  in
  List.iter
    (fun stride ->
      let shards = List.init stride (fun w -> run ~start:w ~stride) in
      (* order of shards must not matter: counters are additive *)
      let merged = Sweep.merge ~family ~iters ~seed (List.rev shards) in
      check_str
        (Printf.sprintf "merge of %d shards" stride)
        (result_string sequential) (result_string merged))
    [ 2; 3; 7 ]

(* ---------- c11sweep-v1 round-trip ------------------------------------- *)

let test_ndjson_roundtrip () =
  List.iter
    (fun f ->
      let r = run_merged ~iters:20 ~seed:5L f.Sweep.fa_name in
      match Sweep.result_of_ndjson (Sweep.result_to_ndjson r) with
      | Error e -> Alcotest.failf "%s round-trip: %s" f.Sweep.fa_name e
      | Ok r' ->
        check_str (f.Sweep.fa_name ^ " round-trip") (result_string r)
          (result_string r'))
    Sweep.families

let test_ndjson_rejects () =
  let r = run_merged ~iters:5 ~seed:2L "dekker" in
  let lines = Sweep.result_to_ndjson r in
  let expect_err what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected Error" what
  in
  expect_err "no campaign record" (Sweep.result_of_ndjson (List.tl lines));
  expect_err "missing cell"
    (Sweep.result_of_ndjson
       (List.filteri (fun i _ -> i <> 3) lines));
  expect_err "alien schema"
    (Sweep.result_of_ndjson
       (Jsonx.Obj [ ("schema", Jsonx.String "mystery-v9") ] :: List.tl lines));
  expect_err "empty" (Sweep.result_of_ndjson [])

(* ---------- catalog ---------------------------------------------------- *)

let test_catalog () =
  check_int "four families" 4 (List.length Sweep.families);
  List.iter
    (fun f ->
      check_bool (f.Sweep.fa_name ^ " findable") true
        (match Sweep.find f.Sweep.fa_name with
        | Some g -> g.Sweep.fa_name = f.Sweep.fa_name
        | None -> false);
      check_int
        (f.Sweep.fa_name ^ " total")
        (List.length f.Sweep.fa_cells * 3)
        (Sweep.total ~family:f ~iters:3);
      (* cell ids are unique and indices dense ascending *)
      List.iteri
        (fun i c -> check_int (f.Sweep.fa_name ^ " index") i c.Sweep.cl_index)
        f.Sweep.fa_cells;
      let ids = List.map (fun c -> c.Sweep.cl_id) f.Sweep.fa_cells in
      check_int
        (f.Sweep.fa_name ^ " distinct ids")
        (List.length ids)
        (List.length (List.sort_uniq String.compare ids));
      (* every cell model is a valid closed program *)
      List.iter
        (fun c ->
          match Progir.validate c.Sweep.cl_model with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s model: %s" c.Sweep.cl_id e)
        f.Sweep.fa_cells)
    Sweep.families;
  check_bool "unknown family" true (Sweep.find "nope" = None)

let suite =
  [
    Alcotest.test_case "golden seqlock table" `Quick test_golden_seqlock;
    Alcotest.test_case "golden rwlock table" `Quick test_golden_rwlock;
    Alcotest.test_case "seqlock structure" `Quick test_seqlock_structure;
    Alcotest.test_case "no cert rejections" `Quick test_no_cert_rejections;
    Alcotest.test_case "shard parity" `Quick test_shard_parity;
    Alcotest.test_case "ndjson round-trip" `Quick test_ndjson_roundtrip;
    Alcotest.test_case "ndjson rejects malformed" `Quick test_ndjson_rejects;
    Alcotest.test_case "catalog" `Quick test_catalog;
  ]
