(* The modification-order graph: unit tests for AddEdge / AddRMWEdge and a
   property-based validation of Theorem 1 (clock-vector comparison equals
   graph reachability) against a DFS reference, over randomly generated
   graphs built with the same discipline the operational model uses. *)

let check = Alcotest.(check bool)

let mk_store ?(tid = 0) ?(loc = 0) seq =
  {
    Action.seq;
    tid;
    kind = Action.Store;
    loc;
    mo = Memorder.Relaxed;
    value = 0;
    rf = None;
    hb_cv = Clockvec.of_slot ~tid ~seq;
    rf_cv = None;
    rmw_claimed = false;
    volatile = false;
    mo_node = Action.No_graph_node;
  }

let test_simple_edge () =
  let g = Mograph.create () in
  let a = mk_store ~tid:0 1 and b = mk_store ~tid:1 2 in
  Mograph.add_edge g (Mograph.get_node g a) (Mograph.get_node g b);
  check "a reaches b" true (Mograph.reaches g a b);
  check "b does not reach a" false (Mograph.reaches g b a);
  check "matches dfs" true (Mograph.reaches_dfs g a b);
  check "acyclic" true (Mograph.check_acyclic g)

let test_transitive_propagation () =
  let g = Mograph.create () in
  let stores = Array.init 5 (fun i -> mk_store ~tid:i (i + 1)) in
  (* chain 0 -> 1 -> 2 -> 3, then 4 -> 0 must propagate through the chain *)
  for i = 0 to 2 do
    Mograph.add_edge g
      (Mograph.get_node g stores.(i))
      (Mograph.get_node g stores.(i + 1))
  done;
  Mograph.add_edge g (Mograph.get_node g stores.(4)) (Mograph.get_node g stores.(0));
  check "4 reaches 3 transitively" true (Mograph.reaches g stores.(4) stores.(3));
  check "3 does not reach 4" false (Mograph.reaches g stores.(3) stores.(4))

let test_rmw_edge_migration () =
  let g = Mograph.create () in
  let s = mk_store ~tid:0 1 in
  let later = mk_store ~tid:1 2 in
  let rmw = mk_store ~tid:2 3 in
  (* s -> later, then rmw pinned right after s: the edge must migrate *)
  Mograph.add_edge g (Mograph.get_node g s) (Mograph.get_node g later);
  Mograph.add_rmw_edge g (Mograph.get_node g s) (Mograph.get_node g rmw);
  check "s reaches rmw" true (Mograph.reaches g s rmw);
  check "rmw reaches later (migrated)" true (Mograph.reaches g rmw later);
  check "later does not reach rmw" false (Mograph.reaches g later rmw);
  check "acyclic" true (Mograph.check_acyclic g);
  (* a new edge into s must land after the rmw chain *)
  let newer = mk_store ~tid:3 4 in
  Mograph.add_edge g (Mograph.get_node g newer) (Mograph.get_node g s);
  check "dfs agrees everywhere" true
    (List.for_all
       (fun (a, b) -> Mograph.reaches g a b = Mograph.reaches_dfs g a b)
       [ (s, rmw); (rmw, later); (newer, s); (s, newer); (newer, later) ])

let test_remove_node () =
  let g = Mograph.create () in
  let a = mk_store ~tid:0 1 and b = mk_store ~tid:1 2 in
  Mograph.add_edge g (Mograph.get_node g a) (Mograph.get_node g b);
  check "size 2" true (Mograph.size g = 2);
  Mograph.remove_node g a;
  check "size 1 after removal" true (Mograph.size g = 1);
  check "find_node returns None" true (Mograph.find_node g a = None)

let test_to_dot () =
  let g = Mograph.create () in
  let a = mk_store ~tid:0 1 and b = mk_store ~tid:1 2 and r = mk_store ~tid:2 3 in
  Mograph.add_edge g (Mograph.get_node g a) (Mograph.get_node g b);
  Mograph.add_rmw_edge g (Mograph.get_node g b) (Mograph.get_node g r);
  let dot = Mograph.to_dot g in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length dot && (String.sub dot i n = needle || go (i + 1))
    in
    go 0
  in
  check "digraph header" true (has "digraph mo");
  check "mo edge rendered" true (has "n1 -> n2");
  check "rmw edge rendered" true (has "n2 -> n3 [style=bold");
  check "closing brace" true (has "}")

let test_self_edge_ignored () =
  let g = Mograph.create () in
  let a = mk_store ~tid:0 1 in
  let n = Mograph.get_node g a in
  Mograph.add_edge g n n;
  check "still acyclic" true (Mograph.check_acyclic g)

(* ------------------------------------------------------------------ *)
(* Theorem 1 property.

   We emulate the operational model's usage of the graph: stores arrive
   with increasing sequence numbers from a handful of threads; each new
   store gets edges from its thread's previous store (sb-induced mo) and
   from a random subset of older stores (WritePriorSet); occasionally an
   older store [s] receives edges from older stores [e] that cannot
   already be reached from [s] (ReadPriorSet + feasibility check); and some
   new stores are RMWs pinned behind an unclaimed older store. *)

type op =
  | New_store of int (* thread *) * int list (* extra predecessors (indices) *)
  | New_rmw of int (* thread *)
  | Old_edges of int (* target index *) * int list (* source indices *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (frequency
         [
           (5, map2 (fun t ps -> New_store (t, ps)) (int_range 0 3) (list_size (int_range 0 3) (int_range 0 1000)));
           (2, map (fun t -> New_rmw t) (int_range 0 3));
           (2, map2 (fun t ss -> Old_edges (t, ss)) (int_range 0 1000) (list_size (int_range 1 3) (int_range 0 1000)));
         ]))

let build ops =
  let g = Mograph.create () in
  let nodes = ref [||] in
  let last_by_thread = Array.make 4 None in
  let seq = ref 0 in
  let nth i arr = if Array.length arr = 0 then None else Some arr.(i mod Array.length arr) in
  let add_new tid =
    incr seq;
    let s = mk_store ~tid !seq in
    let n = Mograph.get_node g s in
    (match last_by_thread.(tid) with
    | Some prev -> Mograph.add_edge g (Mograph.get_node g prev) n
    | None -> ());
    last_by_thread.(tid) <- Some s;
    nodes := Array.append !nodes [| s |];
    s
  in
  List.iter
    (fun op ->
      match op with
      | New_store (tid, preds) ->
        let s = add_new tid in
        List.iter
          (fun pi ->
            match nth pi !nodes with
            | Some p when p.Action.seq <> s.Action.seq ->
              Mograph.add_edge g (Mograph.get_node g p) (Mograph.get_node g s)
            | _ -> ())
          preds
      | New_rmw tid -> (
        (* pin the new node behind an unclaimed store, like an RMW.  The
           operational model only lets an RMW read a store that is not
           hb-superseded and whose prior-set constraints are feasible; the
           reading thread's previous store is always in the prior set. *)
        let p = last_by_thread.(tid) in
        let feasible (s : Action.t) =
          match p with
          | Some prev when prev.Action.seq <> s.Action.seq ->
            not (Mograph.edge_would_close_cycle g ~from:prev ~to_:s)
          | _ -> true
        in
        let eligible =
          Array.to_list !nodes
          |> List.filter (fun (s : Action.t) ->
                 (not s.rmw_claimed) && feasible s)
        in
        match eligible with
        | [] -> ignore (add_new tid)
        | target :: _ ->
          let r = add_new tid in
          (* the load phase adds the prior-set edge prev -> target *)
          (match p with
          | Some prev when prev.Action.seq <> target.Action.seq ->
            Mograph.add_edge g
              (Mograph.get_node g prev)
              (Mograph.get_node g target)
          | _ -> ());
          target.Action.rmw_claimed <- true;
          Mograph.add_rmw_edge g
            (Mograph.get_node g target)
            (Mograph.get_node g r))
      | Old_edges (ti, sources) -> (
        match nth ti !nodes with
        | None -> ()
        | Some s ->
          List.iter
            (fun si ->
              match nth si !nodes with
              | Some e
                when e.Action.seq <> s.Action.seq
                     && not (Mograph.edge_would_close_cycle g ~from:e ~to_:s)
                ->
                (* mimics ReadPriorSet: only add if it cannot close a cycle *)
                Mograph.add_edge g (Mograph.get_node g e) (Mograph.get_node g s)
              | _ -> ())
            sources))
    ops;
  (g, Array.to_list !nodes)

let prop_theorem_1 =
  QCheck.Test.make ~name:"Theorem 1: CV comparison = DFS reachability"
    ~count:200
    (QCheck.make gen_ops)
    (fun ops ->
      let g, nodes = build ops in
      Mograph.check_acyclic g
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Mograph.reaches g a b = Mograph.reaches_dfs g a b)
               nodes)
           nodes)

(* edge_would_close_cycle must agree with a from-scratch DFS oracle: chase
   [from]'s rmw chain exactly as AddEdge would (the chain running into
   [to_] means the edge is redundant), then ask whether [to_] reaches the
   chain's end by searching the edge arrays and rmw links directly —
   never through clock vectors.  The agreement must survive pruning: the
   pruner only ever removes predecessor-closed sets (everything mo-before
   an anchor), which is exactly what keeps Theorem 1 valid on the live
   nodes, so we prune the same way and re-check every live pair. *)

let node_dfs_reaches (start : Mograph.node) (target : Mograph.node) =
  let visited = Hashtbl.create 16 in
  let rec go (n : Mograph.node) =
    n == target
    ||
    if Hashtbl.mem visited n.Mograph.action.Action.seq then false
    else begin
      Hashtbl.add visited n.Mograph.action.Action.seq ();
      let hit = ref false in
      for i = 0 to n.Mograph.nedges - 1 do
        if (not !hit) && go n.Mograph.edges.(i) then hit := true
      done;
      (match n.Mograph.rmw with
      | Some r when not !hit -> hit := go r
      | _ -> ());
      !hit
    end
  in
  go start

let close_cycle_oracle g ~from ~to_ =
  if from.Action.seq = to_.Action.seq then false
  else
    match (Mograph.find_node g from, Mograph.find_node g to_) with
    | Some nf, Some nt ->
      let rec chain_end (n : Mograph.node) =
        match n.Mograph.rmw with
        | Some r -> if r == nt then None else chain_end r
        | None -> Some n
      in
      (match chain_end nf with
      | None -> false
      | Some eff -> node_dfs_reaches nt eff)
    | _ -> QCheck.Test.fail_report "oracle queried on a pruned action"

let prop_would_close_cycle =
  QCheck.Test.make
    ~name:"edge_would_close_cycle = DFS feasibility oracle (incl. pruned)"
    ~count:200
    (QCheck.make QCheck.Gen.(pair gen_ops (int_range 0 1000)))
    (fun (ops, anchor_pick) ->
      let g, nodes = build ops in
      let agree ns =
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                Mograph.edge_would_close_cycle g ~from:a ~to_:b
                = close_cycle_oracle g ~from:a ~to_:b)
              ns)
          ns
      in
      agree nodes
      &&
      match nodes with
      | [] -> true
      | _ ->
        let anchor = List.nth nodes (anchor_pick mod List.length nodes) in
        let doomed =
          List.filter
            (fun (x : Action.t) ->
              x.Action.seq <> anchor.Action.seq && Mograph.reaches g x anchor)
            nodes
        in
        List.iter (Mograph.remove_node g) doomed;
        let live =
          List.filter (fun x -> Mograph.find_node g x <> None) nodes
        in
        agree live)

let prop_acyclic_invariant =
  QCheck.Test.make ~name:"construction discipline keeps the graph acyclic"
    ~count:200
    (QCheck.make gen_ops)
    (fun ops ->
      let g, _ = build ops in
      Mograph.check_acyclic g)

let suite =
  [
    Alcotest.test_case "simple edge" `Quick test_simple_edge;
    Alcotest.test_case "transitive propagation" `Quick test_transitive_propagation;
    Alcotest.test_case "rmw edge migration" `Quick test_rmw_edge_migration;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "self edge ignored" `Quick test_self_edge_ignored;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_theorem_1; prop_would_close_cycle; prop_acyclic_invariant ]
