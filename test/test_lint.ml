(* C11lint: memory-order lattice laws, analyzer verdict and hygiene-rule
   units, static-model calibration (the whole litmus catalog clean, the
   seeded-bug workload models as documented), the c11lint-v1 round trip,
   parallel merge parity, and the headline QCheck soundness property —
   no statically race-free program ever races dynamically. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- memory-order lattice laws -------------------------------- *)

let orders = Memorder.all
let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) orders) orders

let name mo = Memorder.to_string mo

let test_lattice_order () =
  List.iter
    (fun a -> check_bool (name a ^ " reflexive") true (Memorder.stronger_than a a))
    orders;
  List.iter
    (fun (a, b) ->
      if Memorder.stronger_than a b && Memorder.stronger_than b a then
        check_bool
          (Printf.sprintf "antisymmetry %s/%s" (name a) (name b))
          true (Memorder.equal a b))
    pairs;
  List.iter
    (fun (a, b) ->
      List.iter
        (fun c ->
          if Memorder.stronger_than a b && Memorder.stronger_than b c then
            check_bool
              (Printf.sprintf "transitivity %s/%s/%s" (name a) (name b) (name c))
              true (Memorder.stronger_than a c))
        orders)
    pairs

let test_lattice_bounds () =
  List.iter
    (fun (a, b) ->
      let j = Memorder.join a b and m = Memorder.meet a b in
      let lbl op = Printf.sprintf "%s %s %s" op (name a) (name b) in
      (* join is an upper bound, and the least one *)
      check_bool (lbl "join>=a") true (Memorder.stronger_than j a);
      check_bool (lbl "join>=b") true (Memorder.stronger_than j b);
      List.iter
        (fun u ->
          if Memorder.stronger_than u a && Memorder.stronger_than u b then
            check_bool (lbl "join least") true (Memorder.stronger_than u j))
        orders;
      (* meet is a lower bound, and the greatest one *)
      check_bool (lbl "meet<=a") true (Memorder.stronger_than a m);
      check_bool (lbl "meet<=b") true (Memorder.stronger_than b m);
      List.iter
        (fun l ->
          if Memorder.stronger_than a l && Memorder.stronger_than b l then
            check_bool (lbl "meet greatest") true (Memorder.stronger_than m l))
        orders)
    pairs;
  (* the landmark points of the diamond *)
  check_bool "join acq rel = acq_rel" true
    (Memorder.equal (Memorder.join Memorder.Acquire Memorder.Release)
       Memorder.Acq_rel);
  check_bool "meet acq rel = relaxed" true
    (Memorder.equal (Memorder.meet Memorder.Acquire Memorder.Release)
       Memorder.Relaxed);
  check_bool "acq vs rel incomparable" false
    (Memorder.stronger_than Memorder.Acquire Memorder.Release
    || Memorder.stronger_than Memorder.Release Memorder.Acquire)

(* The acquire/release/sc predicates are upward closed in the lattice:
   strengthening an order never loses a guarantee. *)
let test_lattice_predicates () =
  List.iter
    (fun (a, b) ->
      if Memorder.stronger_than a b then begin
        if Memorder.is_acquire b then
          check_bool "is_acquire monotone" true (Memorder.is_acquire a);
        if Memorder.is_release b then
          check_bool "is_release monotone" true (Memorder.is_release a);
        if Memorder.is_seq_cst b then
          check_bool "is_seq_cst monotone" true (Memorder.is_seq_cst a)
      end)
    pairs

(* ---------- analyzer units ------------------------------------------- *)

open Progir

let rlx = Memorder.Relaxed
let mk ?(profile = Mixed) ?(atomics = 0) ?(na = 0) ?(mutexes = 0) bodies =
  {
    p_seed = 0L;
    p_profile = profile;
    p_atomic_locs = atomics;
    p_na_locs = na;
    p_mutexes = mutexes;
    p_threads = Array.of_list (List.map Array.of_list bodies);
  }

let verdict_of r loc = List.assoc loc r.Lint.res_verdicts

let test_atomics_never_race () =
  let p =
    mk ~atomics:1
      [
        [];
        [ Store { loc = 0; mo = rlx; value = 1 } ];
        [ Load { loc = 0; mo = rlx } ];
      ]
  in
  let r = Lint.analyze p in
  check_bool "race-free" true r.Lint.res_race_free;
  check_bool "a0 race-free" true (verdict_of r "a0" = Lint.Race_free)

let test_unprotected_na_races () =
  let p =
    mk ~na:1
      [ []; [ Na_write { na = 0; value = 1 } ]; [ Na_read { na = 0 } ] ]
  in
  let r = Lint.analyze p in
  check_bool "racy" false r.Lint.res_race_free;
  match verdict_of r "n0" with
  | Lint.Potential_race { w_first; w_second } ->
    check_int "witness first thread" 1 w_first.Lint.ac_thread;
    check_int "witness second thread" 2 w_second.Lint.ac_thread;
    check_bool "first is the write" true w_first.Lint.ac_write
  | _ -> Alcotest.fail "expected Potential_race on n0"

let test_mutex_protects () =
  let section body = (Lock { m = 0 } :: body) @ [ Unlock { m = 0 } ] in
  let p =
    mk ~na:1 ~mutexes:1
      [
        [];
        section [ Na_write { na = 0; value = 1 } ];
        section [ Na_read { na = 0 } ];
      ]
  in
  let r = Lint.analyze p in
  check_bool "race-free" true r.Lint.res_race_free;
  match verdict_of r "n0" with
  | Lint.Protected [ 0 ] -> ()
  | _ -> Alcotest.fail "expected Protected {m0} on n0"

let test_same_thread_is_race_free () =
  let p =
    mk ~na:1
      [ []; [ Na_write { na = 0; value = 1 }; Na_read { na = 0 } ]; [ Yield ] ]
  in
  let r = Lint.analyze p in
  check_bool "race-free" true r.Lint.res_race_free

let hits_of rule r =
  List.filter (fun h -> h.Lint.h_rule = rule) r.Lint.res_hits

let test_overstrong_order_hit () =
  (* a0 is touched by one thread only: its seq_cst store is overstrong *)
  let p =
    mk ~atomics:1
      [ []; [ Store { loc = 0; mo = Memorder.Seq_cst; value = 1 } ]; [ Yield ] ]
  in
  let r = Lint.analyze p in
  check_bool "overstrong hit" true (hits_of "overstrong-order" r <> []);
  check_bool "still race-free" true r.Lint.res_race_free

let test_redundant_fence_hit () =
  let p =
    mk ~atomics:1
      [
        [];
        [ Fence Memorder.Seq_cst; Fence Memorder.Seq_cst ];
        [ Load { loc = 0; mo = rlx } ];
        [ Store { loc = 0; mo = rlx; value = 1 } ];
      ]
  in
  let r = Lint.analyze p in
  check_bool "redundant-fence hit" true (hits_of "redundant-fence" r <> [])

let test_relaxed_publication_hit () =
  (* mp with non-atomic data and a fully relaxed flag: the racy NA write
     is published with neither release nor acquire *)
  let racy =
    mk ~atomics:1 ~na:1
      [
        [];
        [ Na_write { na = 0; value = 1 }; Store { loc = 0; mo = rlx; value = 1 } ];
        [ Load { loc = 0; mo = rlx }; Na_read { na = 0 } ];
      ]
  in
  check_bool "relaxed pub hit" true
    (hits_of "relaxed-publication" (Lint.analyze racy) <> []);
  (* the rel/acq version of the same channel is strong: no hit *)
  let strong =
    mk ~atomics:1 ~na:1
      [
        [];
        [
          Na_write { na = 0; value = 1 };
          Store { loc = 0; mo = Memorder.Release; value = 1 };
        ];
        [ Load { loc = 0; mo = Memorder.Acquire }; Na_read { na = 0 } ];
      ]
  in
  check_bool "rel/acq channel clean" true
    (hits_of "relaxed-publication" (Lint.analyze strong) = [])

(* ---------- static-model calibration --------------------------------- *)

let test_lmodel_covers_catalog () =
  Alcotest.(check (list string))
    "lmodel names = litmus catalog"
    (List.map (fun t -> t.Litmus.name) Litmus.catalog)
    (List.map fst Lmodel.all)

let test_litmus_catalog_clean () =
  List.iter
    (fun (nm, p) ->
      (match Progir.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid model: %s" nm e);
      let r = Lint.analyze ~label:nm p in
      check_bool (nm ^ " clean") true (Lint.clean r))
    Lmodel.all

let test_workload_models () =
  let get nm =
    match Wmodel.find nm with
    | Some p -> Lint.analyze ~label:nm p
    | None -> Alcotest.failf "missing workload model %s" nm
  in
  let correct = get "seqlock-versioned-correct" in
  check_bool "fence-correct seqlock clean" true (Lint.clean correct);
  let buggy = get "seqlock-versioned-buggy" in
  check_bool "buggy seqlock racy" false buggy.Lint.res_race_free;
  check_bool "buggy seqlock missing fence" true
    (hits_of "seqlock-missing-fence" buggy <> []);
  check_bool "buggy seqlock relaxed pub" true
    (hits_of "relaxed-publication" buggy <> []);
  let rw_ok = get "rwlock-correct" in
  check_bool "rwlock-correct conservative Potential_race" false
    rw_ok.Lint.res_race_free;
  check_bool "rwlock-correct no hygiene hits" true (rw_ok.Lint.res_hits = []);
  let rw_bug = get "rwlock-buggy" in
  check_bool "rwlock-buggy racy" false rw_bug.Lint.res_race_free;
  check_bool "rwlock-buggy relaxed pub" true
    (hits_of "relaxed-publication" rw_bug <> [])

(* ---------- c11lint-v1 round trip ------------------------------------ *)

let sample_results () =
  List.mapi
    (fun i (nm, p) -> (i, Lint.analyze ~label:nm p))
    (Lmodel.all @ Wmodel.all)

let test_ndjson_roundtrip () =
  let results = sample_results () in
  match Lint.campaign_of_ndjson (Lint.campaign_to_ndjson results) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok back -> check_bool "round trip identity" true (back = results)

let test_ndjson_rejects_malformed () =
  let results = sample_results () in
  (match
     Lint.campaign_of_ndjson
       (List.tl (Lint.campaign_to_ndjson results) @ [ Jsonx.Obj [] ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a record with no schema");
  match
    Lint.campaign_of_ndjson
      (match Lint.campaign_to_ndjson results with
      | header :: _ :: rest -> header :: rest
      | l -> l)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a target count mismatch"

(* ---------- parallel merge parity ------------------------------------ *)

let test_parallel_parity () =
  let targets =
    Array.of_list (List.map fst Lmodel.all @ List.map fst Wmodel.all)
  in
  let gen = Fuzz.default_gen_cfg in
  let seed = 7L in
  let total = Array.length targets + 60 in
  let run jobs =
    let shards =
      if jobs = 1 then
        [
          Svc.lint_shard ~progress:Progress.null ~targets ~gen ~seed ~total
            ~start:0 ~stride:1;
        ]
      else
        Par.spawn_workers ~jobs (fun ~worker ->
            Svc.lint_shard ~progress:Progress.null ~targets ~gen ~seed ~total
              ~start:worker ~stride:jobs)
        |> Array.to_list
    in
    Par.Merge.dedup_indexed
      ~key:(fun (r : Lint.result) -> r.Lint.res_target)
      shards
  in
  let j1 = run 1 in
  check_int "all items analyzed" total (List.length j1);
  List.iter
    (fun jobs ->
      let s1 =
        String.concat "\n"
          (List.map Jsonx.to_string (Lint.campaign_to_ndjson j1))
      in
      let sn =
        String.concat "\n"
          (List.map Jsonx.to_string (Lint.campaign_to_ndjson (run jobs)))
      in
      check_bool (Printf.sprintf "-j %d byte-identical" jobs) true (s1 = sn))
    [ 2; 4 ]

(* ---------- the soundness property (the differential headline) ------- *)

(* >= 1k programs across all four profiles: a statically race-free
   program must pass an 8-seed dynamic sweep with zero engine-reported
   races.  Fuzz.run_one itself enforces the contract — a dynamic race on
   a statically race-free program surfaces as a Lint_unsound finding —
   so asserting Passed checks both directions at once. *)
let prop_lint_sound =
  QCheck.Test.make ~name:"statically race-free programs never race" ~count:1000
    QCheck.(int_range 0 1_000_000) (fun n ->
      let rng = Rng.create (Int64.of_int (0x11A7 + n)) in
      let cfg =
        {
          Fuzz.g_threads = 1 + Rng.int rng 4;
          g_ops = 1 + Rng.int rng 8;
          g_atomic_locs = 1 + Rng.int rng 4;
          g_na_locs = Rng.int rng 3;
          g_mutexes = Rng.int rng 3;
          g_profile = List.nth Fuzz.all_profiles (n mod 4);
          g_sc_bias = Rng.int rng 30;
        }
      in
      let p = Fuzz.generate ~cfg ~seed:(Int64.of_int ((n * 733) + 11)) in
      (not (Lint.statically_race_free p))
      ||
      let config = Fuzz.engine_config ~mutation:None in
      let rec sweep attempt =
        if attempt >= 8 then true
        else
          match
            Fuzz.run_one ~config ~certify:false
              ~seed:(Fuzz.exec_seed p ~attempt) p
          with
          | Fuzz.Passed _ -> sweep (attempt + 1)
          | Fuzz.Failed kind ->
            QCheck.Test.fail_reportf
              "statically race-free program failed dynamically (attempt %d): %s"
              attempt (Fuzz.finding_key kind)
      in
      sweep 0)

(* The differential wrapper in Fuzz.run_one flags the inverse direction:
   feed it a program lint proves race-free together with a mutated
   engine known to fabricate races, and the Lint_unsound finding kind
   must come back (exercised end-to-end by the mutation tests; here we
   check the kind's key plumbing). *)
let test_lint_unsound_kind () =
  let key r = Fuzz.finding_key (Fuzz.Lint_unsound { race = r }) in
  check_bool "key prefix" true
    (String.sub (key "na-load:3 vs na-store:7") 0 12 = "lint-unsound");
  (* dedup key is site-shaped, not index-shaped: differing digits fold *)
  check_bool "key strips digits" true
    (key "na-load:3 vs na-store:7" = key "na-load:14 vs na-store:9")

let suite =
  [
    ("lattice order laws", `Quick, test_lattice_order);
    ("lattice join/meet bounds", `Quick, test_lattice_bounds);
    ("lattice predicates monotone", `Quick, test_lattice_predicates);
    ("atomic/atomic never races", `Quick, test_atomics_never_race);
    ("unprotected NA pair races", `Quick, test_unprotected_na_races);
    ("common mutex protects", `Quick, test_mutex_protects);
    ("same-thread conflicts race-free", `Quick, test_same_thread_is_race_free);
    ("overstrong-order rule", `Quick, test_overstrong_order_hit);
    ("redundant-fence rule", `Quick, test_redundant_fence_hit);
    ("relaxed-publication rule", `Quick, test_relaxed_publication_hit);
    ("lmodel covers the litmus catalog", `Quick, test_lmodel_covers_catalog);
    ("litmus catalog lints clean", `Quick, test_litmus_catalog_clean);
    ("workload models calibrated", `Quick, test_workload_models);
    ("c11lint-v1 round trip", `Quick, test_ndjson_roundtrip);
    ("c11lint-v1 rejects malformed", `Quick, test_ndjson_rejects_malformed);
    ("merge parity across jobs", `Quick, test_parallel_parity);
    ("lint-unsound finding kind", `Quick, test_lint_unsound_kind);
    QCheck_alcotest.to_alcotest prop_lint_sound;
  ]
