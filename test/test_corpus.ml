(* Coverage-guided corpus fuzzing (lib/corpus + lib/fuzz):
   validity-preserving mutation, on-disk entry storage with the
   corrupt-entry contract, round-barrier admission determinism, sharding
   parity and the coverage-gain experiment the corpus exists for. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let gen_cfg =
  { Fuzz.default_gen_cfg with Fuzz.g_threads = 2; g_ops = 4 }

let program_string p = Jsonx.to_string (Progir.program_to_json p)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "c11corpus_test_%d_%d" (Unix.getpid ()) !n)

let open_corpus dir =
  match Corpus.open_dir dir with
  | Ok c -> c
  | Error msg -> Alcotest.failf "Corpus.open_dir %s: %s" dir msg

let entry_of ?(digest = "d0") ?(index = 0) ?(seed = 3L) p =
  {
    Corpus.en_digest = digest;
    en_index = index;
    en_seed = seed;
    en_keys = [ "shape:" ^ digest ];
    en_program = p;
  }

(* ---------- mutation --------------------------------------------------- *)

let prop_mutate_valid =
  QCheck.Test.make ~name:"mutation preserves program validity" ~count:500
    QCheck.small_nat (fun n ->
      let p = Fuzz.generate ~cfg:gen_cfg ~seed:(Int64.of_int ((n * 131) + 7)) in
      let rng = Rng.create (Int64.of_int ((n * 31) + 1)) in
      let q = Corpus.mutate ~rng p in
      match Progir.validate q with
      | Ok () -> true
      | Error e ->
        QCheck.Test.fail_reportf "invalid mutant of seed %d: %s" n e)

let prop_mutate_deterministic =
  QCheck.Test.make ~name:"same rng stream, same mutant" ~count:200
    QCheck.small_nat (fun n ->
      let p = Fuzz.generate ~cfg:gen_cfg ~seed:(Int64.of_int ((n * 17) + 5)) in
      let mutate () =
        Corpus.mutate ~rng:(Rng.create (Int64.of_int (n + 911))) p
      in
      program_string (mutate ()) = program_string (mutate ()))

(* Mutants run cleanly end to end: mutate -> run -> classify is a pure
   function of (entry program, rng stream, exec seed), and a mutant of a
   clean-engine program is never a finding. *)
let test_mutate_run_deterministic () =
  let config = Fuzz.engine_config ~mutation:None in
  for n = 0 to 19 do
    let p = Fuzz.generate ~cfg:gen_cfg ~seed:(Int64.of_int ((n * 211) + 21)) in
    let q = Corpus.mutate ~rng:(Rng.create (Int64.of_int (n + 5))) p in
    let run () =
      Fuzz.run_one ~config ~certify:true ~seed:(Fuzz.exec_seed q ~attempt:0) q
    in
    (match run () with
    | Fuzz.Passed _ -> ()
    | Fuzz.Failed k ->
      Alcotest.failf "mutant %d is a finding: %s" n (Fuzz.finding_key k));
    check_bool
      (Printf.sprintf "mutant %d outcome deterministic" n)
      true
      (run () = run ())
  done

(* ---------- storage ---------------------------------------------------- *)

let test_store_load_roundtrip () =
  let dir = fresh_dir () in
  let c = open_corpus dir in
  check_int "empty corpus" 0 (List.length (Corpus.load c));
  let mk i =
    entry_of
      ~digest:(Printf.sprintf "%02d-digest" i)
      ~index:i
      ~seed:(Int64.of_int (i * 37))
      (Fuzz.generate ~cfg:gen_cfg ~seed:(Int64.of_int i))
  in
  let entries = List.init 5 mk in
  List.iter (fun e -> check_bool "stored" true (Corpus.store c e)) entries;
  check_bool "duplicate digest refused" false (Corpus.store c (mk 2));
  let back = Corpus.load c in
  check_int "all back" 5 (List.length back);
  (* ascending digest order, fields and programs intact *)
  List.iter2
    (fun e b ->
      check_str "digest" e.Corpus.en_digest b.Corpus.en_digest;
      check_int "index" e.Corpus.en_index b.Corpus.en_index;
      check_bool "seed" true (e.Corpus.en_seed = b.Corpus.en_seed);
      check_bool "keys" true (e.Corpus.en_keys = b.Corpus.en_keys);
      check_str "program" (program_string e.Corpus.en_program)
        (program_string b.Corpus.en_program))
    entries back

let test_corrupt_entry_skipped_deleted () =
  let dir = fresh_dir () in
  let c = open_corpus dir in
  check_bool "good entry stored" true
    (Corpus.store c
       (entry_of ~digest:"aaaa" (Fuzz.generate ~cfg:gen_cfg ~seed:1L)));
  let write name body =
    let oc = open_out (Filename.concat dir name) in
    output_string oc body;
    close_out oc
  in
  write "bbbb.json" "{ not json";
  write "cccc.json" "{\"schema\":\"wrong-v0\"}";
  (* filename stem must equal the digest field *)
  let stray =
    Jsonx.to_string
      (Corpus.entry_to_json
         (entry_of ~digest:"eeee" (Fuzz.generate ~cfg:gen_cfg ~seed:2L)))
  in
  write "dddd.json" stray;
  let back = Corpus.load c in
  check_int "only the good entry survives" 1 (List.length back);
  check_str "good digest" "aaaa" (List.hd back).Corpus.en_digest;
  List.iter
    (fun n ->
      check_bool (n ^ " deleted") false
        (Sys.file_exists (Filename.concat dir n)))
    [ "bbbb.json"; "cccc.json"; "dddd.json" ]

let test_open_dir_rejects () =
  let file = Filename.temp_file "c11corpus" ".notadir" in
  (match Corpus.open_dir file with
  | Ok _ -> Alcotest.fail "open_dir on a plain file must fail"
  | Error _ -> ());
  Sys.remove file

(* ---------- corpus-guided campaigns ------------------------------------ *)

let campaign_cfg ?(programs = 600) ?(seed = 11L) ?(jobs = 1) ?corpus () =
  {
    Fuzz.default_campaign_cfg with
    Fuzz.c_programs = programs;
    c_seed = seed;
    c_jobs = jobs;
    c_gen = gen_cfg;
    c_corpus = corpus;
  }

let report_string r = Jsonx.to_pretty_string (Fuzz.report_to_json r)

let test_campaign_jobs_parity () =
  let plan = Corpus.plan ~round:100 [] in
  let run jobs =
    Fuzz.campaign ~coverage:true
      (campaign_cfg ~jobs ~corpus:plan ())
  in
  let r1 = run 1 in
  check_bool "corpus stats present" true (r1.Fuzz.r_corpus <> None);
  (match r1.Fuzz.r_corpus with
  | Some k ->
    check_bool "admissions happened" true (k.Fuzz.k_admitted <> []);
    check_bool "mutations happened" true (k.Fuzz.k_mutated > 0)
  | None -> ());
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "-j1 == -j%d (corpus campaign)" jobs)
        (report_string r1)
        (report_string (run jobs)))
    [ 2; 4 ]

(* Admissions replay identically from a seeded snapshot: campaign 1's
   admitted entries, fed back as campaign 2's snapshot, change the
   program stream deterministically (same -jN parity) and are not
   re-admitted (their keys are already known). *)
let test_seeded_snapshot_determinism () =
  let cold =
    Fuzz.campaign ~coverage:true
      (campaign_cfg ~corpus:(Corpus.plan ~round:100 []) ())
  in
  let admitted =
    match cold.Fuzz.r_corpus with
    | Some k -> k.Fuzz.k_admitted
    | None -> Alcotest.fail "no corpus stats"
  in
  check_bool "cold admissions" true (admitted <> []);
  let warm_cfg =
    campaign_cfg ~corpus:(Corpus.plan ~round:100 admitted) ()
  in
  let w1 = Fuzz.campaign ~coverage:true warm_cfg in
  let w4 =
    Fuzz.campaign ~coverage:true { warm_cfg with Fuzz.c_jobs = 4 }
  in
  check_str "warm -j1 == -j4" (report_string w1) (report_string w4);
  match w1.Fuzz.r_corpus with
  | None -> Alcotest.fail "no corpus stats"
  | Some k ->
    check_int "snapshot size" (List.length admitted) k.Fuzz.k_seeded;
    let cold_digests =
      List.map (fun e -> e.Corpus.en_digest) admitted
    in
    List.iter
      (fun e ->
        check_bool "seeded digests never re-admitted" false
          (List.mem e.Corpus.en_digest cold_digests))
      k.Fuzz.k_admitted

(* The experiment the corpus exists for: in a saturating generator
   regime (tiny programs, so blind generation keeps re-hitting known
   shapes), corpus-guided mutation reaches strictly more distinct
   execution shapes than blind generation at equal program count.
   Deterministic: both campaigns are pure functions of the fixed seed.
   Mirrored as a bench experiment in bench/ (see ROADMAP). *)
let test_corpus_beats_blind () =
  let tiny = { Fuzz.default_gen_cfg with Fuzz.g_threads = 2; g_ops = 2 } in
  let base =
    {
      Fuzz.default_campaign_cfg with
      Fuzz.c_programs = 2000;
      c_seed = 1L;
      c_gen = tiny;
    }
  in
  let shapes cfg =
    match (Fuzz.campaign ~coverage:true cfg).Fuzz.r_coverage with
    | Some c -> Cov.distinct_shapes c
    | None -> Alcotest.fail "coverage missing"
  in
  let blind = shapes base in
  let guided =
    shapes { base with Fuzz.c_corpus = Some (Corpus.plan []) }
  in
  check_bool
    (Printf.sprintf "corpus-guided %d > blind %d distinct shapes" guided
       blind)
    true (guided > blind)

let suite =
  [
    Alcotest.test_case "mutate/run deterministic, never a finding" `Quick
      test_mutate_run_deterministic;
    Alcotest.test_case "store/load round-trip" `Quick
      test_store_load_roundtrip;
    Alcotest.test_case "corrupt entries skipped and deleted" `Quick
      test_corrupt_entry_skipped_deleted;
    Alcotest.test_case "open_dir rejects non-directory" `Quick
      test_open_dir_rejects;
    Alcotest.test_case "campaign -j parity" `Quick test_campaign_jobs_parity;
    Alcotest.test_case "seeded snapshot determinism" `Quick
      test_seeded_snapshot_determinism;
    Alcotest.test_case "corpus-guided beats blind coverage" `Slow
      test_corpus_beats_blind;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_mutate_valid; prop_mutate_deterministic ]
