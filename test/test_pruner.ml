(* Execution-graph pruning (Section 7.1): conservative pruning must keep
   the graph bounded on long executions without changing the set of
   producible behaviours; aggressive pruning may shrink behaviours but
   never produces a forbidden one. *)

let check = Alcotest.(check bool)

let conservative = Pruner.Conservative { interval = 8 }
let aggressive = Pruner.Aggressive { window = 128; interval = 8 }

let config ?(prune = Pruner.No_prune) seed =
  { (Tool.config ~prune Tool.C11tester) with Engine.seed = seed }

(* A long producer/consumer loop over one atomic: without pruning the
   mo-graph holds every store ever made; with conservative pruning the
   consumer keeps synchronising so old stores become unreadable and are
   collected.  The main thread plays the consumer itself — a thread parked
   in a join never advances its clock and (correctly) blocks pruning. *)
let counter_program ~rounds () =
  let x = C11.Atomic.make 0 in
  let producer =
    C11.Thread.spawn (fun () ->
        for i = 1 to rounds do
          C11.Atomic.store ~mo:Memorder.Release x i
        done)
  in
  for _ = 1 to rounds do
    ignore (C11.Atomic.load ~mo:Memorder.Acquire x)
  done;
  C11.Thread.join producer

let test_conservative_bounds_memory () =
  let no_prune = Engine.run (config 5L) (counter_program ~rounds:400) in
  let pruned =
    Engine.run (config ~prune:conservative 5L) (counter_program ~rounds:400)
  in
  check "unpruned graph holds all stores" true (no_prune.Engine.final_footprint > 300);
  check "pruning collected stores" true (pruned.Engine.pruned_stores > 100);
  check "pruned footprint is much smaller" true
    (pruned.Engine.final_footprint * 3 < no_prune.Engine.final_footprint)

let test_aggressive_prunes_at_least_as_much () =
  let cons =
    Engine.run (config ~prune:conservative 7L) (counter_program ~rounds:400)
  in
  let aggr =
    Engine.run (config ~prune:aggressive 7L) (counter_program ~rounds:400)
  in
  check "aggressive collects too" true (aggr.Engine.pruned_stores > 0);
  check "footprints bounded" true
    (aggr.Engine.final_footprint < 400 && cons.Engine.final_footprint < 400)

(* Outcome preservation: the support of a litmus test's outcome histogram
   must be identical with and without conservative pruning. *)
let outcome_support ~prune (t : Litmus.t) =
  let config = Tool.config ~prune Tool.C11tester in
  Litmus.explore ~config ~iters:1200 t |> List.map fst |> List.sort compare

let test_conservative_preserves_outcomes () =
  List.iter
    (fun name ->
      match Litmus.find name with
      | None -> Alcotest.failf "missing litmus %s" name
      | Some t ->
        let base = outcome_support ~prune:Pruner.No_prune t in
        let pruned = outcome_support ~prune:(Pruner.Conservative { interval = 4 }) t in
        if base <> pruned then
          Alcotest.failf "%s: outcome support changed under conservative pruning"
            name)
    [ "mp_relaxed"; "sb_relaxed"; "2+2w_relaxed"; "corr" ]

let test_aggressive_sound_on_litmus () =
  List.iter
    (fun (t : Litmus.t) ->
      let config =
        Tool.config ~prune:(Pruner.Aggressive { window = 8; interval = 4 })
          Tool.C11tester
      in
      let bad = Litmus.violations ~config ~iters:800 t in
      if bad <> [] then
        Alcotest.failf "%s: aggressive pruning produced forbidden outcomes"
          t.Litmus.name)
    Litmus.catalog

let test_cv_min () =
  let rng = Rng.create 1L in
  let race = Race.create () in
  let exec = Execution.create ~mode:Execution.Full_c11 ~rng ~race () in
  let t0 = Execution.new_thread exec ~parent:None in
  Execution.tick_sync exec ~tid:t0;
  (* the child starts with a copy of the parent's clock, so the parent's
     first event is covered by everyone *)
  let t1 = Execution.new_thread exec ~parent:(Some t0) in
  Execution.tick_sync exec ~tid:t1;
  Execution.tick_sync exec ~tid:t1;
  let cv = Pruner.cv_min exec in
  check "cv_min covers t0's pre-fork event" true
    (Clockvec.covers cv ~tid:t0 ~seq:1);
  check "cv_min excludes t1's unsynchronised events" false
    (Clockvec.covers cv ~tid:t1 ~seq:3)

let test_no_prune_policy () =
  let rng = Rng.create 1L in
  let race = Race.create () in
  let exec = Execution.create ~mode:Execution.Full_c11 ~rng ~race () in
  check "no-prune does nothing" true
    (Pruner.maybe_prune Pruner.No_prune exec ~ops:64 = None)

let test_workloads_clean_under_pruning () =
  (* correct workloads stay bug-free when pruning is on *)
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.failf "missing workload %s" name
      | Some w ->
        let config = Tool.config ~prune:conservative Tool.C11tester in
        let s =
          Tester.run ~config ~iters:60
            (w.Registry.run ~variant:Variant.Correct ~scale:w.Registry.default_scale)
        in
        if s.Tester.buggy_executions > 0 then
          Alcotest.failf "%s: false positives under conservative pruning" name)
    [ "seqlock"; "ms-queue"; "mpmc-queue" ]

let suite =
  [
    Alcotest.test_case "conservative bounds memory" `Slow test_conservative_bounds_memory;
    Alcotest.test_case "aggressive prunes" `Slow test_aggressive_prunes_at_least_as_much;
    Alcotest.test_case "conservative preserves outcomes" `Slow
      test_conservative_preserves_outcomes;
    Alcotest.test_case "aggressive sound on litmus" `Slow test_aggressive_sound_on_litmus;
    Alcotest.test_case "cv_min" `Quick test_cv_min;
    Alcotest.test_case "no-prune policy" `Quick test_no_prune_policy;
    Alcotest.test_case "workloads clean under pruning" `Slow
      test_workloads_clean_under_pruning;
  ]
