(* Parallel campaign layer: merge algebra and the determinism contract.

   The unit tests pin the algebraic properties Par.Merge promises
   (associativity, commutativity, order-independence of histogram and
   dedup merges); the parity tests then check the end-to-end contract the
   CLI's `-j N` flag advertises — merged observables bit-identical to the
   sequential runner for every job count — on a real workload, a litmus
   test and a bug hunt. *)

let check = Alcotest.(check bool)

(* ---------- Merge.add: associative, commutative, zero identity ---------- *)

let counters_of (a, b, c, d) =
  {
    Par.Merge.executions = a;
    buggy = b;
    racy = c;
    asserts = d;
    deadlocks = a land 1;
    limits = b land 1;
    certified = c land 1;
    cert_rejected = d land 1;
    certified_ops = (a * 7) + c;
    retired_prefix_ops = (b * 4) + d;
    atomic_ops = a * 3;
    na_ops = b * 2;
    max_graph = c;
    steps = d * 5;
  }

let counters_gen = QCheck.(quad small_nat small_nat small_nat small_nat)

let prop_add_assoc =
  QCheck.Test.make ~name:"Merge.add associative" ~count:100
    QCheck.(triple counters_gen counters_gen counters_gen)
    (fun (x, y, z) ->
      let x = counters_of x and y = counters_of y and z = counters_of z in
      Par.Merge.(add (add x y) z = add x (add y z)))

let prop_add_comm =
  QCheck.Test.make ~name:"Merge.add commutative" ~count:100
    QCheck.(pair counters_gen counters_gen)
    (fun (x, y) ->
      let x = counters_of x and y = counters_of y in
      Par.Merge.(add x y = add y x))

let test_add_zero () =
  let c = counters_of (3, 1, 4, 1) in
  check "zero is identity" true
    Par.Merge.(add c zero = c && add zero c = c)

(* ---------- Merge.histogram: order-independent, first-occurrence ------- *)

(* Sequential order: "a"@0, "b"@1, "c"@4; counts a=3, b=2, c=1.  Dealt to
   two shards leapfrog-style. *)
let shard_a = [ ("a", 2, 0); ("c", 1, 4) ]
let shard_b = [ ("b", 2, 1); ("a", 1, 3) ]
let merged_expected = [ ("a", 3); ("b", 2); ("c", 1) ]

let test_histogram_merge () =
  check "two shards" true
    (Par.Merge.histogram [ shard_a; shard_b ] = merged_expected);
  check "shard order irrelevant" true
    (Par.Merge.histogram [ shard_b; shard_a ] = merged_expected);
  check "extra empty shards" true
    (Par.Merge.histogram [ []; shard_a; []; shard_b ] = merged_expected)

let test_histogram_single_shard () =
  (* A jobs=1 campaign is one shard: the merge must be the identity
     modulo dropping the first-occurrence index. *)
  let one = [ ("x", 5, 0); ("y", 2, 2); ("z", 1, 7) ] in
  check "single shard passthrough" true
    (Par.Merge.histogram [ one ] = [ ("x", 5); ("y", 2); ("z", 1) ])

(* ---------- Merge.dedup: min-index per key, ascending ------------------ *)

let test_dedup_across_shards () =
  (* Sequential first occurrences: k1@0, k2@1, k3@5; shard 1 sees k2
     later (index 3) than shard 0's... no — each shard records its own
     first sighting; the merge keeps the global minimum. *)
  let s0 = [ (0, "k1/a"); (4, "k3/x") ] in
  let s1 = [ (1, "k2/b"); (3, "k1/late"); (5, "k3/late") ] in
  let key s = String.sub s 0 2 in
  let merged = Par.Merge.dedup ~key [ s0; s1 ] in
  check "global first occurrence wins, ascending" true
    (merged = [ "k1/a"; "k2/b"; "k3/x" ]);
  check "shard order irrelevant" true
    (Par.Merge.dedup ~key [ s1; s0 ] = merged)

let test_first_win () =
  check "lowest index wins" true
    (Par.Merge.first_win [ Some (7, "b"); None; Some (2, "a") ] = Some (2, "a"));
  check "all none" true (Par.Merge.first_win [ None; None ] = None)

(* ---------- Merge.check_ranges: partial-failure audit ------------------ *)

let test_check_ranges_unit () =
  let open Par.Merge in
  let r = check_ranges ~workers:4 ~total:40 [ 0; 1; 2; 3 ] in
  check "complete range set is ok" true
    (range_ok r && r.missing = [] && r.duplicated = []);
  let r = check_ranges ~workers:4 ~total:40 [ 3; 0; 2 ] in
  check "missing shard detected" true (r.missing = [ 1 ] && r.duplicated = []);
  check "missing shard not ok" false (range_ok r);
  let r = check_ranges ~workers:4 ~total:40 [ 0; 1; 1; 2; 3; 3 ] in
  check "duplicated shards detected" true
    (r.missing = [] && r.duplicated = [ 1; 3 ]);
  check "duplicated shard not ok" false (range_ok r);
  let r = check_ranges ~workers:3 ~total:10 [] in
  check "everything missing, ascending" true (r.missing = [ 0; 1; 2 ])

let prop_check_ranges_order_independent =
  (* The audit must report the same (sorted) fault lists no matter what
     order the shards arrived in — that is what makes a degraded
     summary's failed-range report deterministic. *)
  QCheck.Test.make ~name:"Merge.check_ranges order-independent" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 7)))
    (fun (workers, raw) ->
      let ranges = List.filter (fun w -> w < workers) raw in
      let a = Par.Merge.check_ranges ~workers ~total:100 ranges in
      let b = Par.Merge.check_ranges ~workers ~total:100 (List.rev ranges) in
      let c =
        Par.Merge.check_ranges ~workers ~total:100 (List.sort compare ranges)
      in
      a = b && b = c
      && List.sort compare a.Par.Merge.missing = a.Par.Merge.missing
      && List.sort compare a.Par.Merge.duplicated = a.Par.Merge.duplicated)

let prop_check_ranges_exact =
  (* check_ranges is exactly the complement test: a worker index is
     missing iff it never occurs, duplicated iff it occurs twice+. *)
  QCheck.Test.make ~name:"Merge.check_ranges exact complement" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 7)))
    (fun (workers, raw) ->
      let ranges = List.filter (fun w -> w < workers) raw in
      let occurs w = List.length (List.filter (( = ) w) ranges) in
      let all = List.init workers (fun w -> w) in
      let r = Par.Merge.check_ranges ~workers ~total:100 ranges in
      r.Par.Merge.missing = List.filter (fun w -> occurs w = 0) all
      && r.Par.Merge.duplicated = List.filter (fun w -> occurs w > 1) all)

let test_degraded_merge_deterministic () =
  (* A lost shard degrades the summary, but deterministically: merging
     the survivors must give the same result in every arrival order. *)
  let w =
    match Registry.find "ms-queue" with
    | Some w -> w
    | None -> Alcotest.fail "ms-queue missing"
  in
  let config = Tool.config ~seed:99L ~max_steps:150_000 Tool.C11tester in
  let body =
    w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale
  in
  let shards =
    List.init 4 (fun worker ->
        Tester.run_shard ~config ~total:24 ~start:worker ~stride:4 body)
  in
  (* worker 2's range is lost *)
  let survivors = [ List.nth shards 0; List.nth shards 1; List.nth shards 3 ] in
  let sum_a, hist_a = Tester.merge_shard_list survivors in
  let sum_b, hist_b = Tester.merge_shard_list (List.rev survivors) in
  let render s = Jsonx.to_pretty_string (Tester.summary_to_json s) in
  Alcotest.(check string)
    "degraded summary independent of merge order" (render sum_a)
    (render sum_b);
  check "degraded histogram independent of merge order" true (hist_a = hist_b);
  let full, _ = Tester.merge_shard_list shards in
  check "degraded summary covers survivors only" true
    (sum_a.Tester.executions
    = full.Tester.executions
      - Tester.shard_executions (List.nth shards 2))

(* ---------- Winner protocol ------------------------------------------- *)

let test_winner () =
  let w = Par.Winner.create () in
  check "empty" true (Par.Winner.best w = None);
  check "not beaten when empty" false (Par.Winner.beaten w ~index:0);
  Par.Winner.propose w 9;
  Par.Winner.propose w 4;
  Par.Winner.propose w 6;
  check "minimum kept" true (Par.Winner.best w = Some 4);
  check "higher index beaten" true (Par.Winner.beaten w ~index:5);
  check "own index not beaten" false (Par.Winner.beaten w ~index:4);
  check "lower index not beaten" false (Par.Winner.beaten w ~index:3)

(* ---------- shard_size ------------------------------------------------- *)

let test_shard_size () =
  List.iter
    (fun (jobs, total) ->
      let sum = ref 0 in
      for worker = 0 to jobs - 1 do
        sum := !sum + Par.shard_size ~jobs ~total ~worker
      done;
      if !sum <> total then
        Alcotest.failf "jobs=%d total=%d: shard sizes sum to %d" jobs total
          !sum)
    [ (1, 10); (2, 10); (3, 10); (4, 3); (7, 100); (5, 0) ]

(* ---------- End-to-end parity: the determinism contract ---------------- *)

let summary_string s = Jsonx.to_pretty_string (Tester.summary_to_json s)

let test_workload_parity () =
  let w =
    match Registry.find "ms-queue" with
    | Some w -> w
    | None -> Alcotest.fail "ms-queue missing"
  in
  let config = Tool.config ~seed:99L ~max_steps:150_000 Tool.C11tester in
  let body =
    w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale
  in
  let seq = Tester.run ~config ~iters:24 body in
  List.iter
    (fun jobs ->
      let par = Tester.run_parallel ~jobs ~config ~iters:24 body in
      Alcotest.(check string)
        (Printf.sprintf "summary jobs=%d" jobs)
        (summary_string seq) (summary_string par);
      check
        (Printf.sprintf "race order jobs=%d" jobs)
        true
        (seq.Tester.distinct_races = par.Tester.distinct_races))
    [ 1; 2; 4 ]

let test_litmus_parity () =
  let t =
    match Litmus.find "mp_relaxed" with
    | Some t -> t
    | None -> Alcotest.fail "mp_relaxed missing"
  in
  let config = Tool.config ~seed:7L Tool.C11tester in
  let seq = Litmus.explore ~config ~iters:300 t in
  List.iter
    (fun jobs ->
      let par = Litmus.explore ~jobs ~config ~iters:300 t in
      check (Printf.sprintf "histogram jobs=%d" jobs) true (seq = par))
    [ 1; 2; 4 ]

let test_find_buggy_parity () =
  let w =
    match Registry.find "ms-queue" with
    | Some w -> w
    | None -> Alcotest.fail "ms-queue missing"
  in
  let config = Tool.config ~seed:31L ~max_steps:150_000 Tool.C11tester in
  let body =
    w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale
  in
  let seq = Tester.find_buggy ~config ~attempts:20 body in
  check "hunt finds a bug" true (seq <> None);
  List.iter
    (fun jobs ->
      let par = Tester.find_buggy_parallel ~jobs ~config ~attempts:20 body in
      check (Printf.sprintf "same winner jobs=%d" jobs) true (seq = par))
    [ 1; 2; 4 ]

let test_find_buggy_parallel_ring () =
  (* The ring contract: on Some _, the caller's ring holds exactly the
     winning execution's events — same as the sequential hunt's. *)
  let w =
    match Registry.find "ms-queue" with
    | Some w -> w
    | None -> Alcotest.fail "ms-queue missing"
  in
  let config = Tool.config ~seed:31L ~max_steps:150_000 Tool.C11tester in
  let body =
    w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.default_scale
  in
  let obs_seq = Obs.create ~ring_capacity:65536 () in
  let obs_par = Obs.create ~ring_capacity:65536 () in
  let seq = Tester.find_buggy ~obs:obs_seq ~config ~attempts:20 body in
  let par =
    Tester.find_buggy_parallel ~obs:obs_par ~jobs:4 ~config ~attempts:20 body
  in
  check "both found" true (seq <> None && par <> None);
  let render obs =
    List.map (Format.asprintf "%a" Obs.pp_event) (Obs.ring_events obs)
  in
  check "identical ring" true (render obs_seq = render obs_par)

let test_collect_parity_no_bug () =
  (* A hunt with no bug must return None for every job count. *)
  let w =
    match Registry.find "spsc-queue" with
    | Some w -> w
    | None -> Alcotest.fail "spsc-queue missing"
  in
  let config = Tool.config ~seed:5L ~max_steps:150_000 Tool.C11tester in
  let body =
    w.Registry.run ~variant:Variant.Correct ~scale:w.Registry.default_scale
  in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "no bug jobs=%d" jobs)
        true
        (Tester.find_buggy_parallel ~jobs ~config ~attempts:4 body = None))
    [ 1; 3 ]

let suite =
  [
    Alcotest.test_case "add zero identity" `Quick test_add_zero;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram single shard" `Quick
      test_histogram_single_shard;
    Alcotest.test_case "dedup across shards" `Quick test_dedup_across_shards;
    Alcotest.test_case "first win" `Quick test_first_win;
    Alcotest.test_case "check_ranges audit" `Quick test_check_ranges_unit;
    Alcotest.test_case "degraded merge deterministic" `Slow
      test_degraded_merge_deterministic;
    Alcotest.test_case "winner protocol" `Quick test_winner;
    Alcotest.test_case "shard sizes partition" `Quick test_shard_size;
    Alcotest.test_case "workload parity" `Slow test_workload_parity;
    Alcotest.test_case "litmus parity" `Quick test_litmus_parity;
    Alcotest.test_case "find_buggy parity" `Slow test_find_buggy_parity;
    Alcotest.test_case "find_buggy ring parity" `Slow
      test_find_buggy_parallel_ring;
    Alcotest.test_case "hunt without bug" `Quick test_collect_parity_no_bug;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_add_assoc;
        prop_add_comm;
        prop_check_ranges_order_independent;
        prop_check_ranges_exact;
      ]
