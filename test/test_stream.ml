(* Streaming incremental certification (Check.Stream).

   The streaming certifier consumes actions and sync edges as the engine
   produces them and retires hb-closed prefixes, so it never holds the
   whole trace — but its verdicts must be EQUIVALENT to the post-hoc
   certifier's on the same execution:

     Certified      -> bit-identical stats
     Rejected       -> same sorted set of violation keys (and hence the
                       same rejection key)
     Not_applicable -> same reason

   Both modes run from the same seed, so they see the very same
   execution; the only difference is when the relations are computed.
   The sweeps below cover the litmus catalog, the workload registry, the
   three seeded engine mutants (real rejections, not just clean runs),
   pruned executions, and QCheck-random fuzz programs.  A final parity
   test checks that campaign counters — including the new certified_ops /
   retired_prefix_ops — merge order-independently under -j N. *)

let check = Alcotest.(check bool)

let violation_keys vs =
  List.sort_uniq compare (List.map Check.violation_key vs)

let verdicts_equiv post stream =
  match (post, stream) with
  | Check.Certified a, Check.Certified b -> a = b
  | Check.Rejected a, Check.Rejected b ->
    violation_keys a = violation_keys b
    && Check.rejection_key a = Check.rejection_key b
  | Check.Not_applicable a, Check.Not_applicable b -> a = b
  | _ -> false

let pp_pair name seed post stream =
  Alcotest.failf "%s (seed %Ld): post-hoc %a but streaming %a" name seed
    Check.pp_verdict post Check.pp_verdict stream

(* Run [body] twice from the same seed — post-hoc then streaming — and
   return both verdicts. *)
let both ?(prune = Pruner.No_prune) ?(mutation = None) ~seed body =
  let base =
    { Engine.default_config with certify = true; seed; prune; mutation }
  in
  let post = Engine.run { base with cert_stream = false } body in
  let stream = Engine.run { base with cert_stream = true } body in
  ((Option.get post.Engine.certificate, Option.get stream.Engine.certificate),
   stream)

let assert_equiv name ~seed (post, stream) =
  if not (verdicts_equiv post stream) then pp_pair name seed post stream

(* ---------- litmus catalog ---------- *)

let test_litmus_catalog () =
  List.iter
    (fun (t : Litmus.t) ->
      for s = 1 to 8 do
        let seed = Int64.of_int s in
        let pair, _ =
          both ~seed (fun () -> ignore (t.Litmus.run_once ()))
        in
        assert_equiv t.Litmus.name ~seed pair
      done)
    Litmus.catalog

(* ---------- workload registry, both variants ---------- *)

let test_workload_sweep () =
  (* 200 seeds spread over the registry: every workload, both variants,
     small scale (the per-execution verdict is what's compared; CI's
     certify job does the full-scale 200-seed sweep per target). *)
  List.iter
    (fun (w : Registry.t) ->
      let scale = max 2 (w.Registry.default_scale / 4) in
      List.iter
        (fun variant ->
          for s = 1 to 6 do
            let seed = Int64.of_int (s * 31) in
            let pair, _ = both ~seed (w.Registry.run ~variant ~scale) in
            assert_equiv w.Registry.name ~seed pair
          done)
        [ Variant.Correct; Variant.Buggy ])
    Registry.all

(* ---------- seeded engine mutants: equivalence on real rejections ----- *)

(* Random fuzz programs under a mutated engine: the first [budget] program
   seeds are compared in both modes, and at least one must actually be
   rejected — otherwise the equivalence claim would be vacuous for this
   mutant. *)
let test_mutant mutation () =
  let rejections = ref 0 in
  let budget = 150 in
  for i = 0 to budget - 1 do
    let seed = Rng.substream 42L ~index:i in
    let prog = Fuzz.generate ~cfg:Fuzz.default_gen_cfg ~seed in
    let body = Fuzz.to_closure prog in
    let exec_seed = Fuzz.exec_seed prog ~attempt:0 in
    let pair, _ = both ~mutation:(Some mutation) ~seed:exec_seed body in
    assert_equiv
      (Printf.sprintf "mutant %s program %d"
         (Execution.mutation_name mutation) i)
      ~seed:exec_seed pair;
    (match fst pair with Check.Rejected _ -> incr rejections | _ -> ())
  done;
  check
    (Printf.sprintf "mutant %s rejected at least once in %d programs"
       (Execution.mutation_name mutation) budget)
    true (!rejections > 0)

(* ---------- pruned executions ---------- *)

let test_pruned_equiv () =
  let w = Option.get (Registry.find "ms-queue") in
  List.iter
    (fun prune ->
      for s = 1 to 5 do
        let seed = Int64.of_int (s * 7) in
        let pair, _ =
          both ~prune ~seed
            (w.Registry.run ~variant:Variant.Correct
               ~scale:w.Registry.default_scale)
        in
        assert_equiv "ms-queue pruned" ~seed pair
      done)
    [
      Pruner.Conservative { interval = 8 };
      Pruner.Aggressive { window = 16; interval = 8 };
    ]

(* ---------- QCheck: random programs ---------- *)

let prop_random_programs =
  QCheck.Test.make ~name:"streaming == post-hoc on random programs"
    ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (pi, si) ->
      let prog =
        Fuzz.generate ~cfg:Fuzz.default_gen_cfg
          ~seed:(Rng.substream 7L ~index:pi)
      in
      let seed = Int64.add (Fuzz.exec_seed prog ~attempt:0) (Int64.of_int si) in
      let pair, _ = both ~seed (Fuzz.to_closure prog) in
      verdicts_equiv (fst pair) (snd pair))

(* ---------- retirement and zero-cost-off counters ---------- *)

let test_counters () =
  (* A long produce/consume run: the streaming certifier must consume
     every atomic action and retire the overwhelming majority of them
     (the live window is bounded, the run is not). *)
  let w = Option.get (Registry.find "spsc-queue") in
  let body = w.Registry.run ~variant:Variant.Correct ~scale:400 in
  let config =
    {
      Engine.default_config with
      certify = true;
      seed = 3L;
      prune = Pruner.Aggressive { window = 4096; interval = 64 };
    }
  in
  let o = Engine.run config body in
  check "verdict present" true (o.Engine.certificate <> None);
  (* certified_ops counts actions the stream consumed; it tracks the
     engine's atomic-op count up to a handful of bookkeeping actions
     (thread bootstrap, final assertion reads) *)
  check "essentially every atomic op certified" true
    (o.Engine.certified_ops > 0
    && abs (o.Engine.atomic_ops - o.Engine.certified_ops) <= 64);
  check "most ops retired" true
    (float_of_int o.Engine.retired_prefix_ops
    >= 0.8 *. float_of_int o.Engine.certified_ops);
  (* certification off: the streaming counters must stay at zero *)
  let off = Engine.run { config with Engine.certify = false } body in
  check "off: no certified ops" true (off.Engine.certified_ops = 0);
  check "off: no retired ops" true (off.Engine.retired_prefix_ops = 0);
  (* post-hoc: the execution is certified but nothing streams *)
  let post = Engine.run { config with Engine.cert_stream = false } body in
  check "post-hoc: no streaming counters" true
    (post.Engine.certified_ops = 0 && post.Engine.retired_prefix_ops = 0)

(* ---------- -j parity with certification always on ---------- *)

let test_parallel_parity () =
  let w = Option.get (Registry.find "mcs-lock") in
  let config =
    { Engine.default_config with certify = true; seed = 5L }
  in
  let body =
    w.Registry.run ~variant:Variant.Correct ~scale:w.Registry.default_scale
  in
  let s1 = Tester.run_parallel ~jobs:1 ~config ~iters:40 body in
  let s4 = Tester.run_parallel ~jobs:4 ~config ~iters:40 body in
  check "summaries identical across -j 1 / -j 4" true (s1 = s4);
  (* default-scale executions are far below the 4096-action sweep
     threshold, so no retirement here — test_counters covers that *)
  check "streaming counters populated" true (s1.Tester.certified_ops > 0);
  check "all executions certified" true
    (s1.Tester.certified_executions = 40)

let suite =
  [
    Alcotest.test_case "litmus catalog equivalence" `Quick
      test_litmus_catalog;
    Alcotest.test_case "workload sweep equivalence" `Quick
      test_workload_sweep;
    Alcotest.test_case "mutant equivalence: skip-acquire-merge" `Quick
      (test_mutant Execution.Skip_acquire_merge);
    Alcotest.test_case "mutant equivalence: drop-mo-edge" `Quick
      (test_mutant Execution.Drop_mo_edge);
    Alcotest.test_case "mutant equivalence: weak-release-store" `Quick
      (test_mutant Execution.Weak_release_store);
    Alcotest.test_case "pruned equivalence" `Quick test_pruned_equiv;
    QCheck_alcotest.to_alcotest prop_random_programs;
    Alcotest.test_case "stream counters and zero-cost off" `Quick
      test_counters;
    Alcotest.test_case "parallel parity with streaming on" `Quick
      test_parallel_parity;
  ]
