let () =
  Alcotest.run "c11tester"
    [
      ("clockvec", Test_clockvec.suite);
      ("mograph", Test_mograph.suite);
      ("rng", Test_rng.suite);
      ("par", Test_par.suite);
      ("race", Test_race.suite);
      ("fiber", Test_fiber.suite);
      ("execution", Test_exec.suite);
      ("engine", Test_engine.suite);
      ("schedule", Test_sched.suite);
      ("litmus", Test_litmus.suite);
      ("pruner", Test_pruner.suite);
      ("workloads", Test_workloads.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("cov", Test_cov.suite);
      ("determinism", Test_determinism.suite);
      ("check", Test_check.suite);
      ("stream", Test_stream.suite);
      ("fuzz", Test_fuzz.suite);
      ("corpus", Test_corpus.suite);
      ("sweep", Test_sweep.suite);
      ("lint", Test_lint.suite);
      ("svc", Test_svc.suite);
    ]
