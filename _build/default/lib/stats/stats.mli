(** Statistics used by the evaluation harness (Section 8): means, relative
    standard deviations (the parenthesised percentages of Table 1),
    geometric means (the speedup summary of Figure 15) and detection
    rates. *)

val mean : float list -> float
val stddev : float list -> float

(** Relative standard deviation in percent: [100 * stddev / mean]. *)
val rsd_percent : float list -> float

val geomean : float list -> float
val median : float list -> float
val min_max : float list -> float * float

(** [rate ~hits ~total] in percent. *)
val rate : hits:int -> total:int -> float

(** [timed f] runs [f] and returns its result with the elapsed wall-clock
    seconds. *)
val timed : (unit -> 'a) -> 'a * float

(** [sample n f] runs [f] [n] times collecting per-run wall-clock seconds. *)
val sample : int -> (unit -> unit) -> float list

val pp_mean_rsd : Format.formatter -> float list -> unit
