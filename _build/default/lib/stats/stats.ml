let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let rsd_percent xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. abs_float m

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let median = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let rate ~hits ~total =
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sample n f =
  List.init n (fun _ ->
      let (), dt = timed f in
      dt)

let pp_mean_rsd fmt xs =
  Format.fprintf fmt "%.4g (%.2f%%)" (mean xs) (rsd_percent xs)
