(** Whether a workload runs its correct implementation or the one with the
    seeded concurrency bug (Sections 8.1 and 8.3 of the paper evaluate the
    buggy variants; correctness tests run the correct ones). *)
type t = Correct | Buggy

let to_string = function Correct -> "correct" | Buggy -> "buggy"
