(** Dekker-style mutual exclusion with seq_cst fences (data-structure
    suite, Table 2: "dekker-fences").

    The benchmark version (the [Buggy] variant, matching the CDSChecker
    suite) uses relaxed flag accesses separated by seq_cst fences.  The
    fences restore mutual exclusion in time — the store-buffering outcome
    where both threads read the other's flag as 0 is forbidden — but they
    create {e no happens-before edges}, so critical sections in different
    rounds still race on the protected non-atomic cell.  This is the known
    data race of the suite that the three tools detect at different rates.

    The [Correct] variant uses seq_cst flag accesses: entering after
    reading the other side's release-reset synchronises with every earlier
    critical section, so the protected accesses are race-free. *)

open Memorder

let run ~variant ~scale () =
  let flag0 = C11.Atomic.make ~name:"dekker.flag0" 0 in
  let flag1 = C11.Atomic.make ~name:"dekker.flag1" 0 in
  let data = C11.Nonatomic.make ~name:"dekker.data" 0 in
  let acc_mo =
    match (variant : Variant.t) with Correct -> Seq_cst | Buggy -> Relaxed
  in
  let side i () =
    let mine, theirs = if i = 0 then (flag0, flag1) else (flag1, flag0) in
    for round = 1 to scale do
      C11.Atomic.store ~mo:acc_mo mine 1;
      (match (variant : Variant.t) with
      | Correct -> ()
      | Buggy -> C11.Fence.seq_cst ());
      if C11.Atomic.load ~mo:acc_mo theirs = 0 then begin
        (* critical section *)
        C11.Nonatomic.write data ((10 * i) + round);
        ignore (C11.Nonatomic.read data)
      end;
      C11.Atomic.store ~mo:acc_mo mine 0;
      C11.Thread.yield ()
    done
  in
  let t0 = C11.Thread.spawn (side 0) in
  let t1 = C11.Thread.spawn (side 1) in
  C11.Thread.join t0;
  C11.Thread.join t1
