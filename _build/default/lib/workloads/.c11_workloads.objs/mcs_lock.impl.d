lib/workloads/mcs_lock.ml: Array C11 List Memorder Printf Variant
