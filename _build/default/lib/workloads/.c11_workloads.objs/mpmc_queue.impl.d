lib/workloads/mpmc_queue.ml: Array C11 Memorder Printf Variant
