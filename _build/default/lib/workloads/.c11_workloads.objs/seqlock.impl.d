lib/workloads/seqlock.ml: C11 Memorder Variant
