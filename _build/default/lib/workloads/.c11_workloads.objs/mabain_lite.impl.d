lib/workloads/mabain_lite.ml: Array C11 List Memorder Printf Variant
