lib/workloads/variant.ml:
