lib/workloads/gdax_lite.ml: Array C11 Memorder Printf Variant
