lib/workloads/linuxrwlocks.ml: C11 Memorder Variant
