lib/workloads/iris_lite.ml: Array C11 Memorder Printf Variant
