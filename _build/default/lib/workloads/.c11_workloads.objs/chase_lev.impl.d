lib/workloads/chase_lev.ml: Array C11 Memorder Printf Variant
