lib/workloads/dekker.ml: C11 Memorder Variant
