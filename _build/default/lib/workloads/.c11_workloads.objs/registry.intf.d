lib/workloads/registry.mli: Variant
