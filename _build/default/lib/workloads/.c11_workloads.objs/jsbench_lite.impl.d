lib/workloads/jsbench_lite.ml: Array C11 List Memorder Printf
