lib/workloads/rwlock_bug.ml: C11 Memorder Variant
