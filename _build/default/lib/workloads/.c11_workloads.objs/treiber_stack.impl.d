lib/workloads/treiber_stack.ml: Array C11 Memorder Printf Variant
