lib/workloads/barrier.ml: Array C11 List Memorder Printf Variant
