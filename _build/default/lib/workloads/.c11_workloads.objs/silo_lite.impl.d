lib/workloads/silo_lite.ml: Array C11 List Memorder Printf Variant
