lib/workloads/spsc_queue.ml: Array C11 Memorder Printf Variant
