lib/workloads/ms_queue.ml: Array C11 Memorder Printf Variant
