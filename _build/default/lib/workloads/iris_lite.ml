(** Iris analogue (Section 8.2): a low-latency asynchronous logging library
    buffering messages through a single-producer single-consumer lock-free
    ring buffer (the test driver the paper uses is
    [test_lfringbuffer.cpp], one producer + one consumer).

    Seeded race (all tools reported races in Iris): the consumer caches the
    producer's write cursor and refreshes the cache with a {e relaxed}
    load, then reads message payloads based on the cached value — so a
    payload read is not synchronised with the producer's write that
    published it. *)

open Memorder

type t = {
  cells : C11.naloc array;
  widx : C11.atomic;  (** producer cursor *)
  ridx : C11.atomic;  (** consumer cursor *)
  consumed : C11.naloc;  (** consumer-local checksum *)
}

let create ~capacity =
  {
    cells =
      Array.init capacity (fun i ->
          C11.Nonatomic.make ~name:(Printf.sprintf "iris.cell%d" i) 0);
    widx = C11.Atomic.make ~name:"iris.widx" 0;
    ridx = C11.Atomic.make ~name:"iris.ridx" 0;
    consumed = C11.Nonatomic.make ~name:"iris.consumed" 0;
  }

let capacity t = Array.length t.cells

let publish t msg =
  let rec wait_space () =
    let w = C11.Atomic.load ~mo:Relaxed t.widx in
    let r = C11.Atomic.load ~mo:Acquire t.ridx in
    if w - r >= capacity t then begin
      C11.Thread.yield ();
      wait_space ()
    end
    else w
  in
  let w = wait_space () in
  C11.Nonatomic.write t.cells.(w mod capacity t) msg;
  C11.Atomic.store ~mo:Release t.widx (w + 1)

let consume ~variant t =
  let r = C11.Atomic.load ~mo:Relaxed t.ridx in
  let w_mo =
    match (variant : Variant.t) with Correct -> Acquire | Buggy -> Relaxed
  in
  let rec wait_data () =
    if C11.Atomic.load ~mo:w_mo t.widx <= r then begin
      C11.Thread.yield ();
      wait_data ()
    end
  in
  wait_data ();
  let msg = C11.Nonatomic.read t.cells.(r mod capacity t) in
  C11.Nonatomic.write t.consumed (C11.Nonatomic.read t.consumed + msg);
  C11.Atomic.store ~mo:Release t.ridx (r + 1);
  msg

let run ~variant ~scale () =
  let t = create ~capacity:4 in
  let producer =
    C11.Thread.spawn
      (fun () ->
        (* message formatting: plain accesses dominate a logging library *)
        let buffer = Array.init 8 (fun _ -> C11.Nonatomic.make 0) in
        for m = 1 to scale do
          Array.iteri (fun i b -> C11.Nonatomic.write b (m + i)) buffer;
          publish t m
        done)
  in
  let consumer =
    C11.Thread.spawn
      (fun () ->
        let sink = Array.init 8 (fun _ -> C11.Nonatomic.make 0) in
        for _ = 1 to scale do
          let m = consume ~variant t in
          Array.iter (fun b -> C11.Nonatomic.write b (C11.Nonatomic.read b + m)) sink
        done)
  in
  C11.Thread.join producer;
  C11.Thread.join consumer;
  C11.assert_that
    (C11.Nonatomic.read t.consumed = scale * (scale + 1) / 2)
    "iris: consumed checksum mismatch"
