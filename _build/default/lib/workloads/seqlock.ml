(** Seqlock (Section 8.1 of the paper).

    Based on the seqlock of Boehm, "Can seqlocks get along with programming
    language memory models?" (MSPC'12), using the fetch_add(0) idiom for the
    reader's second counter read.  The writer bumps the sequence counter to
    an odd value, writes the two data words, then bumps it back to even; a
    reader retries unless both counter reads agree on an even value.

    The injected bug weakens the orderings that protect the read side — the
    writer's initial (odd) counter increment and the reader's data loads and
    second counter read become relaxed.  A torn read then requires the
    reader's closing fetch_add to be inserted into the middle of the
    counter's modification order (the RMW reads a counter store that is not
    the newest), which is exactly what the restricted hb∪sc∪rf∪mo-acyclic
    fragment of tsan11/tsan11rec cannot produce. *)

open Memorder

type t = { seq : C11.atomic; data1 : C11.atomic; data2 : C11.atomic }

let create () =
  {
    seq = C11.Atomic.make ~name:"seqlock.seq" 0;
    data1 = C11.Atomic.make ~name:"seqlock.data1" 0;
    data2 = C11.Atomic.make ~name:"seqlock.data2" 0;
  }

let write ~variant t generation =
  let c = C11.Atomic.load ~mo:Acquire t.seq in
  let incr_mo =
    match (variant : Variant.t) with Correct -> Release | Buggy -> Relaxed
  in
  C11.Atomic.store ~mo:incr_mo t.seq (c + 1);
  C11.Atomic.store ~mo:Release t.data1 generation;
  C11.Atomic.store ~mo:Release t.data2 generation;
  C11.Atomic.store ~mo:Release t.seq (c + 2)

(* Returns [Some (d1, d2)] on a successful (validated) read. *)
let read ~variant t =
  let data_mo, close_mo =
    match (variant : Variant.t) with
    | Correct -> (Acquire, Acq_rel)
    | Buggy -> (Relaxed, Relaxed)
  in
  let s1 = C11.Atomic.load ~mo:Acquire t.seq in
  if s1 land 1 = 1 then None
  else begin
    let d1 = C11.Atomic.load ~mo:data_mo t.data1 in
    let d2 = C11.Atomic.load ~mo:data_mo t.data2 in
    let s2 = C11.Atomic.fetch_add ~mo:close_mo t.seq 0 in
    if s1 = s2 then Some (d1, d2) else None
  end

let run ~variant ~scale () =
  let lock = create () in
  let writer =
    C11.Thread.spawn (fun () ->
        for g = 1 to scale do
          write ~variant lock g
        done)
  in
  let reader () =
    for _ = 1 to scale do
      match read ~variant lock with
      | Some (d1, d2) ->
        C11.assert_that (d1 = d2) "seqlock: torn read (d1 <> d2)"
      | None -> C11.Thread.yield ()
    done
  in
  let r1 = C11.Thread.spawn reader in
  let r2 = C11.Thread.spawn reader in
  C11.Thread.join writer;
  C11.Thread.join r1;
  C11.Thread.join r2
