(** Michael-Scott non-blocking queue (data-structure suite, Table 2:
    "ms-queue").

    Nodes come from a pre-allocated pool; [head]/[tail] hold node indices
    and are advanced with CAS.  The queue logic itself is correct.

    Seeded bug: the benchmark driver keeps an {e approximate size} counter
    that both producers and consumers update with plain non-atomic
    accesses — an unconditional data race that every tool finds in every
    execution (all three tools report 100% in Table 2). *)

open Memorder

type t = {
  values : C11.atomic array;
  nexts : C11.atomic array;
  head : C11.atomic;
  tail : C11.atomic;
  alloc : C11.atomic;  (** node pool bump pointer *)
  approx_size : C11.naloc;
}

let nil = 0

let create ~capacity =
  let n = capacity + 2 in
  {
    values =
      Array.init n (fun i -> C11.Atomic.make ~name:(Printf.sprintf "msq.val%d" i) 0);
    nexts =
      Array.init n (fun i -> C11.Atomic.make ~name:(Printf.sprintf "msq.next%d" i) nil);
    (* node 1 is the initial dummy *)
    head = C11.Atomic.make ~name:"msq.head" 1;
    tail = C11.Atomic.make ~name:"msq.tail" 1;
    alloc = C11.Atomic.make ~name:"msq.alloc" 2;
    approx_size = C11.Nonatomic.make ~name:"msq.approx_size" 0;
  }

let alloc_node t v =
  let i = C11.Atomic.fetch_add ~mo:Acq_rel t.alloc 1 in
  if i >= Array.length t.values then
    C11.assert_that false "ms_queue: node pool exhausted";
  C11.Atomic.store ~mo:Relaxed t.values.(i) v;
  C11.Atomic.store ~mo:Relaxed t.nexts.(i) nil;
  i

let enqueue ~variant t v =
  let node = alloc_node t v in
  let rec loop () =
    let tl = C11.Atomic.load ~mo:Acquire t.tail in
    let nxt = C11.Atomic.load ~mo:Acquire t.nexts.(tl) in
    if nxt <> nil then begin
      (* help swing the tail *)
      ignore
        (C11.Atomic.compare_exchange ~mo:Acq_rel t.tail ~expected:tl
           ~desired:nxt);
      C11.Thread.yield ();
      loop ()
    end
    else if
      C11.Atomic.compare_exchange ~mo:Acq_rel t.nexts.(tl) ~expected:nil
        ~desired:node
    then
      ignore
        (C11.Atomic.compare_exchange ~mo:Acq_rel t.tail ~expected:tl
           ~desired:node)
    else begin
      C11.Thread.yield ();
      loop ()
    end
  in
  loop ();
  match (variant : Variant.t) with
  | Buggy ->
    C11.Nonatomic.write t.approx_size (C11.Nonatomic.read t.approx_size + 1)
  | Correct -> ()

let dequeue ~variant t =
  let rec loop () =
    let hd = C11.Atomic.load ~mo:Acquire t.head in
    let nxt = C11.Atomic.load ~mo:Acquire t.nexts.(hd) in
    if nxt = nil then begin
      C11.Thread.yield ();
      loop ()
    end
    else if
      C11.Atomic.compare_exchange ~mo:Acq_rel t.head ~expected:hd ~desired:nxt
    then C11.Atomic.load ~mo:Relaxed t.values.(nxt)
    else begin
      C11.Thread.yield ();
      loop ()
    end
  in
  let v = loop () in
  (match (variant : Variant.t) with
  | Buggy ->
    C11.Nonatomic.write t.approx_size (C11.Nonatomic.read t.approx_size - 1)
  | Correct -> ());
  v

let run ~variant ~scale () =
  let per_thread = scale in
  let t = create ~capacity:(2 * per_thread) in
  let sum = ref 0 in
  let producer () =
    for v = 1 to per_thread do
      enqueue ~variant t v
    done
  in
  let consumer () =
    for _ = 1 to per_thread do
      sum := !sum + dequeue ~variant t
    done
  in
  let p = C11.Thread.spawn producer in
  let p2 = C11.Thread.spawn producer in
  let c = C11.Thread.spawn consumer in
  let c2 = C11.Thread.spawn consumer in
  C11.Thread.join p;
  C11.Thread.join p2;
  C11.Thread.join c;
  C11.Thread.join c2;
  C11.assert_that
    (!sum = per_thread * (per_thread + 1))
    "ms_queue: dequeued values do not sum to what was enqueued"
