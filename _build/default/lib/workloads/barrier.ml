(** Sense-reversing spinning barrier (data-structure suite, Table 2).

    Arrivals are counted with an acq_rel fetch_add; the last arriver flips
    the shared sense flag with a release store and waiters spin on it with
    acquire loads.

    Seeded bug: waiters also take a "shortcut" exit when a relaxed load of
    the arrival counter already shows everyone arrived.  Crossing the
    barrier through the shortcut creates no happens-before edge, so the
    post-barrier reads race with other threads' pre-barrier writes —
    but only in executions where the shortcut fires first. *)

open Memorder

type t = { count : C11.atomic; sense : C11.atomic; parties : int }

let create ~parties =
  {
    count = C11.Atomic.make ~name:"barrier.count" 0;
    sense = C11.Atomic.make ~name:"barrier.sense" 0;
    parties;
  }

let wait ~variant t ~round =
  let pos = C11.Atomic.fetch_add ~mo:Acq_rel t.count 1 in
  if pos = t.parties - 1 then begin
    C11.Atomic.store ~mo:Relaxed t.count 0;
    C11.Atomic.store ~mo:Release t.sense (round + 1)
  end
  else begin
    let rec spin () =
      if C11.Atomic.load ~mo:Acquire t.sense > round then ()
      else if
        (match (variant : Variant.t) with
        | Buggy ->
          (* shortcut exit: a relaxed peek at the flipped sense crosses the
             barrier with no synchronisation *)
          C11.Atomic.load ~mo:Relaxed t.count = 0
          && C11.Atomic.load ~mo:Relaxed t.sense > round
        | Correct -> false)
      then ()
      else begin
        C11.Thread.yield ();
        spin ()
      end
    in
    spin ()
  end

let run ~variant ~scale () =
  let parties = 3 in
  let t = create ~parties in
  let slots = Array.init parties (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "barrier.slot%d" i) 0) in
  let worker i () =
    for phase = 0 to scale - 1 do
      C11.Nonatomic.write slots.(i) ((100 * i) + phase);
      wait ~variant t ~round:(2 * phase);
      (* read the next thread's slot: safe between the two barriers, racy
         when the barrier failed to synchronise *)
      ignore (C11.Nonatomic.read slots.((i + 1) mod parties));
      wait ~variant t ~round:((2 * phase) + 1)
    done
  in
  let threads = List.init parties (fun i -> C11.Thread.spawn (worker i)) in
  List.iter C11.Thread.join threads
