(** Mabain analogue (Section 8.2): a key-value store library with worker
    threads submitting insertions through a shared, lock-protected queue to
    one asynchronous writer thread.

    The paper found a real application bug in Mabain's test driver: the
    workers stop the writer once they have {e submitted} all jobs, without
    checking that the queue has drained, so late jobs are silently dropped
    and lookups fail.  [Buggy] reproduces that protocol (assertion failures
    in some schedules); [Correct] drains the queue before stopping.

    Mabain also had data races; the seeded analogue is a non-atomic
    statistics counter updated by both workers and the writer. *)

type t = {
  (* the "database": slot k holds the value stored for key k, 0 = absent *)
  db : C11.naloc array;
  (* bounded job queue, protected by [m] *)
  jobs : C11.naloc array;
  mutable_head : C11.naloc;
  mutable_tail : C11.naloc;
  stop : C11.atomic;
  m : C11.mutex;
  nonempty : C11.condvar;
  stats : C11.naloc;  (** seeded race: written with na accesses everywhere *)
}

let create ~capacity ~keys =
  {
    db = Array.init keys (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "mabain.db%d" i) 0);
    jobs = Array.init capacity (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "mabain.job%d" i) 0);
    mutable_head = C11.Nonatomic.make ~name:"mabain.head" 0;
    mutable_tail = C11.Nonatomic.make ~name:"mabain.tail" 0;
    stop = C11.Atomic.make ~name:"mabain.stop" 0;
    m = C11.Mutex.create ();
    nonempty = C11.Condvar.create ();
    stats = C11.Nonatomic.make ~name:"mabain.stats" 0;
  }

let submit ~variant t key =
  C11.Mutex.lock t.m;
  let tail = C11.Nonatomic.read t.mutable_tail in
  C11.Nonatomic.write t.jobs.(tail mod Array.length t.jobs) key;
  C11.Nonatomic.write t.mutable_tail (tail + 1);
  C11.Condvar.signal t.nonempty;
  C11.Mutex.unlock t.m;
  match (variant : Variant.t) with
  | Buggy ->
    (* unprotected statistics update — the seeded data race *)
    C11.Nonatomic.write t.stats (C11.Nonatomic.read t.stats + 1)
  | Correct -> ()

(* The async writer: consume jobs and perform the inserts.  In the buggy
   protocol it exits as soon as [stop] is set even if jobs remain. *)
let writer_loop ~variant t =
  let rec loop () =
    C11.Mutex.lock t.m;
    let rec wait_for_work () =
      let head = C11.Nonatomic.read t.mutable_head in
      let tail = C11.Nonatomic.read t.mutable_tail in
      let stopped = C11.Atomic.load ~mo:Memorder.Acquire t.stop = 1 in
      match (variant : Variant.t) with
      | Buggy when stopped ->
        (* the real Mabain driver bug: obey the stop flag immediately,
           dropping whatever is still queued *)
        `Stop
      | _ ->
        if head < tail then `Job
        else if stopped then `Stop
        else begin
          C11.Condvar.wait t.nonempty t.m;
          wait_for_work ()
        end
    in
    match wait_for_work () with
    | `Stop -> C11.Mutex.unlock t.m
    | `Job ->
      let head = C11.Nonatomic.read t.mutable_head in
      let key = C11.Nonatomic.read t.jobs.(head mod Array.length t.jobs) in
      C11.Nonatomic.write t.mutable_head (head + 1);
      C11.Mutex.unlock t.m;
      (* perform the insert outside the queue lock, like Mabain *)
      C11.Nonatomic.write t.db.(key) (key + 1);
      (match (variant : Variant.t) with
      | Buggy -> C11.Nonatomic.write t.stats (C11.Nonatomic.read t.stats + 1)
      | Correct -> ());
      loop ()
  in
  loop ()

let run ~variant ~scale () =
  let nworkers = 2 in
  let keys = nworkers * scale in
  let t = create ~capacity:(keys + 1) ~keys in
  let writer = C11.Thread.spawn (fun () -> writer_loop ~variant t) in
  let worker w () =
    for k = 0 to scale - 1 do
      submit ~variant t ((w * scale) + k)
    done
  in
  let workers = List.init nworkers (fun w -> C11.Thread.spawn (worker w)) in
  List.iter C11.Thread.join workers;
  (* the buggy protocol: stop the writer right after submission finishes *)
  C11.Mutex.lock t.m;
  C11.Atomic.store ~mo:Memorder.Release t.stop 1;
  C11.Condvar.broadcast t.nonempty;
  C11.Mutex.unlock t.m;
  C11.Thread.join writer;
  (* verify every submitted key is present — fails when jobs were dropped *)
  for key = 0 to keys - 1 do
    C11.assert_that
      (C11.Nonatomic.read t.db.(key) = key + 1)
      "mabain: submitted key missing from database (writer stopped early)"
  done
