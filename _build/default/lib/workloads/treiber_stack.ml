(** Treiber lock-free stack (part of the CDSChecker benchmark lineage the
    paper's suite descends from; exposed through the CLI and tests, not
    part of Table 2).

    Nodes come from a pool; [top] holds a node index and is updated with
    CAS.  Payloads are non-atomic: publication safety depends on the push
    CAS being a release and the pop CAS an acquire.

    Seeded bug: the pop CAS is relaxed, so a popping thread reads the
    payload without synchronising with the pushing thread. *)

open Memorder

type t = {
  values : C11.naloc array;
  nexts : C11.atomic array;
  top : C11.atomic;  (** 0 = empty *)
  alloc : C11.atomic;
}

let create ~capacity =
  let n = capacity + 1 in
  {
    values =
      Array.init n (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "ts.val%d" i) 0);
    nexts =
      Array.init n (fun i -> C11.Atomic.make ~name:(Printf.sprintf "ts.next%d" i) 0);
    top = C11.Atomic.make ~name:"ts.top" 0;
    alloc = C11.Atomic.make ~name:"ts.alloc" 1;
  }

let push t v =
  let i = C11.Atomic.fetch_add ~mo:Acq_rel t.alloc 1 in
  if i >= Array.length t.values then
    C11.assert_that false "treiber: pool exhausted";
  C11.Nonatomic.write t.values.(i) v;
  let rec link () =
    let old = C11.Atomic.load ~mo:Relaxed t.top in
    C11.Atomic.store ~mo:Relaxed t.nexts.(i) old;
    if not (C11.Atomic.compare_exchange ~mo:Release t.top ~expected:old ~desired:i)
    then begin
      C11.Thread.yield ();
      link ()
    end
  in
  link ()

let pop ~variant t =
  let mo =
    match (variant : Variant.t) with Correct -> Acquire | Buggy -> Relaxed
  in
  let rec loop () =
    let old = C11.Atomic.load ~mo t.top in
    if old = 0 then None
    else begin
      let next = C11.Atomic.load ~mo:Relaxed t.nexts.(old) in
      if C11.Atomic.compare_exchange ~mo t.top ~expected:old ~desired:next
      then Some (C11.Nonatomic.read t.values.(old))
      else begin
        C11.Thread.yield ();
        loop ()
      end
    end
  in
  loop ()

let run ~variant ~scale () =
  let t = create ~capacity:(2 * scale) in
  let popped = ref 0 in
  let producer () =
    for v = 1 to scale do
      push t v
    done
  in
  let consumer () =
    for _ = 1 to scale do
      match pop ~variant t with
      | Some _ -> incr popped
      | None -> C11.Thread.yield ()
    done
  in
  let p1 = C11.Thread.spawn producer in
  let p2 = C11.Thread.spawn producer in
  let c1 = C11.Thread.spawn consumer in
  let c2 = C11.Thread.spawn consumer in
  C11.Thread.join p1;
  C11.Thread.join p2;
  C11.Thread.join c1;
  C11.Thread.join c2
