(** Chase-Lev work-stealing deque (data-structure suite, Table 2:
    "chase-lev-deque").

    The owner pushes and takes at the bottom; thieves steal from the top
    with a CAS.  The payload array is non-atomic: publication safety
    depends entirely on the bottom/top synchronisation.

    Seeded bug: the thief reads [bottom] with a {e relaxed RMW}
    ([fetch_add 0]), relying on RMW-ness for freshness.  Under the C++20
    release-sequence rules a relaxed RMW synchronises with nothing, so a
    successful steal reads the payload cell without any happens-before
    edge to the owner's write — and the relaxed RMW may even be inserted
    into the middle of bottom's modification order, observing a stale
    bottom.  Tools in the tsan lineage treat every RMW as acquire-release
    and force RMWs to read the newest store, so they can never produce the
    racy execution (0% detection in Table 2). *)

open Memorder

type t = {
  top : C11.atomic;
  bottom : C11.atomic;
  buffer : C11.naloc array;
}

let create ~capacity =
  {
    top = C11.Atomic.make ~name:"cl.top" 0;
    bottom = C11.Atomic.make ~name:"cl.bottom" 0;
    buffer =
      Array.init capacity (fun i ->
          C11.Nonatomic.make ~name:(Printf.sprintf "cl.buf%d" i) 0);
  }

let size t = Array.length t.buffer

(* bottom can transiently regress in the buggy variant; index defensively *)
let slot t i =
  let n = size t in
  t.buffer.(((i mod n) + n) mod n)

let push t v =
  let b = C11.Atomic.load ~mo:Relaxed t.bottom in
  C11.Nonatomic.write (slot t b) v;
  C11.Atomic.store ~mo:Release t.bottom (b + 1)

let take t =
  let b = C11.Atomic.load ~mo:Relaxed t.bottom - 1 in
  C11.Atomic.store ~mo:Release t.bottom b;
  C11.Fence.seq_cst ();
  let tp = C11.Atomic.load ~mo:Relaxed t.top in
  if b < tp then begin
    (* empty: restore *)
    C11.Atomic.store ~mo:Release t.bottom (b + 1);
    None
  end
  else if b > tp then Some (C11.Nonatomic.read (slot t b))
  else begin
    (* last element: race the thieves for it *)
    let won =
      C11.Atomic.compare_exchange ~mo:Seq_cst t.top ~expected:tp
        ~desired:(tp + 1)
    in
    C11.Atomic.store ~mo:Release t.bottom (b + 1);
    if won then Some (C11.Nonatomic.read (slot t b)) else None
  end

let steal ~variant t =
  let tp = C11.Atomic.load ~mo:Acquire t.top in
  C11.Fence.seq_cst ();
  let b =
    match (variant : Variant.t) with
    | Correct -> C11.Atomic.load ~mo:Acquire t.bottom
    | Buggy -> C11.Atomic.fetch_add ~mo:Relaxed t.bottom 0
  in
  if tp < b then begin
    (* claim the element first, then read it: a speculative read before the
       CAS would race with the owner recycling the slot *)
    if C11.Atomic.compare_exchange ~mo:Seq_cst t.top ~expected:tp ~desired:(tp + 1)
    then Some (C11.Nonatomic.read (slot t tp))
    else None
  end
  else None

let run ~variant ~scale () =
  let t = create ~capacity:(2 * scale) in
  let owner =
    C11.Thread.spawn (fun () ->
        (* interleave pushes and takes so steals overlap pushes *)
        for v = 1 to scale do
          push t v;
          if v mod 2 = 0 then ignore (take t)
        done;
        for _ = 1 to scale / 2 do
          ignore (take t)
        done)
  in
  let thief () =
    for _ = 1 to scale do
      ignore (steal ~variant t);
      C11.Thread.yield ()
    done
  in
  let t1 = C11.Thread.spawn thief in
  let t2 = C11.Thread.spawn thief in
  C11.Thread.join owner;
  C11.Thread.join t1;
  C11.Thread.join t2
