(** JSBench analogue (Section 8.2 and Table 4): the Firefox JavaScript
    shell replaying the 25 JSBench workloads.

    A JavaScript engine under test is dominated by non-atomic heap traffic
    on the main thread, with a helper (GC/JIT) thread that rendezvouses
    with the mutator through a small set of atomics and a mutex — exactly
    the access mix Table 3 reports (5747M non-atomic vs 8M atomic
    accesses).  Each named sub-benchmark differs only in how much work it
    does; the relative weights below follow the per-benchmark op counts of
    Table 4. *)

open Memorder

(* (name, weight): weight 1 ≈ the smallest benchmark (twitter/firefox). *)
let benchmarks =
  [
    ("amazon/chrome", 2);
    ("amazon/chrome-win", 2);
    ("amazon/firefox", 2);
    ("amazon/firefox-win", 2);
    ("amazon/safari", 2);
    ("facebook/chrome", 9);
    ("facebook/chrome-win", 13);
    ("facebook/firefox", 6);
    ("facebook/firefox-win", 3);
    ("facebook/safari", 13);
    ("google/chrome", 7);
    ("google/chrome-win", 7);
    ("google/firefox", 4);
    ("google/firefox-win", 5);
    ("google/safari", 6);
    ("twitter/chrome", 3);
    ("twitter/chrome-win", 3);
    ("twitter/firefox", 1);
    ("twitter/firefox-win", 1);
    ("twitter/safari", 2);
    ("yahoo/chrome", 8);
    ("yahoo/chrome-win", 6);
    ("yahoo/firefox", 8);
    ("yahoo/firefox-win", 4);
    ("yahoo/safari", 8);
  ]

let names = List.map fst benchmarks

let weight name =
  match List.assoc_opt name benchmarks with Some w -> w | None -> 1

(* One sub-benchmark run: the mutator churns a non-atomic "heap" while the
   helper thread periodically requests a safepoint through an atomic
   handshake; at each safepoint the helper scans part of the heap. *)
let run_benchmark ~scale name () =
  let w = weight name in
  let heap_size = 64 in
  let heap =
    Array.init heap_size (fun i ->
        C11.Nonatomic.make ~name:(Printf.sprintf "js.heap%d" i) 0)
  in
  (* safepoint rendezvous: a cheap atomic poll flag plus a mutex/condvar
     handshake, the way engines park their mutator for GC *)
  let gc_poll = C11.Atomic.make ~name:"js.gc_poll" 0 in
  let done_flag = C11.Atomic.make ~name:"js.done" 0 in
  let m = C11.Mutex.create () in
  let cv = C11.Condvar.create () in
  let requested = C11.Nonatomic.make ~name:"js.requested" 0 in
  let parked = C11.Nonatomic.make ~name:"js.parked" 0 in
  let iterations = w * scale in
  let mutator () =
    for i = 1 to iterations do
      (* interpreter-ish non-atomic churn: plain accesses dominate a JS
         engine by orders of magnitude (Table 3) *)
      for step = 0 to 7 do
        let k = ((i * 17) + (step * 5)) mod heap_size in
        let v = C11.Nonatomic.read heap.(k) in
        C11.Nonatomic.write heap.((k + step + 1) mod heap_size) (v + i);
        C11.Nonatomic.write heap.(k) (v + 1)
      done;
      (* safepoint poll *)
      if C11.Atomic.load ~mo:Acquire gc_poll = 1 then begin
        C11.Mutex.lock m;
        if C11.Nonatomic.read requested = 1 then begin
          C11.Nonatomic.write parked 1;
          C11.Condvar.broadcast cv;
          let rec wait () =
            if C11.Nonatomic.read requested = 1 then begin
              C11.Condvar.wait cv m;
              wait ()
            end
          in
          wait ();
          C11.Nonatomic.write parked 0
        end;
        C11.Mutex.unlock m
      end
    done;
    C11.Mutex.lock m;
    C11.Atomic.store ~mo:Release done_flag 1;
    C11.Condvar.broadcast cv;
    C11.Mutex.unlock m
  in
  let helper () =
    let rec loop cycles =
      if C11.Atomic.load ~mo:Acquire done_flag = 1 || cycles >= w then ()
      else begin
        C11.Mutex.lock m;
        C11.Nonatomic.write requested 1;
        C11.Atomic.store ~mo:Release gc_poll 1;
        let rec await () =
          if
            C11.Nonatomic.read parked = 0
            && C11.Atomic.load ~mo:Acquire done_flag = 0
          then begin
            C11.Condvar.wait cv m;
            await ()
          end
        in
        await ();
        if C11.Nonatomic.read parked = 1 then
          (* scan a slice of the heap while the mutator is parked *)
          for k = 0 to (heap_size / 4) - 1 do
            ignore (C11.Nonatomic.read heap.(k))
          done;
        C11.Nonatomic.write requested 0;
        C11.Atomic.store ~mo:Release gc_poll 0;
        C11.Condvar.broadcast cv;
        C11.Mutex.unlock m;
        C11.Thread.yield ();
        loop (cycles + 1)
      end
    in
    loop 0
  in
  let tm = C11.Thread.spawn mutator in
  let th = C11.Thread.spawn helper in
  C11.Thread.join tm;
  C11.Thread.join th

(* The full suite, like the JSBench python driver. *)
let run ~variant:_ ~scale () =
  List.iter (fun name -> run_benchmark ~scale name ()) names
