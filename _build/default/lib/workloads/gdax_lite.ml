(** GDAX analogue (Section 8.2): an in-memory order book kept in a
    lock-free sorted list with fast-lane links (the role libcds' skip list
    plays in the original), updated from a recorded feed while reader
    threads iterate over the book.

    The original reported data races under every tool.  The seeded race
    here is the classic in-place quantity update: the updater rewrites an
    order's non-atomic quantity and flips a relaxed "dirty" flag, so
    iterating readers read the quantity without synchronisation. *)

open Memorder

type node = {
  price : int;  (** immutable after allocation *)
  quantity : C11.naloc;
  dirty : C11.atomic;
  next : C11.atomic;  (** index of next node, 0 = nil *)
  fast_next : C11.atomic;  (** fast lane: skips ahead, may lag behind *)
  live : C11.atomic;
}

type t = {
  nodes : node array;  (** node 0 is the head sentinel with price min_int *)
  alloc : C11.atomic;
}

let nil = 0

let create ~capacity =
  let mk i price =
    {
      price;
      quantity = C11.Nonatomic.make ~name:(Printf.sprintf "gdax.qty%d" i) 0;
      dirty = C11.Atomic.make ~name:(Printf.sprintf "gdax.dirty%d" i) 0;
      next = C11.Atomic.make ~name:(Printf.sprintf "gdax.next%d" i) nil;
      fast_next = C11.Atomic.make ~name:(Printf.sprintf "gdax.fnext%d" i) nil;
      live = C11.Atomic.make ~name:(Printf.sprintf "gdax.live%d" i) 1;
    }
  in
  {
    nodes = Array.init (capacity + 1) (fun i -> mk i (if i = 0 then min_int else 0));
    alloc = C11.Atomic.make ~name:"gdax.alloc" 1;
  }

let alloc_node t qty =
  let i = C11.Atomic.fetch_add ~mo:Acq_rel t.alloc 1 in
  if i >= Array.length t.nodes then
    C11.assert_that false "gdax: node pool exhausted";
  C11.Nonatomic.write t.nodes.(i).quantity qty;
  i

(* Insert a new order sorted by index order of prices; prices are synthetic
   so we simply insert after the head (insertion order list), which keeps
   the iteration pattern of an order book without a full comparator. *)
let insert t _price qty =
  let i = alloc_node t qty in
  let node = t.nodes.(i) in
  let rec link () =
    let head_next = C11.Atomic.load ~mo:Acquire t.nodes.(0).next in
    C11.Atomic.store ~mo:Relaxed node.next head_next;
    if
      not
        (C11.Atomic.compare_exchange ~mo:Acq_rel t.nodes.(0).next
           ~expected:head_next ~desired:i)
    then begin
      C11.Thread.yield ();
      link ()
    end
  in
  link ();
  (* fast lane hint; published with release so following it is safe *)
  C11.Atomic.store ~mo:Release t.nodes.(0).fast_next i;
  i

(* In-place quantity update: the seeded race.  The dirty flag is relaxed,
   so readers never synchronise with the quantity write.  The correct
   implementation never updates in place — it retires the order and inserts
   a replacement (see [run]). *)
let update_quantity t i qty =
  C11.Nonatomic.write t.nodes.(i).quantity qty;
  C11.Atomic.store ~mo:Relaxed t.nodes.(i).dirty 1

let remove t i = C11.Atomic.store ~mo:Release t.nodes.(i).live 0

(* Iterate the whole book, starting from the fast lane hint, summing
   quantities of live orders. *)
let iterate ~variant t =
  let total = ref 0 in
  (* reader-local aggregation state: depth statistics, price buckets, … *)
  let stats = Array.init 6 (fun _ -> C11.Nonatomic.make 0) in
  let start = C11.Atomic.load ~mo:Acquire t.nodes.(0).fast_next in
  let first = if start <> nil then start else C11.Atomic.load ~mo:Acquire t.nodes.(0).next in
  let rec walk i steps =
    if i <> nil && steps < Array.length t.nodes then begin
      let n = t.nodes.(i) in
      let is_live =
        match (variant : Variant.t) with
        | Buggy -> C11.Atomic.load ~mo:Relaxed n.live = 1
        | Correct -> C11.Atomic.load ~mo:Acquire n.live = 1
      in
      if is_live then begin
        let q = C11.Nonatomic.read n.quantity in
        total := !total + q;
        let b = stats.(steps mod Array.length stats) in
        C11.Nonatomic.write b (C11.Nonatomic.read b + q);
        C11.Nonatomic.write stats.(0) (C11.Nonatomic.read stats.(0) + 1)
      end;
      walk (C11.Atomic.load ~mo:Acquire n.next) (steps + 1)
    end
  in
  walk first 0;
  !total

let run ~variant ~scale () =
  let t = create ~capacity:((2 * scale) + 4) in
  let updater =
    C11.Thread.spawn (fun () ->
        let inserted = ref [] in
        for k = 1 to scale do
          let i = insert t (1000 + k) (10 * k) in
          inserted := i :: !inserted;
          (* replay feed: update a previous order, drop another *)
          (match !inserted with
          | a :: b :: _ ->
            (match (variant : Variant.t) with
            | Buggy -> update_quantity t a (k * 7)
            | Correct ->
              (* retire and reinsert instead of updating in place *)
              remove t a;
              inserted := insert t (2000 + k) (k * 7) :: !inserted);
            if k mod 3 = 0 then remove t b
          | _ -> ())
        done)
  in
  let reader () =
    for _ = 1 to scale do
      ignore (iterate ~variant t);
      C11.Thread.yield ()
    done
  in
  let r1 = C11.Thread.spawn reader in
  let r2 = C11.Thread.spawn reader in
  C11.Thread.join updater;
  C11.Thread.join r1;
  C11.Thread.join r2
