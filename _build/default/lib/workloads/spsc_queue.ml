(** Single-producer single-consumer bounded queue (the "spsc-queue" shape
    of the CDSChecker benchmark lineage; exposed through the CLI and
    tests, not part of Table 2).

    Seeded bug: the consumer's emptiness check loads the producer cursor
    relaxed, so a successful dequeue reads the payload cell without
    happening-after the producer's write. *)

open Memorder

type t = {
  cells : C11.naloc array;
  widx : C11.atomic;
  ridx : C11.atomic;
}

let create ~capacity =
  {
    cells =
      Array.init capacity (fun i ->
          C11.Nonatomic.make ~name:(Printf.sprintf "spsc.cell%d" i) 0);
    widx = C11.Atomic.make ~name:"spsc.widx" 0;
    ridx = C11.Atomic.make ~name:"spsc.ridx" 0;
  }

let capacity t = Array.length t.cells

let enqueue t v =
  let rec wait () =
    let w = C11.Atomic.load ~mo:Relaxed t.widx in
    if w - C11.Atomic.load ~mo:Acquire t.ridx >= capacity t then begin
      C11.Thread.yield ();
      wait ()
    end
    else w
  in
  let w = wait () in
  C11.Nonatomic.write t.cells.(w mod capacity t) v;
  C11.Atomic.store ~mo:Release t.widx (w + 1)

let dequeue ~variant t =
  let mo =
    match (variant : Variant.t) with Correct -> Acquire | Buggy -> Relaxed
  in
  let rec wait () =
    let r = C11.Atomic.load ~mo:Relaxed t.ridx in
    if C11.Atomic.load ~mo t.widx <= r then begin
      C11.Thread.yield ();
      wait ()
    end
    else r
  in
  let r = wait () in
  let v = C11.Nonatomic.read t.cells.(r mod capacity t) in
  C11.Atomic.store ~mo:Release t.ridx (r + 1);
  v

let run ~variant ~scale () =
  let t = create ~capacity:2 in
  let sum = ref 0 in
  let producer =
    C11.Thread.spawn (fun () ->
        for v = 1 to scale do
          enqueue t v
        done)
  in
  let consumer =
    C11.Thread.spawn (fun () ->
        for _ = 1 to scale do
          sum := !sum + dequeue ~variant t
        done)
  in
  C11.Thread.join producer;
  C11.Thread.join consumer;
  (* under the correct orderings every element arrives intact *)
  if variant = Variant.Correct then
    C11.assert_that
      (!sum = scale * (scale + 1) / 2)
      "spsc: checksum mismatch"
