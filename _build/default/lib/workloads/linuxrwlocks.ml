(** Linux-kernel-style reader-writer spinlock (data-structure suite,
    Table 2: "linuxrwlocks").

    A single counter holds the number of active readers, or -1 when a
    writer owns the lock.  Readers and writers acquire with CAS loops.

    Seeded bug: the writer takes a test-then-store fast path — it checks
    the counter with a relaxed load and, seeing the lock free, claims it
    with a plain store instead of a CAS.  Two writers (or a writer and a
    racing reader) can then both believe they own the lock, and their
    accesses to the protected cell race.  The bug only fires when another
    thread enters the window between the writer's check and its store. *)

open Memorder

type t = { lk : C11.atomic; data : C11.naloc }

let create () =
  {
    lk = C11.Atomic.make ~name:"linuxrw.lk" 0;
    data = C11.Nonatomic.make ~name:"linuxrw.data" 0;
  }

(* The buggy lock word can get coherence-pinned to a stale value (the
   broken mutual exclusion really does break liveness), so the driver
   bounds every acquisition loop, like the CDSChecker test drivers do.
   Lock functions return [false] when they give up. *)
let max_spins = 64

let read_lock t =
  let rec loop n =
    if n > max_spins then false
    else begin
      let c = C11.Atomic.load ~mo:Relaxed t.lk in
      if
        c >= 0
        && C11.Atomic.compare_exchange ~mo:Acquire t.lk ~expected:c
             ~desired:(c + 1)
      then true
      else begin
        C11.Thread.yield ();
        loop (n + 1)
      end
    end
  in
  loop 0

let read_unlock t = ignore (C11.Atomic.fetch_sub ~mo:Release t.lk 1)

let write_lock ~variant t =
  match (variant : Variant.t) with
  | Buggy ->
    (* test-then-store: the check and the claim are not atomic *)
    let rec loop n =
      if n > max_spins then false
      else if C11.Atomic.load ~mo:Acquire t.lk = 0 then begin
        C11.Atomic.store ~mo:Relaxed t.lk (-1);
        true
      end
      else begin
        C11.Thread.yield ();
        loop (n + 1)
      end
    in
    loop 0
  | Correct ->
    let rec loop n =
      if n > max_spins then false
      else if
        C11.Atomic.compare_exchange ~mo:Acquire t.lk ~expected:0 ~desired:(-1)
      then true
      else begin
        C11.Thread.yield ();
        loop (n + 1)
      end
    in
    loop 0

let write_unlock t = C11.Atomic.store ~mo:Release t.lk 0

let run ~variant ~scale () =
  let t = create () in
  let writer i () =
    for round = 1 to scale do
      if write_lock ~variant t then begin
        C11.Nonatomic.write t.data ((10 * i) + round);
        write_unlock t
      end
    done
  in
  let reader () =
    for _ = 1 to scale do
      if read_lock t then begin
        ignore (C11.Nonatomic.read t.data);
        read_unlock t
      end
    done
  in
  let w1 = C11.Thread.spawn (writer 1) in
  let w2 = C11.Thread.spawn (writer 2) in
  let r = C11.Thread.spawn reader in
  C11.Thread.join w1;
  C11.Thread.join w2;
  C11.Thread.join r
