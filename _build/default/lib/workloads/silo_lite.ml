(** Silo analogue (Section 8.2): a multicore in-memory storage engine using
    optimistic concurrency control with per-record version words.

    The real Silo implemented its record spinlocks and accesses with
    {e volatile} words plus gcc intrinsics, relying on x86-TSO for
    ordering.  The paper found that under C11Tester's default handling of
    volatiles as {e relaxed} atomics, Silo's invariants break: an OCC
    reader can observe a writer's payload while revalidating against a
    stale version word, so a torn snapshot validates.  Handling volatiles
    as acquire/release makes the violations disappear.  The tsan-lineage
    tools treat volatiles as plain memory: they report races on the
    volatile words instead (which C11Tester intentionally elides), and
    their plain reads always observe the freshest committed values, so
    they cannot reproduce the weak behaviour under controlled scheduling —
    matching the paper's account of tsan11rec.

    [Buggy] is Silo as shipped (volatile version words and payloads);
    [Correct] uses proper C11 atomics: acquire lock CAS, release unlock,
    and release/acquire payload publication. *)

open Memorder

type record = { version : C11.atomic; payload : C11.atomic }

type t = { records : record array; committed : C11.atomic }

let create ~nrecords =
  {
    records =
      Array.init nrecords (fun i ->
          {
            version = C11.Atomic.make ~name:(Printf.sprintf "silo.ver%d" i) 0;
            payload = C11.Atomic.make ~name:(Printf.sprintf "silo.rec%d" i) 100;
          });
    committed = C11.Atomic.make ~name:"silo.committed" 0;
  }

(* Version word: even = unlocked, odd = locked. *)

let lock_record ~variant r =
  let rec loop () =
    let v =
      match (variant : Variant.t) with
      | Buggy -> C11.Volatile.load r.version
      | Correct -> C11.Atomic.load ~mo:Acquire r.version
    in
    if v land 1 = 0 then begin
      let won =
        match variant with
        | Buggy ->
          C11.Volatile.compare_exchange r.version ~expected:v ~desired:(v + 1)
        | Correct ->
          C11.Atomic.compare_exchange ~mo:Acquire r.version ~expected:v
            ~desired:(v + 1)
      in
      if won then v
      else begin
        C11.Thread.yield ();
        loop ()
      end
    end
    else begin
      C11.Thread.yield ();
      loop ()
    end
  in
  loop ()

let unlock_record ~variant r new_version =
  match (variant : Variant.t) with
  | Buggy -> C11.Volatile.store r.version new_version
  | Correct -> C11.Atomic.store ~mo:Release r.version new_version

let read_version ~variant r =
  match (variant : Variant.t) with
  | Buggy -> C11.Volatile.load r.version
  | Correct -> C11.Atomic.load ~mo:Acquire r.version

let read_payload ~variant r =
  match (variant : Variant.t) with
  | Buggy -> C11.Volatile.load r.payload
  | Correct -> C11.Atomic.load ~mo:Acquire r.payload

let write_payload ~variant r v =
  match (variant : Variant.t) with
  | Buggy -> C11.Volatile.store r.payload v
  | Correct -> C11.Atomic.store ~mo:Release r.payload v

(* A write transaction: move [delta] from record [i] to record [j],
   locking both in index order (deadlock-free). *)
let transfer ~variant t i j delta =
  let i, j = if i < j then (i, j) else (j, i) in
  let ri = t.records.(i) and rj = t.records.(j) in
  let vi = lock_record ~variant ri in
  let vj = lock_record ~variant rj in
  let a = read_payload ~variant ri in
  let b = read_payload ~variant rj in
  write_payload ~variant ri (a - delta);
  write_payload ~variant rj (b + delta);
  unlock_record ~variant ri (vi + 2);
  unlock_record ~variant rj (vj + 2);
  ignore (C11.Atomic.fetch_add ~mo:Relaxed t.committed 1)

(* An OCC read transaction over records [i] and [j]: snapshot both
   payloads, validate both versions, and check the balance invariant. *)
let occ_read ~variant ~check_invariants t i j =
  let ri = t.records.(i) and rj = t.records.(j) in
  let v1i = read_version ~variant ri in
  let v1j = read_version ~variant rj in
  if v1i land 1 = 0 && v1j land 1 = 0 then begin
    let a = read_payload ~variant ri in
    let b = read_payload ~variant rj in
    let v2i = read_version ~variant ri in
    let v2j = read_version ~variant rj in
    if v1i = v2i && v1j = v2j then begin
      if check_invariants then
        C11.assert_that (a + b = 200)
          "silo: OCC read validated a torn snapshot (invariant broken)"
    end
  end

(* Per-transaction non-atomic work: key hashing, buffer marshalling and the
   like — the reason Table 3 reports ~6x more plain accesses than atomics
   for Silo. *)
let local_work scratch k =
  let n = Array.length scratch in
  for i = 0 to 9 do
    let j = (k + i) mod n in
    C11.Nonatomic.write scratch.(j) (C11.Nonatomic.read scratch.(j) + k)
  done

let run_param ~variant ~check_invariants ~scale () =
  let nrecords = 4 in
  let t = create ~nrecords in
  (* transactions work on disjoint record pairs (0,1) and (2,3), so each
     pair's balance is invariant: payload_{2p} + payload_{2p+1} = 200 *)
  let writer seedbase () =
    let scratch = Array.init 8 (fun _ -> C11.Nonatomic.make 0) in
    for k = 1 to scale do
      let p = (seedbase + k) mod (nrecords / 2) in
      local_work scratch k;
      transfer ~variant t (2 * p) ((2 * p) + 1) 1
    done
  in
  let reader seedbase () =
    let scratch = Array.init 8 (fun _ -> C11.Nonatomic.make 0) in
    for k = 1 to scale do
      let p = (seedbase + k) mod (nrecords / 2) in
      local_work scratch k;
      occ_read ~variant ~check_invariants t (2 * p) ((2 * p) + 1)
    done
  in
  let threads =
    [
      C11.Thread.spawn (writer 0);
      C11.Thread.spawn (writer 1);
      C11.Thread.spawn (reader 2);
      C11.Thread.spawn (reader 3);
      C11.Thread.spawn (reader 0);
    ]
  in
  List.iter C11.Thread.join threads

let run ~variant ~scale () = run_param ~variant ~check_invariants:true ~scale ()
