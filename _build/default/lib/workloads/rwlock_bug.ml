(** Reader-writer lock with an injected bug (Section 8.1 of the paper):
    "a broken reader-writer lock where the write-lock operation incorrectly
    uses relaxed atomics".

    Lock word: 0 = free, [n > 0] = n readers, -1 = writer.  Read lock/unlock
    use acquire/release RMWs.  In the buggy variant the writer's lock CAS
    and unlock exchange are relaxed, so a reader that enters after the
    writer released never synchronises with the writer's data writes and can
    observe a torn update.  Tools in the tsan lineage conservatively treat
    every RMW as acquire-release, which is why they cannot produce (and so
    miss) this bug. *)

open Memorder

type t = { lk : C11.atomic; data1 : C11.atomic; data2 : C11.atomic }

let create () =
  {
    lk = C11.Atomic.make ~name:"rwlock.lk" 0;
    data1 = C11.Atomic.make ~name:"rwlock.data1" 0;
    data2 = C11.Atomic.make ~name:"rwlock.data2" 0;
  }

let read_lock t =
  let rec loop () =
    let c = C11.Atomic.load ~mo:Relaxed t.lk in
    if c >= 0 then begin
      if
        not
          (C11.Atomic.compare_exchange ~mo:Acquire t.lk ~expected:c
             ~desired:(c + 1))
      then begin
        C11.Thread.yield ();
        loop ()
      end
    end
    else begin
      C11.Thread.yield ();
      loop ()
    end
  in
  loop ()

let read_unlock t = ignore (C11.Atomic.fetch_sub ~mo:Release t.lk 1)

let write_lock ~variant t =
  let mo =
    match (variant : Variant.t) with Correct -> Acquire | Buggy -> Relaxed
  in
  let rec loop () =
    if not (C11.Atomic.compare_exchange ~mo t.lk ~expected:0 ~desired:(-1))
    then begin
      C11.Thread.yield ();
      loop ()
    end
  in
  loop ()

let write_unlock ~variant t =
  let mo =
    match (variant : Variant.t) with Correct -> Release | Buggy -> Relaxed
  in
  ignore (C11.Atomic.exchange ~mo t.lk 0)

let run ~variant ~scale () =
  let lock = create () in
  let writer =
    C11.Thread.spawn (fun () ->
        for g = 1 to scale do
          write_lock ~variant lock;
          C11.Atomic.store ~mo:Relaxed lock.data1 g;
          C11.Atomic.store ~mo:Relaxed lock.data2 g;
          write_unlock ~variant lock
        done)
  in
  let reader () =
    for _ = 1 to scale do
      read_lock lock;
      let d1 = C11.Atomic.load ~mo:Relaxed lock.data1 in
      let d2 = C11.Atomic.load ~mo:Relaxed lock.data2 in
      C11.assert_that (d1 = d2) "rwlock: torn read under read lock";
      read_unlock lock
    done
  in
  let r1 = C11.Thread.spawn reader in
  let r2 = C11.Thread.spawn reader in
  C11.Thread.join writer;
  C11.Thread.join r1;
  C11.Thread.join r2
