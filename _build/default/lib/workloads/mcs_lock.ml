(** MCS queue lock (data-structure suite, Table 2: "mcs-lock").

    Each thread spins on its own queue node; the lock tail is a single
    atomic holding the index of the most recent waiter.  Handoff writes the
    successor's [locked] flag.

    Seeded bug: the handoff store is relaxed instead of release, so a
    contended handoff passes the lock without synchronising and the
    successor's critical-section accesses race with the predecessor's.
    Uncontended acquisitions go through the tail exchange (an RMW) and stay
    ordered, so the bug only fires when threads actually queue up. *)

open Memorder

type node = { next : C11.atomic; locked : C11.atomic }

type t = { tail : C11.atomic; nodes : node array }

(* Node 0 is the "null" node; thread slots start at 1. *)
let create ~slots =
  {
    tail = C11.Atomic.make ~name:"mcs.tail" 0;
    nodes =
      Array.init (slots + 1) (fun i ->
          {
            next = C11.Atomic.make ~name:(Printf.sprintf "mcs.next%d" i) 0;
            locked = C11.Atomic.make ~name:(Printf.sprintf "mcs.locked%d" i) 0;
          });
  }

let lock t ~slot =
  let my = t.nodes.(slot) in
  C11.Atomic.store ~mo:Relaxed my.next 0;
  C11.Atomic.store ~mo:Relaxed my.locked 1;
  let pred = C11.Atomic.exchange ~mo:Acq_rel t.tail slot in
  if pred <> 0 then begin
    C11.Atomic.store ~mo:Release t.nodes.(pred).next slot;
    let rec spin () =
      if C11.Atomic.load ~mo:Acquire my.locked = 1 then begin
        C11.Thread.yield ();
        spin ()
      end
    in
    spin ()
  end

let unlock ~variant t ~slot =
  let my = t.nodes.(slot) in
  let succ = C11.Atomic.load ~mo:Acquire my.next in
  if succ <> 0 then begin
    let mo =
      match (variant : Variant.t) with Correct -> Release | Buggy -> Relaxed
    in
    C11.Atomic.store ~mo t.nodes.(succ).locked 0
  end
  else if
    C11.Atomic.compare_exchange ~mo:Acq_rel t.tail ~expected:slot ~desired:0
  then ()
  else begin
    (* someone is enqueueing behind us; wait for the link *)
    let rec wait_link () =
      let s = C11.Atomic.load ~mo:Acquire my.next in
      if s = 0 then begin
        C11.Thread.yield ();
        wait_link ()
      end
      else
        let mo =
          match (variant : Variant.t) with
          | Correct -> Release
          | Buggy -> Relaxed
        in
        C11.Atomic.store ~mo t.nodes.(s).locked 0
    in
    wait_link ()
  end

let run ~variant ~scale () =
  let nthreads = 3 in
  let t = create ~slots:nthreads in
  let shared = C11.Nonatomic.make ~name:"mcs.shared" 0 in
  let worker slot () =
    for round = 1 to scale do
      lock t ~slot;
      C11.Nonatomic.write shared ((100 * slot) + round);
      ignore (C11.Nonatomic.read shared);
      unlock ~variant t ~slot
    done
  in
  let threads =
    List.init nthreads (fun i -> C11.Thread.spawn (worker (i + 1)))
  in
  List.iter C11.Thread.join threads
