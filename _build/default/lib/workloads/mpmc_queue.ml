(** Bounded multi-producer multi-consumer queue (data-structure suite,
    Table 2: "mpmc-queue").

    A ring of cells, each with a sequence stamp; producers and consumers
    claim slots with fetch_adds on head/tail tickets and wait for the
    stamp to reach their turn.

    Seeded bug: a consumer first checks an approximate element count with a
    relaxed load and, if it suggests data is available, skips the stamp
    check for its cell.  When the count is observed early the consumer
    reads the cell while the producer is still writing it — a window race
    on the non-atomic payload. *)

open Memorder

type t = {
  size : int;
  stamps : C11.atomic array;
  cells : C11.naloc array;
  enq_ticket : C11.atomic;
  deq_ticket : C11.atomic;
  count : C11.atomic;  (** approximate occupancy, maintained relaxed *)
}

let create ~size =
  {
    size;
    stamps =
      Array.init size (fun i ->
          C11.Atomic.make ~name:(Printf.sprintf "mpmc.stamp%d" i) i);
    cells =
      Array.init size (fun i ->
          C11.Nonatomic.make ~name:(Printf.sprintf "mpmc.cell%d" i) 0);
    enq_ticket = C11.Atomic.make ~name:"mpmc.enq" 0;
    deq_ticket = C11.Atomic.make ~name:"mpmc.deq" 0;
    count = C11.Atomic.make ~name:"mpmc.count" 0;
  }

let enqueue t v =
  let ticket = C11.Atomic.fetch_add ~mo:Acq_rel t.enq_ticket 1 in
  let i = ticket mod t.size in
  let rec wait_turn () =
    if C11.Atomic.load ~mo:Acquire t.stamps.(i) <> ticket then begin
      C11.Thread.yield ();
      wait_turn ()
    end
  in
  wait_turn ();
  C11.Nonatomic.write t.cells.(i) v;
  C11.Atomic.store ~mo:Release t.stamps.(i) (ticket + 1);
  ignore (C11.Atomic.fetch_add ~mo:Relaxed t.count 1)

let dequeue ~variant t =
  let ticket = C11.Atomic.fetch_add ~mo:Acq_rel t.deq_ticket 1 in
  let i = ticket mod t.size in
  (match (variant : Variant.t) with
  | Buggy ->
    (* premature "peek": the consumer mistakes the claimed stamp
       ([= ticket], producer still writing) for the published one
       ([= ticket + 1]) and reads the cell early.  Only fires when the
       consumer catches the producer inside its write window. *)
    if
      C11.Atomic.load ~mo:Relaxed t.count > 0
      && C11.Atomic.load ~mo:Acquire t.stamps.(i) = ticket
    then ignore (C11.Nonatomic.read t.cells.(i))
  | Correct -> ());
  let rec wait_turn () =
    if C11.Atomic.load ~mo:Acquire t.stamps.(i) <> ticket + 1 then begin
      C11.Thread.yield ();
      wait_turn ()
    end
  in
  wait_turn ();
  let v = C11.Nonatomic.read t.cells.(i) in
  C11.Atomic.store ~mo:Release t.stamps.(i) (ticket + t.size);
  ignore (C11.Atomic.fetch_add ~mo:Relaxed t.count (-1));
  v

let run ~variant ~scale () =
  let t = create ~size:2 in
  let producer () =
    for v = 1 to scale do
      enqueue t v
    done
  in
  let consumer () =
    for _ = 1 to scale do
      ignore (dequeue ~variant t)
    done
  in
  let p1 = C11.Thread.spawn producer in
  let p2 = C11.Thread.spawn producer in
  let c1 = C11.Thread.spawn consumer in
  let c2 = C11.Thread.spawn consumer in
  C11.Thread.join p1;
  C11.Thread.join p2;
  C11.Thread.join c1;
  C11.Thread.join c2
