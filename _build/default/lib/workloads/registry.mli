(** Catalogue of all benchmark workloads: the injected-bug benchmarks of
    Section 8.1, the data-structure suite of Section 8.3 (Table 2) and the
    application analogues of Section 8.2 (Tables 1/3/4). *)

type category = Injected | Data_structure | Application

type t = {
  name : string;
  description : string;
  category : category;
  run : variant:Variant.t -> scale:int -> unit -> unit;
  default_scale : int;  (** scale used by the Table 2 / Section 8.1 rates *)
  bench_scale : int;  (** scale used by the timing benchmarks *)
}

val all : t list
val find : string -> t option
val data_structures : t list
val injected : t list
val applications : t list
