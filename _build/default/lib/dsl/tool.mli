(** The three tools compared in the paper's evaluation (Section 8), as
    engine configurations.

    - {!C11tester}: the paper's tool — full memory-model fragment
      (constraint-based modification order), controlled random scheduling
      with consecutive-store batching, volatiles promoted to atomics.
    - {!Tsan11rec}: restricted fragment ([hb ∪ sc ∪ rf ∪ mo] acyclic with
      mo = commit order), controlled scheduling of visible operations.
    - {!Tsan11}: restricted fragment and {e no} scheduling control — the OS
      scheduler is modelled by bursty thread selection. *)

type t = C11tester | Tsan11 | Tsan11rec

val all : t list
val name : t -> string
val of_string : string -> t option

(** [config tool] builds an engine configuration.

    @param seed per-execution random seed (default 1)
    @param prune execution-graph pruning policy (default no pruning)
    @param volatile_atomic_mo override C11Tester's mapping of volatile
           accesses (default [Relaxed]; the Silo experiment uses [Acq_rel])
    @param max_steps livelock guard *)
val config :
  ?seed:int64 ->
  ?prune:Pruner.policy ->
  ?volatile_atomic_mo:Memorder.t ->
  ?max_steps:int ->
  t ->
  Engine.config
