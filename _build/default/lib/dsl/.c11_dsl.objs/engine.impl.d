lib/dsl/engine.ml: Action Array Clockvec Execution Fiber Format List Memorder Op Printexc Pruner Race Rng Schedule
