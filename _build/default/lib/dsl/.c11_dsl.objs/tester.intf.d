lib/dsl/tester.mli: Engine Format Race
