lib/dsl/engine.mli: Execution Format Memorder Pruner Race Schedule
