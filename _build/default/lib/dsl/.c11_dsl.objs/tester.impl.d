lib/dsl/tester.ml: Engine Format Hashtbl List Option Race Rng
