lib/dsl/tool.ml: Engine Execution Memorder Pruner Schedule
