lib/dsl/c11.ml: Engine Execution Fiber Memorder Op
