lib/dsl/tool.mli: Engine Memorder Pruner
