lib/dsl/c11.mli: Memorder
