type t = C11tester | Tsan11 | Tsan11rec

let all = [ C11tester; Tsan11; Tsan11rec ]

let name = function
  | C11tester -> "c11tester"
  | Tsan11 -> "tsan11"
  | Tsan11rec -> "tsan11rec"

let of_string = function
  | "c11tester" -> Some C11tester
  | "tsan11" -> Some Tsan11
  | "tsan11rec" -> Some Tsan11rec
  | _ -> None

let config ?(seed = 1L) ?(prune = Pruner.No_prune)
    ?(volatile_atomic_mo = Memorder.Relaxed) ?(max_steps = 2_000_000) tool =
  let base = { Engine.default_config with seed; prune; max_steps } in
  match tool with
  | C11tester ->
    {
      base with
      Engine.mode = Execution.Full_c11;
      sched = Schedule.Controlled_random { batch_stores = true };
      volatile_mode = Engine.Volatile_atomic volatile_atomic_mo;
    }
  | Tsan11rec ->
    {
      base with
      Engine.mode = Execution.Total_mo;
      sched = Schedule.Controlled_random { batch_stores = false };
      volatile_mode = Engine.Volatile_nonatomic;
    }
  | Tsan11 ->
    {
      base with
      Engine.mode = Execution.Total_mo;
      sched = Schedule.Bursty { mean_burst = 32 };
      volatile_mode = Engine.Volatile_nonatomic;
    }
