(** The public programming interface: an embedded DSL for writing the
    concurrent C/C++-style programs that C11Tester tests.

    Programs written against this API correspond to the instrumented
    programs of the paper: every [Atomic] access, [Nonatomic] shared
    access, fence, thread and synchronisation operation becomes a visible
    event for the model.  Plain OCaml values ([ref]s, lists, …) used inside
    a test are invisible to the model — use them only for checking results,
    never for inter-thread communication.

    All functions must be called from inside a program executed by
    {!Engine.run} / {!Tester}. *)

type atomic
type naloc
type mutex
type condvar
type thread

(** Atomic objects ([std::atomic<int>]). *)
module Atomic : sig
  (** [make ?name v] allocates an atomic location and initialises it with a
      non-atomic store, like [atomic_init] (Section 7.2).  [name] is used in
      race reports. *)
  val make : ?name:string -> int -> atomic

  val load : ?mo:Memorder.t -> atomic -> int
  (** default memory order: [Seq_cst], as in C++ *)

  val store : ?mo:Memorder.t -> atomic -> int -> unit
  val exchange : ?mo:Memorder.t -> atomic -> int -> int
  val fetch_add : ?mo:Memorder.t -> atomic -> int -> int
  val fetch_sub : ?mo:Memorder.t -> atomic -> int -> int
  val fetch_or : ?mo:Memorder.t -> atomic -> int -> int
  val fetch_and : ?mo:Memorder.t -> atomic -> int -> int

  (** [compare_exchange a ~expected ~desired] returns [true] on success.
      A failed compare-exchange acts as a load. *)
  val compare_exchange :
    ?mo:Memorder.t -> atomic -> expected:int -> desired:int -> bool

  (** Non-atomic initialising store to an already-created atomic —
      [atomic_init]; races with concurrent atomic accesses. *)
  val init : atomic -> int -> unit

  (** Raw non-atomic store/load to an atomic location (memory reuse /
      [memcpy] of Section 7.2). *)
  val na_store : atomic -> int -> unit

  val na_load : atomic -> int
end

(** Plain shared memory: race-detected, no weak behaviour of its own. *)
module Nonatomic : sig
  val make : ?name:string -> int -> naloc
  val read : naloc -> int
  val write : naloc -> int -> unit
end

(** Pre-C11 volatile accesses (Section 7.2): how they behave depends on the
    tool configuration — C11Tester maps them to atomics with a configured
    order; the baseline tools treat them as plain racy accesses. *)
module Volatile : sig
  val load : atomic -> int
  val store : atomic -> int -> unit
  val fetch_add : atomic -> int -> int
  val compare_exchange : atomic -> expected:int -> desired:int -> bool
end

module Fence : sig
  val fence : Memorder.t -> unit
  val acquire : unit -> unit
  val release : unit -> unit
  val seq_cst : unit -> unit
end

module Thread : sig
  val spawn : (unit -> unit) -> thread
  val join : thread -> unit

  (** A pure scheduling point; use inside spin loops. *)
  val yield : unit -> unit

  val id : thread -> int
end

module Mutex : sig
  val create : unit -> mutex
  val lock : mutex -> unit

  (** [try_lock m] returns [true] if the lock was taken. *)
  val try_lock : mutex -> bool

  val unlock : mutex -> unit
end

module Condvar : sig
  val create : unit -> condvar
  val wait : condvar -> mutex -> unit
  val signal : condvar -> unit
  val broadcast : condvar -> unit
end

(** [assert_that cond msg] aborts the execution and records an assertion
    violation when [cond] is false — the DSL analogue of a failing
    [assert] in the program under test. *)
val assert_that : bool -> string -> unit
