type step =
  | Done
  | Raised of exn
  | Paused of Op.t * cont

and cont = (int, step) Effect.Deep.continuation

exception Cancelled

type _ Effect.t += Visible : Op.t -> int Effect.t

let perform op = Effect.perform (Visible op)

let handler : (unit, step) Effect.Deep.handler =
  {
    retc = (fun () -> Done);
    exnc = (fun e -> Raised e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Visible op ->
          Some
            (fun (k : (a, step) Effect.Deep.continuation) -> Paused (op, k))
        | _ -> None);
  }

let start f = Effect.Deep.match_with f () handler

let resume k v = Effect.Deep.continue k v

let cancel k =
  match Effect.Deep.discontinue k Cancelled with
  | Done | Raised _ | Paused _ -> ()
  | exception _ -> ()
