lib/fiber/op.ml: Execution Format Memorder
