lib/fiber/fiber.mli: Op
