lib/fiber/fiber.ml: Effect Op
