lib/fiber/op.mli: Execution Format Memorder
