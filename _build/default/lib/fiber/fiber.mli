(** Fibers over OCaml effect handlers.

    The paper controls the program under test with [swapcontext] fibers and
    thread-context borrowing (Sections 7.3/7.4); here each simulated thread
    is an OCaml 5 fiber that performs the {!Fiber.op} effect at every
    visible operation and suspends until the scheduler resumes it.  One
    kernel thread, deterministic switching, no TLS games. *)

(** A suspended computation: what a fiber did when it last ran. *)
type step =
  | Done  (** the thread body returned *)
  | Raised of exn  (** the thread body raised *)
  | Paused of Op.t * cont
      (** the thread wants to perform a visible operation *)

and cont

(** Raised into a fiber that is being cancelled (execution aborted). *)
exception Cancelled

(** [perform op] suspends the current fiber at [op]; only call from inside
    a fiber started with {!start}. *)
val perform : Op.t -> int

(** [start f] runs [f] until its first visible operation. *)
val start : (unit -> unit) -> step

(** [resume k result] delivers [result] for the pending operation and runs
    the fiber to its next suspension. *)
val resume : cont -> int -> step

(** [cancel k] unwinds a suspended fiber by raising {!Cancelled} into it;
    any exception it raises in response is swallowed. *)
val cancel : cont -> unit
