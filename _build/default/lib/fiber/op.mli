(** Visible operations.

    Everything the instrumented program can do that the model cares about —
    the events the paper's LLVM pass would funnel into the C11Tester
    runtime.  A fiber suspends every time it performs one of these; the
    engine interprets it against the memory model and resumes the fiber
    with an integer result. *)

type t =
  | Load of { loc : int; mo : Memorder.t; volatile : bool }
  | Store of { loc : int; mo : Memorder.t; value : int; volatile : bool }
  | Rmw of {
      loc : int;
      mo : Memorder.t;
      f : int -> Execution.rmw_decision;
      volatile : bool;
    }
  | Fence of Memorder.t
  | Na_read of { loc : int }
  | Na_write of { loc : int; value : int }
  | Alloc of { atomic : bool; name : string option; init : int }
  | Spawn of (unit -> unit)
  | Join of int
  | Mutex_create
  | Mutex_lock of int
  | Mutex_trylock of int
  | Mutex_unlock of int
  | Cond_create
  | Cond_wait of { cond : int; mutex : int }
  | Cond_signal of int
  | Cond_broadcast of int
  | Yield

(** Operations that are {e not} scheduling points: they execute inline in
    the current thread without consulting the scheduler, mirroring the
    paper (Section 3: scheduling decisions are made at atomic, threading
    and synchronisation operations; plain memory accesses run freely). *)
val is_inline : t -> bool

(** Is this a release/relaxed atomic store?  Drives the consecutive-store
    batching rule of the scheduler. *)
val is_rlx_or_rel_store : t -> bool

val pp : Format.formatter -> t -> unit
