(** Execution-graph pruning (Section 7.1 of the paper).

    The execution graph grows with every atomic store, so long executions
    need pruning.  Naively dropping old stores is unsound: an old store can
    be modification-ordered {e after} a newer one, and dropping it could let
    a load read a store that coherence forbids.

    - {b Conservative mode} computes [CV_min], the pointwise minimum of all
      live threads' clock vectors.  A store covered by [CV_min] happens
      before every thread's next action, so any store modification-ordered
      {e before} it can no longer be read by anyone and is removed.  This
      mode never changes the set of producible executions.
    - {b Aggressive mode} keeps a trailing window of the trace: every store
      older than the window is treated as an anchor and the stores
      modification-ordered before it are removed even if still readable.
      This can shrink the set of producible executions but never allows a
      forbidden one.

    Loads that read from a removed store are removed with it, as are
    seq-cst fences that happen before [CV_min]. *)

type policy =
  | No_prune
  | Conservative of { interval : int }
  | Aggressive of { window : int; interval : int }

type stats = { stores_pruned : int; loads_pruned : int; fences_pruned : int }

val pp_policy : Format.formatter -> policy -> unit

(** [cv_min exec] is the intersection of all live threads' clock vectors. *)
val cv_min : Execution.t -> Clockvec.t

(** Run one conservative pruning pass. *)
val prune_conservative : Execution.t -> stats

(** Run one aggressive pass keeping roughly the last [window] sequence
    numbers of the trace. *)
val prune_aggressive : Execution.t -> window:int -> stats

(** [maybe_prune policy exec ~ops] applies the policy if [ops] (the count of
    atomic operations so far) has crossed a multiple of the interval. *)
val maybe_prune : policy -> Execution.t -> ops:int -> stats option
