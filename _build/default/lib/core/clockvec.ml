type t = { mutable data : int array }

let bottom () = { data = [||] }

let ensure t n =
  let len = Array.length t.data in
  if n > len then begin
    let data = Array.make (max n (max 4 (2 * len))) 0 in
    Array.blit t.data 0 data 0 len;
    t.data <- data
  end

let of_slot ~tid ~seq =
  let t = bottom () in
  ensure t (tid + 1);
  t.data.(tid) <- seq;
  t

let copy t = { data = Array.copy t.data }

let get t i = if i < Array.length t.data then t.data.(i) else 0

let set t i v =
  ensure t (i + 1);
  t.data.(i) <- v

let merge dst src =
  let changed = ref false in
  let n = Array.length src.data in
  ensure dst n;
  for i = 0 to n - 1 do
    if src.data.(i) > dst.data.(i) then begin
      dst.data.(i) <- src.data.(i);
      changed := true
    end
  done;
  !changed

let union a b =
  let t = copy a in
  ignore (merge t b);
  t

let leq a b =
  let n = Array.length a.data in
  let rec go i = i >= n || (a.data.(i) <= get b i && go (i + 1)) in
  go 0

let equal a b = leq a b && leq b a

let intersect a b =
  let n = min (Array.length a.data) (Array.length b.data) in
  let data = Array.init n (fun i -> min a.data.(i) b.data.(i)) in
  { data }

let covers t ~tid ~seq = get t tid >= seq

let width t = Array.length t.data

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Format.pp_print_int)
    (Array.to_list t.data)
