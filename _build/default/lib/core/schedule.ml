type t =
  | Controlled_random of { batch_stores : bool }
  | Bursty of { mean_burst : int }
  | Priority of { change_points : int }
  | Round_robin

type state = {
  mutable last_tid : int;
  mutable last_was_store : bool;
  mutable burst_left : int;
  mutable priorities : float array;  (** higher runs first *)
  mutable steps : int;
}

let make_state () =
  {
    last_tid = -1;
    last_was_store = false;
    burst_left = 0;
    priorities = [||];
    steps = 0;
  }

let note_executed st ~tid ~was_rlx_or_rel_store =
  st.last_tid <- tid;
  st.last_was_store <- was_rlx_or_rel_store

let random_pick rng enabled =
  match enabled with
  | [ t ] -> t
  | _ -> List.nth enabled (Rng.int rng (List.length enabled))

let ensure_priorities st rng n =
  let len = Array.length st.priorities in
  if n > len then begin
    let p = Array.init (max n (2 * max 4 len)) (fun _ -> Rng.float rng) in
    Array.blit st.priorities 0 p 0 len;
    st.priorities <- p
  end

let pick t st rng ~enabled ~pending_is_rlx_store =
  match enabled with
  | [] -> invalid_arg "Schedule.pick: no enabled thread"
  | _ -> (
    st.steps <- st.steps + 1;
    match t with
    | Controlled_random { batch_stores } ->
      if
        batch_stores && st.last_was_store
        && List.mem st.last_tid enabled
        && pending_is_rlx_store st.last_tid
      then st.last_tid
      else random_pick rng enabled
    | Bursty { mean_burst } ->
      if st.burst_left > 0 && List.mem st.last_tid enabled then begin
        st.burst_left <- st.burst_left - 1;
        st.last_tid
      end
      else begin
        let tid = random_pick rng enabled in
        st.burst_left <- Rng.geometric rng mean_burst - 1;
        tid
      end
    | Priority { change_points } ->
      let top = List.fold_left max 0 enabled in
      ensure_priorities st rng (top + 1);
      (* a change point demotes the thread that just ran *)
      if
        st.last_tid >= 0
        && change_points > 0
        (* on average [change_points] demotions per ~1000 decisions *)
        && Rng.int rng 1000 < change_points
      then
        st.priorities.(st.last_tid) <-
          st.priorities.(st.last_tid) -. 1.0;
      List.fold_left
        (fun best tid ->
          if st.priorities.(tid) > st.priorities.(best) then tid else best)
        (List.hd enabled) enabled
    | Round_robin ->
      let after = List.filter (fun tid -> tid > st.last_tid) enabled in
      (match after with next :: _ -> next | [] -> List.hd enabled))

let pp fmt = function
  | Controlled_random { batch_stores } ->
    Format.fprintf fmt "controlled-random%s"
      (if batch_stores then "+store-batching" else "")
  | Bursty { mean_burst } -> Format.fprintf fmt "bursty(%d)" mean_burst
  | Priority { change_points } -> Format.fprintf fmt "pct(%d)" change_points
  | Round_robin -> Format.pp_print_string fmt "round-robin"
