lib/core/race.mli: Clockvec Format
