lib/core/execution.ml: Action Array Clockvec Hashtbl List Memorder Mograph Printf Race Rng
