lib/core/clockvec.ml: Array Format
