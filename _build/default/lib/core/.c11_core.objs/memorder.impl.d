lib/core/memorder.ml: Format
