lib/core/mograph.ml: Action Buffer Clockvec Hashtbl List Printf Queue
