lib/core/clockvec.mli: Format
