lib/core/execution.mli: Action Clockvec Hashtbl Memorder Mograph Race Rng
