lib/core/pruner.mli: Clockvec Execution Format
