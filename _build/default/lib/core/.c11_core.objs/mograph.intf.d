lib/core/mograph.mli: Action Clockvec
