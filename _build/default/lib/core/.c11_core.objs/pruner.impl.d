lib/core/pruner.ml: Action Array Clockvec Execution Format Hashtbl List Mograph
