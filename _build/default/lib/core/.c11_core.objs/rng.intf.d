lib/core/rng.mli:
