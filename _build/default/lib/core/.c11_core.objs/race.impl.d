lib/core/race.ml: Clockvec Format Hashtbl List Printf
