lib/core/action.ml: Clockvec Format Memorder
