lib/core/action.mli: Clockvec Format Memorder
