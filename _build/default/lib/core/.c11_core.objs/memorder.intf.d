lib/core/memorder.mli: Format
