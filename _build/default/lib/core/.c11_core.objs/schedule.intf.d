lib/core/schedule.mli: Format Rng
