type node = {
  action : Action.t;
  mutable edges : node list;
  mutable rmw : node option;
  mutable cv : Clockvec.t;
  mutable pruned : bool;
}

type t = { nodes : (int, node) Hashtbl.t }

let create () = { nodes = Hashtbl.create 256 }

let size t = Hashtbl.length t.nodes

let get_node t (a : Action.t) =
  match Hashtbl.find_opt t.nodes a.seq with
  | Some n -> n
  | None ->
    let n =
      {
        action = a;
        edges = [];
        rmw = None;
        cv = Clockvec.of_slot ~tid:a.tid ~seq:a.seq;
        pruned = false;
      }
    in
    Hashtbl.add t.nodes a.seq n;
    n

let find_node t (a : Action.t) = Hashtbl.find_opt t.nodes a.seq

(* Merge procedure of Figure 6. *)
let merge dst src =
  if Clockvec.leq src.cv dst.cv then false else Clockvec.merge dst.cv src.cv

let propagate_from start =
  let q = Queue.create () in
  Queue.add start q;
  while not (Queue.is_empty q) do
    let node = Queue.pop q in
    List.iter (fun dst -> if merge dst node then Queue.add dst q) node.edges
  done

let add_edge _t from to_ =
  if from == to_ then ()
  else
  let must_add_edge =
    (match from.rmw with Some r -> r == to_ | None -> false)
    || from.action.tid = to_.action.tid
  in
  if Clockvec.leq from.cv to_.cv && not must_add_edge then ()
  else begin
    (* An RMW is pinned immediately after the store it reads from, so a
       store ordered after the head of an rmw chain is really ordered after
       the whole chain: walk to its end. *)
    let from = ref from in
    (try
       while !from.rmw <> None do
         match !from.rmw with
         | Some next -> if next == to_ then raise Exit else from := next
         | None -> ()
       done
     with Exit -> ());
    let from = !from in
    if not (List.memq to_ from.edges) then from.edges <- to_ :: from.edges;
    if merge to_ from then propagate_from to_
  end

let add_rmw_edge t from rmw =
  from.rmw <- Some rmw;
  List.iter
    (fun dst -> if dst != rmw && not (List.memq dst rmw.edges) then rmw.edges <- dst :: rmw.edges)
    from.edges;
  from.edges <- [];
  add_edge t from rmw;
  (* Each migrated edge is a new constraint [rmw -mo-> dst].  AddEdge's
     final merge may report no change (the rmw's clock can already cover
     the store it read), which would skip propagation, so push the rmw's
     clock over its out-edges unconditionally. *)
  propagate_from rmw

let reaches t (a : Action.t) (b : Action.t) =
  if a.seq = b.seq then true
  else
    let na = get_node t a and nb = get_node t b in
    Clockvec.leq na.cv nb.cv

(* Would adding the constraint [from -mo-> to_] close a cycle?  AddEdge
   redirects an edge whose source heads an rmw chain to the end of that
   chain (the RMW pinned immediately after a store inherits the store's
   ordering obligations), so feasibility must be checked against the
   chain's end, not against [from] itself. *)
let edge_would_close_cycle t ~from ~to_ =
  if from.Action.seq = to_.Action.seq then false
  else begin
    let nf = get_node t from and nt = get_node t to_ in
    let rec chain_end n =
      match n.rmw with
      | Some r -> if r == nt then None else chain_end r
      | None -> Some n
    in
    match chain_end nf with
    | None -> false (* the chain runs into [to_] itself: edge is redundant *)
    | Some eff -> eff == nt || Clockvec.leq nt.cv eff.cv
  end

let reaches_dfs t (a : Action.t) (b : Action.t) =
  match (find_node t a, find_node t b) with
  | None, _ | _, None -> a.seq = b.seq
  | Some na, Some nb ->
    let visited = Hashtbl.create 64 in
    let rec go n =
      n == nb
      ||
      if Hashtbl.mem visited n.action.seq then false
      else begin
        Hashtbl.add visited n.action.seq ();
        let succs =
          match n.rmw with Some r -> r :: n.edges | None -> n.edges
        in
        List.exists go succs
      end
    in
    na == nb || go na

let remove_node t (a : Action.t) =
  match Hashtbl.find_opt t.nodes a.seq with
  | None -> ()
  | Some n ->
    n.pruned <- true;
    n.edges <- [];
    Hashtbl.remove t.nodes a.seq

let iter_nodes t f = Hashtbl.iter (fun _ n -> f n) t.nodes

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph mo {\n  rankdir=LR;\n";
  iter_nodes t (fun n ->
      let a = n.action in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"#%d t%d loc%d=%d\"];\n" a.Action.seq
           a.Action.seq a.Action.tid a.Action.loc a.Action.value));
  iter_nodes t (fun n ->
      List.iter
        (fun dst ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d;\n" n.action.Action.seq
               dst.action.Action.seq))
        n.edges;
      match n.rmw with
      | Some r ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=bold,color=red,label=\"rmw\"];\n"
             n.action.Action.seq r.action.Action.seq)
      | None -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let check_acyclic t =
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let exception Cycle in
  let rec visit n =
    match Hashtbl.find_opt color n.action.seq with
    | Some 1 -> raise Cycle
    | Some _ -> ()
    | None ->
      Hashtbl.add color n.action.seq 1;
      let succs = match n.rmw with Some r -> r :: n.edges | None -> n.edges in
      List.iter visit succs;
      Hashtbl.replace color n.action.seq 2
  in
  try
    iter_nodes t visit;
    true
  with Cycle -> false
