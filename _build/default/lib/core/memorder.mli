(** C/C++11 memory orders.

    [Consume] is accepted but strengthened to acquire, matching C11Tester's
    memory-model fragment (change 3 in Section 2.2 of the paper) and the
    behaviour of all production compilers. *)

type t =
  | Relaxed
  | Consume
  | Acquire
  | Release
  | Acq_rel
  | Seq_cst

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** [is_acquire mo] holds for acquire, acq_rel, seq_cst and (strengthened)
    consume orders: operations that may form the acquire side of a
    release/acquire synchronisation. *)
val is_acquire : t -> bool

(** [is_release mo] holds for release, acq_rel and seq_cst orders. *)
val is_release : t -> bool

val is_seq_cst : t -> bool

(** All six orders, for property-based tests. *)
val all : t list
