(* The evaluation harness: one entry per table and figure of the paper's
   Section 8 (plus Figure 4 and a pruning ablation).  Paper-reported
   numbers are quoted in each header so the shape can be compared at a
   glance; EXPERIMENTS.md records a full run. *)

let table2_iters = ref 500
let sec81_iters = ref 1000
let table1_runs = ref 10

let tools = [ Tool.C11tester; Tool.Tsan11rec; Tool.Tsan11 ]

(* ------------------------------------------------------------------ *)
(* Figure 4: scheduling bias with and without consecutive-store batching *)

let fig4 () =
  Bench_util.header
    "Figure 4: bias of a purely randomized scheduler (threadA: x=1;x=2 | \
     threadB: r1=x).  With batching r1=1 and r1=2 are equally likely.";
  let experiment ~batch =
    let config =
      {
        (Tool.config Tool.C11tester) with
        Engine.sched = Schedule.Controlled_random { batch_stores = batch };
      }
    in
    let r1 = ref 0 in
    let program () =
      let x = C11.Atomic.make 0 in
      let ta =
        C11.Thread.spawn (fun () ->
            C11.Atomic.store ~mo:Memorder.Relaxed x 1;
            C11.Atomic.store ~mo:Memorder.Relaxed x 2)
      in
      let tb =
        C11.Thread.spawn (fun () ->
            r1 := C11.Atomic.load ~mo:Memorder.Relaxed x)
      in
      C11.Thread.join ta;
      C11.Thread.join tb;
      !r1
    in
    let _, hist = Tester.run_collect ~config ~iters:10_000 program in
    let count v = try List.assoc v hist with Not_found -> 0 in
    (count 0, count 1, count 2)
  in
  Printf.printf "%-22s %8s %8s %8s\n" "scheduler" "r1=0" "r1=1" "r1=2";
  let z, o, t = experiment ~batch:true in
  Printf.printf "%-22s %8d %8d %8d\n" "with store batching" z o t;
  let z, o, t = experiment ~batch:false in
  Printf.printf "%-22s %8d %8d %8d\n%!" "purely randomized" z o t

(* ------------------------------------------------------------------ *)
(* Section 8.1: injected bugs in seqlock and the reader-writer lock *)

let sec8_1 () =
  Bench_util.header
    (Printf.sprintf
       "Section 8.1: injected-bug detection over %d runs (paper: c11tester \
        28.8%% / 55.3%%, tsan11 and tsan11rec 0%% in 10,000 runs)"
       !sec81_iters);
  Printf.printf "%-10s %12s %12s %12s\n" "benchmark" "c11tester" "tsan11rec"
    "tsan11";
  List.iter
    (fun name ->
      let w = Bench_util.find_workload name in
      Printf.printf "%-10s" name;
      List.iter
        (fun tool ->
          let rate, _ =
            Bench_util.detection_rate ~tool ~iters:!sec81_iters
              ~variant:Variant.Buggy ~scale:w.Registry.default_scale w
          in
          Printf.printf " %10.1f%%" rate)
        [ Tool.C11tester; Tool.Tsan11rec; Tool.Tsan11 ];
      print_newline ())
    [ "seqlock"; "rwlock" ]

(* ------------------------------------------------------------------ *)
(* Table 1: application benchmark performance *)

let app_names = [ "silo"; "gdax"; "mabain"; "iris"; "jsbench" ]

let table1_data () =
  List.map
    (fun name ->
      let w = Bench_util.find_workload name in
      let per_tool =
        List.map
          (fun tool ->
            let runner =
              Bench_util.workload_runner ~tool ~variant:Variant.Buggy
                ~scale:w.Registry.bench_scale w
            in
            let times = Stats.sample !table1_runs runner in
            (tool, times))
          tools
      in
      (name, per_tool))
    app_names

let print_table1 data =
  Bench_util.header
    (Printf.sprintf
       "Table 1: application benchmarks, wall time per run over %d runs, \
        mean (relative stddev).  Paper shape: c11tester ~15x faster than \
        tsan11rec, ~1.6x slower than tsan11."
       !table1_runs);
  Printf.printf "%-10s %20s %20s %20s\n" "app" "c11tester" "tsan11rec" "tsan11";
  List.iter
    (fun (name, per_tool) ->
      Printf.printf "%-10s" name;
      List.iter
        (fun tool ->
          let times = List.assoc tool per_tool in
          Printf.printf " %12s (%5.1f%%)"
            (Bench_util.pp_seconds (Stats.mean times))
            (Stats.rsd_percent times))
        tools;
      print_newline ())
    data

let table1 () = print_table1 (table1_data ())

(* ------------------------------------------------------------------ *)
(* Figure 15: speedups relative to tsan11, geometric mean *)

let fig15 () =
  let data = table1_data () in
  Bench_util.header
    "Figure 15: speedup of each tool relative to tsan11 (geometric mean \
     over the five applications; >1 = faster than tsan11)";
  let speedups tool =
    List.map
      (fun (_, per_tool) ->
        let t = Stats.mean (List.assoc tool per_tool) in
        let base = Stats.mean (List.assoc Tool.Tsan11 per_tool) in
        base /. t)
      data
  in
  List.iter
    (fun tool ->
      Printf.printf "%-10s geomean speedup vs tsan11: %6.2fx\n"
        (Tool.name tool)
        (Stats.geomean (speedups tool)))
    tools;
  let c11 = Stats.geomean (speedups Tool.C11tester) in
  let t11rec = Stats.geomean (speedups Tool.Tsan11rec) in
  Printf.printf
    "=> c11tester is %.1fx faster than tsan11rec (paper: 14.9x single-core, \
     11.1x all-core)\n%!"
    (c11 /. t11rec)

(* ------------------------------------------------------------------ *)
(* Table 2: data structure benchmarks — time and detection rate *)

let ds_names =
  [
    "barrier";
    "chase-lev-deque";
    "dekker-fences";
    "linuxrwlocks";
    "mcs-lock";
    "mpmc-queue";
    "ms-queue";
  ]

let table2_data () =
  List.map
    (fun name ->
      let w = Bench_util.find_workload name in
      let per_tool =
        List.map
          (fun tool ->
            let rate, _ =
              Bench_util.detection_rate ~tool ~iters:!table2_iters
                ~variant:Variant.Buggy ~scale:w.Registry.default_scale w
            in
            let time =
              Bench_util.seconds_per_run
                ~name:(name ^ "/" ^ Tool.name tool)
                (Bench_util.workload_runner ~max_steps:150_000 ~tool
                   ~variant:Variant.Buggy ~scale:w.Registry.default_scale w)
            in
            (tool, time, rate))
          tools
      in
      (name, per_tool))
    ds_names

let print_table2 data =
  Bench_util.header
    (Printf.sprintf
       "Table 2: data-structure benchmarks over %d runs: time per execution \
        and race detection rate.  Paper averages: c11tester 75.4%%, \
        tsan11rec 51.5%%, tsan11 22.3%%; chase-lev found only by c11tester; \
        ms-queue 100%% everywhere."
       !table2_iters);
  Printf.printf "%-16s | %15s | %15s | %15s\n" "benchmark" "c11tester"
    "tsan11rec" "tsan11";
  Printf.printf "%-16s | %7s %7s | %7s %7s | %7s %7s\n" "" "time" "rate" "time"
    "rate" "time" "rate";
  let sums = Hashtbl.create 3 in
  List.iter
    (fun (name, per_tool) ->
      Printf.printf "%-16s |" name;
      List.iter
        (fun (tool, time, rate) ->
          Hashtbl.replace sums tool
            (rate +. Option.value ~default:0.0 (Hashtbl.find_opt sums tool));
          Printf.printf " %7s %6.1f%% |" (Bench_util.pp_seconds time) rate)
        per_tool;
      print_newline ())
    data;
  Printf.printf "%-16s |" "Average rate";
  List.iter
    (fun tool ->
      let avg =
        Option.value ~default:0.0 (Hashtbl.find_opt sums tool)
        /. float_of_int (List.length data)
      in
      Printf.printf " %7s %6.1f%% |" "" avg)
    tools;
  print_newline ()

let table2 () = print_table2 (table2_data ())

(* ------------------------------------------------------------------ *)
(* Figure 16: performance comparison for the data-structure suite
   (same data as Table 2 rendered as relative series) *)

let fig16 () =
  let data = table2_data () in
  Bench_util.header
    "Figure 16: data-structure benchmarks — execution time relative to \
     c11tester (bars >1 = slower than c11tester) and detection rates";
  Printf.printf "%-16s %12s %12s %12s\n" "benchmark" "c11tester" "tsan11rec"
    "tsan11";
  List.iter
    (fun (name, per_tool) ->
      let base =
        match per_tool with (_, t, _) :: _ -> t | [] -> nan
      in
      Printf.printf "%-16s" name;
      List.iter
        (fun (_, time, rate) ->
          Printf.printf "  %5.2fx/%4.0f%%" (time /. base) rate)
        per_tool;
      print_newline ())
    data

(* ------------------------------------------------------------------ *)
(* Table 3: operation counts per application under c11tester *)

let table3 () =
  Bench_util.header
    "Table 3: shared-memory accesses executed per run under c11tester \
     (paper shape: non-atomic accesses dominate every application; \
     jsbench has the most non-atomics)";
  Printf.printf "%-10s %16s %16s\n" "app" "# normal" "# atomic";
  List.iter
    (fun name ->
      let w = Bench_util.find_workload name in
      let config = Tool.config Tool.C11tester in
      let o =
        Engine.run config
          (w.Registry.run ~variant:Variant.Buggy ~scale:w.Registry.bench_scale)
      in
      Printf.printf "%-10s %16d %16d\n%!" name o.Engine.na_ops
        o.Engine.atomic_ops)
    app_names

(* ------------------------------------------------------------------ *)
(* Table 4: per-benchmark JSBench detail *)

let table4 () =
  Bench_util.header
    "Table 4: individual JSBench sub-benchmarks — time per run and access \
     counts under each tool (paper shape: tsan11 < c11tester < tsan11rec, \
     per-benchmark ranking follows workload weight)";
  Printf.printf "%-22s %10s %10s %10s %12s %10s\n" "benchmark" "tsan11"
    "tsan11rec" "c11tester" "# na" "# atomic";
  let scale = 4 in
  List.iter
    (fun name ->
      let seconds tool =
        let config = Tool.config tool in
        let seeder = Rng.create 7L in
        Bench_util.seconds_per_run ~name:(name ^ "/" ^ Tool.name tool)
          (fun () ->
            let seed = Rng.next_int64 seeder in
            ignore
              (Engine.run { config with Engine.seed }
                 (Jsbench_lite.run_benchmark ~scale name)))
      in
      let t_tsan11 = seconds Tool.Tsan11 in
      let t_tsan11rec = seconds Tool.Tsan11rec in
      let t_c11 = seconds Tool.C11tester in
      let o =
        Engine.run (Tool.config Tool.C11tester)
          (Jsbench_lite.run_benchmark ~scale name)
      in
      Printf.printf "%-22s %10s %10s %10s %12d %10d\n%!" name
        (Bench_util.pp_seconds t_tsan11)
        (Bench_util.pp_seconds t_tsan11rec)
        (Bench_util.pp_seconds t_c11)
        o.Engine.na_ops o.Engine.atomic_ops)
    Jsbench_lite.names

(* ------------------------------------------------------------------ *)
(* Scheduler ablation: detection rates of the pluggable strategies
   (Section 3's "pluggable framework for testing algorithms") *)

let sched () =
  Bench_util.header
    "Scheduler ablation: race detection rate of each scheduling plugin on \
     the data-structure suite (full c11tester memory model everywhere)";
  let strategies =
    [
      ("random+batching", Schedule.Controlled_random { batch_stores = true });
      ("random", Schedule.Controlled_random { batch_stores = false });
      ("pct(100)", Schedule.Priority { change_points = 100 });
      ("bursty(32)", Schedule.Bursty { mean_burst = 32 });
      ("round-robin", Schedule.Round_robin);
    ]
  in
  Printf.printf "%-16s" "benchmark";
  List.iter (fun (n, _) -> Printf.printf " %16s" n) strategies;
  print_newline ();
  let iters = max 100 (!table2_iters / 2) in
  List.iter
    (fun name ->
      let w = Bench_util.find_workload name in
      Printf.printf "%-16s" name;
      List.iter
        (fun (_, sched) ->
          let config =
            { (Tool.config ~max_steps:150_000 Tool.C11tester) with Engine.sched }
          in
          let s =
            Tester.run ~config ~iters
              (w.Registry.run ~variant:Variant.Buggy
                 ~scale:w.Registry.default_scale)
          in
          Printf.printf " %15.1f%%" (Tester.detection_rate s))
        strategies;
      print_newline ())
    ds_names

(* ------------------------------------------------------------------ *)
(* Pruning ablation (Section 7.1; no table in the paper) *)

let prune () =
  Bench_util.header
    "Pruning ablation (Section 7.1): execution-graph footprint on a long \
     producer/consumer run under the three memory policies";
  let rounds = 3000 in
  let program () =
    let x = C11.Atomic.make 0 in
    let producer =
      C11.Thread.spawn (fun () ->
          for i = 1 to rounds do
            C11.Atomic.store ~mo:Memorder.Release x i
          done)
    in
    for _ = 1 to rounds do
      ignore (C11.Atomic.load ~mo:Memorder.Acquire x)
    done;
    C11.Thread.join producer
  in
  Printf.printf "%-28s %10s %10s %10s %10s\n" "policy" "peak" "final" "pruned"
    "time";
  List.iter
    (fun (name, prune) ->
      let config = Tool.config ~prune Tool.C11tester in
      let (o : Engine.outcome), dt =
        Stats.timed (fun () -> Engine.run { config with Engine.seed = 11L } program)
      in
      Printf.printf "%-28s %10d %10d %10d %10s\n%!" name o.Engine.max_graph_size
        o.Engine.final_footprint o.Engine.pruned_stores
        (Bench_util.pp_seconds dt))
    [
      ("no pruning", Pruner.No_prune);
      ("conservative (interval 64)", Pruner.Conservative { interval = 64 });
      ("aggressive (window 256)", Pruner.Aggressive { window = 256; interval = 64 });
    ]
