(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation:

     dune exec bench/main.exe                 # everything (full run)
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --quick      # smaller iteration counts

   Experiment ids: fig4 fig14 sec8_1 table1 fig15 table2 fig16 table3
   table4 prune. *)

let experiments : (string * (unit -> unit)) list =
  [
    ("fig4", Experiments.fig4);
    ("fig14", Fig14.run);
    ("sec8_1", Experiments.sec8_1);
    ("table1", Experiments.table1);
    ("fig15", Experiments.fig15);
    ("table2", Experiments.table2);
    ("fig16", Experiments.fig16);
    ("table3", Experiments.table3);
    ("table4", Experiments.table4);
    ("prune", Experiments.prune);
    ("sched", Experiments.sched);
  ]

let usage () =
  Printf.printf "usage: main.exe [--quick] [experiment ...]\nexperiments:\n";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if quick then begin
    Experiments.table2_iters := 150;
    Experiments.sec81_iters := 300;
    Experiments.table1_runs := 5;
    Bench_util.quota := 0.2
  end;
  if List.mem "--help" args then usage ()
  else begin
    let todo =
      match selected with
      | [] -> experiments
      | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
              usage ();
              failwith ("unknown experiment " ^ n))
          names
    in
    Printf.printf
      "C11Tester reproduction benchmark harness (%d experiments%s)\n"
      (List.length todo)
      (if quick then ", quick mode" else "");
    List.iter (fun (_, f) -> f ()) todo
  end
