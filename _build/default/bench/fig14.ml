(* Figure 14: context-switch costs of the scheduling-control mechanisms.

   The paper compares kernel-thread handoff (pthread condvar, futex,
   spinning, spinning+yield) with fiber switching (swapcontext,
   setjmp/longjmp, each with and without the TLS system call) on x86.

   The OCaml analogues measured here:
   - "condvar handoff"   — two systhreads ping-pong under Mutex/Condition
                           (the pthread-condvar row);
   - "domain spin"       — two domains ping-pong on an Atomic with a busy
                           spin (the spinning row; OCaml domains are kernel
                           threads, and the machine decides core placement);
   - "domain spin+relax" — same with Domain.cpu_relax in the loop (the
                           spinning-with-yield row);
   - "effect fiber"      — two effect-handler fibers resumed alternately
                           from a trampoline (the swapcontext/setjmp row:
                           this is exactly the mechanism the engine uses);
   - "fiber + scheduler" — a fiber switch going through the engine's full
                           scheduling machinery (pick + interpret + resume),
                           i.e. the practical per-visible-op cost.

   Times are per one-way switch. *)

let switches = 2_000

(* --- systhreads + condvar ------------------------------------------- *)

let condvar_handoff () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let turn = ref 0 in
  let rounds = switches / 2 in
  let body me () =
    for _ = 1 to rounds do
      Mutex.lock m;
      while !turn <> me do
        Condition.wait c m
      done;
      turn := 1 - me;
      Condition.signal c;
      Mutex.unlock m
    done
  in
  let t1 = Thread.create (body 0) () in
  let t2 = Thread.create (body 1) () in
  Thread.join t1;
  Thread.join t2

(* --- domains + spinning --------------------------------------------- *)

let domain_spin ~relax () =
  let turn = Atomic.make 0 in
  let rounds = switches / 2 in
  let body me () =
    for _ = 1 to rounds do
      while Atomic.get turn <> me do
        if relax then Domain.cpu_relax ()
      done;
      Atomic.set turn (1 - me)
    done
  in
  let d1 = Domain.spawn (body 0) in
  let d2 = Domain.spawn (body 1) in
  Domain.join d1;
  Domain.join d2

(* --- effect fibers ---------------------------------------------------- *)

let fiber_pingpong () =
  let mk () =
    Fiber.start (fun () ->
        for _ = 1 to switches / 2 do
          ignore (Fiber.perform Op.Yield)
        done)
  in
  let rec drive a b =
    match a with
    | Fiber.Paused (_, k) -> drive b (Fiber.resume k 0)
    | Fiber.Done | Fiber.Raised _ -> (
      match b with
      | Fiber.Paused (_, k) -> drive (Fiber.resume k 0) Fiber.Done
      | _ -> ())
  in
  drive (mk ()) (mk ())

(* --- full engine scheduling step -------------------------------------- *)

let engine_switch () =
  let config = Tool.config Tool.C11tester in
  ignore
    (Engine.run config (fun () ->
         let body () =
           for _ = 1 to switches / 2 do
             C11.Thread.yield ()
           done
         in
         let t1 = C11.Thread.spawn body in
         let t2 = C11.Thread.spawn body in
         C11.Thread.join t1;
         C11.Thread.join t2))

let run () =
  Bench_util.header
    "Figure 14: context switch costs (per one-way switch; paper: condvar \
     1.95us, spin 0.07us/all-core, swapcontext 0.34us, setjmp 0.01us)";
  let per_switch total = total /. float_of_int switches in
  let rows =
    [
      ("pthread condvar handoff", condvar_handoff);
      ("domain spin", domain_spin ~relax:false);
      ("domain spin + cpu_relax", domain_spin ~relax:true);
      ("effect fiber switch", fiber_pingpong);
      ("fiber + full scheduler step", engine_switch);
    ]
  in
  Printf.printf "%-30s %12s\n" "mechanism" "per switch";
  List.iter
    (fun (name, f) ->
      let t = Bench_util.seconds_per_run ~name f in
      Printf.printf "%-30s %12s\n%!" name (Bench_util.pp_seconds (per_switch t)))
    rows
