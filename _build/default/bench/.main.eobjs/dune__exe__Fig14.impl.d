bench/fig14.ml: Atomic Bench_util C11 Condition Domain Engine Fiber List Mutex Op Printf Thread Tool
