bench/main.mli:
