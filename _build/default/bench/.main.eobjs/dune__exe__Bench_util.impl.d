bench/bench_util.ml: Analyze Bechamel Benchmark Engine Float Hashtbl Measure Printf Registry Rng Staged String Test Tester Time Tool Toolkit
