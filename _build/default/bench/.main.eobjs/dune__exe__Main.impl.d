bench/main.ml: Array Bench_util Experiments Fig14 List Printf String Sys
