bench/experiments.ml: Bench_util C11 Engine Hashtbl Jsbench_lite List Memorder Option Printf Pruner Registry Rng Schedule Stats Tester Tool Variant
