(* c11test — command-line front end.

   Subcommands:
     run    — repeatedly test a workload under a tool and report races,
              assertion failures and detection rates
     litmus — explore a litmus test's outcome histogram
     list   — list available workloads and litmus tests *)

open Cmdliner

let tool_conv =
  let parse s =
    match Tool.of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown tool %S" s))
  in
  Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Tool.name t))

let tool_arg =
  let doc = "Tool to test under: c11tester, tsan11rec or tsan11." in
  Arg.(value & opt tool_conv Tool.C11tester & info [ "t"; "tool" ] ~doc)

let iters_arg =
  let doc = "Number of executions." in
  Arg.(value & opt int 100 & info [ "n"; "iters" ] ~doc)

let seed_arg =
  let doc = "Base random seed (executions derive their own from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let scale_arg =
  let doc = "Workload scale override (operations per thread)." in
  Arg.(value & opt (some int) None & info [ "scale" ] ~doc)

let buggy_arg =
  let doc = "Run the seeded-bug variant (default) or the correct one." in
  Arg.(value & opt bool true & info [ "buggy" ] ~doc)

let prune_arg =
  let doc =
    "Execution-graph pruning: none, conservative or aggressive (Section 7.1)."
  in
  Arg.(value & opt string "none" & info [ "prune" ] ~doc)

let verbose_arg =
  let doc = "Print each distinct race report." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Record the last N memory actions of the first buggy execution and \
     print them."
  in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc)

let prune_of_string = function
  | "none" -> Ok Pruner.No_prune
  | "conservative" -> Ok (Pruner.Conservative { interval = 64 })
  | "aggressive" -> Ok (Pruner.Aggressive { window = 4096; interval = 64 })
  | s -> Error (Printf.sprintf "unknown pruning policy %S" s)

let run_cmd =
  let workload_arg =
    let doc = "Workload name (see `c11test list')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let run workload tool iters seed scale buggy prune verbose trace_depth =
    match Registry.find workload with
    | None ->
      Printf.eprintf "unknown workload %S; try `c11test list'\n" workload;
      1
    | Some w -> (
      match prune_of_string prune with
      | Error e ->
        prerr_endline e;
        1
      | Ok prune ->
        let config =
          {
            (Tool.config ~prune tool) with
            Engine.seed = Int64.of_int seed;
            trace_depth;
          }
        in
        let scale = Option.value ~default:w.Registry.default_scale scale in
        let variant = if buggy then Variant.Buggy else Variant.Correct in
        Printf.printf "%s (%s variant) under %s, %d executions, scale %d\n"
          w.Registry.name (Variant.to_string variant) (Tool.name tool) iters
          scale;
        let summary =
          Tester.run ~config ~iters (w.Registry.run ~variant ~scale)
        in
        Format.printf "%a@." Tester.pp_summary summary;
        if verbose then
          List.iter
            (fun r -> Format.printf "  %a@." Race.pp_report r)
            summary.Tester.distinct_races;
        if trace_depth > 0 then begin
          (* re-run single executions until one is buggy, then dump its
             trace *)
          let seeder = Rng.create (Int64.of_int (seed + 7)) in
          let rec hunt n =
            if n > 0 then begin
              let seed = Rng.next_int64 seeder in
              let o =
                Engine.run { config with Engine.seed }
                  (w.Registry.run ~variant ~scale)
              in
              if Engine.buggy o then begin
                Printf.printf "trace of a buggy execution (last %d actions):\n"
                  trace_depth;
                List.iter (fun l -> Printf.printf "  %s\n" l) o.Engine.trace
              end
              else hunt (n - 1)
            end
          in
          hunt iters
        end;
        0)
  in
  let term =
    Term.(
      const run $ workload_arg $ tool_arg $ iters_arg $ seed_arg $ scale_arg
      $ buggy_arg $ prune_arg $ verbose_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Test a workload repeatedly and report bugs") term

let litmus_cmd =
  let name_arg =
    let doc = "Litmus test name (see `c11test list')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LITMUS" ~doc)
  in
  let run name tool iters seed =
    match Litmus.find name with
    | None ->
      Printf.eprintf "unknown litmus test %S; try `c11test list'\n" name;
      1
    | Some t ->
      let config =
        { (Tool.config tool) with Engine.seed = Int64.of_int seed }
      in
      Printf.printf "%s under %s, %d executions\n%s\n\n" t.Litmus.name
        (Tool.name tool) iters t.Litmus.description;
      let hist = Litmus.explore ~config ~iters t in
      List.iter
        (fun (o, n) ->
          Format.printf "%6d  %a%s%s@." n (Litmus.pp_outcome t) o
            (if t.Litmus.weak o then "   <- weak outcome" else "")
            (if t.Litmus.allowed o then "" else "   ** FORBIDDEN **"))
        hist;
      0
  in
  let term = Term.(const run $ name_arg $ tool_arg $ iters_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Explore the outcome histogram of a litmus test")
    term

let list_cmd =
  let run () =
    print_endline "Workloads:";
    List.iter
      (fun (w : Registry.t) ->
        Printf.printf "  %-18s %s\n" w.Registry.name w.Registry.description)
      Registry.all;
    print_endline "\nLitmus tests:";
    List.iter
      (fun (t : Litmus.t) ->
        Printf.printf "  %-24s %s\n" t.Litmus.name t.Litmus.description)
      Litmus.catalog;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List workloads and litmus tests")
    Term.(const run $ const ())

let () =
  let doc = "C11Tester reproduction: a race detector for C/C++ atomics" in
  let info = Cmd.info "c11test" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ run_cmd; litmus_cmd; list_cmd ]))
