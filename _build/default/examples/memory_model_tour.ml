(* A tour of the C/C++ memory-model fragment through the litmus catalog.

     dune exec examples/memory_model_tour.exe

   For each litmus test in the catalog, explore its outcomes under
   C11Tester and show whether the "interesting" weak outcome appeared —
   a compact, executable summary of Section 2 of the paper. *)

let () =
  let config = Tool.config Tool.C11tester in
  Printf.printf "%-24s %8s %-10s %s\n" "litmus" "outcomes" "weak seen"
    "description";
  print_endline (String.make 100 '-');
  List.iter
    (fun (t : Litmus.t) ->
      let hist = Litmus.explore ~config ~iters:2000 t in
      let weak = Litmus.weak_observed hist t in
      let marker =
        match (weak, t.Litmus.weak_allowed) with
        | true, true -> "yes"
        | false, false -> "no (good)"
        | true, false -> "BUG!"
        | false, true -> "missed?"
      in
      Printf.printf "%-24s %8d %-10s %s\n" t.Litmus.name (List.length hist)
        marker t.Litmus.description)
    Litmus.catalog;
  print_newline ();
  (* zoom in on one: the C++20 release-sequence change *)
  (match Litmus.find "release_sequence_c20" with
  | None -> ()
  | Some t ->
    Printf.printf "Zoom: %s\n" t.Litmus.description;
    let hist = Litmus.explore ~config ~iters:4000 t in
    List.iter
      (fun (o, n) ->
        Format.printf "  %6d  %a%s@." n (Litmus.pp_outcome t) o
          (if t.Litmus.weak o then "   <- only under C++20 rules" else ""))
      hist)
