examples/quickstart.mli:
