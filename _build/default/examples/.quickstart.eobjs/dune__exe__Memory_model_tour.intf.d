examples/memory_model_tour.mli:
