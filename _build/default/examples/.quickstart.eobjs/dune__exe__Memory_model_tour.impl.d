examples/memory_model_tour.ml: Format List Litmus Printf String Tool
