examples/queue_testing.mli:
