examples/seqlock_hunt.ml: List Printf Seqlock Tester Tool Variant
