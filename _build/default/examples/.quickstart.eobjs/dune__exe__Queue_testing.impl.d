examples/queue_testing.ml: Array C11 Format List Memorder Printf Race Tester Tool
