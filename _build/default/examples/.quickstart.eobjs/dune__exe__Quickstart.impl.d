examples/quickstart.ml: C11 Format List Memorder Printf Race Tester Tool
