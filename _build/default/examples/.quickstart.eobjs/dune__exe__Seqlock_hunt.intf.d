examples/seqlock_hunt.mli:
