(* Quickstart: write a small concurrent program against the C11 DSL, run it
   many times under C11Tester, and look at what the tool finds.

     dune exec examples/quickstart.exe

   The program is the message-passing example of Figure 2 of the paper,
   plus a deliberately unsynchronised flag that creates a data race. *)

open Memorder

(* Registers for observing outcomes: plain OCaml refs are invisible to the
   memory model (the simulator is sequential), so they are safe to use for
   collecting results. *)
let r1 = ref 0
let r2 = ref 0

let message_passing () =
  (* shared locations must be allocated inside the test body so every
     execution starts fresh *)
  let x = C11.Atomic.make ~name:"x" 0 in
  let y = C11.Atomic.make ~name:"y" 0 in
  let sender =
    C11.Thread.spawn (fun () ->
        C11.Atomic.store ~mo:Relaxed x 1;
        (* relaxed: does NOT publish x! *)
        C11.Atomic.store ~mo:Relaxed y 1)
  in
  let receiver =
    C11.Thread.spawn (fun () ->
        r1 := C11.Atomic.load ~mo:Relaxed y;
        r2 := C11.Atomic.load ~mo:Relaxed x)
  in
  C11.Thread.join sender;
  C11.Thread.join receiver;
  (!r1, !r2)

let racy_program () =
  let data = C11.Nonatomic.make ~name:"data" 0 in
  let flag = C11.Atomic.make ~name:"flag" 0 in
  let writer =
    C11.Thread.spawn (fun () ->
        C11.Nonatomic.write data 42;
        (* bug: the flag is published with a relaxed store, so the reader
           never synchronises with the data write *)
        C11.Atomic.store ~mo:Relaxed flag 1)
  in
  let reader =
    C11.Thread.spawn (fun () ->
        if C11.Atomic.load ~mo:Acquire flag = 1 then
          ignore (C11.Nonatomic.read data))
  in
  C11.Thread.join writer;
  C11.Thread.join reader

let () =
  let config = Tool.config Tool.C11tester in

  print_endline "== 1. Exploring the outcomes of relaxed message passing ==";
  let _, hist = Tester.run_collect ~config ~iters:2000 message_passing in
  List.iter
    (fun ((a, b), n) ->
      Printf.printf "  r1=%d r2=%d : %4d executions%s\n" a b n
        (if (a, b) = (1, 0) then "   <- impossible under SC!" else ""))
    (List.sort compare hist);
  print_endline
    "  The r1=1,r2=0 outcome is the relaxed-memory behaviour discussed in \
     Section 2.1 of the paper.";

  print_endline "\n== 2. Detecting a data race ==";
  let summary = Tester.run ~config ~iters:500 racy_program in
  Printf.printf "  buggy executions: %d/%d (%.1f%%)\n"
    summary.Tester.buggy_executions summary.Tester.executions
    (Tester.detection_rate summary);
  List.iter
    (fun r -> Format.printf "  %a@." Race.pp_report r)
    summary.Tester.distinct_races;

  print_endline "\n== 3. The same program under the restricted tsan11 model ==";
  let config = Tool.config Tool.Tsan11rec in
  let summary = Tester.run ~config ~iters:500 racy_program in
  Printf.printf
    "  tsan11rec also sees this one (simple missing-release race): %.1f%%\n"
    (Tester.detection_rate summary)
