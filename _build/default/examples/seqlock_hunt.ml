(* Hunting the Section 8.1 seqlock bug with all three tools.

     dune exec examples/seqlock_hunt.exe

   The seqlock's writer bumps the sequence counter with a relaxed store.
   The resulting torn read requires an execution whose modification order
   is inconsistent with execution order — C11Tester's constraint-based
   modification order can produce it; tools that require hb∪sc∪rf∪mo to
   be acyclic cannot. *)

let () =
  let iters = 1000 in
  Printf.printf
    "Testing the buggy seqlock %d times under each tool (paper: 28.8%% / 0%% \
     / 0%%)\n\n"
    iters;
  List.iter
    (fun tool ->
      let config = Tool.config tool in
      let summary =
        Tester.run ~config ~iters
          (Seqlock.run ~variant:Variant.Buggy ~scale:4)
      in
      Printf.printf "  %-10s detection rate: %5.1f%%\n" (Tool.name tool)
        (Tester.detection_rate summary))
    [ Tool.C11tester; Tool.Tsan11rec; Tool.Tsan11 ];
  Printf.printf "\nAnd the fixed seqlock under c11tester (should be clean):\n";
  let config = Tool.config Tool.C11tester in
  let summary =
    Tester.run ~config ~iters (Seqlock.run ~variant:Variant.Correct ~scale:4)
  in
  Printf.printf "  %-10s detection rate: %5.1f%%\n" "c11tester"
    (Tester.detection_rate summary)
