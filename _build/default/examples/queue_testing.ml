(* Testing your own concurrent data structure with the library.

     dune exec examples/queue_testing.exe

   This is the workflow a downstream user follows: implement a lock-free
   structure against the C11 DSL, write a test driver with assertions, and
   let the tester explore schedules and weak behaviours.  The queue below
   is a single-producer single-consumer ring buffer with a deliberately
   subtle mistake you can toggle. *)

open Memorder

type spsc = {
  cells : C11.naloc array;
  head : C11.atomic;  (* consumer cursor *)
  tail : C11.atomic;  (* producer cursor *)
}

let create n =
  {
    cells = Array.init n (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "cell%d" i) 0);
    head = C11.Atomic.make ~name:"head" 0;
    tail = C11.Atomic.make ~name:"tail" 0;
  }

let capacity q = Array.length q.cells

(* [push] publishes the element with a release store on [tail]... unless
   [sloppy] is set, in which case it uses relaxed and the consumer can read
   the cell before the payload write is visible. *)
let push ~sloppy q v =
  let rec wait () =
    let t = C11.Atomic.load ~mo:Relaxed q.tail in
    let h = C11.Atomic.load ~mo:Acquire q.head in
    if t - h >= capacity q then begin
      C11.Thread.yield ();
      wait ()
    end
    else t
  in
  let t = wait () in
  C11.Nonatomic.write q.cells.(t mod capacity q) v;
  C11.Atomic.store ~mo:(if sloppy then Relaxed else Release) q.tail (t + 1)

let pop q =
  let rec wait () =
    let h = C11.Atomic.load ~mo:Relaxed q.head in
    let t = C11.Atomic.load ~mo:Acquire q.tail in
    if t <= h then begin
      C11.Thread.yield ();
      wait ()
    end
    else h
  in
  let h = wait () in
  let v = C11.Nonatomic.read q.cells.(h mod capacity q) in
  C11.Atomic.store ~mo:Release q.head (h + 1);
  v

let driver ~sloppy () =
  let q = create 4 in
  let n = 12 in
  let producer =
    C11.Thread.spawn (fun () ->
        for v = 1 to n do
          push ~sloppy q (v * v)
        done)
  in
  let total = ref 0 in
  let consumer =
    C11.Thread.spawn (fun () ->
        for _ = 1 to n do
          total := !total + pop q
        done)
  in
  C11.Thread.join producer;
  C11.Thread.join consumer;
  (* every pushed element must arrive intact, in order *)
  let expected = List.fold_left ( + ) 0 (List.init n (fun i -> (i + 1) * (i + 1))) in
  C11.assert_that (!total = expected) "spsc: checksum mismatch (torn element)"

let () =
  let config = Tool.config Tool.C11tester in
  print_endline "== correct SPSC queue, 400 schedules ==";
  let s = Tester.run ~config ~iters:400 (driver ~sloppy:false) in
  Format.printf "%a@." Tester.pp_summary s;
  print_endline "\n== same queue with a relaxed tail publication ==";
  let s = Tester.run ~config ~iters:400 (driver ~sloppy:true) in
  Format.printf "%a@." Tester.pp_summary s;
  List.iter
    (fun r -> Format.printf "  %a@." Race.pp_report r)
    s.Tester.distinct_races
