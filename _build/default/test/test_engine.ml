(* The Explore engine: thread lifecycle, synchronisation primitives,
   deadlock detection, step limits, determinism and operation counters. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(seed = 1L) ?(max_steps = 100_000) () =
  { (Tool.config ~max_steps Tool.C11tester) with Engine.seed = seed }

let run ?seed ?max_steps f = Engine.run (config ?seed ?max_steps ()) f

let test_empty_program () =
  let o = run (fun () -> ()) in
  check "no bugs" false (Engine.buggy o);
  check "no deadlock" false o.Engine.deadlock;
  check_int "one thread" 1 o.Engine.threads_created

let test_spawn_join () =
  let o =
    run (fun () ->
        let r = ref 0 in
        let t = C11.Thread.spawn (fun () -> r := 7) in
        C11.Thread.join t;
        C11.assert_that (!r = 7) "join must order the child's writes")
  in
  check "no assertion failures" true (o.Engine.assertion_failures = []);
  check_int "two threads" 2 o.Engine.threads_created

let test_join_gives_hb () =
  (* the child's na write must not race with the parent's post-join read *)
  let o =
    run (fun () ->
        let x = C11.Nonatomic.make 0 in
        let t = C11.Thread.spawn (fun () -> C11.Nonatomic.write x 5) in
        C11.Thread.join t;
        ignore (C11.Nonatomic.read x))
  in
  check "no race through join" true (o.Engine.races = [])

let test_spawn_gives_hb () =
  let o =
    run (fun () ->
        let x = C11.Nonatomic.make 0 in
        C11.Nonatomic.write x 1;
        let t = C11.Thread.spawn (fun () -> ignore (C11.Nonatomic.read x)) in
        C11.Thread.join t)
  in
  check "no race through spawn" true (o.Engine.races = [])

let test_unjoined_race () =
  (* without join, parent read races with child write in some schedules *)
  let racy = ref 0 in
  for seed = 1 to 50 do
    let o =
      run ~seed:(Int64.of_int seed) (fun () ->
          let x = C11.Nonatomic.make 0 in
          let t = C11.Thread.spawn (fun () -> C11.Nonatomic.write x 5) in
          ignore (C11.Nonatomic.read x);
          C11.Thread.join t)
    in
    if o.Engine.races <> [] then incr racy
  done;
  check "race found in some executions" true (!racy > 0)

let test_mutex_mutual_exclusion () =
  for seed = 1 to 30 do
    let o =
      run ~seed:(Int64.of_int seed) (fun () ->
          let m = C11.Mutex.create () in
          let x = C11.Nonatomic.make 0 in
          let worker () =
            for _ = 1 to 3 do
              C11.Mutex.lock m;
              C11.Nonatomic.write x (C11.Nonatomic.read x + 1);
              C11.Mutex.unlock m
            done
          in
          let a = C11.Thread.spawn worker and b = C11.Thread.spawn worker in
          C11.Thread.join a;
          C11.Thread.join b;
          C11.Mutex.lock m;
          C11.assert_that (C11.Nonatomic.read x = 6) "lost update under mutex";
          C11.Mutex.unlock m)
    in
    if Engine.buggy o then
      Alcotest.failf "seed %d: mutex failed to exclude (%d races, %d asserts)"
        seed
        (List.length o.Engine.races)
        (List.length o.Engine.assertion_failures)
  done

let test_trylock () =
  let o =
    run (fun () ->
        let m = C11.Mutex.create () in
        C11.assert_that (C11.Mutex.try_lock m) "free mutex must be acquirable";
        let t =
          C11.Thread.spawn (fun () ->
              C11.assert_that
                (not (C11.Mutex.try_lock m))
                "held mutex must fail try_lock")
        in
        C11.Thread.join t;
        C11.Mutex.unlock m)
  in
  check "trylock behaves" true (o.Engine.assertion_failures = [])

let test_unlock_not_owner () =
  let o =
    run (fun () ->
        let m = C11.Mutex.create () in
        C11.Mutex.unlock m)
  in
  check "unlock without lock reported" true (o.Engine.assertion_failures <> [])

let test_deadlock_detection () =
  let deadlocks = ref 0 in
  for seed = 1 to 40 do
    let o =
      run ~seed:(Int64.of_int seed) (fun () ->
          let m1 = C11.Mutex.create () and m2 = C11.Mutex.create () in
          let a =
            C11.Thread.spawn (fun () ->
                C11.Mutex.lock m1;
                C11.Thread.yield ();
                C11.Mutex.lock m2;
                C11.Mutex.unlock m2;
                C11.Mutex.unlock m1)
          in
          let b =
            C11.Thread.spawn (fun () ->
                C11.Mutex.lock m2;
                C11.Thread.yield ();
                C11.Mutex.lock m1;
                C11.Mutex.unlock m1;
                C11.Mutex.unlock m2)
          in
          C11.Thread.join a;
          C11.Thread.join b)
    in
    if o.Engine.deadlock then incr deadlocks
  done;
  check "ABBA deadlock detected in some schedules" true (!deadlocks > 0)

let test_condvar_handoff () =
  for seed = 1 to 30 do
    let o =
      run ~seed:(Int64.of_int seed) (fun () ->
          let m = C11.Mutex.create () in
          let cv = C11.Condvar.create () in
          let ready = C11.Nonatomic.make 0 in
          let data = C11.Nonatomic.make 0 in
          let consumer =
            C11.Thread.spawn (fun () ->
                C11.Mutex.lock m;
                let rec wait () =
                  if C11.Nonatomic.read ready = 0 then begin
                    C11.Condvar.wait cv m;
                    wait ()
                  end
                in
                wait ();
                C11.assert_that (C11.Nonatomic.read data = 99) "data visible";
                C11.Mutex.unlock m)
          in
          let producer =
            C11.Thread.spawn (fun () ->
                C11.Mutex.lock m;
                C11.Nonatomic.write data 99;
                C11.Nonatomic.write ready 1;
                C11.Condvar.signal cv;
                C11.Mutex.unlock m)
          in
          C11.Thread.join consumer;
          C11.Thread.join producer)
    in
    if Engine.buggy o || o.Engine.deadlock then
      Alcotest.failf "seed %d: condvar handoff failed" seed
  done

let test_condvar_broadcast () =
  let o =
    run (fun () ->
        let m = C11.Mutex.create () in
        let cv = C11.Condvar.create () in
        let go = C11.Nonatomic.make 0 in
        let woken = C11.Nonatomic.make 0 in
        let waiter () =
          C11.Mutex.lock m;
          let rec wait () =
            if C11.Nonatomic.read go = 0 then begin
              C11.Condvar.wait cv m;
              wait ()
            end
          in
          wait ();
          C11.Nonatomic.write woken (C11.Nonatomic.read woken + 1);
          C11.Mutex.unlock m
        in
        let ws = List.init 3 (fun _ -> C11.Thread.spawn waiter) in
        C11.Mutex.lock m;
        C11.Nonatomic.write go 1;
        C11.Condvar.broadcast cv;
        C11.Mutex.unlock m;
        List.iter C11.Thread.join ws;
        C11.assert_that (C11.Nonatomic.read woken = 3) "all waiters woken")
  in
  check "broadcast wakes all" true (o.Engine.assertion_failures = [])

let test_step_limit () =
  let o =
    run ~max_steps:500 (fun () ->
        let x = C11.Atomic.make 0 in
        let rec spin () =
          if C11.Atomic.load ~mo:Memorder.Relaxed x = 0 then spin ()
        in
        spin ())
  in
  check "step limit hit" true o.Engine.step_limit_hit

let test_assertion_aborts () =
  let after = ref false in
  let o =
    run (fun () ->
        C11.assert_that false "deliberate";
        after := true)
  in
  check "assertion recorded" true (o.Engine.assertion_failures = [ "deliberate" ]);
  check "execution aborted" false !after

let test_uncaught_exception () =
  let o = run (fun () -> failwith "crash") in
  check "exception recorded" true
    (match o.Engine.uncaught_exceptions with [ _ ] -> true | _ -> false)

let test_determinism () =
  let results = ref [] in
  let program () =
    let x = C11.Atomic.make 0 in
    let t =
      C11.Thread.spawn (fun () -> C11.Atomic.store ~mo:Memorder.Relaxed x 1)
    in
    let v = C11.Atomic.load ~mo:Memorder.Relaxed x in
    C11.Thread.join t;
    results := v :: !results
  in
  let o1 = run ~seed:99L program in
  let snapshot = !results in
  let o2 = run ~seed:99L program in
  check "same observable result" true
    (List.hd !results = List.hd snapshot);
  check "same step count" true (o1.Engine.steps = o2.Engine.steps);
  check_int "same atomic op count" o1.Engine.atomic_ops o2.Engine.atomic_ops

let test_op_counters () =
  let o =
    run (fun () ->
        let x = C11.Atomic.make 0 in
        let y = C11.Nonatomic.make 0 in
        C11.Atomic.store ~mo:Memorder.Relaxed x 1;
        ignore (C11.Atomic.load ~mo:Memorder.Acquire x);
        C11.Nonatomic.write y 1;
        ignore (C11.Nonatomic.read y))
  in
  (* 2 atomic accesses plus the thread-finish synchronisation event;
     allocations write non-atomically (atomic_init), so na ops = 2 inits
     + 2 accesses *)
  check_int "atomic ops" 3 o.Engine.atomic_ops;
  check_int "na ops" 4 o.Engine.na_ops

let test_volatile_modes () =
  let prog () =
    let x = C11.Atomic.make 0 in
    let t = C11.Thread.spawn (fun () -> C11.Volatile.store x 1) in
    ignore (C11.Volatile.load x);
    C11.Thread.join t
  in
  (* c11tester: volatiles are atomics, no race, both volatile ops atomic *)
  let o = Engine.run (Tool.config Tool.C11tester) prog in
  check "no volatile race under c11tester" true (o.Engine.races = []);
  (* tsan11rec: volatiles are plain accesses and race in some schedules *)
  let racy = ref 0 in
  for seed = 1 to 40 do
    let cfg = { (Tool.config Tool.Tsan11rec) with Engine.seed = Int64.of_int seed } in
    let o = Engine.run cfg prog in
    if o.Engine.races <> [] then incr racy
  done;
  check "volatile races under tsan11rec" true (!racy > 0)

let test_trace_recording () =
  let config = { (config ()) with Engine.trace_depth = 16 } in
  let o =
    Engine.run config (fun () ->
        let x = C11.Atomic.make 0 in
        C11.Atomic.store ~mo:Memorder.Release x 7;
        ignore (C11.Atomic.load ~mo:Memorder.Acquire x))
  in
  check "trace captured" true (List.length o.Engine.trace >= 2);
  let contains_store line =
    let rec go i =
      i + 5 <= String.length line
      && (String.sub line i 5 = "store" || go (i + 1))
    in
    go 0
  in
  check "trace mentions the store" true
    (List.exists contains_store o.Engine.trace)

let test_trace_off_by_default () =
  let o = run (fun () -> ignore (C11.Atomic.make 1)) in
  check "no trace unless requested" true (o.Engine.trace = [])

let suite =
  [
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "spawn/join" `Quick test_spawn_join;
    Alcotest.test_case "join gives hb" `Quick test_join_gives_hb;
    Alcotest.test_case "spawn gives hb" `Quick test_spawn_gives_hb;
    Alcotest.test_case "unjoined child races" `Quick test_unjoined_race;
    Alcotest.test_case "mutex mutual exclusion" `Quick test_mutex_mutual_exclusion;
    Alcotest.test_case "trylock" `Quick test_trylock;
    Alcotest.test_case "unlock by non-owner" `Quick test_unlock_not_owner;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "condvar handoff" `Quick test_condvar_handoff;
    Alcotest.test_case "condvar broadcast" `Quick test_condvar_broadcast;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "assertion aborts" `Quick test_assertion_aborts;
    Alcotest.test_case "uncaught exception" `Quick test_uncaught_exception;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "op counters" `Quick test_op_counters;
    Alcotest.test_case "volatile modes" `Quick test_volatile_modes;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
  ]
