(* Litmus tests: the whole catalog must (a) never produce an outcome the
   memory-model fragment forbids, (b) find every weak outcome the fragment
   allows, and (c) under the restricted Total_mo baseline, produce a
   subset of the full fragment's outcomes, missing exactly the
   modification-order-inversion behaviours. *)

let check = Alcotest.(check bool)

let iters = 1500
let c11 = Tool.config Tool.C11tester
let t11rec = Tool.config Tool.Tsan11rec

let outcome_set hist = List.map fst hist

let test_no_violations (t : Litmus.t) () =
  let bad = Litmus.violations ~config:c11 ~iters t in
  if bad <> [] then
    Alcotest.failf "%s produced forbidden outcomes: %s" t.Litmus.name
      (String.concat ", "
         (List.map
            (fun (o, n) ->
              Format.asprintf "%a x%d" (Litmus.pp_outcome t) o n)
            bad))

let test_weak_coverage (t : Litmus.t) () =
  let hist = Litmus.explore ~config:c11 ~iters t in
  check
    (Printf.sprintf "%s: weak outcome observed iff allowed" t.Litmus.name)
    t.Litmus.weak_allowed
    (Litmus.weak_observed hist t)

let test_baseline_subset (t : Litmus.t) () =
  (* The tsan11rec fragment is strictly smaller: everything it produces is
     allowed by the full fragment.  (Its additional restrictions are
     checked separately below.) *)
  let hist = Litmus.explore ~config:t11rec ~iters:800 t in
  check
    (Printf.sprintf "%s: baseline outcomes within fragment" t.Litmus.name)
    true
    (List.for_all t.Litmus.allowed (outcome_set hist))

(* Fragment-difference checks (Section 1.1 of the paper). *)

let test_baseline_misses_mo_inversion () =
  match Litmus.find "2+2w_relaxed" with
  | None -> Alcotest.fail "missing litmus"
  | Some t ->
    let full = Litmus.explore ~config:c11 ~iters t in
    let restricted = Litmus.explore ~config:t11rec ~iters t in
    check "full fragment shows x=1,y=1" true (Litmus.weak_observed full t);
    check "restricted fragment cannot" false (Litmus.weak_observed restricted t)

let test_baseline_old_release_sequences () =
  (* Under the C++11 rules the tsan-lineage tools implement, a same-thread
     relaxed store continues the release sequence, so the weak outcome of
     release_sequence_c20 is invisible to them. *)
  match Litmus.find "release_sequence_c20" with
  | None -> Alcotest.fail "missing litmus"
  | Some t ->
    let full = Litmus.explore ~config:c11 ~iters t in
    let restricted = Litmus.explore ~config:t11rec ~iters t in
    check "C++20 rules show the weak outcome" true (Litmus.weak_observed full t);
    check "C++11 baseline hides it" false (Litmus.weak_observed restricted t)

let test_baseline_still_relaxed () =
  (* the baselines still model relaxed loads reading stale stores: message
     passing with relaxed orders shows r1=1,r2=0 there too *)
  match Litmus.find "mp_relaxed" with
  | None -> Alcotest.fail "missing litmus"
  | Some t ->
    let restricted = Litmus.explore ~config:t11rec ~iters t in
    check "baseline shows relaxed MP weak outcome" true
      (Litmus.weak_observed restricted t)

let test_registers_match () =
  List.iter
    (fun (t : Litmus.t) ->
      let o = List.hd (outcome_set (Litmus.explore ~config:c11 ~iters:1 t)) in
      check
        (Printf.sprintf "%s: register arity" t.Litmus.name)
        true
        (List.length o = List.length t.Litmus.registers))
    Litmus.catalog

let test_find () =
  check "find existing" true (Litmus.find "mp_relaxed" <> None);
  check "find missing" true (Litmus.find "nope" = None)

let suite =
  List.concat_map
    (fun (t : Litmus.t) ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s: no forbidden outcomes" t.Litmus.name)
          `Slow (test_no_violations t);
        Alcotest.test_case
          (Printf.sprintf "%s: weak coverage" t.Litmus.name)
          `Slow (test_weak_coverage t);
        Alcotest.test_case
          (Printf.sprintf "%s: baseline subset" t.Litmus.name)
          `Slow (test_baseline_subset t);
      ])
    Litmus.catalog
  @ [
      Alcotest.test_case "baseline misses mo inversion" `Slow
        test_baseline_misses_mo_inversion;
      Alcotest.test_case "baseline uses C++11 release sequences" `Slow
        test_baseline_old_release_sequences;
      Alcotest.test_case "baseline still relaxed" `Slow
        test_baseline_still_relaxed;
      Alcotest.test_case "register arity" `Quick test_registers_match;
      Alcotest.test_case "find" `Quick test_find;
    ]
