(* The effect-handler fiber runtime, driven directly without the engine. *)

let check = Alcotest.(check bool)

let test_runs_to_completion () =
  match Fiber.start (fun () -> ()) with
  | Fiber.Done -> ()
  | _ -> Alcotest.fail "expected Done"

let test_pause_and_resume () =
  let result = ref (-1) in
  let step =
    Fiber.start (fun () -> result := Fiber.perform Op.Yield + 1)
  in
  match step with
  | Fiber.Paused (Op.Yield, k) -> (
    match Fiber.resume k 41 with
    | Fiber.Done -> check "value delivered" true (!result = 42)
    | _ -> Alcotest.fail "expected Done after resume")
  | _ -> Alcotest.fail "expected Paused at Yield"

let test_sequence_of_ops () =
  let trace = ref [] in
  let step =
    Fiber.start (fun () ->
        trace := Fiber.perform (Op.Na_read { loc = 3 }) :: !trace;
        trace := Fiber.perform Op.Mutex_create :: !trace)
  in
  let rec drive step n =
    match step with
    | Fiber.Paused (_, k) -> drive (Fiber.resume k n) (n + 1)
    | Fiber.Done -> ()
    | Fiber.Raised e -> raise e
  in
  drive step 10;
  check "both results observed in order" true (!trace = [ 11; 10 ])

let test_exception_propagates () =
  match Fiber.start (fun () -> failwith "boom") with
  | Fiber.Raised (Failure msg) -> check "message" true (msg = "boom")
  | _ -> Alcotest.fail "expected Raised"

let test_exception_after_resume () =
  let step = Fiber.start (fun () -> ignore (Fiber.perform Op.Yield); failwith "later") in
  match step with
  | Fiber.Paused (_, k) -> (
    match Fiber.resume k 0 with
    | Fiber.Raised (Failure msg) -> check "message" true (msg = "later")
    | _ -> Alcotest.fail "expected Raised after resume")
  | _ -> Alcotest.fail "expected Paused"

let test_cancel_unwinds () =
  let cleaned = ref false in
  let step =
    Fiber.start (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> ignore (Fiber.perform Op.Yield)))
  in
  (match step with
  | Fiber.Paused (_, k) -> Fiber.cancel k
  | _ -> Alcotest.fail "expected Paused");
  check "finaliser ran on cancel" true !cleaned

let test_op_classification () =
  check "na ops are inline" true (Op.is_inline (Op.Na_read { loc = 0 }));
  check "alloc is inline" true
    (Op.is_inline (Op.Alloc { atomic = true; name = None; init = 0 }));
  check "atomic load is a scheduling point" false
    (Op.is_inline (Op.Load { loc = 0; mo = Memorder.Relaxed; volatile = false }));
  check "lock is a scheduling point" false (Op.is_inline (Op.Mutex_lock 0));
  check "relaxed store batches" true
    (Op.is_rlx_or_rel_store
       (Op.Store { loc = 0; mo = Memorder.Relaxed; value = 0; volatile = false }));
  check "release store batches" true
    (Op.is_rlx_or_rel_store
       (Op.Store { loc = 0; mo = Memorder.Release; value = 0; volatile = false }));
  check "seq_cst store does not batch" false
    (Op.is_rlx_or_rel_store
       (Op.Store { loc = 0; mo = Memorder.Seq_cst; value = 0; volatile = false }));
  check "loads do not batch" false
    (Op.is_rlx_or_rel_store
       (Op.Load { loc = 0; mo = Memorder.Relaxed; volatile = false }))

let suite =
  [
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "pause and resume" `Quick test_pause_and_resume;
    Alcotest.test_case "sequence of ops" `Quick test_sequence_of_ops;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "exception after resume" `Quick test_exception_after_resume;
    Alcotest.test_case "cancel unwinds" `Quick test_cancel_unwinds;
    Alcotest.test_case "op classification" `Quick test_op_classification;
  ]
