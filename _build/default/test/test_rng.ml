(* Deterministic RNG: determinism, bounds and distribution sanity. *)

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  let xs = List.init 100 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 100 (fun _ -> Rng.next_int64 b) in
  check "same seed, same stream" true (xs = ys)

let test_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check "different seeds diverge" false (xs = ys)

let test_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check "split stream differs" false (xs = ys)

let test_int_bounds () =
  let r = Rng.create 3L in
  check "all in bounds" true
    (List.for_all
       (fun _ ->
         let v = Rng.int r 7 in
         v >= 0 && v < 7)
       (List.init 1000 Fun.id))

let test_int_coverage () =
  let r = Rng.create 5L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int r 4) <- true
  done;
  check "all residues reached" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_shuffle_is_permutation () =
  let r = Rng.create 11L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "permutation" true (sorted = Array.init 50 Fun.id)

let test_geometric () =
  let r = Rng.create 13L in
  let samples = List.init 2000 (fun _ -> Rng.geometric r 10) in
  check "all >= 1" true (List.for_all (fun x -> x >= 1) samples);
  let mean =
    float_of_int (List.fold_left ( + ) 0 samples) /. 2000.0
  in
  check "mean near 10" true (mean > 6.0 && mean < 14.0)

let test_float_range () =
  let r = Rng.create 17L in
  check "floats in [0,1)" true
    (List.for_all
       (fun _ ->
         let f = Rng.float r in
         f >= 0.0 && f < 1.0)
       (List.init 1000 Fun.id))

let prop_bool_balanced =
  QCheck.Test.make ~name:"bool is roughly balanced" ~count:20
    QCheck.(int_range 1 10000)
    (fun seed ->
      let r = Rng.create (Int64.of_int seed) in
      let trues = ref 0 in
      for _ = 1 to 400 do
        if Rng.bool r then incr trues
      done;
      !trues > 120 && !trues < 280)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "float range" `Quick test_float_range;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_bool_balanced ]
