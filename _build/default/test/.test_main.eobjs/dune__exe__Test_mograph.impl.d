test/test_mograph.ml: Action Alcotest Array Clockvec List Memorder Mograph QCheck QCheck_alcotest String
