test/test_workloads.ml: Alcotest C11 Chase_lev List Memorder Ms_queue Printf Registry Tester Tool Variant
