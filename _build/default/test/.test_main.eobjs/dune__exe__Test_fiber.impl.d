test/test_fiber.ml: Alcotest Fiber Fun Memorder Op
