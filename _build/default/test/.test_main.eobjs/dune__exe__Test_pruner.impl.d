test/test_pruner.ml: Alcotest C11 Clockvec Engine Execution List Litmus Memorder Pruner Race Registry Rng Tester Tool Variant
