test/test_litmus.ml: Alcotest Format List Litmus Printf String Tool
