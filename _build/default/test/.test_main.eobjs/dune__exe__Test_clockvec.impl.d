test/test_clockvec.ml: Alcotest Clockvec Fmt List QCheck QCheck_alcotest
