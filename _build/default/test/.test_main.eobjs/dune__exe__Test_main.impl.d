test/test_main.ml: Alcotest Test_clockvec Test_engine Test_exec Test_fiber Test_litmus Test_mograph Test_pruner Test_race Test_rng Test_sched Test_stats Test_workloads
