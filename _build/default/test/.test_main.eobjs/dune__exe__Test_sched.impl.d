test/test_sched.ml: Alcotest C11 Engine List Memorder Rng Schedule Tester Tool
