test/test_race.ml: Alcotest Clockvec List Race
