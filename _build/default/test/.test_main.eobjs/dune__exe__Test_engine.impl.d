test/test_engine.ml: Alcotest C11 Engine Int64 List Memorder String Tool
