test/test_exec.ml: Action Alcotest Clockvec Execution List Memorder Race Rng
