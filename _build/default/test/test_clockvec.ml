(* Clock vectors: unit tests plus property-based lattice laws. *)

let check = Alcotest.(check bool)

let test_bottom () =
  let cv = Clockvec.bottom () in
  check "empty slot is 0" true (Clockvec.get cv 5 = 0);
  check "bottom leq bottom" true (Clockvec.leq cv (Clockvec.bottom ()))

let test_of_slot () =
  let cv = Clockvec.of_slot ~tid:3 ~seq:17 in
  check "slot set" true (Clockvec.get cv 3 = 17);
  check "other slots 0" true (Clockvec.get cv 0 = 0 && Clockvec.get cv 9 = 0)

let test_set_get () =
  let cv = Clockvec.bottom () in
  Clockvec.set cv 7 42;
  check "set then get" true (Clockvec.get cv 7 = 42);
  Clockvec.set cv 7 10;
  check "set overwrites" true (Clockvec.get cv 7 = 10)

let test_merge () =
  let a = Clockvec.of_slot ~tid:0 ~seq:5 in
  let b = Clockvec.of_slot ~tid:1 ~seq:9 in
  let changed = Clockvec.merge a b in
  check "merge changed" true changed;
  check "merge keeps max 0" true (Clockvec.get a 0 = 5);
  check "merge takes slot 1" true (Clockvec.get a 1 = 9);
  check "idempotent merge" false (Clockvec.merge a b)

let test_leq () =
  let a = Clockvec.of_slot ~tid:0 ~seq:3 in
  let b = Clockvec.of_slot ~tid:0 ~seq:5 in
  check "3 <= 5" true (Clockvec.leq a b);
  check "5 <= 3 fails" false (Clockvec.leq b a);
  Clockvec.set a 1 1;
  check "incomparable" false (Clockvec.leq a b || Clockvec.leq b a)

let test_leq_length_mismatch () =
  let a = Clockvec.bottom () in
  Clockvec.set a 10 0;
  (* trailing zero slots must not affect comparisons *)
  check "padded zeros leq bottom" true (Clockvec.leq a (Clockvec.bottom ()));
  check "bottom leq padded" true (Clockvec.leq (Clockvec.bottom ()) a);
  check "equal modulo padding" true (Clockvec.equal a (Clockvec.bottom ()))

let test_intersect () =
  let a = Clockvec.bottom () and b = Clockvec.bottom () in
  Clockvec.set a 0 5;
  Clockvec.set a 1 2;
  Clockvec.set b 0 3;
  Clockvec.set b 1 7;
  let i = Clockvec.intersect a b in
  check "min slot 0" true (Clockvec.get i 0 = 3);
  check "min slot 1" true (Clockvec.get i 1 = 2);
  check "intersect leq both" true (Clockvec.leq i a && Clockvec.leq i b)

let test_covers () =
  let cv = Clockvec.of_slot ~tid:2 ~seq:10 in
  check "covers earlier" true (Clockvec.covers cv ~tid:2 ~seq:10);
  check "covers smaller" true (Clockvec.covers cv ~tid:2 ~seq:4);
  check "not covers later" false (Clockvec.covers cv ~tid:2 ~seq:11);
  check "not covers other tid" false (Clockvec.covers cv ~tid:0 ~seq:1)

let test_copy_independent () =
  let a = Clockvec.of_slot ~tid:0 ~seq:1 in
  let b = Clockvec.copy a in
  Clockvec.set b 0 99;
  check "copy is independent" true (Clockvec.get a 0 = 1)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_cv =
  QCheck.Gen.(
    map
      (fun slots ->
        let cv = Clockvec.bottom () in
        List.iteri (fun i v -> if v > 0 then Clockvec.set cv i v) slots;
        cv)
      (list_size (int_range 0 6) (int_range 0 20)))

let arb_cv = QCheck.make ~print:(Fmt.to_to_string Clockvec.pp) gen_cv

let prop_union_upper_bound =
  QCheck.Test.make ~name:"union is an upper bound" ~count:300
    (QCheck.pair arb_cv arb_cv) (fun (a, b) ->
      let u = Clockvec.union a b in
      Clockvec.leq a u && Clockvec.leq b u)

let prop_union_least =
  QCheck.Test.make ~name:"union is the least upper bound" ~count:300
    (QCheck.triple arb_cv arb_cv arb_cv) (fun (a, b, c) ->
      QCheck.assume (Clockvec.leq a c && Clockvec.leq b c);
      Clockvec.leq (Clockvec.union a b) c)

let prop_intersect_lower_bound =
  QCheck.Test.make ~name:"intersection is a lower bound" ~count:300
    (QCheck.pair arb_cv arb_cv) (fun (a, b) ->
      let i = Clockvec.intersect a b in
      Clockvec.leq i a && Clockvec.leq i b)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq is reflexive and transitive" ~count:300
    (QCheck.triple arb_cv arb_cv arb_cv) (fun (a, b, c) ->
      Clockvec.leq a a
      && if Clockvec.leq a b && Clockvec.leq b c then Clockvec.leq a c else true)

let prop_merge_equals_union =
  QCheck.Test.make ~name:"merge reaches the union" ~count:300
    (QCheck.pair arb_cv arb_cv) (fun (a, b) ->
      let u = Clockvec.union a b in
      let a' = Clockvec.copy a in
      ignore (Clockvec.merge a' b);
      Clockvec.equal a' u)

let prop_merge_reports_change =
  QCheck.Test.make ~name:"merge returns true iff dst grows" ~count:300
    (QCheck.pair arb_cv arb_cv) (fun (a, b) ->
      let a' = Clockvec.copy a in
      let changed = Clockvec.merge a' b in
      changed = not (Clockvec.leq b a))

let suite =
  [
    Alcotest.test_case "bottom" `Quick test_bottom;
    Alcotest.test_case "of_slot" `Quick test_of_slot;
    Alcotest.test_case "set/get" `Quick test_set_get;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "leq" `Quick test_leq;
    Alcotest.test_case "leq length mismatch" `Quick test_leq_length_mismatch;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "covers" `Quick test_covers;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_union_upper_bound;
        prop_union_least;
        prop_intersect_lower_bound;
        prop_leq_partial_order;
        prop_merge_equals_union;
        prop_merge_reports_change;
      ]
