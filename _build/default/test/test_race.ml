(* The FastTrack-style race detector, exercised directly (without the
   engine) by feeding it accesses with hand-built happens-before clocks. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cv slots =
  let v = Clockvec.bottom () in
  List.iteri (fun i s -> Clockvec.set v i s) slots;
  v

let access t ?(cls = Race.Na_access) ~loc ~tid ~seq ~hb ~w () =
  Race.on_access t ~loc ~tid ~seq ~hb ~is_write:w ~cls

let test_unordered_write_write () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  (* thread 1 writes without having seen thread 0's write *)
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  check_int "one race" 1 (Race.race_count t)

let test_ordered_write_write () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  (* thread 1's clock covers thread 0's write: ordered, no race *)
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 1; 2 ]) ~w:true ();
  check_int "no race" 0 (Race.race_count t)

let test_read_write_race () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:false ();
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  check_int "read-write races" 1 (Race.race_count t)

let test_read_read_no_race () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:false ();
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:false ();
  check_int "reads never race" 0 (Race.race_count t)

let test_atomic_atomic_no_race () =
  let t = Race.create () in
  access t ~cls:Race.Atomic_access ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  access t ~cls:Race.Atomic_access ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  check_int "atomics don't race with atomics" 0 (Race.race_count t)

let test_atomic_na_mixed () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  (* unordered atomic write to a location last written non-atomically *)
  access t ~cls:Race.Atomic_access ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  check_int "atomic vs na races" 1 (Race.race_count t);
  (* and an atomic read against the na write also races *)
  access t ~cls:Race.Atomic_access ~loc:0 ~tid:2 ~seq:3 ~hb:(cv [ 0; 0; 3 ]) ~w:false ();
  check_int "atomic read vs na write" 2 (Race.race_count t)

let test_na_read_vs_atomic_write () =
  let t = Race.create () in
  access t ~cls:Race.Atomic_access ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:false ();
  check_int "na read vs atomic write races" 1 (Race.race_count t)

let test_different_locations () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  access t ~loc:1 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  check_int "different locations never race" 0 (Race.race_count t)

let test_same_thread_never_races () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  access t ~loc:0 ~tid:0 ~seq:2 ~hb:(cv [ 2 ]) ~w:true ();
  check_int "sequenced-before orders same-thread" 0 (Race.race_count t)

let test_report_contents () =
  let t = Race.create () in
  Race.name_location t ~loc:0 "shared_counter";
  access t ~loc:0 ~tid:0 ~seq:5 ~hb:(cv [ 5 ]) ~w:true ();
  access t ~loc:0 ~tid:1 ~seq:9 ~hb:(cv [ 0; 9 ]) ~w:false ();
  match Race.races t with
  | [ r ] ->
    check "location name" true (r.Race.loc_name = "shared_counter");
    check "first is the write" true (r.Race.first_is_write && r.Race.first_tid = 0);
    check "second is the read" true ((not r.Race.second_is_write) && r.Race.second_tid = 1);
    check "dedup key stable" true (Race.dedup_key r = Race.dedup_key r)
  | _ -> Alcotest.fail "expected exactly one race"

let test_clear () =
  let t = Race.create () in
  access t ~loc:0 ~tid:0 ~seq:1 ~hb:(cv [ 1 ]) ~w:true ();
  access t ~loc:0 ~tid:1 ~seq:2 ~hb:(cv [ 0; 2 ]) ~w:true ();
  Race.clear t;
  check_int "cleared" 0 (Race.race_count t);
  check "no reports" true (Race.races t = [])

let suite =
  [
    Alcotest.test_case "unordered writes race" `Quick test_unordered_write_write;
    Alcotest.test_case "ordered writes don't race" `Quick test_ordered_write_write;
    Alcotest.test_case "read-write race" `Quick test_read_write_race;
    Alcotest.test_case "read-read no race" `Quick test_read_read_no_race;
    Alcotest.test_case "atomic-atomic no race" `Quick test_atomic_atomic_no_race;
    Alcotest.test_case "atomic vs na mixed" `Quick test_atomic_na_mixed;
    Alcotest.test_case "na read vs atomic write" `Quick test_na_read_vs_atomic_write;
    Alcotest.test_case "different locations" `Quick test_different_locations;
    Alcotest.test_case "same thread" `Quick test_same_thread_never_races;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
