(* Scheduling strategies: unit behaviour of the pickers plus the Figure 4
   bias experiment — consecutive-store batching makes the two stored
   values (roughly) equally likely to be read. *)

let check = Alcotest.(check bool)

let test_pick_singleton () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  let tid =
    Schedule.pick
      (Schedule.Controlled_random { batch_stores = false })
      st rng ~enabled:[ 3 ]
      ~pending_is_rlx_store:(fun _ -> false)
  in
  check "only choice" true (tid = 3)

let test_pick_empty_rejected () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  Alcotest.check_raises "no enabled thread"
    (Invalid_argument "Schedule.pick: no enabled thread") (fun () ->
      ignore
        (Schedule.pick
           (Schedule.Controlled_random { batch_stores = false })
           st rng ~enabled:[]
           ~pending_is_rlx_store:(fun _ -> false)))

let test_batching_keeps_storing_thread () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  let policy = Schedule.Controlled_random { batch_stores = true } in
  Schedule.note_executed st ~tid:1 ~was_rlx_or_rel_store:true;
  let picks =
    List.init 20 (fun _ ->
        Schedule.pick policy st rng ~enabled:[ 0; 1; 2 ]
          ~pending_is_rlx_store:(fun tid -> tid = 1))
  in
  check "always sticks with the storing thread" true
    (List.for_all (fun t -> t = 1) picks)

let test_batching_releases_on_non_store () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  let policy = Schedule.Controlled_random { batch_stores = true } in
  Schedule.note_executed st ~tid:1 ~was_rlx_or_rel_store:false;
  let picks =
    List.init 200 (fun _ ->
        Schedule.pick policy st rng ~enabled:[ 0; 1; 2 ]
          ~pending_is_rlx_store:(fun tid -> tid = 1))
  in
  check "other threads picked too" true (List.exists (fun t -> t <> 1) picks)

let test_bursty_runs_bursts () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  let policy = Schedule.Bursty { mean_burst = 16 } in
  let picks =
    List.init 400 (fun _ ->
        let t =
          Schedule.pick policy st rng ~enabled:[ 0; 1 ]
            ~pending_is_rlx_store:(fun _ -> false)
        in
        Schedule.note_executed st ~tid:t ~was_rlx_or_rel_store:false;
        t)
  in
  (* count context switches; bursty must switch far less than uniform *)
  let switches = ref 0 in
  ignore
    (List.fold_left
       (fun prev t ->
         if prev <> t then incr switches;
         t)
       (List.hd picks) (List.tl picks));
  check "few switches" true (!switches < 100)

let test_round_robin_cycles () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  let picks =
    List.init 9 (fun _ ->
        let t =
          Schedule.pick Schedule.Round_robin st rng ~enabled:[ 0; 1; 2 ]
            ~pending_is_rlx_store:(fun _ -> false)
        in
        Schedule.note_executed st ~tid:t ~was_rlx_or_rel_store:false;
        t)
  in
  check "cycles deterministically" true (picks = [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ])

let test_round_robin_skips_disabled () =
  let st = Schedule.make_state () in
  let rng = Rng.create 1L in
  Schedule.note_executed st ~tid:0 ~was_rlx_or_rel_store:false;
  let t =
    Schedule.pick Schedule.Round_robin st rng ~enabled:[ 2 ]
      ~pending_is_rlx_store:(fun _ -> false)
  in
  check "picks the only enabled" true (t = 2)

let test_priority_is_stable_between_change_points () =
  let st = Schedule.make_state () in
  let rng = Rng.create 3L in
  let policy = Schedule.Priority { change_points = 0 } in
  let picks =
    List.init 50 (fun _ ->
        let t =
          Schedule.pick policy st rng ~enabled:[ 0; 1; 2 ]
            ~pending_is_rlx_store:(fun _ -> false)
        in
        Schedule.note_executed st ~tid:t ~was_rlx_or_rel_store:false;
        t)
  in
  (* with no change points the same (highest-priority) thread runs
     whenever it is enabled *)
  check "stable choice" true
    (List.for_all (fun t -> t = List.hd picks) picks)

let test_priority_changes_eventually () =
  let st = Schedule.make_state () in
  let rng = Rng.create 3L in
  let policy = Schedule.Priority { change_points = 300 } in
  let picks =
    List.init 200 (fun _ ->
        let t =
          Schedule.pick policy st rng ~enabled:[ 0; 1; 2 ]
            ~pending_is_rlx_store:(fun _ -> false)
        in
        Schedule.note_executed st ~tid:t ~was_rlx_or_rel_store:false;
        t)
  in
  check "demotions switch threads" true
    (List.sort_uniq compare picks |> List.length > 1)

let test_priority_scheduler_runs_programs () =
  (* the PCT-style plugin must still drive whole executions to completion *)
  let config =
    {
      (Tool.config Tool.C11tester) with
      Engine.sched = Schedule.Priority { change_points = 50 };
    }
  in
  let s =
    Tester.run ~config ~iters:50 (fun () ->
        let x = C11.Atomic.make 0 in
        let t =
          C11.Thread.spawn (fun () ->
              ignore (C11.Atomic.fetch_add ~mo:Memorder.Acq_rel x 1))
        in
        ignore (C11.Atomic.fetch_add ~mo:Memorder.Acq_rel x 1);
        C11.Thread.join t;
        C11.assert_that (C11.Atomic.load x = 2) "both increments")
  in
  check "all executions complete correctly" true (s.Tester.buggy_executions = 0)

(* Figure 4: threadA stores x=1; x=2 (relaxed); threadB reads x.  Without
   batching, reading 2 requires scheduling A twice before B, so r1=1 is
   far more likely; with batching, the two stores execute back to back and
   1 and 2 are roughly equally likely. *)
let fig4_bias ~batch =
  let config =
    {
      (Tool.config Tool.C11tester) with
      Engine.sched = Schedule.Controlled_random { batch_stores = batch };
    }
  in
  let r1 = ref 0 in
  let program () =
    let x = C11.Atomic.make 0 in
    let ta =
      C11.Thread.spawn (fun () ->
          C11.Atomic.store ~mo:Memorder.Relaxed x 1;
          C11.Atomic.store ~mo:Memorder.Relaxed x 2)
    in
    let tb =
      C11.Thread.spawn (fun () -> r1 := C11.Atomic.load ~mo:Memorder.Relaxed x)
    in
    C11.Thread.join ta;
    C11.Thread.join tb;
    !r1
  in
  let _, hist = Tester.run_collect ~config ~iters:4000 program in
  let count v = try List.assoc v hist with Not_found -> 0 in
  (count 1, count 2)

let test_fig4_batching_removes_bias () =
  let ones_b, twos_b = fig4_bias ~batch:true in
  let ones_n, twos_n = fig4_bias ~batch:false in
  let ratio_b = float_of_int ones_b /. float_of_int (max 1 twos_b) in
  let ratio_n = float_of_int ones_n /. float_of_int (max 1 twos_n) in
  check "batched: r1=1 and r1=2 comparable" true (ratio_b < 2.0 && ratio_b > 0.5);
  check "unbatched: r1=1 much likelier" true (ratio_n > 1.5);
  check "batching reduces the bias" true (ratio_b < ratio_n)

let suite =
  [
    Alcotest.test_case "singleton pick" `Quick test_pick_singleton;
    Alcotest.test_case "empty rejected" `Quick test_pick_empty_rejected;
    Alcotest.test_case "batching keeps storer" `Quick test_batching_keeps_storing_thread;
    Alcotest.test_case "batching releases" `Quick test_batching_releases_on_non_store;
    Alcotest.test_case "bursty runs bursts" `Quick test_bursty_runs_bursts;
    Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
    Alcotest.test_case "round robin skips disabled" `Quick
      test_round_robin_skips_disabled;
    Alcotest.test_case "priority stable" `Quick
      test_priority_is_stable_between_change_points;
    Alcotest.test_case "priority changes" `Quick test_priority_changes_eventually;
    Alcotest.test_case "priority drives executions" `Slow
      test_priority_scheduler_runs_programs;
    Alcotest.test_case "figure 4 bias" `Slow test_fig4_batching_removes_bias;
  ]
