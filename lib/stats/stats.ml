(* Empty-list convention: every statistic of an empty sample is [nan] —
   there is no data, and fabricating 0.0 makes "no measurements" look
   like a real measurement.  [rate] is the one exception (a ratio of
   event counts, where 0/0 occurrences is genuinely a 0% rate). *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> nan
  | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let rsd_percent = function
  | [] -> nan
  | xs ->
    let m = mean xs in
    if m = 0.0 then 0.0 else 100.0 *. stddev xs /. abs_float m

let geomean = function
  | [] -> nan
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

(* Percentile with linear interpolation between closest ranks; [p] is in
   [0, 100].  Empty input has no percentiles: nan (see the empty-list
   convention note in the interface). *)
let percentile p = function
  | [] -> nan
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> (nan, nan)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let rate ~hits ~total =
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sample n f =
  List.init n (fun _ ->
      let (), dt = timed f in
      dt)

let pp_mean_rsd fmt xs =
  Format.fprintf fmt "%.4g (%.2f%%)" (mean xs) (rsd_percent xs)
