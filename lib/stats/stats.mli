(** Statistics used by the evaluation harness (Section 8) and the C11obs
    metrics layer: means, relative standard deviations (the parenthesised
    percentages of Table 1), geometric means (the speedup summary of
    Figure 15), percentiles and detection rates.

    Empty-list convention: every statistic of an empty sample is [nan]
    (no data), never a fabricated 0.0.  The one exception is {!rate},
    which is a ratio of event counts where [0/0] is a genuine 0%. *)

val mean : float list -> float

(** Sample standard deviation; [0.0] for a single sample. *)
val stddev : float list -> float

(** Relative standard deviation in percent: [100 * stddev / mean]. *)
val rsd_percent : float list -> float

val geomean : float list -> float

(** [percentile p xs] with [p] in [0, 100], clamped; linear interpolation
    between closest ranks.  Backs the p50/p90/p99 readouts of the C11obs
    metrics histograms. *)
val percentile : float -> float list -> float

val median : float list -> float
val min_max : float list -> float * float

(** [rate ~hits ~total] in percent. *)
val rate : hits:int -> total:int -> float

(** [timed f] runs [f] and returns its result with the elapsed wall-clock
    seconds. *)
val timed : (unit -> 'a) -> 'a * float

(** [sample n f] runs [f] [n] times collecting per-run wall-clock seconds. *)
val sample : int -> (unit -> unit) -> float list

val pp_mean_rsd : Format.formatter -> float list -> unit
