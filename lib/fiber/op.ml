type t =
  | Load of { loc : int; mo : Memorder.t; volatile : bool }
  | Store of { loc : int; mo : Memorder.t; value : int; volatile : bool }
  | Rmw of {
      loc : int;
      mo : Memorder.t;
      f : int -> Execution.rmw_decision;
      volatile : bool;
    }
  | Fence of Memorder.t
  | Na_read of { loc : int }
  | Na_write of { loc : int; value : int }
  | Alloc of { atomic : bool; name : string option; init : int }
  | Spawn of (unit -> unit)
  | Join of int
  | Mutex_create
  | Mutex_lock of int
  | Mutex_trylock of int
  | Mutex_unlock of int
  | Cond_create
  | Cond_wait of { cond : int; mutex : int }
  | Cond_signal of int
  | Cond_broadcast of int
  | Yield

let is_inline = function
  | Na_read _ | Na_write _ | Alloc _ | Mutex_create | Cond_create -> true
  | Load _ | Store _ | Rmw _ | Fence _ | Spawn _ | Join _ | Mutex_lock _
  | Mutex_trylock _ | Mutex_unlock _ | Cond_wait _ | Cond_signal _
  | Cond_broadcast _ | Yield ->
    false

let is_rlx_or_rel_store = function
  | Store { mo; _ } ->
    (* anything below seq_cst on the store side: no acquire half, not sc *)
    not (Memorder.is_acquire mo || Memorder.is_seq_cst mo)
  | _ -> false

let pp fmt = function
  | Load { loc; mo; volatile } ->
    Format.fprintf fmt "load%s(%d,%a)" (if volatile then "v" else "") loc
      Memorder.pp mo
  | Store { loc; mo; value; volatile } ->
    Format.fprintf fmt "store%s(%d,%a,%d)"
      (if volatile then "v" else "")
      loc Memorder.pp mo value
  | Rmw { loc; mo; _ } -> Format.fprintf fmt "rmw(%d,%a)" loc Memorder.pp mo
  | Fence mo -> Format.fprintf fmt "fence(%a)" Memorder.pp mo
  | Na_read { loc } -> Format.fprintf fmt "na-read(%d)" loc
  | Na_write { loc; value } -> Format.fprintf fmt "na-write(%d,%d)" loc value
  | Alloc { atomic; _ } ->
    Format.fprintf fmt "alloc(%s)" (if atomic then "atomic" else "na")
  | Spawn _ -> Format.pp_print_string fmt "spawn"
  | Join tid -> Format.fprintf fmt "join(%d)" tid
  | Mutex_create -> Format.pp_print_string fmt "mutex-create"
  | Mutex_lock m -> Format.fprintf fmt "lock(%d)" m
  | Mutex_trylock m -> Format.fprintf fmt "trylock(%d)" m
  | Mutex_unlock m -> Format.fprintf fmt "unlock(%d)" m
  | Cond_create -> Format.pp_print_string fmt "cond-create"
  | Cond_wait { cond; mutex } -> Format.fprintf fmt "wait(%d,%d)" cond mutex
  | Cond_signal c -> Format.fprintf fmt "signal(%d)" c
  | Cond_broadcast c -> Format.fprintf fmt "broadcast(%d)" c
  | Yield -> Format.pp_print_string fmt "yield"
