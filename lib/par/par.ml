let available_jobs () = Domain.recommended_domain_count ()

let shard_size ~jobs ~total ~worker =
  if jobs <= 0 then invalid_arg "Par.shard_size: jobs must be positive";
  if worker < 0 || worker >= jobs then
    invalid_arg "Par.shard_size: worker out of range";
  if total <= worker then 0 else 1 + ((total - 1 - worker) / jobs)

let spawn_workers ~jobs f =
  if jobs < 1 then invalid_arg "Par.spawn_workers: jobs must be at least 1";
  if jobs = 1 then [| f ~worker:0 |]
  else begin
    let wrap worker () =
      match f ~worker with v -> Ok v | exception e -> Error e
    in
    let domains =
      Array.init (jobs - 1) (fun i -> Domain.spawn (wrap (i + 1)))
    in
    (* worker 0 runs here: the spawning domain does a full share of the
       campaign instead of idling at the join *)
    let r0 = wrap 0 () in
    let results =
      Array.init jobs (fun w ->
          if w = 0 then r0 else Domain.join domains.(w - 1))
    in
    Array.map
      (function
        | Ok v -> v
        | Error e ->
          (* lowest failing worker wins (Array.map visits in index order),
             so the surfaced exception is deterministic *)
          raise e)
      results
  end

module Winner = struct
  type t = int Atomic.t

  let create () = Atomic.make max_int

  let rec propose t index =
    let cur = Atomic.get t in
    if index < cur && not (Atomic.compare_and_set t cur index) then
      propose t index

  let best t = match Atomic.get t with i when i = max_int -> None | i -> Some i
  let beaten t ~index = Atomic.get t < index
end

module Merge = struct
  type counters = {
    executions : int;
    buggy : int;
    racy : int;
    asserts : int;
    deadlocks : int;
    limits : int;
    certified : int;
    cert_rejected : int;
    certified_ops : int;
    retired_prefix_ops : int;
    atomic_ops : int;
    na_ops : int;
    max_graph : int;
    steps : int;
  }

  let zero =
    {
      executions = 0;
      buggy = 0;
      racy = 0;
      asserts = 0;
      deadlocks = 0;
      limits = 0;
      certified = 0;
      cert_rejected = 0;
      certified_ops = 0;
      retired_prefix_ops = 0;
      atomic_ops = 0;
      na_ops = 0;
      max_graph = 0;
      steps = 0;
    }

  let add a b =
    {
      executions = a.executions + b.executions;
      buggy = a.buggy + b.buggy;
      racy = a.racy + b.racy;
      asserts = a.asserts + b.asserts;
      deadlocks = a.deadlocks + b.deadlocks;
      limits = a.limits + b.limits;
      certified = a.certified + b.certified;
      cert_rejected = a.cert_rejected + b.cert_rejected;
      certified_ops = a.certified_ops + b.certified_ops;
      retired_prefix_ops = a.retired_prefix_ops + b.retired_prefix_ops;
      atomic_ops = a.atomic_ops + b.atomic_ops;
      na_ops = a.na_ops + b.na_ops;
      max_graph = max a.max_graph b.max_graph;
      steps = a.steps + b.steps;
    }

  (* Within one campaign each execution contributes at most one histogram
     observation and one first occurrence per race key, so merged first
     indices are distinct across keys and sorting by them is a total,
     shard-order-independent order. *)

  let histogram_indexed shards =
    let acc = Hashtbl.create 32 in
    List.iter
      (List.iter (fun (k, count, first) ->
           match Hashtbl.find_opt acc k with
           | None -> Hashtbl.replace acc k (count, first)
           | Some (c, f) -> Hashtbl.replace acc k (c + count, min f first)))
      shards;
    Hashtbl.fold (fun k (count, first) l -> (k, count, first) :: l) acc []
    |> List.sort (fun (_, _, f1) (_, _, f2) -> compare (f1 : int) f2)

  let histogram shards =
    List.map (fun (k, count, _) -> (k, count)) (histogram_indexed shards)

  let dedup_indexed ~key shards =
    let acc = Hashtbl.create 32 in
    List.iter
      (List.iter (fun (index, item) ->
           let k = key item in
           match Hashtbl.find_opt acc k with
           | None -> Hashtbl.replace acc k (index, item)
           | Some (i, _) when index < i -> Hashtbl.replace acc k (index, item)
           | Some _ -> ()))
      shards;
    Hashtbl.fold (fun _ entry l -> entry :: l) acc []
    |> List.sort (fun (i1, _) (i2, _) -> compare (i1 : int) i2)

  let dedup ~key shards = List.map snd (dedup_indexed ~key shards)

  (* Shard-range accounting for distributed merges: a leapfrog plan of
     [workers] shards over [total] executions is complete exactly when
     each worker index in [0 .. workers-1] appears exactly once.  The
     report lists faults in ascending worker order, so it is independent
     of the order ranges were collected in — the degraded summary a
     coordinator builds from it is deterministic across merge orders. *)

  type range_report = { missing : int list; duplicated : int list }

  let range_ok r = r.missing = [] && r.duplicated = []

  let check_ranges ~workers ~total:_ ranges =
    if workers <= 0 then
      invalid_arg "Par.Merge.check_ranges: workers must be positive";
    let counts = Array.make workers 0 in
    List.iter
      (fun w ->
        if w < 0 || w >= workers then
          invalid_arg "Par.Merge.check_ranges: worker index out of range";
        counts.(w) <- counts.(w) + 1)
      ranges;
    let missing = ref [] and duplicated = ref [] in
    for w = workers - 1 downto 0 do
      if counts.(w) = 0 then missing := w :: !missing
      else if counts.(w) > 1 then duplicated := w :: !duplicated
    done;
    { missing = !missing; duplicated = !duplicated }

  let first_win bests =
    List.fold_left
      (fun acc b ->
        match (acc, b) with
        | None, b -> b
        | acc, None -> acc
        | Some (i, _), Some (j, w) -> if j < i then Some (j, w) else acc)
      None bests
end
