(** Parallel campaign layer: shard a campaign's executions across OCaml 5
    domains and merge the per-shard results deterministically.

    A C11Tester campaign is embarrassingly parallel: each execution is a
    pure function of its derived seed (see [Rng.substream]), so executions
    can be dealt to workers in any pattern without changing what any one
    execution does.  This module supplies the two halves the testers build
    on:

    - {b fan-out} — {!spawn_workers} runs one shard per domain with fully
      private engine state, and {!Winner} implements the lowest-index-wins
      protocol for bug hunts;
    - {b merge} — {!Merge} provides the order-independent, associative
      operations (counter sums, first-occurrence histograms, keyed dedup)
      that make the merged observables of a [jobs = N] campaign
      bit-identical to the sequential runner's, for every N.

    The sharding pattern is leapfrog: worker [w] of [j] runs global
    execution indices [w, w+j, w+2j, ...], ascending.  Ascending order is
    what lets a worker stop early in a bug hunt the moment its next index
    can no longer beat the current winner. *)

(** Number of domains worth spawning on this machine
    ([Domain.recommended_domain_count]). *)
val available_jobs : unit -> int

(** [shard_size ~jobs ~total ~worker] is how many of [total] executions
    worker [worker] of [jobs] runs under leapfrog sharding. *)
val shard_size : jobs:int -> total:int -> worker:int -> int

(** [spawn_workers ~jobs f] runs [f ~worker] for [worker] in
    [0 .. jobs-1], workers [1 .. jobs-1] each on a fresh domain and worker
    [0] on the calling domain, and returns the results indexed by worker.
    All domains are joined before returning.  If any worker raises, the
    exception of the lowest-numbered failing worker is re-raised after the
    join (so the choice of surfaced error is worker-count-deterministic,
    not a race).  [jobs] must be at least 1. *)
val spawn_workers : jobs:int -> (worker:int -> 'a) -> 'a array

(** First-buggy-wins protocol for parallel bug hunts.  Workers propose the
    global execution index of each buggy execution they find; the lowest
    proposed index wins.  A worker scanning its indices in ascending order
    may stop as soon as {!beaten} says its next index can no longer win —
    the cancellation is advisory and never changes the winner, because an
    index is only ever skipped when a strictly lower buggy index has
    already been found. *)
module Winner : sig
  type t

  val create : unit -> t

  (** Propose a buggy execution at [index]; keeps the minimum. *)
  val propose : t -> int -> unit

  (** Lowest index proposed so far, or [None]. *)
  val best : t -> int option

  (** [beaten t ~index] is [true] when running execution [index] is
      pointless: some strictly lower index already won. *)
  val beaten : t -> index:int -> bool
end

(** Order-independent merge operations.  Each is associative and
    commutative in its shard argument(s), so the merged result is
    independent of worker count and completion order. *)
module Merge : sig
  (** Per-shard outcome counters — the additive portion of a campaign
      summary.  [max_graph] merges by maximum, everything else by sum. *)
  type counters = {
    executions : int;
    buggy : int;
    racy : int;
    asserts : int;
    deadlocks : int;
    limits : int;
    certified : int;
    cert_rejected : int;
    certified_ops : int;
        (** actions consumed by the streaming certifier across the shard *)
    retired_prefix_ops : int;
        (** actions whose certification window storage was retired *)
    atomic_ops : int;
    na_ops : int;
    max_graph : int;
    steps : int;
  }

  val zero : counters

  (** Associative, commutative, with {!zero} as identity. *)
  val add : counters -> counters -> counters

  (** [histogram shards] merges per-shard histogram entries
      [(key, count, first_index)] — [first_index] being the lowest global
      execution index at which the shard observed [key] — by summing
      counts and taking the minimum first index per key.  The result lists
      each key once, in ascending order of merged first index: exactly the
      first-occurrence order the sequential runner produces. *)
  val histogram : ('k * int * int) list list -> ('k * int) list

  (** Like {!histogram}, but each merged entry keeps its (merged-minimum)
      first-occurrence index — for coverage tables that must name when a
      key was first seen. *)
  val histogram_indexed :
    ('k * int * int) list list -> ('k * int * int) list

  (** [dedup ~key shards] merges per-shard first-occurrence lists
      [(first_index, item)], keeps one item per [key] (the one with the
      lowest index), and returns the survivors in ascending index order —
      the sequential runner's first-occurrence dedup, recovered from
      shards. *)
  val dedup : key:('a -> string) -> (int * 'a) list list -> 'a list

  (** {!dedup}, but each survivor keeps the (merged-minimum) global index
      of its first occurrence — for reports that must name the winning
      index, e.g. the fuzzer's lowest-index-wins finding protocol. *)
  val dedup_indexed :
    key:('a -> string) -> (int * 'a) list list -> (int * 'a) list

  (** Partial-failure accounting for distributed merges.  A leapfrog plan
      of [workers] shards is complete exactly when each worker index in
      [0 .. workers-1] contributed exactly one shard; {!check_ranges}
      reports the holes.  Both fault lists are in ascending worker order,
      so the report — and any degraded summary built from it — is
      independent of the order the shards were collected in. *)
  type range_report = {
    missing : int list;  (** worker indices with no shard, ascending *)
    duplicated : int list;
        (** worker indices with more than one shard, ascending *)
  }

  val range_ok : range_report -> bool

  (** [check_ranges ~workers ~total ranges] audits the list of worker
      indices that contributed a shard.  Raises [Invalid_argument] on a
      non-positive [workers] or an out-of-range index (those are caller
      bugs, not partial failures). *)
  val check_ranges : workers:int -> total:int -> int list -> range_report

  (** Lowest-index entry across per-worker bests, or [None]. *)
  val first_win : (int * 'a) option list -> (int * 'a) option
end
