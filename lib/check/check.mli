(** Axiomatic certification of recorded executions.

    The operational engine ({!Execution}, {!Mograph}) is the only arbiter
    of what an execution means: a bug there silently changes the memory
    model, and the fixed-seed goldens only prove the repository is
    consistent with itself.  This module is a second, independent
    implementation of the declarative C11 fragment, run as a sanitizer
    over finished executions (in the spirit of consistency-checking work
    such as Tunç et al., "Optimal Reads-From Consistency Checking for
    C11-Style Memory Models", and the declarative treatment of Batty et
    al., "Overhauling SC Atomics in C11 and OpenCL").

    From the recorded action trace and synchronisation edges
    ({!Execution.cert_trace}, {!Execution.cert_sync_edges}) it
    reconstructs the declarative relations from scratch — [sb] (program
    order per thread), [rf] (the recorded reads-from), [mo] (read off the
    final mo-graph by depth-first search, never by clock vectors), [sw]
    (release sequences per C++20, including fence-based synchronisation),
    [hb = (sb ∪ sw)⁺] (computed with its own integer timelines, entirely
    independently of the engine's {!Clockvec}s) and [fr = rf⁻¹ ; mo] —
    and checks the fragment's axioms:

    - {b hb-irreflexivity} — no action happens before itself;
    - {b hb-differential} — the certified [hb] must agree with the
      engine's recorded clock-vector snapshots on {e every} ordered pair
      of actions (this is what catches a dropped or invented
      synchronizes-with edge);
    - {b rf-wf} — every read observes an existing same-location write
      that does not happen after it, and loads return the value written;
    - {b coherence} — per location, [hb|loc ∪ rf ∪ mo ∪ fr] is acyclic
      (subsumes CoRR/CoWR/CoRW), plus the completeness obligations CoWW
      ([a -hb-> b] for same-location writes forces [a -mo-> b]) and CoWR
      (an hb-visible write forces an mo edge to the write actually read);
    - {b rmw-atomicity} — an RMW reads-from a store it immediately
      mo-follows, and no store feeds two RMWs;
    - {b sc} — the total seq_cst order (execution order restricted to
      seq_cst actions) is consistent with certified hb, and a seq_cst
      load observes the last seq_cst store to its location or a
      non-hb-superseded non-sc store (Section 29.3 statement 3);
    - {b theorem-1-differential} — on the final mo-graph,
      {!Mograph.reaches} (clock-vector comparison) must agree with
      {!Mograph.reaches_dfs} (graph search) on every live same-location
      write pair.

    Pruned executions ({!Pruner}) deliberately over-approximate node
    clocks, so the mo-graph differential and the completeness obligations
    are skipped once any store has been pruned (reported in the
    statistics); the remaining axioms still run.  [Total_mo] executions
    use the 2011 release-sequence definition the certifier does not
    model, so they yield {!Not_applicable}. *)

(** Which axiom a violation falls under. *)
type axiom =
  | Hb_irreflexivity
  | Hb_differential
  | Rf_wf
  | Coherence
  | Rmw_atomicity
  | Sc_order
  | Theorem1_differential
  | Sync_wf  (** malformed certifier input (edges naming unknown events) *)

(** A structured counterexample: the axiom violated, the sequence numbers
    of the actions involved (in the order relevant to the axiom — e.g. a
    coherence cycle lists the cycle), and a human-readable explanation. *)
type violation = { axiom : axiom; actions : int list; detail : string }

type stats = {
  actions : int;  (** actions in the certified trace *)
  reads : int;
  writes : int;
  sc_actions : int;
  sync_edges : int;
  hb_pairs : int;  (** ordered action pairs compared in the differential *)
  locations : int;
  graph_checked : bool;
      (** false when pruning forced the mo-graph differential and the
          completeness obligations to be skipped *)
}

type verdict =
  | Certified of stats
  | Rejected of violation list  (** non-empty, in detection order *)
  | Not_applicable of string
      (** nothing recorded ([~certify:false]) or an uncertified mode *)

(** [certify exec] reconstructs the declarative relations of the finished
    execution and checks every axiom, returning all violations found (it
    does not stop at the first). *)
val certify : Execution.t -> verdict

val axiom_name : axiom -> string

(** Stable cross-execution deduplication key for a violation (axiom name
    plus location/shape, without sequence numbers — the same model bug
    found under different seeds collapses to one key). *)
val violation_key : violation -> string

(** [rejection_key vs] is one seed-stable key for a whole {!Rejected}
    verdict: the lexicographically least {!violation_key} — the dominant
    axiom.  The fuzzer ([lib/fuzz]) uses it as the identity of a finding,
    so one engine bug that trips several axioms at once (or secondary
    axioms only on larger programs) deduplicates to one finding. *)
val rejection_key : violation list -> string

val pp_violation : Format.formatter -> violation -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val violation_to_json : violation -> Jsonx.t
val verdict_to_json : verdict -> Jsonx.t

(** Streaming incremental certification: the same axiom checks as
    {!certify}, run online against an {!Execution.cert_sink} as the
    execution produces actions and sync edges, with hb-closed prefix
    retirement so certification memory is bounded by the live window
    rather than the run length.

    Equivalence with the post-hoc pass is key-level on rejections (same
    verdict constructor; same sorted set of {!violation_key}s, hence the
    same {!rejection_key}) and bit-level on {!Certified} stats; the
    QCheck differential in the test suite enforces this, including under
    the seeded engine mutants and pruned executions. *)
module Stream : sig
  type t

  (** [create ~exec ~counted] builds a stream for [exec].  [counted tid]
      must say whether thread [tid] still contributes to the readability
      frontier — live and not parked on an unconditional acquire (a join,
      or a lock of a mutex someone holds); retirement only trusts the
      engine clocks of counted threads. *)
  val create : exec:Execution.t -> counted:(int -> bool) -> t

  (** The sink to install with {!Execution.set_cert_sink}. *)
  val sink : t -> Execution.cert_sink

  (** Verdict over everything fed so far.  Idempotent; runs the residual
      window through the exact post-hoc mo-graph checks. *)
  val finalize : t -> verdict

  (** Actions certified so far (progress counter). *)
  val certified_ops : t -> int

  (** Actions whose window storage has been retired (freed). *)
  val retired_ops : t -> int

  (** True when a violation froze the window or coherence obligations are
      pending — the window is no longer shrinking. *)
  val anomalous : t -> bool
end
