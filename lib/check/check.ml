(* Axiomatic certification of recorded executions: an independent
   reconstruction of the declarative C11 fragment, cross-checked against
   both the trace itself and the engine's derived structures.  See
   check.mli for the axiom inventory and the scope notes. *)

type axiom =
  | Hb_irreflexivity
  | Hb_differential
  | Rf_wf
  | Coherence
  | Rmw_atomicity
  | Sc_order
  | Theorem1_differential
  | Sync_wf

type violation = { axiom : axiom; actions : int list; detail : string }

type stats = {
  actions : int;
  reads : int;
  writes : int;
  sc_actions : int;
  sync_edges : int;
  hb_pairs : int;
  locations : int;
  graph_checked : bool;
}

type verdict =
  | Certified of stats
  | Rejected of violation list
  | Not_applicable of string

let axiom_name = function
  | Hb_irreflexivity -> "hb-irreflexivity"
  | Hb_differential -> "hb-differential"
  | Rf_wf -> "rf-wf"
  | Coherence -> "coherence"
  | Rmw_atomicity -> "rmw-atomicity"
  | Sc_order -> "sc-order"
  | Theorem1_differential -> "theorem1-differential"
  | Sync_wf -> "sync-wf"

(* Violation details embed sequence numbers as ["#<digits>"]; the dedup
   key strips those digit runs so the same model bug found under
   different seeds collapses to one key, while location names and the
   shape of the explanation survive. *)
let violation_key v =
  let b = Buffer.create 64 in
  Buffer.add_string b (axiom_name v.axiom);
  Buffer.add_char b ':';
  let s = v.detail in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    Buffer.add_char b c;
    incr i;
    if c = '#' then
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
  done;
  Buffer.contents b

(* One seed-stable key for a whole rejection: the distinct violation keys,
   sorted and joined.  Two executions rejected for the same set of model
   bugs — under different seeds, programs or job counts — collapse to the
   same key; the fuzzer uses this as its finding identity. *)
(* The dominant key, not a join of all of them: one engine bug usually
   trips several axioms at once (a dropped mo edge fails CoWW and the
   Theorem 1 differential, on however many locations the program has),
   and keying on the combination would count every subset as a distinct
   finding. *)
let rejection_key vs =
  match List.sort compare (List.map violation_key vs) with
  | [] -> "none"
  | k :: _ -> k

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s (actions:%a)" (axiom_name v.axiom) v.detail
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       (fun fmt s -> Format.fprintf fmt " #%d" s))
    v.actions

let pp_verdict fmt = function
  | Certified s ->
    Format.fprintf fmt
      "certified: %d actions (%d reads, %d writes, %d sc), %d sync edges, \
       %d locations, %d hb pairs%s"
      s.actions s.reads s.writes s.sc_actions s.sync_edges s.locations
      s.hb_pairs
      (if s.graph_checked then "" else " [mo-graph checks skipped: pruned]")
  | Rejected vs ->
    Format.fprintf fmt "@[<v>REJECTED (%d violations):@ %a@]" (List.length vs)
      (Format.pp_print_list pp_violation)
      vs
  | Not_applicable why -> Format.fprintf fmt "not applicable: %s" why

let violation_to_json v =
  Jsonx.Obj
    [
      ("axiom", Jsonx.String (axiom_name v.axiom));
      ("actions", Jsonx.List (List.map (fun s -> Jsonx.Int s) v.actions));
      ("detail", Jsonx.String v.detail);
      ("key", Jsonx.String (violation_key v));
    ]

let verdict_to_json = function
  | Certified s ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "certified");
        ("actions", Jsonx.Int s.actions);
        ("reads", Jsonx.Int s.reads);
        ("writes", Jsonx.Int s.writes);
        ("sc_actions", Jsonx.Int s.sc_actions);
        ("sync_edges", Jsonx.Int s.sync_edges);
        ("hb_pairs", Jsonx.Int s.hb_pairs);
        ("locations", Jsonx.Int s.locations);
        ("graph_checked", Jsonx.Bool s.graph_checked);
      ]
  | Rejected vs ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "rejected");
        ("violations", Jsonx.List (List.map violation_to_json vs));
      ]
  | Not_applicable why ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "not-applicable");
        ("reason", Jsonx.String why);
      ]

(* ------------------------------------------------------------------ *)
(* Certified happens-before.

   hb = (sb ∪ sw)⁺ is computed with plain integer timelines, never with
   the engine's Clockvec: each thread carries an int array clock (slot u =
   newest event of thread u known to happen before "here"), grown by
   replaying the trace and the recorded synchronisation edges in global
   sequence order.  Delayed fence synchronisation mirrors the memory
   model: a non-acquire read banks the release sequence it observed in a
   pending buffer that only an acquire fence publishes into the thread
   clock.  The certified clock of every action is snapshotted so hb
   queries are O(1) afterwards. *)

type cert = {
  nthreads : int;
  trace : Action.t array;  (** global sequence order *)
  by_seq : (int, Action.t) Hashtbl.t;
  edges : Execution.sync_edge array;
  acv : (int, int array) Hashtbl.t;  (** action seq -> certified clock *)
  heads : (int, Action.t list) Hashtbl.t;
      (** store seq -> release-sequence heads (C++20) *)
  last_rel_fence : (int, Action.t) Hashtbl.t;
      (** store seq -> the release fence feeding its thread's F^rel *)
  mutable violations : violation list;  (** newest first *)
}

let add_violation c axiom actions detail =
  c.violations <- { axiom; actions; detail } :: c.violations

(* Per-violation-family cap: a single systematic model bug would otherwise
   flood the report with one violation per pair. *)
let cap = 8

(* Release-sequence heads of a store, mirroring the reads-from clock
   construction of Figure 9 exactly but in terms of events:
   - a release store heads its own sequence;
   - a relaxed store's sequence is headed by its thread's last release
     fence, if any (F^rel);
   - an RMW extends the sequence of the store it read (C++20: only RMWs
     continue a release sequence) and may add its own head;
   - a non-atomic store never heads or continues a sequence. *)
let rec heads_of c (s : Action.t) =
  match Hashtbl.find_opt c.heads s.seq with
  | Some hs -> hs
  | None ->
    let own =
      if Memorder.is_release s.mo then [ s ]
      else
        match Hashtbl.find_opt c.last_rel_fence s.seq with
        | Some f -> [ f ]
        | None -> []
    in
    let hs =
      match s.kind with
      | Action.Rmw -> (
        match s.rf with
        | Some prev when prev.seq < s.seq -> own @ heads_of c prev
        | Some _ | None -> own)
      | Action.Store -> own
      | Action.Na_store | Action.Load | Action.Fence -> []
    in
    Hashtbl.replace c.heads s.seq hs;
    hs

(* Events of the forward pass, ordered by (seq, rank): a sync edge
   snapshots its source thread's clock when the global order passes its
   release event and merges it into the target when it passes its acquire
   event.  Thread-start edges (to_seq = 0) apply immediately after their
   own snapshot — the child has no events before that point. *)
type ev =
  | Apply of int  (** edge index, at to_seq, rank 0 *)
  | Act of Action.t  (** rank 1 *)
  | Snap of int  (** edge index, at from_seq, rank 2 *)
  | Apply_start of int  (** edge index, at from_seq, rank 3 *)

let ev_pos edges = function
  | Apply i -> ((edges.(i) : Execution.sync_edge).se_to_seq, 0)
  | Act a -> (a.Action.seq, 1)
  | Snap i -> (edges.(i).Execution.se_from_seq, 2)
  | Apply_start i -> (edges.(i).Execution.se_from_seq, 3)

let merge_into dst src =
  let n = Array.length src in
  for i = 0 to n - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let build_hb c =
  let nt = c.nthreads in
  let clocks = Array.init nt (fun _ -> Array.make nt 0) in
  let pending = Array.init nt (fun _ -> Array.make nt 0) in
  let snaps = Array.make (Array.length c.edges) [||] in
  let events =
    Array.append
      (Array.map (fun a -> Act a) c.trace)
      (Array.concat
         (Array.to_list
            (Array.mapi
               (fun i (e : Execution.sync_edge) ->
                 if e.se_to_seq = 0 then [| Snap i; Apply_start i |]
                 else [| Snap i; Apply i |])
               c.edges)))
  in
  Array.sort (fun a b -> compare (ev_pos c.edges a) (ev_pos c.edges b)) events;
  let in_range tid = tid >= 0 && tid < nt in
  Array.iter
    (fun ev ->
      match ev with
      | Snap i ->
        let e = c.edges.(i) in
        if in_range e.se_from_tid then begin
          let s = Array.copy clocks.(e.se_from_tid) in
          if e.se_from_seq > s.(e.se_from_tid) then
            s.(e.se_from_tid) <- e.se_from_seq;
          snaps.(i) <- s
        end
      | Apply i | Apply_start i ->
        let e = c.edges.(i) in
        if in_range e.se_to_tid && Array.length snaps.(i) > 0 then begin
          merge_into clocks.(e.se_to_tid) snaps.(i);
          if e.se_to_seq > clocks.(e.se_to_tid).(e.se_to_tid) then
            clocks.(e.se_to_tid).(e.se_to_tid) <- e.se_to_seq
        end
      | Act a ->
        let tid = a.Action.tid in
        if in_range tid then begin
          let cl = clocks.(tid) in
          cl.(tid) <- a.seq;
          (match a.kind with
          | Action.Load | Action.Rmw -> (
            match a.rf with
            | Some s when s.seq < a.seq ->
              let dst = if Memorder.is_acquire a.mo then cl else pending.(tid) in
              List.iter
                (fun (h : Action.t) ->
                  match Hashtbl.find_opt c.acv h.seq with
                  | Some hc -> merge_into dst hc
                  | None -> ())
                (heads_of c s)
            | Some _ | None -> ())
          | Action.Fence ->
            if Memorder.is_acquire a.mo then merge_into cl pending.(tid)
          | Action.Store | Action.Na_store -> ());
          Hashtbl.replace c.acv a.seq (Array.copy cl)
        end)
    events

(* Strict certified happens-before between two trace actions, mirroring
   {!Action.happens_before}'s contract (an action does not happen before
   itself). *)
let cert_hb c (a : Action.t) (b : Action.t) =
  a.seq <> b.seq
  &&
  match Hashtbl.find_opt c.acv b.seq with
  | Some bc -> a.tid < Array.length bc && bc.(a.tid) >= a.seq
  | None -> false

(* ------------------------------------------------------------------ *)
(* Axiom checks *)

let check_sync_wf c =
  let count = ref 0 in
  Array.iter
    (fun (e : Execution.sync_edge) ->
      if !count < cap then
        if
          e.se_from_tid < 0
          || e.se_from_tid >= c.nthreads
          || e.se_to_tid < 0
          || e.se_to_tid >= c.nthreads
          || e.se_from_seq <= 0
          || (e.se_to_seq <> 0 && e.se_to_seq <= e.se_from_seq)
        then begin
          incr count;
          add_violation c Sync_wf []
            (Printf.sprintf
               "malformed sync edge t%d@#%d -> t%d@#%d (tids in [0,%d), \
                release must precede acquire)"
               e.se_from_tid e.se_from_seq e.se_to_tid e.se_to_seq c.nthreads)
        end)
    c.edges

let check_hb_irreflexive c =
  let count = ref 0 in
  Array.iter
    (fun (a : Action.t) ->
      if !count < cap then
        match Hashtbl.find_opt c.acv a.seq with
        | Some ac ->
          (* the action's own slot is its own seq by construction; a
             foreign slot at or above this action's seq means an edge ran
             backwards in time *)
          Array.iteri
            (fun u v ->
              if u <> a.tid && v >= a.seq && !count < cap then begin
                incr count;
                add_violation c Hb_irreflexivity [ a.seq ]
                  (Printf.sprintf
                     "action #%d's certified clock covers t%d@#%d, which \
                      does not precede it"
                     a.seq u v)
              end)
            ac
        | None ->
          incr count;
          add_violation c Hb_irreflexivity [ a.seq ]
            (Printf.sprintf "action #%d has no certified clock" a.seq))
    c.trace

let check_hb_differential c =
  let n = Array.length c.trace in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && !count < cap then begin
        let a = c.trace.(i) and b = c.trace.(j) in
        let certified = cert_hb c a b in
        let operational = Action.happens_before a b in
        if certified <> operational then begin
          incr count;
          add_violation c Hb_differential [ a.seq; b.seq ]
            (Printf.sprintf
               "#%d -hb-> #%d is %b under the certified (sb ∪ sw)⁺ closure \
                but %b under the engine's clock vectors"
               a.seq b.seq certified operational)
        end
      end
    done
  done;
  n * (n - 1)

let check_rf_wf c =
  let count = ref 0 in
  Array.iter
    (fun (r : Action.t) ->
      if Action.is_read r && !count < cap then
        match r.rf with
        | None ->
          incr count;
          add_violation c Rf_wf [ r.seq ]
            (Printf.sprintf "read #%d of loc %d has no reads-from store"
               r.seq r.loc)
        | Some s ->
          let fail msg =
            incr count;
            add_violation c Rf_wf [ r.seq; s.seq ] msg
          in
          if not (Hashtbl.mem c.by_seq s.seq) then
            fail
              (Printf.sprintf "read #%d reads-from #%d, not in the trace"
                 r.seq s.seq)
          else if not (Action.is_write s) then
            fail
              (Printf.sprintf "read #%d reads-from #%d, which is not a write"
                 r.seq s.seq)
          else if s.loc <> r.loc then
            fail
              (Printf.sprintf
                 "read #%d of loc %d reads-from #%d of loc %d" r.seq r.loc
                 s.seq s.loc)
          else if s.seq >= r.seq then
            fail
              (Printf.sprintf
                 "read #%d reads-from #%d, which executes after it" r.seq
                 s.seq)
          else if r.kind = Action.Load && r.value <> s.value then
            fail
              (Printf.sprintf
                 "load #%d returned %d but its reads-from store #%d wrote %d"
                 r.seq r.value s.seq s.value))
    c.trace

(* Reachability over the final mo-graph by explicit search (edges + rmw
   links), never by clock vectors: one traversal per write, collecting the
   same-location writes it reaches.  [reach] maps a live write's seq to
   the seq set of its same-location mo-successors. *)
let graph_reach graph (writes : Action.t list) =
  let target = Hashtbl.create 16 in
  List.iter (fun (w : Action.t) -> Hashtbl.replace target w.seq ()) writes;
  let reach = Hashtbl.create 16 in
  List.iter
    (fun (w : Action.t) ->
      match Mograph.find_node graph w with
      | None -> ()
      | Some start ->
        let found = Hashtbl.create 16 in
        let visited = Hashtbl.create 64 in
        let rec go (n : Mograph.node) =
          if not (Hashtbl.mem visited n.action.seq) then begin
            Hashtbl.add visited n.action.seq ();
            if n.action.seq <> w.seq && Hashtbl.mem target n.action.seq then
              Hashtbl.replace found n.action.seq ();
            for i = 0 to n.nedges - 1 do
              go n.edges.(i)
            done;
            match n.rmw with Some r -> go r | None -> ()
          end
        in
        go start;
        Hashtbl.replace reach w.seq found)
    writes;
  reach

let mo_dfs reach (a : Action.t) (b : Action.t) =
  match Hashtbl.find_opt reach a.seq with
  | Some found -> Hashtbl.mem found b.seq
  | None -> false

(* Per-location coherence: acyclicity of hb|loc ∪ rf ∪ mo ∪ fr over the
   location's actions, plus — when the graph is exact (nothing pruned) —
   the completeness obligations CoWW and CoWR that catch a dropped mo
   edge (a merely missing edge never creates a cycle). *)
let check_location c ~graph ~graph_exact ~loc (acts : Action.t list) =
  let writes = List.filter Action.is_write acts in
  let reach = graph_reach graph writes in
  let live w = Mograph.find_node graph w <> None in
  (* adjacency for the union relation *)
  let adj = Hashtbl.create 32 in
  let add_edge a b =
    let l = try Hashtbl.find adj a with Not_found -> [] in
    Hashtbl.replace adj a (b :: l)
  in
  List.iter
    (fun (a : Action.t) ->
      List.iter
        (fun (b : Action.t) ->
          if a.seq <> b.seq then begin
            if cert_hb c a b then add_edge a.seq b.seq;
            if Action.is_write a && Action.is_write b && mo_dfs reach a b then
              add_edge a.seq b.seq
          end)
        acts;
      (if Action.is_read a then
         match a.rf with
         | Some s when s.loc = a.loc ->
           add_edge s.seq a.seq;
           (* fr = rf⁻¹ ; mo *)
           List.iter
             (fun (w : Action.t) ->
               if w.seq <> s.seq && w.seq <> a.seq && mo_dfs reach s w then
                 add_edge a.seq w.seq)
             writes
         | Some _ | None -> ()))
    acts;
  (* cycle detection with path extraction *)
  let color = Hashtbl.create 32 in
  let cycle = ref None in
  let rec visit path seq =
    if !cycle = None then
      match Hashtbl.find_opt color seq with
      | Some 1 ->
        let rec cut = function
          | [] -> [ seq ]
          | x :: rest -> if x = seq then [ x ] else x :: cut rest
        in
        cycle := Some (seq :: List.rev (cut path))
      | Some _ -> ()
      | None ->
        Hashtbl.add color seq 1;
        List.iter (visit (seq :: path))
          (try Hashtbl.find adj seq with Not_found -> []);
        Hashtbl.replace color seq 2
  in
  List.iter (fun (a : Action.t) -> visit [] a.seq) acts;
  (match !cycle with
  | Some cyc ->
    add_violation c Coherence cyc
      (Printf.sprintf
         "loc %d: hb|loc ∪ rf ∪ mo ∪ fr has a cycle through %d actions" loc
         (List.length cyc - 1))
  | None -> ());
  if graph_exact then begin
    let count = ref 0 in
    (* CoWW: hb-ordered same-location writes must be mo-ordered *)
    List.iter
      (fun (a : Action.t) ->
        List.iter
          (fun (b : Action.t) ->
            if
              !count < cap && a.seq <> b.seq && live a && live b
              && cert_hb c a b
              && not (mo_dfs reach a b)
            then begin
              incr count;
              add_violation c Coherence [ a.seq; b.seq ]
                (Printf.sprintf
                   "loc %d: CoWW incomplete — write #%d happens before \
                    write #%d but is not mo-before it"
                   loc a.seq b.seq)
            end)
          writes)
      writes;
    (* CoWR: a write hb-visible to a read must be mo-before the write the
       read actually observed *)
    List.iter
      (fun (r : Action.t) ->
        if Action.is_read r then
          match r.rf with
          | Some s when s.loc = r.loc && live s ->
            List.iter
              (fun (w : Action.t) ->
                if
                  !count < cap && w.seq <> s.seq && w.seq <> r.seq && live w
                  && cert_hb c w r
                  && not (mo_dfs reach w s)
                then begin
                  incr count;
                  add_violation c Coherence [ w.seq; r.seq; s.seq ]
                    (Printf.sprintf
                       "loc %d: CoWR incomplete — write #%d happens before \
                        read #%d but is not mo-before its store #%d"
                       loc w.seq r.seq s.seq)
                end)
              writes
          | Some _ | None -> ())
      acts
  end;
  (writes, reach)

let check_rmw_atomicity c ~graph =
  let claimed = Hashtbl.create 8 in
  let count = ref 0 in
  Array.iter
    (fun (r : Action.t) ->
      if r.kind = Action.Rmw && !count < cap then
        match r.rf with
        | None -> () (* already an rf-wf violation *)
        | Some s ->
          (match Hashtbl.find_opt claimed s.seq with
          | Some other ->
            incr count;
            add_violation c Rmw_atomicity [ s.seq; other; r.seq ]
              (Printf.sprintf
                 "store #%d is read by two RMWs, #%d and #%d" s.seq other
                 r.seq)
          | None -> Hashtbl.replace claimed s.seq r.seq);
          (match (Mograph.find_node graph s, Mograph.find_node graph r) with
          | Some ns, Some nr ->
            let immediate =
              match ns.Mograph.rmw with Some x -> x == nr | None -> false
            in
            if not immediate then begin
              incr count;
              add_violation c Rmw_atomicity [ s.seq; r.seq ]
                (Printf.sprintf
                   "rmw #%d reads-from #%d but does not immediately \
                    mo-follow it"
                   r.seq s.seq)
            end
          | _ -> () (* a pruned end of the pair: immediacy unobservable *)))
    c.trace

let check_sc c =
  let sc =
    Array.to_list c.trace
    |> List.filter (fun (a : Action.t) -> Memorder.is_seq_cst a.mo)
  in
  let count = ref 0 in
  (* The total sc order is execution order restricted to sc actions; it
     must be consistent with certified hb. *)
  let rec pairs = function
    | [] -> ()
    | (a : Action.t) :: rest ->
      List.iter
        (fun (b : Action.t) ->
          if !count < cap && cert_hb c b a then begin
            incr count;
            add_violation c Sc_order [ a.seq; b.seq ]
              (Printf.sprintf
                 "sc order places #%d before #%d but #%d happens before #%d"
                 a.seq b.seq b.seq a.seq)
          end)
        rest;
      pairs rest
  in
  pairs sc;
  (* Section 29.3 statement 3: an sc read observes the last sc store to
     its location, or a store that neither sc-precedes it nor happens
     before it. *)
  List.iter
    (fun (r : Action.t) ->
      if Action.is_read r && !count < cap then
        match r.rf with
        | None -> ()
        | Some x ->
          let last_sc =
            List.fold_left
              (fun acc (s : Action.t) ->
                if Action.is_write s && s.loc = r.loc && s.seq < r.seq then
                  Some s
                else acc)
              None sc
          in
          (match last_sc with
          | Some s when x.seq <> s.seq ->
            if
              (Memorder.is_seq_cst x.mo && x.seq < s.seq) || cert_hb c x s
            then begin
              incr count;
              add_violation c Sc_order [ r.seq; x.seq; s.seq ]
                (Printf.sprintf
                   "sc read #%d observes #%d, hidden behind the last sc \
                    store #%d to loc %d"
                   r.seq x.seq s.seq r.loc)
            end
          | Some _ | None -> ()))
    sc;
  List.length sc

(* Theorem 1 differential: on the final (unpruned) graph, the engine's
   O(threads) clock-vector reachability must agree with explicit search
   for every live same-location write pair. *)
let check_theorem1 c ~graph ~loc (writes : Action.t list) reach =
  let count = ref 0 in
  List.iter
    (fun (a : Action.t) ->
      List.iter
        (fun (b : Action.t) ->
          if
            !count < cap && a.seq <> b.seq
            && Mograph.find_node graph a <> None
            && Mograph.find_node graph b <> None
          then begin
            let cv = Mograph.reaches graph a b in
            let dfs = mo_dfs reach a b in
            if cv <> dfs then begin
              incr count;
              add_violation c Theorem1_differential [ a.seq; b.seq ]
                (Printf.sprintf
                   "loc %d: #%d reaches #%d is %b by clock vectors but %b \
                    by graph search"
                   loc a.seq b.seq cv dfs)
            end
          end)
        writes)
    writes

(* ------------------------------------------------------------------ *)

let certify (exec : Execution.t) =
  if not exec.Execution.cert_on then
    Not_applicable "execution was not recorded for certification"
  else if exec.Execution.mode <> Execution.Full_c11 then
    Not_applicable
      "Total_mo executions use 2011 release sequences, outside the \
       certified fragment"
  else begin
    let trace = Array.of_list (Execution.cert_trace exec) in
    let edges = Array.of_list (Execution.cert_sync_edges exec) in
    let by_seq = Hashtbl.create (Array.length trace) in
    Array.iter (fun (a : Action.t) -> Hashtbl.replace by_seq a.seq a) trace;
    let c =
      {
        nthreads = exec.Execution.nthreads;
        trace;
        by_seq;
        edges;
        acv = Hashtbl.create (Array.length trace);
        heads = Hashtbl.create 64;
        last_rel_fence = Hashtbl.create 64;
        violations = [];
      }
    in
    (* F^rel tracking: remember, for every store, its thread's most recent
       release fence at the moment the store executed. *)
    let last_rel = Hashtbl.create 8 in
    Array.iter
      (fun (a : Action.t) ->
        match a.kind with
        | Action.Fence ->
          if Memorder.is_release a.mo then Hashtbl.replace last_rel a.tid a
        | Action.Store | Action.Rmw -> (
          match Hashtbl.find_opt last_rel a.tid with
          | Some f -> Hashtbl.replace c.last_rel_fence a.seq f
          | None -> ())
        | Action.Load | Action.Na_store -> ())
      trace;
    check_sync_wf c;
    build_hb c;
    check_hb_irreflexive c;
    let hb_pairs = check_hb_differential c in
    check_rf_wf c;
    let graph = exec.Execution.graph in
    let graph_exact = exec.Execution.pruned_count = 0 in
    (* group actions by location (fences excluded: loc = -1) *)
    let by_loc = Hashtbl.create 16 in
    Array.iter
      (fun (a : Action.t) ->
        if a.loc >= 0 then
          Hashtbl.replace by_loc a.loc
            (a :: (try Hashtbl.find by_loc a.loc with Not_found -> [])))
      trace;
    let locs =
      Hashtbl.fold (fun loc acts l -> (loc, List.rev acts) :: l) by_loc []
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    in
    List.iter
      (fun (loc, acts) ->
        let writes, reach =
          check_location c ~graph ~graph_exact ~loc acts
        in
        if graph_exact then check_theorem1 c ~graph ~loc writes reach)
      locs;
    check_rmw_atomicity c ~graph;
    let sc_actions = check_sc c in
    match List.rev c.violations with
    | [] ->
      Certified
        {
          actions = Array.length trace;
          reads =
            Array.fold_left
              (fun n a -> if Action.is_read a then n + 1 else n)
              0 trace;
          writes =
            Array.fold_left
              (fun n a -> if Action.is_write a then n + 1 else n)
              0 trace;
          sc_actions;
          sync_edges = Array.length edges;
          hb_pairs;
          locations = List.length locs;
          graph_checked = graph_exact;
        }
    | vs -> Rejected vs
  end
