(* Axiomatic certification of recorded executions: an independent
   reconstruction of the declarative C11 fragment, cross-checked against
   both the trace itself and the engine's derived structures.  See
   check.mli for the axiom inventory and the scope notes. *)

type axiom =
  | Hb_irreflexivity
  | Hb_differential
  | Rf_wf
  | Coherence
  | Rmw_atomicity
  | Sc_order
  | Theorem1_differential
  | Sync_wf

type violation = { axiom : axiom; actions : int list; detail : string }

type stats = {
  actions : int;
  reads : int;
  writes : int;
  sc_actions : int;
  sync_edges : int;
  hb_pairs : int;
  locations : int;
  graph_checked : bool;
}

type verdict =
  | Certified of stats
  | Rejected of violation list
  | Not_applicable of string

let axiom_name = function
  | Hb_irreflexivity -> "hb-irreflexivity"
  | Hb_differential -> "hb-differential"
  | Rf_wf -> "rf-wf"
  | Coherence -> "coherence"
  | Rmw_atomicity -> "rmw-atomicity"
  | Sc_order -> "sc-order"
  | Theorem1_differential -> "theorem1-differential"
  | Sync_wf -> "sync-wf"

(* Violation details embed sequence numbers as ["#<digits>"]; the dedup
   key strips those digit runs so the same model bug found under
   different seeds collapses to one key, while location names and the
   shape of the explanation survive. *)
let violation_key v =
  let b = Buffer.create 64 in
  Buffer.add_string b (axiom_name v.axiom);
  Buffer.add_char b ':';
  let s = v.detail in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    Buffer.add_char b c;
    incr i;
    if c = '#' then
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
  done;
  Buffer.contents b

(* One seed-stable key for a whole rejection: the distinct violation keys,
   sorted and joined.  Two executions rejected for the same set of model
   bugs — under different seeds, programs or job counts — collapse to the
   same key; the fuzzer uses this as its finding identity. *)
(* The dominant key, not a join of all of them: one engine bug usually
   trips several axioms at once (a dropped mo edge fails CoWW and the
   Theorem 1 differential, on however many locations the program has),
   and keying on the combination would count every subset as a distinct
   finding. *)
let rejection_key vs =
  match List.sort compare (List.map violation_key vs) with
  | [] -> "none"
  | k :: _ -> k

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s (actions:%a)" (axiom_name v.axiom) v.detail
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       (fun fmt s -> Format.fprintf fmt " #%d" s))
    v.actions

let pp_verdict fmt = function
  | Certified s ->
    Format.fprintf fmt
      "certified: %d actions (%d reads, %d writes, %d sc), %d sync edges, \
       %d locations, %d hb pairs%s"
      s.actions s.reads s.writes s.sc_actions s.sync_edges s.locations
      s.hb_pairs
      (if s.graph_checked then "" else " [mo-graph checks skipped: pruned]")
  | Rejected vs ->
    Format.fprintf fmt "@[<v>REJECTED (%d violations):@ %a@]" (List.length vs)
      (Format.pp_print_list pp_violation)
      vs
  | Not_applicable why -> Format.fprintf fmt "not applicable: %s" why

let violation_to_json v =
  Jsonx.Obj
    [
      ("axiom", Jsonx.String (axiom_name v.axiom));
      ("actions", Jsonx.List (List.map (fun s -> Jsonx.Int s) v.actions));
      ("detail", Jsonx.String v.detail);
      ("key", Jsonx.String (violation_key v));
    ]

let verdict_to_json = function
  | Certified s ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "certified");
        ("actions", Jsonx.Int s.actions);
        ("reads", Jsonx.Int s.reads);
        ("writes", Jsonx.Int s.writes);
        ("sc_actions", Jsonx.Int s.sc_actions);
        ("sync_edges", Jsonx.Int s.sync_edges);
        ("hb_pairs", Jsonx.Int s.hb_pairs);
        ("locations", Jsonx.Int s.locations);
        ("graph_checked", Jsonx.Bool s.graph_checked);
      ]
  | Rejected vs ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "rejected");
        ("violations", Jsonx.List (List.map violation_to_json vs));
      ]
  | Not_applicable why ->
    Jsonx.Obj
      [
        ("verdict", Jsonx.String "not-applicable");
        ("reason", Jsonx.String why);
      ]

(* ------------------------------------------------------------------ *)
(* Certified happens-before.

   hb = (sb ∪ sw)⁺ is computed with plain integer timelines, never with
   the engine's Clockvec: each thread carries an int array clock (slot u =
   newest event of thread u known to happen before "here"), grown by
   replaying the trace and the recorded synchronisation edges in global
   sequence order.  Delayed fence synchronisation mirrors the memory
   model: a non-acquire read banks the release sequence it observed in a
   pending buffer that only an acquire fence publishes into the thread
   clock.  The certified clock of every action is snapshotted so hb
   queries are O(1) afterwards. *)

type cert = {
  nthreads : int;
  trace : Action.t array;  (** global sequence order *)
  by_seq : (int, Action.t) Hashtbl.t;
  edges : Execution.sync_edge array;
  acv : (int, int array) Hashtbl.t;  (** action seq -> certified clock *)
  heads : (int, Action.t list) Hashtbl.t;
      (** store seq -> release-sequence heads (C++20) *)
  last_rel_fence : (int, Action.t) Hashtbl.t;
      (** store seq -> the release fence feeding its thread's F^rel *)
  mutable violations : violation list;  (** newest first *)
}

let add_violation c axiom actions detail =
  c.violations <- { axiom; actions; detail } :: c.violations

(* Per-violation-family cap: a single systematic model bug would otherwise
   flood the report with one violation per pair. *)
let cap = 8

(* Release-sequence heads of a store, mirroring the reads-from clock
   construction of Figure 9 exactly but in terms of events:
   - a release store heads its own sequence;
   - a relaxed store's sequence is headed by its thread's last release
     fence, if any (F^rel);
   - an RMW extends the sequence of the store it read (C++20: only RMWs
     continue a release sequence) and may add its own head;
   - a non-atomic store never heads or continues a sequence. *)
let rec heads_of c (s : Action.t) =
  match Hashtbl.find_opt c.heads s.seq with
  | Some hs -> hs
  | None ->
    let own =
      if Memorder.is_release s.mo then [ s ]
      else
        match Hashtbl.find_opt c.last_rel_fence s.seq with
        | Some f -> [ f ]
        | None -> []
    in
    let hs =
      match s.kind with
      | Action.Rmw -> (
        match s.rf with
        | Some prev when prev.seq < s.seq -> own @ heads_of c prev
        | Some _ | None -> own)
      | Action.Store -> own
      | Action.Na_store | Action.Load | Action.Fence -> []
    in
    Hashtbl.replace c.heads s.seq hs;
    hs

(* Events of the forward pass, ordered by (seq, rank): a sync edge
   snapshots its source thread's clock when the global order passes its
   release event and merges it into the target when it passes its acquire
   event.  Thread-start edges (to_seq = 0) apply immediately after their
   own snapshot — the child has no events before that point. *)
type ev =
  | Apply of int  (** edge index, at to_seq, rank 0 *)
  | Act of Action.t  (** rank 1 *)
  | Snap of int  (** edge index, at from_seq, rank 2 *)
  | Apply_start of int  (** edge index, at from_seq, rank 3 *)

let ev_pos edges = function
  | Apply i -> ((edges.(i) : Execution.sync_edge).se_to_seq, 0)
  | Act a -> (a.Action.seq, 1)
  | Snap i -> (edges.(i).Execution.se_from_seq, 2)
  | Apply_start i -> (edges.(i).Execution.se_from_seq, 3)

let merge_into dst src =
  let n = Array.length src in
  for i = 0 to n - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let build_hb c =
  let nt = c.nthreads in
  let clocks = Array.init nt (fun _ -> Array.make nt 0) in
  let pending = Array.init nt (fun _ -> Array.make nt 0) in
  let snaps = Array.make (Array.length c.edges) [||] in
  let events =
    Array.append
      (Array.map (fun a -> Act a) c.trace)
      (Array.concat
         (Array.to_list
            (Array.mapi
               (fun i (e : Execution.sync_edge) ->
                 if e.se_to_seq = 0 then [| Snap i; Apply_start i |]
                 else [| Snap i; Apply i |])
               c.edges)))
  in
  Array.sort (fun a b -> compare (ev_pos c.edges a) (ev_pos c.edges b)) events;
  let in_range tid = tid >= 0 && tid < nt in
  Array.iter
    (fun ev ->
      match ev with
      | Snap i ->
        let e = c.edges.(i) in
        if in_range e.se_from_tid then begin
          let s = Array.copy clocks.(e.se_from_tid) in
          if e.se_from_seq > s.(e.se_from_tid) then
            s.(e.se_from_tid) <- e.se_from_seq;
          snaps.(i) <- s
        end
      | Apply i | Apply_start i ->
        let e = c.edges.(i) in
        if in_range e.se_to_tid && Array.length snaps.(i) > 0 then begin
          merge_into clocks.(e.se_to_tid) snaps.(i);
          if e.se_to_seq > clocks.(e.se_to_tid).(e.se_to_tid) then
            clocks.(e.se_to_tid).(e.se_to_tid) <- e.se_to_seq
        end
      | Act a ->
        let tid = a.Action.tid in
        if in_range tid then begin
          let cl = clocks.(tid) in
          cl.(tid) <- a.seq;
          (match a.kind with
          | Action.Load | Action.Rmw -> (
            match a.rf with
            | Some s when s.seq < a.seq ->
              let dst = if Memorder.is_acquire a.mo then cl else pending.(tid) in
              List.iter
                (fun (h : Action.t) ->
                  match Hashtbl.find_opt c.acv h.seq with
                  | Some hc -> merge_into dst hc
                  | None -> ())
                (heads_of c s)
            | Some _ | None -> ())
          | Action.Fence ->
            if Memorder.is_acquire a.mo then merge_into cl pending.(tid)
          | Action.Store | Action.Na_store -> ());
          Hashtbl.replace c.acv a.seq (Array.copy cl)
        end)
    events

(* Strict certified happens-before between two trace actions, mirroring
   {!Action.happens_before}'s contract (an action does not happen before
   itself). *)
let cert_hb c (a : Action.t) (b : Action.t) =
  a.seq <> b.seq
  &&
  match Hashtbl.find_opt c.acv b.seq with
  | Some bc -> a.tid < Array.length bc && bc.(a.tid) >= a.seq
  | None -> false

(* ------------------------------------------------------------------ *)
(* Axiom checks *)

let check_sync_wf c =
  let count = ref 0 in
  Array.iter
    (fun (e : Execution.sync_edge) ->
      if !count < cap then
        if
          e.se_from_tid < 0
          || e.se_from_tid >= c.nthreads
          || e.se_to_tid < 0
          || e.se_to_tid >= c.nthreads
          || e.se_from_seq <= 0
          || (e.se_to_seq <> 0 && e.se_to_seq <= e.se_from_seq)
        then begin
          incr count;
          add_violation c Sync_wf []
            (Printf.sprintf
               "malformed sync edge t%d@#%d -> t%d@#%d (tids in [0,%d), \
                release must precede acquire)"
               e.se_from_tid e.se_from_seq e.se_to_tid e.se_to_seq c.nthreads)
        end)
    c.edges

let check_hb_irreflexive c =
  let count = ref 0 in
  Array.iter
    (fun (a : Action.t) ->
      if !count < cap then
        match Hashtbl.find_opt c.acv a.seq with
        | Some ac ->
          (* the action's own slot is its own seq by construction; a
             foreign slot at or above this action's seq means an edge ran
             backwards in time *)
          Array.iteri
            (fun u v ->
              if u <> a.tid && v >= a.seq && !count < cap then begin
                incr count;
                add_violation c Hb_irreflexivity [ a.seq ]
                  (Printf.sprintf
                     "action #%d's certified clock covers t%d@#%d, which \
                      does not precede it"
                     a.seq u v)
              end)
            ac
        | None ->
          incr count;
          add_violation c Hb_irreflexivity [ a.seq ]
            (Printf.sprintf "action #%d has no certified clock" a.seq))
    c.trace

let check_hb_differential c =
  let n = Array.length c.trace in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && !count < cap then begin
        let a = c.trace.(i) and b = c.trace.(j) in
        let certified = cert_hb c a b in
        let operational = Action.happens_before a b in
        if certified <> operational then begin
          incr count;
          add_violation c Hb_differential [ a.seq; b.seq ]
            (Printf.sprintf
               "#%d -hb-> #%d is %b under the certified (sb ∪ sw)⁺ closure \
                but %b under the engine's clock vectors"
               a.seq b.seq certified operational)
        end
      end
    done
  done;
  n * (n - 1)

let check_rf_wf c =
  let count = ref 0 in
  Array.iter
    (fun (r : Action.t) ->
      if Action.is_read r && !count < cap then
        match r.rf with
        | None ->
          incr count;
          add_violation c Rf_wf [ r.seq ]
            (Printf.sprintf "read #%d of loc %d has no reads-from store"
               r.seq r.loc)
        | Some s ->
          let fail msg =
            incr count;
            add_violation c Rf_wf [ r.seq; s.seq ] msg
          in
          if not (Hashtbl.mem c.by_seq s.seq) then
            fail
              (Printf.sprintf "read #%d reads-from #%d, not in the trace"
                 r.seq s.seq)
          else if not (Action.is_write s) then
            fail
              (Printf.sprintf "read #%d reads-from #%d, which is not a write"
                 r.seq s.seq)
          else if s.loc <> r.loc then
            fail
              (Printf.sprintf
                 "read #%d of loc %d reads-from #%d of loc %d" r.seq r.loc
                 s.seq s.loc)
          else if s.seq >= r.seq then
            fail
              (Printf.sprintf
                 "read #%d reads-from #%d, which executes after it" r.seq
                 s.seq)
          else if r.kind = Action.Load && r.value <> s.value then
            fail
              (Printf.sprintf
                 "load #%d returned %d but its reads-from store #%d wrote %d"
                 r.seq r.value s.seq s.value))
    c.trace

(* Reachability over the final mo-graph by explicit search (edges + rmw
   links), never by clock vectors: one traversal per write, collecting the
   same-location writes it reaches.  [reach] maps a live write's seq to
   the seq set of its same-location mo-successors. *)
let graph_reach graph (writes : Action.t list) =
  let target = Hashtbl.create 16 in
  List.iter (fun (w : Action.t) -> Hashtbl.replace target w.seq ()) writes;
  let reach = Hashtbl.create 16 in
  List.iter
    (fun (w : Action.t) ->
      match Mograph.find_node graph w with
      | None -> ()
      | Some start ->
        let found = Hashtbl.create 16 in
        let visited = Hashtbl.create 64 in
        let rec go (n : Mograph.node) =
          if not (Hashtbl.mem visited n.action.seq) then begin
            Hashtbl.add visited n.action.seq ();
            if n.action.seq <> w.seq && Hashtbl.mem target n.action.seq then
              Hashtbl.replace found n.action.seq ();
            for i = 0 to n.nedges - 1 do
              go n.edges.(i)
            done;
            match n.rmw with Some r -> go r | None -> ()
          end
        in
        go start;
        Hashtbl.replace reach w.seq found)
    writes;
  reach

let mo_dfs reach (a : Action.t) (b : Action.t) =
  match Hashtbl.find_opt reach a.seq with
  | Some found -> Hashtbl.mem found b.seq
  | None -> false

(* Per-location coherence: acyclicity of hb|loc ∪ rf ∪ mo ∪ fr over the
   location's actions, plus — when the graph is exact (nothing pruned) —
   the completeness obligations CoWW and CoWR that catch a dropped mo
   edge (a merely missing edge never creates a cycle). *)
let check_location c ~graph ~graph_exact ~loc (acts : Action.t list) =
  let writes = List.filter Action.is_write acts in
  let reach = graph_reach graph writes in
  let live w = Mograph.find_node graph w <> None in
  (* adjacency for the union relation *)
  let adj = Hashtbl.create 32 in
  let add_edge a b =
    let l = try Hashtbl.find adj a with Not_found -> [] in
    Hashtbl.replace adj a (b :: l)
  in
  List.iter
    (fun (a : Action.t) ->
      List.iter
        (fun (b : Action.t) ->
          if a.seq <> b.seq then begin
            if cert_hb c a b then add_edge a.seq b.seq;
            if Action.is_write a && Action.is_write b && mo_dfs reach a b then
              add_edge a.seq b.seq
          end)
        acts;
      (if Action.is_read a then
         match a.rf with
         | Some s when s.loc = a.loc ->
           add_edge s.seq a.seq;
           (* fr = rf⁻¹ ; mo *)
           List.iter
             (fun (w : Action.t) ->
               if w.seq <> s.seq && w.seq <> a.seq && mo_dfs reach s w then
                 add_edge a.seq w.seq)
             writes
         | Some _ | None -> ()))
    acts;
  (* cycle detection with path extraction *)
  let color = Hashtbl.create 32 in
  let cycle = ref None in
  let rec visit path seq =
    if !cycle = None then
      match Hashtbl.find_opt color seq with
      | Some 1 ->
        let rec cut = function
          | [] -> [ seq ]
          | x :: rest -> if x = seq then [ x ] else x :: cut rest
        in
        cycle := Some (seq :: List.rev (cut path))
      | Some _ -> ()
      | None ->
        Hashtbl.add color seq 1;
        List.iter (visit (seq :: path))
          (try Hashtbl.find adj seq with Not_found -> []);
        Hashtbl.replace color seq 2
  in
  List.iter (fun (a : Action.t) -> visit [] a.seq) acts;
  (match !cycle with
  | Some cyc ->
    add_violation c Coherence cyc
      (Printf.sprintf
         "loc %d: hb|loc ∪ rf ∪ mo ∪ fr has a cycle through %d actions" loc
         (List.length cyc - 1))
  | None -> ());
  if graph_exact then begin
    let count = ref 0 in
    (* CoWW: hb-ordered same-location writes must be mo-ordered *)
    List.iter
      (fun (a : Action.t) ->
        List.iter
          (fun (b : Action.t) ->
            if
              !count < cap && a.seq <> b.seq && live a && live b
              && cert_hb c a b
              && not (mo_dfs reach a b)
            then begin
              incr count;
              add_violation c Coherence [ a.seq; b.seq ]
                (Printf.sprintf
                   "loc %d: CoWW incomplete — write #%d happens before \
                    write #%d but is not mo-before it"
                   loc a.seq b.seq)
            end)
          writes)
      writes;
    (* CoWR: a write hb-visible to a read must be mo-before the write the
       read actually observed *)
    List.iter
      (fun (r : Action.t) ->
        if Action.is_read r then
          match r.rf with
          | Some s when s.loc = r.loc && live s ->
            List.iter
              (fun (w : Action.t) ->
                if
                  !count < cap && w.seq <> s.seq && w.seq <> r.seq && live w
                  && cert_hb c w r
                  && not (mo_dfs reach w s)
                then begin
                  incr count;
                  add_violation c Coherence [ w.seq; r.seq; s.seq ]
                    (Printf.sprintf
                       "loc %d: CoWR incomplete — write #%d happens before \
                        read #%d but is not mo-before its store #%d"
                       loc w.seq r.seq s.seq)
                end)
              writes
          | Some _ | None -> ())
      acts
  end;
  (writes, reach)

let check_rmw_atomicity c ~graph =
  let claimed = Hashtbl.create 8 in
  let count = ref 0 in
  Array.iter
    (fun (r : Action.t) ->
      if r.kind = Action.Rmw && !count < cap then
        match r.rf with
        | None -> () (* already an rf-wf violation *)
        | Some s ->
          (match Hashtbl.find_opt claimed s.seq with
          | Some other ->
            incr count;
            add_violation c Rmw_atomicity [ s.seq; other; r.seq ]
              (Printf.sprintf
                 "store #%d is read by two RMWs, #%d and #%d" s.seq other
                 r.seq)
          | None -> Hashtbl.replace claimed s.seq r.seq);
          (match (Mograph.find_node graph s, Mograph.find_node graph r) with
          | Some ns, Some nr ->
            let immediate =
              match ns.Mograph.rmw with Some x -> x == nr | None -> false
            in
            if not immediate then begin
              incr count;
              add_violation c Rmw_atomicity [ s.seq; r.seq ]
                (Printf.sprintf
                   "rmw #%d reads-from #%d but does not immediately \
                    mo-follow it"
                   r.seq s.seq)
            end
          | _ -> () (* a pruned end of the pair: immediacy unobservable *)))
    c.trace

let check_sc c =
  let sc =
    Array.to_list c.trace
    |> List.filter (fun (a : Action.t) -> Memorder.is_seq_cst a.mo)
  in
  let count = ref 0 in
  (* The total sc order is execution order restricted to sc actions; it
     must be consistent with certified hb. *)
  let rec pairs = function
    | [] -> ()
    | (a : Action.t) :: rest ->
      List.iter
        (fun (b : Action.t) ->
          if !count < cap && cert_hb c b a then begin
            incr count;
            add_violation c Sc_order [ a.seq; b.seq ]
              (Printf.sprintf
                 "sc order places #%d before #%d but #%d happens before #%d"
                 a.seq b.seq b.seq a.seq)
          end)
        rest;
      pairs rest
  in
  pairs sc;
  (* Section 29.3 statement 3: an sc read observes the last sc store to
     its location, or a store that neither sc-precedes it nor happens
     before it. *)
  List.iter
    (fun (r : Action.t) ->
      if Action.is_read r && !count < cap then
        match r.rf with
        | None -> ()
        | Some x ->
          let last_sc =
            List.fold_left
              (fun acc (s : Action.t) ->
                if Action.is_write s && s.loc = r.loc && s.seq < r.seq then
                  Some s
                else acc)
              None sc
          in
          (match last_sc with
          | Some s when x.seq <> s.seq ->
            if
              (Memorder.is_seq_cst x.mo && x.seq < s.seq) || cert_hb c x s
            then begin
              incr count;
              add_violation c Sc_order [ r.seq; x.seq; s.seq ]
                (Printf.sprintf
                   "sc read #%d observes #%d, hidden behind the last sc \
                    store #%d to loc %d"
                   r.seq x.seq s.seq r.loc)
            end
          | Some _ | None -> ()))
    sc;
  List.length sc

(* Theorem 1 differential: on the final (unpruned) graph, the engine's
   O(threads) clock-vector reachability must agree with explicit search
   for every live same-location write pair. *)
let check_theorem1 c ~graph ~loc (writes : Action.t list) reach =
  let count = ref 0 in
  List.iter
    (fun (a : Action.t) ->
      List.iter
        (fun (b : Action.t) ->
          if
            !count < cap && a.seq <> b.seq
            && Mograph.find_node graph a <> None
            && Mograph.find_node graph b <> None
          then begin
            let cv = Mograph.reaches graph a b in
            let dfs = mo_dfs reach a b in
            if cv <> dfs then begin
              incr count;
              add_violation c Theorem1_differential [ a.seq; b.seq ]
                (Printf.sprintf
                   "loc %d: #%d reaches #%d is %b by clock vectors but %b \
                    by graph search"
                   loc a.seq b.seq cv dfs)
            end
          end)
        writes)
    writes

(* ------------------------------------------------------------------ *)

let na_total_mo =
  "Total_mo executions use 2011 release sequences, outside the certified \
   fragment"

let certify (exec : Execution.t) =
  if not (exec.Execution.cert_on && exec.Execution.cert_record) then
    Not_applicable "execution was not recorded for certification"
  else if exec.Execution.mode <> Execution.Full_c11 then
    Not_applicable na_total_mo
  else begin
    let trace = Array.of_list (Execution.cert_trace exec) in
    let edges = Array.of_list (Execution.cert_sync_edges exec) in
    let by_seq = Hashtbl.create (Array.length trace) in
    Array.iter (fun (a : Action.t) -> Hashtbl.replace by_seq a.seq a) trace;
    let c =
      {
        nthreads = exec.Execution.nthreads;
        trace;
        by_seq;
        edges;
        acv = Hashtbl.create (Array.length trace);
        heads = Hashtbl.create 64;
        last_rel_fence = Hashtbl.create 64;
        violations = [];
      }
    in
    (* F^rel tracking: remember, for every store, its thread's most recent
       release fence at the moment the store executed. *)
    let last_rel = Hashtbl.create 8 in
    Array.iter
      (fun (a : Action.t) ->
        match a.kind with
        | Action.Fence ->
          if Memorder.is_release a.mo then Hashtbl.replace last_rel a.tid a
        | Action.Store | Action.Rmw -> (
          match Hashtbl.find_opt last_rel a.tid with
          | Some f -> Hashtbl.replace c.last_rel_fence a.seq f
          | None -> ())
        | Action.Load | Action.Na_store -> ())
      trace;
    check_sync_wf c;
    build_hb c;
    check_hb_irreflexive c;
    let hb_pairs = check_hb_differential c in
    check_rf_wf c;
    let graph = exec.Execution.graph in
    let graph_exact = exec.Execution.pruned_count = 0 in
    (* group actions by location (fences excluded: loc = -1) *)
    let by_loc = Hashtbl.create 16 in
    Array.iter
      (fun (a : Action.t) ->
        if a.loc >= 0 then
          Hashtbl.replace by_loc a.loc
            (a :: (try Hashtbl.find by_loc a.loc with Not_found -> [])))
      trace;
    let locs =
      Hashtbl.fold (fun loc acts l -> (loc, List.rev acts) :: l) by_loc []
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    in
    List.iter
      (fun (loc, acts) ->
        let writes, reach =
          check_location c ~graph ~graph_exact ~loc acts
        in
        if graph_exact then check_theorem1 c ~graph ~loc writes reach)
      locs;
    check_rmw_atomicity c ~graph;
    let sc_actions = check_sc c in
    match List.rev c.violations with
    | [] ->
      Certified
        {
          actions = Array.length trace;
          reads =
            Array.fold_left
              (fun n a -> if Action.is_read a then n + 1 else n)
              0 trace;
          writes =
            Array.fold_left
              (fun n a -> if Action.is_write a then n + 1 else n)
              0 trace;
          sc_actions;
          sync_edges = Array.length edges;
          hb_pairs;
          locations = List.length locs;
          graph_checked = graph_exact;
        }
    | vs -> Rejected vs
  end

(* ------------------------------------------------------------------ *)
(* Streaming incremental certification.

   The post-hoc certifier above rebuilds everything from the complete
   retained trace — an O(n²)-ish pass that caps execution size.  The
   stream below consumes the same inputs *as the execution produces
   them* (via an [Execution.cert_sink]), maintains the certified clock
   replica incrementally, runs the per-action axiom checks online, and
   — the point of the exercise — *retires* actions whose every future
   obligation is provably discharged, freeing their window storage so
   certification memory is bounded by the live window, not the run
   length.

   Equivalence with [certify] (checked by the QCheck differential in the
   test suite, key-level on rejections, bit-level on certified stats):

   - The certified clocks are replayed in arrival order, which coincides
     with the post-hoc (seq, rank) event order because every release
     point is announced (and snapshotted) at the instant the engine
     passes it — [cs_release] plays the role of the post-hoc [Snap]
     event, eagerly.
   - Backward hb pairs (later action as source) can never produce a
     differential violation — every clock entry is bounded by the seq of
     the event that wrote it — so checking each new action against the
     live window covers exactly the pairs the post-hoc double loop does.
   - An action retires only when (a) the certified and operational
     clocks of every live thread *agree* on whether they cover it — so
     no future snapshot can disagree about it either (merges only
     propagate existing coverage), (b) it is not a release-sequence head
     of an unretired store, (c) a write is additionally unreadable (a
     newer same-cell store is covered by every runnable thread's engine
     clock) and cv-mo-before every still-readable same-location store —
     which discharges its CoWW/CoWR obligations against all future
     actions, because a future write's prior set always contains a cover
     of it, and (d) no coherence obligation is pending anywhere (a
     pending obligation — a window pair whose mo edge [Mograph.reaches]
     cannot yet confirm — pauses retirement wholesale, so a dropped mo
     edge freezes the window into the full trace and finalize degenerates
     to the exact post-hoc per-location checks).
   - Mo-graph-dependent families (coherence cycle, CoWW/CoWR residue,
     Theorem 1) run at [finalize] with the *same* code as the post-hoc
     pass, over the unretired window; retired actions are exactly those
     proven unable to participate in a violation.

   Known, deliberate divergence: a synthetically corrupted trace whose
   read names a *future* store is reported as "not in the trace" here
   but "executes after" post-hoc; the real engine (and its seeded
   mutants) never produces such an rf.  Violation *keys* still differ
   only in stripped digits. *)

module Stream = struct
  type tstate = {
    mutable cl : int array;  (* certified clock replica, grown on demand *)
    mutable pend : int array;  (* pending acquire-fence buffer *)
    mutable relf_cv : int array option;
        (* the certified clock of this thread's last release fence (F^rel),
           copied at the fence so the fence itself can retire *)
  }

  (* A window coherence pair whose mo edge isn't (yet) confirmed by
     clock-vector reachability: retirement pauses until it discharges. *)
  type oblig = { o_src : Action.t; o_dst : Action.t }

  (* Live writes of one location by one thread, ascending by seq: the
     feed-time completeness checks and the retirement barrier only ever
     ask for "the newest write at or below a bound", so cells are arrays
     binary-searched in O(log n) — a list walk from the newest end is
     O(window) for a bound that trails far behind (a spinning thread's
     relaxed stores as seen by everyone else). *)
  type cell = { mutable cws : Action.t array; mutable cn : int }

  type lstate = {
    mutable l_acts_rev : Action.t list;  (* live window actions, newest first *)
    l_cells : (int, cell) Hashtbl.t;
    mutable l_last_sc_w : Action.t option;  (* pinned: 29.3/3 witness *)
    mutable l_barrier : int array;
        (* per cell tid: newest store seq covered by every runnable
           thread's engine clock (monotone); strictly older same-cell
           stores are unreadable forever *)
  }

  type t = {
    exec : Execution.t;
    counted : int -> bool;
        (* thread contributes to the readability frontier: live and not
           parked on an unconditional acquire (join / held mutex) *)
    mutable nthreads : int;
    mutable ts : tstate array;
    acv : (int, int array) Hashtbl.t;
    rel_cv : (int, int array) Hashtbl.t;
        (* store seq -> pre-merged release clock: the union of the
           certified clocks of the store's release-sequence heads.  The
           post-hoc pass merges acv(h) per head at each read; the union
           is associative and each acv(h) is fixed at h's feed, so
           folding it store-by-store (own head ∪ predecessor's clock
           along the RMW chain) reads back identically — and unlike a
           head list it pins nothing: an RMW chain would otherwise keep
           every head back to the chain start unretirable. *)
    rel_snaps : (int, int array) Hashtbl.t;  (* release seq -> snapshot *)
    claimed : (int, int) Hashtbl.t;  (* store seq -> claiming rmw seq *)
    by_loc : (int, lstate) Hashtbl.t;
    mutable live : Action.t list;  (* global window, newest first *)
    mutable obligs : oblig list;
    mutable fed : Bytes.t;  (* bitset over seqs: action membership *)
    (* online violation buckets, newest first, post-hoc family caps *)
    mutable v_sync : violation list;
    mutable c_sync : int;
    mutable v_irr : violation list;
    mutable c_irr : int;
    mutable v_diff : violation list;
    mutable c_diff : int;
    mutable v_rf : violation list;
    mutable c_rf : int;
    mutable v_rmw : (violation * (Action.t * Action.t) option) list;
        (* [Some (store, rmw)]: immediacy candidate, re-probed against the
           final graph at finalize (a pruned end drops it, as post-hoc) *)
    mutable c_rmw : int;
    mutable v_sc_pair : violation list;
    mutable v_sc_read : violation list;
    mutable c_sc : int;
    mutable max_cv_entry : int;  (* sc backward-pair scan guard *)
    mutable n_actions : int;
    mutable n_reads : int;
    mutable n_writes : int;
    mutable n_sc : int;
    mutable n_edges : int;
    mutable n_retired : int;
    mutable frozen : bool;  (* any violation: retirement halts for good *)
    mutable finalized : verdict option;
  }

  let mk_tstate () = { cl = [||]; pend = [||]; relf_cv = None }

  let create ~exec ~counted =
    {
      exec;
      counted;
      nthreads = 0;
      ts = [||];
      acv = Hashtbl.create 4096;
      rel_cv = Hashtbl.create 1024;
      rel_snaps = Hashtbl.create 64;
      claimed = Hashtbl.create 256;
      by_loc = Hashtbl.create 64;
      live = [];
      obligs = [];
      fed = Bytes.create 1024;
      v_sync = [];
      c_sync = 0;
      v_irr = [];
      c_irr = 0;
      v_diff = [];
      c_diff = 0;
      v_rf = [];
      c_rf = 0;
      v_rmw = [];
      c_rmw = 0;
      v_sc_pair = [];
      v_sc_read = [];
      c_sc = 0;
      max_cv_entry = 0;
      n_actions = 0;
      n_reads = 0;
      n_writes = 0;
      n_sc = 0;
      n_edges = 0;
      n_retired = 0;
      frozen = false;
      finalized = None;
    }

  let certified_ops s = s.n_actions
  let retired_ops s = s.n_retired
  let anomalous s = s.frozen || s.obligs <> []

  (* growable int arrays, zero-filled: a short array reads as 0s, exactly
     like the post-hoc fixed-width clocks *)
  let grown arr n =
    let len = Array.length arr in
    if len >= n then arr
    else begin
      let a = Array.make (max n ((2 * len) + 4)) 0 in
      Array.blit arr 0 a 0 len;
      a
    end

  let sget arr u = if u < Array.length arr then arr.(u) else 0

  let merge_grow dst src =
    let d = grown dst (Array.length src) in
    merge_into d src;
    d

  let ensure_tid s tid =
    if tid >= s.nthreads then begin
      let n = tid + 1 in
      let ts = Array.make n (mk_tstate ()) in
      Array.blit s.ts 0 ts 0 s.nthreads;
      for i = s.nthreads to n - 1 do
        ts.(i) <- mk_tstate ()
      done;
      s.ts <- ts;
      s.nthreads <- n
    end

  let mark_fed s seq =
    let byte = seq lsr 3 in
    if byte >= Bytes.length s.fed then begin
      let b = Bytes.make (max (byte + 1) (2 * Bytes.length s.fed)) '\000' in
      Bytes.blit s.fed 0 b 0 (Bytes.length s.fed);
      s.fed <- b
    end;
    Bytes.set s.fed byte
      (Char.chr (Char.code (Bytes.get s.fed byte) lor (1 lsl (seq land 7))))

  let is_fed s seq =
    let byte = seq lsr 3 in
    byte < Bytes.length s.fed
    && Char.code (Bytes.get s.fed byte) land (1 lsl (seq land 7)) <> 0

  let lstate s loc =
    match Hashtbl.find_opt s.by_loc loc with
    | Some l -> l
    | None ->
      let l =
        {
          l_acts_rev = [];
          l_cells = Hashtbl.create 4;
          l_last_sc_w = None;
          l_barrier = [||];
        }
      in
      Hashtbl.replace s.by_loc loc l;
      l

  let cell_push c a =
    if c.cn = Array.length c.cws then begin
      let arr = Array.make (max 8 (2 * c.cn)) a in
      Array.blit c.cws 0 arr 0 c.cn;
      c.cws <- arr
    end;
    c.cws.(c.cn) <- a;
    c.cn <- c.cn + 1

  (* index of the newest write with seq <= bound, or -1 *)
  let cell_newest_le c bound =
    if c.cn = 0 || c.cws.(0).Action.seq > bound then -1
    else begin
      let lo = ref 0 and hi = ref (c.cn - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if c.cws.(mid).Action.seq <= bound then lo := mid else hi := mid - 1
      done;
      !lo
    end

  (* mo confirmation for a window pair; trusting Theorem 1 here is fine —
     the Theorem-1 differential still validates cv-vs-DFS agreement on
     the live residue at finalize. *)
  let mo_confirmed s (a : Action.t) (b : Action.t) =
    s.exec.Execution.pruned_count > 0
    ||
    let graph = s.exec.Execution.graph in
    match (Mograph.find_node graph a, Mograph.find_node graph b) with
    | Some _, Some _ -> Mograph.reaches graph a b
    | _ -> true (* a pruned end: the post-hoc completeness checks skip it *)

  let require_mo s src dst =
    if not (mo_confirmed s src dst) then
      s.obligs <- { o_src = src; o_dst = dst } :: s.obligs

  (* --- feeds ----------------------------------------------------- *)

  let feed_release s ~tid ~seq =
    ensure_tid s tid;
    let snap = Array.copy s.ts.(tid).cl in
    let snap = grown snap (tid + 1) in
    if seq > snap.(tid) then snap.(tid) <- seq;
    if seq > s.max_cv_entry then s.max_cv_entry <- seq;
    Hashtbl.replace s.rel_snaps seq snap

  let feed_release_drop s ~seq = Hashtbl.remove s.rel_snaps seq

  let feed_edge s (e : Execution.sync_edge) =
    s.n_edges <- s.n_edges + 1;
    let nt = s.exec.Execution.nthreads in
    if s.c_sync < cap then
      if
        e.se_from_tid < 0 || e.se_from_tid >= nt || e.se_to_tid < 0
        || e.se_to_tid >= nt || e.se_from_seq <= 0
        || (e.se_to_seq <> 0 && e.se_to_seq <= e.se_from_seq)
      then begin
        s.c_sync <- s.c_sync + 1;
        s.v_sync <-
          {
            axiom = Sync_wf;
            actions = [];
            detail =
              Printf.sprintf
                "malformed sync edge t%d@#%d -> t%d@#%d (tids in [0,%d), \
                 release must precede acquire)"
                e.se_from_tid e.se_from_seq e.se_to_tid e.se_to_seq nt;
          }
          :: s.v_sync;
        s.frozen <- true
      end;
    if e.se_to_tid >= 0 && e.se_to_tid < nt then begin
      ensure_tid s e.se_to_tid;
      match Hashtbl.find_opt s.rel_snaps e.se_from_seq with
      | Some snap ->
        let ts = s.ts.(e.se_to_tid) in
        ts.cl <- merge_grow ts.cl snap;
        let cl = grown ts.cl (e.se_to_tid + 1) in
        ts.cl <- cl;
        if e.se_to_seq > cl.(e.se_to_tid) then begin
          cl.(e.se_to_tid) <- e.se_to_seq;
          if e.se_to_seq > s.max_cv_entry then s.max_cv_entry <- e.se_to_seq
        end
      | None -> ()
    end

  let push_diff s (a_seq : int) (b_seq : int) certified operational =
    s.c_diff <- s.c_diff + 1;
    s.v_diff <-
      {
        axiom = Hb_differential;
        actions = [ a_seq; b_seq ];
        detail =
          Printf.sprintf
            "#%d -hb-> #%d is %b under the certified (sb ∪ sw)⁺ closure \
             but %b under the engine's clock vectors"
            a_seq b_seq certified operational;
      }
      :: s.v_diff;
    s.frozen <- true

  let check_action_online s (a : Action.t) snap ~pre_max =
    (* hb irreflexivity: a foreign slot at or above the action's seq *)
    Array.iteri
      (fun u v ->
        if u <> a.tid && v >= a.seq && s.c_irr < cap then begin
          s.c_irr <- s.c_irr + 1;
          s.v_irr <-
            {
              axiom = Hb_irreflexivity;
              actions = [ a.seq ];
              detail =
                Printf.sprintf
                  "action #%d's certified clock covers t%d@#%d, which does \
                   not precede it"
                  a.seq u v;
            }
            :: s.v_irr;
          s.frozen <- true
        end)
      snap;
    (* hb differential, forward pairs only: per-thread certified vs
       operational coverage; a mismatched slot is enumerated over the
       live window (empty in clean runs: the slots agree) *)
    for u = 0 to s.nthreads - 1 do
      if s.c_diff < cap then begin
        let cs = sget snap u and oc = Clockvec.get a.hb_cv u in
        if cs <> oc then begin
          s.frozen <- true;
          let lo = min cs oc and hi = max cs oc in
          List.iter
            (fun (x : Action.t) ->
              if
                s.c_diff < cap && x.tid = u && x.seq > lo && x.seq <= hi
                && x.seq <> a.seq
              then push_diff s x.seq a.seq (cs >= x.seq) (oc >= x.seq))
            s.live
        end
      end
    done;
    (* rf well-formedness *)
    (if Action.is_read a && s.c_rf < cap then
       let fail actions msg =
         s.c_rf <- s.c_rf + 1;
         s.v_rf <- { axiom = Rf_wf; actions; detail = msg } :: s.v_rf;
         s.frozen <- true
       in
       match a.rf with
       | None ->
         fail [ a.seq ]
           (Printf.sprintf "read #%d of loc %d has no reads-from store"
              a.seq a.loc)
       | Some st ->
         if not (is_fed s st.seq) then
           fail [ a.seq; st.seq ]
             (Printf.sprintf "read #%d reads-from #%d, not in the trace"
                a.seq st.seq)
         else if not (Action.is_write st) then
           fail [ a.seq; st.seq ]
             (Printf.sprintf "read #%d reads-from #%d, which is not a write"
                a.seq st.seq)
         else if st.loc <> a.loc then
           fail [ a.seq; st.seq ]
             (Printf.sprintf "read #%d of loc %d reads-from #%d of loc %d"
                a.seq a.loc st.seq st.loc)
         else if st.seq >= a.seq then
           fail [ a.seq; st.seq ]
             (Printf.sprintf
                "read #%d reads-from #%d, which executes after it" a.seq
                st.seq)
         else if a.kind = Action.Load && a.value <> st.value then
           fail [ a.seq; st.seq ]
             (Printf.sprintf
                "load #%d returned %d but its reads-from store #%d wrote %d"
                a.seq a.value st.seq st.value));
    (* rmw atomicity: double claim + mo immediacy (re-probed at finalize
       against the final graph, mirroring the post-hoc pruning skip) *)
    (if a.kind = Action.Rmw && s.c_rmw < cap then
       match a.rf with
       | None -> ()
       | Some st ->
         (match Hashtbl.find_opt s.claimed st.seq with
         | Some other ->
           s.c_rmw <- s.c_rmw + 1;
           s.v_rmw <-
             ( {
                 axiom = Rmw_atomicity;
                 actions = [ st.seq; other; a.seq ];
                 detail =
                   Printf.sprintf "store #%d is read by two RMWs, #%d and #%d"
                     st.seq other a.seq;
               },
               None )
             :: s.v_rmw;
           s.frozen <- true
         | None -> Hashtbl.replace s.claimed st.seq a.seq);
         let graph = s.exec.Execution.graph in
         (match (Mograph.find_node graph st, Mograph.find_node graph a) with
         | Some ns, Some nr ->
           let immediate =
             match ns.Mograph.rmw with Some x -> x == nr | None -> false
           in
           if not immediate then begin
             s.c_rmw <- s.c_rmw + 1;
             s.v_rmw <-
               ( {
                   axiom = Rmw_atomicity;
                   actions = [ st.seq; a.seq ];
                   detail =
                     Printf.sprintf
                       "rmw #%d reads-from #%d but does not immediately \
                        mo-follow it"
                       a.seq st.seq;
                 },
                 Some (st, a) )
               :: s.v_rmw;
             s.frozen <- true
           end
         | _ -> ()));
    (* sc order *)
    if Memorder.is_seq_cst a.mo then begin
      s.n_sc <- s.n_sc + 1;
      (* backward pairs: an earlier sc action whose snapshot covers this
         one.  Impossible unless some clock entry already reached this
         seq — the guard keeps clean runs O(1). *)
      if s.c_sc < cap && pre_max >= a.seq then
        List.iter
          (fun (x : Action.t) ->
            if Memorder.is_seq_cst x.mo && x.seq < a.seq && s.c_sc < cap then
              match Hashtbl.find_opt s.acv x.seq with
              | Some xc when sget xc a.tid >= a.seq ->
                s.c_sc <- s.c_sc + 1;
                s.v_sc_pair <-
                  {
                    axiom = Sc_order;
                    actions = [ x.seq; a.seq ];
                    detail =
                      Printf.sprintf
                        "sc order places #%d before #%d but #%d happens \
                         before #%d"
                        x.seq a.seq a.seq x.seq;
                  }
                  :: s.v_sc_pair;
                s.frozen <- true
              | _ -> ())
          s.live;
      (* 29.3/3: an sc read must not observe a store hidden behind the
         last sc store to its location (the pinned per-loc witness) *)
      (if Action.is_read a && s.c_sc < cap then
         match a.rf with
         | None -> ()
         | Some x when a.loc >= 0 -> (
           match (lstate s a.loc).l_last_sc_w with
           | Some sw when x.seq <> sw.seq ->
             let hidden =
               (Memorder.is_seq_cst x.mo && x.seq < sw.seq)
               || (x.seq <> sw.seq
                  &&
                  match Hashtbl.find_opt s.acv sw.seq with
                  | Some sc' -> sget sc' x.tid >= x.seq
                  | None -> false)
             in
             if hidden then begin
               s.c_sc <- s.c_sc + 1;
               s.v_sc_read <-
                 {
                   axiom = Sc_order;
                   actions = [ a.seq; x.seq; sw.seq ];
                   detail =
                     Printf.sprintf
                       "sc read #%d observes #%d, hidden behind the last \
                        sc store #%d to loc %d"
                       a.seq x.seq sw.seq a.loc;
                 }
                 :: s.v_sc_read;
               s.frozen <- true
             end
           | Some _ | None -> ())
         | Some _ -> ());
      if Action.is_write a && a.loc >= 0 then
        (lstate s a.loc).l_last_sc_w <- Some a
    end

  (* Coherence completeness obligations for a new window action, using
     per-cell newest-covered representatives: older same-cell writes are
     chained through them (mo is transitive under cv reachability), so
     each feed checks O(threads) pairs, not O(window). *)
  let coherence_obligations s (a : Action.t) snap =
    if a.loc >= 0 then begin
      let l = lstate s a.loc in
      (if Action.is_write a then
         Hashtbl.iter
           (fun tid c ->
             if tid = a.tid then begin
               if c.cn > 0 then begin
                 let prev = c.cws.(c.cn - 1) in
                 if prev.Action.seq <> a.seq then require_mo s prev a
               end
             end
             else begin
               let i = cell_newest_le c (sget snap tid) in
               if i >= 0 then begin
                 let w = c.cws.(i) in
                 if w.Action.seq <> a.seq then require_mo s w a
               end
             end)
           l.l_cells);
      (if Action.is_read a then
         match a.rf with
         | Some st when st.loc = a.loc ->
           Hashtbl.iter
             (fun tid c ->
               let i = cell_newest_le c (sget snap tid) in
               if i >= 0 then begin
                 let w = c.cws.(i) in
                 if w.Action.seq <> st.Action.seq && w.Action.seq <> a.seq
                 then require_mo s w st
               end)
             l.l_cells
         | Some _ | None -> ());
      (* window bookkeeping after the checks: the action joins its loc *)
      l.l_acts_rev <- a :: l.l_acts_rev;
      if Action.is_write a then
        match Hashtbl.find_opt l.l_cells a.tid with
        | Some c -> cell_push c a
        | None ->
          let c = { cws = Array.make 8 a; cn = 1 } in
          Hashtbl.replace l.l_cells a.tid c
    end

  let rec feed_action s (a : Action.t) =
    ensure_tid s a.tid;
    let pre_max = s.max_cv_entry in
    let ts = s.ts.(a.tid) in
    (* certified clock replica: own tick, then the Act merge rules *)
    let cl = grown ts.cl (a.tid + 1) in
    ts.cl <- cl;
    cl.(a.tid) <- a.seq;
    if a.seq > s.max_cv_entry then s.max_cv_entry <- a.seq;
    (match a.kind with
    | Action.Load | Action.Rmw -> (
      match a.rf with
      | Some st when st.Action.seq < a.seq -> (
        match Hashtbl.find_opt s.rel_cv st.Action.seq with
        | Some rc when Array.length rc > 0 ->
          if Memorder.is_acquire a.mo then ts.cl <- merge_grow ts.cl rc
          else ts.pend <- merge_grow ts.pend rc
        | Some _ | None -> ())
      | Some _ | None -> ())
    | Action.Fence ->
      if Memorder.is_acquire a.mo then ts.cl <- merge_grow ts.cl ts.pend
    | Action.Store | Action.Na_store -> ());
    let snap = Array.copy ts.cl in
    Hashtbl.replace s.acv a.seq snap;
    (* the store's release clock: what a reads-from of this store (or of
       a later RMW in its release sequence) synchronises with *)
    (match a.kind with
    | Action.Fence ->
      if Memorder.is_release a.mo then ts.relf_cv <- Some snap
    | Action.Store | Action.Rmw ->
      let chain =
        match a.kind with
        | Action.Rmw -> (
          match a.rf with
          | Some prev when prev.Action.seq < a.seq ->
            Hashtbl.find_opt s.rel_cv prev.Action.seq
          | Some _ | None -> None)
        | _ -> None
      in
      let own =
        if Memorder.is_release a.mo then Some snap else ts.relf_cv
      in
      (match (own, chain) with
      | None, None -> ()
      | Some rc, None | None, Some rc -> Hashtbl.replace s.rel_cv a.seq rc
      | Some o, Some c -> Hashtbl.replace s.rel_cv a.seq (merge_grow (Array.copy o) c))
    | Action.Na_store | Action.Load -> ());
    mark_fed s a.seq;
    s.n_actions <- s.n_actions + 1;
    if Action.is_read a then s.n_reads <- s.n_reads + 1;
    if Action.is_write a then s.n_writes <- s.n_writes + 1;
    check_action_online s a snap ~pre_max;
    coherence_obligations s a snap;
    s.live <- a :: s.live;
    if s.n_actions land 4095 = 0 then sweep s

  (* --- retirement ------------------------------------------------- *)

  and sweep s =
    (* re-try pending obligations first: mo only grows *)
    s.obligs <-
      List.filter
        (fun o -> not (mo_confirmed s o.o_src o.o_dst))
        s.obligs;
    if (not s.frozen) && s.obligs = [] then begin
      let exec = s.exec in
      let nt = exec.Execution.nthreads in
      (* engine-clock frontier over runnable threads: what every possible
         future reader is guaranteed to cover *)
      let omin = Array.make nt max_int in
      let any_counted = ref false in
      for v = 0 to nt - 1 do
        let tv = exec.Execution.threads.(v) in
        if tv.Execution.live && s.counted v then begin
          any_counted := true;
          for u = 0 to nt - 1 do
            let x = Clockvec.get tv.Execution.c u in
            if x < omin.(u) then omin.(u) <- x
          done
        end
      done;
      if !any_counted then begin
        (* advance per-cell readability barriers (monotone) *)
        Hashtbl.iter
          (fun _ l ->
            l.l_barrier <- grown l.l_barrier nt;
            Hashtbl.iter
              (fun tid c ->
                if tid < nt then begin
                  let i = cell_newest_le c omin.(tid) in
                  if i >= 0 && c.cws.(i).Action.seq > l.l_barrier.(tid) then
                    l.l_barrier.(tid) <- c.cws.(i).Action.seq
                end)
              l.l_cells)
          s.by_loc;
        (* certified/operational agreement per live thread: no future
           snapshot can disagree about an action both sides agree on *)
        let agree (a : Action.t) =
          let ok = ref true in
          for v = 0 to nt - 1 do
            if !ok then begin
              let tv = exec.Execution.threads.(v) in
              if tv.Execution.live then begin
                let cc = sget s.ts.(v).cl a.tid in
                let oc = Clockvec.get tv.Execution.c a.tid in
                if cc >= a.seq <> (oc >= a.seq) then ok := false
              end
            end
          done;
          !ok
        in
        let store_ok (w : Action.t) =
          let l = lstate s w.loc in
          let unreadable =
            sget l.l_barrier w.tid > w.seq
            || (exec.Execution.pruned_count > 0
               && Mograph.find_node exec.Execution.graph w = None)
          in
          unreadable
          && (match l.l_last_sc_w with
             | Some sw -> sw.seq <> w.seq
             | None -> true)
          &&
          (* cv-mo-before every still-readable same-location store: this
             discharges CoWW/CoWR against every future action *)
          (exec.Execution.pruned_count > 0
          ||
          let ok = ref true in
          Hashtbl.iter
            (fun tid c ->
              if !ok then begin
                (* still-readable = at or past the barrier; the newest
                   write strictly below it starts the scan *)
                let b = sget l.l_barrier tid in
                let start = 1 + cell_newest_le c (b - 1) in
                let i = ref (max 0 start) in
                while !ok && !i < c.cn do
                  let y = c.cws.(!i) in
                  if y.Action.seq <> w.seq && not (mo_confirmed s w y) then
                    ok := false;
                  incr i
                done
              end)
            l.l_cells;
          !ok)
        in
        let to_retire = Hashtbl.create 64 in
        List.iter
          (fun (a : Action.t) ->
            if
              agree a
              && (not (Action.is_write a && a.loc >= 0) || store_ok a)
            then Hashtbl.replace to_retire a.seq ())
          s.live;
        if Hashtbl.length to_retire > 0 then begin
          List.iter
            (fun (a : Action.t) ->
              if Hashtbl.mem to_retire a.seq then begin
                Hashtbl.remove s.acv a.seq;
                Hashtbl.remove s.claimed a.seq;
                Hashtbl.remove s.rel_cv a.seq;
                s.n_retired <- s.n_retired + 1
              end)
            s.live;
          s.live <-
            List.filter
              (fun (a : Action.t) -> not (Hashtbl.mem to_retire a.seq))
              s.live;
          Hashtbl.iter
            (fun _ l ->
              l.l_acts_rev <-
                List.filter
                  (fun (a : Action.t) -> not (Hashtbl.mem to_retire a.seq))
                  l.l_acts_rev;
              Hashtbl.iter
                (fun _ c ->
                  let j = ref 0 in
                  for i = 0 to c.cn - 1 do
                    let w = c.cws.(i) in
                    if not (Hashtbl.mem to_retire w.Action.seq) then begin
                      c.cws.(!j) <- w;
                      incr j
                    end
                  done;
                  if !j < c.cn then begin
                    (* exact copy: capacity slots past [cn] would pin
                       retired actions against the GC *)
                    c.cws <- Array.sub c.cws 0 (max 1 !j);
                    c.cn <- !j
                  end)
                l.l_cells)
            s.by_loc
        end
      end
    end

  (* --- finalize ---------------------------------------------------- *)

  let finalize_now s =
    let exec = s.exec in
    if exec.Execution.mode <> Execution.Full_c11 then Not_applicable na_total_mo
    else begin
      let graph = exec.Execution.graph in
      let graph_exact = exec.Execution.pruned_count = 0 in
      (* mo-graph families over the live residue, with the exact post-hoc
         code: build a window-scoped cert whose acv is the stream's *)
      let mini =
        {
          nthreads = s.nthreads;
          trace = [||];
          by_seq = Hashtbl.create 1;
          edges = [||];
          acv = s.acv;
          heads = Hashtbl.create 1;
          last_rel_fence = Hashtbl.create 1;
          violations = [];
        }
      in
      let locs =
        Hashtbl.fold
          (fun loc l acc ->
            if l.l_acts_rev = [] && Hashtbl.length s.by_loc > 0 then
              (loc, []) :: acc
            else (loc, List.rev l.l_acts_rev) :: acc)
          s.by_loc []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      List.iter
        (fun (loc, acts) ->
          if acts <> [] then begin
            let writes, reach =
              check_location mini ~graph ~graph_exact ~loc acts
            in
            if graph_exact then check_theorem1 mini ~graph ~loc writes reach
          end)
        locs;
      (* rmw immediacy candidates re-probed against the final graph: a
         pruned end makes immediacy unobservable, as post-hoc *)
      let rmw =
        List.rev s.v_rmw
        |> List.filter_map (fun (v, probe) ->
               match probe with
               | None -> Some v
               | Some (st, r) -> (
                 match (Mograph.find_node graph st, Mograph.find_node graph r)
                 with
                 | Some ns, Some nr ->
                   let immediate =
                     match ns.Mograph.rmw with
                     | Some x -> x == nr
                     | None -> false
                   in
                   if immediate then None else Some v
                 | _ -> None))
      in
      let violations =
        List.concat
          [
            List.rev s.v_sync;
            List.rev s.v_irr;
            List.rev s.v_diff;
            List.rev s.v_rf;
            List.rev mini.violations;
            rmw;
            List.rev s.v_sc_pair;
            List.rev s.v_sc_read;
          ]
      in
      match violations with
      | [] ->
        Certified
          {
            actions = s.n_actions;
            reads = s.n_reads;
            writes = s.n_writes;
            sc_actions = s.n_sc;
            sync_edges = s.n_edges;
            hb_pairs = s.n_actions * (s.n_actions - 1);
            locations = List.length locs;
            graph_checked = graph_exact;
          }
      | vs -> Rejected vs
    end

  let finalize s =
    match s.finalized with
    | Some v -> v
    | None ->
      let v = finalize_now s in
      s.finalized <- Some v;
      v

  let sink s =
    {
      Execution.cs_action = (fun a -> feed_action s a);
      cs_edge = (fun e -> feed_edge s e);
      cs_release = (fun ~tid ~seq -> feed_release s ~tid ~seq);
      cs_release_drop = (fun ~seq -> feed_release_drop s ~seq);
    }
end
