open Execution

type policy =
  | No_prune
  | Conservative of { interval : int }
  | Aggressive of { window : int; interval : int }

type stats = { stores_pruned : int; loads_pruned : int; fences_pruned : int }

let pp_policy fmt = function
  | No_prune -> Format.pp_print_string fmt "no-prune"
  | Conservative { interval } -> Format.fprintf fmt "conservative(%d)" interval
  | Aggressive { window; interval } ->
    Format.fprintf fmt "aggressive(window=%d,%d)" window interval

let cv_min exec =
  let acc = ref None in
  for i = 0 to exec.nthreads - 1 do
    let ts = exec.threads.(i) in
    if ts.live then
      acc :=
        Some
          (match !acc with
          | None -> Clockvec.copy ts.c
          | Some cv -> Clockvec.intersect cv ts.c)
  done;
  match !acc with None -> Clockvec.bottom () | Some cv -> cv

(* A store [x] is prunable when it is modification-ordered strictly before
   some anchor store [s]: no thread can read [x] anymore.  In Full_c11 mode
   reachability comes from the mo-graph clock vectors (Theorem 1); in
   Total_mo mode modification order is commit order. *)
let mo_before exec (x : Action.t) (s : Action.t) =
  x.seq <> s.seq
  &&
  match exec.mode with
  | Full_c11 -> (
    match
      (Mograph.find_node exec.graph x, Mograph.find_node exec.graph s)
    with
    | Some nx, Some ns -> Clockvec.leq nx.Mograph.cv ns.Mograph.cv
    | _ -> false)
  | Total_mo -> x.seq < s.seq

let prune_with_anchors exec ~anchors_of_loc =
  let stores_pruned = ref 0 and loads_pruned = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some li ->
      let anchors = anchors_of_loc li in
      if anchors <> [] then begin
        let removed = Hashtbl.create 16 in
        List.iter
          (fun cell ->
            let keep, drop =
              List.partition
                (fun (x : Action.t) ->
                  not (List.exists (fun s -> mo_before exec x s) anchors))
                cell.c_stores
            in
            if drop <> [] then begin
              List.iter
                (fun (x : Action.t) ->
                  Hashtbl.replace removed x.seq ();
                  Mograph.remove_node exec.graph x;
                  incr stores_pruned)
                drop;
              cell.c_stores <- keep;
              li.store_count <- li.store_count - List.length drop;
              cell.c_sc_stores <-
                List.filter
                  (fun (x : Action.t) -> not (Hashtbl.mem removed x.seq))
                  cell.c_sc_stores
            end)
          li.cells;
        if Hashtbl.length removed > 0 then begin
          (* Drop pruned stores and any loads that read from them from the
             access lists. *)
          List.iter
            (fun cell ->
              let keep, drop =
                List.partition
                  (fun (a : Action.t) ->
                    (not (Hashtbl.mem removed a.seq))
                    &&
                    match a.rf with
                    | Some s -> not (Hashtbl.mem removed s.seq)
                    | None -> true)
                  cell.c_accesses
              in
              List.iter
                (fun (a : Action.t) ->
                  if a.kind = Action.Load then incr loads_pruned)
                drop;
              cell.c_accesses <- keep)
            li.cells;
          (* Removing stores may have invalidated the location's
             incremental newest/last-sc caches. *)
          refresh_loc_caches li
        end
      end)
    exec.locs;
  (!stores_pruned, !loads_pruned)

let prune_fences exec cvmin =
  let pruned = ref 0 in
  for i = 0 to exec.nthreads - 1 do
    let ts = exec.threads.(i) in
    let keep, drop =
      List.partition
        (fun (f : Action.t) ->
          not (Clockvec.covers cvmin ~tid:f.tid ~seq:f.seq))
        ts.sc_fences
    in
    pruned := !pruned + List.length drop;
    ts.sc_fences <- keep
  done;
  !pruned

let prune_conservative exec =
  let cvmin = cv_min exec in
  let anchors_of_loc li =
    List.concat_map
      (fun cell ->
        List.filter
          (fun (s : Action.t) -> Clockvec.covers cvmin ~tid:s.tid ~seq:s.seq)
          cell.c_stores)
      li.cells
  in
  let stores_pruned, loads_pruned = prune_with_anchors exec ~anchors_of_loc in
  let fences_pruned = prune_fences exec cvmin in
  exec.pruned_count <- exec.pruned_count + stores_pruned;
  { stores_pruned; loads_pruned; fences_pruned }

let prune_aggressive exec ~window =
  let boundary = exec.seq - window in
  let anchors_of_loc li =
    List.concat_map
      (fun cell ->
        List.filter (fun (s : Action.t) -> s.seq < boundary) cell.c_stores)
      li.cells
  in
  let stores_pruned, loads_pruned = prune_with_anchors exec ~anchors_of_loc in
  let fences_pruned = prune_fences exec (cv_min exec) in
  exec.pruned_count <- exec.pruned_count + stores_pruned;
  { stores_pruned; loads_pruned; fences_pruned }

(* Run one sweep under the "prune_sweep" profiling span and report it to
   the C11obs layer (Prune event + counters). *)
let observed_sweep exec f =
  let p0 = Profile.start exec.prof in
  let stats = f () in
  Profile.stop exec.prof "prune_sweep" p0;
  if Metrics.enabled exec.metrics then begin
    Metrics.incr exec.metrics "prune.sweeps";
    Metrics.incr exec.metrics ~by:stats.stores_pruned "prune.stores";
    Metrics.incr exec.metrics ~by:stats.loads_pruned "prune.loads";
    Metrics.incr exec.metrics ~by:stats.fences_pruned "prune.fences"
  end;
  if Obs.enabled exec.obs then
    Obs.emit exec.obs
      {
        Obs.step = exec.seq;
        tid = -1;
        kind = Obs.Prune;
        loc = -1;
        mo = "";
        value = stats.stores_pruned;
        detail =
          Printf.sprintf "stores=%d loads=%d fences=%d" stats.stores_pruned
            stats.loads_pruned stats.fences_pruned;
      };
  stats

let maybe_prune policy exec ~ops =
  match policy with
  | No_prune -> None
  | Conservative { interval } ->
    if interval > 0 && ops mod interval = 0 then
      Some (observed_sweep exec (fun () -> prune_conservative exec))
    else None
  | Aggressive { window; interval } ->
    if interval > 0 && ops mod interval = 0 then
      Some (observed_sweep exec (fun () -> prune_aggressive exec ~window))
    else None
