type access_class = Na_access | Atomic_access

type report = {
  loc : int;
  loc_name : string;
  first_tid : int;
  first_seq : int;
  first_is_write : bool;
  first_class : access_class;
  second_tid : int;
  second_seq : int;
  second_is_write : bool;
  second_class : access_class;
}

(* Shadow cell: slot [tid] of each vector holds the sequence number of
   thread [tid]'s most recent access of that class (0 = none).  Per-thread
   "last access" suffices because same-thread accesses are ordered by
   sequenced-before. *)
type shadow = {
  na_w : Clockvec.t;
  at_w : Clockvec.t;
  na_r : Clockvec.t;
  at_r : Clockvec.t;
}

type t = {
  shadows : (int, shadow) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  obs : Obs.t;
  metrics : Metrics.t;
  mutable found : report list;
  mutable count : int;
}

let create ?(obs = Obs.null) ?(metrics = Metrics.null) () =
  {
    shadows = Hashtbl.create 256;
    names = Hashtbl.create 64;
    obs;
    metrics;
    found = [];
    count = 0;
  }

let name_location t ~loc name = Hashtbl.replace t.names loc name

let loc_name t loc =
  match Hashtbl.find_opt t.names loc with
  | Some n -> n
  | None -> Printf.sprintf "loc%d" loc

let shadow t loc =
  match Hashtbl.find_opt t.shadows loc with
  | Some s -> s
  | None ->
    let s =
      {
        na_w = Clockvec.bottom ();
        at_w = Clockvec.bottom ();
        na_r = Clockvec.bottom ();
        at_r = Clockvec.bottom ();
      }
    in
    Hashtbl.add t.shadows loc s;
    s

let report_conflicts t prior ~prior_is_write ~prior_class ~loc ~tid ~seq ~hb
    ~is_write ~cls =
  for u = 0 to Clockvec.width prior - 1 do
    if u <> tid then begin
      let s = Clockvec.get prior u in
      if s > 0 && not (Clockvec.covers hb ~tid:u ~seq:s) then begin
        let r =
          {
            loc;
            loc_name = loc_name t loc;
            first_tid = u;
            first_seq = s;
            first_is_write = prior_is_write;
            first_class = prior_class;
            second_tid = tid;
            second_seq = seq;
            second_is_write = is_write;
            second_class = cls;
          }
        in
        t.found <- r :: t.found;
        t.count <- t.count + 1;
        Metrics.incr t.metrics "race.reports";
        if Obs.enabled t.obs then
          Obs.emit t.obs
            {
              Obs.step = seq;
              tid;
              kind = Obs.Race_check;
              loc;
              mo = "";
              value = 0;
              detail =
                Printf.sprintf "%s: t%d #%d vs t%d #%d" r.loc_name u s tid seq;
            }
      end
    end
  done

let on_access t ~loc ~tid ~seq ~hb ~is_write ~cls =
  let s = shadow t loc in
  let check prior ~prior_is_write ~prior_class =
    report_conflicts t prior ~prior_is_write ~prior_class ~loc ~tid ~seq ~hb
      ~is_write ~cls
  in
  (match (cls, is_write) with
  | Na_access, true ->
    (* A non-atomic write conflicts with every other access. *)
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.at_w ~prior_is_write:true ~prior_class:Atomic_access;
    check s.na_r ~prior_is_write:false ~prior_class:Na_access;
    check s.at_r ~prior_is_write:false ~prior_class:Atomic_access
  | Na_access, false ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.at_w ~prior_is_write:true ~prior_class:Atomic_access
  | Atomic_access, true ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.na_r ~prior_is_write:false ~prior_class:Na_access
  | Atomic_access, false ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access);
  let target =
    match (cls, is_write) with
    | Na_access, true -> s.na_w
    | Na_access, false -> s.na_r
    | Atomic_access, true -> s.at_w
    | Atomic_access, false -> s.at_r
  in
  Clockvec.set target tid seq

let races t = List.rev t.found
let race_count t = t.count

let clear t =
  Hashtbl.reset t.shadows;
  t.found <- [];
  t.count <- 0

let class_to_string = function Na_access -> "na" | Atomic_access -> "atomic"
let rw b = if b then "write" else "read"

let pp_report fmt r =
  Format.fprintf fmt "data race on %s: %s %s by t%d (#%d) vs %s %s by t%d (#%d)"
    r.loc_name (class_to_string r.first_class) (rw r.first_is_write)
    r.first_tid r.first_seq
    (class_to_string r.second_class)
    (rw r.second_is_write) r.second_tid r.second_seq

let dedup_key r =
  Printf.sprintf "%s|%s%s|%s%s" r.loc_name
    (class_to_string r.first_class)
    (rw r.first_is_write)
    (class_to_string r.second_class)
    (rw r.second_is_write)

let report_to_json r =
  Jsonx.Obj
    [
      ("loc", Jsonx.Int r.loc);
      ("loc_name", Jsonx.String r.loc_name);
      ("first_tid", Jsonx.Int r.first_tid);
      ("first_seq", Jsonx.Int r.first_seq);
      ("first_is_write", Jsonx.Bool r.first_is_write);
      ("first_class", Jsonx.String (class_to_string r.first_class));
      ("second_tid", Jsonx.Int r.second_tid);
      ("second_seq", Jsonx.Int r.second_seq);
      ("second_is_write", Jsonx.Bool r.second_is_write);
      ("second_class", Jsonx.String (class_to_string r.second_class));
    ]
