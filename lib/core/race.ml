type access_class = Na_access | Atomic_access

type report = {
  loc : int;
  loc_name : string;
  first_tid : int;
  first_seq : int;
  first_is_write : bool;
  first_class : access_class;
  second_tid : int;
  second_seq : int;
  second_is_write : bool;
  second_class : access_class;
}

(* Shadow cell: slot [tid] of each vector holds the sequence number of
   thread [tid]'s most recent access of that class (0 = none).  Per-thread
   "last access" suffices because same-thread accesses are ordered by
   sequenced-before.

   Each vector carries a FastTrack-style epoch witness [cov_tid]: the
   thread whose happens-before clock was last verified to cover every
   other thread's entry.  A thread's clock only grows, and the witness is
   invalidated whenever a different thread writes an entry, so a re-check
   by the witness thread is guaranteed conflict-free and skips the
   vector-width loop entirely — the same-epoch shortcut that makes the
   common run of same-thread accesses O(1) per access. *)
type slot = { cv : Clockvec.t; mutable cov_tid : int }

type shadow = { na_w : slot; at_w : slot; na_r : slot; at_r : slot }

type t = {
  (* locations are dense small ints (Execution.fresh_loc counts from 0),
     so the shadow store is a direct-indexed array — the per-access lookup
     is a bounds check and a load, not a hash probe *)
  mutable shadows : shadow option array;
  names : (int, string) Hashtbl.t;
  obs : Obs.t;
  metrics : Metrics.t;
  metrics_on : bool;
  mutable found : report list;
  mutable count : int;
}

let create ?(obs = Obs.null) ?(metrics = Metrics.null) () =
  {
    shadows = [||];
    names = Hashtbl.create 8;
    obs;
    metrics;
    metrics_on = Metrics.enabled metrics;
    found = [];
    count = 0;
  }

let name_location t ~loc name = Hashtbl.replace t.names loc name

let loc_name t loc =
  match Hashtbl.find_opt t.names loc with
  | Some n -> n
  | None -> Printf.sprintf "loc%d" loc

let fresh_slot () = { cv = Clockvec.bottom (); cov_tid = -1 }

let new_shadow t loc =
  let s =
    {
      na_w = fresh_slot ();
      at_w = fresh_slot ();
      na_r = fresh_slot ();
      at_r = fresh_slot ();
    }
  in
  let len = Array.length t.shadows in
  if loc >= len then begin
    let arr = Array.make (max (loc + 1) (max 16 (2 * len))) None in
    Array.blit t.shadows 0 arr 0 len;
    t.shadows <- arr
  end;
  t.shadows.(loc) <- Some s;
  s

let shadow t loc =
  if loc < Array.length t.shadows then
    match Array.unsafe_get t.shadows loc with
    | Some s -> s
    | None -> new_shadow t loc
  else new_shadow t loc

(* The slow path: scan the prior vector for entries unordered with [hb],
   reporting each.  Returns whether any conflict was found, so the caller
   can install the coverage witness on a clean scan. *)
let report_conflicts t prior ~prior_is_write ~prior_class ~loc ~tid ~seq ~hb
    ~is_write ~cls =
  let found_any = ref false in
  (* Raw slot scan: a never-accessed slot has width 0, so the loop is free,
     and the common miss (entry covered by [hb]) is two loads and two
     compares per slot.  Conflicts take the boxed slow path below. *)
  let pd = Clockvec.raw prior and hd = Clockvec.raw hb in
  let nh = Array.length hd in
  for u = 0 to Array.length pd - 1 do
    if u <> tid then begin
      let s = Array.unsafe_get pd u in
      if s > 0 && s > (if u < nh then Array.unsafe_get hd u else 0) then begin
        found_any := true;
        let r =
          {
            loc;
            loc_name = loc_name t loc;
            first_tid = u;
            first_seq = s;
            first_is_write = prior_is_write;
            first_class = prior_class;
            second_tid = tid;
            second_seq = seq;
            second_is_write = is_write;
            second_class = cls;
          }
        in
        t.found <- r :: t.found;
        t.count <- t.count + 1;
        Metrics.incr t.metrics "race.reports";
        if Obs.enabled t.obs then
          Obs.emit t.obs
            {
              Obs.step = seq;
              tid;
              kind = Obs.Race_check;
              loc;
              mo = "";
              value = 0;
              detail =
                Printf.sprintf "%s: t%d #%d vs t%d #%d" r.loc_name u s tid seq;
            }
      end
    end
  done;
  !found_any

let on_access t ~loc ~tid ~seq ~hb ~is_write ~cls =
  let s = shadow t loc in
  let check slot ~prior_is_write ~prior_class =
    if slot.cov_tid = tid then begin
      (* Same-epoch fast path: this thread's clock already covered every
         other entry and nothing foreign was written since. *)
      if t.metrics_on then Metrics.incr t.metrics "race.epoch_hits"
    end
    else begin
      let found =
        report_conflicts t slot.cv ~prior_is_write ~prior_class ~loc ~tid ~seq
          ~hb ~is_write ~cls
      in
      if not found then slot.cov_tid <- tid
    end
  in
  (match (cls, is_write) with
  | Na_access, true ->
    (* A non-atomic write conflicts with every other access. *)
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.at_w ~prior_is_write:true ~prior_class:Atomic_access;
    check s.na_r ~prior_is_write:false ~prior_class:Na_access;
    check s.at_r ~prior_is_write:false ~prior_class:Atomic_access
  | Na_access, false ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.at_w ~prior_is_write:true ~prior_class:Atomic_access
  | Atomic_access, true ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access;
    check s.na_r ~prior_is_write:false ~prior_class:Na_access
  | Atomic_access, false ->
    check s.na_w ~prior_is_write:true ~prior_class:Na_access);
  let target =
    match (cls, is_write) with
    | Na_access, true -> s.na_w
    | Na_access, false -> s.na_r
    | Atomic_access, true -> s.at_w
    | Atomic_access, false -> s.at_r
  in
  Clockvec.set target.cv tid seq;
  if target.cov_tid <> tid then target.cov_tid <- -1

let races t = List.rev t.found
let race_count t = t.count

let clear t =
  t.shadows <- [||];
  t.found <- [];
  t.count <- 0

let class_to_string = function Na_access -> "na" | Atomic_access -> "atomic"
let rw b = if b then "write" else "read"

let pp_report fmt r =
  Format.fprintf fmt "data race on %s: %s %s by t%d (#%d) vs %s %s by t%d (#%d)"
    r.loc_name (class_to_string r.first_class) (rw r.first_is_write)
    r.first_tid r.first_seq
    (class_to_string r.second_class)
    (rw r.second_is_write) r.second_tid r.second_seq

let dedup_key r =
  Printf.sprintf "%s|%s%s|%s%s" r.loc_name
    (class_to_string r.first_class)
    (rw r.first_is_write)
    (class_to_string r.second_class)
    (rw r.second_is_write)

let report_to_json r =
  Jsonx.Obj
    [
      ("loc", Jsonx.Int r.loc);
      ("loc_name", Jsonx.String r.loc_name);
      ("first_tid", Jsonx.Int r.first_tid);
      ("first_seq", Jsonx.Int r.first_seq);
      ("first_is_write", Jsonx.Bool r.first_is_write);
      ("first_class", Jsonx.String (class_to_string r.first_class));
      ("second_tid", Jsonx.Int r.second_tid);
      ("second_seq", Jsonx.Int r.second_seq);
      ("second_is_write", Jsonx.Bool r.second_is_write);
      ("second_class", Jsonx.String (class_to_string r.second_class));
    ]
