type kind =
  | Load
  | Store
  | Rmw
  | Na_store
  | Fence

type graph_node = ..
type graph_node += No_graph_node

type t = {
  seq : int;
  tid : int;
  kind : kind;
  loc : int;
  mo : Memorder.t;
  mutable value : int;
  mutable rf : t option;
  hb_cv : Clockvec.t;
  mutable rf_cv : Clockvec.t option;
  mutable rmw_claimed : bool;
  volatile : bool;
  mutable mo_node : graph_node;
}

let is_write a =
  match a.kind with
  | Store | Rmw | Na_store -> true
  | Load | Fence -> false

let is_read a =
  match a.kind with
  | Load | Rmw -> true
  | Store | Na_store | Fence -> false

let happens_before a b =
  a.seq <> b.seq && Clockvec.covers b.hb_cv ~tid:a.tid ~seq:a.seq

let kind_to_string = function
  | Load -> "load"
  | Store -> "store"
  | Rmw -> "rmw"
  | Na_store -> "na-store"
  | Fence -> "fence"

let pp fmt a =
  Format.fprintf fmt "#%d t%d %s%s loc=%d %a v=%d" a.seq a.tid
    (kind_to_string a.kind)
    (if a.volatile then "(vol)" else "")
    a.loc Memorder.pp a.mo a.value
