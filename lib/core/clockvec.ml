type t = { mutable data : int array }

let bottom () = { data = [||] }

let ensure t n =
  let len = Array.length t.data in
  if n > len then begin
    let data = Array.make (max n (max 4 (2 * len))) 0 in
    Array.blit t.data 0 data 0 len;
    t.data <- data
  end

let of_slot ~tid ~seq =
  let t = bottom () in
  ensure t (tid + 1);
  t.data.(tid) <- seq;
  t

let copy t = { data = Array.copy t.data }

let get t i = if i < Array.length t.data then t.data.(i) else 0

let set t i v =
  ensure t (i + 1);
  t.data.(i) <- v

(* [merge]/[leq] sit on every transition rule (thread-clock joins, mo-graph
   propagation, shadow-cell coverage), and the vectors are short — one slot
   per thread.  Both get a physical-equality fast path, an empty fast path,
   and a single bounds check per loop iteration instead of one per slot. *)
let merge dst src =
  if dst == src then false
  else begin
    let sd = src.data in
    let n = Array.length sd in
    if n = 0 then false
    else begin
      ensure dst n;
      let dd = dst.data in
      let changed = ref false in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sd i in
        if s > Array.unsafe_get dd i then begin
          Array.unsafe_set dd i s;
          changed := true
        end
      done;
      !changed
    end
  end

let union a b =
  let t = copy a in
  ignore (merge t b);
  t

let leq a b =
  a == b
  ||
  let da = a.data and db = b.data in
  let na = Array.length da and nb = Array.length db in
  if na <= nb then begin
    (* common case: [a] no wider than [b]; compare slot by slot, exiting on
       the first violation *)
    let rec go i =
      i >= na || (Array.unsafe_get da i <= Array.unsafe_get db i && go (i + 1))
    in
    go 0
  end
  else begin
    let rec go i =
      i >= na
      ||
      let bi = if i < nb then Array.unsafe_get db i else 0 in
      Array.unsafe_get da i <= bi && go (i + 1)
    in
    go 0
  end

let equal a b = leq a b && leq b a

let intersect a b =
  let n = min (Array.length a.data) (Array.length b.data) in
  let data = Array.init n (fun i -> min a.data.(i) b.data.(i)) in
  { data }

let covers t ~tid ~seq = get t tid >= seq

let width t = Array.length t.data

let raw t = t.data

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Format.pp_print_int)
    (Array.to_list t.data)
