(** Deterministic pseudo-random number generator (splitmix64).

    Every nondeterministic choice C11Tester makes — the next thread to run
    and the store a load reads from — is drawn from one of these generators,
    so an execution is fully determined by its seed.  This replaces the
    paper's reliance on [random()] while making executions replayable. *)

type t

val create : int64 -> t

(** [split t] derives an independent generator; used to give each execution
    of a repeated test its own stream. *)
val split : t -> t

(** [substream base ~index] is the [index]-th (0-based) element of the
    seed stream rooted at [base]: exactly the value the [index+1]-th call
    of {!next_int64} on [create base] returns, computed in O(1) from the
    index alone.  A campaign's executions draw their seeds from this
    stream, so execution [index] receives the same seed no matter how the
    campaign is sharded across workers — the foundation of the parallel
    runner's determinism contract.  Raises [Invalid_argument] on a
    negative index. *)
val substream : int64 -> index:int -> int64

val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [shuffle_in_place t arr] applies a Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** [geometric t mean] samples a geometric distribution with the given mean
    (always at least 1); used by the bursty scheduler that models an
    uncontrolled OS scheduler. *)
val geometric : t -> int -> int
