(** FastTrack-style data race detector (Section 7.2 of the paper).

    The paper keeps a 64-bit shadow word per byte holding compressed read
    and write epochs plus an atomic/non-atomic bit, expanding to a full
    record when threads don't fit.  Locations in this reproduction are
    abstract cells rather than bytes, so the shadow is represented directly
    as the expanded record: for each location, the last access epoch of each
    thread in each of four classes (non-atomic write, atomic write,
    non-atomic read, atomic read).

    Two accesses race when they touch the same location, at least one is a
    write, at least one is non-atomic, and they are unordered by
    happens-before.  Atomic-atomic pairs never race (the memory model gives
    them defined semantics). *)

type access_class = Na_access | Atomic_access

type report = {
  loc : int;
  loc_name : string;
  first_tid : int;
  first_seq : int;
  first_is_write : bool;
  first_class : access_class;
  second_tid : int;
  second_seq : int;
  second_is_write : bool;
  second_class : access_class;
}

type t

(** [create ()] builds a fresh detector.  When an [obs] tracer is given,
    every race found is emitted as a [Race_check] event; when [metrics]
    is given, found races bump the ["race.reports"] counter. *)
val create : ?obs:Obs.t -> ?metrics:Metrics.t -> unit -> t

(** Attach a stable, human-readable name to a location (used for reporting
    and for deduplicating races across repeated executions). *)
val name_location : t -> loc:int -> string -> unit

(** [on_access t ~loc ~tid ~seq ~hb ~is_write ~cls] checks the access
    against the shadow state, records any races found, and updates the
    shadow.  [hb] is the accessing thread's happens-before clock vector at
    the access. *)
val on_access :
  t ->
  loc:int ->
  tid:int ->
  seq:int ->
  hb:Clockvec.t ->
  is_write:bool ->
  cls:access_class ->
  unit

(** Races found in the current execution, oldest first. *)
val races : t -> report list

val race_count : t -> int

(** Reset per-execution state (shadow memory and race list) while keeping
    nothing — a fresh detector per execution; cross-execution deduplication
    is the tester's job. *)
val clear : t -> unit

val pp_report : Format.formatter -> report -> unit

(** Stable deduplication key for a report: same named location and same
    access-pair shape collapse to one key across executions (Section 7.6:
    races are reported only once). *)
val dedup_key : report -> string

val report_to_json : report -> Jsonx.t
