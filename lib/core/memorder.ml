type t =
  | Relaxed
  | Consume
  | Acquire
  | Release
  | Acq_rel
  | Seq_cst

let equal (a : t) (b : t) = a = b

let to_string = function
  | Relaxed -> "relaxed"
  | Consume -> "consume"
  | Acquire -> "acquire"
  | Release -> "release"
  | Acq_rel -> "acq_rel"
  | Seq_cst -> "seq_cst"

let of_string = function
  | "relaxed" -> Some Relaxed
  | "consume" -> Some Consume
  | "acquire" -> Some Acquire
  | "release" -> Some Release
  | "acq_rel" -> Some Acq_rel
  | "seq_cst" -> Some Seq_cst
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_acquire = function
  | Acquire | Consume | Acq_rel | Seq_cst -> true
  | Relaxed | Release -> false

let is_release = function
  | Release | Acq_rel | Seq_cst -> true
  | Relaxed | Consume | Acquire -> false

let is_seq_cst = function
  | Seq_cst -> true
  | Relaxed | Consume | Acquire | Release | Acq_rel -> false

(* weak-to-strong linear extension of the strength order: join/meet scan
   it directionally, so the first bound found is the least/greatest *)
let all = [ Relaxed; Consume; Acquire; Release; Acq_rel; Seq_cst ]

(* The strength lattice, encoded componentwise: acquire side
   (0 = none, 1 = consume, 2 = acquire), release side (0/1) and the
   seq_cst flag.  [Acquire] and [Release] are incomparable; [Consume]
   sits strictly between [Relaxed] and [Acquire]. *)
let strength = function
  | Relaxed -> (0, 0, 0)
  | Consume -> (1, 0, 0)
  | Acquire -> (2, 0, 0)
  | Release -> (0, 1, 0)
  | Acq_rel -> (2, 1, 0)
  | Seq_cst -> (2, 1, 1)

let stronger_than a b =
  let xa, xr, xs = strength a and ya, yr, ys = strength b in
  xa >= ya && xr >= yr && xs >= ys

let join a b =
  List.find (fun x -> stronger_than x a && stronger_than x b) all

let meet a b =
  List.find
    (fun x -> stronger_than a x && stronger_than b x)
    (List.rev all)
