(** Clock vectors (Section 4.2 and Section 6.1 of the paper).

    A clock vector maps thread ids to sequence numbers.  C11Tester uses clock
    vectors in two distinct roles:

    - tracking the happens-before relation (the per-thread vectors [C],
      [F^rel], [F^acq] and the per-store reads-from vector [RF] of Figure 9);
    - computing reachability in the modification-order graph (Theorem 1:
      for two stores to the same location, [CV_A <= CV_B] iff [B] is
      reachable from [A]).

    Slots that were never written hold 0, which is below every real sequence
    number (sequence numbers start at 1). *)

type t

(** The empty (bottom) clock vector: every slot is 0. *)
val bottom : unit -> t

(** [of_slot ~tid ~seq] is the vector with slot [tid] set to [seq] and every
    other slot 0 — the initial mo-graph clock vector of a store. *)
val of_slot : tid:int -> seq:int -> t

val copy : t -> t
val get : t -> int -> int
val set : t -> int -> int -> unit

(** [merge dst src] sets [dst := dst ∪ src] (pointwise max) and reports
    whether [dst] changed — the [Merge] procedure of Figure 6. *)
val merge : t -> t -> bool

(** [union a b] is a fresh pointwise max. *)
val union : t -> t -> t

(** [leq a b] is the pointwise comparison [a <= b]. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** [intersect a b] is the pointwise min, the [∩] operator used to compute
    [CV_min] when pruning the execution graph (Section 7.1).  Slots absent
    from either vector are treated as 0. *)
val intersect : t -> t -> t

(** [covers cv ~tid ~seq] tests whether the event with sequence number [seq]
    executed by thread [tid] is accounted for by [cv], i.e. whether that
    event happens before the point [cv] summarises. *)
val covers : t -> tid:int -> seq:int -> bool

(** Number of slots ever touched (an upper bound on thread ids + 1). *)
val width : t -> int

(** The underlying slot array, for read-only scans on hot paths (the race
    detector's conflict loop).  Callers must not mutate it, and must not
    hold it across a {!set} or {!merge} (growth may reallocate). *)
val raw : t -> int array

val pp : Format.formatter -> t -> unit
