(** The modification-order graph (Section 4 of the paper).

    Nodes represent atomic stores/RMWs; an [mo] edge from [A] to [B] is the
    constraint [A -mo-> B]; an [rmw] edge additionally pins [B] immediately
    after [A].  The set of constraints is satisfiable iff the graph is
    acyclic, and C11Tester never adds a cycle (Section 4.3), so no rollback
    is needed.

    Each node carries a clock vector.  By Theorem 1 of the paper, for two
    nodes [A], [B] writing the same location in an acyclic graph,
    [CV_A <= CV_B] iff [B] is reachable from [A]; this is what lets
    reachability queries run in O(threads) instead of a graph traversal. *)

type node = {
  action : Action.t;
  mutable edges : node array;
      (** outgoing mo edges, dynarray-style: only [edges.(0 .. nedges-1)]
          are live — use {!succs} unless on a hot path *)
  mutable nedges : int;
  mutable rmw : node option;  (** the RMW that reads from this store *)
  mutable cv : Clockvec.t;
  mutable pruned : bool;
  mutable mark : int;
      (** generation stamp: frontier membership during clock propagation *)
}

type t

val create : unit -> t

(** The live out-edges of a node as a list (allocates; for tests and
    debugging output). *)
val succs : node -> node list

(** Number of live (non-pruned) nodes. *)
val size : t -> int

(** [get_node g a] returns the node for store [a], creating it (with the
    initial clock vector [⊥_CV] of Section 4.2) on first use.  The node is
    cached on the action itself ({!Action.t.mo_node}), so repeated lookups
    are a field read, not a hash probe. *)
val get_node : t -> Action.t -> node

val find_node : t -> Action.t -> node option

(** [add_edge g from to_] — the [AddEdge] procedure of Figure 6: skip
    redundant edges, follow rmw chains, insert the edge and propagate clock
    vectors breadth-first.  Duplicate-edge detection is a hashed
    (from, to) membership probe and insertion an amortised-O(1) dynarray
    append, so the procedure no longer scans the source's edge list. *)
val add_edge : t -> node -> node -> unit

(** [add_rmw_edge g from rmw] — the [AddRMWEdge] procedure of Figure 6:
    record the rmw link, migrate [from]'s outgoing edges to [rmw], then add
    a plain mo edge. *)
val add_rmw_edge : t -> node -> node -> unit

(** [reaches g a b]: is [b] reachable from [a]?  Implemented as the clock
    vector comparison of Theorem 1.  Only meaningful for two stores to the
    same location. *)
val reaches : t -> Action.t -> Action.t -> bool

(** [edge_would_close_cycle g ~from ~to_]: would the mo constraint
    [from -> to_] make the constraint set unsatisfiable?  This follows
    [from]'s rmw chain the same way {!add_edge} does before testing
    reachability from [to_] — the refinement of the paper's Section 4.3
    check needed because an RMW pinned immediately after [from] inherits
    its ordering obligations. *)
val edge_would_close_cycle : t -> from:Action.t -> to_:Action.t -> bool

(** Reference implementation of reachability by depth-first search over the
    edges (following rmw links), used by property tests to validate
    Theorem 1. *)
val reaches_dfs : t -> Action.t -> Action.t -> bool

(** [remove_node g a] deletes the node during execution-graph pruning.  The
    caller guarantees the store can no longer be read (Section 7.1). *)
val remove_node : t -> Action.t -> unit

(** [iter_nodes g f] visits every live node. *)
val iter_nodes : t -> (node -> unit) -> unit

(** [check_acyclic g] runs a full DFS cycle check; for tests. *)
val check_acyclic : t -> bool

(** [to_dot g] renders the live graph in Graphviz DOT syntax (mo edges
    plain, rmw edges bold red) for debugging small executions. *)
val to_dot : t -> string
