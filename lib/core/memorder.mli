(** C/C++11 memory orders.

    [Consume] is accepted but strengthened to acquire, matching C11Tester's
    memory-model fragment (change 3 in Section 2.2 of the paper) and the
    behaviour of all production compilers. *)

type t =
  | Relaxed
  | Consume
  | Acquire
  | Release
  | Acq_rel
  | Seq_cst

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** [is_acquire mo] holds for acquire, acq_rel, seq_cst and (strengthened)
    consume orders: operations that may form the acquire side of a
    release/acquire synchronisation. *)
val is_acquire : t -> bool

(** [is_release mo] holds for release, acq_rel and seq_cst orders. *)
val is_release : t -> bool

val is_seq_cst : t -> bool

(** All six orders, listed weakest to strongest (a linear extension of
    {!stronger_than}), for property-based tests and lattice scans. *)
val all : t list

(** {1 Strength lattice}

    The orders form a lattice under "provides at least the ordering
    guarantees of": [Relaxed ⊑ Consume ⊑ Acquire ⊑ Acq_rel ⊑ Seq_cst]
    and [Relaxed ⊑ Release ⊑ Acq_rel], with [Acquire] and [Release]
    incomparable.  [stronger_than] is the (non-strict) lattice order;
    [join]/[meet] are least upper / greatest lower bounds —
    e.g. [join Acquire Release = Acq_rel] and
    [meet Acquire Release = Relaxed]. *)

(** [stronger_than a b] holds when [a] provides every ordering guarantee
    [b] does (reflexive: [stronger_than a a] for all [a]). *)
val stronger_than : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t
