type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  create (mix64 s)

(* Splitmix64's stream is a pure function of the index: the i-th draw of
   [create base] is [mix64 (base + (i+1) * gamma)].  Computing it directly
   lets a campaign hand execution [index] its seed without replaying the
   stream — any worker of a sharded campaign derives the same seed for the
   same execution index, which is what makes parallel campaigns merge
   bit-identically with sequential ones. *)
let substream base ~index =
  if index < 0 then invalid_arg "Rng.substream: index must be non-negative";
  mix64 (Int64.add base (Int64.mul golden_gamma (Int64.of_int (index + 1))))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int r /. float_of_int (1 lsl 53)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t mean =
  if mean <= 1 then 1
  else begin
    let p = 1.0 /. float_of_int mean in
    let u = float t in
    let u = if u <= 0.0 then epsilon_float else u in
    let n = int_of_float (ceil (log u /. log (1.0 -. p))) in
    max 1 n
  end
