type t =
  | Controlled_random of { batch_stores : bool }
  | Bursty of { mean_burst : int }
  | Priority of { change_points : int }
  | Round_robin

type state = {
  mutable last_tid : int;
  mutable last_was_store : bool;
  mutable burst_left : int;
  mutable priorities : float array;  (** higher runs first *)
  mutable steps : int;
}

let make_state () =
  {
    last_tid = -1;
    last_was_store = false;
    burst_left = 0;
    priorities = [||];
    steps = 0;
  }

let note_executed st ~tid ~was_rlx_or_rel_store =
  st.last_tid <- tid;
  st.last_was_store <- was_rlx_or_rel_store

(* The array variants below read [enabled.(0 .. n-1)], expected in
   ascending tid order (as the engine builds them), and draw from the RNG
   in exactly the order the original list-based code did — the engine's
   fixed-seed determinism contract depends on that. *)

let arr_mem x (arr : int array) n =
  let rec go i = i < n && (Array.unsafe_get arr i = x || go (i + 1)) in
  go 0

let random_pick_n rng (enabled : int array) n =
  if n = 1 then enabled.(0) else enabled.(Rng.int rng n)

let ensure_priorities st rng n =
  let len = Array.length st.priorities in
  if n > len then begin
    let p = Array.init (max n (2 * max 4 len)) (fun _ -> Rng.float rng) in
    Array.blit st.priorities 0 p 0 len;
    st.priorities <- p
  end

let pick_n t st rng ~(enabled : int array) ~n ~pending_is_rlx_store =
  if n <= 0 then invalid_arg "Schedule.pick: no enabled thread";
  st.steps <- st.steps + 1;
  match t with
  | Controlled_random { batch_stores } ->
    if
      batch_stores && st.last_was_store
      && arr_mem st.last_tid enabled n
      && pending_is_rlx_store st.last_tid
    then st.last_tid
    else random_pick_n rng enabled n
  | Bursty { mean_burst } ->
    if st.burst_left > 0 && arr_mem st.last_tid enabled n then begin
      st.burst_left <- st.burst_left - 1;
      st.last_tid
    end
    else begin
      let tid = random_pick_n rng enabled n in
      st.burst_left <- Rng.geometric rng mean_burst - 1;
      tid
    end
  | Priority { change_points } ->
    let top = ref 0 in
    for i = 0 to n - 1 do
      if enabled.(i) > !top then top := enabled.(i)
    done;
    ensure_priorities st rng (!top + 1);
    (* a change point demotes the thread that just ran *)
    if
      st.last_tid >= 0
      && change_points > 0
      (* on average [change_points] demotions per ~1000 decisions *)
      && Rng.int rng 1000 < change_points
    then
      st.priorities.(st.last_tid) <-
        st.priorities.(st.last_tid) -. 1.0;
    let best = ref enabled.(0) in
    for i = 1 to n - 1 do
      let tid = enabled.(i) in
      if st.priorities.(tid) > st.priorities.(!best) then best := tid
    done;
    !best
  | Round_robin ->
    let chosen = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if enabled.(i) > st.last_tid then begin
           chosen := enabled.(i);
           raise Exit
         end
       done
     with Exit -> ());
    if !chosen >= 0 then !chosen else enabled.(0)

let pick t st rng ~enabled ~pending_is_rlx_store =
  match enabled with
  | [] -> invalid_arg "Schedule.pick: no enabled thread"
  | _ ->
    let arr = Array.of_list enabled in
    pick_n t st rng ~enabled:arr ~n:(Array.length arr) ~pending_is_rlx_store

let pp fmt = function
  | Controlled_random { batch_stores } ->
    Format.fprintf fmt "controlled-random%s"
      (if batch_stores then "+store-batching" else "")
  | Bursty { mean_burst } -> Format.fprintf fmt "bursty(%d)" mean_burst
  | Priority { change_points } -> Format.fprintf fmt "pct(%d)" change_points
  | Round_robin -> Format.pp_print_string fmt "round-robin"
