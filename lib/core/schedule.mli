(** Thread-scheduling strategies (Section 3 of the paper).

    C11Tester makes a scheduling decision at every visible operation and
    has a pluggable framework for strategies; the default is random
    selection with one refinement: consecutive release/relaxed stores by
    one thread run without interruption, which enlarges may-read-from sets
    and removes the bias illustrated by Figure 4.

    Additional plugins provided by this reproduction:

    - [Bursty] models tools that do {e not} control scheduling (tsan11):
      the OS runs a thread for a whole quantum, so visible operations come
      in long per-thread bursts;
    - [Priority] is a PCT-style strategy (Burckhardt et al.): threads get
      random priorities, the highest-priority enabled thread always runs,
      and priorities are reshuffled at a few random change points — good at
      exposing bugs that need one thread to stall for a long window;
    - [Round_robin] is a deterministic baseline useful for debugging. *)

type t =
  | Controlled_random of { batch_stores : bool }
      (** pick uniformly at random at every visible operation; with
          [batch_stores], keep running a thread whose next operation
          extends a run of release/relaxed stores *)
  | Bursty of { mean_burst : int }
      (** keep running the current thread for a geometrically distributed
          number of visible operations *)
  | Priority of { change_points : int }
      (** PCT-style: run the highest-priority enabled thread; demote the
          running thread to the lowest priority at roughly [change_points]
          random points per execution *)
  | Round_robin

(** Per-execution scheduler state. *)
type state

val make_state : unit -> state

(** Tell the scheduler what the thread it just ran actually did, so the
    store-batching rule can recognise store runs. *)
val note_executed : state -> tid:int -> was_rlx_or_rel_store:bool -> unit

(** [pick_n t state rng ~enabled ~n ~pending_is_rlx_store] chooses the
    next thread among [enabled.(0 .. n-1)] (ascending tids, non-empty).
    This is the engine's per-step entry point: the caller reuses one
    buffer across steps and no list is allocated.  [pending_is_rlx_store
    tid] reports whether [tid]'s next visible operation is a
    release/relaxed atomic store.  RNG draws are made in the same order as
    {!pick} on the equivalent list. *)
val pick_n :
  t ->
  state ->
  Rng.t ->
  enabled:int array ->
  n:int ->
  pending_is_rlx_store:(int -> bool) ->
  int

(** List-based convenience wrapper over {!pick_n} (allocates; for tests). *)
val pick :
  t ->
  state ->
  Rng.t ->
  enabled:int list ->
  pending_is_rlx_store:(int -> bool) ->
  int

val pp : Format.formatter -> t -> unit
