(** Memory actions (the [LoadElem]/[StoreElem]/[RMWElem]/[FenceElem] records
    of Figure 10).

    Every visible memory operation gets a globally unique, strictly
    increasing sequence number; sequence numbers double as event identities
    and as the epochs stored in clock vectors.  Synchronisation operations
    (mutexes, thread create/join) also consume sequence numbers but are not
    materialised as actions — their only memory-model effect is on the
    happens-before clock vectors. *)

type kind =
  | Load
  | Store
  | Rmw
  | Na_store
      (** A non-atomic store to a location that is also accessed atomically:
          [atomic_init], memory reuse, or raw copies (Section 7.2).  It
          participates in modification order like a relaxed store but races
          like a plain access and never heads a release sequence. *)
  | Fence

(** Extension point for the per-action mo-graph node cache.  {!Mograph}
    extends it with its node type, letting an action carry a direct pointer
    to its graph node without a module cycle (Action is below Mograph in
    the dependency order).  Everyone else initialises the slot to
    {!No_graph_node} and otherwise ignores it. *)
type graph_node = ..

type graph_node += No_graph_node

type t = {
  seq : int;
  tid : int;
  kind : kind;
  loc : int;  (** [-1] for fences *)
  mo : Memorder.t;
  mutable value : int;  (** value written, or — for loads — the value read *)
  mutable rf : t option;  (** the store a load/RMW read from *)
  hb_cv : Clockvec.t;
      (** snapshot of the executing thread's clock vector [C_t] at this
          action (including the action's own slot and, for acquire reads,
          the synchronisation just formed) *)
  mutable rf_cv : Clockvec.t option;
      (** the reads-from clock vector [RF_s] of a store/RMW: what a reader
          acquires when it synchronises with the release sequence this store
          belongs to *)
  mutable rmw_claimed : bool;
      (** true once an RMW has read from this store; no second RMW may *)
  volatile : bool;
  mutable mo_node : graph_node;
      (** {!Mograph}'s cached node for this store ({!No_graph_node} until
          the store enters the graph) — spares a hash lookup on every
          prior-set edge *)
}

val is_write : t -> bool
val is_read : t -> bool

(** [happens_before a b]: [a -hb-> b], decided from [b]'s clock-vector
    snapshot. *)
val happens_before : t -> t -> bool

val pp : Format.formatter -> t -> unit
