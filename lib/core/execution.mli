(** The operational model of C11Tester's C/C++ memory-model fragment
    (Sections 3, 4 and 6 of the paper).

    This module owns all per-execution memory-model state: the global
    sequence counter, per-thread happens-before clock vectors
    ([C], [F^rel], [F^acq] of Figure 9), per-location action lists
    ([ALocInfo] of Figure 10), the seq-cst fence lists, and the mo-graph.
    The exported operations implement the [ATOMIC LOAD]/[STORE]/[RMW]/
    [FENCE] transition rules of Figure 11, using [BuildMayReadFrom]
    (Figure 12) and [ReadPriorSet]/[WritePriorSet] (Figure 13).

    Two memory modes are supported:

    - {!Full_c11} — the paper's fragment: modification order is a set of
      constraints in the mo-graph, so loads may read stores whose
      modification order is inconsistent with execution order.
    - {!Total_mo} — the tsan11/tsan11rec restriction (Section 1.1):
      [hb ∪ sc ∪ rf ∪ mo] must be acyclic with [mo] fixed to store commit
      order.  Used by the baseline tools in the evaluation.

    The record types are exposed so that {!Pruner} (Section 7.1) can walk
    and trim the execution graph. *)

type mode = Full_c11 | Total_mo

(** Deliberate, test-only engine faults.  Each mutation removes one piece
    of memory-model bookkeeping while leaving the rest of the engine
    intact; they exist so the oracle pipeline (axiomatic certifier +
    fuzzer, see [lib/fuzz]) can prove end-to-end that it detects a real
    engine bug.  [None] — the default everywhere — is the correct
    engine; production code never sets a mutation.

    - [Skip_acquire_merge] — acquire loads/RMWs merge the observed
      reads-from clock into the acquire-fence clock instead of the thread
      clock, i.e. every rf-induced synchronizes-with edge is dropped on
      the reader side;
    - [Drop_mo_edge] — every mo-graph update silently loses one of its
      constraint edges;
    - [Weak_release_store] — release stores publish the release-fence
      clock instead of the thread clock, as if they were relaxed (a stale
      clock merge on the writer side). *)
type mutation = Skip_acquire_merge | Drop_mo_edge | Weak_release_store

val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

(** All mutations, for tests that must detect every one. *)
val all_mutations : mutation list

exception Model_error of string

(** Decision returned by an RMW functor: [Rmw_keep] models a failed
    compare-exchange (the operation degenerates to a load), [Rmw_write v]
    stores [v]. *)
type rmw_decision = Rmw_keep | Rmw_write of int

type thread_state = {
  tid : int;
  mutable c : Clockvec.t;  (** C_t: the thread's happens-before clock *)
  mutable frel : Clockvec.t;  (** F^rel_t: release-fence clock *)
  mutable facq : Clockvec.t;  (** F^acq_t: acquire-fence clock *)
  mutable sc_fences : Action.t list;  (** newest first *)
  mutable live : bool;
}

(** Per-(location, thread) action lists, newest first. *)
type loc_cell = {
  cell_tid : int;
  mutable c_stores : Action.t list;  (** stores, RMWs and na-stores *)
  mutable c_accesses : Action.t list;  (** loads as well *)
  mutable c_sc_stores : Action.t list;
}

type loc_info = {
  li_loc : int;
  mutable cells : loc_cell list;
  mutable cell_idx : loc_cell option array;
      (** tid-indexed view of [cells], so per-access cell lookup is an array
          probe; {!Pruner} may keep iterating [cells], which stays in sync *)
  mutable last_sc : Action.t option;
      (** newest seq_cst store, maintained incrementally by the store rules;
          after pruning stores call {!refresh_loc_caches} *)
  mutable newest : Action.t option;  (** newest store of any order; ditto *)
  mutable store_count : int;
  mutable rel_head : (int * Clockvec.t) option;
      (** Total_mo only: current C++11-style release-sequence head (owner
          thread, clock at the release).  The tsan-lineage baselines use the
          2011 release-sequence definition, under which later relaxed stores
          by the same thread continue the sequence. *)
}

(** A synchronisation edge recorded for the axiomatic certifier
    ({!Check.certify} in [lib/check]): the event with sequence number
    [se_from_seq] on thread [se_from_tid] released state that the event
    [se_to_seq] on thread [se_to_tid] acquired — thread spawn, join, or a
    mutex unlock→lock hand-off.  [se_to_seq = 0] means "before the target
    thread's first event" (thread start).  Only recorded when the
    execution was created with [~certify:true]. *)
type sync_edge = {
  se_from_tid : int;
  se_from_seq : int;
  se_to_tid : int;
  se_to_seq : int;
}

(** Incremental certification sink (implemented by [Check.Stream] in
    [lib/check]; this module only drives it).  [cs_action] is called once
    per action, after its reads-from field and mo-graph edges are final;
    [cs_edge] once per synchronisation edge, after the source release was
    announced via [cs_release] — so the sink can snapshot its replica
    clocks at the release point instead of retaining history.
    [cs_release_drop] retires a release snapshot that no future edge can
    name (a superseded mutex unlock). *)
type cert_sink = {
  cs_action : Action.t -> unit;
  cs_edge : sync_edge -> unit;
  cs_release : tid:int -> seq:int -> unit;
  cs_release_drop : seq:int -> unit;
}

type t = {
  mode : mode;
  rng : Rng.t;
  race : Race.t;
  graph : Mograph.t;
  obs : Obs.t;  (** C11obs event tracer; {!Obs.null} when tracing is off *)
  prof : Profile.t;  (** per-phase span timers; {!Profile.null} when off *)
  metrics : Metrics.t;  (** counters/histograms; {!Metrics.null} when off *)
  obs_on : bool;
      (** [Obs.enabled obs] (and likewise below), cached at creation so the
          guards on the transition rules are a field load, not a call *)
  prof_on : bool;
  metrics_on : bool;
  cert_on : bool;
      (** record the full action trace and synchronisation edges for the
          axiomatic certifier; off by default (zero cost) *)
  mutation : mutation option;
      (** test-only seeded engine fault; [None] (the default) is the
          correct engine *)
  cert_record : bool;
      (** retain the full certification history below; off when a
          streaming sink consumes events instead, so recording no longer
          holds the whole run (scale tier) *)
  mutable cert_sink : cert_sink option;
  mutable cert_trace_rev : Action.t list;
      (** every action, newest first (unbounded, unlike [trace_rev]);
          mutable so certifier self-tests can corrupt a recorded execution *)
  mutable cert_sync_rev : sync_edge list;  (** newest first; ditto *)
  mutable seq : int;
  mutable threads : thread_state array;
  mutable nthreads : int;
  mutable locs : loc_info option array;
      (** loc-indexed: locations are dense small ints from {!fresh_loc}, so
          all loc-keyed state is direct-indexed growable arrays *)
  mutable values : int array;
      (** commit-order value of every location (0 when never written); what
          a plain non-atomic read observes *)
  mutable atomic_locs : bool array;
  mutable next_loc : int;
  mutable atomic_ops : int;  (** atomic + synchronisation operations *)
  mutable na_ops : int;  (** plain shared-memory accesses *)
  mutable max_graph_size : int;
  mutable pruned_count : int;
  mutable trace_cap : int;  (** 0 = tracing off *)
  mutable trace_rev : Action.t list;  (** current generation, newest first *)
  mutable trace_old : Action.t list;
      (** previous generation; together with [trace_rev] always holds the
          newest [trace_cap] actions *)
  mutable trace_n : int;
  mutable mrf_buf : Action.t array;
      (** reusable may-read-from scratch buffer; only [mrf_buf.(0..mrf_n-1)]
          are meaningful, and only within one transition rule *)
  mutable mrf_n : int;
}

(** [create ~mode ~rng ~race] builds a fresh execution.  The optional
    C11obs handles default to the disabled singletons, making all
    instrumentation in the transition rules zero-cost. *)
val create :
  ?obs:Obs.t ->
  ?prof:Profile.t ->
  ?metrics:Metrics.t ->
  ?certify:bool ->
  ?cert_record:bool ->
  ?mutation:mutation ->
  mode:mode ->
  rng:Rng.t ->
  race:Race.t ->
  unit ->
  t

val thread : t -> int -> thread_state

(** Allocate a fresh location.  Atomic locations participate in the
    mo-graph; non-atomic ones only in the race detector and value table. *)
val fresh_loc : t -> atomic:bool -> name:string option -> int

val is_atomic_loc : t -> int -> bool

(** [new_thread t ~parent] registers a thread; the child's clock vector
    starts as a copy of the parent's (the additional-synchronizes-with edge
    of thread creation). *)
val new_thread : t -> parent:int option -> int

(** [tick_sync t ~tid] consumes a sequence number for a synchronisation
    operation (mutex, condvar, thread create/join/finish) and advances the
    thread's clock. *)
val tick_sync : t -> tid:int -> unit

(** [acquire_cv t ~tid cv] merges [cv] into the thread's clock — the
    acquire half of lock acquisition, condvar wakeup and thread join. *)
val acquire_cv : t -> tid:int -> Clockvec.t -> unit

(** Sequence number of the thread's most recent event (its own clock
    slot) — what a synchronisation edge recorded right now would name. *)
val thread_now : t -> tid:int -> int

(** [cert_sync_edge t ...] records one synchronisation edge for the
    certifier.  {!new_thread} records spawn edges itself; the engine
    records join and mutex hand-off edges (it owns mutex identity).
    Callers should guard on [t.cert_on]. *)
val cert_sync_edge :
  t -> from_tid:int -> from_seq:int -> to_tid:int -> to_seq:int -> unit

(** Install a streaming certification sink.  Must be done before the
    first transition; only meaningful with [~certify:true]. *)
val set_cert_sink : t -> cert_sink -> unit

(** [cert_release t ~tid] announces the thread's current clock slot as a
    release point to the sink (thread finish, mutex unlock; spawn is
    announced by {!new_thread} itself).  No-op without a sink. *)
val cert_release : t -> tid:int -> unit

(** [cert_release_drop t ~seq] tells the sink the release snapshot taken
    at [seq] can no longer be named by a future edge. *)
val cert_release_drop : t -> seq:int -> unit

(** [release_snapshot t ~tid] is a copy of the thread's current clock — the
    release half of unlock / signal / thread finish. *)
val release_snapshot : t -> tid:int -> Clockvec.t

val atomic_load :
  t -> tid:int -> loc:int -> mo:Memorder.t -> volatile:bool -> int

val atomic_store :
  t -> tid:int -> loc:int -> mo:Memorder.t -> volatile:bool -> int -> unit

(** [atomic_rmw t ~tid ~loc ~mo ~volatile ~f] reads a store, applies [f] to
    the value read and either stores the result atomically or (on
    [Rmw_keep]) degenerates to a load.  Returns the value read. *)
val atomic_rmw :
  t ->
  tid:int ->
  loc:int ->
  mo:Memorder.t ->
  volatile:bool ->
  f:(int -> rmw_decision) ->
  int

val fence : t -> tid:int -> mo:Memorder.t -> unit

val na_read : t -> tid:int -> loc:int -> int
val na_write : t -> tid:int -> loc:int -> int -> unit

(** Rebuild a location's [last_sc]/[newest] caches from its cell heads.
    {!Pruner} must call this for every location it removed stores from. *)
val refresh_loc_caches : loc_info -> unit

(** Number of stores currently retained across all atomic locations. *)
val graph_footprint : t -> int

(** [set_trace_capacity t n] keeps the most recent [n] memory actions for
    debugging; [trace t] returns them oldest first. *)
val set_trace_capacity : t -> int -> unit

val trace : t -> Action.t list

(** The post-hoc certifier's inputs, oldest first: every action of the
    execution (including materialised non-sc fences) and every
    synchronisation edge.  Both are empty unless the execution was created
    with [~certify:true] and recording on (the default; a streaming sink
    with [~cert_record:false] consumes the events instead). *)
val cert_trace : t -> Action.t list

val cert_sync_edges : t -> sync_edge list

(** Internal helpers exposed for tests. *)
module Internal : sig
  val build_may_read_from :
    t -> loc_info -> thread_state -> is_sc:bool -> Action.t list

  val last_sc_store : loc_info -> Action.t option
  val find_loc : t -> int -> loc_info option
end
