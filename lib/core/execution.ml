type mode = Full_c11 | Total_mo

(* Deliberate, test-only engine faults (see the .mli).  Each one removes a
   piece of bookkeeping the memory model depends on; the axiomatic
   certifier (lib/check) and the fuzz oracle (lib/fuzz) must detect all of
   them from the outside. *)
type mutation = Skip_acquire_merge | Drop_mo_edge | Weak_release_store

let mutation_name = function
  | Skip_acquire_merge -> "skip-acquire-merge"
  | Drop_mo_edge -> "drop-mo-edge"
  | Weak_release_store -> "weak-release-store"

let mutation_of_string = function
  | "skip-acquire-merge" -> Some Skip_acquire_merge
  | "drop-mo-edge" -> Some Drop_mo_edge
  | "weak-release-store" -> Some Weak_release_store
  | _ -> None

let all_mutations = [ Skip_acquire_merge; Drop_mo_edge; Weak_release_store ]

exception Model_error of string

type rmw_decision = Rmw_keep | Rmw_write of int

type thread_state = {
  tid : int;
  mutable c : Clockvec.t;
  mutable frel : Clockvec.t;
  mutable facq : Clockvec.t;
  mutable sc_fences : Action.t list;
  mutable live : bool;
}

type loc_cell = {
  cell_tid : int;
  mutable c_stores : Action.t list;
  mutable c_accesses : Action.t list;
  mutable c_sc_stores : Action.t list;
}

(* A synchronisation edge recorded for the certifier: the event at
   [se_from_tid]'s sequence number [se_from_seq] released state that the
   event at [se_to_tid]/[se_to_seq] acquired (thread spawn, join, mutex
   hand-off).  [se_to_seq = 0] means "before the target thread's first
   event" (thread start). *)
type sync_edge = {
  se_from_tid : int;
  se_from_seq : int;
  se_to_tid : int;
  se_to_seq : int;
}

(* Incremental certification sink (the streaming certifier in lib/check
   implements one; this module only drives it).  Actions are fed once
   their reads-from field is final; release points are fed for every
   event a future sync edge may name as its source (thread spawn and
   finish, mutex unlock), so the sink can snapshot its own clocks at the
   release instead of retaining history.  [cs_release_drop] retires a
   release snapshot that can no longer be named (a superseded unlock). *)
type cert_sink = {
  cs_action : Action.t -> unit;
  cs_edge : sync_edge -> unit;
  cs_release : tid:int -> seq:int -> unit;
  cs_release_drop : seq:int -> unit;
}

type loc_info = {
  li_loc : int;
  mutable cells : loc_cell list;
  mutable cell_idx : loc_cell option array;
      (** tid-indexed view of [cells]: the per-load/store cell lookup is an
          array probe instead of a list scan *)
  mutable last_sc : Action.t option;
      (** newest seq_cst store to this location, maintained incrementally
          by [record_store] (a new store always has the global max seq) and
          rebuilt by {!refresh_loc_caches} after pruning *)
  mutable newest : Action.t option;  (** newest store of any order; ditto *)
  mutable store_count : int;
  mutable rel_head : (int * Clockvec.t) option;
      (** Total_mo mode only: the C++11-style release-sequence head (owner
          thread, its clock at the release) still in force at this
          location.  tsan-lineage tools implement the 2011 release-sequence
          definition, under which later relaxed stores by the same thread
          continue the sequence; C11Tester uses the C++20 definition where
          they do not (Section 2.2, change 1). *)
}

type t = {
  mode : mode;
  rng : Rng.t;
  race : Race.t;
  graph : Mograph.t;
  obs : Obs.t;
  prof : Profile.t;
  metrics : Metrics.t;
  (* [Obs.enabled obs] etc., cached at creation: the guards sit on every
     transition rule, and a field load + branch is free while a
     cross-module call is not (no flambda to inline it away). *)
  obs_on : bool;
  prof_on : bool;
  metrics_on : bool;
  cert_on : bool;
  mutation : mutation option;
      (** test-only seeded engine fault; [None] (the default) is the
          correct engine *)
  cert_record : bool;
      (** retain the full [cert_trace_rev]/[cert_sync_rev] history; off
          when a streaming sink consumes events instead (scale tier) *)
  mutable cert_sink : cert_sink option;
  mutable cert_trace_rev : Action.t list;
  mutable cert_sync_rev : sync_edge list;
  mutable seq : int;
  mutable threads : thread_state array;
  mutable nthreads : int;
  (* Locations are dense small ints handed out by [fresh_loc], so all
     loc-keyed state is direct-indexed growable arrays: the per-access
     lookups on the non-atomic hot path are a bounds check and a load. *)
  mutable locs : loc_info option array;
  mutable values : int array;
  mutable atomic_locs : bool array;
  mutable next_loc : int;
  mutable atomic_ops : int;
  mutable na_ops : int;
  mutable max_graph_size : int;
  mutable pruned_count : int;
  mutable trace_cap : int;
  mutable trace_rev : Action.t list;
  mutable trace_old : Action.t list;
  mutable trace_n : int;
  mutable mrf_buf : Action.t array;
      (* reusable may-read-from scratch: one growable buffer per execution
         instead of a fresh list + array per atomic load/RMW *)
  mutable mrf_n : int;
}

(* Placeholder for growing [mrf_buf]; never read. *)
let dummy_action : Action.t =
  {
    Action.seq = 0;
    tid = 0;
    kind = Action.Fence;
    loc = -1;
    mo = Memorder.Relaxed;
    value = 0;
    rf = None;
    hb_cv = Clockvec.bottom ();
    rf_cv = None;
    rmw_claimed = false;
    volatile = false;
    mo_node = Action.No_graph_node;
  }

let create ?(obs = Obs.null) ?(prof = Profile.null) ?(metrics = Metrics.null)
    ?(certify = false) ?cert_record ?mutation ~mode ~rng ~race () =
  let cert_record =
    match cert_record with Some b -> b | None -> certify
  in
  {
    mode;
    rng;
    race;
    graph = Mograph.create ();
    obs;
    prof;
    metrics;
    obs_on = Obs.enabled obs;
    prof_on = Profile.enabled prof;
    metrics_on = Metrics.enabled metrics;
    cert_on = certify;
    mutation;
    cert_record = certify && cert_record;
    cert_sink = None;
    cert_trace_rev = [];
    cert_sync_rev = [];
    seq = 0;
    threads = [||];
    nthreads = 0;
    locs = [||];
    values = [||];
    atomic_locs = [||];
    next_loc = 0;
    atomic_ops = 0;
    na_ops = 0;
    max_graph_size = 0;
    pruned_count = 0;
    trace_cap = 0;
    trace_rev = [];
    trace_old = [];
    trace_n = 0;
    mrf_buf = [||];
    mrf_n = 0;
  }

let thread t tid =
  if tid < 0 || tid >= t.nthreads then
    raise (Model_error (Printf.sprintf "unknown thread %d" tid));
  t.threads.(tid)

let fresh_loc t ~atomic ~name =
  let loc = t.next_loc in
  t.next_loc <- loc + 1;
  if atomic then begin
    let len = Array.length t.atomic_locs in
    if loc >= len then begin
      let arr = Array.make (max (loc + 1) (max 16 (2 * len))) false in
      Array.blit t.atomic_locs 0 arr 0 len;
      t.atomic_locs <- arr
    end;
    t.atomic_locs.(loc) <- true
  end;
  (match name with
  | Some n -> Race.name_location t.race ~loc n
  | None -> ());
  loc

let is_atomic_loc t loc =
  loc < Array.length t.atomic_locs && Array.unsafe_get t.atomic_locs loc

let cert_sync_edge t ~from_tid ~from_seq ~to_tid ~to_seq =
  let e =
    { se_from_tid = from_tid; se_from_seq = from_seq; se_to_tid = to_tid; se_to_seq = to_seq }
  in
  if t.cert_record then t.cert_sync_rev <- e :: t.cert_sync_rev;
  match t.cert_sink with Some s -> s.cs_edge e | None -> ()

(* Current sequence number of the thread's own clock slot — the seq of its
   most recent event (action or synchronisation tick). *)
let thread_now t ~tid = Clockvec.get (thread t tid).c tid

let set_cert_sink t sink = t.cert_sink <- Some sink

let cert_feed t a =
  match t.cert_sink with Some s -> s.cs_action a | None -> ()

(* Announce a release point (thread spawn/finish, mutex unlock): the
   streaming certifier snapshots its replica clocks here so a later sync
   edge naming this (tid, seq) needs no retained history. *)
let cert_release t ~tid =
  match t.cert_sink with
  | Some s -> s.cs_release ~tid ~seq:(thread_now t ~tid)
  | None -> ()

let cert_release_drop t ~seq =
  match t.cert_sink with Some s -> s.cs_release_drop ~seq | None -> ()

let new_thread t ~parent =
  let tid = t.nthreads in
  let c =
    match parent with
    | Some p -> Clockvec.copy (thread t p).c
    | None -> Clockvec.bottom ()
  in
  let ts =
    { tid; c; frel = Clockvec.bottom (); facq = Clockvec.bottom (); sc_fences = []; live = true }
  in
  let threads = Array.make (tid + 1) ts in
  Array.blit t.threads 0 threads 0 t.nthreads;
  t.threads <- threads;
  t.nthreads <- tid + 1;
  (* The child inherits the parent's whole clock (the
     additional-synchronizes-with edge of thread creation); for the
     certifier that is an edge from the parent's latest event to the
     child's start. *)
  (if t.cert_on then
     match parent with
     | Some p ->
       cert_release t ~tid:p;
       cert_sync_edge t ~from_tid:p ~from_seq:(thread_now t ~tid:p) ~to_tid:tid
         ~to_seq:0
     | None -> ());
  tid

let tick t ts =
  t.seq <- t.seq + 1;
  Clockvec.set ts.c ts.tid t.seq;
  t.seq

let tick_sync t ~tid =
  let ts = thread t tid in
  ignore (tick t ts);
  t.atomic_ops <- t.atomic_ops + 1

let acquire_cv t ~tid cv =
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  ignore (Clockvec.merge (thread t tid).c cv);
  if t.prof_on then Profile.stop t.prof "cv_merge" p0

let release_snapshot t ~tid = Clockvec.copy (thread t tid).c

(* ------------------------------------------------------------------ *)
(* Location bookkeeping                                               *)

let find_loc t loc =
  if loc < Array.length t.locs then Array.unsafe_get t.locs loc else None

let get_loc t loc =
  match find_loc t loc with
  | Some li -> li
  | None ->
    let li =
      {
        li_loc = loc;
        cells = [];
        cell_idx = [||];
        last_sc = None;
        newest = None;
        store_count = 0;
        rel_head = None;
      }
    in
    let len = Array.length t.locs in
    if loc >= len then begin
      let arr = Array.make (max (loc + 1) (max 16 (2 * len))) None in
      Array.blit t.locs 0 arr 0 len;
      t.locs <- arr
    end;
    t.locs.(loc) <- Some li;
    li

(* Commit-order value of each location; what a plain non-atomic read sees. *)
let set_value t loc v =
  let len = Array.length t.values in
  if loc >= len then begin
    let arr = Array.make (max (loc + 1) (max 16 (2 * len))) 0 in
    Array.blit t.values 0 arr 0 len;
    t.values <- arr
  end;
  Array.unsafe_set t.values loc v

let get_value t loc =
  if loc < Array.length t.values then Array.unsafe_get t.values loc else 0

let new_cell li tid =
  let c = { cell_tid = tid; c_stores = []; c_accesses = []; c_sc_stores = [] } in
  li.cells <- c :: li.cells;
  let len = Array.length li.cell_idx in
  if tid >= len then begin
    let idx = Array.make (max (tid + 1) (max 4 (2 * len))) None in
    Array.blit li.cell_idx 0 idx 0 len;
    li.cell_idx <- idx
  end;
  li.cell_idx.(tid) <- Some c;
  c

let get_cell li tid =
  if tid < Array.length li.cell_idx then
    match Array.unsafe_get li.cell_idx tid with
    | Some c -> c
    | None -> new_cell li tid
  else new_cell li tid

let find_cell li tid =
  if tid < Array.length li.cell_idx then Array.unsafe_get li.cell_idx tid
  else None

let record_store li (a : Action.t) =
  let cell = get_cell li a.tid in
  cell.c_stores <- a :: cell.c_stores;
  cell.c_accesses <- a :: cell.c_accesses;
  (* Sequence numbers are globally increasing, so the store being recorded
     is the location's newest — the caches stay exact without a scan. *)
  li.newest <- Some a;
  if Memorder.is_seq_cst a.mo then begin
    cell.c_sc_stores <- a :: cell.c_sc_stores;
    li.last_sc <- Some a
  end;
  li.store_count <- li.store_count + 1

let record_load li (a : Action.t) =
  let cell = get_cell li a.tid in
  cell.c_accesses <- a :: cell.c_accesses

(* Rebuild [last_sc]/[newest] from the cell heads; the pruner calls this
   after removing stores, the only event that can invalidate them. *)
let refresh_loc_caches li =
  let newest = ref None and last_sc = ref None in
  List.iter
    (fun cell ->
      (match cell.c_stores with
      | (x : Action.t) :: _ -> (
        match !newest with
        | Some (y : Action.t) when y.seq >= x.seq -> ()
        | _ -> newest := Some x)
      | [] -> ());
      match cell.c_sc_stores with
      | (x : Action.t) :: _ -> (
        match !last_sc with
        | Some (y : Action.t) when y.seq >= x.seq -> ()
        | _ -> last_sc := Some x)
      | [] -> ())
    li.cells;
  li.newest <- !newest;
  li.last_sc <- !last_sc

let last_sc_store li = li.last_sc

(* ------------------------------------------------------------------ *)
(* may-read-from (Figure 12)                                           *)

let mrf_push t (a : Action.t) =
  let n = t.mrf_n in
  if n = Array.length t.mrf_buf then begin
    let cap = if n = 0 then 16 else 2 * n in
    let arr = Array.make cap dummy_action in
    Array.blit t.mrf_buf 0 arr 0 n;
    t.mrf_buf <- arr
  end;
  t.mrf_buf.(n) <- a;
  t.mrf_n <- n + 1

(* For each thread's store list (newest first): every store that does not
   happen before the load is a candidate; the newest store that does happen
   before the load is the final candidate for that thread (anything older is
   hidden behind it: X -sb-> Y -hb-> L).

   Candidates land in [t.mrf_buf] (first [t.mrf_n] slots) — the one scratch
   buffer replaces the list + [Array.of_list] pair the previous version
   allocated per load.  The buffer is reversed before returning so its
   order matches the old prepend-built list bit for bit (the seq_cst
   filter commutes with the reversal because both preserve relative
   order), keeping the downstream shuffle's RNG draws identical. *)
let build_may_read_from_buf t li ts ~is_sc =
  t.mrf_n <- 0;
  let keep =
    if is_sc then
      match li.last_sc with
      | None -> fun _ -> true
      | Some s ->
        (* Section 29.3 statement 3: a seq_cst load reads the last seq_cst
           store S, or some store that neither precedes S in sc nor happens
           before S. *)
        fun (x : Action.t) ->
          x == s
          || not
               ((Memorder.is_seq_cst x.mo && x.seq < s.seq)
               || Action.happens_before x s)
    else fun _ -> true
  in
  (* raw clock scan: [covered] is [Clockvec.covers ts.c] with the slot
     array hoisted out of the per-store loop *)
  let cd = Clockvec.raw ts.c in
  let nc = Array.length cd in
  List.iter
    (fun cell ->
      let rec walk = function
        | [] -> ()
        | (x : Action.t) :: rest ->
          if keep x then mrf_push t x;
          let covered = x.tid < nc && x.seq <= Array.unsafe_get cd x.tid in
          if not covered then walk rest
      in
      walk cell.c_stores)
    li.cells;
  let buf = t.mrf_buf in
  let i = ref 0 and j = ref (t.mrf_n - 1) in
  while !i < !j do
    let tmp = buf.(!i) in
    buf.(!i) <- buf.(!j);
    buf.(!j) <- tmp;
    incr i;
    decr j
  done

(* List view of the scratch buffer, for tests. *)
let build_may_read_from t li ts ~is_sc =
  build_may_read_from_buf t li ts ~is_sc;
  Array.to_list (Array.sub t.mrf_buf 0 t.mrf_n)

(* ------------------------------------------------------------------ *)
(* priorsets (Figure 13)                                               *)

let get_write (a : Action.t) =
  match a.kind with
  | Action.Store | Action.Rmw | Action.Na_store -> Some a
  | Action.Load -> a.rf
  | Action.Fence -> None

(* First (newest) action in a newest-first list with seq below [bound]. *)
let rec first_before bound = function
  | [] -> None
  | (x : Action.t) :: rest ->
    if x.seq < bound then Some x else first_before bound rest

(* [current]'s slot array with its length, hoisted by the caller. *)
let rec first_covered cd nc = function
  | [] -> None
  | (x : Action.t) :: rest ->
    if x.tid < nc && x.seq <= Array.unsafe_get cd x.tid then Some x
    else first_covered cd nc rest

let newer (acc : Action.t option) (c : Action.t option) =
  match (acc, c) with
  | None, x -> x
  | Some _, None -> acc
  | Some a, Some b -> if b.seq > a.seq then c else acc

(* Shared scan over one thread's lists; [current] is the acting thread's
   clock vector used for happens-before tests against the action being
   processed (which has no record yet).  This runs once per thread per
   candidate store tried, so the scans are direct recursions — no
   intermediate closures or candidate list. *)
let prior_for_thread t li ~u ~last_fence_of_actor ~is_sc_op ~current =
  let tsu = t.threads.(u) in
  let cell = find_cell li u in
  let stores = match cell with None -> [] | Some c -> c.c_stores in
  let s1 =
    if is_sc_op then
      match tsu.sc_fences with
      | [] -> None
      | (ft : Action.t) :: _ -> first_before ft.seq stores
    else None
  in
  let s2 =
    match last_fence_of_actor with
    | None -> None
    | Some (fl : Action.t) -> (
      match cell with
      | None -> None
      | Some c -> first_before fl.seq c.c_sc_stores)
  in
  let s3 =
    match last_fence_of_actor with
    | None -> None
    | Some (fl : Action.t) -> (
      match first_before fl.seq tsu.sc_fences with
      | None -> None
      | Some fb -> first_before fb.seq stores)
  in
  let s4 =
    match cell with
    | None -> None
    | Some c ->
      first_covered (Clockvec.raw current) (Clockvec.width current) c.c_accesses
  in
  match newer (newer (newer s1 s2) s3) s4 with
  | None -> None
  | Some a -> get_write a

(* Is the mo constraint [e -> s] unsatisfiable given the current graph?
   In Full_c11 this is the rollback-free cycle check of Section 4.3
   (following [e]'s rmw chain as AddEdge will); with a total commit-order
   mo it is a plain order comparison. *)
let edge_infeasible t ~(from : Action.t) ~(to_ : Action.t) =
  match t.mode with
  | Full_c11 -> Mograph.edge_would_close_cycle t.graph ~from ~to_
  | Total_mo -> to_.seq <= from.seq

(* ReadPriorSet (Figure 13): the mo-edge sources a load reading [s] would
   create.  Returns [None] if any of them is already reachable from [s] —
   i.e. the read would put a cycle in the mo-graph. *)
let read_prior_set t li ts ~load_mo (s : Action.t) =
  let f_l = match ts.sc_fences with [] -> None | f :: _ -> Some f in
  let is_sc_op = Memorder.is_seq_cst load_mo in
  let priorset = ref [] in
  for u = 0 to t.nthreads - 1 do
    match
      prior_for_thread t li ~u ~last_fence_of_actor:f_l ~is_sc_op ~current:ts.c
    with
    | Some w when w != s && w.seq <> s.seq -> priorset := w :: !priorset
    | Some _ | None -> ()
  done;
  if List.exists (fun e -> edge_infeasible t ~from:e ~to_:s) !priorset then
    None
  else Some !priorset

(* WritePriorSet (Figure 13).  A plain store goes to the end of mo and
   cannot create a cycle (it has no outgoing edges yet), so its callers
   need no feasibility check; an RMW's write is pinned mid-order and must
   pre-check with [rmw_write_feasible].  [current] is the acting thread's
   clock to run the happens-before scans against — [ts.c] at commit time,
   or a what-if clock for the RMW pre-check. *)
let write_prior_set t li ts ~store_mo ~current =
  let f_s = match ts.sc_fences with [] -> None | f :: _ -> Some f in
  let is_sc_op = Memorder.is_seq_cst store_mo in
  let priorset = ref [] in
  if is_sc_op then begin
    match last_sc_store li with
    | Some x -> priorset := x :: !priorset
    | None -> ()
  end;
  for u = 0 to t.nthreads - 1 do
    match prior_for_thread t li ~u ~last_fence_of_actor:f_s ~is_sc_op ~current with
    | Some w -> priorset := w :: !priorset
    | None -> ()
  done;
  !priorset

(* The write half of an RMW reading [s] is pinned immediately mo-after
   [s] (AddRmwEdge migrates [s]'s existing successors behind it), so a
   WritePriorSet constraint [w -mo-> rmw] with [w] already strictly
   mo-after [s] would close a cycle — e.g. a seq_cst RMW reading a stale
   store when a later seq_cst store already sits further down mo.  Such a
   candidate must be rejected before anything is committed.  The what-if
   clock mirrors the acquire merge [commit_rmw] will perform, so the set
   checked here is the set that commit will install. *)
let rmw_write_feasible t li ts ~mo (s : Action.t) =
  match t.mode with
  | Total_mo -> true (* candidates are already restricted to the newest store *)
  | Full_c11 ->
    let current =
      if Memorder.is_acquire mo && t.mutation <> Some Skip_acquire_merge then
        match s.rf_cv with
        | Some cv -> Clockvec.union ts.c cv
        | None -> ts.c
      else ts.c
    in
    List.for_all
      (fun (w : Action.t) ->
        w == s || w.seq = s.seq || not (Mograph.reaches t.graph s w))
      (write_prior_set t li ts ~store_mo:mo ~current)

let add_edges t pset (s : Action.t) =
  match t.mode with
  | Total_mo -> ()
  | Full_c11 ->
    (* [Drop_mo_edge] fault: silently lose one modification-order
       constraint per update; the certifier's coherence completeness
       obligations (CoWW/CoWR) must notice the missing edges. *)
    let pset =
      match (t.mutation, pset) with
      | Some Drop_mo_edge, _ :: tl -> tl
      | _, _ -> pset
    in
    let p0 = if t.prof_on then Profile.now_ns () else 0 in
    let ns = Mograph.get_node t.graph s in
    List.iter (fun e -> Mograph.add_edge t.graph (Mograph.get_node t.graph e) ns) pset;
    let sz = Mograph.size t.graph in
    if sz > t.max_graph_size then t.max_graph_size <- sz;
    if t.prof_on then Profile.stop t.prof "mo_graph_update" p0;
    if t.metrics_on then begin
      Metrics.incr t.metrics ~by:(List.length pset) "mograph.edges_added";
      Metrics.max_gauge t.metrics "mograph.peak_nodes" (float_of_int t.max_graph_size)
    end

(* ------------------------------------------------------------------ *)
(* Transition rules (Figure 11)                                        *)

(* Bounded trace as two generations: [trace_rev] collects the newest
   actions (newest first); when it fills, it is demoted whole to
   [trace_old] and the previous old generation dropped.  The newest
   [trace_cap] actions are always available across the two lists, memory
   stays under [2 * trace_cap], and each record is O(1) — the previous
   version rebuilt the list with [List.filteri] every [trace_cap]
   records. *)
let record_trace t a =
  if t.trace_cap > 0 then begin
    t.trace_rev <- a :: t.trace_rev;
    t.trace_n <- t.trace_n + 1;
    if t.trace_n >= t.trace_cap then begin
      t.trace_old <- t.trace_rev;
      t.trace_rev <- [];
      t.trace_n <- 0
    end
  end

let mk_action t ts kind ~loc ~mo ~value ~volatile ~seq =
  let a = {
    Action.seq;
    tid = ts.tid;
    kind;
    loc;
    mo;
    value;
    rf = None;
    hb_cv = Clockvec.copy ts.c;
    rf_cv = None;
    rmw_claimed = false;
    volatile;
    mo_node = Action.No_graph_node;
  }
  in
  record_trace t a;
  if t.cert_record then t.cert_trace_rev <- a :: t.cert_trace_rev;
  a

(* Fisher–Yates over the scratch buffer, drawing from the RNG in exactly
   the order [Rng.shuffle_in_place] does on a materialised array. *)
let shuffle_scratch t =
  let buf = t.mrf_buf in
  for i = t.mrf_n - 1 downto 1 do
    let j = Rng.int t.rng (i + 1) in
    let tmp = buf.(i) in
    buf.(i) <- buf.(j);
    buf.(j) <- tmp
  done

(* All race-detector calls funnel through here so the "race_check" span
   and the check counter cover atomic and non-atomic accesses alike. *)
let race_check t ~loc ~tid ~seq ~hb ~is_write ~cls =
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  Race.on_access t.race ~loc ~tid ~seq ~hb ~is_write ~cls;
  if t.prof_on then Profile.stop t.prof "race_check" p0;
  if t.metrics_on then Metrics.incr t.metrics "race.checks"

let race_atomic t (a : Action.t) ~is_write =
  race_check t ~loc:a.loc ~tid:a.tid ~seq:a.seq ~hb:a.hb_cv ~is_write
    ~cls:Race.Atomic_access

(* Build and emit a memory-access event; call sites guard on
   [Obs.enabled] so tracing costs nothing when off. *)
let emit_access t kind ~tid ~loc ~mo ~value ~detail ~seq =
  Obs.emit t.obs { Obs.step = seq; tid; kind; loc; mo; value; detail }

(* The acquire half of a load/RMW: merge the observed store's reads-from
   clock into the thread clock (acquire or stronger) or, for weaker
   orders, into the pending acquire-fence clock.  The [Skip_acquire_merge]
   fault downgrades every acquire-side merge to the relaxed path — a
   dropped synchronizes-with edge the certifier's hb differential must
   catch. *)
let acquire_merge t ts ~mo rf_cv =
  if Memorder.is_acquire mo && t.mutation <> Some Skip_acquire_merge then
    ignore (Clockvec.merge ts.c rf_cv)
  else ignore (Clockvec.merge ts.facq rf_cv)

let atomic_load t ~tid ~loc ~mo ~volatile =
  let ts = thread t tid in
  let seq = tick t ts in
  t.atomic_ops <- t.atomic_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.atomic_load";
  let li = get_loc t loc in
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  build_may_read_from_buf t li ts ~is_sc:(Memorder.is_seq_cst mo);
  if t.prof_on then Profile.stop t.prof "may_read_from" p0;
  if t.mrf_n = 0 then
    raise
      (Model_error
         (Printf.sprintf "load from location %d with no visible store" loc));
  if t.metrics_on then
    Metrics.observe t.metrics "mrf.candidates" (float_of_int t.mrf_n);
  shuffle_scratch t;
  let chosen = ref None in
  let p1 = if t.prof_on then Profile.now_ns () else 0 in
  (try
     for k = 0 to t.mrf_n - 1 do
       let s = t.mrf_buf.(k) in
       match read_prior_set t li ts ~load_mo:mo s with
       | Some pset ->
         chosen := Some (s, pset);
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  if t.prof_on then Profile.stop t.prof "prior_set" p1;
  match !chosen with
  | None ->
    raise
      (Model_error
         (Printf.sprintf "no feasible store for load of location %d" loc))
  | Some (s, pset) ->
    let rf_cv = match s.rf_cv with Some cv -> cv | None -> Clockvec.bottom () in
    let p2 = if t.prof_on then Profile.now_ns () else 0 in
    acquire_merge t ts ~mo rf_cv;
    if t.prof_on then Profile.stop t.prof "cv_merge" p2;
    let a = mk_action t ts Action.Load ~loc ~mo ~value:s.value ~volatile ~seq in
    a.rf <- Some s;
    add_edges t pset s;
    record_load li a;
    if t.cert_on then cert_feed t a;
    race_atomic t a ~is_write:false;
    if t.obs_on then
      emit_access t Obs.Load ~tid ~loc ~mo:(Memorder.to_string mo)
        ~value:s.value
        ~detail:(Printf.sprintf "rf=%d" s.seq)
        ~seq;
    s.value

(* [Weak_release_store] fault: a release store publishes only the
   release-fence clock, as if it were relaxed — acquirers synchronise
   with a stale clock, which the certifier's reconstructed sw/hb must
   expose. *)
let store_rf_cv t ts ~mo =
  if Memorder.is_release mo && t.mutation <> Some Weak_release_store then
    Clockvec.copy ts.c
  else Clockvec.copy ts.frel

(* The reads-from clock of a plain store, and the C++11-style
   release-sequence bookkeeping used by the Total_mo baselines: a release
   store heads a new sequence; in Total_mo a later relaxed store by the
   same thread continues it (2011 rules), while any other thread's plain
   store breaks it. *)
let store_rf_cv_with_relseq_inner t li ts ~mo =
  match t.mode with
  | Full_c11 -> store_rf_cv t ts ~mo
  | Total_mo ->
    if Memorder.is_release mo then begin
      let cv = Clockvec.copy ts.c in
      li.rel_head <- Some (ts.tid, cv);
      cv
    end
    else begin
      match li.rel_head with
      | Some (owner, head_cv) when owner = ts.tid ->
        Clockvec.union head_cv ts.frel
      | Some _ | None ->
        li.rel_head <- None;
        Clockvec.copy ts.frel
    end

let store_rf_cv_with_relseq t li ts ~mo =
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  let cv = store_rf_cv_with_relseq_inner t li ts ~mo in
  if t.prof_on then Profile.stop t.prof "release_seq" p0;
  cv

(* tsan-lineage tools conservatively treat every atomic RMW as
   acquire-release regardless of the requested order — one of the reasons
   they miss the relaxed-RMW lock bugs of Section 8.1. *)
let effective_rmw_mo t mo =
  match t.mode with
  | Full_c11 -> mo
  | Total_mo -> Memorder.join mo Memorder.Acq_rel

let atomic_store t ~tid ~loc ~mo ~volatile value =
  let ts = thread t tid in
  let seq = tick t ts in
  t.atomic_ops <- t.atomic_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.atomic_store";
  let li = get_loc t loc in
  let a = mk_action t ts Action.Store ~loc ~mo ~value ~volatile ~seq in
  a.rf_cv <- Some (store_rf_cv_with_relseq t li ts ~mo);
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  let pset = write_prior_set t li ts ~store_mo:mo ~current:ts.c in
  if t.prof_on then Profile.stop t.prof "prior_set" p0;
  add_edges t pset a;
  record_store li a;
  if t.cert_on then cert_feed t a;
  set_value t loc value;
  race_atomic t a ~is_write:true;
  if t.obs_on then
    emit_access t Obs.Store ~tid ~loc ~mo:(Memorder.to_string mo) ~value
      ~detail:"" ~seq

(* In Total_mo mode, modification order is the store commit order, so an
   RMW (pinned immediately after the store it reads) can only read the
   globally newest store — exactly tsan11's behaviour. *)
let newest_store li = li.newest

let atomic_rmw t ~tid ~loc ~mo ~volatile ~f =
  let mo = effective_rmw_mo t mo in
  let ts = thread t tid in
  let seq = tick t ts in
  t.atomic_ops <- t.atomic_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.rmw";
  let li = get_loc t loc in
  let p0 = if t.prof_on then Profile.now_ns () else 0 in
  build_may_read_from_buf t li ts ~is_sc:(Memorder.is_seq_cst mo);
  if t.prof_on then Profile.stop t.prof "may_read_from" p0;
  if t.mrf_n = 0 then
    raise
      (Model_error (Printf.sprintf "rmw on location %d with no visible store" loc));
  if t.metrics_on then
    Metrics.observe t.metrics "mrf.candidates" (float_of_int t.mrf_n);
  shuffle_scratch t;
  let result = ref None in
  let commit_load s pset =
    let rf_cv = match s.Action.rf_cv with Some cv -> cv | None -> Clockvec.bottom () in
    acquire_merge t ts ~mo rf_cv;
    let a = mk_action t ts Action.Load ~loc ~mo ~value:s.Action.value ~volatile ~seq in
    a.rf <- Some s;
    add_edges t pset s;
    record_load li a;
    if t.cert_on then cert_feed t a;
    race_atomic t a ~is_write:false;
    if t.obs_on then
      emit_access t Obs.Load ~tid ~loc ~mo:(Memorder.to_string mo)
        ~value:s.Action.value
        ~detail:(Printf.sprintf "rf=%d rmw-keep" s.Action.seq)
        ~seq;
    s.Action.value
  in
  let commit_rmw (s : Action.t) pset new_value =
    s.rmw_claimed <- true;
    let rf_cv_s = match s.rf_cv with Some cv -> cv | None -> Clockvec.bottom () in
    acquire_merge t ts ~mo rf_cv_s;
    let r = mk_action t ts Action.Rmw ~loc ~mo ~value:new_value ~volatile ~seq in
    r.rf <- Some s;
    (* Release sequences: the RMW carries its own release clock (if any)
       joined with the clock of the sequence it extends (Figure 9,
       RELEASE/RELAXED RMW). *)
    r.rf_cv <- Some (Clockvec.union (store_rf_cv t ts ~mo) rf_cv_s);
    add_edges t pset s;
    (match t.mode with
    | Full_c11 ->
      Mograph.add_rmw_edge t.graph
        (Mograph.get_node t.graph s)
        (Mograph.get_node t.graph r)
    | Total_mo -> ());
    let wpset = write_prior_set t li ts ~store_mo:mo ~current:ts.c in
    add_edges t wpset r;
    record_store li r;
    if t.cert_on then cert_feed t r;
    set_value t loc new_value;
    race_atomic t r ~is_write:false;
    race_atomic t r ~is_write:true;
    if t.obs_on then
      emit_access t Obs.Rmw ~tid ~loc ~mo:(Memorder.to_string mo)
        ~value:new_value
        ~detail:(Printf.sprintf "rf=%d read=%d" s.seq s.value)
        ~seq;
    s.value
  in
  (try
     for k = 0 to t.mrf_n - 1 do
       let (s : Action.t) = t.mrf_buf.(k) in
       match f s.value with
       | Rmw_keep -> (
         match read_prior_set t li ts ~load_mo:mo s with
         | Some pset ->
           result := Some (commit_load s pset);
           raise Exit
         | None -> ())
       | Rmw_write v ->
         let claimable =
           (not s.rmw_claimed)
           && (match t.mode with
              | Full_c11 -> true
              | Total_mo -> (
                match newest_store li with
                | Some newest -> newest == s
                | None -> false))
           && rmw_write_feasible t li ts ~mo s
         in
         if claimable then (
           match read_prior_set t li ts ~load_mo:mo s with
           | Some pset ->
             result := Some (commit_rmw s pset v);
             raise Exit
           | None -> ())
     done
   with Exit -> ());
  match !result with
  | None ->
    raise
      (Model_error
         (Printf.sprintf "no feasible store for rmw on location %d" loc))
  | Some v -> v

let fence t ~tid ~mo =
  let ts = thread t tid in
  let seq = tick t ts in
  t.atomic_ops <- t.atomic_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.fence";
  (* An acquire (or stronger) fence publishes pending relaxed-load
     synchronisation into the thread clock before the release side
     snapshots it. *)
  if Memorder.is_acquire mo then ignore (Clockvec.merge ts.c ts.facq);
  if Memorder.is_release mo then ts.frel <- Clockvec.copy ts.c;
  if Memorder.is_seq_cst mo then begin
    let a = mk_action t ts Action.Fence ~loc:(-1) ~mo ~value:0 ~volatile:false ~seq in
    ts.sc_fences <- a :: ts.sc_fences;
    if t.cert_on then cert_feed t a
  end
  else if t.cert_on then begin
    (* Weaker fences are pure clock-vector operations and normally leave no
       action; the certifier reconstructs fence-based synchronisation from
       the trace, so materialise them when certifying (no RNG draws, no
       extra sequence numbers — executions are unperturbed). *)
    let a = mk_action t ts Action.Fence ~loc:(-1) ~mo ~value:0 ~volatile:false ~seq in
    cert_feed t a
  end;
  if t.obs_on then
    emit_access t Obs.Fence ~tid ~loc:(-1) ~mo:(Memorder.to_string mo) ~value:0
      ~detail:"" ~seq

let na_read t ~tid ~loc =
  let ts = thread t tid in
  let seq = tick t ts in
  t.na_ops <- t.na_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.na_read";
  let v = get_value t loc in
  race_check t ~loc ~tid ~seq ~hb:ts.c ~is_write:false ~cls:Race.Na_access;
  if t.obs_on then
    emit_access t Obs.Na_read ~tid ~loc ~mo:"" ~value:v ~detail:"" ~seq;
  v

let na_write t ~tid ~loc value =
  let ts = thread t tid in
  let seq = tick t ts in
  t.na_ops <- t.na_ops + 1;
  if t.metrics_on then Metrics.incr t.metrics "ops.na_write";
  if is_atomic_loc t loc then begin
    (* Section 7.2: a non-atomic store to an atomic location must enter the
       modification order so that later atomic loads can read it.  It never
       synchronises (empty reads-from clock). *)
    let li = get_loc t loc in
    let a =
      mk_action t ts Action.Na_store ~loc ~mo:Memorder.Relaxed ~value
        ~volatile:false ~seq
    in
    a.rf_cv <- Some (Clockvec.bottom ());
    li.rel_head <- None;
    let pset = write_prior_set t li ts ~store_mo:Memorder.Relaxed ~current:ts.c in
    add_edges t pset a;
    record_store li a;
    if t.cert_on then cert_feed t a
  end;
  set_value t loc value;
  race_check t ~loc ~tid ~seq ~hb:ts.c ~is_write:true ~cls:Race.Na_access;
  if t.obs_on then
    emit_access t Obs.Na_write ~tid ~loc ~mo:"" ~value ~detail:"" ~seq

let graph_footprint t =
  let acc = ref 0 in
  Array.iter
    (function Some li -> acc := !acc + li.store_count | None -> ())
    t.locs;
  !acc

let set_trace_capacity t n = t.trace_cap <- max 0 n

let rec take n l =
  if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r

let trace t =
  (* newest first: the current generation, then enough of the demoted one
     to reach [trace_cap] actions *)
  let newest_first = t.trace_rev @ take (t.trace_cap - t.trace_n) t.trace_old in
  List.rev newest_first

let cert_trace t = List.rev t.cert_trace_rev
let cert_sync_edges t = List.rev t.cert_sync_rev

module Internal = struct
  let build_may_read_from = build_may_read_from
  let last_sc_store = last_sc_store
  let find_loc = find_loc
end
