type node = {
  action : Action.t;
  mutable edges : node array;
  mutable nedges : int;
  mutable rmw : node option;
  mutable cv : Clockvec.t;
  mutable pruned : bool;
  mutable mark : int;
}

(* The per-action node cache (see Action.graph_node): the graph id guards
   against an action being shared between two graphs (tests do this), and
   the [pruned] flag against a stale pointer after a prune sweep. *)
type Action.graph_node += Cached of node * int

type t = {
  id : int;
  nodes : (int, node) Hashtbl.t;
  edge_keys : (int, unit) Hashtbl.t;
      (* membership of the edge set as packed (from.seq, to.seq) keys:
         [add_edge] dedup in O(1) instead of List.memq's O(out-degree) *)
  queue : node Queue.t;  (* reusable BFS worklist for [propagate_from] *)
  mutable gen : int;  (* current propagation generation for [mark] stamps *)
}

(* Graph ids stamp the per-action node cache, so two graphs alive at once
   (one per domain during parallel campaigns) must never share an id:
   a plain ref could hand the same id to two domains — or, worse, repeat
   an id within one domain after a lost update — validating stale cached
   nodes.  Hence an atomic counter. *)
let next_graph_id = Atomic.make 0
let no_edges : node array = [||]

let create () =
  let id = 1 + Atomic.fetch_and_add next_graph_id 1 in
  (* sized for short executions — a graph is created per execution (litmus
     tests build a handful of nodes) and Hashtbl grows itself under the
     bigger workloads *)
  {
    id;
    nodes = Hashtbl.create 16;
    edge_keys = Hashtbl.create 16;
    queue = Queue.create ();
    gen = 0;
  }

let size t = Hashtbl.length t.nodes

let new_node t (a : Action.t) =
  let n =
    {
      action = a;
      edges = no_edges;
      nedges = 0;
      rmw = None;
      cv = Clockvec.of_slot ~tid:a.tid ~seq:a.seq;
      pruned = false;
      mark = 0;
    }
  in
  Hashtbl.add t.nodes a.seq n;
  a.mo_node <- Cached (n, t.id);
  n

let get_node t (a : Action.t) =
  match a.mo_node with
  | Cached (n, gid) when gid = t.id && not n.pruned -> n
  | _ -> (
    match Hashtbl.find_opt t.nodes a.seq with
    | Some n ->
      a.mo_node <- Cached (n, t.id);
      n
    | None -> new_node t a)

let find_node t (a : Action.t) =
  match a.mo_node with
  | Cached (n, gid) when gid = t.id && not n.pruned -> Some n
  | _ -> Hashtbl.find_opt t.nodes a.seq

(* Sequence numbers stay well below 2^31 (they are bounded by the engine's
   step limit), so an edge is one native int. *)
let edge_key from to_ = (from.action.Action.seq lsl 31) lor to_.action.Action.seq

let has_edge t from to_ = Hashtbl.mem t.edge_keys (edge_key from to_)

let push_edge t from to_ =
  let n = from.nedges in
  if n = Array.length from.edges then begin
    let cap = if n = 0 then 4 else 2 * n in
    let arr = Array.make cap to_ in
    Array.blit from.edges 0 arr 0 n;
    from.edges <- arr
  end;
  from.edges.(n) <- to_;
  from.nedges <- n + 1;
  Hashtbl.replace t.edge_keys (edge_key from to_) ()

let succs n =
  let rec go i acc = if i < 0 then acc else go (i - 1) (n.edges.(i) :: acc) in
  go (n.nedges - 1) []

(* Merge procedure of Figure 6. *)
let merge dst src =
  if Clockvec.leq src.cv dst.cv then false else Clockvec.merge dst.cv src.cv

(* Breadth-first clock propagation with a generation-stamped frontier: a
   node whose [mark] carries the current generation is already queued, so
   repeated merges into it while it waits don't enqueue it again. *)
let propagate_from t start =
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let q = t.queue in
  Queue.add start q;
  start.mark <- gen;
  while not (Queue.is_empty q) do
    let node = Queue.pop q in
    node.mark <- 0;
    for i = 0 to node.nedges - 1 do
      let dst = node.edges.(i) in
      if merge dst node && dst.mark <> gen then begin
        dst.mark <- gen;
        Queue.add dst q
      end
    done
  done

(* An RMW is pinned immediately after the store it reads from, so a store
   ordered after the head of an rmw chain is really ordered after the whole
   chain: walk to its end (stopping short if the chain runs into [to_]
   itself, in which case the edge lands on [to_]'s direct predecessor). *)
let rec chain_end_before to_ n =
  match n.rmw with
  | None -> n
  | Some next -> if next == to_ then n else chain_end_before to_ next

let add_edge t from to_ =
  if from == to_ then ()
  else
    let must_add_edge =
      (match from.rmw with Some r -> r == to_ | None -> false)
      || from.action.tid = to_.action.tid
    in
    if Clockvec.leq from.cv to_.cv && not must_add_edge then ()
    else begin
      let from = chain_end_before to_ from in
      if not (has_edge t from to_) then push_edge t from to_;
      if merge to_ from then propagate_from t to_
    end

let add_rmw_edge t from rmw =
  from.rmw <- Some rmw;
  for i = 0 to from.nedges - 1 do
    let dst = from.edges.(i) in
    if dst != rmw && not (has_edge t rmw dst) then push_edge t rmw dst;
    (* drop the key with the edge, or a stale hit would suppress a later
       re-insertion (in particular of the [from -> rmw] edge itself, which
       [from] often already carries as a same-thread sb edge) *)
    Hashtbl.remove t.edge_keys (edge_key from dst)
  done;
  from.edges <- no_edges;
  from.nedges <- 0;
  add_edge t from rmw;
  (* Each migrated edge is a new constraint [rmw -mo-> dst].  AddEdge's
     final merge may report no change (the rmw's clock can already cover
     the store it read), which would skip propagation, so push the rmw's
     clock over its out-edges unconditionally. *)
  propagate_from t rmw

let reaches t (a : Action.t) (b : Action.t) =
  if a.seq = b.seq then true
  else
    let na = get_node t a and nb = get_node t b in
    Clockvec.leq na.cv nb.cv

(* Would adding the constraint [from -mo-> to_] close a cycle?  AddEdge
   redirects an edge whose source heads an rmw chain to the end of that
   chain (the RMW pinned immediately after a store inherits the store's
   ordering obligations), so feasibility must be checked against the
   chain's end, not against [from] itself. *)
let edge_would_close_cycle t ~from ~to_ =
  if from.Action.seq = to_.Action.seq then false
  else begin
    let nf = get_node t from and nt = get_node t to_ in
    let rec chain_end n =
      match n.rmw with
      | Some r -> if r == nt then None else chain_end r
      | None -> Some n
    in
    match chain_end nf with
    | None -> false (* the chain runs into [to_] itself: edge is redundant *)
    | Some eff -> eff == nt || Clockvec.leq nt.cv eff.cv
  end

let reaches_dfs t (a : Action.t) (b : Action.t) =
  match (find_node t a, find_node t b) with
  | None, _ | _, None -> a.seq = b.seq
  | Some na, Some nb ->
    let visited = Hashtbl.create 64 in
    let rec go n =
      n == nb
      ||
      if Hashtbl.mem visited n.action.seq then false
      else begin
        Hashtbl.add visited n.action.seq ();
        let nbrs = match n.rmw with Some r -> r :: succs n | None -> succs n in
        List.exists go nbrs
      end
    in
    na == nb || go na

let remove_node t (a : Action.t) =
  match Hashtbl.find_opt t.nodes a.seq with
  | None -> ()
  | Some n ->
    n.pruned <- true;
    for i = 0 to n.nedges - 1 do
      Hashtbl.remove t.edge_keys (edge_key n n.edges.(i))
    done;
    n.edges <- no_edges;
    n.nedges <- 0;
    a.mo_node <- Action.No_graph_node;
    Hashtbl.remove t.nodes a.seq

let iter_nodes t f = Hashtbl.iter (fun _ n -> f n) t.nodes

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph mo {\n  rankdir=LR;\n";
  iter_nodes t (fun n ->
      let a = n.action in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"#%d t%d loc%d=%d\"];\n" a.Action.seq
           a.Action.seq a.Action.tid a.Action.loc a.Action.value));
  iter_nodes t (fun n ->
      List.iter
        (fun dst ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d;\n" n.action.Action.seq
               dst.action.Action.seq))
        (succs n);
      match n.rmw with
      | Some r ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=bold,color=red,label=\"rmw\"];\n"
             n.action.Action.seq r.action.Action.seq)
      | None -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let check_acyclic t =
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let exception Cycle in
  let rec visit n =
    match Hashtbl.find_opt color n.action.seq with
    | Some 1 -> raise Cycle
    | Some _ -> ()
    | None ->
      Hashtbl.add color n.action.seq 1;
      let nbrs = match n.rmw with Some r -> r :: succs n | None -> succs n in
      List.iter visit nbrs;
      Hashtbl.replace color n.action.seq 2
  in
  try
    iter_nodes t visit;
    true
  with Cycle -> false
