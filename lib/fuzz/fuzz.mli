(** C11fuzz: random concurrent-program generation with a certifier-backed
    differential oracle and automatic shrinking.

    The fixed litmus tests and workloads exercise the shapes their authors
    thought of; this module generates the ones nobody did.  A seeded
    {!generate} draws a random well-formed DSL program — several threads of
    atomic loads, stores, RMWs and compare-exchanges across every memory
    order, fences, plain non-atomic accesses, memory-reuse accesses and
    ordered mutex critical sections — and the fuzz loop runs it under the
    operational engine with the axiomatic certifier ({!Check}) as a
    differential oracle.  On a correct engine every generated program must
    certify: the certifier reconstructs [sb]/[rf]/[mo]/[sw]/[hb] from
    scratch and cross-checks the engine's clock vectors, so {e any}
    rejection, engine crash or deadlock is a finding about the engine (or
    the certifier), never about the random program.  Data races are
    expected in random programs and are deliberately not findings.

    Findings are shrunk automatically: {!shrink} greedily deletes threads
    and operations (lock/unlock pairs as one unit) and weakens memory
    orders one lattice step at a time, accepting a reduction only while
    the failure reproduces with the same {!finding_key}, until no single
    deletion or weakening keeps it failing.  The result prints as a
    ready-to-paste OCaml DSL snippet plus the replay seeds.

    Determinism contract: program [i] of a campaign is a pure function of
    the campaign seed and [i] ([Rng.substream]), its executions draw seeds
    from the substream rooted at the program's own seed, and shards merge
    through {!Par.Merge} with lowest-index-wins finding dedup — so the
    same campaign seed yields the same finding set (same keys, same
    winning indices, same shrunk repros) at any [--jobs]. *)

(* ------------------------------------------------------------------ *)
(** {1 Programs} *)

(** Generation profile: which op mix the generator favours.  The IR
    itself lives in {!Progir} (shared with the static analyzer
    {!Lint}); [Fuzz] re-exports it with type equations. *)
type profile = Progir.profile =
  | Mixed  (** every op kind, relaxed-leaning memory orders *)
  | Sc_heavy  (** bias memory orders towards [Seq_cst] *)
  | Rmw_chain  (** bias towards RMWs contending on one location *)
  | Mixed_atomicity
      (** include memory-reuse accesses: raw non-atomic loads/stores to
          atomic locations (Section 7.2 of the paper) *)

val profile_name : profile -> string
val profile_of_string : string -> profile option
val all_profiles : profile list

(** Generator knobs.  Each program draws its actual thread/op/location
    counts uniformly up to these bounds, so one configuration covers many
    shapes. *)
type gen_cfg = {
  g_threads : int;  (** max spawned threads (>= 1); main also runs ops *)
  g_ops : int;  (** max ops per thread body (>= 1) *)
  g_atomic_locs : int;  (** max atomic locations (>= 1) *)
  g_na_locs : int;  (** max plain non-atomic locations (>= 0) *)
  g_mutexes : int;  (** max mutexes (>= 0) *)
  g_profile : profile;
  g_sc_bias : int;
      (** extra weight added to [Seq_cst] in every memory-order draw
          (0 = profile default) *)
}

val default_gen_cfg : gen_cfg

(** One operation of a generated thread body.  [loc] indexes the
    program's atomic locations, [na] its plain locations, [m] its
    mutexes. *)
type op = Progir.op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }  (** raw non-atomic load of an atomic *)
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

(** A generated program.  [p_threads.(0)] is the main thread's own body;
    main first spawns threads [1 .. n-1], then runs its body, then joins
    them all.  Replayable from [p_seed] alone (with the generating
    {!gen_cfg}); shrunk descendants keep the original seed. *)
type program = Progir.program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

(** [generate ~cfg ~seed] draws a well-formed program: every generated
    program satisfies {!validate}.  Mutex use follows an ordered
    discipline (lock only mutexes above the innermost held one, unlock
    innermost-first, bodies close every lock they open), so generated
    programs never deadlock on their own — an observed deadlock is an
    engine finding. *)
val generate : cfg:gen_cfg -> seed:int64 -> program

(** Structural well-formedness: location/mutex indices in range, lock
    discipline respected on every thread (balanced, properly nested,
    ordered), profiles other than {!Mixed_atomicity} free of reuse
    accesses at generation time (shrinking preserves validity too). *)
val validate : program -> (unit, string) result

(** Total ops across all thread bodies. *)
val op_count : program -> int

(** [to_closure p] compiles the program to a thunk for {!Engine.run}. *)
val to_closure : program -> unit -> unit

(** Renders the program as a ready-to-paste OCaml DSL test function. *)
val pp_program : Format.formatter -> program -> unit

val program_to_string : program -> string

(* ------------------------------------------------------------------ *)
(** {1 Oracle} *)

(** Why a program counts as a finding.  Races, assertion-free outcomes
    and step-limit aborts are not findings. *)
type finding_kind =
  | Cert_rejected of Check.violation list
      (** the axiomatic certifier rejected the execution *)
  | Engine_crash of string  (** uncaught exception or model invariant *)
  | Deadlock  (** generated programs are deadlock-free by construction *)
  | Lint_unsound of { race : string }
      (** the engine reported a race on a program {!Lint} proved
          race-free: a soundness disagreement between the static and
          dynamic detectors (the static side only over-approximates
          towards [Potential_race], so the engine side is suspect) *)

(** Seed-stable identity of a finding (numbers stripped), used for dedup
    across programs, shrink steps and shards. *)
val finding_key : finding_kind -> string

type status = Passed of { certified : bool } | Failed of finding_kind

(** The engine configuration campaigns probe under: [Full_c11],
    controlled-random scheduling, no pruning, certifier recording
    available, the given seeded fault installed. *)
val engine_config : mutation:Execution.mutation option -> Engine.config

(** [exec_seed p ~attempt] is the seed of the program's [attempt]-th
    execution ([Rng.substream p.p_seed]). *)
val exec_seed : program -> attempt:int -> int64

(** [run_one ~config ~certify ~seed p] executes the program once and
    classifies the outcome; engine exceptions are caught and classified,
    never propagated. *)
val run_one :
  config:Engine.config -> certify:bool -> seed:int64 -> program -> status

(** [reproduces ~config ~execs ~key p] probes up to [execs] executions
    (certifying each) and returns the seed of the first that fails with
    exactly [key], if any. *)
val reproduces :
  config:Engine.config -> execs:int -> key:string -> program -> int64 option

(* ------------------------------------------------------------------ *)
(** {1 Shrinking} *)

(** Single-unit deletion candidates of a program, the granularity at
    which {!shrink}'s fixpoint is minimal: every program with one op unit
    removed (a lock and its matching unlock count as one unit) and every
    program with one whole thread removed. *)
val deletion_candidates : program -> program list

(** [shrink ~config ~execs ~key p] greedily reduces [p] while the failure
    keyed [key] still reproduces: passes of thread deletion, op-unit
    deletion and one-step memory-order weakening repeat to a fixpoint at
    which no {!deletion_candidates} element and no single weakening still
    fails.  Returns the minimal program, a reproducing execution seed and
    the number of accepted reductions; [on_accept] observes every
    accepted intermediate (each is guaranteed to reproduce [key]). *)
val shrink :
  ?on_accept:(program -> unit) ->
  config:Engine.config ->
  execs:int ->
  key:string ->
  program ->
  program * int64 * int

(* ------------------------------------------------------------------ *)
(** {1 Campaigns} *)

type finding = {
  f_index : int;  (** global program index — lowest wins across shards *)
  f_seed : int64;  (** program seed: replays via {!generate} *)
  f_key : string;
  f_kind : finding_kind;  (** classification of the original failure *)
  f_repro : program;  (** shrunk minimal reproducer *)
  f_exec_seed : int64;  (** execution seed that reproduces on [f_repro] *)
  f_shrink_steps : int;
  f_ops_before : int;
  f_ops_after : int;
}

type campaign_cfg = {
  c_programs : int;
  c_seed : int64;
  c_jobs : int;  (** >= 1 *)
  c_certify_every : int;
      (** {b Deprecated no-op alias.}  Streaming certification (hb-closed
          prefix retirement) made always-on certification affordable, so
          every program is certified regardless of this value.  Any value
          other than the old default of 1 prints a one-line stderr
          deprecation warning at campaign start. *)
  c_shrink_execs : int;  (** executions per reproduction probe *)
  c_gen : gen_cfg;
  c_mutation : Execution.mutation option;  (** seeded engine fault *)
  c_lint_execs : int;
      (** extra executions granted to programs {!Lint} marks
          race-potential when the primary probe passed (0 disables the
          lint-steered prioritizer); extra probes are pure functions of
          (program, attempt), so reports stay jobs-independent *)
  c_corpus : Corpus.plan option;
      (** corpus-guided mode: the campaign runs in rounds of
          [pl_round] programs, mutates [pl_mutate_pct]% of each round's
          programs from the (snapshot + admitted-so-far) corpus, admits
          coverage-novel programs at round barriers, and reports them in
          [r_corpus].  Forces coverage fingerprinting on.  The admitted
          list is a pure function of the campaign configuration —
          independent of [c_jobs] and of process-level sharding. *)
}

val default_campaign_cfg : campaign_cfg

(** Corpus-guided campaign readout. *)
type corpus_stats = {
  k_seeded : int;  (** entries in the starting snapshot *)
  k_fresh : int;  (** programs generated from scratch *)
  k_mutated : int;  (** programs mutated from a corpus entry *)
  k_admitted : Corpus.entry list;  (** newly admitted, ascending index *)
}

(** Campaign outcome.  Everything except wall-clock diagnostics is a pure
    function of the configuration: independent of [c_jobs]. *)
type report = {
  r_programs : int;
  r_certified : int;  (** probes the certifier accepted *)
  r_cert_rejected : int;  (** programs whose probe was rejected *)
  r_crashes : int;  (** programs whose probe crashed or deadlocked *)
  r_findings : finding list;  (** deduped by key, ascending index *)
  r_shrink_steps : int;  (** accepted reductions over [r_findings] *)
  r_gen_ops : int;  (** total ops generated *)
  r_coverage : Cov.summary option;
      (** merged execution-shape coverage of the primary (non-shrink)
          executions; [Some _] iff the campaign ran with [~coverage:true].
          Bit-identical across [c_jobs]. *)
  r_lint_potential : int;
      (** programs the static analyzer marked [Potential_race] (and so
          eligible for prioritized extra executions) *)
  r_lint_unsound : int;
      (** programs whose final status was {!Lint_unsound} — zero on a
          sound engine *)
  r_corpus : corpus_stats option;  (** [Some _] iff [c_corpus] was set *)
}

(** [campaign cfg] generates and probes [c_programs] programs, shrinks
    the first local occurrence of each finding key, and merges shards
    with the lowest-index-wins protocol.  The C11obs handles observe
    without perturbing: [metrics] gains [fuzz.*] counters and [profile]
    the [fuzz_generate]/[fuzz_execute]/[fuzz_shrink] spans (from which
    {!Profile.rate} reads programs/sec).  [coverage] fingerprints every
    primary execution into {!Cov} shapes ([r_coverage]); [progress] is
    ticked once per program and receives a [final] record with the merged
    novelty counts. *)
val campaign :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?coverage:bool ->
  ?progress:Progress.t ->
  campaign_cfg ->
  report

(** {2 Shard-level API (the multi-process fabric's building block)}

    One worker's accumulated fuzz results — counters, lowest-index
    finding dedup with shrunk repros, optional coverage extract.  Plain
    data (no closures), so a shard survives [Marshal] across processes;
    lib/svc ships shards from worker processes and replays them from the
    result cache. *)
type shard

(** [campaign_shard ~cfg ~start ~stride ()] probes the programs whose
    global indices form the arithmetic progression [start, start+stride,
    ...] below [stop] (default [cfg.c_programs]; [cfg.c_jobs] is ignored —
    process-level callers do their own fan-out).  [stop] lets corpus-round
    drivers confine a shard to one round's index range. *)
val campaign_shard :
  ?coverage:bool ->
  ?progress:Progress.t ->
  ?stop:int ->
  cfg:campaign_cfg ->
  start:int ->
  stride:int ->
  unit ->
  shard

(** Fold shards with the lowest-index-wins protocol — exactly the merge
    {!campaign} applies to its domain shards, so the report is independent
    of how the program index space was partitioned.  [admitted] threads a
    corpus driver's accumulated admissions into [r_corpus]. *)
val merge_shard_list : ?admitted:Corpus.entry list -> campaign_cfg -> shard list -> report

(** {2 Corpus admission (round-barrier state machine)}

    Shared by the in-process round loop in {!campaign} and the
    multi-process wave driver in lib/svc, so both produce byte-identical
    admissions for the same campaign. *)

type corpus_state

(** Seed the known-key and known-digest sets from a plan's snapshot. *)
val corpus_state : Corpus.plan -> corpus_state

(** Snapshot + admitted so far — the entry list the next round's plan
    mutates from. *)
val corpus_entries : corpus_state -> Corpus.entry list

val corpus_admitted : corpus_state -> Corpus.entry list

(** Replay one round's candidates (all shards of that round, any order)
    ascending by global index; returns the entries admitted by this
    round.  A key's globally-first producer is shard-first under every
    sharding, so the result is sharding-independent. *)
val corpus_absorb : corpus_state -> shard list -> Corpus.entry list

val finding_to_json : finding -> Jsonx.t
val report_to_json : report -> Jsonx.t
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
