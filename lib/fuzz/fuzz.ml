(* C11fuzz — see fuzz.mli for the overall contract.

   Everything here is deterministic: no wall clock, no global RNG, no
   shared mutable state between shards.  A program is a pure function of
   (gen_cfg, seed); an execution of (program, exec seed); a campaign's
   observables of (campaign_cfg) alone. *)

(* ------------------------------------------------------------------ *)
(* Programs

   The IR itself lives in lib/lint/progir.ml so the static analyzer can
   reason about programs without depending on the engine; the type
   equations below make Fuzz.Load and Progir.Load the same constructor,
   so every existing pattern-match keeps compiling. *)

type profile = Progir.profile = Mixed | Sc_heavy | Rmw_chain | Mixed_atomicity

let profile_name = Progir.profile_name
let profile_of_string = Progir.profile_of_string
let all_profiles = Progir.all_profiles

type gen_cfg = {
  g_threads : int;
  g_ops : int;
  g_atomic_locs : int;
  g_na_locs : int;
  g_mutexes : int;
  g_profile : profile;
  g_sc_bias : int;
}

let default_gen_cfg =
  {
    g_threads = 3;
    g_ops = 8;
    g_atomic_locs = 3;
    g_na_locs = 2;
    g_mutexes = 2;
    g_profile = Mixed;
    g_sc_bias = 0;
  }

type op = Progir.op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

type program = Progir.program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

let op_count = Progir.op_count

(* ------------------------------------------------------------------ *)
(* Generation *)

(* Weighted draw; weights of 0 drop an alternative entirely, so kind
   tables can gate alternatives on availability (no mutex to unlock, no
   plain locations configured, ...). *)
let pick rng choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Fuzz.pick: no choice has positive weight";
  let r = Rng.int rng total in
  let rec walk acc = function
    | [] -> assert false
    | (w, x) :: rest -> if r < acc + w then x else walk (acc + w) rest
  in
  walk 0 choices

(* Memory orders by access category.  The sc bias (profile or knob) adds
   weight to seq_cst without removing any alternative, so every order
   stays reachable under every profile. *)
let sc_weight cfg = (if cfg.g_profile = Sc_heavy then 60 else 0) + cfg.g_sc_bias

let load_mo cfg rng =
  pick rng
    [
      (15 + sc_weight cfg, Memorder.Seq_cst);
      (30, Memorder.Acquire);
      (10, Memorder.Consume);
      (45, Memorder.Relaxed);
    ]

let store_mo cfg rng =
  pick rng
    [
      (15 + sc_weight cfg, Memorder.Seq_cst);
      (35, Memorder.Release);
      (50, Memorder.Relaxed);
    ]

let rmw_mo cfg rng =
  pick rng
    [
      (15 + sc_weight cfg, Memorder.Seq_cst);
      (25, Memorder.Acq_rel);
      (15, Memorder.Acquire);
      (15, Memorder.Release);
      (30, Memorder.Relaxed);
    ]

let fence_mo cfg rng =
  pick rng
    [
      (25 + sc_weight cfg, Memorder.Seq_cst);
      (25, Memorder.Acq_rel);
      (25, Memorder.Acquire);
      (25, Memorder.Release);
    ]

(* rmw-chain contends on location 0 so chains of RMWs stack up in the
   mo-graph (the release-sequence-heavy shape of Figure 11). *)
let atomic_loc cfg rng n =
  if cfg.g_profile = Rmw_chain && n > 1 && Rng.int rng 100 < 70 then 0
  else Rng.int rng n

type kind_tag =
  | K_load
  | K_store
  | K_add
  | K_cas
  | K_xchg
  | K_fence
  | K_na_read
  | K_na_write
  | K_reuse_load
  | K_reuse_store
  | K_lock
  | K_unlock
  | K_yield

let kind_weights cfg ~na_locs ~mutexes ~can_lock ~can_unlock =
  let rmw = if cfg.g_profile = Rmw_chain then 3 else 1 in
  let reuse = if cfg.g_profile = Mixed_atomicity then 6 else 0 in
  let na = if na_locs > 0 then 10 else 0 in
  let mu w = if mutexes > 0 then w else 0 in
  [
    (20, K_load);
    (20, K_store);
    (6 * rmw, K_add);
    (4 * rmw, K_cas);
    (3 * rmw, K_xchg);
    (6, K_fence);
    (na, K_na_read);
    (na, K_na_write);
    (reuse, K_reuse_load);
    (reuse, K_reuse_store);
    (mu (if can_lock then 6 else 0), K_lock);
    (mu (if can_unlock then 8 else 0), K_unlock);
    (3, K_yield);
  ]

let gen_value rng = Rng.int rng 8

(* One thread body.  [held] is the stack of currently-held mutexes; the
   ordered discipline (lock only mutexes with an index above the
   innermost held one, unlock innermost-first) makes any interleaving of
   generated bodies deadlock-free, and the trailing unlocks balance every
   path. *)
let gen_body cfg rng ~atomic_locs ~na_locs ~mutexes ~ops =
  let body = ref [] in
  let emit o = body := o :: !body in
  let held = ref [] in
  for _ = 1 to ops do
    let top = match !held with [] -> -1 | m :: _ -> m in
    let can_lock = mutexes > 0 && top < mutexes - 1 in
    let can_unlock = !held <> [] in
    match kind_weights cfg ~na_locs ~mutexes ~can_lock ~can_unlock |> pick rng with
    | K_load -> emit (Load { loc = atomic_loc cfg rng atomic_locs; mo = load_mo cfg rng })
    | K_store ->
      emit
        (Store
           {
             loc = atomic_loc cfg rng atomic_locs;
             mo = store_mo cfg rng;
             value = gen_value rng;
           })
    | K_add ->
      emit
        (Add
           {
             loc = atomic_loc cfg rng atomic_locs;
             mo = rmw_mo cfg rng;
             delta = 1 + Rng.int rng 3;
           })
    | K_cas ->
      emit
        (Cas
           {
             loc = atomic_loc cfg rng atomic_locs;
             mo = rmw_mo cfg rng;
             expected = gen_value rng;
             desired = gen_value rng;
           })
    | K_xchg ->
      emit
        (Xchg
           {
             loc = atomic_loc cfg rng atomic_locs;
             mo = rmw_mo cfg rng;
             value = gen_value rng;
           })
    | K_fence -> emit (Fence (fence_mo cfg rng))
    | K_na_read -> emit (Na_read { na = Rng.int rng na_locs })
    | K_na_write -> emit (Na_write { na = Rng.int rng na_locs; value = gen_value rng })
    | K_reuse_load -> emit (Reuse_load { loc = atomic_loc cfg rng atomic_locs })
    | K_reuse_store ->
      emit (Reuse_store { loc = atomic_loc cfg rng atomic_locs; value = gen_value rng })
    | K_lock ->
      let m = top + 1 + Rng.int rng (mutexes - top - 1) in
      held := m :: !held;
      emit (Lock { m })
    | K_unlock ->
      let m = List.hd !held in
      held := List.tl !held;
      emit (Unlock { m })
    | K_yield -> emit Yield
  done;
  List.iter (fun m -> emit (Unlock { m })) !held;
  Array.of_list (List.rev !body)

let generate ~cfg ~seed =
  if cfg.g_threads < 1 || cfg.g_ops < 1 || cfg.g_atomic_locs < 1 then
    invalid_arg "Fuzz.generate: g_threads, g_ops, g_atomic_locs must be >= 1";
  if cfg.g_na_locs < 0 || cfg.g_mutexes < 0 || cfg.g_sc_bias < 0 then
    invalid_arg "Fuzz.generate: negative knob";
  let rng = Rng.create seed in
  let spawned = 1 + Rng.int rng cfg.g_threads in
  let atomic_locs = 1 + Rng.int rng cfg.g_atomic_locs in
  let na_locs = if cfg.g_na_locs = 0 then 0 else Rng.int rng (cfg.g_na_locs + 1) in
  let mutexes = if cfg.g_mutexes = 0 then 0 else Rng.int rng (cfg.g_mutexes + 1) in
  let threads =
    Array.init (spawned + 1) (fun t ->
        (* main runs a possibly-empty body between the spawns and joins *)
        let ops =
          if t = 0 then Rng.int rng (cfg.g_ops + 1) else 1 + Rng.int rng cfg.g_ops
        in
        gen_body cfg rng ~atomic_locs ~na_locs ~mutexes ~ops)
  in
  {
    p_seed = seed;
    p_profile = cfg.g_profile;
    p_atomic_locs = atomic_locs;
    p_na_locs = na_locs;
    p_mutexes = mutexes;
    p_threads = threads;
  }

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate = Progir.validate

(* ------------------------------------------------------------------ *)
(* Interpretation *)

let to_closure p () =
  let atomics =
    Array.init p.p_atomic_locs (fun i -> C11.Atomic.make ~name:(Printf.sprintf "a%d" i) 0)
  in
  let nas =
    Array.init p.p_na_locs (fun i -> C11.Nonatomic.make ~name:(Printf.sprintf "n%d" i) 0)
  in
  let mutexes = Array.init p.p_mutexes (fun _ -> C11.Mutex.create ()) in
  (* results are accumulated so loads are not dead code, but never used
     for control flow: the program's shape is schedule-independent *)
  let sink = ref 0 in
  let run_op = function
    | Load { loc; mo } -> sink := !sink + C11.Atomic.load ~mo atomics.(loc)
    | Store { loc; mo; value } -> C11.Atomic.store ~mo atomics.(loc) value
    | Add { loc; mo; delta } -> sink := !sink + C11.Atomic.fetch_add ~mo atomics.(loc) delta
    | Cas { loc; mo; expected; desired } ->
      if C11.Atomic.compare_exchange ~mo atomics.(loc) ~expected ~desired then incr sink
    | Xchg { loc; mo; value } -> sink := !sink + C11.Atomic.exchange ~mo atomics.(loc) value
    | Fence mo -> C11.Fence.fence mo
    | Na_read { na } -> sink := !sink + C11.Nonatomic.read nas.(na)
    | Na_write { na; value } -> C11.Nonatomic.write nas.(na) value
    | Reuse_load { loc } -> sink := !sink + C11.Atomic.na_load atomics.(loc)
    | Reuse_store { loc; value } -> C11.Atomic.na_store atomics.(loc) value
    | Lock { m } -> C11.Mutex.lock mutexes.(m)
    | Unlock { m } -> C11.Mutex.unlock mutexes.(m)
    | Yield -> C11.Thread.yield ()
  in
  let run_body t () = Array.iter run_op p.p_threads.(t) in
  let handles =
    Array.init
      (Array.length p.p_threads - 1)
      (fun i -> C11.Thread.spawn (run_body (i + 1)))
  in
  run_body 0 ();
  Array.iter C11.Thread.join handles

(* ------------------------------------------------------------------ *)
(* Pretty-printing as a DSL snippet *)

let pp_mo fmt mo =
  Format.fprintf fmt "Memorder.%s"
    (match mo with
    | Memorder.Relaxed -> "Relaxed"
    | Memorder.Consume -> "Consume"
    | Memorder.Acquire -> "Acquire"
    | Memorder.Release -> "Release"
    | Memorder.Acq_rel -> "Acq_rel"
    | Memorder.Seq_cst -> "Seq_cst")

let pp_op fmt = function
  | Load { loc; mo } ->
    Format.fprintf fmt "ignore (C11.Atomic.load ~mo:%a a%d);" pp_mo mo loc
  | Store { loc; mo; value } ->
    Format.fprintf fmt "C11.Atomic.store ~mo:%a a%d %d;" pp_mo mo loc value
  | Add { loc; mo; delta } ->
    Format.fprintf fmt "ignore (C11.Atomic.fetch_add ~mo:%a a%d %d);" pp_mo mo loc delta
  | Cas { loc; mo; expected; desired } ->
    Format.fprintf fmt
      "ignore (C11.Atomic.compare_exchange ~mo:%a a%d ~expected:%d ~desired:%d);" pp_mo
      mo loc expected desired
  | Xchg { loc; mo; value } ->
    Format.fprintf fmt "ignore (C11.Atomic.exchange ~mo:%a a%d %d);" pp_mo mo loc value
  | Fence mo -> Format.fprintf fmt "C11.Fence.fence %a;" pp_mo mo
  | Na_read { na } -> Format.fprintf fmt "ignore (C11.Nonatomic.read n%d);" na
  | Na_write { na; value } -> Format.fprintf fmt "C11.Nonatomic.write n%d %d;" na value
  | Reuse_load { loc } -> Format.fprintf fmt "ignore (C11.Atomic.na_load a%d);" loc
  | Reuse_store { loc; value } -> Format.fprintf fmt "C11.Atomic.na_store a%d %d;" loc value
  | Lock { m } -> Format.fprintf fmt "C11.Mutex.lock m%d;" m
  | Unlock { m } -> Format.fprintf fmt "C11.Mutex.unlock m%d;" m
  | Yield -> Format.fprintf fmt "C11.Thread.yield ();"

let pp_body fmt ops =
  if Array.length ops = 0 then Format.fprintf fmt "()"
  else
    Array.iteri
      (fun i op ->
        if i > 0 then Format.fprintf fmt "@ ";
        pp_op fmt op)
      ops

let pp_program fmt p =
  Format.fprintf fmt "@[<v 2>let repro () =@ ";
  Format.fprintf fmt "(* seed 0x%Lx, profile %s *)@ " p.p_seed (profile_name p.p_profile);
  for i = 0 to p.p_atomic_locs - 1 do
    Format.fprintf fmt "let a%d = C11.Atomic.make ~name:\"a%d\" 0 in@ " i i
  done;
  for i = 0 to p.p_na_locs - 1 do
    Format.fprintf fmt "let n%d = C11.Nonatomic.make ~name:\"n%d\" 0 in@ " i i
  done;
  for i = 0 to p.p_mutexes - 1 do
    Format.fprintf fmt "let m%d = C11.Mutex.create () in@ " i
  done;
  for t = 1 to Array.length p.p_threads - 1 do
    Format.fprintf fmt "@[<v 2>let t%d =@ @[<v 2>C11.Thread.spawn (fun () ->@ %a)@]@]@ in@ "
      t pp_body p.p_threads.(t)
  done;
  let main = p.p_threads.(0) in
  let joins = Array.length p.p_threads - 1 in
  if Array.length main > 0 then begin
    pp_body fmt main;
    if joins > 0 then Format.fprintf fmt "@ "
  end;
  for t = 1 to joins do
    Format.fprintf fmt "C11.Thread.join t%d%s" t (if t < joins then ";" else "");
    if t < joins then Format.fprintf fmt "@ "
  done;
  if Array.length main = 0 && joins = 0 then Format.fprintf fmt "()";
  Format.fprintf fmt "@]"

let program_to_string p = Format.asprintf "%a" pp_program p

(* ------------------------------------------------------------------ *)
(* Oracle *)

type finding_kind =
  | Cert_rejected of Check.violation list
  | Engine_crash of string
  | Deadlock
  | Lint_unsound of { race : string }

(* Strip digit runs so keys survive renumbering across programs, shrink
   steps and shards (same normalisation as Check.violation_key). *)
let strip_digits s =
  let b = Buffer.create (String.length s) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        if not !in_digits then Buffer.add_char b '#';
        in_digits := true
      end
      else begin
        in_digits := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

(* Location numbers inside violation details are per-program; strip them
   too so the same axiom violated on different generated programs is one
   finding. *)
let finding_key = function
  | Cert_rejected vs -> "cert:" ^ strip_digits (Check.rejection_key vs)
  | Engine_crash msg -> "crash:" ^ strip_digits msg
  | Deadlock -> "deadlock"
  | Lint_unsound { race } -> "lint-unsound:" ^ strip_digits race

type status = Passed of { certified : bool } | Failed of finding_kind

let engine_config ~mutation =
  {
    Engine.default_config with
    Engine.max_steps = 200_000;
    (* probes replace the seed per execution *)
    mutation;
  }

let exec_seed p ~attempt = Rng.substream p.p_seed ~index:attempt

(* [run_one_full] also returns the engine outcome (when the execution
   finished at all) so the campaign can read coverage fingerprints and
   race reports out of it; crash paths have no outcome. *)
let run_one_full ~config ~certify ~seed p =
  let config = { config with Engine.seed; certify } in
  match Engine.run config (to_closure p) with
  | outcome ->
    let status =
      if outcome.Engine.uncaught_exceptions <> [] then
        Failed (Engine_crash (List.hd outcome.Engine.uncaught_exceptions))
      else if outcome.Engine.assertion_failures <> [] then
        Failed (Engine_crash ("assertion: " ^ List.hd outcome.Engine.assertion_failures))
      else if outcome.Engine.deadlock then Failed Deadlock
      else begin
        match outcome.Engine.certificate with
        | Some (Check.Rejected vs) -> Failed (Cert_rejected vs)
        | Some (Check.Certified _) -> Passed { certified = true }
        | Some (Check.Not_applicable _) | None -> Passed { certified = false }
      end
    in
    (* Differential contract with the static analyzer: a dynamic race on
       a statically race-free program means one of the two is wrong about
       the memory model, and the static side only over-approximates
       towards Potential_race — so this is an engine-grade finding,
       shrunk like any other. *)
    let status =
      match status with
      | Passed _
        when outcome.Engine.races <> [] && Lint.statically_race_free p ->
        Failed
          (Lint_unsound { race = Race.dedup_key (List.hd outcome.Engine.races) })
      | s -> s
    in
    (status, Some outcome)
  | exception Execution.Model_error msg ->
    (Failed (Engine_crash ("model error: " ^ msg)), None)
  | exception Engine.Assertion_violation msg ->
    (Failed (Engine_crash ("assertion: " ^ msg)), None)
  | exception e -> (Failed (Engine_crash (Printexc.to_string e)), None)

let run_one ~config ~certify ~seed p =
  fst (run_one_full ~config ~certify ~seed p)

let reproduces ~config ~execs ~key p =
  let rec go attempt =
    if attempt >= execs then None
    else begin
      let seed = exec_seed p ~attempt in
      match run_one ~config ~certify:true ~seed p with
      | Failed kind when String.equal (finding_key kind) key -> Some seed
      | _ -> go (attempt + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* The op-unit editing machinery (lock/unlock pairs as one unit, index
   removal, thread surgery) is hoisted into Progir so corpus mutation
   (lib/corpus) edits programs with the identical notion of a unit. *)
let remove_indices = Progir.remove_indices
let with_thread = Progir.with_thread
let without_thread = Progir.without_thread
let units_of = Progir.units_of

let deletion_candidates p =
  let thread_cands =
    List.filter_map
      (fun t ->
        if t = 0 && Array.length p.p_threads.(0) = 0 then None
        else if t > 0 || Array.length p.p_threads.(0) > 0 then Some (without_thread p t)
        else None)
      (List.init (Array.length p.p_threads) Fun.id)
  in
  let op_cands =
    List.concat_map
      (fun t ->
        List.map
          (fun unit -> with_thread p t (remove_indices p.p_threads.(t) unit))
          (units_of p.p_threads.(t)))
      (List.init (Array.length p.p_threads) Fun.id)
  in
  (* drop the degenerate candidate equal to deleting the main body twice *)
  List.filter (fun c -> Array.length c.p_threads >= 1) (thread_cands @ op_cands)

(* One-step-weaker memory orders per access category; shrinking walks
   these chains downwards while the failure keeps reproducing, so the
   final repro names the weakest orders that still expose the bug. *)
let weaker_load = function
  | Memorder.Seq_cst -> [ Memorder.Acquire ]
  | Memorder.Acquire -> [ Memorder.Relaxed ]
  | Memorder.Consume -> [ Memorder.Relaxed ]
  | _ -> []

let weaker_store = function
  | Memorder.Seq_cst -> [ Memorder.Release ]
  | Memorder.Release -> [ Memorder.Relaxed ]
  | _ -> []

let weaker_rmw = function
  | Memorder.Seq_cst -> [ Memorder.Acq_rel ]
  | Memorder.Acq_rel -> [ Memorder.Acquire; Memorder.Release ]
  | Memorder.Acquire -> [ Memorder.Relaxed ]
  | Memorder.Release -> [ Memorder.Relaxed ]
  | Memorder.Consume -> [ Memorder.Relaxed ]
  | _ -> []

let weaker_fence = function
  | Memorder.Seq_cst -> [ Memorder.Acq_rel ]
  | Memorder.Acq_rel -> [ Memorder.Acquire; Memorder.Release ]
  | _ -> []

let weakenings_of = function
  | Load f -> List.map (fun mo -> Load { f with mo }) (weaker_load f.mo)
  | Store f -> List.map (fun mo -> Store { f with mo }) (weaker_store f.mo)
  | Add f -> List.map (fun mo -> Add { f with mo }) (weaker_rmw f.mo)
  | Cas f -> List.map (fun mo -> Cas { f with mo }) (weaker_rmw f.mo)
  | Xchg f -> List.map (fun mo -> Xchg { f with mo }) (weaker_rmw f.mo)
  | Fence mo -> List.map (fun mo -> Fence mo) (weaker_fence mo)
  | Na_read _ | Na_write _ | Reuse_load _ | Reuse_store _ | Lock _ | Unlock _ | Yield
    ->
    []

(* Drop locations and mutexes no surviving op references, renumbering
   the rest in declaration order.  Allocation is visible to the model
   ([Atomic.make] performs an init store), so compaction can change the
   execution and is offered as a shrink candidate like any other, kept
   only while the failure reproduces. *)
let compact p =
  let used_a = Array.make p.p_atomic_locs false in
  let used_n = Array.make p.p_na_locs false in
  let used_m = Array.make p.p_mutexes false in
  Array.iter
    (Array.iter (function
      | Load { loc; _ }
      | Store { loc; _ }
      | Add { loc; _ }
      | Cas { loc; _ }
      | Xchg { loc; _ }
      | Reuse_load { loc }
      | Reuse_store { loc; _ } ->
        used_a.(loc) <- true
      | Na_read { na } | Na_write { na; _ } -> used_n.(na) <- true
      | Lock { m } | Unlock { m } -> used_m.(m) <- true
      | Fence _ | Yield -> ()))
    p.p_threads;
  let remap used =
    let next = ref 0 in
    Array.map (fun u -> if u then (incr next; !next - 1) else -1) used
  in
  let map_a = remap used_a and map_n = remap used_n and map_m = remap used_m in
  let count m = Array.fold_left (fun acc i -> if i >= 0 then acc + 1 else acc) 0 m in
  if count map_a = p.p_atomic_locs && count map_n = p.p_na_locs
     && count map_m = p.p_mutexes
  then None
  else
    Some
      {
        p with
        p_atomic_locs = count map_a;
        p_na_locs = count map_n;
        p_mutexes = count map_m;
        p_threads =
          Array.map
            (Array.map (function
              | Load f -> Load { f with loc = map_a.(f.loc) }
              | Store f -> Store { f with loc = map_a.(f.loc) }
              | Add f -> Add { f with loc = map_a.(f.loc) }
              | Cas f -> Cas { f with loc = map_a.(f.loc) }
              | Xchg f -> Xchg { f with loc = map_a.(f.loc) }
              | Reuse_load f -> Reuse_load { loc = map_a.(f.loc) }
              | Reuse_store f -> Reuse_store { f with loc = map_a.(f.loc) }
              | Na_read f -> Na_read { na = map_n.(f.na) }
              | Na_write f -> Na_write { f with na = map_n.(f.na) }
              | Lock f -> Lock { m = map_m.(f.m) }
              | Unlock f -> Unlock { m = map_m.(f.m) }
              | (Fence _ | Yield) as o -> o))
            p.p_threads;
      }

let shrink ?(on_accept = fun _ -> ()) ~config ~execs ~key p =
  let steps = ref 0 in
  let cur = ref p in
  let best_seed = ref (exec_seed p ~attempt:0) in
  let accept candidate seed =
    cur := candidate;
    best_seed := seed;
    incr steps;
    on_accept candidate
  in
  let try_candidate candidate =
    match reproduces ~config ~execs ~key candidate with
    | Some seed ->
      accept candidate seed;
      true
    | None -> false
  in
  (* Passes repeat to a fixpoint.  Within a pass, positions are re-tried
     in place after an acceptance (indices shift under deletion; an order
     may admit a further weakening), so one pass does as much work as it
     can before the next full scan. *)
  let thread_pass () =
    let changed = ref false in
    let t = ref (Array.length !cur.p_threads - 1) in
    while !t >= 0 do
      let deletable =
        if !t = 0 then Array.length !cur.p_threads.(0) > 0
        else !t < Array.length !cur.p_threads
      in
      if deletable && try_candidate (without_thread !cur !t) then changed := true;
      decr t
    done;
    !changed
  in
  let op_pass () =
    let changed = ref false in
    let t = ref 0 in
    while !t < Array.length !cur.p_threads do
      let u = ref 0 in
      let continue = ref true in
      while !continue do
        let units = units_of !cur.p_threads.(!t) in
        if !u >= List.length units then continue := false
        else begin
          let unit = List.nth units !u in
          let candidate = with_thread !cur !t (remove_indices !cur.p_threads.(!t) unit) in
          if try_candidate candidate then changed := true
            (* stay at [u]: the next unit slid into this position *)
          else incr u
        end
      done;
      incr t
    done;
    !changed
  in
  let weaken_pass () =
    let changed = ref false in
    Array.iteri
      (fun t _ ->
        let i = ref 0 in
        while !i < Array.length !cur.p_threads.(t) do
          let op = !cur.p_threads.(t).(!i) in
          let accepted =
            List.exists
              (fun op' ->
                let ops = Array.copy !cur.p_threads.(t) in
                ops.(!i) <- op';
                try_candidate (with_thread !cur t ops))
              (weakenings_of op)
          in
          if accepted then changed := true  (* retry same op: may weaken further *)
          else incr i
        done)
      !cur.p_threads;
    !changed
  in
  let compact_pass () =
    match compact !cur with
    | None -> false
    | Some candidate -> try_candidate candidate
  in
  let progress = ref true in
  while !progress do
    let a = thread_pass () in
    let b = op_pass () in
    let c = weaken_pass () in
    let d = compact_pass () in
    progress := a || b || c || d
  done;
  (!cur, !best_seed, !steps)

(* ------------------------------------------------------------------ *)
(* Campaigns *)

type finding = {
  f_index : int;
  f_seed : int64;
  f_key : string;
  f_kind : finding_kind;
  f_repro : program;
  f_exec_seed : int64;
  f_shrink_steps : int;
  f_ops_before : int;
  f_ops_after : int;
}

type campaign_cfg = {
  c_programs : int;
  c_seed : int64;
  c_jobs : int;
  c_certify_every : int;
  c_shrink_execs : int;
  c_gen : gen_cfg;
  c_mutation : Execution.mutation option;
  c_lint_execs : int;
  c_corpus : Corpus.plan option;
}

let default_campaign_cfg =
  {
    c_programs = 200;
    c_seed = 1L;
    c_jobs = 1;
    c_certify_every = 1;
    c_shrink_execs = 8;
    c_gen = default_gen_cfg;
    c_mutation = None;
    c_lint_execs = 2;
    c_corpus = None;
  }

type corpus_stats = {
  k_seeded : int;
  k_fresh : int;
  k_mutated : int;
  k_admitted : Corpus.entry list;
}

type report = {
  r_programs : int;
  r_certified : int;
  r_cert_rejected : int;
  r_crashes : int;
  r_findings : finding list;
  r_shrink_steps : int;
  r_gen_ops : int;
  r_coverage : Cov.summary option;
  r_lint_potential : int;
  r_lint_unsound : int;
  r_corpus : corpus_stats option;
}

(* A corpus-admission candidate: a program whose execution produced at
   least one shard-novel coverage key.  Whether any of those keys are
   *globally* novel is decided at the round barrier ([corpus_absorb]),
   where every shard's candidates are replayed in ascending global index
   order — so admissions are a pure function of the campaign, not of the
   sharding. *)
type cand = {
  cd_digest : string;  (* execution shape digest, "" when no shape *)
  cd_keys : string list;  (* shard-novel keys, fixed emission order *)
  cd_program : program;
}

type shard = {
  sh_certified : int;
  sh_cert_rejected : int;
  sh_crashes : int;
  sh_gen_ops : int;
  sh_findings : (int * finding) list;  (** ascending global index *)
  sh_cov : Cov.shard option;
  sh_lint_potential : int;
  sh_lint_unsound : int;
  sh_fresh : int;
  sh_mutated : int;
  sh_cands : (int * cand) list;  (** ascending global index *)
}

(* One worker's leapfrog shard: global indices worker, worker+jobs, ...
   Shrinking happens at the first local occurrence of a key; the merge
   keeps the lowest global index per key, whose shrink is a pure function
   of that program, so the merged findings match the sequential run's. *)
(* [start]/[stride] generalise the leapfrog (worker [w] of [j] is
   [start = w], [stride = j]) so the multi-process fabric can nest its
   process-level sharding over the in-process one. *)
(* Schedule stream salt: the mutate-vs-fresh decision for program [i]
   draws from substream(program seed, corpus_salt), far outside the small
   attempt indices execution seeds use, so corpus scheduling never
   correlates with schedule exploration. *)
let corpus_salt = 1_000_003

let run_shard ?(coverage = false) ?(progress = Progress.null) ?stop ~obs ~profile
    ~metrics ~cfg ~start ~stride () =
  (* shrinking replays use the base config: coverage fingerprints are only
     wanted for the campaign's primary executions *)
  let config = engine_config ~mutation:cfg.c_mutation in
  let exec_config = { config with Engine.coverage } in
  let cov = if coverage then Some (Cov.create ()) else None in
  let progress_on = Progress.enabled progress in
  let certified = ref 0 in
  let cert_rejected = ref 0 in
  let crashes = ref 0 in
  let gen_ops = ref 0 in
  let lint_potential = ref 0 in
  let lint_unsound = ref 0 in
  let findings = ref [] in
  let seen = Hashtbl.create 8 in
  let track_cands = cfg.c_corpus <> None in
  let snapshot =
    match cfg.c_corpus with
    | Some pl -> Array.of_list pl.Corpus.pl_entries
    | None -> [||]
  in
  let fresh = ref 0 in
  let mutated = ref 0 in
  let cands = ref [] in
  let stop = match stop with Some s -> s | None -> cfg.c_programs in
  let index = ref start in
  while !index < stop do
    let i = !index in
    let seed = Rng.substream cfg.c_seed ~index:i in
    let t0 = Profile.start profile in
    (* Deterministic mutate-or-fresh schedule: a pure function of
       (campaign seed, i, snapshot), independent of sharding.  A mutated
       program keeps this index's seed so its execution seeds replay
       exactly like a generated program's. *)
    let prog =
      match cfg.c_corpus with
      | Some pl when Array.length snapshot > 0 ->
        let srng = Rng.create (Rng.substream seed ~index:corpus_salt) in
        if Rng.int srng 100 < pl.Corpus.pl_mutate_pct then begin
          incr mutated;
          let e = snapshot.(Rng.int srng (Array.length snapshot)) in
          { (Corpus.mutate ~rng:srng e.Corpus.en_program) with p_seed = seed }
        end
        else begin
          incr fresh;
          generate ~cfg:cfg.c_gen ~seed
        end
      | Some _ ->
        incr fresh;
        generate ~cfg:cfg.c_gen ~seed
      | None -> generate ~cfg:cfg.c_gen ~seed
    in
    Profile.stop profile "fuzz_generate" t0;
    gen_ops := !gen_ops + op_count prog;
    Metrics.incr metrics "fuzz.programs";
    (* Static pass over the generated program: the verdict steers
       generation effort (race-potential programs get extra executions
       below) and the hygiene hits feed coverage. *)
    let lres = Lint.analyze prog in
    let racy = not lres.Lint.res_race_free in
    if racy then begin
      incr lint_potential;
      Metrics.incr metrics "fuzz.lint_potential"
    end;
    (* Certification is always on: streaming retirement made the
       per-execution cost cheap enough that c_certify_every rationing is
       obsolete (the field survives only as a no-op alias). *)
    let t1 = Profile.start profile in
    let primary_status, outcome =
      run_one_full ~config:exec_config ~certify:true
        ~seed:(exec_seed prog ~attempt:0) prog
    in
    Profile.stop profile "fuzz_execute" t1;
    (* Lint-steered prioritizer: statically race-potential programs whose
       primary probe passed get up to [c_lint_execs] extra schedules —
       racy shapes are where engine/certifier disagreements hide.  Extra
       probes replay under the base config (no coverage, like shrink
       replays) and are pure functions of (program, attempt), so the
       outcome is jobs-independent. *)
    let status =
      match primary_status with
      | Passed _ when racy && cfg.c_lint_execs > 0 ->
        let rec probe attempt =
          if attempt > cfg.c_lint_execs then primary_status
          else begin
            match
              run_one ~config ~certify:true ~seed:(exec_seed prog ~attempt) prog
            with
            | Failed _ as f -> f
            | Passed _ -> probe (attempt + 1)
          end
        in
        probe 1
      | s -> s
    in
    (match outcome with
    | Some o when progress_on ->
      Progress.account_certified progress ~certified:o.Engine.certified_ops
        ~retired:o.Engine.retired_prefix_ops
    | _ -> ());
    (* Shard-novel keys this program produced, collected in a fixed
       emission order (races, violation, shape) so a candidate's key list
       is deterministic.  Lint rule hits stay out of the corpus novelty
       namespace — they describe the program, not an explored shape. *)
    let cand_keys = ref [] in
    let note k = if track_cands then cand_keys := k :: !cand_keys in
    let novel =
      match (cov, outcome) with
      | Some acc, Some o ->
        List.iter
          (fun r ->
            let k = Race.dedup_key r in
            if Cov.observe_race acc ~index:i k then note ("race:" ^ k))
          o.Engine.races;
        List.iter
          (fun h -> ignore (Cov.observe_lint acc ~index:i h.Lint.h_rule))
          lres.Lint.res_hits;
        (match status with
        | Failed (Cert_rejected vs) ->
          let k = strip_digits (Check.rejection_key vs) in
          if Cov.observe_violation acc ~index:i k then note ("violation:" ^ k)
        | _ -> ());
        (match o.Engine.shape with
        | Some sg ->
          let n = Cov.observe acc ~index:i sg in
          if n then note ("shape:" ^ sg.Cov.sg_digest);
          n
        | None -> false)
      | _ -> false
    in
    (match !cand_keys with
    | [] -> ()
    | keys ->
      let digest =
        match Option.bind outcome (fun o -> o.Engine.shape) with
        | Some sg -> sg.Cov.sg_digest
        | None -> ""
      in
      cands :=
        (i, { cd_digest = digest; cd_keys = List.rev keys; cd_program = prog })
        :: !cands);
    (* [certified] counts primary probes the certifier accepted, whether
       or not a lint-steered extra probe later failed — keeping the
       readout independent of c_lint_execs. *)
    (match primary_status with
    | Passed { certified = c } ->
      if c then begin
        incr certified;
        Metrics.incr metrics "fuzz.certified"
      end
    | Failed _ -> ());
    let new_finding = ref false in
    (match status with
    | Passed _ -> ()
    | Failed kind ->
      (match kind with
      | Cert_rejected _ ->
        incr cert_rejected;
        Metrics.incr metrics "fuzz.cert_rejected"
      | Engine_crash _ | Deadlock ->
        incr crashes;
        Metrics.incr metrics "fuzz.crashes"
      | Lint_unsound _ ->
        incr lint_unsound;
        Metrics.incr metrics "fuzz.lint_unsound");
      let key = finding_key kind in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        new_finding := true;
        Metrics.incr metrics "fuzz.findings";
        if Obs.enabled obs then
          Obs.emit obs
            {
              Obs.step = i;
              tid = 0;
              kind = Obs.Sync;
              loc = -1;
              mo = "";
              value = 0;
              detail = Printf.sprintf "fuzz-finding %s (program %d)" key i;
            };
        let t2 = Profile.start profile in
        let repro, rseed, steps =
          shrink ~config ~execs:cfg.c_shrink_execs ~key prog
        in
        Profile.stop profile "fuzz_shrink" t2;
        Metrics.incr metrics ~by:steps "fuzz.shrink_steps";
        findings :=
          ( i,
            {
              f_index = i;
              f_seed = seed;
              f_key = key;
              f_kind = kind;
              f_repro = repro;
              f_exec_seed = rseed;
              f_shrink_steps = steps;
              f_ops_before = op_count prog;
              f_ops_after = op_count repro;
            } )
          :: !findings
      end);
    if progress_on then Progress.tick progress ~novel ~finding:!new_finding;
    index := !index + stride
  done;
  {
    sh_certified = !certified;
    sh_cert_rejected = !cert_rejected;
    sh_crashes = !crashes;
    sh_gen_ops = !gen_ops;
    sh_findings = List.rev !findings;
    sh_cov = Option.map Cov.shard cov;
    sh_lint_potential = !lint_potential;
    sh_lint_unsound = !lint_unsound;
    sh_fresh = !fresh;
    sh_mutated = !mutated;
    sh_cands = List.rev !cands;
  }

(* ------------------------------------------------------------------ *)
(* Corpus admission

   The campaign runs in rounds of [pl_round] programs.  Within a round
   every shard records its *shard*-novel executions as candidates; at the
   round barrier [corpus_absorb] replays all candidates in ascending
   global index order against the accumulated key set.  A key's globally
   first producer is also shard-first in every sharding, so it is a
   candidate in every sharding, which makes the admitted entry list (and
   each entry's [en_keys]) a pure function of the campaign — the -j N /
   --workers N parity argument. *)

type corpus_state = {
  cs_known : (string, unit) Hashtbl.t;
  cs_digests : (string, unit) Hashtbl.t;
  cs_seeded : Corpus.entry list;
  mutable cs_admitted_rev : Corpus.entry list;
}

let corpus_state (pl : Corpus.plan) =
  let known = Hashtbl.create 64 in
  let digests = Hashtbl.create 64 in
  List.iter
    (fun (e : Corpus.entry) ->
      Hashtbl.replace digests e.Corpus.en_digest ();
      Hashtbl.replace known ("shape:" ^ e.Corpus.en_digest) ();
      List.iter (fun k -> Hashtbl.replace known k ()) e.Corpus.en_keys)
    pl.Corpus.pl_entries;
  {
    cs_known = known;
    cs_digests = digests;
    cs_seeded = pl.Corpus.pl_entries;
    cs_admitted_rev = [];
  }

let corpus_admitted st = List.rev st.cs_admitted_rev
let corpus_entries st = st.cs_seeded @ corpus_admitted st

let corpus_absorb st shards =
  let cands =
    List.concat_map (fun s -> s.sh_cands) shards
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  let admitted =
    List.filter_map
      (fun (i, cd) ->
        let novel_keys =
          List.filter (fun k -> not (Hashtbl.mem st.cs_known k)) cd.cd_keys
        in
        (* mark *all* the candidate's keys: later candidates must not
           re-claim a key their global predecessor produced *)
        List.iter (fun k -> Hashtbl.replace st.cs_known k ()) cd.cd_keys;
        if
          novel_keys = [] || cd.cd_digest = ""
          || Hashtbl.mem st.cs_digests cd.cd_digest
        then None
        else begin
          Hashtbl.replace st.cs_digests cd.cd_digest ();
          Some
            {
              Corpus.en_digest = cd.cd_digest;
              en_index = i;
              en_seed = cd.cd_program.p_seed;
              en_keys = novel_keys;
              en_program = cd.cd_program;
            }
        end)
      cands
  in
  st.cs_admitted_rev <- List.rev_append admitted st.cs_admitted_rev;
  admitted

let merge_shards ?admitted cfg shards =
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  let findings =
    Par.Merge.dedup_indexed ~key:(fun f -> f.f_key) (List.map (fun s -> s.sh_findings) shards)
    |> List.map snd
  in
  {
    r_programs = cfg.c_programs;
    r_certified = sum (fun s -> s.sh_certified);
    r_cert_rejected = sum (fun s -> s.sh_cert_rejected);
    r_crashes = sum (fun s -> s.sh_crashes);
    r_findings = findings;
    (* summed over the merged findings, not the shards, so the readout is
       jobs-independent (losing shards shrink duplicates of a key) *)
    r_shrink_steps = List.fold_left (fun acc f -> acc + f.f_shrink_steps) 0 findings;
    r_gen_ops = sum (fun s -> s.sh_gen_ops);
    r_coverage =
      (match List.filter_map (fun s -> s.sh_cov) shards with
      | [] -> None
      | cov_shards -> Some (Cov.merge cov_shards));
    r_lint_potential = sum (fun s -> s.sh_lint_potential);
    r_lint_unsound = sum (fun s -> s.sh_lint_unsound);
    r_corpus =
      (match cfg.c_corpus with
      | None -> None
      | Some pl ->
        Some
          {
            k_seeded = List.length pl.Corpus.pl_entries;
            k_fresh = sum (fun s -> s.sh_fresh);
            k_mutated = sum (fun s -> s.sh_mutated);
            k_admitted = Option.value admitted ~default:[];
          });
  }

(* Shard-level entry points for the multi-process fabric (lib/svc): a
   worker process probes its arithmetic progression of program indices and
   ships the shard — plain data — back for the coordinator's merge. *)

let campaign_shard ?(coverage = false) ?(progress = Progress.null) ?stop ~cfg
    ~start ~stride () =
  run_shard ~coverage ~progress ?stop ~obs:Obs.null ~profile:Profile.null
    ~metrics:Metrics.null ~cfg ~start ~stride ()

let merge_shard_list ?admitted cfg shards = merge_shards ?admitted cfg shards

let worker_obs obs =
  if Obs.enabled obs then
    Obs.create
      ~ring_capacity:(if Obs.ring_capacity obs > 0 then Obs.ring_capacity obs else 65536)
      ()
  else Obs.null

let campaign ?(obs = Obs.null) ?(profile = Profile.null) ?(metrics = Metrics.null)
    ?(coverage = false) ?(progress = Progress.null) cfg =
  if cfg.c_programs < 0 then invalid_arg "Fuzz.campaign: c_programs must be >= 0";
  if cfg.c_jobs < 1 then invalid_arg "Fuzz.campaign: c_jobs must be >= 1";
  if cfg.c_certify_every <> 1 then
    prerr_endline
      "c11test: warning: certify-every is deprecated and ignored; streaming \
       certification is always on";
  if cfg.c_shrink_execs < 1 then invalid_arg "Fuzz.campaign: c_shrink_execs must be >= 1";
  let jobs = max 1 (min cfg.c_jobs (max 1 cfg.c_programs)) in
  (* corpus guidance defines novelty by coverage fingerprints, so a
     corpus campaign forces them on *)
  let coverage = coverage || cfg.c_corpus <> None in
  let wave ~cfg ~lo ~hi =
    if jobs = 1 then
      [
        run_shard ~coverage ~progress ~obs ~profile ~metrics ~cfg ~start:lo
          ~stop:hi ~stride:1 ();
      ]
    else begin
      let results =
        Par.spawn_workers ~jobs (fun ~worker ->
            let o = worker_obs obs in
            let p = if Profile.enabled profile then Profile.create () else Profile.null in
            let m = if Metrics.enabled metrics then Metrics.create () else Metrics.null in
            (* [progress] is shared across workers: atomic counters,
               mutex-serialised emission *)
            let shard =
              run_shard ~coverage ~progress ~obs:o ~profile:p ~metrics:m ~cfg
                ~start:(lo + worker) ~stop:hi ~stride:jobs ()
            in
            (shard, (o, p, m)))
      in
      Array.iter
        (fun (_, (o, p, m)) ->
          if Obs.enabled obs then Obs.absorb ~into:obs o;
          if Profile.enabled profile then Profile.absorb ~into:profile p;
          if Metrics.enabled metrics then Metrics.absorb ~into:metrics m)
        results;
      Obs.flush obs;
      Array.to_list (Array.map fst results)
    end
  in
  let shards, admitted =
    match cfg.c_corpus with
    | None -> (wave ~cfg ~lo:0 ~hi:cfg.c_programs, None)
    | Some plan0 ->
      (* Rounds of [pl_round] programs with admission barriers between
         them: every round's shards mutate from the same snapshot, so the
         round is embarrassingly parallel, and the barrier replays
         candidates index-ascending so admissions are sharding-independent. *)
      let st = corpus_state plan0 in
      let all = ref [] in
      let lo = ref 0 in
      while !lo < cfg.c_programs do
        let hi = min cfg.c_programs (!lo + plan0.Corpus.pl_round) in
        let plan_r = { plan0 with Corpus.pl_entries = corpus_entries st } in
        let round_shards = wave ~cfg:{ cfg with c_corpus = Some plan_r } ~lo:!lo ~hi in
        ignore (corpus_absorb st round_shards);
        all := !all @ round_shards;
        lo := hi
      done;
      (!all, Some (corpus_admitted st))
  in
  let report = merge_shards ?admitted cfg shards in
  if Progress.enabled progress then
    Progress.finish
      ?novel:(Option.map Cov.distinct_shapes report.r_coverage)
      ~findings:(List.length report.r_findings)
      progress;
  report

(* ------------------------------------------------------------------ *)
(* Reports *)

let kind_to_json = function
  | Cert_rejected vs ->
    Jsonx.Obj
      [ ("kind", Jsonx.String "cert_rejected");
        ("violations", Jsonx.List (List.map Check.violation_to_json vs)) ]
  | Engine_crash msg ->
    Jsonx.Obj [ ("kind", Jsonx.String "engine_crash"); ("message", Jsonx.String msg) ]
  | Deadlock -> Jsonx.Obj [ ("kind", Jsonx.String "deadlock") ]
  | Lint_unsound { race } ->
    Jsonx.Obj [ ("kind", Jsonx.String "lint_unsound"); ("race", Jsonx.String race) ]

let finding_to_json f =
  Jsonx.Obj
    [
      ("schema", Jsonx.String "c11fuzz-finding-v1");
      ("index", Jsonx.Int f.f_index);
      ("seed", Jsonx.String (Printf.sprintf "0x%Lx" f.f_seed));
      ("key", Jsonx.String f.f_key);
      ("finding", kind_to_json f.f_kind);
      ("exec_seed", Jsonx.String (Printf.sprintf "0x%Lx" f.f_exec_seed));
      ("shrink_steps", Jsonx.Int f.f_shrink_steps);
      ("ops_before", Jsonx.Int f.f_ops_before);
      ("ops_after", Jsonx.Int f.f_ops_after);
      ("repro", Jsonx.String (program_to_string f.f_repro));
    ]

let report_to_json r =
  Jsonx.Obj
    ([
       ("programs", Jsonx.Int r.r_programs);
       ("certified", Jsonx.Int r.r_certified);
       ("cert_rejected", Jsonx.Int r.r_cert_rejected);
       ("crashes", Jsonx.Int r.r_crashes);
       ("findings", Jsonx.List (List.map finding_to_json r.r_findings));
       ("shrink_steps", Jsonx.Int r.r_shrink_steps);
       ("generated_ops", Jsonx.Int r.r_gen_ops);
       ("lint_potential", Jsonx.Int r.r_lint_potential);
       ("lint_unsound", Jsonx.Int r.r_lint_unsound);
     ]
    @ (match r.r_coverage with
      | None -> []
      | Some c ->
        [
          ("distinct_shapes", Jsonx.Int (Cov.distinct_shapes c));
          ("coverage", Cov.summary_to_json c);
        ])
    @
    match r.r_corpus with
    | None -> []
    | Some k ->
      [
        ( "corpus",
          Jsonx.Obj
            [
              ("seeded", Jsonx.Int k.k_seeded);
              ("fresh", Jsonx.Int k.k_fresh);
              ("mutated", Jsonx.Int k.k_mutated);
              ("admitted", Jsonx.Int (List.length k.k_admitted));
              ( "admitted_digests",
                Jsonx.List
                  (List.map
                     (fun (e : Corpus.entry) -> Jsonx.String e.Corpus.en_digest)
                     k.k_admitted) );
            ] );
      ])

let pp_finding fmt f =
  Format.fprintf fmt
    "@[<v>finding at program %d (seed 0x%Lx)@   key: %s@   shrunk %d -> %d ops in %d \
     steps; replay exec seed 0x%Lx@   %a@]"
    f.f_index f.f_seed f.f_key f.f_ops_before f.f_ops_after f.f_shrink_steps
    f.f_exec_seed pp_program f.f_repro

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>programs:      %d@ certified:     %d@ cert rejected: %d@ crashes:       \
     %d@ generated ops: %d@ lint potential: %d@ lint unsound:  %d@ findings:      %d"
    r.r_programs r.r_certified r.r_cert_rejected r.r_crashes r.r_gen_ops
    r.r_lint_potential r.r_lint_unsound
    (List.length r.r_findings);
  (match r.r_corpus with
  | None -> ()
  | Some k ->
    Format.fprintf fmt
      "@ corpus:        %d seeded, %d fresh, %d mutated, %d admitted"
      k.k_seeded k.k_fresh k.k_mutated
      (List.length k.k_admitted));
  (match r.r_coverage with
  | None -> ()
  | Some c -> Format.fprintf fmt "@ %a" Cov.pp_summary c);
  List.iter (fun f -> Format.fprintf fmt "@ @ %a" pp_finding f) r.r_findings;
  Format.fprintf fmt "@]"
