(* Static models of the litmus catalog: each test's fixed fork-join op
   structure transcribed into the Progir IR so `c11test lint` can analyze
   the named tests without running them.  Thread 0 is main's own body —
   in the real tests main's trailing loads run after the joins, but
   modeling them as concurrent only over-approximates towards
   Potential_race, which is the sound direction.  Registers (OCaml refs)
   are thread-local and not modeled; every shared location is atomic, so
   the whole catalog is statically race-free. *)

open Progir

let rlx = Memorder.Relaxed
let acq = Memorder.Acquire
let rel = Memorder.Release
let ar = Memorder.Acq_rel
let sc = Memorder.Seq_cst

(* [prog ~atomics bodies]: [bodies] lists main's body first, then each
   spawned thread's, mirroring p_threads. *)
let prog ?(na = 0) ?(mutexes = 0) ~atomics bodies =
  {
    p_seed = 0L;
    p_profile = Mixed;
    p_atomic_locs = atomics;
    p_na_locs = na;
    p_mutexes = mutexes;
    p_threads = Array.of_list (List.map Array.of_list bodies);
  }

let ld loc mo = Load { loc; mo }
let st loc mo value = Store { loc; mo; value }

(* mp family: x = a0, y = a1 *)
let mp ~store_mo ~load_mo =
  prog ~atomics:2
    [ []; [ st 0 rlx 1; st 1 store_mo 1 ]; [ ld 1 load_mo; ld 0 rlx ] ]

let mp_fences =
  prog ~atomics:2
    [
      [];
      [ st 0 rlx 1; Fence rel; st 1 rlx 1 ];
      [ ld 1 rlx; Fence acq; ld 0 rlx ];
    ]

let sb ~mo ?fence () =
  let f = match fence with Some m -> [ Fence m ] | None -> [] in
  prog ~atomics:2
    [
      [];
      ([ st 0 mo 1 ] @ f @ [ ld 1 mo ]);
      ([ st 1 mo 1 ] @ f @ [ ld 0 mo ]);
    ]

let sb_rel_acq =
  prog ~atomics:2
    [ []; [ st 0 rel 1; ld 1 acq ]; [ st 1 rel 1; ld 0 acq ] ]

let lb_relaxed =
  prog ~atomics:2 [ []; [ ld 0 rlx; st 1 rlx 1 ]; [ ld 1 rlx; st 0 rlx 1 ] ]

let coww_cowr =
  prog ~atomics:1
    [ []; [ st 0 rlx 1; st 0 rlx 2; ld 0 rlx ]; [ ld 0 rlx; ld 0 rlx ] ]

let corr =
  prog ~atomics:1
    [
      [];
      [ st 0 rlx 1 ];
      [ st 0 rlx 2 ];
      [ ld 0 rlx; ld 0 rlx ];
      [ ld 0 rlx; ld 0 rlx ];
    ]

let w2p2_relaxed =
  prog ~atomics:2
    [
      [ ld 0 sc; ld 1 sc ];
      [ st 0 rlx 1; st 1 rlx 2 ];
      [ st 1 rlx 1; st 0 rlx 2 ];
    ]

let iriw ~st_mo ~ld_mo =
  prog ~atomics:2
    [
      [];
      [ st 0 st_mo 1 ];
      [ st 1 st_mo 1 ];
      [ ld 0 ld_mo; ld 1 ld_mo ];
      [ ld 1 ld_mo; ld 0 ld_mo ];
    ]

let iriw_sc_fences =
  prog ~atomics:2
    [
      [];
      [ st 0 rlx 1 ];
      [ st 1 rlx 1 ];
      [ ld 0 rlx; Fence sc; ld 1 rlx ];
      [ ld 1 rlx; Fence sc; ld 0 rlx ];
    ]

(* release-sequence shapes: d = a0, x = a1 *)
let release_sequence_rmw =
  prog ~atomics:2
    [
      [];
      [ st 0 rlx 5; st 1 rel 1 ];
      [ Add { loc = 1; mo = rlx; delta = 10 } ];
      [ ld 1 acq; ld 0 rlx ];
    ]

let release_sequence_c20 =
  prog ~atomics:2
    [
      [];
      [ st 0 rlx 5; st 1 rel 1; st 1 rlx 2 ];
      [ ld 1 acq; ld 0 rlx ];
    ]

let rmw_chain_release_seq =
  prog ~atomics:2
    [
      [];
      [ st 0 rlx 5; st 1 rel 1 ];
      [ Add { loc = 1; mo = rlx; delta = 10 } ];
      [ Add { loc = 1; mo = rlx; delta = 100 } ];
      [ ld 1 acq; ld 0 rlx ];
    ]

let wrc_rel_acq =
  prog ~atomics:2
    [
      [];
      [ st 0 rel 1 ];
      [ ld 0 acq; st 1 rel 1 ];
      [ ld 1 acq; ld 0 rlx ];
    ]

let rmw_atomicity =
  prog ~atomics:1
    [
      [ ld 0 sc ];
      [ Add { loc = 0; mo = rlx; delta = 1 } ];
      [ Add { loc = 0; mo = rlx; delta = 1 } ];
    ]

let cas_exactly_one =
  prog ~atomics:1
    [
      [];
      [ Cas { loc = 0; mo = ar; expected = 0; desired = 1 } ];
      [ Cas { loc = 0; mo = ar; expected = 0; desired = 2 } ];
    ]

let r_shape =
  prog ~atomics:2
    [ [ ld 1 sc ]; [ st 0 sc 1; st 1 sc 1 ]; [ st 1 sc 2; ld 0 sc ] ]

let s_shape_relaxed =
  prog ~atomics:2
    [ [ ld 0 sc ]; [ st 0 rlx 2; st 1 rel 1 ]; [ ld 1 acq; st 0 rlx 1 ] ]

let isa2 =
  prog ~atomics:3
    [
      [];
      [ st 0 rlx 1; st 1 rel 1 ];
      [ ld 1 acq; st 2 rel 1 ];
      [ ld 2 acq; ld 0 rlx ];
    ]

let wwc_relaxed =
  prog ~atomics:2
    [
      [ ld 0 sc ];
      [ st 0 rlx 2 ];
      [ ld 0 rlx; st 1 rlx 1 ];
      [ ld 1 rlx; st 0 rlx 1 ];
    ]

let corw =
  prog ~atomics:1
    [ []; [ st 0 rlx 1 ]; [ ld 0 rlx; st 0 rlx 2 ]; [ ld 0 rlx; ld 0 rlx ] ]

let fence_mixed_one_sided =
  prog ~atomics:2
    [ []; [ st 0 rlx 1; Fence rel; st 1 rlx 1 ]; [ ld 1 rlx; ld 0 rlx ] ]

let sb_one_fence =
  prog ~atomics:2
    [ []; [ st 0 rlx 1; Fence sc; ld 1 rlx ]; [ st 1 rlx 1; ld 0 rlx ] ]

(* d1 = a0, d2 = a1, x = a2 *)
let exchange_visibility =
  prog ~atomics:3
    [
      [];
      [ st 0 rlx 7; st 2 rel 1 ];
      [ st 1 rlx 8; Xchg { loc = 2; mo = ar; value = 2 }; ld 0 rlx ];
      [ ld 2 acq; ld 1 rlx ];
    ]

let all =
  [
    ("mp_relaxed", mp ~store_mo:rlx ~load_mo:rlx);
    ("mp_rel_acq", mp ~store_mo:rel ~load_mo:acq);
    ("mp_fences", mp_fences);
    ("sb_relaxed", sb ~mo:rlx ());
    ("sb_rel_acq", sb_rel_acq);
    ("sb_sc", sb ~mo:sc ());
    ("sb_sc_fences", sb ~mo:rlx ~fence:sc ());
    ("lb_relaxed", lb_relaxed);
    ("coww_cowr", coww_cowr);
    ("corr", corr);
    ("2+2w_relaxed", w2p2_relaxed);
    ("iriw_sc", iriw ~st_mo:sc ~ld_mo:sc);
    ("iriw_rel_acq", iriw ~st_mo:rel ~ld_mo:acq);
    ("release_sequence_rmw", release_sequence_rmw);
    ("release_sequence_c20", release_sequence_c20);
    ("wrc_rel_acq", wrc_rel_acq);
    ("rmw_atomicity", rmw_atomicity);
    ("cas_exactly_one", cas_exactly_one);
    ("r_sc", r_shape);
    ("s_rel_acq", s_shape_relaxed);
    ("isa2_rel_acq", isa2);
    ("wwc_relaxed", wwc_relaxed);
    ("mp_seq_cst", mp ~store_mo:sc ~load_mo:sc);
    ("mp_acquire_only", mp ~store_mo:rlx ~load_mo:acq);
    ("mp_release_only", mp ~store_mo:rel ~load_mo:rlx);
    ("iriw_sc_fences", iriw_sc_fences);
    ("corw", corw);
    ("fence_one_sided", fence_mixed_one_sided);
    ("rmw_chain_release_seq", rmw_chain_release_seq);
    ("sb_one_fence", sb_one_fence);
    ("exchange_visibility", exchange_visibility);
  ]

let find name = List.assoc_opt name all
