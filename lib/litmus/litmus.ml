type outcome = int list

type t = {
  name : string;
  description : string;
  registers : string list;
  run_once : unit -> outcome;
  allowed : outcome -> bool;
  weak : outcome -> bool;
  weak_allowed : bool;
}

open Memorder

let rlx = Relaxed

let spawn2 a b =
  let ta = C11.Thread.spawn a in
  let tb = C11.Thread.spawn b in
  C11.Thread.join ta;
  C11.Thread.join tb

let spawn3 a b c =
  let ta = C11.Thread.spawn a in
  let tb = C11.Thread.spawn b in
  let tc = C11.Thread.spawn c in
  C11.Thread.join ta;
  C11.Thread.join tb;
  C11.Thread.join tc

let spawn4 a b c d =
  let ta = C11.Thread.spawn a in
  let tb = C11.Thread.spawn b in
  let tc = C11.Thread.spawn c in
  let td = C11.Thread.spawn d in
  C11.Thread.join ta;
  C11.Thread.join tb;
  C11.Thread.join tc;
  C11.Thread.join td

(* --------------------------------------------------------------- *)
(* Message passing (Figure 2 of the paper)                          *)

let mp ~store_mo ~load_mo () =
  let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
  let r1 = ref 0 and r2 = ref 0 in
  spawn2
    (fun () ->
      C11.Atomic.store ~mo:rlx x 1;
      C11.Atomic.store ~mo:store_mo y 1)
    (fun () ->
      r1 := C11.Atomic.load ~mo:load_mo y;
      r2 := C11.Atomic.load ~mo:rlx x);
  [ !r1; !r2 ]

let mp_relaxed =
  {
    name = "mp_relaxed";
    description =
      "message passing, all relaxed: the counter-intuitive r1=1,r2=0 is \
       allowed (Figure 2)";
    registers = [ "r1"; "r2" ];
    run_once = mp ~store_mo:rlx ~load_mo:rlx;
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = true;
  }

let mp_rel_acq =
  {
    name = "mp_rel_acq";
    description =
      "message passing with release store / acquire load: r1=1 forces r2=1";
    registers = [ "r1"; "r2" ];
    run_once = mp ~store_mo:Release ~load_mo:Acquire;
    allowed = (fun o -> o <> [ 1; 0 ]);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = false;
  }

let mp_fences =
  {
    name = "mp_fences";
    description =
      "message passing via release fence + relaxed store and relaxed load \
       + acquire fence";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Fence.release ();
            C11.Atomic.store ~mo:rlx y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:rlx y;
            C11.Fence.acquire ();
            r2 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2 ]);
    allowed = (fun o -> o <> [ 1; 0 ]);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* Store buffering                                                  *)

let sb ~mo ?(fence = None) () =
  let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
  let r1 = ref 0 and r2 = ref 0 in
  let maybe_fence () = match fence with Some f -> C11.Fence.fence f | None -> () in
  spawn2
    (fun () ->
      C11.Atomic.store ~mo x 1;
      maybe_fence ();
      r1 := C11.Atomic.load ~mo y)
    (fun () ->
      C11.Atomic.store ~mo y 1;
      maybe_fence ();
      r2 := C11.Atomic.load ~mo x);
  [ !r1; !r2 ]

let sb_relaxed =
  {
    name = "sb_relaxed";
    description = "store buffering, relaxed: r1=r2=0 allowed";
    registers = [ "r1"; "r2" ];
    run_once = sb ~mo:rlx;
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 0; 0 ]);
    weak_allowed = true;
  }

let sb_rel_acq =
  {
    name = "sb_rel_acq";
    description =
      "store buffering with release/acquire only: r1=r2=0 is still allowed \
       (rel/acq does not forbid SB)";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:Release x 1;
            r1 := C11.Atomic.load ~mo:Acquire y)
          (fun () ->
            C11.Atomic.store ~mo:Release y 1;
            r2 := C11.Atomic.load ~mo:Acquire x);
        [ !r1; !r2 ]);
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 0; 0 ]);
    weak_allowed = true;
  }

let sb_sc =
  {
    name = "sb_sc";
    description = "store buffering, seq_cst: r1=r2=0 forbidden";
    registers = [ "r1"; "r2" ];
    run_once = sb ~mo:Seq_cst;
    allowed = (fun o -> o <> [ 0; 0 ]);
    weak = (fun o -> o = [ 0; 0 ]);
    weak_allowed = false;
  }

let sb_sc_fences =
  {
    name = "sb_sc_fences";
    description =
      "store buffering, relaxed accesses separated by seq_cst fences: \
       r1=r2=0 forbidden";
    registers = [ "r1"; "r2" ];
    run_once = sb ~mo:rlx ~fence:(Some Seq_cst);
    allowed = (fun o -> o <> [ 0; 0 ]);
    weak = (fun o -> o = [ 0; 0 ]);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* Load buffering / out-of-thin-air                                  *)

let lb_relaxed =
  {
    name = "lb_relaxed";
    description =
      "load buffering, relaxed: r1=r2=1 is allowed by plain C++11 but \
       forbidden by the fragment's hb∪sc∪rf acyclicity (Section 2.2, \
       change 2)";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn2
          (fun () ->
            r1 := C11.Atomic.load ~mo:rlx x;
            C11.Atomic.store ~mo:rlx y 1)
          (fun () ->
            r2 := C11.Atomic.load ~mo:rlx y;
            C11.Atomic.store ~mo:rlx x 1);
        [ !r1; !r2 ]);
    allowed = (fun o -> o <> [ 1; 1 ]);
    weak = (fun o -> o = [ 1; 1 ]);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* Coherence                                                        *)

let coww_cowr =
  {
    name = "coww_cowr";
    description =
      "same-thread coherence: after x=1; x=2 the writing thread reads 2, \
       and a reader that saw 2 never then sees 1";
    registers = [ "r_self"; "ra"; "rb" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 in
        let r_self = ref 0 and ra = ref 0 and rb = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Atomic.store ~mo:rlx x 2;
            r_self := C11.Atomic.load ~mo:rlx x)
          (fun () ->
            ra := C11.Atomic.load ~mo:rlx x;
            rb := C11.Atomic.load ~mo:rlx x);
        [ !r_self; !ra; !rb ]);
    allowed =
      (fun o ->
        match o with
        | [ r_self; ra; rb ] ->
          r_self = 2
          && (not (ra = 2 && rb = 1))
          && not (ra > 0 && rb = 0)
        | _ -> false);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

let corr =
  {
    name = "corr";
    description =
      "read-read coherence: two readers of x must not observe the two \
       writes in contradictory orders";
    registers = [ "ra1"; "ra2"; "rb1"; "rb2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 in
        let ra1 = ref 0 and ra2 = ref 0 and rb1 = ref 0 and rb2 = ref 0 in
        spawn4
          (fun () -> C11.Atomic.store ~mo:rlx x 1)
          (fun () -> C11.Atomic.store ~mo:rlx x 2)
          (fun () ->
            ra1 := C11.Atomic.load ~mo:rlx x;
            ra2 := C11.Atomic.load ~mo:rlx x)
          (fun () ->
            rb1 := C11.Atomic.load ~mo:rlx x;
            rb2 := C11.Atomic.load ~mo:rlx x);
        [ !ra1; !ra2; !rb1; !rb2 ]);
    allowed =
      (fun o ->
        match o with
        | [ ra1; ra2; rb1; rb2 ] ->
          (* The two readers must agree on the order of writes 1 and 2
             whenever both observed both. *)
          not (ra1 = 1 && ra2 = 2 && rb1 = 2 && rb2 = 1)
          && not (ra1 = 2 && ra2 = 1 && rb1 = 1 && rb2 = 2)
          (* And each reader is individually coherent: cannot go back to
             the initial value. *)
          && (not (ra1 > 0 && ra2 = 0))
          && not (rb1 > 0 && rb2 = 0)
        | _ -> false);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* 2+2W: the modification-order litmus that separates C11Tester's
   fragment from tsan11's                                            *)

let w2p2_relaxed =
  {
    name = "2+2w_relaxed";
    description =
      "2+2W, relaxed: the x=1,y=1 outcome needs a modification order that \
       inverts execution order on one location — allowed by the fragment, \
       impossible when hb∪sc∪rf∪mo must be acyclic (tsan11/tsan11rec)";
    registers = [ "x"; "y" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Atomic.store ~mo:rlx y 2)
          (fun () ->
            C11.Atomic.store ~mo:rlx y 1;
            C11.Atomic.store ~mo:rlx x 2);
        [ C11.Atomic.load x; C11.Atomic.load y ]);
    allowed =
      (fun o -> match o with [ x; y ] -> x >= 1 && y >= 1 | _ -> false);
    weak = (fun o -> o = [ 1; 1 ]);
    weak_allowed = true;
  }

(* --------------------------------------------------------------- *)
(* IRIW                                                             *)

let iriw ~mo () =
  let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
  let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 and r4 = ref 0 in
  spawn4
    (fun () -> C11.Atomic.store ~mo x 1)
    (fun () -> C11.Atomic.store ~mo y 1)
    (fun () ->
      r1 := C11.Atomic.load ~mo x;
      r2 := C11.Atomic.load ~mo y)
    (fun () ->
      r3 := C11.Atomic.load ~mo y;
      r4 := C11.Atomic.load ~mo x);
  [ !r1; !r2; !r3; !r4 ]

let iriw_weak o = o = [ 1; 0; 1; 0 ]

let iriw_sc =
  {
    name = "iriw_sc";
    description =
      "independent reads of independent writes, seq_cst: the readers must \
       agree on the write order";
    registers = [ "r1"; "r2"; "r3"; "r4" ];
    run_once = iriw ~mo:Seq_cst;
    allowed = (fun o -> not (iriw_weak o));
    weak = iriw_weak;
    weak_allowed = false;
  }

let iriw_acq =
  {
    name = "iriw_rel_acq";
    description =
      "IRIW with release/acquire: the readers may disagree on the write \
       order";
    registers = [ "r1"; "r2"; "r3"; "r4" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 and r4 = ref 0 in
        spawn4
          (fun () -> C11.Atomic.store ~mo:Release x 1)
          (fun () -> C11.Atomic.store ~mo:Release y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire x;
            r2 := C11.Atomic.load ~mo:Acquire y)
          (fun () ->
            r3 := C11.Atomic.load ~mo:Acquire y;
            r4 := C11.Atomic.load ~mo:Acquire x);
        [ !r1; !r2; !r3; !r4 ]);
    allowed = (fun _ -> true);
    weak = iriw_weak;
    weak_allowed = true;
  }

(* --------------------------------------------------------------- *)
(* Release sequences (C++20 definition — Section 2.2, change 1)      *)

let release_sequence_rmw =
  {
    name = "release_sequence_rmw";
    description =
      "an RMW continues a release sequence: an acquire load reading the \
       RMW synchronises with the release store that heads the sequence";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let d = C11.Atomic.make 0 and x = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref (-1) in
        spawn3
          (fun () ->
            C11.Atomic.store ~mo:rlx d 5;
            C11.Atomic.store ~mo:Release x 1)
          (fun () -> ignore (C11.Atomic.fetch_add ~mo:rlx x 10))
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire x;
            if !r1 = 11 then r2 := C11.Atomic.load ~mo:rlx d);
        [ !r1; !r2 ]);
    allowed =
      (fun o ->
        match o with [ r1; r2 ] -> not (r1 = 11 && r2 = 0) | _ -> false);
    weak = (fun o -> match o with [ r1; r2 ] -> r1 = 11 && r2 = 0 | _ -> false);
    weak_allowed = false;
  }

let release_sequence_c20 =
  {
    name = "release_sequence_c20";
    description =
      "C++20 weakening: a later relaxed store by the same thread does NOT \
       continue the release sequence, so reading it gives no \
       synchronisation (r1=2,r2=0 allowed)";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let d = C11.Atomic.make 0 and x = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref (-1) in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx d 5;
            C11.Atomic.store ~mo:Release x 1;
            C11.Atomic.store ~mo:rlx x 2)
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire x;
            if !r1 = 2 then r2 := C11.Atomic.load ~mo:rlx d);
        [ !r1; !r2 ]);
    allowed = (fun _ -> true);
    weak = (fun o -> match o with [ r1; r2 ] -> r1 = 2 && r2 = 0 | _ -> false);
    weak_allowed = true;
  }

(* --------------------------------------------------------------- *)
(* Write-to-read causality                                           *)

let wrc_rel_acq =
  {
    name = "wrc_rel_acq";
    description =
      "write-to-read causality with release/acquire: synchronisation is \
       transitive through the middle thread";
    registers = [ "r1"; "r2"; "r3" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
        spawn3
          (fun () -> C11.Atomic.store ~mo:Release x 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire x;
            if !r1 = 1 then C11.Atomic.store ~mo:Release y 1)
          (fun () ->
            r2 := C11.Atomic.load ~mo:Acquire y;
            r3 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2; !r3 ]);
    allowed =
      (fun o ->
        match o with [ _; r2; r3 ] -> not (r2 = 1 && r3 = 0) | _ -> false);
    weak =
      (fun o -> match o with [ _; r2; r3 ] -> r2 = 1 && r3 = 0 | _ -> false);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* RMW atomicity                                                     *)

let rmw_atomicity =
  {
    name = "rmw_atomicity";
    description =
      "two concurrent fetch_adds never read the same store: the final \
       value is exact and the values read are distinct";
    registers = [ "final"; "old_a"; "old_b" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 in
        let old_a = ref 0 and old_b = ref 0 in
        spawn2
          (fun () -> old_a := C11.Atomic.fetch_add ~mo:rlx x 1)
          (fun () -> old_b := C11.Atomic.fetch_add ~mo:rlx x 1);
        [ C11.Atomic.load x; !old_a; !old_b ]);
    allowed =
      (fun o ->
        match o with
        | [ final; old_a; old_b ] ->
          final = 2 && (old_a = 0 || old_b = 0) && old_a + old_b = 1
        | _ -> false);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

let cas_exactly_one =
  {
    name = "cas_exactly_one";
    description = "of two competing compare-exchanges, exactly one succeeds";
    registers = [ "wins" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 in
        let wa = ref 0 and wb = ref 0 in
        spawn2
          (fun () ->
            if C11.Atomic.compare_exchange ~mo:Acq_rel x ~expected:0 ~desired:1
            then wa := 1)
          (fun () ->
            if C11.Atomic.compare_exchange ~mo:Acq_rel x ~expected:0 ~desired:2
            then wb := 1);
        [ !wa + !wb ]);
    allowed = (fun o -> o = [ 1 ]);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

(* --------------------------------------------------------------- *)
(* Classic shapes: R, S, ISA2, WWC, Z6 and friends                   *)

let r_shape =
  {
    name = "r_sc";
    description =
      "R: writer/writer+reader with seq_cst accesses — mo and sc must \
       agree, forbidding x=2 with r1=0";
    registers = [ "x_final"; "r1" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:Seq_cst x 1;
            C11.Atomic.store ~mo:Seq_cst y 1)
          (fun () ->
            C11.Atomic.store ~mo:Seq_cst y 2;
            r1 := C11.Atomic.load ~mo:Seq_cst x);
        [ C11.Atomic.load ~mo:Seq_cst y; !r1 ]);
    allowed =
      (fun o ->
        match o with
        (* if y's final value is 2 (t1's store is mo-last, so t1's store
           came after t0's in sc), then t1's later sc load must see x=1 *)
        | [ y_final; r1 ] -> not (y_final = 2 && r1 = 0)
        | _ -> false);
    weak = (fun o -> match o with [ y; r1 ] -> y = 2 && r1 = 0 | _ -> false);
    weak_allowed = false;
  }

let s_shape_relaxed =
  {
    name = "s_rel_acq";
    description =
      "S: the release/acquire edge makes x=2 happen before x=1, so \
       write-write coherence pins x=2 before x=1 in mo and the final \
       value cannot be 2";
    registers = [ "r1"; "x_final" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 2;
            C11.Atomic.store ~mo:Release y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire y;
            if !r1 = 1 then C11.Atomic.store ~mo:rlx x 1);
        [ !r1; C11.Atomic.load x ]);
    allowed =
      (fun o -> match o with [ r1; x ] -> not (r1 = 1 && x = 2) | _ -> false);
    weak = (fun o -> match o with [ r1; x ] -> r1 = 1 && x = 2 | _ -> false);
    weak_allowed = false;
  }

let isa2 =
  {
    name = "isa2_rel_acq";
    description =
      "ISA2: release/acquire synchronisation is transitive through a \
       second location";
    registers = [ "r1"; "r2"; "r3" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0
        and y = C11.Atomic.make 0
        and z = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
        spawn3
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Atomic.store ~mo:Release y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire y;
            if !r1 = 1 then C11.Atomic.store ~mo:Release z 1)
          (fun () ->
            r2 := C11.Atomic.load ~mo:Acquire z;
            r3 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2; !r3 ]);
    allowed =
      (fun o ->
        match o with [ _; r2; r3 ] -> not (r2 = 1 && r3 = 0) | _ -> false);
    weak =
      (fun o -> match o with [ _; r2; r3 ] -> r2 = 1 && r3 = 0 | _ -> false);
    weak_allowed = false;
  }

let wwc_relaxed =
  {
    name = "wwc_relaxed";
    description =
      "WWC: a write-write causality chain with relaxed accesses leaves the \
       final mo unconstrained (weak outcome allowed)";
    registers = [ "r1"; "r2"; "x_final" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn3
          (fun () -> C11.Atomic.store ~mo:rlx x 2)
          (fun () ->
            r1 := C11.Atomic.load ~mo:rlx x;
            if !r1 = 2 then C11.Atomic.store ~mo:rlx y 1)
          (fun () ->
            r2 := C11.Atomic.load ~mo:rlx y;
            if !r2 = 1 then C11.Atomic.store ~mo:rlx x 1);
        [ !r1; !r2; C11.Atomic.load x ]);
    allowed = (fun _ -> true);
    weak =
      (fun o ->
        match o with [ r1; r2; x ] -> r1 = 2 && r2 = 1 && x = 2 | _ -> false);
    weak_allowed = true;
  }

let mp_seq_cst =
  {
    name = "mp_seq_cst";
    description = "message passing with seq_cst accesses: fully ordered";
    registers = [ "r1"; "r2" ];
    run_once = mp ~store_mo:Seq_cst ~load_mo:Seq_cst;
    allowed = (fun o -> o <> [ 1; 0 ]);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = false;
  }

let mp_acquire_only =
  {
    name = "mp_acquire_only";
    description =
      "message passing with only an acquire load (relaxed store): no \
       synchronisation, the weak outcome remains";
    registers = [ "r1"; "r2" ];
    run_once = mp ~store_mo:rlx ~load_mo:Acquire;
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = true;
  }

let mp_release_only =
  {
    name = "mp_release_only";
    description =
      "message passing with only a release store (relaxed load): no \
       synchronisation, the weak outcome remains";
    registers = [ "r1"; "r2" ];
    run_once = mp ~store_mo:Release ~load_mo:rlx;
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = true;
  }

let iriw_sc_fences =
  {
    name = "iriw_sc_fences";
    description =
      "IRIW with relaxed accesses and seq_cst fences between the reads: \
       under the C++11 fence semantics the fragment implements (Batty et \
       al.), the readers may STILL disagree — C++20 strengthened sc \
       fences to forbid this";
    registers = [ "r1"; "r2"; "r3"; "r4" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 and r4 = ref 0 in
        spawn4
          (fun () -> C11.Atomic.store ~mo:rlx x 1)
          (fun () -> C11.Atomic.store ~mo:rlx y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:rlx x;
            C11.Fence.seq_cst ();
            r2 := C11.Atomic.load ~mo:rlx y)
          (fun () ->
            r3 := C11.Atomic.load ~mo:rlx y;
            C11.Fence.seq_cst ();
            r4 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2; !r3; !r4 ]);
    allowed = (fun _ -> true);
    weak = iriw_weak;
    weak_allowed = true;
  }

let corw =
  {
    name = "corw";
    description =
      "read-write coherence: a thread that read x=1 and then stores x=2 \
       forces 1 before 2 in mo, so nobody sees them inverted";
    registers = [ "r_reader"; "ra"; "rb" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 in
        let r_reader = ref 0 and ra = ref 0 and rb = ref 0 in
        spawn3
          (fun () -> C11.Atomic.store ~mo:rlx x 1)
          (fun () ->
            r_reader := C11.Atomic.load ~mo:rlx x;
            if !r_reader = 1 then C11.Atomic.store ~mo:rlx x 2)
          (fun () ->
            ra := C11.Atomic.load ~mo:rlx x;
            rb := C11.Atomic.load ~mo:rlx x);
        [ !r_reader; !ra; !rb ]);
    allowed =
      (fun o ->
        match o with
        | [ r_reader; ra; rb ] ->
          (* if the middle thread promoted 1 -> 2, observers never see 2
             then 1, and never regress to the initial value *)
          (not (r_reader = 1 && ra = 2 && rb = 1))
          && not (ra > 0 && rb = 0)
        | _ -> false);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

let fence_mixed_one_sided =
  {
    name = "fence_one_sided";
    description =
      "a release fence on the writer side alone (relaxed reader, no \
       acquire fence) does not synchronise: the weak MP outcome remains";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Fence.release ();
            C11.Atomic.store ~mo:rlx y 1)
          (fun () ->
            r1 := C11.Atomic.load ~mo:rlx y;
            r2 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2 ]);
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 1; 0 ]);
    weak_allowed = true;
  }

let rmw_chain_release_seq =
  {
    name = "rmw_chain_release_seq";
    description =
      "a chain of two relaxed RMWs keeps the release sequence alive: an \
       acquire load of the chain's tail synchronises with the head";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let d = C11.Atomic.make 0 and x = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref (-1) in
        spawn4
          (fun () ->
            C11.Atomic.store ~mo:rlx d 5;
            C11.Atomic.store ~mo:Release x 1)
          (fun () -> ignore (C11.Atomic.fetch_add ~mo:rlx x 10))
          (fun () -> ignore (C11.Atomic.fetch_add ~mo:rlx x 100))
          (fun () ->
            r1 := C11.Atomic.load ~mo:Acquire x;
            if !r1 = 111 then r2 := C11.Atomic.load ~mo:rlx d);
        [ !r1; !r2 ]);
    allowed =
      (fun o ->
        match o with [ r1; r2 ] -> not (r1 = 111 && r2 = 0) | _ -> false);
    weak =
      (fun o -> match o with [ r1; r2 ] -> r1 = 111 && r2 = 0 | _ -> false);
    weak_allowed = false;
  }

let sb_one_fence =
  {
    name = "sb_one_fence";
    description =
      "store buffering with a seq_cst fence on only one side: the weak \
       outcome survives";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let x = C11.Atomic.make 0 and y = C11.Atomic.make 0 in
        let r1 = ref 0 and r2 = ref 0 in
        spawn2
          (fun () ->
            C11.Atomic.store ~mo:rlx x 1;
            C11.Fence.seq_cst ();
            r1 := C11.Atomic.load ~mo:rlx y)
          (fun () ->
            C11.Atomic.store ~mo:rlx y 1;
            r2 := C11.Atomic.load ~mo:rlx x);
        [ !r1; !r2 ]);
    allowed = (fun _ -> true);
    weak = (fun o -> o = [ 0; 0 ]);
    weak_allowed = true;
  }

let exchange_visibility =
  {
    name = "exchange_visibility";
    description =
      "an acq_rel exchange both publishes the writer's history and \
       acquires the previous store's: full two-way synchronisation";
    registers = [ "r1"; "r2" ];
    run_once =
      (fun () ->
        let d1 = C11.Atomic.make 0
        and d2 = C11.Atomic.make 0
        and x = C11.Atomic.make 0 in
        let r1 = ref (-1) and r2 = ref (-1) in
        spawn3
          (fun () ->
            C11.Atomic.store ~mo:rlx d1 7;
            C11.Atomic.store ~mo:Release x 1)
          (fun () ->
            C11.Atomic.store ~mo:rlx d2 8;
            let prev = C11.Atomic.exchange ~mo:Acq_rel x 2 in
            (* if we took over from the release store, its payload is
               visible to us *)
            if prev = 1 then r1 := C11.Atomic.load ~mo:rlx d1)
          (fun () ->
            let v = C11.Atomic.load ~mo:Acquire x in
            if v = 2 then r2 := C11.Atomic.load ~mo:rlx d2);
        [ !r1; !r2 ]);
    allowed =
      (fun o ->
        match o with [ r1; r2 ] -> r1 <> 0 && r2 <> 0 | _ -> false);
    weak = (fun _ -> false);
    weak_allowed = false;
  }

let catalog =
  [
    mp_relaxed;
    mp_rel_acq;
    mp_fences;
    sb_relaxed;
    sb_rel_acq;
    sb_sc;
    sb_sc_fences;
    lb_relaxed;
    coww_cowr;
    corr;
    w2p2_relaxed;
    iriw_sc;
    iriw_acq;
    release_sequence_rmw;
    release_sequence_c20;
    wrc_rel_acq;
    rmw_atomicity;
    cas_exactly_one;
    r_shape;
    s_shape_relaxed;
    isa2;
    wwc_relaxed;
    mp_seq_cst;
    mp_acquire_only;
    mp_release_only;
    iriw_sc_fences;
    corw;
    fence_mixed_one_sided;
    rmw_chain_release_seq;
    sb_one_fence;
    exchange_visibility;
  ]

let find name = List.find_opt (fun t -> t.name = name) catalog

(* frequency-descending; List.sort is stable, so ties keep the
   histogram's first-occurrence order, which is itself independent of
   [jobs] — the printed exploration is too *)
let rank_hist hist = List.sort (fun (_, a) (_, b) -> compare b a) hist

let explore_summary ?progress ?jobs ~config ~iters t =
  let summary, hist =
    Tester.run_collect_parallel ?progress ?jobs ~config ~iters t.run_once
  in
  (summary, rank_hist hist)

let explore ?jobs ~config ~iters t =
  snd (explore_summary ?jobs ~config ~iters t)

let violations ?jobs ~config ~iters t =
  List.filter (fun (o, _) -> not (t.allowed o)) (explore ?jobs ~config ~iters t)

let weak_observed hist t = List.exists (fun (o, _) -> t.weak o) hist

let pp_outcome t fmt o =
  let pairs = List.combine t.registers o in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v))
    pairs
