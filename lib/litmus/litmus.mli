(** Litmus tests: small fixed-shape programs whose sets of allowed outcomes
    characterise a memory model (Section 2.1 of the paper uses message
    passing as the running example).

    Each test returns a tuple of register values packed into a list; the
    [allowed] predicate says whether an outcome is permitted by C11Tester's
    memory-model fragment, and [weak] marks the "interesting" relaxed
    outcome the test exists to probe.  Tests with [weak_allowed = false]
    must never exhibit the weak outcome; tests with [weak_allowed = true]
    should exhibit it given enough executions. *)

type outcome = int list

type t = {
  name : string;
  description : string;
  registers : string list;  (** names for pretty-printing outcomes *)
  run_once : unit -> outcome;  (** the DSL program *)
  allowed : outcome -> bool;
      (** permitted under the paper's fragment (change 2 forbids
          load-buffering/OOTA outcomes even though plain C++11 allows
          them) *)
  weak : outcome -> bool;  (** the probed relaxed outcome *)
  weak_allowed : bool;
}

val find : string -> t option
val catalog : t list

(** Sort a first-occurrence-order histogram (as {!Tester.run_collect}
    or a merged shard list produces) into {!explore}'s presentation
    order: frequency-descending, ties keeping first-occurrence order.
    Used by callers that merge shards themselves (the multi-process
    fabric) so every path prints the same exploration. *)
val rank_hist : (outcome * int) list -> (outcome * int) list

(** [explore ~config ~iters t] runs the litmus test and returns its outcome
    histogram sorted by frequency (highest first; ties in first-occurrence
    order).  [jobs] shards the executions across domains — the histogram
    is bit-identical for every job count (see {!Tester}). *)
val explore :
  ?jobs:int -> config:Engine.config -> iters:int -> t -> (outcome * int) list

(** {!explore} plus the campaign summary — needed by callers that care
    about races, assertion failures or certification verdicts across the
    exploration (e.g. [c11test litmus --certify]). *)
val explore_summary :
  ?progress:Progress.t ->
  ?jobs:int ->
  config:Engine.config ->
  iters:int ->
  t ->
  Tester.summary * (outcome * int) list

(** [violations ~config ~iters t] is the sub-histogram of outcomes not
    allowed by the fragment (must be empty for a correct model). *)
val violations :
  ?jobs:int -> config:Engine.config -> iters:int -> t -> (outcome * int) list

val weak_observed : (outcome * int) list -> t -> bool

val pp_outcome : t -> Format.formatter -> outcome -> unit
