(** Static {!Progir} models of the litmus catalog, one per
    {!Litmus.catalog} entry under the same name, for [c11test lint] to
    analyze without running.  Every shared location in a litmus test is
    atomic, so the whole catalog must come out statically race-free and
    hygiene-clean — CI asserts exactly that.

    Modeling conventions: thread 0 holds main's trailing loads (really
    sequenced after the joins; treating them as concurrent only
    over-approximates towards [Potential_race], the sound direction),
    locations are numbered in each test's declaration order, and
    thread-local registers are not modeled. *)

(** Same names and order as {!Litmus.catalog}. *)
val all : (string * Progir.program) list

val find : string -> Progir.program option
