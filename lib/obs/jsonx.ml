type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-finite floats have no JSON representation; [emit] maps them to
   null before calling this. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  (* guarantee a JSON number that parses back as a float *)
  if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* Pretty printing with two-space indentation, for `--json -` output. *)
let rec emit_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> emit buf j
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        emit_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj kvs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_string buf k;
        Buffer.add_string buf ": ";
        emit_pretty buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_pretty_string j =
  let buf = Buffer.create 512 in
  emit_pretty buf 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent parser, enough for round-tripping
   the NDJSON traces and bench reports this library emits. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               (* strict: exactly four hex digits ([int_of_string "0x..."]
                  would also accept OCaml underscore separators) *)
               let hex_digit c =
                 match c with
                 | '0' .. '9' -> Char.code c - Char.code '0'
                 | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                 | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                 | _ -> fail "bad \\u escape"
               in
               let code =
                 (hex_digit s.[!pos] lsl 12)
                 lor (hex_digit s.[!pos + 1] lsl 8)
                 lor (hex_digit s.[!pos + 2] lsl 4)
                 lor hex_digit s.[!pos + 3]
               in
               pos := !pos + 4;
               (* keep it byte-oriented: sub-0x80 maps directly, the rest
                  is encoded as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let items = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          items := (k, v) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
