(** C11obs — structured event tracing for the C11Tester reproduction.

    The engine and the memory model emit typed {!event}s through a
    {!t} (tracer).  A tracer buffers the most recent events in a
    fixed-capacity ring and fans every event out to pluggable {!sink}s in
    registration order.  With no ring and no sink attached the tracer is
    disabled ({!enabled} is [false]) and instrumentation sites skip event
    construction entirely, so tracing is zero-cost when off.

    Events serialise to one JSON object per line (NDJSON) with the stable
    schema
    [{"step":..,"tid":..,"kind":..,"loc":..,"mo":..,"value":..,"detail":..}];
    see {!event_to_json} / {!event_of_json}. *)

type kind =
  | Load  (** atomic load; [value] = value read, [detail] = rf store seq *)
  | Store  (** atomic store; [value] = value written *)
  | Rmw  (** successful read-modify-write; [value] = value written *)
  | Fence  (** memory fence; [loc] is -1 *)
  | Na_read  (** non-atomic load *)
  | Na_write  (** non-atomic store *)
  | Sync
      (** thread/synchronisation operation (spawn, join, mutex, condvar);
          [detail] names it *)
  | Race_check  (** a data race was detected; [detail] describes it *)
  | Prune
      (** a pruning sweep ran; [detail] carries stores/loads/fences counts *)
  | Sched_pick  (** scheduler decision; [value] = number of enabled threads *)

type event = {
  step : int;  (** logical time: the global sequence number *)
  tid : int;
  kind : kind;
  loc : int;  (** -1 when not location-related *)
  mo : string;  (** memory order, or [""] when not applicable *)
  value : int;
  detail : string;
}

type sink = {
  sink_name : string;
  emit : event -> unit;
  flush : unit -> unit;
}

type t

(** [create ~ring_capacity ()] makes a tracer keeping the last
    [ring_capacity] events (default 0: no ring). *)
val create : ?ring_capacity:int -> unit -> t

(** A shared always-disabled tracer; instrumented code defaults to it.
    Attaching a sink to it raises [Invalid_argument]. *)
val null : t

(** Cheap test used by instrumentation sites before building an event. *)
val enabled : t -> bool

val ring_capacity : t -> int

(** [add_sink t s] appends [s]; sinks receive events in registration
    order. *)
val add_sink : t -> sink -> unit

val sinks : t -> sink list
val clear_sinks : t -> unit

(** [emit t e] buffers [e] in the ring (if any) and fans it out to every
    sink. *)
val emit : t -> event -> unit

(** Events emitted since the last {!clear} (including ones the ring has
    already overwritten). *)
val total : t -> int

(** Buffered events, oldest first. *)
val ring_events : t -> event list

(** Reset the ring and the {!total} counter; sinks stay attached. *)
val clear : t -> unit

val flush : t -> unit

(** Replay the buffered events into [sink] and flush it — used to dump
    the ring of a completed execution, e.g. to NDJSON. *)
val drain_to_sink : t -> sink -> unit

(** [absorb ~into src] re-emits [src]'s buffered events into [into]
    (ring and sinks), oldest first.  Rings are single-domain state, so
    parallel campaigns trace each domain into a private ring and absorb
    the rings in worker order after the domains join — deterministic for
    a fixed worker count, where live sharing would interleave events by
    wall-clock accident (and race on the ring). *)
val absorb : into:t -> t -> unit

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_event : Format.formatter -> event -> unit
val event_to_json : event -> Jsonx.t
val event_of_json : Jsonx.t -> event option

(** Stock sinks: in-memory collector (returns the reader), pretty-printer,
    and NDJSON writer (one JSON object per line). *)

val memory_sink : unit -> sink * (unit -> event list)
val pretty_sink : Format.formatter -> sink
val ndjson_sink : out_channel -> sink
