let sample_cap = 4096

type span_stat = {
  mutable s_count : int;
  mutable s_total_ns : int;
  samples : float array;  (** last [sample_cap] durations, in ns *)
  mutable s_len : int;
  mutable s_next : int;
}

type t = { on : bool; spans : (string, span_stat) Hashtbl.t }

let make on = { on; spans = Hashtbl.create 16 }
let create () = make true
let null = make false
let enabled t = t.on

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let span_stat t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
    let s =
      {
        s_count = 0;
        s_total_ns = 0;
        samples = Array.make sample_cap 0.0;
        s_len = 0;
        s_next = 0;
      }
    in
    Hashtbl.add t.spans name s;
    s

(* [start]/[stop] avoid closure allocation on hot paths: when profiling
   is off, [start] returns 0 without reading the clock and [stop] is a
   single branch. *)
let[@inline] start t = if t.on then now_ns () else 0

let stop t name t0 =
  if t.on then begin
    let dt = now_ns () - t0 in
    let s = span_stat t name in
    s.s_count <- s.s_count + 1;
    s.s_total_ns <- s.s_total_ns + dt;
    s.samples.(s.s_next) <- float_of_int dt;
    s.s_next <- (s.s_next + 1) mod sample_cap;
    if s.s_len < sample_cap then s.s_len <- s.s_len + 1
  end

let time t name f =
  if not t.on then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> stop t name t0) f
  end

(* ------------------------------------------------------------------ *)
(* Readout *)

type snapshot = {
  name : string;
  count : int;
  total_ns : int;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

let snapshot_of name s =
  let xs = Array.to_list (Array.sub s.samples 0 s.s_len) in
  {
    name;
    count = s.s_count;
    total_ns = s.s_total_ns;
    mean_ns =
      (if s.s_count = 0 then nan
       else float_of_int s.s_total_ns /. float_of_int s.s_count);
    p50_ns = Stats.percentile 50.0 xs;
    p90_ns = Stats.percentile 90.0 xs;
    p99_ns = Stats.percentile 99.0 xs;
  }

let snapshots t =
  Hashtbl.fold (fun k s acc -> snapshot_of k s :: acc) t.spans []
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let snapshot t name = Option.map (snapshot_of name) (Hashtbl.find_opt t.spans name)

let rate t name =
  match Hashtbl.find_opt t.spans name with
  | Some s when s.s_total_ns > 0 ->
    float_of_int s.s_count /. (float_of_int s.s_total_ns /. 1e9)
  | Some _ | None -> nan

let reset t = Hashtbl.reset t.spans

let absorb ~into src =
  if into.on then
    Hashtbl.iter
      (fun name (s : span_stat) ->
        let d = span_stat into name in
        d.s_count <- d.s_count + s.s_count;
        d.s_total_ns <- d.s_total_ns + s.s_total_ns;
        let start = if s.s_len < sample_cap then 0 else s.s_next in
        for i = 0 to s.s_len - 1 do
          d.samples.(d.s_next) <- s.samples.((start + i) mod sample_cap);
          d.s_next <- (d.s_next + 1) mod sample_cap;
          if d.s_len < sample_cap then d.s_len <- d.s_len + 1
        done)
      src.spans

let to_json t =
  Jsonx.Obj
    (List.map
       (fun s ->
         ( s.name,
           Jsonx.Obj
             [
               ("count", Jsonx.Int s.count);
               ("total_ns", Jsonx.Int s.total_ns);
               ("mean_ns", Jsonx.Float s.mean_ns);
               ("p50_ns", Jsonx.Float s.p50_ns);
               ("p90_ns", Jsonx.Float s.p90_ns);
               ("p99_ns", Jsonx.Float s.p99_ns);
             ] ))
       (snapshots t))

let pp_ns fmt ns =
  if Float.is_nan ns then Format.pp_print_string fmt "n/a"
  else if ns < 1e3 then Format.fprintf fmt "%.0fns" ns
  else if ns < 1e6 then Format.fprintf fmt "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf fmt "%.2fms" (ns /. 1e6)
  else Format.fprintf fmt "%.2fs" (ns /. 1e9)

let pp_table fmt t =
  let ns f = Format.asprintf "%a" pp_ns f in
  Format.fprintf fmt "@[<v>%-28s %10s %12s %10s %10s %10s %10s@ " "phase"
    "count" "total" "mean" "p50" "p90" "p99";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-28s %10d %12s %10s %10s %10s %10s@ " s.name
        s.count
        (ns (float_of_int s.total_ns))
        (ns s.mean_ns) (ns s.p50_ns) (ns s.p90_ns) (ns s.p99_ns))
    (snapshots t);
  Format.fprintf fmt "@]"
