(** C11obs profiling: monotonic-clock span timers around the engine's hot
    phases (mo-graph updates, clock-vector merges, release-sequence
    resolution, race checks, pruning sweeps, whole executions).

    Spans accumulate per name into count/total plus a sliding window of
    the last 4096 durations for percentile readout.  The {!null} profiler
    is disabled: {!start} returns without reading the clock and {!stop}
    is a single branch, so instrumentation is effectively free when
    profiling is off. *)

type t

val create : unit -> t
val null : t
val enabled : t -> bool

(** Current monotonic time in nanoseconds. *)
val now_ns : unit -> int

(** [start t] reads the clock (0 when disabled); pair with {!stop}. *)
val start : t -> int

(** [stop t name t0] records one [name] span started at [t0]. *)
val stop : t -> string -> int -> unit

(** [time t name f] runs [f] inside a [name] span (closure-based
    convenience; prefer {!start}/{!stop} on hot paths). *)
val time : t -> string -> (unit -> 'a) -> 'a

type snapshot = {
  name : string;
  count : int;
  total_ns : int;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

(** Sorted by total time, descending. *)
val snapshots : t -> snapshot list

val snapshot : t -> string -> snapshot option

(** [rate t name] is spans per second of wall time spent inside [name]
    (count / total), or [nan] when the span never ran — the
    throughput readout behind the fuzzer's programs/sec reporting. *)
val rate : t -> string -> float

val reset : t -> unit

(** [absorb ~into src] folds another profiler's spans into [into]: counts
    and totals add exactly; the percentile window appends [src]'s
    samples.  Parallel campaigns profile each domain into a private
    profiler and absorb them in worker order after the join. *)
val absorb : into:t -> t -> unit

(** [{phase:{count,total_ns,mean_ns,p50_ns,p90_ns,p99_ns}}] *)
val to_json : t -> Jsonx.t

val pp_ns : Format.formatter -> float -> unit
val pp_table : Format.formatter -> t -> unit
