(** A minimal JSON representation used by the observability layer
    ({!Obs} NDJSON traces, {!Metrics} readouts, the CLI's [--json]
    summaries and the bench harness reports).

    No third-party JSON library is available in the build environment, so
    this module provides just enough: a value type, a compact and a
    pretty emitter, and a strict parser sufficient to round-trip
    everything this library emits.  Non-finite floats are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

(** Two-space indented rendering, for human-facing [--json -] output. *)
val to_pretty_string : t -> string

(** [parse s] parses exactly one JSON document ([Error] describes the
    first offending offset otherwise).  Numbers containing ['.'], ['e'] or
    ['E'] parse as [Float]; everything else as [Int]. *)
val parse : string -> (t, string) result

(** [member key j] is the value bound to [key] when [j] is an object. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
