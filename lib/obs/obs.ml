type kind =
  | Load
  | Store
  | Rmw
  | Fence
  | Na_read
  | Na_write
  | Sync
  | Race_check
  | Prune
  | Sched_pick

type event = {
  step : int;
  tid : int;
  kind : kind;
  loc : int;
  mo : string;
  value : int;
  detail : string;
}

let dummy_event =
  { step = 0; tid = -1; kind = Sync; loc = -1; mo = ""; value = 0; detail = "" }

type sink = {
  sink_name : string;
  emit : event -> unit;
  flush : unit -> unit;
}

type t = {
  mutable on : bool;
  mutable sinks : sink list;  (** registration order *)
  cap : int;  (** ring capacity; 0 = no ring *)
  buf : event array;  (** ring storage; length = max cap 1 *)
  mutable len : int;  (** events currently held, <= cap *)
  mutable next : int;  (** next write index *)
  mutable total : int;  (** events emitted since the last [clear] *)
}

let create ?(ring_capacity = 0) () =
  let cap = max 0 ring_capacity in
  {
    on = cap > 0;
    sinks = [];
    cap;
    buf = Array.make (max cap 1) dummy_event;
    len = 0;
    next = 0;
    total = 0;
  }

let null = create ()
let ring_capacity t = t.cap
let enabled t = t.on

let add_sink t sink =
  if t == null then
    invalid_arg "Obs.add_sink: the shared null tracer is immutable";
  t.sinks <- t.sinks @ [ sink ];
  t.on <- true

let sinks t = t.sinks

let clear_sinks t =
  t.sinks <- [];
  t.on <- t.cap > 0

let flush t = List.iter (fun s -> s.flush ()) t.sinks

let emit t e =
  if t.cap > 0 then begin
    t.buf.(t.next) <- e;
    t.next <- (t.next + 1) mod t.cap;
    if t.len < t.cap then t.len <- t.len + 1
  end;
  t.total <- t.total + 1;
  List.iter (fun s -> s.emit e) t.sinks

let total t = t.total

let ring_events t =
  let start = if t.len < t.cap then 0 else t.next in
  List.init t.len (fun i -> t.buf.((start + i) mod t.cap))

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.total <- 0

(* ------------------------------------------------------------------ *)
(* Event pretty-printing and (ND)JSON codec *)

let kind_to_string = function
  | Load -> "load"
  | Store -> "store"
  | Rmw -> "rmw"
  | Fence -> "fence"
  | Na_read -> "na_read"
  | Na_write -> "na_write"
  | Sync -> "sync"
  | Race_check -> "race_check"
  | Prune -> "prune"
  | Sched_pick -> "sched_pick"

let kind_of_string = function
  | "load" -> Some Load
  | "store" -> Some Store
  | "rmw" -> Some Rmw
  | "fence" -> Some Fence
  | "na_read" -> Some Na_read
  | "na_write" -> Some Na_write
  | "sync" -> Some Sync
  | "race_check" -> Some Race_check
  | "prune" -> Some Prune
  | "sched_pick" -> Some Sched_pick
  | _ -> None

let pp_event fmt e =
  Format.fprintf fmt "#%d t%d %s" e.step e.tid (kind_to_string e.kind);
  if e.loc >= 0 then Format.fprintf fmt " loc=%d" e.loc;
  if e.mo <> "" then Format.fprintf fmt " %s" e.mo;
  (match e.kind with
  | Load | Store | Rmw | Na_read | Na_write -> Format.fprintf fmt " v=%d" e.value
  | Sched_pick -> Format.fprintf fmt " enabled=%d" e.value
  | Fence | Sync | Race_check | Prune -> ());
  if e.detail <> "" then Format.fprintf fmt " (%s)" e.detail

let event_to_json e =
  Jsonx.Obj
    [
      ("step", Jsonx.Int e.step);
      ("tid", Jsonx.Int e.tid);
      ("kind", Jsonx.String (kind_to_string e.kind));
      ("loc", Jsonx.Int e.loc);
      ("mo", Jsonx.String e.mo);
      ("value", Jsonx.Int e.value);
      ("detail", Jsonx.String e.detail);
    ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let* step = Option.bind (Jsonx.member "step" j) Jsonx.to_int in
  let* tid = Option.bind (Jsonx.member "tid" j) Jsonx.to_int in
  let* kind_s = Option.bind (Jsonx.member "kind" j) Jsonx.to_str in
  let* kind = kind_of_string kind_s in
  let* loc = Option.bind (Jsonx.member "loc" j) Jsonx.to_int in
  let* mo = Option.bind (Jsonx.member "mo" j) Jsonx.to_str in
  let* value = Option.bind (Jsonx.member "value" j) Jsonx.to_int in
  let* detail = Option.bind (Jsonx.member "detail" j) Jsonx.to_str in
  Some { step; tid; kind; loc; mo; value; detail }

(* ------------------------------------------------------------------ *)
(* Stock sinks *)

let memory_sink () =
  let acc = ref [] in
  let sink =
    {
      sink_name = "memory";
      emit = (fun e -> acc := e :: !acc);
      flush = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !acc)

let pretty_sink fmt =
  {
    sink_name = "pretty";
    emit = (fun e -> Format.fprintf fmt "%a@." pp_event e);
    flush = (fun () -> Format.pp_print_flush fmt ());
  }

let ndjson_sink oc =
  {
    sink_name = "ndjson";
    emit =
      (fun e ->
        Jsonx.to_channel oc (event_to_json e);
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
  }

let drain_to_sink t sink =
  List.iter sink.emit (ring_events t);
  sink.flush ()

let absorb ~into src = List.iter (emit into) (ring_events src)
