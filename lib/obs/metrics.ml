let sample_cap = 4096

type counter = { mutable count : int }
type gauge = { mutable g_value : float }

type histo = {
  mutable h_count : int;
  mutable h_total : float;
  mutable h_min : float;
  mutable h_max : float;
  samples : float array;  (** sliding window of the last [sample_cap] *)
  mutable s_len : int;
  mutable s_next : int;
}

type t = {
  on : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
}

let make on =
  {
    on;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 16;
  }

let create () = make true
let null = make false
let enabled t = t.on

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.add t.counters name c;
    c

let incr t ?(by = 1) name =
  if t.on then begin
    let c = counter t name in
    c.count <- c.count + by
  end

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_value = nan } in
    Hashtbl.add t.gauges name g;
    g

let set_gauge t name v = if t.on then (gauge t name).g_value <- v

let max_gauge t name v =
  if t.on then begin
    let g = gauge t name in
    if Float.is_nan g.g_value || v > g.g_value then g.g_value <- v
  end

let histo t name =
  match Hashtbl.find_opt t.histos name with
  | Some h -> h
  | None ->
    let h =
      {
        h_count = 0;
        h_total = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
        samples = Array.make sample_cap 0.0;
        s_len = 0;
        s_next = 0;
      }
    in
    Hashtbl.add t.histos name h;
    h

let observe t name v =
  if t.on then begin
    let h = histo t name in
    h.h_count <- h.h_count + 1;
    h.h_total <- h.h_total +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    h.samples.(h.s_next) <- v;
    h.s_next <- (h.s_next + 1) mod sample_cap;
    if h.s_len < sample_cap then h.s_len <- h.s_len + 1
  end

(* ------------------------------------------------------------------ *)
(* Readout *)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.count | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g when not (Float.is_nan g.g_value) -> Some g.g_value
  | _ -> None

type snapshot = {
  name : string;
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let snapshot_of_histo name h =
  let xs = Array.to_list (Array.sub h.samples 0 h.s_len) in
  {
    name;
    count = h.h_count;
    total = h.h_total;
    mean = (if h.h_count = 0 then nan else h.h_total /. float_of_int h.h_count);
    min = (if h.h_count = 0 then nan else h.h_min);
    max = (if h.h_count = 0 then nan else h.h_max);
    p50 = Stats.percentile 50.0 xs;
    p90 = Stats.percentile 90.0 xs;
    p99 = Stats.percentile 99.0 xs;
  }

let histo_snapshot t name =
  Option.map (snapshot_of_histo name) (Hashtbl.find_opt t.histos name)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let counters t =
  List.map
    (fun (k, (c : counter)) -> (k, c.count))
    (sorted_bindings t.counters)

let gauges t =
  List.filter_map
    (fun (k, g) ->
      if Float.is_nan g.g_value then None else Some (k, g.g_value))
    (sorted_bindings t.gauges)

let histo_snapshots t =
  List.map (fun (k, h) -> snapshot_of_histo k h) (sorted_bindings t.histos)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histos

let absorb ~into src =
  if into.on then begin
    Hashtbl.iter
      (fun name (c : counter) -> incr into ~by:c.count name)
      src.counters;
    Hashtbl.iter
      (fun name g ->
        if not (Float.is_nan g.g_value) then set_gauge into name g.g_value)
      src.gauges;
    Hashtbl.iter
      (fun name (h : histo) ->
        let d = histo into name in
        d.h_count <- d.h_count + h.h_count;
        d.h_total <- d.h_total +. h.h_total;
        if h.h_min < d.h_min then d.h_min <- h.h_min;
        if h.h_max > d.h_max then d.h_max <- h.h_max;
        (* append [h]'s window to [d]'s, oldest first, keeping the
           sliding-window invariant (the last [sample_cap] survive) *)
        let start = if h.s_len < sample_cap then 0 else h.s_next in
        for i = 0 to h.s_len - 1 do
          d.samples.(d.s_next) <- h.samples.((start + i) mod sample_cap);
          d.s_next <- (d.s_next + 1) mod sample_cap;
          if d.s_len < sample_cap then d.s_len <- d.s_len + 1
        done)
      src.histos
  end

let snapshot_to_json s =
  Jsonx.Obj
    [
      ("count", Jsonx.Int s.count);
      ("total", Jsonx.Float s.total);
      ("mean", Jsonx.Float s.mean);
      ("min", Jsonx.Float s.min);
      ("max", Jsonx.Float s.max);
      ("p50", Jsonx.Float s.p50);
      ("p90", Jsonx.Float s.p90);
      ("p99", Jsonx.Float s.p99);
    ]

let to_json t =
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) (counters t)) );
      ( "gauges",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) (gauges t)) );
      ( "histograms",
        Jsonx.Obj
          (List.map
             (fun s -> (s.name, snapshot_to_json s))
             (histo_snapshots t)) );
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-32s %12d@ " k v)
    (counters t);
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-32s %12.2f@ " k v)
    (gauges t);
  List.iter
    (fun s ->
      Format.fprintf fmt "%-32s n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g@ "
        s.name s.count s.mean s.p50 s.p90 s.p99)
    (histo_snapshots t);
  Format.fprintf fmt "@]"
