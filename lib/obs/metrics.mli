(** C11obs metrics: named counters, gauges and histograms with percentile
    readout.

    A {!t} is a registry.  Instrumented code records through a registry
    handle that defaults to {!null}, whose operations are no-ops, so
    metrics cost one boolean test when disabled.

    Histogram percentiles (p50/p90/p99) are computed over a sliding
    window of the most recent 4096 observations; [count], [total],
    [mean], [min] and [max] are exact over all observations. *)

type t

val create : unit -> t

(** Shared disabled registry: recording into it is a no-op and readouts
    are empty. *)
val null : t

val enabled : t -> bool

val incr : t -> ?by:int -> string -> unit
val set_gauge : t -> string -> float -> unit

(** [max_gauge t name v] keeps the maximum of all recorded values. *)
val max_gauge : t -> string -> float -> unit

(** [observe t name v] adds one sample to histogram [name]. *)
val observe : t -> string -> float -> unit

val counter_value : t -> string -> int
val gauge_value : t -> string -> float option

type snapshot = {
  name : string;
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histo_snapshot : t -> string -> snapshot option

(** All readouts are sorted by metric name. *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histo_snapshots : t -> snapshot list

val reset : t -> unit

(** [absorb ~into src] folds another registry into [into]: counters add,
    gauges take [src]'s value (callers absorb per-worker registries in
    worker order, so the surviving gauge is deterministic), [max_gauge]
    semantics are preserved by taking the larger value at read sites, and
    histograms combine exact aggregates ([count]/[total]/[min]/[max])
    exactly while the percentile window appends [src]'s samples.  A
    registry is single-domain state; parallel campaigns record into a
    private registry per domain and absorb them after the join. *)
val absorb : into:t -> t -> unit

(** JSON readout:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,total,mean,
    min,max,p50,p90,p99}}}].  The same schema is used by the CLI's
    [--json] output and the bench harness reports. *)
val to_json : t -> Jsonx.t

val pp : Format.formatter -> t -> unit
