(* C11cov — see cov.mli for the contract.

   Everything here is deterministic and wall-clock-free: a signature is a
   pure function of the event array, an accumulator of the observations
   fed to it, and the merge of its shards (first-occurrence indices make
   the sharded order reconstructible). *)

type ev = {
  ev_tid : int;
  ev_kind : Action.kind;
  ev_loc : int;
  ev_mo : Memorder.t;
  ev_rf : int option;
}

(* ------------------------------------------------------------------ *)
(* Canonicalisation.

   Threads and locations are renamed to their first-appearance index in
   the event array (then, for threads, the sync-edge list).  A pure
   relabeling changes neither event order nor edge structure, so the
   canonical indices — and therefore the signature — are invariant; this
   is the property test/test_cov.ml checks. *)

type renaming = { table : (int, int) Hashtbl.t; mutable next : int }

let renaming () = { table = Hashtbl.create 16; next = 0 }

let canon r x =
  match Hashtbl.find_opt r.table x with
  | Some c -> c
  | None ->
    let c = r.next in
    r.next <- c + 1;
    Hashtbl.replace r.table x c;
    c

let mo_tag = Memorder.to_string

let is_write_kind = function
  | Action.Store | Action.Rmw | Action.Na_store -> true
  | Action.Load | Action.Fence -> false

let edges evs ~sync =
  let tids = renaming () and locs = renaming () in
  Array.iter
    (fun e ->
      ignore (canon tids e.ev_tid);
      if e.ev_loc >= 0 then ignore (canon locs e.ev_loc))
    evs;
  List.iter
    (fun (a, b) ->
      ignore (canon tids a);
      ignore (canon tids b))
    sync;
  let out = ref [] in
  let add s = out := s :: !out in
  (* rf (and its release/acquire subset, the rf-induced sw edges) *)
  Array.iter
    (fun e ->
      match e.ev_rf with
      | None -> ()
      | Some j ->
        let w = evs.(j) in
        let ct_w = canon tids w.ev_tid and ct_r = canon tids e.ev_tid in
        let cl = canon locs e.ev_loc in
        add
          (Printf.sprintf "rf:t%d>t%d@l%d:%s>%s" ct_w ct_r cl (mo_tag w.ev_mo)
             (mo_tag e.ev_mo));
        if Memorder.is_release w.ev_mo && Memorder.is_acquire e.ev_mo then
          add (Printf.sprintf "sw:t%d>t%d@l%d" ct_w ct_r cl))
    evs;
  (* mo: per-location adjacent write pairs in commit (event) order *)
  let last_writer = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      if e.ev_loc >= 0 && is_write_kind e.ev_kind then begin
        let cl = canon locs e.ev_loc in
        let ct = canon tids e.ev_tid in
        (match Hashtbl.find_opt last_writer cl with
        | Some prev -> add (Printf.sprintf "mo:t%d>t%d@l%d" prev ct cl)
        | None -> ());
        Hashtbl.replace last_writer cl ct
      end)
    evs;
  (* recorded synchronisation edges (spawn / join / mutex hand-off) *)
  List.iter
    (fun (a, b) ->
      add (Printf.sprintf "st:t%d>t%d" (canon tids a) (canon tids b)))
    sync;
  List.sort_uniq String.compare !out

let signature evs ~sync = String.concat ";" (edges evs ~sync)
let digest_hex s = Digest.to_hex (Digest.string s)

type shape = {
  sg_digest : string;
  sg_edges : int;
  sg_events : int;
  sg_mo : (string * int) list;
}

let shape_of_execution exec =
  let trace = Array.of_list (Execution.cert_trace exec) in
  let idx_of_seq = Hashtbl.create (Array.length trace) in
  Array.iteri
    (fun i (a : Action.t) -> Hashtbl.replace idx_of_seq a.Action.seq i)
    trace;
  let evs =
    Array.map
      (fun (a : Action.t) ->
        {
          ev_tid = a.Action.tid;
          ev_kind = a.Action.kind;
          ev_loc = a.Action.loc;
          ev_mo = a.Action.mo;
          ev_rf =
            (match a.Action.rf with
            | None -> None
            | Some w -> Hashtbl.find_opt idx_of_seq w.Action.seq);
        })
      trace
  in
  let sync =
    List.map
      (fun (se : Execution.sync_edge) ->
        (se.Execution.se_from_tid, se.Execution.se_to_tid))
      (Execution.cert_sync_edges exec)
  in
  let es = edges evs ~sync in
  let mo = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      match e.ev_kind with
      | Action.Load | Action.Store | Action.Rmw | Action.Fence ->
        let k = mo_tag e.ev_mo in
        Hashtbl.replace mo k (1 + Option.value ~default:0 (Hashtbl.find_opt mo k))
      | Action.Na_store -> ())
    evs;
  {
    sg_digest = digest_hex (String.concat ";" es);
    sg_edges = List.length es;
    sg_events = Array.length evs;
    sg_mo =
      Hashtbl.fold (fun k v l -> (k, v) :: l) mo []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* ------------------------------------------------------------------ *)
(* Accumulation *)

type acc = {
  mutable a_execs : int;
  mutable a_events : int;
  a_shapes : (string, int * int) Hashtbl.t;  (* key -> count, first index *)
  a_races : (string, int * int) Hashtbl.t;
  a_violations : (string, int * int) Hashtbl.t;
  a_lint : (string, int * int) Hashtbl.t;
  a_mo : (string, int) Hashtbl.t;
}

let create () =
  {
    a_execs = 0;
    a_events = 0;
    a_shapes = Hashtbl.create 32;
    a_races = Hashtbl.create 8;
    a_violations = Hashtbl.create 8;
    a_lint = Hashtbl.create 8;
    a_mo = Hashtbl.create 8;
  }

let observe_key table ~index key =
  match Hashtbl.find_opt table key with
  | Some (count, first) ->
    Hashtbl.replace table key (count + 1, min first index);
    false
  | None ->
    Hashtbl.replace table key (1, index);
    true

let observe acc ~index shape =
  acc.a_execs <- acc.a_execs + 1;
  acc.a_events <- acc.a_events + shape.sg_events;
  List.iter
    (fun (k, n) ->
      Hashtbl.replace acc.a_mo k
        (n + Option.value ~default:0 (Hashtbl.find_opt acc.a_mo k)))
    shape.sg_mo;
  observe_key acc.a_shapes ~index shape.sg_digest

let observe_race acc ~index key = observe_key acc.a_races ~index key
let observe_violation acc ~index key = observe_key acc.a_violations ~index key
let observe_lint acc ~index key = observe_key acc.a_lint ~index key

type shard = {
  d_execs : int;
  d_events : int;
  d_shapes : (string * int * int) list;
  d_races : (string * int * int) list;
  d_violations : (string * int * int) list;
  d_lint : (string * int * int) list;
  d_mo : (string * int) list;
}

let table_entries t =
  Hashtbl.fold (fun k (count, first) l -> (k, count, first) :: l) t []

let shard acc =
  {
    d_execs = acc.a_execs;
    d_events = acc.a_events;
    d_shapes = table_entries acc.a_shapes;
    d_races = table_entries acc.a_races;
    d_violations = table_entries acc.a_violations;
    d_lint = table_entries acc.a_lint;
    d_mo = Hashtbl.fold (fun k v l -> (k, v) :: l) acc.a_mo [];
  }

type entry = { e_key : string; e_count : int; e_first : int }

type summary = {
  s_executions : int;
  s_events : int;
  s_shapes : entry list;
  s_races : entry list;
  s_violations : entry list;
  s_lint_rules : entry list;
  s_mo : (string * int) list;
}

let merge_table proj shards =
  Par.Merge.histogram_indexed (List.map proj shards)
  |> List.map (fun (k, count, first) ->
         { e_key = k; e_count = count; e_first = first })

let merge shards =
  let mo = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun (k, n) ->
          Hashtbl.replace mo k (n + Option.value ~default:0 (Hashtbl.find_opt mo k)))
        s.d_mo)
    shards;
  {
    s_executions = List.fold_left (fun acc s -> acc + s.d_execs) 0 shards;
    s_events = List.fold_left (fun acc s -> acc + s.d_events) 0 shards;
    s_shapes = merge_table (fun s -> s.d_shapes) shards;
    s_races = merge_table (fun s -> s.d_races) shards;
    s_violations = merge_table (fun s -> s.d_violations) shards;
    s_lint_rules = merge_table (fun s -> s.d_lint) shards;
    s_mo =
      Hashtbl.fold (fun k v l -> (k, v) :: l) mo []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let distinct_shapes s = List.length s.s_shapes

(* The novelty-query surface corpus admission is built on: every key a
   campaign discovered, under the same prefixes the fuzz loop uses when
   it nominates a program for the corpus.  Lint rule hits are excluded
   deliberately — they are properties of the generated program, not of an
   explored execution shape, so they must not admit corpus entries. *)
let summary_keys s =
  List.map (fun e -> "shape:" ^ e.e_key) s.s_shapes
  @ List.map (fun e -> "race:" ^ e.e_key) s.s_races
  @ List.map (fun e -> "violation:" ^ e.e_key) s.s_violations
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let entries_to_json entries =
  Jsonx.List
    (List.map
       (fun e ->
         Jsonx.Obj
           [
             ("key", Jsonx.String e.e_key);
             ("count", Jsonx.Int e.e_count);
             ("first", Jsonx.Int e.e_first);
           ])
       entries)

let summary_to_json s =
  Jsonx.Obj
    [
      ("executions", Jsonx.Int s.s_executions);
      ("events", Jsonx.Int s.s_events);
      ("distinct_shapes", Jsonx.Int (List.length s.s_shapes));
      ("distinct_race_sites", Jsonx.Int (List.length s.s_races));
      ("distinct_violations", Jsonx.Int (List.length s.s_violations));
      ("distinct_lint_rules", Jsonx.Int (List.length s.s_lint_rules));
      ("shapes", entries_to_json s.s_shapes);
      ("race_sites", entries_to_json s.s_races);
      ("violations", entries_to_json s.s_violations);
      ("lint_rules", entries_to_json s.s_lint_rules);
      ( "mo_histogram",
        Jsonx.Obj (List.map (fun (k, n) -> (k, Jsonx.Int n)) s.s_mo) );
    ]

let schema = "c11cov-v1"

let record kind fields =
  Jsonx.Obj
    (("schema", Jsonx.String schema) :: ("kind", Jsonx.String kind) :: fields)

let entry_records kind entries =
  List.map
    (fun e ->
      record kind
        [
          ("key", Jsonx.String e.e_key);
          ("count", Jsonx.Int e.e_count);
          ("first", Jsonx.Int e.e_first);
        ])
    entries

let summary_to_ndjson s =
  record "campaign"
    [
      ("executions", Jsonx.Int s.s_executions);
      ("events", Jsonx.Int s.s_events);
      ("distinct_shapes", Jsonx.Int (List.length s.s_shapes));
      ("distinct_race_sites", Jsonx.Int (List.length s.s_races));
      ("distinct_violations", Jsonx.Int (List.length s.s_violations));
    ]
  :: entry_records "shape" s.s_shapes
  @ entry_records "race_site" s.s_races
  @ entry_records "violation" s.s_violations
  @ entry_records "lint_rule" s.s_lint_rules
  @ List.map
      (fun (k, n) ->
        record "mo" [ ("order", Jsonx.String k); ("count", Jsonx.Int n) ])
      s.s_mo

let summary_of_ndjson docs =
  let ( let* ) = Result.bind in
  let int_field j k =
    match Option.bind (Jsonx.member k j) Jsonx.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "missing integer field %S" k)
  in
  let str_field j k =
    match Option.bind (Jsonx.member k j) Jsonx.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" k)
  in
  let entry_of j =
    let* key = str_field j "key" in
    let* count = int_field j "count" in
    let* first = int_field j "first" in
    Ok { e_key = key; e_count = count; e_first = first }
  in
  let rec go docs campaign shapes races violations lint mo =
    match docs with
    | [] -> (
      match campaign with
      | None -> Error "no c11cov-v1 campaign record"
      | Some (executions, events) ->
        let order l = List.sort (fun a b -> compare a.e_first b.e_first) l in
        Ok
          {
            s_executions = executions;
            s_events = events;
            s_shapes = order (List.rev shapes);
            s_races = order (List.rev races);
            s_violations = order (List.rev violations);
            s_lint_rules = order (List.rev lint);
            s_mo = List.sort (fun (a, _) (b, _) -> String.compare a b) mo;
          })
    | j :: rest -> (
      let* sch = str_field j "schema" in
      if sch <> schema then
        Error (Printf.sprintf "unexpected schema %S (want %s)" sch schema)
      else
        let* kind = str_field j "kind" in
        match kind with
        | "campaign" ->
          if campaign <> None then Error "duplicate campaign record"
          else
            let* executions = int_field j "executions" in
            let* events = int_field j "events" in
            go rest (Some (executions, events)) shapes races violations lint mo
        | "shape" ->
          let* e = entry_of j in
          go rest campaign (e :: shapes) races violations lint mo
        | "race_site" ->
          let* e = entry_of j in
          go rest campaign shapes (e :: races) violations lint mo
        | "violation" ->
          let* e = entry_of j in
          go rest campaign shapes races (e :: violations) lint mo
        | "lint_rule" ->
          let* e = entry_of j in
          go rest campaign shapes races violations (e :: lint) mo
        | "mo" ->
          let* order = str_field j "order" in
          let* count = int_field j "count" in
          go rest campaign shapes races violations lint ((order, count) :: mo)
        | k -> Error (Printf.sprintf "unknown record kind %S" k))
  in
  go docs None [] [] [] [] []

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>coverage: %d distinct shapes over %d executions (%d trace events)@ \
     race sites: %d, violation keys: %d@]"
    (List.length s.s_shapes) s.s_executions s.s_events (List.length s.s_races)
    (List.length s.s_violations);
  if s.s_lint_rules <> [] then begin
    Format.fprintf fmt "@ lint rules:";
    List.iter (fun e -> Format.fprintf fmt " %s=%d" e.e_key e.e_count) s.s_lint_rules
  end;
  if s.s_mo <> [] then begin
    Format.fprintf fmt "@ memory orders:";
    List.iter (fun (k, n) -> Format.fprintf fmt " %s=%d" k n) s.s_mo
  end
