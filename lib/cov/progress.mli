(** Live campaign progress streaming — the [c11progress-v1] NDJSON
    heartbeat wire format behind [--progress[=FILE|-]] (and, per ROADMAP
    item 5, what [c11test serve] will eventually speak).

    One {!t} serves a whole campaign: workers bump atomic counters from
    their domains; a heartbeat record is emitted (under a mutex, so lines
    never interleave) whenever a bump notices the emission interval has
    elapsed.  Heartbeats carry wall-clock-dependent fields (elapsed
    seconds, exec/s, GC words) and shard-local novelty overapproximations,
    so they are {e not} part of the deterministic surface; the one [final]
    record is, once those wall fields are stripped — parity tests compare
    exactly that. *)

type t

(** [create ~out ~interval_ns ~total] streams heartbeats to [out] at
    most every [interval_ns] (monotonic).  [total] is the planned number
    of executions, [-1] when open-ended. *)
val create : out:out_channel -> interval_ns:int -> total:int -> t

(** Disabled singleton: every operation is a no-op.  [enabled] is the
    cached boolean the instrumentation sites guard on. *)
val null : t

val enabled : t -> bool

(** Credit one execution's streaming-certification work: [certified]
    actions consumed by the streaming certifier and [retired] actions
    whose window storage was freed by hb-closed prefix retirement.  Once
    either campaign total is nonzero, heartbeat and [final] records carry
    [certified_ops] / [retired_prefix_ops] fields; certify-off campaigns
    emit records identical to earlier schema versions.  Safe from any
    domain. *)
val account_certified : t -> certified:int -> retired:int -> unit

(** Record one finished execution; [novel] when it produced a
    shard-novel coverage shape, [finding] when it surfaced a deduplicated
    finding.  Emits a heartbeat when due.  Safe from any domain. *)
val tick : t -> novel:bool -> finding:bool -> unit

(** [observe t ~done_ ~novel ~findings ~certified_ops ~retired_prefix_ops]
    sets the counters to absolute values and emits a heartbeat when due —
    the aggregation entry point for a coordinator that sums cumulative
    counts reported by worker {e processes} (lib/svc) rather than ticking
    per execution.  Safe from any domain. *)
val observe :
  t ->
  done_:int ->
  novel:int ->
  findings:int ->
  certified_ops:int ->
  retired_prefix_ops:int ->
  unit

(** Emit the [final] record.  When the campaign's merged summary is
    known, [?novel] / [?findings] override the shard-local sums with the
    exact merged counts.  Idempotent: only the first call emits. *)
val finish : ?novel:int -> ?findings:int -> t -> unit
