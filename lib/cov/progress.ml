type state = {
  out : out_channel;
  interval_ns : int;
  total : int;
  started_ns : int;
  done_ : int Atomic.t;
  novel : int Atomic.t;
  findings : int Atomic.t;
  certified_ops : int Atomic.t;
  retired_prefix_ops : int Atomic.t;
  next_due_ns : int Atomic.t;
  finished : bool Atomic.t;
  emit_lock : Mutex.t;
}

type t = state option

let null = None
let enabled t = t <> None

let create ~out ~interval_ns ~total =
  let now = Profile.now_ns () in
  Some
    {
      out;
      interval_ns;
      total;
      started_ns = now;
      done_ = Atomic.make 0;
      novel = Atomic.make 0;
      findings = Atomic.make 0;
      certified_ops = Atomic.make 0;
      retired_prefix_ops = Atomic.make 0;
      next_due_ns = Atomic.make (now + interval_ns);
      finished = Atomic.make false;
      emit_lock = Mutex.create ();
    }

let schema = "c11progress-v1"

let record s kind ~done_ ~novel ~findings ~now =
  let elapsed_ns = max 1 (now - s.started_ns) in
  let elapsed_s = float_of_int elapsed_ns /. 1e9 in
  let q = Gc.quick_stat () in
  let certified = Atomic.get s.certified_ops in
  let retired = Atomic.get s.retired_prefix_ops in
  (* The streaming-certification counters appear only once the streaming
     certifier has consumed at least one action, so certify-off campaigns
     emit records byte-identical to earlier schema versions. *)
  let stream_fields =
    if certified > 0 || retired > 0 then
      [
        ("certified_ops", Jsonx.Int certified);
        ("retired_prefix_ops", Jsonx.Int retired);
      ]
    else []
  in
  Jsonx.Obj
    ([
       ("schema", Jsonx.String schema);
       ("kind", Jsonx.String kind);
       ("done", Jsonx.Int done_);
       ("total", Jsonx.Int s.total);
       ("novel", Jsonx.Int novel);
       ("findings", Jsonx.Int findings);
     ]
    @ stream_fields
    @ [
        ("elapsed_s", Jsonx.Float elapsed_s);
        ("exec_per_s", Jsonx.Float (float_of_int done_ /. elapsed_s));
        ("gc_top_heap_words", Jsonx.Int q.Gc.top_heap_words);
        ("gc_heap_words", Jsonx.Int q.Gc.heap_words);
      ])

let emit s kind ~now =
  Mutex.lock s.emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.emit_lock)
    (fun () ->
      let j =
        record s kind ~done_:(Atomic.get s.done_) ~novel:(Atomic.get s.novel)
          ~findings:(Atomic.get s.findings) ~now
      in
      output_string s.out (Jsonx.to_string j);
      output_char s.out '\n';
      flush s.out)

let account_certified t ~certified ~retired =
  match t with
  | None -> ()
  | Some s ->
    if certified > 0 then ignore (Atomic.fetch_and_add s.certified_ops certified);
    if retired > 0 then
      ignore (Atomic.fetch_and_add s.retired_prefix_ops retired)

let tick t ~novel ~finding =
  match t with
  | None -> ()
  | Some s ->
    Atomic.incr s.done_;
    if novel then Atomic.incr s.novel;
    if finding then Atomic.incr s.findings;
    let due = Atomic.get s.next_due_ns in
    let now = Profile.now_ns () in
    if
      now >= due
      && Atomic.compare_and_set s.next_due_ns due (now + s.interval_ns)
    then emit s "heartbeat" ~now

let observe t ~done_ ~novel ~findings ~certified_ops ~retired_prefix_ops =
  match t with
  | None -> ()
  | Some s ->
    Atomic.set s.done_ done_;
    Atomic.set s.novel novel;
    Atomic.set s.findings findings;
    Atomic.set s.certified_ops certified_ops;
    Atomic.set s.retired_prefix_ops retired_prefix_ops;
    let due = Atomic.get s.next_due_ns in
    let now = Profile.now_ns () in
    if
      now >= due
      && Atomic.compare_and_set s.next_due_ns due (now + s.interval_ns)
    then emit s "heartbeat" ~now

let finish ?novel ?findings t =
  match t with
  | None -> ()
  | Some s ->
    if Atomic.compare_and_set s.finished false true then begin
      (match novel with Some n -> Atomic.set s.novel n | None -> ());
      (match findings with Some n -> Atomic.set s.findings n | None -> ());
      emit s "final" ~now:(Profile.now_ns ())
    end
