(** C11cov — execution-shape coverage telemetry.

    Throughput tells a campaign how {e fast} it is exploring; this module
    tells it {e what} it has explored.  Every finished execution is
    fingerprinted into a canonical {!shape}: the deduplicated set of its
    rf / mo / sw edge patterns with threads and locations renamed to
    first-appearance indices, so two executions that differ only in
    thread identities, allocation order or concrete values collapse to
    the same signature (the MCA verification line of work — Singh et al.,
    "Dynamic Verification of C/C++11 Concurrency over Multi Copy
    Atomics" — reports exploration in exactly these terms).  A campaign
    accumulates shapes, race-site keys and certifier violation keys per
    shard and merges the shards order-independently with first-occurrence
    indices ({!Par.Merge} discipline), so a [-j N] coverage report is
    bit-identical to the sequential one.

    Zero-cost-when-off contract: nothing in this module is consulted by
    the engine's hot paths unless [Engine.config.coverage] is set; the
    guard is the same cached-boolean discipline as C11obs. *)

(* ------------------------------------------------------------------ *)
(** {1 Canonical signatures} *)

(** One event in canonicalisable form, an index into the execution's
    event array.  [ev_rf] names the event index of the store a load/RMW
    read from. *)
type ev = {
  ev_tid : int;
  ev_kind : Action.kind;
  ev_loc : int;  (** -1 for fences *)
  ev_mo : Memorder.t;
  ev_rf : int option;
}

(** [edges evs ~sync] is the deduplicated, sorted list of canonical edge
    descriptors of an execution: [rf:*] reads-from edges (with both
    endpoint memory orders), [sw:*] the release/acquire subset of rf,
    [mo:*] per-location adjacent write pairs in commit order, and [st:*]
    recorded synchronisation edges (spawn / join / mutex hand-off), all
    with thread and location labels renamed to first-appearance order.
    Invariant under injective renaming of thread ids and of location ids
    (events keep their order, labels change). *)
val edges : ev array -> sync:(int * int) list -> string list

(** [signature evs ~sync] is [String.concat ";" (edges evs ~sync)]. *)
val signature : ev array -> sync:(int * int) list -> string

(** Stable hex digest of a signature (what reports key shapes by). *)
val digest_hex : string -> string

(** The per-execution fingerprint the engine computes when coverage is
    on. *)
type shape = {
  sg_digest : string;  (** {!digest_hex} of the canonical signature *)
  sg_edges : int;  (** distinct canonical edges *)
  sg_events : int;  (** recorded trace actions *)
  sg_mo : (string * int) list;
      (** memory-order usage over atomic actions and fences, sorted by
          order name *)
}

(** Fingerprint a finished execution from its certifier-grade recording
    ({!Execution.cert_trace} / {!Execution.cert_sync_edges}); the
    execution must have been created with trace recording on. *)
val shape_of_execution : Execution.t -> shape

(* ------------------------------------------------------------------ *)
(** {1 Campaign accumulation} *)

(** Shard-local accumulator.  Single-domain state: parallel campaigns
    keep one per worker and merge the extracted {!shard}s. *)
type acc

val create : unit -> acc

(** [observe acc ~index shape] records one execution's fingerprint;
    [index] is the global execution index (first occurrence wins in the
    merge).  Returns [true] when the shape is new to {e this} shard. *)
val observe : acc -> index:int -> shape -> bool

(** Record a race site ({!Race.dedup_key}); [true] when new to this
    shard. *)
val observe_race : acc -> index:int -> string -> bool

(** Record a certifier violation key ({!Check.violation_key} in
    [lib/check]); [true] when new to this shard. *)
val observe_violation : acc -> index:int -> string -> bool

(** Record a static-analysis rule hit ({!Lint.rule_names} member); [true]
    when new to this shard. *)
val observe_lint : acc -> index:int -> string -> bool

(** Immutable, cross-domain-safe extract of an accumulator. *)
type shard

val shard : acc -> shard

(** One merged coverage table entry: key, total observation count and
    the lowest global execution index that first produced it. *)
type entry = { e_key : string; e_count : int; e_first : int }

type summary = {
  s_executions : int;
  s_events : int;  (** total recorded trace actions *)
  s_shapes : entry list;  (** ascending first-occurrence index *)
  s_races : entry list;
  s_violations : entry list;
  s_lint_rules : entry list;
      (** static-analysis rule hits over generated programs (empty when
          the campaign ran no lint pass) *)
  s_mo : (string * int) list;  (** sorted by memory-order name *)
}

(** Order-independent merge ({!Par.Merge.histogram_indexed} under the
    hood): the summary is bit-identical for every sharding of the same
    campaign. *)
val merge : shard list -> summary

val distinct_shapes : summary -> int

(** Novelty query: every coverage key of the summary, prefixed by its
    table ([shape:], [race:], [violation:]) and sorted.  This is the
    key namespace corpus admission (lib/corpus via lib/fuzz) deduplicates
    against; lint rule hits are deliberately excluded — they describe the
    generated program, not an explored execution shape. *)
val summary_keys : summary -> string list

(* ------------------------------------------------------------------ *)
(** {1 Serialisation} *)

(** Compact object embedded in campaign [--json] reports. *)
val summary_to_json : summary -> Jsonx.t

(** The [c11cov-v1] NDJSON artifact, one document per line: a [campaign]
    totals record followed by [shape] / [race_site] / [violation] /
    [lint_rule] / [mo] records. *)
val summary_to_ndjson : summary -> Jsonx.t list

(** Parse a [c11cov-v1] artifact back (any line order; exactly one
    [campaign] record required) — the read side of [c11test report]. *)
val summary_of_ndjson : Jsonx.t list -> (summary, string) result

val pp_summary : Format.formatter -> summary -> unit
