(* The generated-program IR.  Born in lib/fuzz; hoisted here so the
   static analyzer (Lint) and the fuzzer can share it without a
   dependency cycle — Fuzz re-exports every type below with equations,
   so Fuzz.Load and Progir.Load are the same constructor. *)

type profile = Mixed | Sc_heavy | Rmw_chain | Mixed_atomicity

let profile_name = function
  | Mixed -> "mixed"
  | Sc_heavy -> "sc-heavy"
  | Rmw_chain -> "rmw-chain"
  | Mixed_atomicity -> "mixed-atomicity"

let profile_of_string = function
  | "mixed" -> Some Mixed
  | "sc-heavy" -> Some Sc_heavy
  | "rmw-chain" -> Some Rmw_chain
  | "mixed-atomicity" -> Some Mixed_atomicity
  | _ -> None

let all_profiles = [ Mixed; Sc_heavy; Rmw_chain; Mixed_atomicity ]

type op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

type program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

let op_count p =
  Array.fold_left (fun acc ops -> acc + Array.length ops) 0 p.p_threads

let validate p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_op t i held op =
    let in_range what v n =
      if v < 0 || v >= n then err "thread %d op %d: %s %d out of range [0,%d)" t i what v n
      else Ok held
    in
    match op with
    | Load { loc; _ } | Reuse_load { loc } -> in_range "atomic loc" loc p.p_atomic_locs
    | Store { loc; _ } | Add { loc; _ } | Cas { loc; _ } | Xchg { loc; _ }
    | Reuse_store { loc; _ } ->
      in_range "atomic loc" loc p.p_atomic_locs
    | Na_read { na } | Na_write { na; _ } -> in_range "plain loc" na p.p_na_locs
    | Fence _ | Yield -> Ok held
    | Lock { m } ->
      if m < 0 || m >= p.p_mutexes then
        err "thread %d op %d: mutex %d out of range [0,%d)" t i m p.p_mutexes
      else begin
        match held with
        | top :: _ when m <= top ->
          err "thread %d op %d: lock %d violates order (holding %d)" t i m top
        | _ -> Ok (m :: held)
      end
    | Unlock { m } -> (
      match held with
      | top :: rest when top = m -> Ok rest
      | top :: _ -> err "thread %d op %d: unlock %d but innermost held is %d" t i m top
      | [] -> err "thread %d op %d: unlock %d while holding nothing" t i m)
  in
  if Array.length p.p_threads = 0 then Error "no main thread"
  else if p.p_atomic_locs < 0 || p.p_na_locs < 0 || p.p_mutexes < 0 then
    Error "negative location count"
  else begin
    let result = ref (Ok ()) in
    Array.iteri
      (fun t ops ->
        if !result = Ok () then begin
          let held = ref (Ok []) in
          Array.iteri
            (fun i op ->
              match !held with
              | Error _ -> ()
              | Ok h -> held := check_op t i h op)
            ops;
          match !held with
          | Error e -> result := Error e
          | Ok [] -> ()
          | Ok (m :: _) -> result := Error (Printf.sprintf "thread %d exits holding mutex %d" t m)
        end)
      p.p_threads;
    !result
  end
