(* The generated-program IR.  Born in lib/fuzz; hoisted here so the
   static analyzer (Lint) and the fuzzer can share it without a
   dependency cycle — Fuzz re-exports every type below with equations,
   so Fuzz.Load and Progir.Load are the same constructor. *)

type profile = Mixed | Sc_heavy | Rmw_chain | Mixed_atomicity

let profile_name = function
  | Mixed -> "mixed"
  | Sc_heavy -> "sc-heavy"
  | Rmw_chain -> "rmw-chain"
  | Mixed_atomicity -> "mixed-atomicity"

let profile_of_string = function
  | "mixed" -> Some Mixed
  | "sc-heavy" -> Some Sc_heavy
  | "rmw-chain" -> Some Rmw_chain
  | "mixed-atomicity" -> Some Mixed_atomicity
  | _ -> None

let all_profiles = [ Mixed; Sc_heavy; Rmw_chain; Mixed_atomicity ]

type op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

type program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

let op_count p =
  Array.fold_left (fun acc ops -> acc + Array.length ops) 0 p.p_threads

(* ------------------------------------------------------------------ *)
(* Op-unit editing machinery.

   Born in the fuzzer's shrinker; hoisted here so corpus mutation
   (lib/corpus) edits programs with the identical notion of a deletable
   unit.  A lock and its matching unlock form one unit: removing either
   alone would break the discipline [validate] checks. *)

let lock_pairs ops =
  let pairs = Hashtbl.create 4 in
  let stack = ref [] in
  Array.iteri
    (fun i op ->
      match op with
      | Lock _ -> stack := i :: !stack
      | Unlock _ ->
        let l = List.hd !stack in
        stack := List.tl !stack;
        Hashtbl.replace pairs l i;
        Hashtbl.replace pairs i l
      | _ -> ())
    ops;
  pairs

let remove_indices ops to_remove =
  let keep = ref [] in
  Array.iteri (fun i op -> if not (List.mem i to_remove) then keep := op :: !keep) ops;
  Array.of_list (List.rev !keep)

let with_thread p t ops =
  let threads = Array.copy p.p_threads in
  threads.(t) <- ops;
  { p with p_threads = threads }

let without_thread p t =
  if t = 0 then with_thread p 0 [||]
  else begin
    let threads =
      Array.init
        (Array.length p.p_threads - 1)
        (fun i -> p.p_threads.(if i < t then i else i + 1))
    in
    { p with p_threads = threads }
  end

(* Deletion units of one thread body, as index lists (op [i] alone, or a
   lock/unlock pair), in ascending order of first index. *)
let units_of ops =
  let pairs = lock_pairs ops in
  let units = ref [] in
  Array.iteri
    (fun i op ->
      match op with
      | Unlock _ -> ()  (* handled with its lock *)
      | Lock _ -> units := [ i; Hashtbl.find pairs i ] :: !units
      | _ -> units := [ i ] :: !units)
    ops;
  List.rev !units

let validate p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_op t i held op =
    let in_range what v n =
      if v < 0 || v >= n then err "thread %d op %d: %s %d out of range [0,%d)" t i what v n
      else Ok held
    in
    match op with
    | Load { loc; _ } | Reuse_load { loc } -> in_range "atomic loc" loc p.p_atomic_locs
    | Store { loc; _ } | Add { loc; _ } | Cas { loc; _ } | Xchg { loc; _ }
    | Reuse_store { loc; _ } ->
      in_range "atomic loc" loc p.p_atomic_locs
    | Na_read { na } | Na_write { na; _ } -> in_range "plain loc" na p.p_na_locs
    | Fence _ | Yield -> Ok held
    | Lock { m } ->
      if m < 0 || m >= p.p_mutexes then
        err "thread %d op %d: mutex %d out of range [0,%d)" t i m p.p_mutexes
      else begin
        match held with
        | top :: _ when m <= top ->
          err "thread %d op %d: lock %d violates order (holding %d)" t i m top
        | _ -> Ok (m :: held)
      end
    | Unlock { m } -> (
      match held with
      | top :: rest when top = m -> Ok rest
      | top :: _ -> err "thread %d op %d: unlock %d but innermost held is %d" t i m top
      | [] -> err "thread %d op %d: unlock %d while holding nothing" t i m)
  in
  if Array.length p.p_threads = 0 then Error "no main thread"
  else if p.p_atomic_locs < 0 || p.p_na_locs < 0 || p.p_mutexes < 0 then
    Error "negative location count"
  else begin
    let result = ref (Ok ()) in
    Array.iteri
      (fun t ops ->
        if !result = Ok () then begin
          let held = ref (Ok []) in
          Array.iteri
            (fun i op ->
              match !held with
              | Error _ -> ()
              | Ok h -> held := check_op t i h op)
            ops;
          match !held with
          | Error e -> result := Error e
          | Ok [] -> ()
          | Ok (m :: _) -> result := Error (Printf.sprintf "thread %d exits holding mutex %d" t m)
        end)
      p.p_threads;
    !result
  end

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization — the corpus-entry persistence format.  One
   compact object per op, tagged by "k"; the reader rejects anything it
   does not recognise so a corrupt corpus file surfaces as an [Error],
   never a crash or a silently different program. *)

let mo_json mo = Jsonx.String (Memorder.to_string mo)

let op_to_json = function
  | Load { loc; mo } ->
    Jsonx.Obj [ ("k", Jsonx.String "load"); ("loc", Jsonx.Int loc); ("mo", mo_json mo) ]
  | Store { loc; mo; value } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "store"); ("loc", Jsonx.Int loc); ("mo", mo_json mo);
        ("value", Jsonx.Int value) ]
  | Add { loc; mo; delta } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "add"); ("loc", Jsonx.Int loc); ("mo", mo_json mo);
        ("delta", Jsonx.Int delta) ]
  | Cas { loc; mo; expected; desired } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "cas"); ("loc", Jsonx.Int loc); ("mo", mo_json mo);
        ("expected", Jsonx.Int expected); ("desired", Jsonx.Int desired) ]
  | Xchg { loc; mo; value } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "xchg"); ("loc", Jsonx.Int loc); ("mo", mo_json mo);
        ("value", Jsonx.Int value) ]
  | Fence mo -> Jsonx.Obj [ ("k", Jsonx.String "fence"); ("mo", mo_json mo) ]
  | Na_read { na } -> Jsonx.Obj [ ("k", Jsonx.String "na_read"); ("na", Jsonx.Int na) ]
  | Na_write { na; value } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "na_write"); ("na", Jsonx.Int na); ("value", Jsonx.Int value) ]
  | Reuse_load { loc } ->
    Jsonx.Obj [ ("k", Jsonx.String "reuse_load"); ("loc", Jsonx.Int loc) ]
  | Reuse_store { loc; value } ->
    Jsonx.Obj
      [ ("k", Jsonx.String "reuse_store"); ("loc", Jsonx.Int loc);
        ("value", Jsonx.Int value) ]
  | Lock { m } -> Jsonx.Obj [ ("k", Jsonx.String "lock"); ("m", Jsonx.Int m) ]
  | Unlock { m } -> Jsonx.Obj [ ("k", Jsonx.String "unlock"); ("m", Jsonx.Int m) ]
  | Yield -> Jsonx.Obj [ ("k", Jsonx.String "yield") ]

let program_to_json p =
  Jsonx.Obj
    [
      ("seed", Jsonx.String (Printf.sprintf "0x%Lx" p.p_seed));
      ("profile", Jsonx.String (profile_name p.p_profile));
      ("atomic_locs", Jsonx.Int p.p_atomic_locs);
      ("na_locs", Jsonx.Int p.p_na_locs);
      ("mutexes", Jsonx.Int p.p_mutexes);
      ( "threads",
        Jsonx.List
          (Array.to_list
             (Array.map
                (fun ops -> Jsonx.List (Array.to_list (Array.map op_to_json ops)))
                p.p_threads)) );
    ]

let op_of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Option.bind (Jsonx.member k j) Jsonx.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "op: missing integer field %S" k)
  in
  let mo_field () =
    match Option.bind (Option.bind (Jsonx.member "mo" j) Jsonx.to_str) Memorder.of_string with
    | Some mo -> Ok mo
    | None -> Error "op: missing or unknown memory order"
  in
  match Option.bind (Jsonx.member "k" j) Jsonx.to_str with
  | None -> Error "op: missing tag"
  | Some tag -> (
    match tag with
    | "load" ->
      let* loc = int_field "loc" in
      let* mo = mo_field () in
      Ok (Load { loc; mo })
    | "store" ->
      let* loc = int_field "loc" in
      let* mo = mo_field () in
      let* value = int_field "value" in
      Ok (Store { loc; mo; value })
    | "add" ->
      let* loc = int_field "loc" in
      let* mo = mo_field () in
      let* delta = int_field "delta" in
      Ok (Add { loc; mo; delta })
    | "cas" ->
      let* loc = int_field "loc" in
      let* mo = mo_field () in
      let* expected = int_field "expected" in
      let* desired = int_field "desired" in
      Ok (Cas { loc; mo; expected; desired })
    | "xchg" ->
      let* loc = int_field "loc" in
      let* mo = mo_field () in
      let* value = int_field "value" in
      Ok (Xchg { loc; mo; value })
    | "fence" ->
      let* mo = mo_field () in
      Ok (Fence mo)
    | "na_read" ->
      let* na = int_field "na" in
      Ok (Na_read { na })
    | "na_write" ->
      let* na = int_field "na" in
      let* value = int_field "value" in
      Ok (Na_write { na; value })
    | "reuse_load" ->
      let* loc = int_field "loc" in
      Ok (Reuse_load { loc })
    | "reuse_store" ->
      let* loc = int_field "loc" in
      let* value = int_field "value" in
      Ok (Reuse_store { loc; value })
    | "lock" ->
      let* m = int_field "m" in
      Ok (Lock { m })
    | "unlock" ->
      let* m = int_field "m" in
      Ok (Unlock { m })
    | "yield" -> Ok Yield
    | t -> Error (Printf.sprintf "op: unknown tag %S" t))

let program_of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Option.bind (Jsonx.member k j) Jsonx.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "program: missing integer field %S" k)
  in
  let* seed =
    match Option.bind (Jsonx.member "seed" j) Jsonx.to_str with
    | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "program: bad seed %S" s))
    | None -> Error "program: missing seed"
  in
  let* profile =
    match
      Option.bind (Option.bind (Jsonx.member "profile" j) Jsonx.to_str) profile_of_string
    with
    | Some p -> Ok p
    | None -> Error "program: missing or unknown profile"
  in
  let* atomic_locs = int_field "atomic_locs" in
  let* na_locs = int_field "na_locs" in
  let* mutexes = int_field "mutexes" in
  let* threads =
    match Option.bind (Jsonx.member "threads" j) Jsonx.to_list with
    | None -> Error "program: missing threads"
    | Some ts ->
      List.fold_left
        (fun acc tj ->
          let* bodies = acc in
          match Jsonx.to_list tj with
          | None -> Error "program: thread body is not a list"
          | Some ops ->
            let* body =
              List.fold_left
                (fun acc oj ->
                  let* ops = acc in
                  let* op = op_of_json oj in
                  Ok (op :: ops))
                (Ok []) ops
            in
            Ok (Array.of_list (List.rev body) :: bodies))
        (Ok []) ts
      |> Result.map (fun bodies -> Array.of_list (List.rev bodies))
  in
  let p =
    {
      p_seed = seed;
      p_profile = profile;
      p_atomic_locs = atomic_locs;
      p_na_locs = na_locs;
      p_mutexes = mutexes;
      p_threads = threads;
    }
  in
  let* () = validate p in
  Ok p
