(** C11lint: a static race and order-hygiene analysis over the
    {!Progir} IR, differentially checked against the dynamic detector.

    The IR's fixed fork-join shape (main spawns every thread, runs its
    own body, joins them all) makes the may-happen-in-parallel relation
    {e exact}: two ops may run concurrently iff they belong to distinct
    threads.  Straight-line bodies make the access sets exact too, and
    the ordered/balanced mutex discipline makes the lockset at every op
    a static fact.  On that base the analysis computes a per-location
    verdict:

    - {!Race_free} — no conflicting pair exists at all (a conflict
      needs distinct threads, at least one write and at least one
      non-atomic access; atomic/atomic pairs never race by definition);
    - {!Protected} — conflicting pairs exist but every one shares a
      mutex, whose critical sections are mutually exclusive and ordered
      by the unlock-to-lock synchronisation edge;
    - {!Potential_race} — some conflicting pair is protected by no
      common mutex, with the witness pair attached.

    {b Soundness contract (the differential headline).}  A program
    whose every location is [Race_free] or [Protected] can never
    produce a dynamic race: the only over-approximation in the access
    sets is counting a failed compare-exchange as a write, which errs
    towards [Potential_race].  lib/fuzz therefore cross-checks every
    campaign — an engine-reported race on a statically race-free
    program is a [Lint_unsound] finding, shrunk like any other engine
    bug.  The converse direction is deliberately conservative:
    [Potential_race] means "lint cannot prove race freedom" (homemade
    CAS-based synchronisation, for example, is beyond the lockset
    analysis).

    Order-hygiene lints ({!hit}) are advisory and never affect
    [res_race_free]: over-strong orders on single-thread locations,
    relaxed publication of non-atomic data, redundant adjacent fences,
    and seqlock-style double reads missing the fences the versioned-read
    study calls for. *)

(** Sorted mutex indices held at an access. *)
type lockset = int list

type access = {
  ac_thread : int;
  ac_op : int;  (** index into the thread's body *)
  ac_write : bool;
  ac_atomic : bool;  (** false = non-atomic access class *)
  ac_mo : Memorder.t;  (** [Relaxed] for non-atomic accesses *)
  ac_lockset : lockset;
}

(** A concrete conflicting pair with no common mutex, in (thread, op)
    scan order — deterministic for a given program. *)
type witness = { w_first : access; w_second : access }

type verdict = Race_free | Protected of lockset | Potential_race of witness

(** One order-hygiene finding. *)
type hit = { h_rule : string; h_thread : int; h_op : int; h_detail : string }

(** The stable rule-name universe ("overstrong-order",
    "relaxed-publication", "redundant-fence", "seqlock-missing-fence"). *)
val rule_names : string list

type result = {
  res_target : string;  (** display label ("" when none was given) *)
  res_ops : int;
  res_verdicts : (string * verdict) list;
      (** per location: ["a0" .. ] then ["n0" .. ], declaration order *)
  res_hits : hit list;
  res_race_free : bool;
      (** no location is [Potential_race] — the soundness-bearing bit *)
}

(** Analyze one program.  Pure: byte-identical output for the same
    input, no RNG, no engine. *)
val analyze : ?label:string -> Progir.program -> result

(** [res_race_free] of {!analyze} — the bit the fuzzer's differential
    check and generation prioritizer read. *)
val statically_race_free : Progir.program -> bool

val race_potential : Progir.program -> bool

(** No potential race and no lint hits: [c11test lint] exit 0. *)
val clean : result -> bool

(** {1 The c11lint-v1 artifact} *)

val schema : string

val result_to_json : index:int -> result -> Jsonx.t

(** Header record plus one [target] record per result, in index order. *)
val campaign_to_ndjson : (int * result) list -> Jsonx.t list

(** Parse a c11lint-v1 artifact back (the read side of
    [c11test report]); rejects records of other schemas, malformed
    records, and a target count disagreeing with the header. *)
val campaign_of_ndjson :
  Jsonx.t list -> ((int * result) list, string) Stdlib.result

val pp_verdict : Format.formatter -> verdict -> unit
val pp_result : Format.formatter -> result -> unit
