(** The straight-line concurrent-program IR shared by the fuzzer
    (lib/fuzz, which generates, executes and shrinks it) and the static
    analyzer (lib/lint, which reasons about it without running it).

    A program is a fixed fork-join shape: main spawns threads
    [1 .. n-1], runs its own body [p_threads.(0)], then joins them all.
    Bodies are straight-line — no control flow — so the set of accesses
    each thread performs is exact, which is what makes the static
    verdicts of {!Lint} sound rather than heuristic.

    {!Fuzz} re-exports every type here with type equations; existing
    code pattern-matching [Fuzz.Load] etc. is unaffected by the
    hoist. *)

type profile =
  | Mixed  (** every op kind, relaxed-leaning memory orders *)
  | Sc_heavy  (** bias memory orders towards [Seq_cst] *)
  | Rmw_chain  (** bias towards RMWs contending on one location *)
  | Mixed_atomicity
      (** include memory-reuse accesses: raw non-atomic loads/stores to
          atomic locations (Section 7.2 of the paper) *)

val profile_name : profile -> string
val profile_of_string : string -> profile option
val all_profiles : profile list

(** One operation of a thread body.  [loc] indexes the program's atomic
    locations, [na] its plain locations, [m] its mutexes. *)
type op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }  (** raw non-atomic load of an atomic *)
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

(** A program.  [p_threads.(0)] is the main thread's own body; main
    first spawns threads [1 .. n-1], then runs its body, then joins
    them all. *)
type program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

(** Total ops across all thread bodies. *)
val op_count : program -> int

(** Structural well-formedness: location/mutex indices in range, lock
    discipline respected on every thread (balanced, properly nested,
    ordered). *)
val validate : program -> (unit, string) result
