(** The straight-line concurrent-program IR shared by the fuzzer
    (lib/fuzz, which generates, executes and shrinks it) and the static
    analyzer (lib/lint, which reasons about it without running it).

    A program is a fixed fork-join shape: main spawns threads
    [1 .. n-1], runs its own body [p_threads.(0)], then joins them all.
    Bodies are straight-line — no control flow — so the set of accesses
    each thread performs is exact, which is what makes the static
    verdicts of {!Lint} sound rather than heuristic.

    {!Fuzz} re-exports every type here with type equations; existing
    code pattern-matching [Fuzz.Load] etc. is unaffected by the
    hoist. *)

type profile =
  | Mixed  (** every op kind, relaxed-leaning memory orders *)
  | Sc_heavy  (** bias memory orders towards [Seq_cst] *)
  | Rmw_chain  (** bias towards RMWs contending on one location *)
  | Mixed_atomicity
      (** include memory-reuse accesses: raw non-atomic loads/stores to
          atomic locations (Section 7.2 of the paper) *)

val profile_name : profile -> string
val profile_of_string : string -> profile option
val all_profiles : profile list

(** One operation of a thread body.  [loc] indexes the program's atomic
    locations, [na] its plain locations, [m] its mutexes. *)
type op =
  | Load of { loc : int; mo : Memorder.t }
  | Store of { loc : int; mo : Memorder.t; value : int }
  | Add of { loc : int; mo : Memorder.t; delta : int }
  | Cas of { loc : int; mo : Memorder.t; expected : int; desired : int }
  | Xchg of { loc : int; mo : Memorder.t; value : int }
  | Fence of Memorder.t
  | Na_read of { na : int }
  | Na_write of { na : int; value : int }
  | Reuse_load of { loc : int }  (** raw non-atomic load of an atomic *)
  | Reuse_store of { loc : int; value : int }
  | Lock of { m : int }
  | Unlock of { m : int }
  | Yield

(** A program.  [p_threads.(0)] is the main thread's own body; main
    first spawns threads [1 .. n-1], then runs its body, then joins
    them all. *)
type program = {
  p_seed : int64;
  p_profile : profile;
  p_atomic_locs : int;
  p_na_locs : int;
  p_mutexes : int;
  p_threads : op array array;
}

(** Total ops across all thread bodies. *)
val op_count : program -> int

(** Structural well-formedness: location/mutex indices in range, lock
    discipline respected on every thread (balanced, properly nested,
    ordered). *)
val validate : program -> (unit, string) result

(** {1 Op-unit editing machinery}

    The shrinker's (and corpus mutator's) shared notion of an editable
    unit: a single op, or a lock and its matching unlock (removing either
    alone would break the discipline {!validate} checks). *)

(** Map from each [Lock] index to its matching [Unlock] index and back,
    for one thread body. *)
val lock_pairs : op array -> (int, int) Hashtbl.t

(** Deletion units of one thread body as index lists (op [i] alone, or a
    lock/unlock pair), ascending by first index. *)
val units_of : op array -> int list list

(** [remove_indices ops idxs] drops the ops at [idxs], preserving
    order. *)
val remove_indices : op array -> int list -> op array

(** Replace thread [t]'s body. *)
val with_thread : program -> int -> op array -> program

(** Delete thread [t] ([t = 0] empties the main body instead — the
    fork-join shape always keeps a main thread). *)
val without_thread : program -> int -> program

(** {1 Serialization}

    The corpus-entry persistence format: a program as one JSON object.
    [program_of_json] validates structurally and via {!validate}; any
    unknown tag, missing field or discipline violation is an [Error] —
    corrupt corpus files surface as errors, never crashes. *)

val program_to_json : program -> Jsonx.t
val program_of_json : Jsonx.t -> (program, string) result
