(* C11lint — static race/order analysis over the Progir IR.  See
   lint.mli for the soundness contract.  Everything here is a pure
   function of the program: no RNG, no wall clock, no engine, so a
   verdict is trivially byte-identical across any sharding. *)

open Progir

type lockset = int list

type access = {
  ac_thread : int;
  ac_op : int;
  ac_write : bool;
  ac_atomic : bool;
  ac_mo : Memorder.t;
  ac_lockset : lockset;
}

type witness = { w_first : access; w_second : access }

type verdict = Race_free | Protected of lockset | Potential_race of witness

type hit = { h_rule : string; h_thread : int; h_op : int; h_detail : string }

type result = {
  res_target : string;
  res_ops : int;
  res_verdicts : (string * verdict) list;
  res_hits : hit list;
  res_race_free : bool;
}

let rule_names =
  [
    "overstrong-order";
    "relaxed-publication";
    "redundant-fence";
    "seqlock-missing-fence";
  ]

(* ------------------------------------------------------------------ *)
(* Locksets.  The ordered, balanced mutex discipline (checked by
   Progir.validate) means the held set at every op is a static fact of
   the thread body, not of any schedule. *)

let locksets_of ops =
  let held = ref [] in
  Array.map
    (fun op ->
      let before = List.sort compare !held in
      (match op with
      | Lock { m } -> held := m :: !held
      | Unlock { m } -> held := List.filter (fun x -> x <> m) !held
      | _ -> ());
      (* the lock itself is not protected by the mutex it acquires; every
         other op sees the set held on entry *)
      match op with
      | Lock { m } -> List.sort compare (m :: before)
      | _ -> before)
    ops

(* ------------------------------------------------------------------ *)
(* Access collection.  Straight-line bodies make this exact: every op
   always executes.  The one over-approximation is Cas, counted as a
   write even though a failed compare-exchange only reads — safe, since
   lint may only err towards Potential_race, never towards Race_free. *)

let accesses p =
  let atomic = Array.make p.p_atomic_locs [] in
  let plain = Array.make p.p_na_locs [] in
  Array.iteri
    (fun t ops ->
      let locks = locksets_of ops in
      Array.iteri
        (fun i op ->
          let add arr loc ~write ~atomic:cls ~mo =
            arr.(loc) <-
              {
                ac_thread = t;
                ac_op = i;
                ac_write = write;
                ac_atomic = cls;
                ac_mo = mo;
                ac_lockset = locks.(i);
              }
              :: arr.(loc)
          in
          match op with
          | Load { loc; mo } -> add atomic loc ~write:false ~atomic:true ~mo
          | Store { loc; mo; _ } -> add atomic loc ~write:true ~atomic:true ~mo
          | Add { loc; mo; _ } | Cas { loc; mo; _ } | Xchg { loc; mo; _ } ->
            add atomic loc ~write:true ~atomic:true ~mo
          | Reuse_load { loc } ->
            add atomic loc ~write:false ~atomic:false ~mo:Memorder.Relaxed
          | Reuse_store { loc; _ } ->
            add atomic loc ~write:true ~atomic:false ~mo:Memorder.Relaxed
          | Na_read { na } ->
            add plain na ~write:false ~atomic:false ~mo:Memorder.Relaxed
          | Na_write { na; _ } ->
            add plain na ~write:true ~atomic:false ~mo:Memorder.Relaxed
          | Fence _ | Lock _ | Unlock _ | Yield -> ())
        ops)
    p.p_threads;
  let order l =
    List.sort (fun a b -> compare (a.ac_thread, a.ac_op) (b.ac_thread, b.ac_op)) l
  in
  (Array.map order atomic, Array.map order plain)

(* ------------------------------------------------------------------ *)
(* Verdicts.  The fork-join shape gives an exact may-happen-in-parallel
   relation: main spawns every thread before running its own body and
   joins them all after it, so any two ops on distinct threads MHP and
   same-thread ops never do.  A pair conflicts when it is MHP, involves
   a write and has a non-atomic side (atomic/atomic pairs never race by
   definition). *)

let inter a b = List.filter (fun x -> List.mem x b) a

let conflicting_pairs accs =
  let rec walk acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b ->
            if
              a.ac_thread <> b.ac_thread
              && (a.ac_write || b.ac_write)
              && not (a.ac_atomic && b.ac_atomic)
            then (a, b) :: acc
            else acc)
          acc rest
      in
      walk acc rest
  in
  walk [] accs

let verdict_of accs =
  match conflicting_pairs accs with
  | [] -> Race_free
  | pairs -> (
    match
      List.find_opt
        (fun (a, b) -> inter a.ac_lockset b.ac_lockset = [])
        pairs
    with
    | Some (a, b) -> Potential_race { w_first = a; w_second = b }
    | None ->
      (* every conflicting pair shares a mutex; report the union of the
         protecting intersections *)
      let protecting =
        List.concat_map (fun (a, b) -> inter a.ac_lockset b.ac_lockset) pairs
        |> List.sort_uniq compare
      in
      Protected protecting)

(* ------------------------------------------------------------------ *)
(* Order-hygiene rules.  Advisory: a hit never affects [res_race_free]
   (the soundness-bearing bit); it flags order usage that is stronger or
   weaker than the access pattern calls for. *)

(* Orders stronger than relaxed on a location only one thread ever
   touches buy nothing: no other-thread access exists to synchronise
   with through that location.  (A seq_cst op still joins the global SC
   order, so the hit is hygiene, not an equivalence claim.) *)
let overstrong_hits p (atomic : access list array) =
  let hits = ref [] in
  for loc = 0 to p.p_atomic_locs - 1 do
    let accs = atomic.(loc) in
    match List.sort_uniq compare (List.map (fun a -> a.ac_thread) accs) with
    | [ only ] ->
      List.iter
        (fun a ->
          if a.ac_atomic && not (Memorder.equal a.ac_mo Memorder.Relaxed) then
            hits :=
              {
                h_rule = "overstrong-order";
                h_thread = a.ac_thread;
                h_op = a.ac_op;
                h_detail =
                  Printf.sprintf "%s %s of a%d, but only thread %d touches a%d"
                    (Memorder.to_string a.ac_mo)
                    (if a.ac_write then "write" else "load")
                    loc only loc;
              }
              :: !hits)
        accs
    | _ -> ()
  done;
  List.rev !hits

(* Two fences with nothing but yields between them: the weaker (under
   the strength lattice) is redundant. *)
let redundant_fence_hits p =
  let hits = ref [] in
  Array.iteri
    (fun t ops ->
      let prev = ref None in
      Array.iteri
        (fun i op ->
          match op with
          | Fence mo -> (
            (match !prev with
            | Some (pi, pmo) ->
              if Memorder.stronger_than pmo mo then
                hits :=
                  {
                    h_rule = "redundant-fence";
                    h_thread = t;
                    h_op = i;
                    h_detail =
                      Printf.sprintf
                        "%s fence subsumed by the adjacent %s fence at op %d"
                        (Memorder.to_string mo) (Memorder.to_string pmo) pi;
                  }
                  :: !hits
              else if Memorder.stronger_than mo pmo then
                hits :=
                  {
                    h_rule = "redundant-fence";
                    h_thread = t;
                    h_op = pi;
                    h_detail =
                      Printf.sprintf
                        "%s fence subsumed by the adjacent %s fence at op %d"
                        (Memorder.to_string pmo) (Memorder.to_string mo) i;
                  }
                  :: !hits
            | None -> ());
            prev := Some (i, mo))
          | Yield -> ()
          | _ -> prev := None)
        ops)
    p.p_threads;
  List.rev !hits

(* Message-passing skeleton around a potential race: a non-atomic write
   later published through an atomic store whose value the racing reader
   checks through an atomic load of the same location.  If such a
   channel exists but no channel carries release/acquire (orders or
   fences), the publication is relaxed — the classic bug of Section 8.1
   (the rwlock's relaxed unlock exchange is exactly this shape). *)
let publication_hits p (verdicts : (string * verdict) list) =
  let ops_of t = p.p_threads.(t) in
  let is_atomic_write = function
    | Store _ | Add _ | Cas _ | Xchg _ -> true
    | _ -> false
  in
  let is_atomic_read = function
    | Load _ | Add _ | Cas _ | Xchg _ -> true
    | _ -> false
  in
  let loc_of = function
    | Store { loc; _ } | Add { loc; _ } | Cas { loc; _ } | Xchg { loc; _ }
    | Load { loc; _ } ->
      Some loc
    | _ -> None
  in
  let mo_of = function
    | Store { mo; _ } | Add { mo; _ } | Cas { mo; _ } | Xchg { mo; _ }
    | Load { mo; _ } ->
      mo
    | _ -> Memorder.Relaxed
  in
  let fence_between ~pred ops i j =
    let ok = ref false in
    for k = i + 1 to j - 1 do
      match ops.(k) with Fence mo when pred mo -> ok := true | _ -> ()
    done;
    !ok
  in
  let hit_for (w : access) (r : access) =
    let wops = ops_of w.ac_thread and rops = ops_of r.ac_thread in
    (* every publication channel: atomic write after the racy write in
       the writer, atomic read of the same location before the racy
       access in the reader *)
    let channels = ref [] in
    Array.iteri
      (fun si sop ->
        if si > w.ac_op && is_atomic_write sop then
          match loc_of sop with
          | Some f ->
            Array.iteri
              (fun li lop ->
                if li < r.ac_op && is_atomic_read lop && loc_of lop = Some f
                then channels := (f, si, sop, li, lop) :: !channels)
              rops
          | None -> ())
      wops;
    let channels = List.rev !channels in
    let strong (_, si, sop, li, lop) =
      let rel =
        Memorder.is_release (mo_of sop)
        || fence_between ~pred:Memorder.is_release wops w.ac_op si
      in
      let acq =
        Memorder.is_acquire (mo_of lop)
        || fence_between ~pred:Memorder.is_acquire rops li r.ac_op
      in
      rel && acq
    in
    match channels with
    | [] -> None
    | _ when List.exists strong channels -> None
    | (f, si, sop, li, lop) :: _ ->
      let missing =
        let rel =
          Memorder.is_release (mo_of sop)
          || fence_between ~pred:Memorder.is_release wops w.ac_op si
        in
        let acq =
          Memorder.is_acquire (mo_of lop)
          || fence_between ~pred:Memorder.is_acquire rops li r.ac_op
        in
        match (rel, acq) with
        | false, false -> "no release on the store side, no acquire on the load side"
        | false, true -> "no release order or fence on the store side"
        | true, false -> "no acquire order or fence on the load side"
        | true, true -> assert false
      in
      Some
        {
          h_rule = "relaxed-publication";
          h_thread = w.ac_thread;
          h_op = si;
          h_detail =
            Printf.sprintf
              "non-atomic write (thread %d op %d) published through a%d \
               (store op %d, load at thread %d op %d): %s"
              w.ac_thread w.ac_op f si r.ac_thread li missing;
        }
  in
  List.filter_map
    (fun (_, v) ->
      match v with
      | Potential_race { w_first; w_second } -> (
        (* orient the witness: a non-atomic write is the published side *)
        let pick w r = if w.ac_write && not w.ac_atomic then hit_for w r else None in
        match pick w_first w_second with
        | Some h -> Some h
        | None -> pick w_second w_first)
      | _ -> None)
    verdicts

(* Seqlock-style versioned read (the SNIPPETS versioned-read study): a
   double read of the same atomic location validating data reads between
   the two.  The working C11 mapping needs an acquire (order or fence)
   between the first version read and the data, and a fence between the
   data and the second version read; flag double-reads missing either. *)
let seqlock_hits p =
  let hits = ref [] in
  Array.iteri
    (fun t ops ->
      let n = Array.length ops in
      for i1 = 0 to n - 1 do
        match ops.(i1) with
        | Load { loc = l; mo = mo1 } -> (
          (* the next load of [l] with no same-thread write to [l] between *)
          let i2 = ref (-1) and k = ref (i1 + 1) and blocked = ref false in
          while !i2 < 0 && (not !blocked) && !k < n do
            (match ops.(!k) with
            | Load { loc; _ } when loc = l -> i2 := !k
            | Store { loc; _ }
            | Add { loc; _ }
            | Cas { loc; _ }
            | Xchg { loc; _ }
            | Reuse_store { loc; _ }
              when loc = l ->
              blocked := true
            | _ -> ());
            incr k
          done;
          if !i2 > 0 then begin
            let i2 = !i2 in
            let data =
              List.filter
                (fun k ->
                  match ops.(k) with
                  | Na_read _ | Reuse_load _ -> true
                  | Load { loc; _ } -> loc <> l
                  | _ -> false)
                (List.init (i2 - i1 - 1) (fun d -> i1 + 1 + d))
            in
            match data with
            | [] -> ()
            | first_data :: _ ->
              let last_data = List.nth data (List.length data - 1) in
              let fence_in ~pred a b =
                let ok = ref false in
                for k = a + 1 to b - 1 do
                  match ops.(k) with
                  | Fence mo when pred mo -> ok := true
                  | _ -> ()
                done;
                !ok
              in
              let acquire_ok =
                Memorder.is_acquire mo1
                || fence_in ~pred:Memorder.is_acquire i1 first_data
              in
              let validate_ok = fence_in ~pred:(fun _ -> true) last_data i2 in
              if not (acquire_ok && validate_ok) then
                hits :=
                  {
                    h_rule = "seqlock-missing-fence";
                    h_thread = t;
                    h_op = i1;
                    h_detail =
                      Printf.sprintf
                        "double read of a%d (ops %d and %d) validates reads \
                         between them but %s"
                        l i1 i2
                        (match (acquire_ok, validate_ok) with
                        | false, false ->
                          "has neither an acquire after the first read nor a \
                           fence before the second"
                        | false, true -> "lacks an acquire after the first read"
                        | true, false -> "lacks a fence before the second read"
                        | true, true -> assert false);
                  }
                  :: !hits
          end)
        | _ -> ()
      done)
    p.p_threads;
  List.rev !hits

(* ------------------------------------------------------------------ *)
(* The analysis entry point. *)

let analyze ?(label = "") p =
  let atomic, plain = accesses p in
  let verdicts =
    List.init p.p_atomic_locs (fun i ->
        (Printf.sprintf "a%d" i, verdict_of atomic.(i)))
    @ List.init p.p_na_locs (fun i ->
          (Printf.sprintf "n%d" i, verdict_of plain.(i)))
  in
  let hits =
    overstrong_hits p atomic
    @ publication_hits p verdicts
    @ redundant_fence_hits p
    @ seqlock_hits p
  in
  let race_free =
    List.for_all
      (fun (_, v) -> match v with Potential_race _ -> false | _ -> true)
      verdicts
  in
  {
    res_target = label;
    res_ops = op_count p;
    res_verdicts = verdicts;
    res_hits = hits;
    res_race_free = race_free;
  }

let statically_race_free p = (analyze p).res_race_free
let race_potential p = not (analyze p).res_race_free
let clean r = r.res_race_free && r.res_hits = []

(* ------------------------------------------------------------------ *)
(* Serialisation: the c11lint-v1 NDJSON artifact. *)

let schema = "c11lint-v1"

let access_to_json a =
  Jsonx.Obj
    [
      ("thread", Jsonx.Int a.ac_thread);
      ("op", Jsonx.Int a.ac_op);
      ("write", Jsonx.Bool a.ac_write);
      ("atomic", Jsonx.Bool a.ac_atomic);
      ("mo", Jsonx.String (Memorder.to_string a.ac_mo));
      ("locks", Jsonx.List (List.map (fun m -> Jsonx.Int m) a.ac_lockset));
    ]

let verdict_to_json (loc, v) =
  let base = [ ("loc", Jsonx.String loc) ] in
  Jsonx.Obj
    (base
    @
    match v with
    | Race_free -> [ ("verdict", Jsonx.String "race_free") ]
    | Protected ls ->
      [
        ("verdict", Jsonx.String "protected");
        ("mutexes", Jsonx.List (List.map (fun m -> Jsonx.Int m) ls));
      ]
    | Potential_race w ->
      [
        ("verdict", Jsonx.String "potential_race");
        ("first", access_to_json w.w_first);
        ("second", access_to_json w.w_second);
      ])

let hit_to_json h =
  Jsonx.Obj
    [
      ("rule", Jsonx.String h.h_rule);
      ("thread", Jsonx.Int h.h_thread);
      ("op", Jsonx.Int h.h_op);
      ("detail", Jsonx.String h.h_detail);
    ]

let result_to_json ~index r =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("kind", Jsonx.String "target");
      ("index", Jsonx.Int index);
      ("target", Jsonx.String r.res_target);
      ("ops", Jsonx.Int r.res_ops);
      ("race_free", Jsonx.Bool r.res_race_free);
      ("verdicts", Jsonx.List (List.map verdict_to_json r.res_verdicts));
      ("lints", Jsonx.List (List.map hit_to_json r.res_hits));
    ]

let campaign_to_ndjson results =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("kind", Jsonx.String "campaign");
      ("targets", Jsonx.Int (List.length results));
    ]
  :: List.map (fun (i, r) -> result_to_json ~index:i r) results

(* Parse side — the read half of [c11test report]. *)

let member_str j k = Option.bind (Jsonx.member k j) Jsonx.to_str
let member_int j k = Option.bind (Jsonx.member k j) Jsonx.to_int
let member_bool j k =
  match Jsonx.member k j with Some (Jsonx.Bool b) -> Some b | _ -> None

let access_of_json j =
  match
    ( member_int j "thread",
      member_int j "op",
      member_bool j "write",
      member_bool j "atomic",
      Option.bind (member_str j "mo") Memorder.of_string )
  with
  | Some t, Some o, Some w, Some a, Some mo ->
    let locks =
      match Jsonx.member "locks" j with
      | Some (Jsonx.List l) -> List.filter_map Jsonx.to_int l
      | _ -> []
    in
    Ok
      {
        ac_thread = t;
        ac_op = o;
        ac_write = w;
        ac_atomic = a;
        ac_mo = mo;
        ac_lockset = locks;
      }
  | _ -> Error "malformed access"

let verdict_of_json j =
  match (member_str j "loc", member_str j "verdict") with
  | Some loc, Some "race_free" -> Ok (loc, Race_free)
  | Some loc, Some "protected" ->
    let ls =
      match Jsonx.member "mutexes" j with
      | Some (Jsonx.List l) -> List.filter_map Jsonx.to_int l
      | _ -> []
    in
    Ok (loc, Protected ls)
  | Some loc, Some "potential_race" -> (
    match
      ( Option.map access_of_json (Jsonx.member "first" j),
        Option.map access_of_json (Jsonx.member "second" j) )
    with
    | Some (Ok a), Some (Ok b) ->
      Ok (loc, Potential_race { w_first = a; w_second = b })
    | _ -> Error "malformed witness")
  | _ -> Error "malformed verdict"

let hit_of_json j =
  match
    ( member_str j "rule",
      member_int j "thread",
      member_int j "op",
      member_str j "detail" )
  with
  | Some r, Some t, Some o, Some d ->
    Ok { h_rule = r; h_thread = t; h_op = o; h_detail = d }
  | _ -> Error "malformed lint hit"

let collect f l =
  List.fold_left
    (fun acc x ->
      match (acc, f x) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok xs, Ok v -> Ok (v :: xs))
    (Ok []) l
  |> Result.map List.rev

let result_of_json j =
  match
    ( member_int j "index",
      member_str j "target",
      member_int j "ops",
      member_bool j "race_free" )
  with
  | Some index, Some target, Some ops, Some rf -> (
    let verdicts =
      match Jsonx.member "verdicts" j with
      | Some (Jsonx.List l) -> collect verdict_of_json l
      | _ -> Error "missing verdicts"
    in
    let hits =
      match Jsonx.member "lints" j with
      | Some (Jsonx.List l) -> collect hit_of_json l
      | _ -> Error "missing lints"
    in
    match (verdicts, hits) with
    | Ok vs, Ok hs ->
      Ok
        ( index,
          {
            res_target = target;
            res_ops = ops;
            res_verdicts = vs;
            res_hits = hs;
            res_race_free = rf;
          } )
    | Error e, _ | _, Error e -> Error e)
  | _ -> Error "malformed target record"

let campaign_of_ndjson docs =
  let targets = ref [] in
  let declared = ref None in
  let err = ref None in
  List.iter
    (fun j ->
      if !err = None then
        match member_str j "schema" with
        | Some s when s = schema -> (
          match member_str j "kind" with
          | Some "campaign" -> declared := member_int j "targets"
          | Some "target" -> (
            match result_of_json j with
            | Ok r -> targets := r :: !targets
            | Error e -> err := Some e)
          | _ -> err := Some "unknown c11lint-v1 record kind")
        | _ -> err := Some "record is not c11lint-v1")
    docs;
  match !err with
  | Some e -> Error e
  | None ->
    let results =
      List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !targets)
    in
    (match !declared with
    | Some n when n <> List.length results ->
      Error
        (Printf.sprintf "campaign record declares %d targets, found %d" n
           (List.length results))
    | _ -> Ok results)

(* ------------------------------------------------------------------ *)
(* Pretty-printing. *)

let pp_verdict fmt = function
  | Race_free -> Format.pp_print_string fmt "race-free"
  | Protected ls ->
    Format.fprintf fmt "protected by {%s}"
      (String.concat "," (List.map (Printf.sprintf "m%d") ls))
  | Potential_race { w_first = a; w_second = b } ->
    Format.fprintf fmt "POTENTIAL RACE: thread %d op %d (%s) / thread %d op %d (%s)"
      a.ac_thread a.ac_op
      (if a.ac_write then "write" else "read")
      b.ac_thread b.ac_op
      (if b.ac_write then "write" else "read")

let pp_result fmt r =
  Format.fprintf fmt "@[<v 2>%s: %s@ "
    (if r.res_target = "" then "<program>" else r.res_target)
    (if clean r then "clean"
     else if r.res_race_free then "race-free, lint hits"
     else "race-potential");
  List.iter
    (fun (loc, v) -> Format.fprintf fmt "%-4s %a@ " loc pp_verdict v)
    r.res_verdicts;
  List.iter
    (fun h ->
      Format.fprintf fmt "lint %s (thread %d op %d): %s@ " h.h_rule h.h_thread
        h.h_op h.h_detail)
    r.res_hits;
  Format.fprintf fmt "@]"
