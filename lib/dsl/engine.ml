type volatile_mode =
  | Volatile_atomic of Memorder.t
  | Volatile_nonatomic

type config = {
  mode : Execution.mode;
  sched : Schedule.t;
  volatile_mode : volatile_mode;
  prune : Pruner.policy;
  max_steps : int;
  seed : int64;
  trace_depth : int;
  certify : bool;
  cert_stream : bool;
      (** certify incrementally (streaming window + prefix retirement)
          instead of the post-hoc full-trace pass; on by default, only
          meaningful with [certify] *)
  mutation : Execution.mutation option;
  coverage : bool;
}

let default_config =
  {
    mode = Execution.Full_c11;
    sched = Schedule.Controlled_random { batch_stores = true };
    volatile_mode = Volatile_atomic Memorder.Relaxed;
    prune = Pruner.No_prune;
    max_steps = 2_000_000;
    seed = 1L;
    trace_depth = 0;
    certify = false;
    cert_stream = true;
    mutation = None;
    coverage = false;
  }

type outcome = {
  races : Race.report list;
  assertion_failures : string list;
  uncaught_exceptions : string list;
  deadlock : bool;
  step_limit_hit : bool;
  steps : int;
  atomic_ops : int;
  na_ops : int;
  threads_created : int;
  max_graph_size : int;
  final_footprint : int;
  pruned_stores : int;
  trace : string list;
  certificate : Check.verdict option;
      (** [Some _] iff the execution ran with [config.certify] *)
  certified_ops : int;
      (** actions consumed by the streaming certifier (0 post-hoc/off) *)
  retired_prefix_ops : int;
      (** actions whose certification window storage was retired *)
  shape : Cov.shape option;
      (** [Some _] iff the execution ran with [config.coverage] *)
}

let buggy o =
  o.races <> [] || o.assertion_failures <> []
  || match o.certificate with Some (Check.Rejected _) -> true | _ -> false

exception Assertion_violation of string

let assert_that cond msg = if not cond then raise (Assertion_violation msg)

(* ------------------------------------------------------------------ *)

type pending =
  | App_op of Op.t  (** a visible operation requested by the program *)
  | Relock of int  (** woken from a condvar; must re-acquire the mutex *)
  | Sleeping of { cond : int; mutex : int }  (** waiting on a condvar *)

type thread_status =
  | Not_started of (unit -> unit)
  | Pending of pending * Fiber.cont
  | Finished

type thread = {
  tid : int;
  mutable status : thread_status;
  mutable final_cv : Clockvec.t option;
}

type mutex = {
  mutable locked_by : int option;
  mutable m_release_cv : Clockvec.t;
  mutable m_unlockers : (int * int) list;
      (** certification only: tid -> latest unlock seq.  [m_release_cv]
          accumulates every unlocker's snapshot, so a lock hand-off is one
          sync edge per unlocking thread (per-thread snapshots are
          monotone — the latest covers the rest). *)
}

type condvar = { mutable waiters : int list }

type state = {
  config : config;
  exec : Execution.t;
  rng : Rng.t;
  race : Race.t;
  mutable threads : thread array;
  mutable nthreads : int;
  mutable mutexes : mutex array;
  mutable nmutexes : int;
  mutable condvars : condvar array;
  mutable ncondvars : int;
  sched_state : Schedule.state;
  mutable enabled_buf : int array;
      (* reusable per-step buffer of enabled tids, ascending *)
  mutable steps : int;
  mutable assertion_failures : string list;
  mutable uncaught : string list;
  mutable deadlock : bool;
  mutable step_limit_hit : bool;
}

let grow_push arr n v =
  let len = Array.length arr in
  if n < len then begin
    arr.(n) <- v;
    arr
  end
  else begin
    let arr' = Array.make (max 4 (2 * len)) v in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

let add_thread st body ~parent =
  let tid = Execution.new_thread st.exec ~parent in
  let th = { tid; status = Not_started body; final_cv = None } in
  st.threads <- grow_push st.threads st.nthreads th;
  st.nthreads <- st.nthreads + 1;
  assert (tid = st.nthreads - 1);
  tid

let add_mutex st =
  let m =
    { locked_by = None; m_release_cv = Clockvec.bottom (); m_unlockers = [] }
  in
  st.mutexes <- grow_push st.mutexes st.nmutexes m;
  st.nmutexes <- st.nmutexes + 1;
  st.nmutexes - 1

let add_condvar st =
  let c = { waiters = [] } in
  st.condvars <- grow_push st.condvars st.ncondvars c;
  st.ncondvars <- st.ncondvars + 1;
  st.ncondvars - 1

let mutex st m =
  if m < 0 || m >= st.nmutexes then
    raise (Execution.Model_error "unknown mutex");
  st.mutexes.(m)

let condvar st c =
  if c < 0 || c >= st.ncondvars then
    raise (Execution.Model_error "unknown condition variable");
  st.condvars.(c)

(* ------------------------------------------------------------------ *)
(* Enabledness: a thread is disabled while it waits on a held mutex, an
   unfinished thread or a condition variable (Section 3). *)

let op_enabled st = function
  | App_op (Op.Mutex_lock m) -> (mutex st m).locked_by = None
  | App_op (Op.Join tid) -> (
    match st.threads.(tid).status with Finished -> true | _ -> false)
  | Relock m -> (mutex st m).locked_by = None
  | Sleeping _ -> false
  | App_op _ -> true

let thread_enabled st th =
  match th.status with
  | Not_started _ -> true
  | Pending (p, _) -> op_enabled st p
  | Finished -> false

(* Fill [st.enabled_buf] with the enabled tids in ascending order and
   return how many there are — ran on every scheduling decision, so no
   per-step list. *)
let collect_enabled st =
  if Array.length st.enabled_buf < st.nthreads then
    st.enabled_buf <- Array.make (max 8 (2 * st.nthreads)) 0;
  let buf = st.enabled_buf in
  let n = ref 0 in
  for i = 0 to st.nthreads - 1 do
    if thread_enabled st st.threads.(i) then begin
      buf.(!n) <- i;
      incr n
    end
  done;
  !n

let pending_is_rlx_store st tid =
  match st.threads.(tid).status with
  | Pending (App_op op, _) -> Op.is_rlx_or_rel_store op
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Volatile access rewriting (Section 7.2): C11Tester promotes volatiles to
   atomics with a configurable order; the baseline tools leave them as
   plain racy accesses. *)

let volatile_load_mo st =
  match st.config.volatile_mode with
  | Volatile_atomic Memorder.Acq_rel -> Some Memorder.Acquire
  | Volatile_atomic mo -> Some mo
  | Volatile_nonatomic -> None

let volatile_store_mo st =
  match st.config.volatile_mode with
  | Volatile_atomic Memorder.Acq_rel -> Some Memorder.Release
  | Volatile_atomic mo -> Some mo
  | Volatile_nonatomic -> None

let wake st tid =
  let th = st.threads.(tid) in
  match th.status with
  | Pending (Sleeping { mutex = m; _ }, k) -> th.status <- Pending (Relock m, k)
  | Not_started _ | Pending ((App_op _ | Relock _), _) | Finished -> ()

(* ------------------------------------------------------------------ *)
(* Interpreting one visible operation. *)

type op_result =
  | Value of int  (** resume the fiber with this result *)
  | Sleep of { cond : int; mutex : int }  (** park the fiber on a condvar *)

(* Certification: the acquire half of a lock corresponds to one sync edge
   from every thread whose unlock snapshot is folded into [m_release_cv]. *)
let cert_lock_edges st tid mu =
  if st.exec.Execution.cert_on then begin
    let to_seq = Execution.thread_now st.exec ~tid in
    List.iter
      (fun (utid, useq) ->
        Execution.cert_sync_edge st.exec ~from_tid:utid ~from_seq:useq
          ~to_tid:tid ~to_seq)
      mu.m_unlockers
  end

let lock_mutex st tid mu =
  assert (mu.locked_by = None);
  Execution.tick_sync st.exec ~tid;
  Execution.acquire_cv st.exec ~tid mu.m_release_cv;
  cert_lock_edges st tid mu;
  mu.locked_by <- Some tid

let unlock_mutex st tid mu =
  Execution.tick_sync st.exec ~tid;
  ignore
    (Clockvec.merge mu.m_release_cv (Execution.release_snapshot st.exec ~tid));
  if st.exec.Execution.cert_on then begin
    (* a newer unlock by the same thread supersedes the old snapshot: no
       future lock edge can reference it (streaming frees it eagerly) *)
    (match List.assoc_opt tid mu.m_unlockers with
    | Some old_seq -> Execution.cert_release_drop st.exec ~seq:old_seq
    | None -> ());
    Execution.cert_release st.exec ~tid;
    mu.m_unlockers <-
      (tid, Execution.thread_now st.exec ~tid)
      :: List.filter (fun (t, _) -> t <> tid) mu.m_unlockers
  end;
  mu.locked_by <- None

let exec_op st th (op : Op.t) : op_result =
  let tid = th.tid in
  let exec = st.exec in
  match op with
  | Op.Load { loc; mo; volatile } -> (
    match (volatile, volatile_load_mo st) with
    | true, None -> Value (Execution.na_read exec ~tid ~loc)
    | true, Some mo ->
      Value (Execution.atomic_load exec ~tid ~loc ~mo ~volatile:true)
    | false, _ -> Value (Execution.atomic_load exec ~tid ~loc ~mo ~volatile))
  | Op.Store { loc; mo; value; volatile } ->
    (match (volatile, volatile_store_mo st) with
    | true, None -> Execution.na_write exec ~tid ~loc value
    | true, Some mo ->
      Execution.atomic_store exec ~tid ~loc ~mo ~volatile:true value
    | false, _ -> Execution.atomic_store exec ~tid ~loc ~mo ~volatile value);
    Value 0
  | Op.Rmw { loc; mo; f; volatile } ->
    let mo =
      if volatile then
        match st.config.volatile_mode with
        | Volatile_atomic Memorder.Acq_rel -> Memorder.Acq_rel
        | Volatile_atomic m -> m
        | Volatile_nonatomic -> mo
      else mo
    in
    Value (Execution.atomic_rmw exec ~tid ~loc ~mo ~volatile ~f)
  | Op.Fence mo ->
    Execution.fence exec ~tid ~mo;
    Value 0
  | Op.Na_read { loc } -> Value (Execution.na_read exec ~tid ~loc)
  | Op.Na_write { loc; value } ->
    Execution.na_write exec ~tid ~loc value;
    Value 0
  | Op.Alloc { atomic; name; init } ->
    let loc = Execution.fresh_loc exec ~atomic ~name in
    Execution.na_write exec ~tid ~loc init;
    Value loc
  | Op.Spawn body ->
    Execution.tick_sync exec ~tid;
    Value (add_thread st body ~parent:(Some tid))
  | Op.Join child ->
    Execution.tick_sync exec ~tid;
    (match st.threads.(child).final_cv with
    | Some cv ->
      Execution.acquire_cv exec ~tid cv;
      if exec.Execution.cert_on then
        Execution.cert_sync_edge exec ~from_tid:child
          ~from_seq:(Clockvec.get cv child) ~to_tid:tid
          ~to_seq:(Execution.thread_now exec ~tid)
    | None -> raise (Execution.Model_error "join on unfinished thread"));
    Value 0
  | Op.Mutex_create -> Value (add_mutex st)
  | Op.Cond_create -> Value (add_condvar st)
  | Op.Mutex_lock m ->
    lock_mutex st tid (mutex st m);
    Value 0
  | Op.Mutex_trylock m ->
    let mu = mutex st m in
    Execution.tick_sync exec ~tid;
    if mu.locked_by = None then begin
      Execution.acquire_cv exec ~tid mu.m_release_cv;
      cert_lock_edges st tid mu;
      mu.locked_by <- Some tid;
      Value 1
    end
    else Value 0
  | Op.Mutex_unlock m ->
    let mu = mutex st m in
    if mu.locked_by <> Some tid then
      raise (Assertion_violation "unlock of mutex not held by this thread");
    unlock_mutex st tid mu;
    Value 0
  | Op.Cond_wait { cond; mutex = m } ->
    let mu = mutex st m in
    if mu.locked_by <> Some tid then
      raise (Assertion_violation "cond_wait without holding the mutex");
    unlock_mutex st tid mu;
    (condvar st cond).waiters <- tid :: (condvar st cond).waiters;
    Sleep { cond; mutex = m }
  | Op.Cond_signal c ->
    let cv = condvar st c in
    Execution.tick_sync exec ~tid;
    (match cv.waiters with
    | [] -> ()
    | waiters ->
      let arr = Array.of_list waiters in
      let idx = Rng.int st.rng (Array.length arr) in
      let woken = arr.(idx) in
      cv.waiters <- List.filter (fun t -> t <> woken) waiters;
      wake st woken);
    Value 0
  | Op.Cond_broadcast c ->
    let cv = condvar st c in
    Execution.tick_sync exec ~tid;
    List.iter (wake st) cv.waiters;
    cv.waiters <- [];
    Value 0
  | Op.Yield -> Value 0

(* ------------------------------------------------------------------ *)
(* Driving fibers *)

exception Abort_execution

let finish_thread st th =
  Execution.tick_sync st.exec ~tid:th.tid;
  th.final_cv <- Some (Execution.release_snapshot st.exec ~tid:th.tid);
  if st.exec.Execution.cert_on then Execution.cert_release st.exec ~tid:th.tid;
  (Execution.thread st.exec th.tid).Execution.live <- false;
  th.status <- Finished

let record_crash st = function
  | Assertion_violation msg ->
    st.assertion_failures <- msg :: st.assertion_failures;
    raise Abort_execution
  | Fiber.Cancelled -> raise Abort_execution
  | Abort_execution ->
    (* the step limit can now trip inside the fiber (an inline fast-path
       access, see [inline_ctx]); it is an abort, not a program crash *)
    raise Abort_execution
  | e ->
    st.uncaught <- Printexc.to_string e :: st.uncaught;
    raise Abort_execution

let bump_steps st =
  st.steps <- st.steps + 1;
  if st.steps > st.config.max_steps then begin
    st.step_limit_hit <- true;
    raise Abort_execution
  end

(* ------------------------------------------------------------------ *)
(* Inline fast path.  Non-atomic reads and writes never schedule: the
   settle loop below would absorb them without consulting the scheduler
   or the RNG.  Suspending the fiber just to bounce straight back is the
   dominant cost of a plain access, so while a fiber is running, the
   inline context names the engine state and acting thread and the DSL
   interprets those operations as direct calls — same step accounting,
   same model calls, no effect round-trip.  The context is [None]
   outside fiber execution (in particular during [Fiber.cancel] unwinds),
   where the DSL falls back to performing the effect.

   The context lives in domain-local storage, not a module-level ref:
   parallel campaigns (Tester.run_*_parallel) run one engine per domain,
   and a shared ref would let one domain's fiber read another domain's
   engine state. *)

type inline_ctx = { ic_st : state; ic_tid : int }

let inline_ctx_key : inline_ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let[@inline] current_inline_ctx () = Domain.DLS.get inline_ctx_key

let inline_na_read c ~loc =
  bump_steps c.ic_st;
  Execution.na_read c.ic_st.exec ~tid:c.ic_tid ~loc

let inline_na_write c ~loc v =
  bump_steps c.ic_st;
  Execution.na_write c.ic_st.exec ~tid:c.ic_tid ~loc v

let fiber_start st tid body =
  Domain.DLS.set inline_ctx_key (Some { ic_st = st; ic_tid = tid });
  let r = Fiber.start body in
  Domain.DLS.set inline_ctx_key None;
  r

let fiber_resume st tid k v =
  Domain.DLS.set inline_ctx_key (Some { ic_st = st; ic_tid = tid });
  let r = Fiber.resume k v in
  Domain.DLS.set inline_ctx_key None;
  r

(* Run one fiber step and keep absorbing inline (non-scheduling)
   operations; park the fiber at its next scheduling point. *)
let rec settle st th (step : Fiber.step) =
  match step with
  | Fiber.Done -> finish_thread st th
  | Fiber.Raised e -> record_crash st e
  | Fiber.Paused (op, k) ->
    if Op.is_inline op then begin
      bump_steps st;
      match exec_op st th op with
      | Value v -> settle st th (fiber_resume st th.tid k v)
      | Sleep _ -> assert false
    end
    else th.status <- Pending (App_op op, k)

(* C11obs: synchronisation operations (thread and lock traffic) trace as
   Sync events; memory accesses are emitted by {!Execution} itself. *)
let emit_sync st ~tid detail =
  let obs = st.exec.Execution.obs in
  if Obs.enabled obs then
    Obs.emit obs
      {
        Obs.step = st.exec.Execution.seq;
        tid;
        kind = Obs.Sync;
        loc = -1;
        mo = "";
        value = 0;
        detail;
      }

let sync_detail = function
  | App_op op -> (
    match op with
    | Op.Spawn _ -> Some "spawn"
    | Op.Join _ -> Some "join"
    | Op.Mutex_lock _ -> Some "mutex_lock"
    | Op.Mutex_trylock _ -> Some "mutex_trylock"
    | Op.Mutex_unlock _ -> Some "mutex_unlock"
    | Op.Cond_wait _ -> Some "cond_wait"
    | Op.Cond_signal _ -> Some "cond_signal"
    | Op.Cond_broadcast _ -> Some "cond_broadcast"
    | Op.Mutex_create | Op.Cond_create | Op.Load _ | Op.Store _ | Op.Rmw _
    | Op.Fence _ | Op.Na_read _ | Op.Na_write _ | Op.Alloc _ | Op.Yield ->
      None)
  | Relock _ -> Some "relock"
  | Sleeping _ -> None

(* Execute the chosen thread's pending scheduling-point operation. *)
let run_thread st tid =
  let th = st.threads.(tid) in
  bump_steps st;
  match th.status with
  | Not_started body ->
    Schedule.note_executed st.sched_state ~tid ~was_rlx_or_rel_store:false;
    settle st th (fiber_start st tid body)
  | Pending ((App_op op as p), k) ->
    Schedule.note_executed st.sched_state ~tid
      ~was_rlx_or_rel_store:(Op.is_rlx_or_rel_store op);
    (match exec_op st th op with
    | Value v ->
      (match sync_detail p with
      | Some d -> emit_sync st ~tid d
      | None -> ());
      settle st th (fiber_resume st tid k v)
    | Sleep { cond; mutex = m } ->
      emit_sync st ~tid "cond_wait";
      th.status <- Pending (Sleeping { cond; mutex = m }, k))
  | Pending (Relock m, k) ->
    Schedule.note_executed st.sched_state ~tid ~was_rlx_or_rel_store:false;
    lock_mutex st tid (mutex st m);
    emit_sync st ~tid "relock";
    settle st th (fiber_resume st tid k 0)
  | Pending (Sleeping _, _) | Finished ->
    raise (Execution.Model_error "scheduled a disabled thread")

let cancel_all st =
  for i = 0 to st.nthreads - 1 do
    match st.threads.(i).status with
    | Pending (_, k) ->
      st.threads.(i).status <- Finished;
      Fiber.cancel k
    | Not_started _ -> st.threads.(i).status <- Finished
    | Finished -> ()
  done

let run ?(obs = Obs.null) ?(profile = Profile.null) ?(metrics = Metrics.null)
    config f =
  (* cached guards for the per-step sites in the scheduling loop (see the
     matching note in Execution.t) *)
  let obs_on = Obs.enabled obs and metrics_on = Metrics.enabled metrics in
  let p_run = Profile.start profile in
  let rng = Rng.create config.seed in
  let race = Race.create ~obs ~metrics () in
  (* streaming certification consumes events as they happen, so the full
     history only needs retaining for the post-hoc pass or coverage *)
  let streaming = config.certify && config.cert_stream in
  let exec =
    Execution.create ~obs ~prof:profile ~metrics
      ~certify:(config.certify || config.coverage)
      ~cert_record:(config.coverage || (config.certify && not streaming))
      ?mutation:config.mutation ~mode:config.mode ~rng ~race ()
  in
  Execution.set_trace_capacity exec config.trace_depth;
  let st =
    {
      config;
      exec;
      rng;
      race;
      threads = [||];
      nthreads = 0;
      mutexes = [||];
      nmutexes = 0;
      condvars = [||];
      ncondvars = 0;
      sched_state = Schedule.make_state ();
      enabled_buf = [||];
      steps = 0;
      assertion_failures = [];
      uncaught = [];
      deadlock = false;
      step_limit_hit = false;
    }
  in
  let stream =
    if streaming then begin
      (* a thread's engine clock bounds what it can still read only while
         it may run: finished threads are out, and a thread parked on an
         unconditional acquire (join, lock of a held mutex) will merge the
         releaser's snapshot before its next read, so its stale clock need
         not hold the retirement frontier back *)
      let counted tid =
        tid < st.nthreads
        &&
        match st.threads.(tid).status with
        | Finished -> false
        | Not_started _ -> true
        | Pending ((App_op (Op.Mutex_lock _ | Op.Join _) | Relock _) as p, _)
          ->
          op_enabled st p
        | Pending _ -> true
      in
      let s = Check.Stream.create ~exec ~counted in
      Execution.set_cert_sink exec (Check.Stream.sink s);
      Some s
    end
    else None
  in
  ignore (add_thread st f ~parent:None);
  let is_rlx_store = pending_is_rlx_store st in
  (try
     let continue_ = ref true in
     while !continue_ do
       let n = collect_enabled st in
       if n = 0 then begin
         let unfinished = ref false in
         for i = 0 to st.nthreads - 1 do
           match st.threads.(i).status with
           | Finished -> ()
           | Not_started _ | Pending _ -> unfinished := true
         done;
         if !unfinished then st.deadlock <- true;
         continue_ := false
       end
       else begin
         let tid =
           Schedule.pick_n config.sched st.sched_state rng
             ~enabled:st.enabled_buf ~n ~pending_is_rlx_store:is_rlx_store
         in
         if obs_on then
           Obs.emit obs
             {
               Obs.step = exec.Execution.seq;
               tid;
               kind = Obs.Sched_pick;
               loc = -1;
               mo = "";
               value = n;
               detail = "";
             };
         if metrics_on then Metrics.incr metrics "sched.picks";
         (* assertion violations can surface while interpreting an
            operation (e.g. unlocking a mutex the thread does not hold),
            outside any fiber *)
         (try run_thread st tid
          with Assertion_violation msg ->
            st.assertion_failures <- msg :: st.assertion_failures;
            raise Abort_execution);
         ignore
           (Pruner.maybe_prune config.prune exec ~ops:exec.Execution.atomic_ops)
       end
     done
   with
  | Abort_execution -> cancel_all st
  | Execution.Model_error _ as e ->
    cancel_all st;
    raise e);
  Profile.stop profile "execution" p_run;
  let certificate =
    if config.certify then begin
      let p_cert = Profile.start profile in
      let v =
        match stream with
        | Some s -> Check.Stream.finalize s
        | None -> Check.certify exec
      in
      Profile.stop profile "certify" p_cert;
      if metrics_on then begin
        Metrics.incr metrics "certify.executions";
        match v with
        | Check.Rejected vs ->
          Metrics.incr metrics ~by:(List.length vs) "certify.violations"
        | Check.Certified _ | Check.Not_applicable _ -> ()
      end;
      Some v
    end
    else None
  in
  let shape =
    if config.coverage then begin
      let p_cov = Profile.start profile in
      let sg = Cov.shape_of_execution exec in
      Profile.stop profile "coverage" p_cov;
      Some sg
    end
    else None
  in
  if metrics_on then begin
    Metrics.incr metrics "engine.executions";
    Metrics.incr metrics ~by:st.steps "engine.steps";
    Metrics.incr metrics ~by:st.nthreads "engine.threads";
    Metrics.observe metrics "exec.steps" (float_of_int st.steps);
    Metrics.observe metrics "exec.graph_peak"
      (float_of_int exec.Execution.max_graph_size);
    if Race.races race <> [] || st.assertion_failures <> [] then
      Metrics.incr metrics "engine.buggy_executions"
  end;
  Obs.flush obs;
  {
    races = Race.races race;
    assertion_failures = List.rev st.assertion_failures;
    uncaught_exceptions = List.rev st.uncaught;
    deadlock = st.deadlock;
    step_limit_hit = st.step_limit_hit;
    steps = st.steps;
    atomic_ops = exec.Execution.atomic_ops;
    na_ops = exec.Execution.na_ops;
    threads_created = st.nthreads;
    max_graph_size = exec.Execution.max_graph_size;
    final_footprint = Execution.graph_footprint exec;
    pruned_stores = exec.Execution.pruned_count;
    trace =
      List.map (Format.asprintf "%a" Action.pp) (Execution.trace exec);
    certificate;
    certified_ops =
      (match stream with Some s -> Check.Stream.certified_ops s | None -> 0);
    retired_prefix_ops =
      (match stream with Some s -> Check.Stream.retired_ops s | None -> 0);
    shape;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>races: %d@ assertion failures: %d@ exceptions: %d@ deadlock: %b@ \
     steps: %d (atomic %d, na %d)@ threads: %d@ graph: peak %d, final %d, \
     pruned %d@]"
    (List.length o.races)
    (List.length o.assertion_failures)
    (List.length o.uncaught_exceptions)
    o.deadlock o.steps o.atomic_ops o.na_ops o.threads_created
    o.max_graph_size o.final_footprint o.pruned_stores
