type atomic = int
type naloc = int
type mutex = int
type condvar = int
type thread = int

let perform = Fiber.perform

(* Non-atomic accesses never reach the scheduler, so when the engine has
   published an inline context (domain-local; see Engine.current_inline_ctx)
   they go straight to the model instead of suspending the fiber. *)
let na_read loc =
  match Engine.current_inline_ctx () with
  | Some c -> Engine.inline_na_read c ~loc
  | None -> perform (Op.Na_read { loc })

let na_write loc value =
  match Engine.current_inline_ctx () with
  | Some c -> Engine.inline_na_write c ~loc value
  | None -> ignore (perform (Op.Na_write { loc; value }))

module Atomic = struct
  let make ?name v = perform (Op.Alloc { atomic = true; name; init = v })

  let load ?(mo = Memorder.Seq_cst) a =
    perform (Op.Load { loc = a; mo; volatile = false })

  let store ?(mo = Memorder.Seq_cst) a v =
    ignore (perform (Op.Store { loc = a; mo; value = v; volatile = false }))

  let rmw ~mo a f = perform (Op.Rmw { loc = a; mo; f; volatile = false })

  let exchange ?(mo = Memorder.Seq_cst) a v =
    rmw ~mo a (fun _ -> Execution.Rmw_write v)

  let fetch_add ?(mo = Memorder.Seq_cst) a n =
    rmw ~mo a (fun old -> Execution.Rmw_write (old + n))

  let fetch_sub ?(mo = Memorder.Seq_cst) a n =
    rmw ~mo a (fun old -> Execution.Rmw_write (old - n))

  let fetch_or ?(mo = Memorder.Seq_cst) a n =
    rmw ~mo a (fun old -> Execution.Rmw_write (old lor n))

  let fetch_and ?(mo = Memorder.Seq_cst) a n =
    rmw ~mo a (fun old -> Execution.Rmw_write (old land n))

  let compare_exchange ?(mo = Memorder.Seq_cst) a ~expected ~desired =
    let old =
      rmw ~mo a (fun old ->
          if old = expected then Execution.Rmw_write desired
          else Execution.Rmw_keep)
    in
    old = expected

  let init a v = na_write a v
  let na_store = init
  let na_load a = na_read a
end

module Nonatomic = struct
  let make ?name v = perform (Op.Alloc { atomic = false; name; init = v })
  let read l = na_read l
  let write l v = na_write l v
end

module Volatile = struct
  let load a = perform (Op.Load { loc = a; mo = Memorder.Relaxed; volatile = true })

  let store a v =
    ignore
      (perform (Op.Store { loc = a; mo = Memorder.Relaxed; value = v; volatile = true }))

  let fetch_add a n =
    perform
      (Op.Rmw
         {
           loc = a;
           mo = Memorder.Relaxed;
           f = (fun old -> Execution.Rmw_write (old + n));
           volatile = true;
         })

  let compare_exchange a ~expected ~desired =
    let old =
      perform
        (Op.Rmw
           {
             loc = a;
             mo = Memorder.Relaxed;
             f =
               (fun old ->
                 if old = expected then Execution.Rmw_write desired
                 else Execution.Rmw_keep);
             volatile = true;
           })
    in
    old = expected
end

module Fence = struct
  let fence mo = ignore (perform (Op.Fence mo))
  let acquire () = fence Memorder.Acquire
  let release () = fence Memorder.Release
  let seq_cst () = fence Memorder.Seq_cst
end

module Thread = struct
  let spawn f = perform (Op.Spawn f)
  let join t = ignore (perform (Op.Join t))
  let yield () = ignore (perform Op.Yield)
  let id t = t
end

module Mutex = struct
  let create () = perform Op.Mutex_create
  let lock m = ignore (perform (Op.Mutex_lock m))
  let try_lock m = perform (Op.Mutex_trylock m) = 1
  let unlock m = ignore (perform (Op.Mutex_unlock m))
end

module Condvar = struct
  let create () = perform Op.Cond_create
  let wait c m = ignore (perform (Op.Cond_wait { cond = c; mutex = m }))
  let signal c = ignore (perform (Op.Cond_signal c))
  let broadcast c = ignore (perform (Op.Cond_broadcast c))
end

let assert_that = Engine.assert_that
