type summary = {
  executions : int;
  buggy_executions : int;
  race_executions : int;
  assert_executions : int;
  deadlocks : int;
  step_limit_hits : int;
  distinct_races : Race.report list;
  total_atomic_ops : int;
  total_na_ops : int;
  max_graph_size : int;
  mean_steps : float;
}

let detection_rate s =
  if s.executions = 0 then 0.0
  else 100.0 *. float_of_int s.buggy_executions /. float_of_int s.executions

let run_collect ?obs ?profile ?metrics ~config ~iters f =
  let seeder = Rng.create config.Engine.seed in
  let seen = Hashtbl.create 32 in
  let distinct = ref [] in
  let histogram = Hashtbl.create 32 in
  let buggy = ref 0
  and racy = ref 0
  and asserts = ref 0
  and deadlocks = ref 0
  and limits = ref 0
  and atomic_ops = ref 0
  and na_ops = ref 0
  and max_graph = ref 0
  and steps = ref 0 in
  let observation = ref None in
  for _ = 1 to iters do
    let seed = Rng.next_int64 seeder in
    observation := None;
    let body () = observation := Some (f ()) in
    let o = Engine.run ?obs ?profile ?metrics { config with Engine.seed } body in
    if Engine.buggy o then incr buggy;
    if o.Engine.races <> [] then incr racy;
    if o.Engine.assertion_failures <> [] then incr asserts;
    if o.Engine.deadlock then incr deadlocks;
    if o.Engine.step_limit_hit then incr limits;
    atomic_ops := !atomic_ops + o.Engine.atomic_ops;
    na_ops := !na_ops + o.Engine.na_ops;
    if o.Engine.max_graph_size > !max_graph then
      max_graph := o.Engine.max_graph_size;
    steps := !steps + o.Engine.steps;
    List.iter
      (fun r ->
        let key = Race.dedup_key r in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          distinct := r :: !distinct
        end)
      o.Engine.races;
    match !observation with
    | Some obs ->
      Hashtbl.replace histogram obs
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram obs))
    | None -> ()
  done;
  let summary =
    {
      executions = iters;
      buggy_executions = !buggy;
      race_executions = !racy;
      assert_executions = !asserts;
      deadlocks = !deadlocks;
      step_limit_hits = !limits;
      distinct_races = List.rev !distinct;
      total_atomic_ops = !atomic_ops;
      total_na_ops = !na_ops;
      max_graph_size = !max_graph;
      mean_steps =
        (if iters = 0 then 0.0 else float_of_int !steps /. float_of_int iters);
    }
  in
  let hist = Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram [] in
  (summary, hist)

let run ?obs ?profile ?metrics ~config ~iters f =
  fst (run_collect ?obs ?profile ?metrics ~config ~iters (fun () -> f ()))

(* Re-run single executions (fresh seeds derived from [config.seed]) until
   one is buggy — the trace hunt previously inlined in bin/c11test.ml.
   The tracer's ring is cleared between attempts so that, on success, it
   holds exactly the buggy execution's events. *)
let find_buggy ?obs ?profile ?metrics ~config ~attempts f =
  let seeder = Rng.create (Int64.add config.Engine.seed 7L) in
  let rec hunt n =
    if n <= 0 then None
    else begin
      (match obs with Some o -> Obs.clear o | None -> ());
      let seed = Rng.next_int64 seeder in
      let o =
        Engine.run ?obs ?profile ?metrics { config with Engine.seed } f
      in
      if Engine.buggy o then Some o else hunt (n - 1)
    end
  in
  hunt attempts

let summary_to_json s =
  Jsonx.Obj
    [
      ("executions", Jsonx.Int s.executions);
      ("buggy_executions", Jsonx.Int s.buggy_executions);
      ("race_executions", Jsonx.Int s.race_executions);
      ("assert_executions", Jsonx.Int s.assert_executions);
      ("deadlocks", Jsonx.Int s.deadlocks);
      ("step_limit_hits", Jsonx.Int s.step_limit_hits);
      ("detection_rate_percent", Jsonx.Float (detection_rate s));
      ( "distinct_races",
        Jsonx.List (List.map Race.report_to_json s.distinct_races) );
      ("total_atomic_ops", Jsonx.Int s.total_atomic_ops);
      ("total_na_ops", Jsonx.Int s.total_na_ops);
      ("max_graph_size", Jsonx.Int s.max_graph_size);
      ("mean_steps", Jsonx.Float s.mean_steps);
    ]

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>executions: %d@ buggy: %d (%.1f%%) [races %d, asserts %d]@ \
     deadlocks: %d, step-limit hits: %d@ distinct races: %d@ ops: %d atomic \
     / %d non-atomic@ peak mo-graph: %d nodes@ mean steps: %.1f@]"
    s.executions s.buggy_executions (detection_rate s) s.race_executions
    s.assert_executions s.deadlocks s.step_limit_hits
    (List.length s.distinct_races)
    s.total_atomic_ops s.total_na_ops s.max_graph_size s.mean_steps
