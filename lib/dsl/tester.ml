type summary = {
  executions : int;
  buggy_executions : int;
  race_executions : int;
  assert_executions : int;
  deadlocks : int;
  step_limit_hits : int;
  certified_executions : int;
  cert_rejected_executions : int;
  certified_ops : int;
  retired_prefix_ops : int;
  distinct_races : Race.report list;
  distinct_cert_violations : Check.violation list;
  total_atomic_ops : int;
  total_na_ops : int;
  max_graph_size : int;
  mean_steps : float;
  coverage : Cov.summary option;
}

let detection_rate s =
  if s.executions = 0 then 0.0
  else 100.0 *. float_of_int s.buggy_executions /. float_of_int s.executions

(* ------------------------------------------------------------------ *)
(* Shards.

   Both the sequential and the parallel runners are built from the same
   unit: run the executions of one leapfrog shard (global indices
   [worker], [worker+jobs], ... below [total]) and accumulate counters,
   shard-local race dedup and a shard-local observation histogram, each
   entry carrying the global index of its first occurrence.  Execution
   [i]'s seed comes from [Rng.substream config.seed ~index:i] — a pure
   function of the index — so what executions do is independent of how
   they are dealt to workers; the first-occurrence indices then let the
   merge reconstruct exactly the sequential runner's output. *)

type 'a shard = {
  sh_counters : Par.Merge.counters;
  sh_races : (int * Race.report) list;
      (* shard-local first occurrences, ascending global index *)
  sh_violations : (int * Check.violation) list;
      (* certifier counterexamples, deduped by {!Check.violation_key};
         same first-occurrence discipline as [sh_races] *)
  sh_hist : ('a * int * int) list;
      (* (observation, count, first global index), unordered *)
  sh_cov : Cov.shard option;
      (* shard-local coverage accumulation; [Some _] iff the campaign ran
         with [config.coverage] *)
}

(* [start]/[stride] generalise the one-level leapfrog (worker [w] of [j]
   is [start = w], [stride = j]) so nested sharding composes: worker [w]
   of [W] processes splitting its shard across [j] domains hands domain
   [d] the arithmetic progression [start = w + d*W], [stride = j*W] —
   still a partition of the worker's global indices, so the merge
   discipline is unchanged. *)
let run_shard_at ?(progress = Progress.null) ~obs ~profile ~metrics ~config
    ~total ~start ~stride f =
  let seen = Hashtbl.create 16 in
  let races = ref [] in
  let seen_violations = Hashtbl.create 16 in
  let violations = ref [] in
  let histogram = Hashtbl.create 16 in
  let buggy = ref 0
  and racy = ref 0
  and asserts = ref 0
  and deadlocks = ref 0
  and limits = ref 0
  and certified = ref 0
  and cert_rejected = ref 0
  and certified_ops = ref 0
  and retired_prefix_ops = ref 0
  and atomic_ops = ref 0
  and na_ops = ref 0
  and max_graph = ref 0
  and steps = ref 0
  and executions = ref 0 in
  let observation = ref None in
  let cov =
    if config.Engine.coverage then Some (Cov.create ()) else None
  in
  let progress_on = Progress.enabled progress in
  let i = ref start in
  while !i < total do
    let index = !i in
    let seed = Rng.substream config.Engine.seed ~index in
    observation := None;
    let body () = observation := Some (f ()) in
    let o = Engine.run ~obs ~profile ~metrics { config with Engine.seed } body in
    incr executions;
    if Engine.buggy o then incr buggy;
    if o.Engine.races <> [] then incr racy;
    if o.Engine.assertion_failures <> [] then incr asserts;
    if o.Engine.deadlock then incr deadlocks;
    if o.Engine.step_limit_hit then incr limits;
    atomic_ops := !atomic_ops + o.Engine.atomic_ops;
    na_ops := !na_ops + o.Engine.na_ops;
    if o.Engine.max_graph_size > !max_graph then
      max_graph := o.Engine.max_graph_size;
    steps := !steps + o.Engine.steps;
    certified_ops := !certified_ops + o.Engine.certified_ops;
    retired_prefix_ops := !retired_prefix_ops + o.Engine.retired_prefix_ops;
    if progress_on then
      Progress.account_certified progress ~certified:o.Engine.certified_ops
        ~retired:o.Engine.retired_prefix_ops;
    let new_finding = ref false in
    List.iter
      (fun r ->
        let key = Race.dedup_key r in
        (match cov with
        | Some acc -> ignore (Cov.observe_race acc ~index key)
        | None -> ());
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          new_finding := true;
          races := (index, r) :: !races
        end)
      o.Engine.races;
    (match o.Engine.certificate with
    | Some (Check.Certified _) -> incr certified
    | Some (Check.Rejected vs) ->
      incr cert_rejected;
      (match cov with
      | Some acc ->
        ignore (Cov.observe_violation acc ~index (Check.rejection_key vs))
      | None -> ());
      List.iter
        (fun v ->
          let key = Check.violation_key v in
          if not (Hashtbl.mem seen_violations key) then begin
            Hashtbl.add seen_violations key ();
            new_finding := true;
            violations := (index, v) :: !violations
          end)
        vs
    | Some (Check.Not_applicable _) | None -> ());
    (match !observation with
    | Some obs -> (
      match Hashtbl.find_opt histogram obs with
      | Some (count, first) -> Hashtbl.replace histogram obs (count + 1, first)
      | None -> Hashtbl.replace histogram obs (1, index))
    | None -> ());
    let novel =
      match (cov, o.Engine.shape) with
      | Some acc, Some sg -> Cov.observe acc ~index sg
      | _ -> false
    in
    if progress_on then Progress.tick progress ~novel ~finding:!new_finding;
    i := !i + stride
  done;
  {
    sh_counters =
      {
        Par.Merge.executions = !executions;
        buggy = !buggy;
        racy = !racy;
        asserts = !asserts;
        deadlocks = !deadlocks;
        limits = !limits;
        certified = !certified;
        cert_rejected = !cert_rejected;
        certified_ops = !certified_ops;
        retired_prefix_ops = !retired_prefix_ops;
        atomic_ops = !atomic_ops;
        na_ops = !na_ops;
        max_graph = !max_graph;
        steps = !steps;
      };
    sh_races = List.rev !races;
    sh_violations = List.rev !violations;
    sh_hist =
      Hashtbl.fold (fun k (count, first) l -> (k, count, first) :: l) histogram
        [];
    sh_cov = Option.map Cov.shard cov;
  }

let summary_of_counters (c : Par.Merge.counters) distinct distinct_violations =
  {
    executions = c.Par.Merge.executions;
    buggy_executions = c.Par.Merge.buggy;
    race_executions = c.Par.Merge.racy;
    assert_executions = c.Par.Merge.asserts;
    deadlocks = c.Par.Merge.deadlocks;
    step_limit_hits = c.Par.Merge.limits;
    certified_executions = c.Par.Merge.certified;
    cert_rejected_executions = c.Par.Merge.cert_rejected;
    certified_ops = c.Par.Merge.certified_ops;
    retired_prefix_ops = c.Par.Merge.retired_prefix_ops;
    distinct_races = distinct;
    distinct_cert_violations = distinct_violations;
    total_atomic_ops = c.Par.Merge.atomic_ops;
    total_na_ops = c.Par.Merge.na_ops;
    max_graph_size = c.Par.Merge.max_graph;
    mean_steps =
      (if c.Par.Merge.executions = 0 then 0.0
       else
         float_of_int c.Par.Merge.steps /. float_of_int c.Par.Merge.executions);
    coverage = None;
  }

let merge_shards shards =
  let counters =
    List.fold_left
      (fun acc s -> Par.Merge.add acc s.sh_counters)
      Par.Merge.zero shards
  in
  let distinct =
    Par.Merge.dedup ~key:Race.dedup_key (List.map (fun s -> s.sh_races) shards)
  in
  let distinct_violations =
    Par.Merge.dedup ~key:Check.violation_key
      (List.map (fun s -> s.sh_violations) shards)
  in
  let hist = Par.Merge.histogram (List.map (fun s -> s.sh_hist) shards) in
  let coverage =
    match List.filter_map (fun s -> s.sh_cov) shards with
    | [] -> None
    | cov_shards -> Some (Cov.merge cov_shards)
  in
  ( { (summary_of_counters counters distinct distinct_violations) with coverage },
    hist )

(* ------------------------------------------------------------------ *)
(* Sequential runners: one shard covering every index. *)

(* The final progress record carries the campaign's exact merged novelty
   counts (heartbeats only ever saw shard-local overapproximations). *)
let finish_progress progress summary =
  if Progress.enabled progress then
    Progress.finish
      ?novel:(Option.map Cov.distinct_shapes summary.coverage)
      ~findings:
        (List.length summary.distinct_races
        + List.length summary.distinct_cert_violations)
      progress

let run_collect ?(obs = Obs.null) ?(profile = Profile.null)
    ?(metrics = Metrics.null) ?(progress = Progress.null) ~config ~iters f =
  let shard =
    run_shard_at ~progress ~obs ~profile ~metrics ~config ~total:iters
      ~start:0 ~stride:1 f
  in
  let summary, hist = merge_shards [ shard ] in
  let summary = { summary with executions = iters } in
  finish_progress progress summary;
  (summary, hist)

let run ?obs ?profile ?metrics ?progress ~config ~iters f =
  fst
    (run_collect ?obs ?profile ?metrics ?progress ~config ~iters (fun () ->
         f ()))

(* ------------------------------------------------------------------ *)
(* Parallel runners.

   Worker [w] of [j] runs its leapfrog shard on its own domain with fully
   private engine state (execution, mo-graph, race detector, RNG) and
   private C11obs handles; the shards are merged with the
   order-independent operations of {!Par.Merge}.  The contract: the
   merged summary, histogram and distinct-race list are bit-identical to
   the sequential runner's for every job count. *)

let clamp_jobs jobs n = max 1 (min jobs (max 1 n))

(* Private per-worker C11obs handles, created only when the caller's are
   live.  A worker's tracer buffers into its own ring (rings and sinks
   are single-domain state); the rings are absorbed into the caller's
   tracer in worker order after the join. *)
let worker_obs obs =
  if Obs.enabled obs then
    Obs.create
      ~ring_capacity:
        (if Obs.ring_capacity obs > 0 then Obs.ring_capacity obs else 65536)
      ()
  else Obs.null

let worker_profile profile =
  if Profile.enabled profile then Profile.create () else Profile.null

let worker_metrics metrics =
  if Metrics.enabled metrics then Metrics.create () else Metrics.null

let absorb_worker_handles ~obs ~profile ~metrics handles =
  Array.iter
    (fun (o, p, m) ->
      if Obs.enabled obs then Obs.absorb ~into:obs o;
      if Profile.enabled profile then Profile.absorb ~into:profile p;
      if Metrics.enabled metrics then Metrics.absorb ~into:metrics m)
    handles

let run_collect_parallel ?(obs = Obs.null) ?(profile = Profile.null)
    ?(metrics = Metrics.null) ?(progress = Progress.null) ?(jobs = 1) ~config
    ~iters f =
  let jobs = clamp_jobs jobs iters in
  if jobs = 1 then run_collect ~obs ~profile ~metrics ~progress ~config ~iters f
  else begin
    let results =
      Par.spawn_workers ~jobs (fun ~worker ->
          let o = worker_obs obs in
          let p = worker_profile profile in
          let m = worker_metrics metrics in
          (* [progress] is shared: its counters are atomic and emission is
             mutex-serialised, so workers tick it directly *)
          let shard =
            run_shard_at ~progress ~obs:o ~profile:p ~metrics:m ~config
              ~total:iters ~start:worker ~stride:jobs f
          in
          (shard, (o, p, m)))
    in
    absorb_worker_handles ~obs ~profile ~metrics (Array.map snd results);
    Obs.flush obs;
    let summary, hist =
      merge_shards (Array.to_list (Array.map fst results))
    in
    let summary = { summary with executions = iters } in
    finish_progress progress summary;
    (summary, hist)
  end

let run_parallel ?obs ?profile ?metrics ?progress ?jobs ~config ~iters f =
  fst
    (run_collect_parallel ?obs ?profile ?metrics ?progress ?jobs ~config
       ~iters (fun () -> f ()))

(* ------------------------------------------------------------------ *)
(* Bug hunts. *)

(* Re-run single executions (fresh seeds derived from [config.seed]) until
   one is buggy — the trace hunt previously inlined in bin/c11test.ml.
   The tracer's ring is cleared between attempts so that, on success, it
   holds exactly the buggy execution's events.  Attempt seeds come from
   the substream rooted at [config.seed + 7] — distinct from {!run}'s —
   indexed by attempt number, so {!find_buggy_parallel} can derive the
   same seeds shard-wise. *)

let hunt_base config = Int64.add config.Engine.seed 7L

let find_buggy ?obs ?profile ?metrics ~config ~attempts f =
  let base = hunt_base config in
  let rec hunt index =
    if index >= attempts then None
    else begin
      (match obs with Some o -> Obs.clear o | None -> ());
      let seed = Rng.substream base ~index in
      let o =
        Engine.run ?obs ?profile ?metrics { config with Engine.seed } f
      in
      if Engine.buggy o then Some o else hunt (index + 1)
    end
  in
  hunt 0

let find_buggy_parallel ?obs ?profile ?metrics ?(jobs = 1) ~config ~attempts f
    =
  let jobs = clamp_jobs jobs attempts in
  if jobs = 1 then find_buggy ?obs ?profile ?metrics ~config ~attempts f
  else begin
    let obs = Option.value ~default:Obs.null obs in
    let profile = Option.value ~default:Profile.null profile in
    let metrics = Option.value ~default:Metrics.null metrics in
    let base = hunt_base config in
    let winner = Par.Winner.create () in
    (* Worker [w] scans attempt indices [w, w+jobs, ...] in ascending
       order and stops at its first buggy execution (later indices of its
       shard cannot beat it) or as soon as a strictly lower index has won
       elsewhere (cancel-by-flag; advisory, so the eventual winner — the
       lowest buggy attempt index overall — is worker-count-independent:
       an index is only ever skipped when a lower buggy index exists). *)
    let results =
      Par.spawn_workers ~jobs (fun ~worker ->
          let p = worker_profile profile in
          let m = worker_metrics metrics in
          let best = ref None in
          let i = ref worker in
          while
            !i < attempts && !best = None
            && not (Par.Winner.beaten winner ~index:!i)
          do
            let seed = Rng.substream base ~index:!i in
            let o =
              Engine.run ~profile:p ~metrics:m { config with Engine.seed } f
            in
            if Engine.buggy o then begin
              Par.Winner.propose winner !i;
              best := Some (!i, o)
            end;
            i := !i + jobs
          done;
          (!best, (p, m)))
    in
    Array.iter
      (fun (_, (p, m)) ->
        if Profile.enabled profile then Profile.absorb ~into:profile p;
        if Metrics.enabled metrics then Metrics.absorb ~into:metrics m)
      results;
    match
      Par.Merge.first_win (Array.to_list (Array.map fst results))
    with
    | None -> None
    | Some (index, outcome) ->
      if not (Obs.enabled obs) then Some outcome
      else begin
        (* The caller wants the buggy execution's trace in its ring.  The
           hunt traced nothing (workers run without the caller's tracer),
           so replay the winning seed once with it: executions are pure
           functions of their seed, so the replayed outcome — returned for
           consistency with the emitted events — is bit-identical to the
           one found during the hunt. *)
        Obs.clear obs;
        let seed = Rng.substream base ~index in
        Some (Engine.run ~obs { config with Engine.seed } f)
      end
  end

(* ------------------------------------------------------------------ *)
(* Shard-level entry points for the multi-process fabric (lib/svc).

   A worker process runs [run_shard] over its arithmetic progression of
   global indices and ships the resulting ['a shard] — plain data, no
   closures — back to the coordinator, which folds every shard (local or
   remote, fresh or cache-replayed) with [merge_shard_list].  Because the
   shard values are exactly what the in-process parallel runner merges,
   the multi-process merge is byte-identical to [-j 1] by construction. *)

let run_shard ?(obs = Obs.null) ?(profile = Profile.null)
    ?(metrics = Metrics.null) ?(progress = Progress.null) ~config ~total
    ~start ~stride f =
  run_shard_at ~progress ~obs ~profile ~metrics ~config ~total ~start ~stride
    f

let merge_shard_list shards = merge_shards shards
let shard_executions s = s.sh_counters.Par.Merge.executions

(* ------------------------------------------------------------------ *)

let summary_to_json s =
  (* [coverage] is appended only when the campaign ran with coverage on, so
     coverage-off reports (and their goldens) are byte-identical to before *)
  let coverage_fields =
    match s.coverage with
    | None -> []
    | Some c ->
      [
        ("distinct_shapes", Jsonx.Int (Cov.distinct_shapes c));
        ("coverage", Cov.summary_to_json c);
      ]
  in
  (* streaming-certification counters appear only when the streaming
     certifier ran, keeping certify-off and post-hoc reports (and their
     goldens) byte-identical to before *)
  let stream_fields =
    if s.certified_ops > 0 || s.retired_prefix_ops > 0 then
      [
        ("certified_ops", Jsonx.Int s.certified_ops);
        ("retired_prefix_ops", Jsonx.Int s.retired_prefix_ops);
      ]
    else []
  in
  Jsonx.Obj
    ([
      ("executions", Jsonx.Int s.executions);
      ("buggy_executions", Jsonx.Int s.buggy_executions);
      ("race_executions", Jsonx.Int s.race_executions);
      ("assert_executions", Jsonx.Int s.assert_executions);
      ("deadlocks", Jsonx.Int s.deadlocks);
      ("step_limit_hits", Jsonx.Int s.step_limit_hits);
      ("certified_executions", Jsonx.Int s.certified_executions);
      ("cert_rejected_executions", Jsonx.Int s.cert_rejected_executions);
    ]
    @ stream_fields
    @ [
      ("detection_rate_percent", Jsonx.Float (detection_rate s));
      ( "distinct_races",
        Jsonx.List (List.map Race.report_to_json s.distinct_races) );
      ( "distinct_cert_violations",
        Jsonx.List (List.map Check.violation_to_json s.distinct_cert_violations)
      );
      ("total_atomic_ops", Jsonx.Int s.total_atomic_ops);
      ("total_na_ops", Jsonx.Int s.total_na_ops);
      ("max_graph_size", Jsonx.Int s.max_graph_size);
      ("mean_steps", Jsonx.Float s.mean_steps);
     ]
    @ coverage_fields)

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>executions: %d@ buggy: %d (%.1f%%) [races %d, asserts %d]@ \
     deadlocks: %d, step-limit hits: %d@ distinct races: %d@ ops: %d atomic \
     / %d non-atomic@ peak mo-graph: %d nodes@ mean steps: %.1f@]"
    s.executions s.buggy_executions (detection_rate s) s.race_executions
    s.assert_executions s.deadlocks s.step_limit_hits
    (List.length s.distinct_races)
    s.total_atomic_ops s.total_na_ops s.max_graph_size s.mean_steps;
  if s.certified_executions > 0 || s.cert_rejected_executions > 0 then begin
    Format.fprintf fmt "@ certified: %d, rejected: %d, distinct violations: %d"
      s.certified_executions s.cert_rejected_executions
      (List.length s.distinct_cert_violations);
    if s.certified_ops > 0 then
      Format.fprintf fmt "@ streaming: %d ops certified, %d retired"
        s.certified_ops s.retired_prefix_ops;
    List.iter
      (fun v -> Format.fprintf fmt "@   %a" Check.pp_violation v)
      s.distinct_cert_violations
  end;
  match s.coverage with
  | None -> ()
  | Some c -> Format.fprintf fmt "@ %a" Cov.pp_summary c
