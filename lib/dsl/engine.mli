(** The Explore loop (Figure 3 of the paper).

    [run config f] executes the program [f] once under the configured
    memory model and scheduler: it repeatedly asks the scheduler for the
    next enabled thread, interprets that thread's pending visible operation
    against {!Execution}, and resumes the thread's fiber with the result.
    Each call produces one execution; repeated testing is {!Tester}'s job. *)

type volatile_mode =
  | Volatile_atomic of Memorder.t
      (** treat volatile accesses as atomics with this order for loads and
          the matching release order for stores (C11Tester's behaviour;
          Section 7.2) *)
  | Volatile_nonatomic
      (** treat volatile accesses as plain accesses (what tsan11/tsan11rec
          effectively do: volatiles race) *)

type config = {
  mode : Execution.mode;
  sched : Schedule.t;
  volatile_mode : volatile_mode;
  prune : Pruner.policy;
  max_steps : int;  (** abort (livelock guard) after this many steps *)
  seed : int64;
  trace_depth : int;
      (** keep the last N memory actions and return them in the outcome;
          0 (default) disables tracing *)
  certify : bool;
      (** run the axiomatic certifier over the execution; off (zero-cost)
          by default.  With [cert_stream] (the default) actions and sync
          edges are certified incrementally as they happen
          ({!Check.Stream}); otherwise the full trace is retained and
          {!Check.certify} runs post-hoc *)
  cert_stream : bool;
      (** streaming incremental certification with hb-closed prefix
          retirement instead of the post-hoc full-trace pass; on by
          default, only meaningful with [certify] *)
  mutation : Execution.mutation option;
      (** test-only seeded engine fault ({!Execution.mutation}), used to
          prove the oracle pipeline detects real engine bugs; [None] (the
          default) is the correct engine *)
  coverage : bool;
      (** record the certifier-grade trace and fingerprint the finished
          execution into a canonical {!Cov.shape} (returned in the
          outcome); off (zero-cost) by default *)
}

val default_config : config

type outcome = {
  races : Race.report list;
  assertion_failures : string list;
  uncaught_exceptions : string list;
  deadlock : bool;
  step_limit_hit : bool;
  steps : int;
  atomic_ops : int;
  na_ops : int;
  threads_created : int;
  max_graph_size : int;  (** peak live mo-graph nodes *)
  final_footprint : int;  (** stores retained at exit (after pruning) *)
  pruned_stores : int;
  trace : string list;
      (** the last [trace_depth] memory actions, oldest first, formatted *)
  certificate : Check.verdict option;
      (** the axiomatic certifier's verdict; [Some _] iff [config.certify] *)
  certified_ops : int;
      (** actions consumed by the streaming certifier; 0 when certifying
          post-hoc or not at all *)
  retired_prefix_ops : int;
      (** actions whose certification window storage was freed by
          hb-closed prefix retirement *)
  shape : Cov.shape option;
      (** canonical coverage fingerprint; [Some _] iff [config.coverage] *)
}

(** Did the execution expose a bug (a data race, an assertion failure, or
    a rejected certificate)? *)
val buggy : outcome -> bool

(** [run config f] executes [f] once.  The optional C11obs handles
    observe the execution without perturbing it (no RNG draws, no model
    state): [obs] receives typed events (memory accesses, sync ops,
    scheduler picks, race reports, prune sweeps), [profile] accumulates
    per-phase span timings, [metrics] collects counters and histograms.
    All three default to their disabled singletons, in which case the
    instrumentation is zero-cost. *)
val run :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  config ->
  (unit -> unit) ->
  outcome

(** Raised by {!Check.assert_that}; aborts the current execution and is
    recorded in the outcome.  Do not catch it inside test programs. *)
exception Assertion_violation of string

(** DSL support: used by {!C11}, not by user code. *)
val assert_that : bool -> string -> unit

(** DSL support: the inline-operation fast path.  While the engine runs a
    fiber, the inline context names the engine state and acting thread;
    non-atomic accesses — which never schedule — are then interpreted as
    direct calls into {!Execution} instead of effect suspensions (same step
    accounting and model behaviour, no fiber round-trip).
    [current_inline_ctx] reads the running domain's context from
    domain-local storage ({!Tester} runs one engine per domain during
    parallel campaigns); it is [None] outside fiber execution, where the
    DSL performs the effect as usual. *)
type inline_ctx

val current_inline_ctx : unit -> inline_ctx option
val inline_na_read : inline_ctx -> loc:int -> int
val inline_na_write : inline_ctx -> loc:int -> int -> unit

val pp_outcome : Format.formatter -> outcome -> unit
