(** Repeated execution (Section 7.6 of the paper).

    C11Tester re-runs the program under test many times, restoring the
    application's initial state between executions (fork snapshots in the
    paper; re-invoking the OCaml closure here) while its own state — race
    deduplication, statistics, the random stream — persists across
    executions.

    Executions are numbered [0 .. iters-1] and execution [i] draws its
    seed from [Rng.substream config.seed ~index:i], a pure function of
    the index.  A campaign is therefore embarrassingly parallel, and the
    [_parallel] runners shard it across OCaml 5 domains ([jobs] workers,
    leapfrog assignment) with fully private engine state per domain.

    {b Determinism contract}: the merged summary, observation histogram
    (first-occurrence order) and deduplicated race list of a [~jobs:n]
    campaign are bit-identical to the sequential runner's, for every [n].
    Only wall-clock diagnostics (profile timings, metric percentile
    windows) may differ with [jobs]. *)

type summary = {
  executions : int;
  buggy_executions : int;
      (** executions with a race, an assertion failure, or a rejected
          certificate *)
  race_executions : int;
  assert_executions : int;
  deadlocks : int;
  step_limit_hits : int;
  certified_executions : int;
      (** executions the axiomatic certifier certified (0 unless the
          campaign ran with [config.certify]) *)
  cert_rejected_executions : int;
  certified_ops : int;
      (** actions consumed by the streaming certifier across the campaign
          (0 when certifying post-hoc or not at all) *)
  retired_prefix_ops : int;
      (** actions whose certification window storage was freed by
          hb-closed prefix retirement *)
  distinct_races : Race.report list;
      (** deduplicated across executions, in order of first occurrence *)
  distinct_cert_violations : Check.violation list;
      (** certifier counterexamples, deduplicated by
          {!Check.violation_key} in order of first occurrence *)
  total_atomic_ops : int;
  total_na_ops : int;
  max_graph_size : int;
  mean_steps : float;
  coverage : Cov.summary option;
      (** merged execution-shape coverage; [Some _] iff the campaign ran
          with [config.coverage].  Bit-identical across job counts (same
          {!Par.Merge} discipline as the rest of the summary). *)
}

(** Detection rate in percent, as reported in Tables 2 and Section 8.1. *)
val detection_rate : summary -> float

(** [run ~config ~iters f] executes [f] [iters] times, deriving a fresh
    seed for each execution from [config.seed].  The optional C11obs
    handles are shared across all executions of the session (events fan
    out continuously; metrics and span timings aggregate per session).
    [progress], when given, is ticked once per execution and receives a
    [final] record with the campaign's exact merged novelty counts. *)
val run :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  config:Engine.config ->
  iters:int ->
  (unit -> unit) ->
  summary

(** [run_collect ~config ~iters f] also collects the observation returned
    by each execution of [f] (read out of plain OCaml state by the caller's
    closure) into a histogram — the litmus-test workhorse.  Histogram
    entries are listed in order of first occurrence. *)
val run_collect :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  config:Engine.config ->
  iters:int ->
  (unit -> 'a) ->
  summary * ('a * int) list

(** [run_parallel ~jobs ~config ~iters f] is {!run} sharded across [jobs]
    domains (clamped to at least 1; [~jobs:1] is exactly {!run}).  [f]
    runs concurrently on several domains, so it must create the state it
    mutates per invocation — every workload and litmus test in this
    repository already does, allocating its locations through the DSL
    inside the closure.  When C11obs handles are given, each worker
    records into private ones, absorbed into the caller's in worker order
    after the join (see {!Obs.absorb}): counters and span totals merge
    exactly; percentile windows and ring contents are deterministic for a
    fixed [jobs] but may differ across job counts.  The summary itself is
    bit-identical to {!run}'s for every [jobs]. *)
val run_parallel :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  ?jobs:int ->
  config:Engine.config ->
  iters:int ->
  (unit -> unit) ->
  summary

(** {!run_collect} sharded across domains; same contract as
    {!run_parallel}, and the histogram (first-occurrence order) is
    bit-identical to {!run_collect}'s for every [jobs]. *)
val run_collect_parallel :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  ?jobs:int ->
  config:Engine.config ->
  iters:int ->
  (unit -> 'a) ->
  summary * ('a * int) list

(** [find_buggy ~config ~attempts f] re-runs single executions with fresh
    seeds (derived from [config.seed], on a stream distinct from {!run}'s)
    until one exposes a bug, and returns its outcome.  When [obs] is
    given, its ring is cleared before every attempt, so on [Some _] the
    ring holds exactly the buggy execution's events — ready for
    {!Obs.drain_to_sink} into an NDJSON or pretty sink. *)
val find_buggy :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  config:Engine.config ->
  attempts:int ->
  (unit -> unit) ->
  Engine.outcome option

(** {!find_buggy} sharded across domains with a first-buggy-wins
    protocol: the buggy execution with the lowest attempt index wins and
    the other workers cancel by flag, so the returned outcome is the same
    as {!find_buggy}'s for every [jobs] (the cancellation is advisory —
    an attempt is only ever skipped once a strictly lower buggy attempt
    exists).  When [obs] is given, the winning seed is replayed once with
    the caller's tracer after the hunt, so the ring again holds exactly
    the buggy execution's events; hunt-side executions trace nothing.
    Metric/profile totals from the hunt depend on how far each worker ran
    before cancelling and are not deterministic across runs. *)
val find_buggy_parallel :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?jobs:int ->
  config:Engine.config ->
  attempts:int ->
  (unit -> unit) ->
  Engine.outcome option

(** {2 Shard-level API (the multi-process fabric's building block)}

    One worker's accumulated results: outcome counters, shard-local
    first-occurrence race/violation dedup, the observation histogram and
    the optional coverage extract.  Plain data (no closures), so a shard
    value survives [Marshal] across processes — lib/svc ships shards from
    worker processes to the coordinator and replays them from the result
    cache. *)
type 'a shard

(** [run_shard ~config ~total ~start ~stride f] runs the executions whose
    global indices form the arithmetic progression [start, start+stride,
    ...] below [total].  Worker [w] of [j] is [~start:w ~stride:j]; a
    worker process [w] of [W] splitting its shard across [d] domains hands
    domain [i] [~start:(w + i*W) ~stride:(d*W)] — nested leapfrog is still
    a partition, so the merge contract is unchanged. *)
val run_shard :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  config:Engine.config ->
  total:int ->
  start:int ->
  stride:int ->
  (unit -> 'a) ->
  'a shard

(** Fold shards with the {!Par.Merge} algebra: the summary and
    first-occurrence histogram are independent of how the index space was
    partitioned and of the list order.  Exactly the merge the in-process
    parallel runners use. *)
val merge_shard_list : 'a shard list -> summary * ('a * int) list

(** Executions the shard actually ran (partial-failure accounting). *)
val shard_executions : 'a shard -> int

(** JSON form of a summary (the ["summary"] object of the CLI's [--json]
    document). *)
val summary_to_json : summary -> Jsonx.t

val pp_summary : Format.formatter -> summary -> unit
