(** Repeated execution (Section 7.6 of the paper).

    C11Tester re-runs the program under test many times, restoring the
    application's initial state between executions (fork snapshots in the
    paper; re-invoking the OCaml closure here) while its own state — race
    deduplication, statistics, the random stream — persists across
    executions. *)

type summary = {
  executions : int;
  buggy_executions : int;  (** executions with a race or assertion failure *)
  race_executions : int;
  assert_executions : int;
  deadlocks : int;
  step_limit_hits : int;
  distinct_races : Race.report list;  (** deduplicated across executions *)
  total_atomic_ops : int;
  total_na_ops : int;
  max_graph_size : int;
  mean_steps : float;
}

(** Detection rate in percent, as reported in Tables 2 and Section 8.1. *)
val detection_rate : summary -> float

(** [run ~config ~iters f] executes [f] [iters] times, deriving a fresh
    seed for each execution from [config.seed].  The optional C11obs
    handles are shared across all executions of the session (events fan
    out continuously; metrics and span timings aggregate per session). *)
val run :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  config:Engine.config ->
  iters:int ->
  (unit -> unit) ->
  summary

(** [run_collect ~config ~iters f] also collects the observation returned
    by each execution of [f] (read out of plain OCaml state by the caller's
    closure) into a histogram — the litmus-test workhorse. *)
val run_collect :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  config:Engine.config ->
  iters:int ->
  (unit -> 'a) ->
  summary * ('a * int) list

(** [find_buggy ~config ~attempts f] re-runs single executions with fresh
    seeds (derived from [config.seed], on a stream distinct from {!run}'s)
    until one exposes a bug, and returns its outcome.  When [obs] is
    given, its ring is cleared before every attempt, so on [Some _] the
    ring holds exactly the buggy execution's events — ready for
    {!Obs.drain_to_sink} into an NDJSON or pretty sink. *)
val find_buggy :
  ?obs:Obs.t ->
  ?profile:Profile.t ->
  ?metrics:Metrics.t ->
  config:Engine.config ->
  attempts:int ->
  (unit -> unit) ->
  Engine.outcome option

(** JSON form of a summary (the ["summary"] object of the CLI's [--json]
    document). *)
val summary_to_json : summary -> Jsonx.t

val pp_summary : Format.formatter -> summary -> unit
