(** Static {!Progir} models of the lint-relevant workloads (the seeded-bug
    studies of Section 8.1), one loop iteration per role — loops only
    repeat the same access classes, so the per-location verdict of one
    iteration is the verdict of any number.

    Calibration targets the lint test suite asserts: the buggy versioned
    seqlock and both rwlock variants come out [Potential_race] (a
    CAS-based lock is beyond the lockset analysis), the buggy variants
    additionally earn [seqlock-missing-fence] / [relaxed-publication]
    hits, and the fence-correct seqlock is completely clean. *)

val all : (string * Progir.program) list
(** ["seqlock-versioned-correct"], ["seqlock-versioned-buggy"],
    ["rwlock-correct"], ["rwlock-buggy"]. *)

val find : string -> Progir.program option
