(** Catalogue of all benchmark workloads: the injected-bug benchmarks of
    Section 8.1, the data-structure suite of Section 8.3 (Table 2) and the
    application analogues of Section 8.2 (Tables 1/3/4). *)

type category = Injected | Data_structure | Application

type t = {
  name : string;
  description : string;
  category : category;
  run : variant:Variant.t -> scale:int -> unit -> unit;
  default_scale : int;  (** scale used by the Table 2 / Section 8.1 rates *)
  bench_scale : int;  (** scale used by the timing benchmarks *)
  scale_tier : int option;
      (** paper-scale tier: a scale driving one execution into the ≥ 1M
          shared-memory-op range (with the aggressive pruner and streaming
          certification always on); [None] for workloads whose step or
          location count grows too fast with scale to be usable there *)
}

val all : t list
val find : string -> t option

(** The workloads with a [scale_tier] scale, in registry order. *)
val scale_tier : t list
val data_structures : t list
val injected : t list
val applications : t list
