(** Versioned-read cache bucket (seqlock-style lock-free read).

    Models the versioned-read consistency study referenced in SNIPPETS.md:
    a single writer repeatedly updates a key/value tuple guarded by a
    version word; readers read the tuple without locking and use a
    double read of the version to detect concurrent writes.

    The buggy variant is the pattern that study found suspicious —
    relaxed first read, relaxed second read, {e no fence} — over {e plain
    non-atomic} data.  Nothing orders the data reads with the writer's
    data writes: under the C11 model every successful read races (the
    discarded-read trick is undefined behaviour, per Boehm's "Can
    seqlocks get along with programming language memory models?"), and
    the broken validation admits torn reads.  The race detector must flag
    it — it is registered as a negative case.

    The correct variant is the study's working pattern mapped onto legal
    C11: the tuple words become relaxed atomics (no data race by
    definition), the writer separates the odd version store from the data
    writes with a release fence, and the reader validates through an
    acquire fence after the first version read plus a seq_cst fence
    before the second — the fences carry all the synchronisation, every
    data access stays relaxed. *)

open Memorder

type t = {
  version : C11.atomic;
  (* correct variant: the tuple as relaxed atomics *)
  a_key : C11.atomic;
  a_value : C11.atomic;
  (* buggy variant: the tuple as plain words *)
  na_key : C11.naloc;
  na_value : C11.naloc;
}

let create () =
  {
    version = C11.Atomic.make ~name:"vcache.version" 0;
    a_key = C11.Atomic.make ~name:"vcache.key" 0;
    a_value = C11.Atomic.make ~name:"vcache.value" 0;
    na_key = C11.Nonatomic.make ~name:"vcache.key" 0;
    na_value = C11.Nonatomic.make ~name:"vcache.value" 0;
  }

(* Single writer: bump to odd, write the tuple, bump back to even. *)
let write ~variant t g =
  let c = C11.Atomic.load ~mo:Relaxed t.version in
  match (variant : Variant.t) with
  | Correct ->
    C11.Atomic.store ~mo:Relaxed t.version (c + 1);
    C11.Fence.release ();
    C11.Atomic.store ~mo:Relaxed t.a_key g;
    C11.Atomic.store ~mo:Relaxed t.a_value g;
    C11.Atomic.store ~mo:Release t.version (c + 2)
  | Buggy ->
    C11.Atomic.store ~mo:Relaxed t.version (c + 1);
    C11.Nonatomic.write t.na_key g;
    C11.Nonatomic.write t.na_value g;
    C11.Atomic.store ~mo:Relaxed t.version (c + 2)

(* Lock-free read; [Some (k, v)] when the version validated. *)
let read ~variant t =
  let s1 = C11.Atomic.load ~mo:Relaxed t.version in
  if s1 land 1 = 1 then None
  else
    match (variant : Variant.t) with
    | Correct ->
      (* acquire fence: synchronise with the release fence / release
         store the relaxed [s1] observed, ordering the data reads after
         the writes of generation [s1] *)
      C11.Fence.acquire ();
      let k = C11.Atomic.load ~mo:Relaxed t.a_key in
      let v = C11.Atomic.load ~mo:Relaxed t.a_value in
      C11.Fence.seq_cst ();
      let s2 = C11.Atomic.load ~mo:Relaxed t.version in
      if s1 = s2 then Some (k, v) else None
    | Buggy ->
      (* the study's "(??)" pattern: relaxed double read, no fence, over
         plain data *)
      let k = C11.Nonatomic.read t.na_key in
      let v = C11.Nonatomic.read t.na_value in
      let s2 = C11.Atomic.load ~mo:Relaxed t.version in
      if s1 = s2 then Some (k, v) else None

let run ~variant ~scale () =
  let cache = create () in
  let writer =
    C11.Thread.spawn (fun () ->
        for g = 1 to scale do
          write ~variant cache g
        done)
  in
  let reader () =
    for _ = 1 to scale do
      match read ~variant cache with
      | Some (k, v) ->
        C11.assert_that (k = v) "seqlock-versioned: torn read (key <> value)"
      | None -> C11.Thread.yield ()
    done
  in
  let r1 = C11.Thread.spawn reader in
  let r2 = C11.Thread.spawn reader in
  C11.Thread.join writer;
  C11.Thread.join r1;
  C11.Thread.join r2
