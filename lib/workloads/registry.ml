type category = Injected | Data_structure | Application

type t = {
  name : string;
  description : string;
  category : category;
  run : variant:Variant.t -> scale:int -> unit -> unit;
  default_scale : int;
  bench_scale : int;
  scale_tier : int option;
      (* paper-scale tier: a scale driving one execution into the >= 1M
         shared-memory-op range with bounded per-location store sets (so
         the aggressive pruner keeps the engine linear); None = the
         workload's step count or location count grows too fast with
         scale to be usable there *)
}

let all =
  [
    {
      name = "seqlock";
      description = "seqlock with a relaxed counter increment (Section 8.1)";
      category = Injected;
      run = Seqlock.run;
      default_scale = 4;
      bench_scale = 64;
      scale_tier = None;
    };
    {
      name = "seqlock-versioned";
      description =
        "versioned-read cache with a relaxed double read, no fence, over \
         plain data (negative case: every successful read races)";
      category = Injected;
      run = Seqlock_versioned.run;
      default_scale = 4;
      bench_scale = 64;
      scale_tier = None;
    };
    {
      name = "rwlock";
      description =
        "reader-writer lock whose write-lock uses relaxed atomics \
         (Section 8.1)";
      category = Injected;
      run = Rwlock_bug.run;
      default_scale = 3;
      bench_scale = 48;
      scale_tier = None;
    };
    {
      name = "barrier";
      description = "sense-reversing spinning barrier";
      category = Data_structure;
      run = Barrier.run;
      default_scale = 2;
      bench_scale = 32;
      scale_tier = None;
    };
    {
      name = "chase-lev-deque";
      description = "Chase-Lev work-stealing deque";
      category = Data_structure;
      run = Chase_lev.run;
      default_scale = 6;
      bench_scale = 64;
      scale_tier = None;
    };
    {
      name = "dekker-fences";
      description = "Dekker mutual exclusion with seq_cst fences";
      category = Data_structure;
      run = Dekker.run;
      default_scale = 4;
      bench_scale = 64;
      scale_tier = None;
    };
    {
      name = "linuxrwlocks";
      description = "Linux-kernel-style reader-writer spinlock";
      category = Data_structure;
      run = Linuxrwlocks.run;
      default_scale = 3;
      bench_scale = 48;
      scale_tier = None;
    };
    {
      name = "mcs-lock";
      description = "MCS queue lock";
      category = Data_structure;
      run = Mcs_lock.run;
      default_scale = 3;
      bench_scale = 32;
      scale_tier = Some 22000;
    };
    {
      name = "mpmc-queue";
      description = "bounded multi-producer multi-consumer queue";
      category = Data_structure;
      run = Mpmc_queue.run;
      default_scale = 3;
      bench_scale = 24;
      scale_tier = Some 35000;
    };
    {
      name = "ms-queue";
      description = "Michael-Scott non-blocking queue";
      category = Data_structure;
      run = Ms_queue.run;
      default_scale = 4;
      bench_scale = 32;
      scale_tier = None;
    };
    {
      name = "treiber-stack";
      description = "Treiber lock-free stack (extra suite member)";
      category = Data_structure;
      run = Treiber_stack.run;
      default_scale = 4;
      bench_scale = 48;
      scale_tier = None;
    };
    {
      name = "spsc-queue";
      description = "single-producer single-consumer bounded queue (extra)";
      category = Data_structure;
      run = Spsc_queue.run;
      default_scale = 6;
      bench_scale = 64;
      scale_tier = Some 95000;
    };
    {
      name = "silo";
      description = "OCC in-memory storage engine with a volatile spinlock";
      category = Application;
      run = Silo_lite.run;
      default_scale = 6;
      bench_scale = 300;
      scale_tier = None;
    };
    {
      name = "gdax";
      description = "order book over a lock-free list with reader iteration";
      category = Application;
      run = Gdax_lite.run;
      default_scale = 6;
      bench_scale = 200;
      scale_tier = None;
    };
    {
      name = "mabain";
      description = "key-value store with an asynchronous writer thread";
      category = Application;
      run = Mabain_lite.run;
      default_scale = 4;
      bench_scale = 300;
      scale_tier = None;
    };
    {
      name = "iris";
      description = "asynchronous logger over an SPSC lock-free ring buffer";
      category = Application;
      run = Iris_lite.run;
      default_scale = 6;
      bench_scale = 250;
      scale_tier = None;
    };
    {
      name = "jsbench";
      description = "JavaScript-engine-like mutator with a GC helper thread";
      category = Application;
      run = Jsbench_lite.run;
      default_scale = 2;
      bench_scale = 8;
      scale_tier = None;
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) all
let by_category c = List.filter (fun t -> t.category = c) all
let data_structures = by_category Data_structure
let injected = by_category Injected
let applications = by_category Application
let scale_tier = List.filter (fun t -> t.scale_tier <> None) all
