type category = Injected | Data_structure | Application

type t = {
  name : string;
  description : string;
  category : category;
  run : variant:Variant.t -> scale:int -> unit -> unit;
  default_scale : int;
  bench_scale : int;
}

let all =
  [
    {
      name = "seqlock";
      description = "seqlock with a relaxed counter increment (Section 8.1)";
      category = Injected;
      run = Seqlock.run;
      default_scale = 4;
      bench_scale = 64;
    };
    {
      name = "seqlock-versioned";
      description =
        "versioned-read cache with a relaxed double read, no fence, over \
         plain data (negative case: every successful read races)";
      category = Injected;
      run = Seqlock_versioned.run;
      default_scale = 4;
      bench_scale = 64;
    };
    {
      name = "rwlock";
      description =
        "reader-writer lock whose write-lock uses relaxed atomics \
         (Section 8.1)";
      category = Injected;
      run = Rwlock_bug.run;
      default_scale = 3;
      bench_scale = 48;
    };
    {
      name = "barrier";
      description = "sense-reversing spinning barrier";
      category = Data_structure;
      run = Barrier.run;
      default_scale = 2;
      bench_scale = 32;
    };
    {
      name = "chase-lev-deque";
      description = "Chase-Lev work-stealing deque";
      category = Data_structure;
      run = Chase_lev.run;
      default_scale = 6;
      bench_scale = 64;
    };
    {
      name = "dekker-fences";
      description = "Dekker mutual exclusion with seq_cst fences";
      category = Data_structure;
      run = Dekker.run;
      default_scale = 4;
      bench_scale = 64;
    };
    {
      name = "linuxrwlocks";
      description = "Linux-kernel-style reader-writer spinlock";
      category = Data_structure;
      run = Linuxrwlocks.run;
      default_scale = 3;
      bench_scale = 48;
    };
    {
      name = "mcs-lock";
      description = "MCS queue lock";
      category = Data_structure;
      run = Mcs_lock.run;
      default_scale = 3;
      bench_scale = 32;
    };
    {
      name = "mpmc-queue";
      description = "bounded multi-producer multi-consumer queue";
      category = Data_structure;
      run = Mpmc_queue.run;
      default_scale = 3;
      bench_scale = 24;
    };
    {
      name = "ms-queue";
      description = "Michael-Scott non-blocking queue";
      category = Data_structure;
      run = Ms_queue.run;
      default_scale = 4;
      bench_scale = 32;
    };
    {
      name = "treiber-stack";
      description = "Treiber lock-free stack (extra suite member)";
      category = Data_structure;
      run = Treiber_stack.run;
      default_scale = 4;
      bench_scale = 48;
    };
    {
      name = "spsc-queue";
      description = "single-producer single-consumer bounded queue (extra)";
      category = Data_structure;
      run = Spsc_queue.run;
      default_scale = 6;
      bench_scale = 64;
    };
    {
      name = "silo";
      description = "OCC in-memory storage engine with a volatile spinlock";
      category = Application;
      run = Silo_lite.run;
      default_scale = 6;
      bench_scale = 300;
    };
    {
      name = "gdax";
      description = "order book over a lock-free list with reader iteration";
      category = Application;
      run = Gdax_lite.run;
      default_scale = 6;
      bench_scale = 200;
    };
    {
      name = "mabain";
      description = "key-value store with an asynchronous writer thread";
      category = Application;
      run = Mabain_lite.run;
      default_scale = 4;
      bench_scale = 300;
    };
    {
      name = "iris";
      description = "asynchronous logger over an SPSC lock-free ring buffer";
      category = Application;
      run = Iris_lite.run;
      default_scale = 6;
      bench_scale = 250;
    };
    {
      name = "jsbench";
      description = "JavaScript-engine-like mutator with a GC helper thread";
      category = Application;
      run = Jsbench_lite.run;
      default_scale = 2;
      bench_scale = 8;
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) all
let by_category c = List.filter (fun t -> t.category = c) all
let data_structures = by_category Data_structure
let injected = by_category Injected
let applications = by_category Application
