(* Static models of the lint-relevant workloads: one loop iteration of
   each role transcribed into the Progir IR.  Loops only repeat the same
   access classes — the per-location access set (and so the verdict) of
   one iteration is the access set of any number — so a loop-free body
   is a faithful abstraction for lint purposes.

   The rwlock's guarded words are modeled as plain data: the workload
   declares them atomic only so the dynamic detector can observe torn
   reads without UB, but semantically they are payload protected by a
   homemade CAS lock — exactly the publication structure the lint rules
   reason about.  Both variants come out Potential_race (a CAS-based
   lock is beyond the lockset analysis — the documented conservative
   direction); only the buggy one earns a relaxed-publication hit. *)

open Progir

let rlx = Memorder.Relaxed
let acq = Memorder.Acquire
let rel = Memorder.Release

let prog ?(na = 0) ~atomics bodies =
  {
    p_seed = 0L;
    p_profile = Mixed_atomicity;
    p_atomic_locs = atomics;
    p_na_locs = na;
    p_mutexes = 0;
    p_threads = Array.of_list (List.map Array.of_list bodies);
  }

let ld loc mo = Load { loc; mo }
let st loc mo value = Store { loc; mo; value }

(* seqlock-versioned, correct variant: version = a0, key = a1,
   value = a2; all data relaxed atomics, fences carry the
   synchronisation.  Statically race-free and hygiene-clean. *)
let seqlock_versioned_correct =
  let writer =
    [ ld 0 rlx; st 0 rlx 1; Fence rel; st 1 rlx 1; st 2 rlx 1; st 0 rel 2 ]
  in
  let reader =
    [ ld 0 rlx; Fence acq; ld 1 rlx; ld 2 rlx; Fence Memorder.Seq_cst; ld 0 rlx ]
  in
  prog ~atomics:3 [ []; writer; reader; reader ]

(* seqlock-versioned, buggy variant: version = a0, plain key/value =
   n0/n1, relaxed double read with no fence — Potential_race on the
   data plus seqlock-missing-fence and relaxed-publication hits. *)
let seqlock_versioned_buggy =
  let writer =
    [
      ld 0 rlx;
      st 0 rlx 1;
      Na_write { na = 0; value = 1 };
      Na_write { na = 1; value = 1 };
      st 0 rlx 2;
    ]
  in
  let reader = [ ld 0 rlx; Na_read { na = 0 }; Na_read { na = 1 }; ld 0 rlx ] in
  prog ~atomics:1 ~na:2 [ []; writer; reader; reader ]

(* rwlock: lock word = a0, guarded payload = n0/n1.  The writer takes
   the lock with a CAS, writes the payload, releases with an exchange;
   readers enter with an acquire CAS and leave with a release
   fetch-sub. *)
let rwlock ~variant =
  let wlock_mo, wunlock_mo =
    match (variant : Variant.t) with
    | Correct -> (acq, rel)
    | Buggy -> (rlx, rlx)
  in
  let writer =
    [
      Cas { loc = 0; mo = wlock_mo; expected = 0; desired = -1 };
      Na_write { na = 0; value = 1 };
      Na_write { na = 1; value = 1 };
      Xchg { loc = 0; mo = wunlock_mo; value = 0 };
    ]
  in
  let reader =
    [
      ld 0 rlx;
      Cas { loc = 0; mo = acq; expected = 0; desired = 1 };
      Na_read { na = 0 };
      Na_read { na = 1 };
      Add { loc = 0; mo = rel; delta = -1 };
    ]
  in
  prog ~atomics:1 ~na:2 [ []; writer; reader; reader ]

let all =
  [
    ("seqlock-versioned-correct", seqlock_versioned_correct);
    ("seqlock-versioned-buggy", seqlock_versioned_buggy);
    ("rwlock-correct", rwlock ~variant:Variant.Correct);
    ("rwlock-buggy", rwlock ~variant:Variant.Buggy);
  ]

let find name = List.assoc_opt name all
