(** C11svc — the multi-process campaign fabric.

    Domain-level parallelism (lib/par) is bound by one process and one
    runtime; campaign scale means going wider.  This module runs a
    campaign as a {e coordinator} that spawns worker {e processes} —
    fork/exec of the c11test binary in its hidden [worker] mode — hands
    each a leapfrog shard of the execution index space, and streams
    per-shard results back over a pipe as NDJSON.  The coordinator folds
    the shards with the same {!Par.Merge} lowest-index-wins algebra the
    in-process runners use, so a [--workers N] campaign's summary,
    histogram, coverage and findings are byte-identical to [-j 1] for
    every N.

    {b Wire protocol} (one JSON document per line on the worker's
    stdout):

    - [{"schema":"c11svc-v1","kind":"hello","worker":w,"pid":p}] — the
      worker acknowledges its shard claim;
    - [c11progress-v1] heartbeat records — the worker's cumulative
      shard-local counts, aggregated by the coordinator into the single
      campaign progress stream;
    - [{"schema":"c11svc-v1","kind":"shard","worker":w,"payload":B64}] —
      the shard result: base64 of the [Marshal]-encoded closure-free
      shard value ({!Tester.shard} list or {!Fuzz.shard} list);
    - [{"schema":"c11svc-v1","kind":"done","worker":w}] — end of stream.

    The spec a worker runs arrives the same way on its stdin (one base64
    line).  A worker that dies before its [shard] record (crash, kill,
    exec failure) has its range re-claimed once by a respawned process;
    if that dies too, the range is recorded in {!stats.st_failed} (audited
    with {!Par.Merge.check_ranges}, ascending worker order) and the
    degraded summary is the deterministic merge of the surviving shards —
    never a hang, never silent loss.

    {b Result cache}: with [~cache], each shard's outcome is stored
    content-addressed under {!cache_key} — a digest of the campaign
    fingerprint (workload/program identity, base seed, full engine
    configuration), the shard coordinates and a code-version salt — so a
    warm re-run of an identical campaign spawns no workers, performs zero
    engine executions and reconstructs the exact merged summary from
    cached records. *)

(** What the campaign runs.  [config] must be fully resolved (seed,
    pruning, certification, coverage): workers reconstruct their engine
    from it verbatim. *)
type campaign =
  | Run_c of {
      workload : string;  (** {!Registry} name *)
      buggy : bool;
      scale : int;
      config : Engine.config;
      iters : int;
    }
  | Litmus_c of { name : string; config : Engine.config; iters : int }
  | Fuzz_c of {
      cfg : Fuzz.campaign_cfg;
      coverage : bool;
      range : (int * int) option;
          (** [Some (lo, hi)] scopes the campaign to global program
              indices [lo, hi) — one corpus admission round; campaign
              entry points pass [None].  With [cfg.c_corpus] set and
              [range = None], {!run_campaign} runs the corpus wave
              driver: one ranged fan-out per admission round with the
              {!Fuzz.corpus_absorb} barrier between waves, merged once —
              byte-identical to the in-process round loop. *)
    }  (** [cfg.c_jobs] is ignored; process fan-out replaces it *)
  | Sweep_c of { sw_family : string; sw_iters : int; sw_seed : int64 }
      (** a {!Sweep} memory-order matrix: the flattened cells x iters
          index space is leapfrogged exactly like execution indices *)
  | Lint_c of {
      lt_targets : string list;
          (** named {!Lmodel}/{!Wmodel} targets, one work item each *)
      lt_programs : int;
          (** generated programs appended after the named targets; item
              [i >= length lt_targets] analyzes the program generated
              from [Rng.substream lt_seed ~index:(i - length lt_targets)] *)
      lt_seed : int64;
      lt_gen : Fuzz.gen_cfg;
    }  (** pure static analysis — no engine executions at all *)

(** Merged campaign result, same observables as the in-process runners. *)
type merged =
  | M_run of Tester.summary
  | M_litmus of Tester.summary * (Litmus.outcome * int) list
      (** histogram in first-occurrence order (as {!Tester.run_collect}) *)
  | M_fuzz of Fuzz.report
  | M_sweep of Sweep.result
  | M_lint of (int * Lint.result) list
      (** ascending work-item index; named targets first, then generated
          programs labelled ["gen:<k>"] *)

(** [lint_resolve name] finds the static model behind a named lint
    target: the {!Lmodel} litmus catalog first, then the {!Wmodel}
    workload models. *)
val lint_resolve : string -> Progir.program option

(** [lint_item ~targets ~gen ~seed i] analyzes lint work item [i]:
    [targets.(i)] when [i] is in range (raising [Invalid_argument] on an
    unknown name — campaign entry points validate first), otherwise the
    generated program of substream index [i - Array.length targets].
    Pure, so any runner — in-process domains or the process fabric —
    computes the identical result for the same index. *)
val lint_item :
  targets:string array -> gen:Fuzz.gen_cfg -> seed:int64 -> int -> Lint.result

(** One leapfrog shard of lint work items ([start], [start+stride], ...
    below [total]), ticking [progress] per item — the unit both the
    in-process [c11test lint] runner and the fabric workers are built
    from, so their merged results agree byte-for-byte. *)
val lint_shard :
  progress:Progress.t ->
  targets:string array ->
  gen:Fuzz.gen_cfg ->
  seed:int64 ->
  total:int ->
  start:int ->
  stride:int ->
  (int * Lint.result) list

type stats = {
  st_workers : int;  (** worker count after clamping to the total *)
  st_spawned : int;  (** processes actually spawned (incl. re-claims) *)
  st_failed : int list;
      (** worker indices whose shard range was lost after one re-claim,
          ascending — non-empty means the summary is degraded *)
  st_executions_run : int;
      (** engine executions performed by workers this run (0 on an
          all-hit warm cache replay) *)
  st_cache : Cache.stats option;
}

val stats_to_json : stats -> Jsonx.t

(** Planned executions (or fuzz programs) of a campaign. *)
val total : campaign -> int

(** [cache_key ~exe ~workers ~jobs ~worker c] is the content address of
    worker [worker]'s shard: the MD5 of a canonical JSON document naming
    the campaign fingerprint (kind, workload/litmus/generator identity,
    base seed, every engine-configuration field), the shard coordinates
    [(worker, workers, jobs, total)] and the code-version salt — the MD5
    of the worker executable at [exe], computed once per process.  Two
    campaigns share an entry iff every execution either would run is
    identical. *)
val cache_key :
  exe:string -> workers:int -> jobs:int -> worker:int -> campaign -> string

(** Best guess at the c11test binary for spawning workers: the running
    executable when it {e is} c11test, otherwise [bin/c11test.exe]
    resolved against the executable's directory and the build tree (for
    tests and the bench harness).  [None] when nothing exists. *)
val locate_exe : unit -> string option

(** [run_campaign ~workers ~jobs c] coordinates the campaign and returns
    the merged result and run statistics.

    @param exe worker binary (default {!locate_exe}; [Error] if none)
    @param cache consult/populate this result cache per shard
    @param progress the campaign's single progress handle: worker
           heartbeats are aggregated into it and it receives the exact
           merged [final] record
    @param kill test-only fault injection [(worker, attempts)]: the
           worker with that index exits uncleanly on its first [attempts]
           claims — [(w, 1)] exercises re-claim recovery, [(w, 2)] the
           deterministic degraded summary
    @param workers worker processes ([>= 1]; clamped to the total)
    @param jobs domains {e inside} each worker (the in-process leapfrog
           nests under the process-level one)

    [Error msg] only for environmental failures (no executable, spawn
    failure, malformed payload) — partial worker loss degrades instead. *)
val run_campaign :
  ?exe:string ->
  ?cache:Cache.t ->
  ?progress:Progress.t ->
  ?kill:int * int ->
  workers:int ->
  jobs:int ->
  campaign ->
  (merged * stats, string) result

(** The worker-mode entry point behind [c11test worker]: decode the spec
    line read from stdin, run the assigned shard(s), stream protocol
    records to stdout.  Returns the process exit code. *)
val worker_main : string -> int
