(** Content-addressed result cache for campaign shards.

    A shard's outcome is a pure function of (campaign fingerprint,
    per-index seeds, engine configuration, code version) — see
    {!Svc.cache_key} for the digest definition — so it can be stored once
    and replayed forever: a warm re-run of an identical campaign performs
    zero engine executions and reconstructs the exact merged summary from
    the cached records.

    Entries live under [dir/ab/cdef....shard] (first digest byte as a fan
    directory).  Writes go through a temp file + atomic rename, so
    concurrent campaigns over one cache directory never observe a torn
    entry; a corrupt or truncated entry reads as a miss and is deleted.
    Values are stored with [Marshal] (shards are closure-free plain data)
    behind a header line carrying the format version and the full key —
    both are verified on load, and the cache key itself is salted with a
    digest of the executable, so a rebuilt binary can never replay a stale
    entry (which also makes the [Marshal] round-trip safe). *)

type t

type stats = {
  hits : int;
  misses : int;
  stores : int;
  hit_bytes : int;  (** payload bytes replayed from the cache *)
  store_bytes : int;  (** payload bytes written to the cache *)
}

(** [$XDG_CACHE_HOME/c11test] or [~/.cache/c11test]. *)
val default_dir : unit -> string

(** Create [dir] (and parents) if needed and probe that it is writable;
    [Error msg] otherwise — the CLI turns that into a usage error
    (exit 2) before any campaign work starts. *)
val open_dir : string -> (t, string) result

val dir : t -> string

(** [lookup t ~key] replays the entry stored under [key], or [None].
    Unreadable, version-skewed or corrupt entries are misses (and are
    removed). *)
val lookup : t -> key:string -> 'a option

(** [store t ~key v] persists [v] under [key] (atomic rename; last writer
    wins). *)
val store : t -> key:string -> 'a -> unit

val stats : t -> stats
val stats_to_json : stats -> Jsonx.t
