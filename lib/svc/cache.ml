type t = {
  c_dir : string;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_stores : int;
  mutable c_hit_bytes : int;
  mutable c_store_bytes : int;
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  hit_bytes : int;
  store_bytes : int;
}

let magic = "c11svc-cache-v1"

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "c11test"
  | _ ->
    let home = Option.value ~default:"." (Sys.getenv_opt "HOME") in
    Filename.concat (Filename.concat home ".cache") "c11test"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  match
    mkdir_p dir;
    (* probe writability now: an unwritable cache is a usage error the
       caller reports before the campaign starts, not after *)
    let probe = Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ())) in
    let oc = open_out probe in
    close_out oc;
    Sys.remove probe
  with
  | () ->
    Ok
      {
        c_dir = dir;
        c_hits = 0;
        c_misses = 0;
        c_stores = 0;
        c_hit_bytes = 0;
        c_store_bytes = 0;
      }
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))

let dir t = t.c_dir

let path_of t ~key =
  (* two-hex-digit fan directory keeps any one directory small *)
  let fan = String.sub key 0 2 in
  let rest = String.sub key 2 (String.length key - 2) in
  Filename.concat (Filename.concat t.c_dir fan) (rest ^ ".shard")

let lookup (type a) t ~key : a option =
  let path = path_of t ~key in
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if input_line ic <> magic then failwith "bad magic";
        if input_line ic <> key then failwith "key mismatch";
        let body_pos = pos_in ic in
        let len = in_channel_length ic - body_pos in
        let bytes = really_input_string ic len in
        (Marshal.from_string bytes 0 : a), len)
  in
  match read () with
  | v, len ->
    t.c_hits <- t.c_hits + 1;
    t.c_hit_bytes <- t.c_hit_bytes + len;
    Some v
  | exception Sys_error _ ->
    t.c_misses <- t.c_misses + 1;
    None
  | exception _ ->
    (* corrupt / truncated / version-skewed entry: a miss, and remove it
       so the slot heals on the next store *)
    (try Sys.remove path with Sys_error _ -> ());
    t.c_misses <- t.c_misses + 1;
    None

let store t ~key v =
  let path = path_of t ~key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.c_stores
  in
  let body = Marshal.to_string v [] in
  let oc = open_out_bin tmp in
  (match
     output_string oc magic;
     output_char oc '\n';
     output_string oc key;
     output_char oc '\n';
     output_string oc body;
     close_out oc
   with
  | () -> Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  t.c_stores <- t.c_stores + 1;
  t.c_store_bytes <- t.c_store_bytes + String.length body

let stats t =
  {
    hits = t.c_hits;
    misses = t.c_misses;
    stores = t.c_stores;
    hit_bytes = t.c_hit_bytes;
    store_bytes = t.c_store_bytes;
  }

let stats_to_json s =
  Jsonx.Obj
    [
      ("hits", Jsonx.Int s.hits);
      ("misses", Jsonx.Int s.misses);
      ("stores", Jsonx.Int s.stores);
      ("hit_bytes", Jsonx.Int s.hit_bytes);
      ("store_bytes", Jsonx.Int s.store_bytes);
    ]
