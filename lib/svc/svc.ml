(* C11svc — multi-process campaign fabric.  See svc.mli for the protocol
   overview.  Design constraints, in order:

   1. Determinism: the merged observables of a --workers N campaign are
      byte-identical to -j 1.  Workers therefore ship the *same* shard
      values the in-process runners merge ({!Tester.shard} /
      {!Fuzz.shard} — closure-free plain data, exact under [Marshal]),
      and the coordinator folds them with the same {!Par.Merge} algebra.
   2. No partial-result ambiguity: a worker's results count only after
      its [shard] record arrived intact; a worker that dies earlier
      contributes nothing, its range is re-claimed once, and a second
      death is recorded as a failed range ({!Par.Merge.check_ranges}
      order) in an otherwise deterministic degraded merge.
   3. Replayability: a shard is a pure function of (campaign fingerprint,
      shard coordinates, code version), so the same bytes the wire
      carries are what the content-addressed cache stores. *)

type campaign =
  | Run_c of {
      workload : string;
      buggy : bool;
      scale : int;
      config : Engine.config;
      iters : int;
    }
  | Litmus_c of { name : string; config : Engine.config; iters : int }
  | Fuzz_c of {
      cfg : Fuzz.campaign_cfg;
      coverage : bool;
      range : (int * int) option;
          (* [Some (lo, hi)]: probe global program indices [lo, hi) only —
             how the corpus wave driver scopes one admission round.
             [None] is the whole campaign. *)
    }
  | Sweep_c of { sw_family : string; sw_iters : int; sw_seed : int64 }
  | Lint_c of {
      lt_targets : string list;
      lt_programs : int;
      lt_seed : int64;
      lt_gen : Fuzz.gen_cfg;
    }

type merged =
  | M_run of Tester.summary
  | M_litmus of Tester.summary * (Litmus.outcome * int) list
  | M_fuzz of Fuzz.report
  | M_sweep of Sweep.result
  | M_lint of (int * Lint.result) list

type stats = {
  st_workers : int;
  st_spawned : int;
  st_failed : int list;
  st_executions_run : int;
  st_cache : Cache.stats option;
}

let stats_to_json s =
  Jsonx.Obj
    ([
       ("workers", Jsonx.Int s.st_workers);
       ("spawned", Jsonx.Int s.st_spawned);
       ( "failed_ranges",
         Jsonx.List (List.map (fun w -> Jsonx.Int w) s.st_failed) );
       ("executions_run", Jsonx.Int s.st_executions_run);
     ]
    @
    match s.st_cache with
    | None -> []
    | Some c -> [ ("cache", Cache.stats_to_json c) ])

let total = function
  | Run_c { iters; _ } | Litmus_c { iters; _ } -> iters
  | Fuzz_c { cfg; range; _ } -> (
    match range with
    | Some (lo, hi) -> hi - lo
    | None -> cfg.Fuzz.c_programs)
  | Sweep_c { sw_family; sw_iters; _ } -> (
    match Sweep.find sw_family with
    | Some family -> Sweep.total ~family ~iters:sw_iters
    | None -> 0)
  | Lint_c { lt_targets; lt_programs; _ } ->
    List.length lt_targets + lt_programs

(* ------------------------------------------------------------------ *)
(* Base64 (standard alphabet, padded): the line-oriented wire protocol
   and the spec hand-off need binary-safe single-line payloads, and no
   third-party codec is available in the build environment. *)

let b64_chars =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let emit v = Buffer.add_char out b64_chars.[v land 63] in
  let i = ref 0 in
  while !i + 2 < n do
    let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit (v lsr 18);
    emit (v lsr 12);
    emit (v lsr 6);
    emit v;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let v = byte !i lsl 16 in
    emit (v lsr 18);
    emit (v lsr 12);
    Buffer.add_string out "=="
  | 2 ->
    let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
    emit (v lsr 18);
    emit (v lsr 12);
    emit (v lsr 6);
    Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let b64_value = lazy (
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) b64_chars;
  t)

let b64_decode s =
  let t = Lazy.force b64_value in
  let out = Buffer.create (String.length s * 3 / 4) in
  let acc = ref 0 and bits = ref 0 in
  String.iter
    (fun c ->
      if c <> '=' && c <> '\n' && c <> '\r' then begin
        let v = t.(Char.code c) in
        if v < 0 then failwith "b64_decode: invalid character";
        acc := (!acc lsl 6) lor v;
        bits := !bits + 6;
        if !bits >= 8 then begin
          bits := !bits - 8;
          Buffer.add_char out (Char.chr ((!acc lsr !bits) land 0xff))
        end
      end)
    s;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Campaign fingerprints and the cache key. *)

let sched_fp = function
  | Schedule.Controlled_random { batch_stores } ->
    Printf.sprintf "controlled-random:batch=%b" batch_stores
  | Schedule.Bursty { mean_burst } -> Printf.sprintf "bursty:%d" mean_burst
  | Schedule.Priority { change_points } ->
    Printf.sprintf "priority:%d" change_points
  | Schedule.Round_robin -> "round-robin"

let prune_fp = function
  | Pruner.No_prune -> "none"
  | Pruner.Conservative { interval } ->
    Printf.sprintf "conservative:%d" interval
  | Pruner.Aggressive { window; interval } ->
    Printf.sprintf "aggressive:%d:%d" window interval

(* Every Engine.config field: two campaigns share a cache entry only when
   each execution either would run is identical. *)
let config_fp (c : Engine.config) =
  Jsonx.Obj
    [
      ( "mode",
        Jsonx.String
          (match c.Engine.mode with
          | Execution.Full_c11 -> "full_c11"
          | Execution.Total_mo -> "total_mo") );
      ("sched", Jsonx.String (sched_fp c.Engine.sched));
      ( "volatile",
        Jsonx.String
          (match c.Engine.volatile_mode with
          | Engine.Volatile_atomic mo -> "atomic:" ^ Memorder.to_string mo
          | Engine.Volatile_nonatomic -> "nonatomic") );
      ("prune", Jsonx.String (prune_fp c.Engine.prune));
      ("max_steps", Jsonx.Int c.Engine.max_steps);
      ("seed", Jsonx.String (Int64.to_string c.Engine.seed));
      ("trace_depth", Jsonx.Int c.Engine.trace_depth);
      ("certify", Jsonx.Bool c.Engine.certify);
      ("cert_stream", Jsonx.Bool c.Engine.cert_stream);
      ( "mutation",
        match c.Engine.mutation with
        | None -> Jsonx.Null
        | Some m -> Jsonx.String (Execution.mutation_name m) );
      ("coverage", Jsonx.Bool c.Engine.coverage);
    ]

let campaign_fp = function
  | Run_c { workload; buggy; scale; config; iters } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.String "run");
        ("workload", Jsonx.String workload);
        ("buggy", Jsonx.Bool buggy);
        ("scale", Jsonx.Int scale);
        ("iters", Jsonx.Int iters);
        ("config", config_fp config);
      ]
  | Litmus_c { name; config; iters } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.String "litmus");
        ("name", Jsonx.String name);
        ("iters", Jsonx.Int iters);
        ("config", config_fp config);
      ]
  | Fuzz_c { cfg; coverage; range } ->
    let g = cfg.Fuzz.c_gen in
    Jsonx.Obj
      [
        ("kind", Jsonx.String "fuzz");
        ("programs", Jsonx.Int cfg.Fuzz.c_programs);
        ("seed", Jsonx.String (Int64.to_string cfg.Fuzz.c_seed));
        ("shrink_execs", Jsonx.Int cfg.Fuzz.c_shrink_execs);
        ("lint_execs", Jsonx.Int cfg.Fuzz.c_lint_execs);
        ("threads", Jsonx.Int g.Fuzz.g_threads);
        ("ops", Jsonx.Int g.Fuzz.g_ops);
        ("atomic_locs", Jsonx.Int g.Fuzz.g_atomic_locs);
        ("na_locs", Jsonx.Int g.Fuzz.g_na_locs);
        ("mutexes", Jsonx.Int g.Fuzz.g_mutexes);
        ("profile", Jsonx.String (Fuzz.profile_name g.Fuzz.g_profile));
        ("sc_bias", Jsonx.Int g.Fuzz.g_sc_bias);
        ( "mutation",
          match cfg.Fuzz.c_mutation with
          | None -> Jsonx.Null
          | Some m -> Jsonx.String (Execution.mutation_name m) );
        ("coverage", Jsonx.Bool coverage);
        (* the corpus snapshot is part of what each program index runs, so
           it must be part of the cache identity *)
        ( "corpus",
          match cfg.Fuzz.c_corpus with
          | None -> Jsonx.Null
          | Some pl -> Jsonx.String (Corpus.plan_digest pl) );
        ( "range",
          match range with
          | None -> Jsonx.Null
          | Some (lo, hi) -> Jsonx.List [ Jsonx.Int lo; Jsonx.Int hi ] );
      ]
  | Sweep_c { sw_family; sw_iters; sw_seed } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.String "sweep");
        ("family", Jsonx.String sw_family);
        ("iters", Jsonx.Int sw_iters);
        ("seed", Jsonx.String (Int64.to_string sw_seed));
      ]
  | Lint_c { lt_targets; lt_programs; lt_seed; lt_gen } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.String "lint");
        ("targets", Jsonx.List (List.map (fun t -> Jsonx.String t) lt_targets));
        ("programs", Jsonx.Int lt_programs);
        ("seed", Jsonx.String (Int64.to_string lt_seed));
        ("threads", Jsonx.Int lt_gen.Fuzz.g_threads);
        ("ops", Jsonx.Int lt_gen.Fuzz.g_ops);
        ("atomic_locs", Jsonx.Int lt_gen.Fuzz.g_atomic_locs);
        ("na_locs", Jsonx.Int lt_gen.Fuzz.g_na_locs);
        ("mutexes", Jsonx.Int lt_gen.Fuzz.g_mutexes);
        ("profile", Jsonx.String (Fuzz.profile_name lt_gen.Fuzz.g_profile));
        ("sc_bias", Jsonx.Int lt_gen.Fuzz.g_sc_bias);
      ]

(* Code-version salt: the digest of the worker binary itself.  A rebuilt
   engine gets a fresh cache namespace, which both keeps results honest
   and makes the Marshal round-trip safe. *)
let exe_digests : (string, string) Hashtbl.t = Hashtbl.create 4

let exe_digest exe =
  match Hashtbl.find_opt exe_digests exe with
  | Some d -> d
  | None ->
    let d = Digest.to_hex (Digest.file exe) in
    Hashtbl.add exe_digests exe d;
    d

let cache_key ~exe ~workers ~jobs ~worker c =
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.String "c11svc-cache-key-v1");
        ("code", Jsonx.String (exe_digest exe));
        ("campaign", campaign_fp c);
        ("total", Jsonx.Int (total c));
        ("workers", Jsonx.Int workers);
        ("worker", Jsonx.Int worker);
        ("jobs", Jsonx.Int jobs);
      ]
  in
  Digest.to_hex (Digest.string (Jsonx.to_string doc))

(* ------------------------------------------------------------------ *)
(* Wire records. *)

let schema = "c11svc-v1"

(* What a worker ships back.  The constructor is part of the Marshal
   payload, so a coordinator detects a campaign-kind mismatch (possible
   only via a corrupted cache) instead of misinterpreting bytes. *)
type payload =
  | P_run of unit Tester.shard list
  | P_litmus of Litmus.outcome Tester.shard list
  | P_fuzz of Fuzz.shard list
  | P_sweep of Sweep.shard list
  | P_lint of (int * Lint.result) list list

(* The full job description a worker receives on stdin. *)
type spec = {
  sp_campaign : campaign;
  sp_worker : int;
  sp_workers : int;
  sp_jobs : int;
  sp_progress : bool;
  sp_attempt : int;
  sp_kill : (int * int) option;
}

let encode_spec (s : spec) = b64_encode (Marshal.to_string s [])

let decode_spec line : (spec, string) result =
  match (Marshal.from_string (b64_decode (String.trim line)) 0 : spec) with
  | s -> Ok s
  | exception e -> Error (Printexc.to_string e)

let emit_json oc j =
  output_string oc (Jsonx.to_string j);
  output_char oc '\n';
  flush oc

(* ------------------------------------------------------------------ *)
(* Lint campaigns: one work item per named target (resolved against the
   static litmus/workload model catalogs), then one per generated
   program, each on its own {!Rng.substream} of the campaign seed — the
   same per-index derivation as a fuzz campaign, so index [i] analyzes
   the same program no matter which worker or domain lands on it. *)

let lint_resolve name =
  match Lmodel.find name with Some p -> Some p | None -> Wmodel.find name

let lint_item ~targets ~gen ~seed i =
  let nt = Array.length targets in
  if i < nt then
    let name = targets.(i) in
    match lint_resolve name with
    | Some p -> Lint.analyze ~label:name p
    | None -> invalid_arg (Printf.sprintf "unknown lint target %S" name)
  else
    let k = i - nt in
    let p = Fuzz.generate ~cfg:gen ~seed:(Rng.substream seed ~index:k) in
    Lint.analyze ~label:(Printf.sprintf "gen:%d" k) p

let lint_shard ~progress ~targets ~gen ~seed ~total ~start ~stride =
  let rec go i acc =
    if i >= total then List.rev acc
    else begin
      let r = lint_item ~targets ~gen ~seed i in
      Progress.tick progress ~novel:false ~finding:(not r.Lint.res_race_free);
      go (i + stride) ((i, r) :: acc)
    end
  in
  go start []

(* ------------------------------------------------------------------ *)
(* Worker side. *)

let worker_payload spec progress =
  let w = spec.sp_worker and ws = spec.sp_workers and j = spec.sp_jobs in
  let n = total spec.sp_campaign in
  (* Nested leapfrog: domain [d] of [j] inside worker [w] of [ws] runs
     start = w + d*ws, stride = j*ws — a partition of the worker's global
     indices, so the shard list merges like any other sharding. *)
  let tester_shards ~config f =
    if j = 1 then
      [ Tester.run_shard ~progress ~config ~total:n ~start:w ~stride:ws f ]
    else
      Par.spawn_workers ~jobs:j (fun ~worker ->
          Tester.run_shard ~progress ~config ~total:n
            ~start:(w + (worker * ws))
            ~stride:(j * ws) f)
      |> Array.to_list
  in
  match spec.sp_campaign with
  | Run_c { workload; buggy; scale; config; _ } -> (
    match Registry.find workload with
    | None -> Error (Printf.sprintf "unknown workload %S" workload)
    | Some reg ->
      let variant = if buggy then Variant.Buggy else Variant.Correct in
      Ok (P_run (tester_shards ~config (reg.Registry.run ~variant ~scale))))
  | Litmus_c { name; config; _ } -> (
    match Litmus.find name with
    | None -> Error (Printf.sprintf "unknown litmus test %S" name)
    | Some t -> Ok (P_litmus (tester_shards ~config t.Litmus.run_once)))
  | Fuzz_c { cfg; coverage; range } ->
    (* a ranged campaign (one corpus round) leapfrogs the same way, just
       offset to [lo] and stopped at [hi] *)
    let lo, hi =
      match range with Some r -> r | None -> (0, cfg.Fuzz.c_programs)
    in
    let shards =
      if j = 1 then
        [
          Fuzz.campaign_shard ~coverage ~progress ~stop:hi ~cfg ~start:(lo + w)
            ~stride:ws ();
        ]
      else
        Par.spawn_workers ~jobs:j (fun ~worker ->
            Fuzz.campaign_shard ~coverage ~progress ~stop:hi ~cfg
              ~start:(lo + w + (worker * ws))
              ~stride:(j * ws) ())
        |> Array.to_list
    in
    Ok (P_fuzz shards)
  | Sweep_c { sw_family; sw_iters; sw_seed } -> (
    match Sweep.find sw_family with
    | None -> Error (Printf.sprintf "unknown sweep family %S" sw_family)
    | Some family ->
      let shards =
        if j = 1 then
          [
            Sweep.run_shard ~progress ~family ~iters:sw_iters ~seed:sw_seed
              ~start:w ~stride:ws ();
          ]
        else
          Par.spawn_workers ~jobs:j (fun ~worker ->
              Sweep.run_shard ~progress ~family ~iters:sw_iters ~seed:sw_seed
                ~start:(w + (worker * ws))
                ~stride:(j * ws) ())
          |> Array.to_list
      in
      Ok (P_sweep shards))
  | Lint_c { lt_targets; lt_programs = _; lt_seed; lt_gen } -> (
    match List.find_opt (fun t -> lint_resolve t = None) lt_targets with
    | Some t -> Error (Printf.sprintf "unknown lint target %S" t)
    | None ->
      let targets = Array.of_list lt_targets in
      let shards =
        if j = 1 then
          [
            lint_shard ~progress ~targets ~gen:lt_gen ~seed:lt_seed ~total:n
              ~start:w ~stride:ws;
          ]
        else
          Par.spawn_workers ~jobs:j (fun ~worker ->
              lint_shard ~progress ~targets ~gen:lt_gen ~seed:lt_seed ~total:n
                ~start:(w + (worker * ws))
                ~stride:(j * ws))
          |> Array.to_list
      in
      Ok (P_lint shards))

let worker_main line =
  match decode_spec line with
  | Error msg ->
    Printf.eprintf "c11test worker: malformed spec: %s\n" msg;
    2
  | Ok spec -> (
    emit_json stdout
      (Jsonx.Obj
         [
           ("schema", Jsonx.String schema);
           ("kind", Jsonx.String "hello");
           ("worker", Jsonx.Int spec.sp_worker);
           ("pid", Jsonx.Int (Unix.getpid ()));
         ]);
    (* Test-only fault injection: die uncleanly after claiming the shard
       and before producing any result, like a crashed or killed worker. *)
    (match spec.sp_kill with
    | Some (victim, attempts)
      when victim = spec.sp_worker && spec.sp_attempt <= attempts ->
      exit 70
    | _ -> ());
    let progress =
      if spec.sp_progress then
        Progress.create ~out:stdout ~interval_ns:250_000_000
          ~total:
            (Par.shard_size ~jobs:spec.sp_workers
               ~total:(total spec.sp_campaign) ~worker:spec.sp_worker)
      else Progress.null
    in
    match worker_payload spec progress with
    | Error msg ->
      Printf.eprintf "c11test worker: %s\n" msg;
      2
    | Ok payload ->
      (* parting [final] heartbeat: the worker's exact cumulative counts.
         Interval-throttled heartbeats may lag or never fire on a fast
         shard; the coordinator folds this one like any other, so its
         post-campaign sums are exact. *)
      if spec.sp_progress then Progress.finish progress;
      emit_json stdout
        (Jsonx.Obj
           [
             ("schema", Jsonx.String schema);
             ("kind", Jsonx.String "shard");
             ("worker", Jsonx.Int spec.sp_worker);
             ( "payload",
               Jsonx.String (b64_encode (Marshal.to_string payload [])) );
           ]);
      emit_json stdout
        (Jsonx.Obj
           [
             ("schema", Jsonx.String schema);
             ("kind", Jsonx.String "done");
             ("worker", Jsonx.Int spec.sp_worker);
           ]);
      0)

(* ------------------------------------------------------------------ *)
(* Coordinator side. *)

let locate_exe () =
  let self = Sys.executable_name in
  let base = Filename.basename self in
  if base = "c11test.exe" || base = "c11test" then Some self
  else
    let dir = Filename.dirname self in
    List.find_opt Sys.file_exists
      [
        Filename.concat dir "c11test.exe";
        Filename.concat (Filename.dirname dir) "bin/c11test.exe";
        "../bin/c11test.exe";
        "bin/c11test.exe";
        "_build/default/bin/c11test.exe";
      ]

type wstate = {
  w_index : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr option;
  w_buf : Buffer.t;
  mutable w_payload : payload option;
  mutable w_attempt : int;
  mutable w_failed : bool;
  (* latest cumulative heartbeat counts:
     done, novel, findings, certified_ops, retired_prefix_ops *)
  mutable w_counts : int * int * int * int * int;
}

let spawn ~exe spec =
  let out_r, out_w = Unix.pipe () in
  let in_r, in_w = Unix.pipe () in
  Unix.set_close_on_exec out_r;
  Unix.set_close_on_exec in_w;
  let pid =
    Unix.create_process exe [| exe; "worker" |] in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  (* Ship the spec.  EPIPE here means the child is already dead (e.g. a
     bad binary); the read loop will see EOF and handle it as a crash. *)
  let line = encode_spec spec ^ "\n" in
  (try
     let n = String.length line in
     let written = ref 0 in
     while !written < n do
       written :=
         !written + Unix.write_substring in_w line !written (n - !written)
     done
   with Unix.Unix_error _ -> ());
  (try Unix.close in_w with Unix.Unix_error _ -> ());
  (pid, out_r)

let int_of j k = Option.value ~default:0 (Option.bind (Jsonx.member k j) Jsonx.to_int)

(* One protocol line from worker [st].  Stray non-JSON output is ignored
   (stderr is the diagnostics channel; stdout discipline is on us). *)
let handle_line st ~on_counts line =
  match Jsonx.parse line with
  | Error _ -> ()
  | Ok j -> (
    match Option.bind (Jsonx.member "schema" j) Jsonx.to_str with
    | Some s when s = schema -> (
      match Option.bind (Jsonx.member "kind" j) Jsonx.to_str with
      | Some "shard" -> (
        match Option.bind (Jsonx.member "payload" j) Jsonx.to_str with
        | None -> ()
        | Some b64 -> (
          match (Marshal.from_string (b64_decode b64) 0 : payload) with
          | p -> st.w_payload <- Some p
          | exception _ -> () (* treated as a crash at EOF *)))
      | _ -> () (* hello / done: informational ack *))
    | Some "c11progress-v1" ->
      st.w_counts <-
        ( int_of j "done",
          int_of j "novel",
          int_of j "findings",
          int_of j "certified_ops",
          int_of j "retired_prefix_ops" );
      on_counts ()
    | _ -> ())

let drain_lines st ~on_counts =
  let s = Buffer.contents st.w_buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear st.w_buf;
    Buffer.add_string st.w_buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.iter (fun line ->
           if String.trim line <> "" then handle_line st ~on_counts line)

exception Payload_mismatch

let fuzz_shards =
  List.concat_map (function P_fuzz s -> s | _ -> raise Payload_mismatch)

let merge_payloads campaign payloads =
  let run_shards =
    List.concat_map (function P_run s -> s | _ -> raise Payload_mismatch)
  in
  let litmus_shards =
    List.concat_map (function P_litmus s -> s | _ -> raise Payload_mismatch)
  in
  let sweep_shards =
    List.concat_map (function P_sweep s -> s | _ -> raise Payload_mismatch)
  in
  let lint_shards =
    List.concat_map (function P_lint s -> s | _ -> raise Payload_mismatch)
  in
  match campaign with
  | Run_c _ -> M_run (fst (Tester.merge_shard_list (run_shards payloads)))
  | Litmus_c _ ->
    let summary, hist = Tester.merge_shard_list (litmus_shards payloads) in
    M_litmus (summary, hist)
  | Fuzz_c { cfg; _ } -> M_fuzz (Fuzz.merge_shard_list cfg (fuzz_shards payloads))
  | Sweep_c { sw_family; sw_iters; sw_seed } -> (
    match Sweep.find sw_family with
    | None -> raise Payload_mismatch
    | Some family ->
      M_sweep
        (Sweep.merge ~family ~iters:sw_iters ~seed:sw_seed
           (sweep_shards payloads)))
  | Lint_c _ ->
    (* every index is analyzed exactly once, so the targets are already
       distinct — dedup_indexed here is just the ascending-index merge *)
    M_lint
      (Par.Merge.dedup_indexed
         ~key:(fun (r : Lint.result) -> r.Lint.res_target)
         (lint_shards payloads))

(* Heartbeats from workers are throttled, so the coordinator's counters
   may lag (or, on a fast campaign, never move).  Before [final], set
   them to the exact merged totals — the final record is part of the
   deterministic surface and must match the in-process runners'. *)
let finish_progress progress merged ~observed_cert_ops =
  if Progress.enabled progress then begin
    let done_, novel, findings, certified_ops, retired_prefix_ops =
      match merged with
      | M_run s | M_litmus (s, _) ->
        ( s.Tester.executions,
          Option.value ~default:0
            (Option.map Cov.distinct_shapes s.Tester.coverage),
          List.length s.Tester.distinct_races
          + List.length s.Tester.distinct_cert_violations,
          s.Tester.certified_ops,
          s.Tester.retired_prefix_ops )
      | M_fuzz r ->
        (* the fuzz report carries no certification-op totals; the summed
           worker finals (exact — see worker_main) stand in for them *)
        let obs_co, obs_ro = observed_cert_ops in
        ( r.Fuzz.r_programs,
          Option.value ~default:0
            (Option.map Cov.distinct_shapes r.Fuzz.r_coverage),
          List.length r.Fuzz.r_findings,
          obs_co,
          obs_ro )
      | M_sweep r ->
        let obs_co, obs_ro = observed_cert_ops in
        ( List.fold_left
            (fun a c -> a + c.Sweep.cr_stats.Sweep.st_execs)
            0 r.Sweep.rs_cells,
          0,
          List.length
            (List.filter
               (fun c -> c.Sweep.cr_verdict = Sweep.V_cert_rejected)
               r.Sweep.rs_cells),
          obs_co,
          obs_ro )
      | M_lint results ->
        ( List.length results,
          0,
          List.length
            (List.filter (fun (_, r) -> not r.Lint.res_race_free) results),
          0,
          0 )
    in
    Progress.observe progress ~done_ ~novel ~findings ~certified_ops
      ~retired_prefix_ops;
    Progress.finish ~novel ~findings progress
  end

(* Drive one fan-out: spawn workers (or replay their shards from the
   cache), pump the protocol, persist fresh shards, audit ranges.  Returns
   the bare pieces — the callers merge and finish: [run_campaign] directly
   for a one-shot campaign, the corpus wave driver once after its last
   round.  [counts_base] offsets the aggregated heartbeat counters, so a
   wave's progress stream continues from where the previous wave ended. *)
let drive_single ?exe ?cache ?(progress = Progress.null) ?kill
    ?(counts_base = (0, 0, 0, 0, 0)) ~workers ~jobs campaign =
  let n = total campaign in
  let workers = max 1 (min workers (max 1 n)) in
  let jobs = max 1 jobs in
  match
    match exe with Some e -> Some e | None -> locate_exe ()
  with
  | None -> Error "cannot locate the c11test worker binary"
  | Some exe when not (Sys.file_exists exe) ->
    Error (Printf.sprintf "worker binary %s does not exist" exe)
  | Some exe ->
    (* a worker that died before reading its spec must not kill us with
       SIGPIPE mid-write *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        match old_sigpipe with
        | Some b -> Sys.set_signal Sys.sigpipe b
        | None -> ())
      (fun () ->
        let spawned = ref 0 in
        (* cache replay first: a hit shard spawns no process at all *)
        let cached = Array.make workers None in
        (match cache with
        | None -> ()
        | Some c ->
          for w = 0 to workers - 1 do
            let key = cache_key ~exe ~workers ~jobs ~worker:w campaign in
            cached.(w) <- Cache.lookup c ~key
          done);
        let states =
          Array.init workers (fun w ->
              {
                w_index = w;
                w_pid = -1;
                w_fd = None;
                w_buf = Buffer.create 256;
                w_payload = cached.(w);
                w_attempt = 0;
                w_failed = false;
                w_counts = (0, 0, 0, 0, 0);
              })
        in
        let spec_of st =
          {
            sp_campaign = campaign;
            sp_worker = st.w_index;
            sp_workers = workers;
            sp_jobs = jobs;
            sp_progress = Progress.enabled progress;
            sp_attempt = st.w_attempt;
            sp_kill = kill;
          }
        in
        let launch st =
          st.w_attempt <- st.w_attempt + 1;
          Buffer.clear st.w_buf;
          incr spawned;
          let pid, fd = spawn ~exe (spec_of st) in
          st.w_pid <- pid;
          st.w_fd <- Some fd
        in
        Array.iter (fun st -> if st.w_payload = None then launch st) states;
        (* aggregate the workers' cumulative heartbeat counts into the
           campaign's single progress stream *)
        let on_counts () =
          if Progress.enabled progress then begin
            let bd, bn, bf, bc, br = counts_base in
            let d = ref bd and nv = ref bn and f = ref bf in
            let co = ref bc and ro = ref br in
            Array.iter
              (fun st ->
                let dd, nn, ff, cc, rr = st.w_counts in
                d := !d + dd;
                nv := !nv + nn;
                f := !f + ff;
                co := !co + cc;
                ro := !ro + rr)
              states;
            Progress.observe progress ~done_:!d ~novel:!nv ~findings:!f
              ~certified_ops:!co ~retired_prefix_ops:!ro
          end
        in
        let chunk = Bytes.create 65536 in
        let on_exit st =
          (match st.w_fd with
          | Some fd -> Unix.close fd
          | None -> ());
          st.w_fd <- None;
          (try ignore (Unix.waitpid [] st.w_pid) with Unix.Unix_error _ -> ());
          if st.w_payload = None then
            (* crashed shard range: re-claim once, then record the loss *)
            if st.w_attempt < 2 then launch st else st.w_failed <- true
        in
        let rec drive () =
          let live =
            Array.to_list states
            |> List.filter_map (fun st ->
                   Option.map (fun fd -> (fd, st)) st.w_fd)
          in
          if live <> [] then begin
            (match Unix.select (List.map fst live) [] [] (-1.0) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | ready, _, _ ->
              List.iter
                (fun (fd, st) ->
                  if List.mem fd ready then
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | 0 ->
                      drain_lines st ~on_counts;
                      on_exit st
                    | nread ->
                      Buffer.add_subbytes st.w_buf chunk 0 nread;
                      drain_lines st ~on_counts
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
                live);
            drive ()
          end
        in
        drive ();
        (* persist fresh shards (cache hits are already on disk) *)
        (match cache with
        | None -> ()
        | Some c ->
          Array.iter
            (fun st ->
              match st.w_payload with
              | Some p when cached.(st.w_index) = None ->
                let key =
                  cache_key ~exe ~workers ~jobs ~worker:st.w_index campaign
                in
                Cache.store c ~key p
              | _ -> ())
            states);
        let present =
          Array.to_list states
          |> List.filter_map (fun st ->
                 Option.map (fun p -> (st.w_index, p)) st.w_payload)
        in
        let audit =
          Par.Merge.check_ranges ~workers ~total:n (List.map fst present)
        in
        let executions_run =
          Array.fold_left
            (fun acc st ->
              if st.w_payload <> None && cached.(st.w_index) = None then
                acc + Par.shard_size ~jobs:workers ~total:n ~worker:st.w_index
              else acc)
            0 states
        in
        if present = [] && n > 0 then
          Error
            (Printf.sprintf
               "no worker produced a shard (%d spawned); is %s a c11test \
                binary?"
               !spawned exe)
        else
          let observed_cert_ops =
            Array.fold_left
              (fun (co, ro) st ->
                let _, _, _, c, r = st.w_counts in
                (co + c, ro + r))
              (0, 0) states
          in
          Ok
            ( List.map snd present,
              {
                st_workers = workers;
                st_spawned = !spawned;
                st_failed = audit.Par.Merge.missing;
                st_executions_run = executions_run;
                st_cache = Option.map Cache.stats cache;
              },
              observed_cert_ops ))

(* Corpus wave driver: one ranged Fuzz_c fan-out per admission round, the
   round barrier between waves, a single merge and [final] record at the
   end — the multi-process mirror of the in-process round loop in
   {!Fuzz.campaign}, built on the same {!Fuzz.corpus_absorb} state
   machine, so admissions (and therefore every subsequent round's
   programs) are byte-identical to [-j N]. *)
let run_corpus_waves ?exe ?cache ?(progress = Progress.null) ?kill ~workers
    ~jobs ~cfg ~coverage plan0 =
  let n = cfg.Fuzz.c_programs in
  let st = Fuzz.corpus_state plan0 in
  let payloads = ref [] in
  let wused = ref 1 in
  let spawned = ref 0 in
  let failed = ref [] in
  let execs = ref 0 in
  let co = ref 0 and ro = ref 0 in
  let done_base = ref 0 in
  let err = ref None in
  let lo = ref 0 in
  while !lo < n && !err = None do
    let hi = min n (!lo + plan0.Corpus.pl_round) in
    let plan_r =
      { plan0 with Corpus.pl_entries = Fuzz.corpus_entries st }
    in
    let campaign_r =
      Fuzz_c
        {
          cfg = { cfg with Fuzz.c_corpus = Some plan_r };
          coverage;
          range = Some (!lo, hi);
        }
    in
    (match
       drive_single ?exe ?cache ~progress ?kill
         ~counts_base:(!done_base, 0, 0, !co, !ro)
         ~workers ~jobs campaign_r
     with
    | Error e -> err := Some e
    | Ok (ps, stats, (c, r)) -> (
      match fuzz_shards ps with
      | exception Payload_mismatch ->
        err := Some "shard payload does not match the campaign kind"
      | shards ->
        ignore (Fuzz.corpus_absorb st shards);
        payloads := !payloads @ ps;
        wused := max !wused stats.st_workers;
        spawned := !spawned + stats.st_spawned;
        failed := !failed @ stats.st_failed;
        execs := !execs + stats.st_executions_run;
        co := !co + c;
        ro := !ro + r;
        done_base := !done_base + (hi - !lo)));
    lo := hi
  done;
  match !err with
  | Some e -> Error e
  | None ->
    let report =
      Fuzz.merge_shard_list
        ~admitted:(Fuzz.corpus_admitted st)
        cfg
        (fuzz_shards !payloads)
    in
    let merged = M_fuzz report in
    finish_progress progress merged ~observed_cert_ops:(!co, !ro);
    Ok
      ( merged,
        {
          st_workers = !wused;
          st_spawned = !spawned;
          st_failed = List.sort_uniq compare !failed;
          st_executions_run = !execs;
          st_cache = Option.map Cache.stats cache;
        } )

let run_campaign ?exe ?cache ?(progress = Progress.null) ?kill ~workers ~jobs
    campaign =
  match campaign with
  | Fuzz_c { cfg; coverage = _; range = None }
    when cfg.Fuzz.c_corpus <> None && cfg.Fuzz.c_programs > 0 ->
    let plan0 = Option.get cfg.Fuzz.c_corpus in
    (* corpus guidance needs coverage fingerprints for novelty — forced
       on, exactly as the in-process {!Fuzz.campaign} does *)
    run_corpus_waves ?exe ?cache ~progress ?kill ~workers ~jobs ~cfg
      ~coverage:true plan0
  | _ -> (
    match
      drive_single ?exe ?cache ~progress ?kill ~workers ~jobs campaign
    with
    | Error e -> Error e
    | Ok (payloads, stats, observed_cert_ops) -> (
      match merge_payloads campaign payloads with
      | exception Payload_mismatch ->
        Error "shard payload does not match the campaign kind"
      | merged ->
        finish_progress progress merged ~observed_cert_ops;
        Ok (merged, stats)))
