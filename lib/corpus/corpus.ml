(* C11corpus — see corpus.mli for the contract. *)

type entry = {
  en_digest : string;
  en_index : int;
  en_seed : int64;
  en_keys : string list;
  en_program : Progir.program;
}

let schema = "c11corpus-v1"

let entry_to_json e =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("digest", Jsonx.String e.en_digest);
      ("index", Jsonx.Int e.en_index);
      ("seed", Jsonx.String (Printf.sprintf "0x%Lx" e.en_seed));
      ("keys", Jsonx.List (List.map (fun k -> Jsonx.String k) e.en_keys));
      ("program", Progir.program_to_json e.en_program);
    ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let str_field k =
    match Option.bind (Jsonx.member k j) Jsonx.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "entry: missing string field %S" k)
  in
  let* sch = str_field "schema" in
  if sch <> schema then Error (Printf.sprintf "entry: unexpected schema %S" sch)
  else
    let* digest = str_field "digest" in
    let* index =
      match Option.bind (Jsonx.member "index" j) Jsonx.to_int with
      | Some i -> Ok i
      | None -> Error "entry: missing integer field \"index\""
    in
    let* seed =
      let* s = str_field "seed" in
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "entry: bad seed %S" s)
    in
    let* keys =
      match Option.bind (Jsonx.member "keys" j) Jsonx.to_list with
      | None -> Error "entry: missing keys"
      | Some ks ->
        List.fold_left
          (fun acc kj ->
            let* ks = acc in
            match Jsonx.to_str kj with
            | Some k -> Ok (k :: ks)
            | None -> Error "entry: non-string key")
          (Ok []) ks
        |> Result.map List.rev
    in
    let* program =
      match Jsonx.member "program" j with
      | Some pj -> Progir.program_of_json pj
      | None -> Error "entry: missing program"
    in
    Ok { en_digest = digest; en_index = index; en_seed = seed; en_keys = keys;
         en_program = program }

(* ------------------------------------------------------------------ *)
(* Storage *)

type t = { t_dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  match
    mkdir_p dir;
    (* probe writability now: an unwritable corpus is a usage error the
       caller reports before the campaign starts, not after *)
    let probe = Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ())) in
    let oc = open_out probe in
    close_out oc;
    Sys.remove probe
  with
  | () -> Ok { t_dir = dir }
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))

let dir t = t.t_dir

let path_of t digest = Filename.concat t.t_dir (digest ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t =
  let names =
    match Sys.readdir t.t_dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  let names =
    List.filter (fun n -> Filename.check_suffix n ".json") names
    |> List.sort String.compare
  in
  List.filter_map
    (fun name ->
      let path = Filename.concat t.t_dir name in
      let parsed =
        match Jsonx.parse (read_file path) with
        | Ok j -> entry_of_json j
        | Error e -> Error e
        | exception Sys_error msg -> Error msg
      in
      let parsed =
        (* the filename is the storage key; a mismatch means the entry
           was renamed or tampered with — treat it as corrupt *)
        match parsed with
        | Ok e when Filename.chop_suffix name ".json" <> e.en_digest ->
          Error "digest does not match filename"
        | r -> r
      in
      match parsed with
      | Ok e -> Some e
      | Error msg ->
        Printf.eprintf "c11test: corpus: skipping corrupt entry %s (%s); deleting\n%!"
          name msg;
        (try Sys.remove path with Sys_error _ -> ());
        None)
    names

let store t e =
  let path = path_of t e.en_digest in
  if Sys.file_exists path then false
  else begin
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let body = Jsonx.to_string (entry_to_json e) ^ "\n" in
    let oc = open_out_bin tmp in
    (match
       output_string oc body;
       close_out oc
     with
    | () -> Sys.rename tmp path
    | exception ex ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise ex);
    true
  end

(* ------------------------------------------------------------------ *)
(* Mutation *)

open Progir

(* Memory-order rings per access category, in lattice order; a rotation
   steps to the next strictly-valid order for that category and wraps —
   "rotate along the lattice" without ever producing an illegal
   combination (no release loads, no acquire stores). *)
let ring_load = [ Memorder.Relaxed; Memorder.Consume; Memorder.Acquire; Memorder.Seq_cst ]
let ring_store = [ Memorder.Relaxed; Memorder.Release; Memorder.Seq_cst ]

let ring_rmw =
  [ Memorder.Relaxed; Memorder.Acquire; Memorder.Release; Memorder.Acq_rel;
    Memorder.Seq_cst ]

let ring_fence = [ Memorder.Acquire; Memorder.Release; Memorder.Acq_rel; Memorder.Seq_cst ]

let rotate_in ring mo =
  let rec go = function
    | [] -> List.hd ring
    | m :: rest -> if Memorder.equal m mo then (match rest with [] -> List.hd ring | n :: _ -> n) else go rest
  in
  go ring

let rotate_op = function
  | Load f -> Some (Load { f with mo = rotate_in ring_load f.mo })
  | Store f -> Some (Store { f with mo = rotate_in ring_store f.mo })
  | Add f -> Some (Add { f with mo = rotate_in ring_rmw f.mo })
  | Cas f -> Some (Cas { f with mo = rotate_in ring_rmw f.mo })
  | Xchg f -> Some (Xchg { f with mo = rotate_in ring_rmw f.mo })
  | Fence mo -> Some (Fence (rotate_in ring_fence mo))
  | Na_read _ | Na_write _ | Reuse_load _ | Reuse_store _ | Lock _ | Unlock _ | Yield ->
    None

(* Threads with at least one op, as indices. *)
let busy_threads p =
  List.filter
    (fun t -> Array.length p.p_threads.(t) > 0)
    (List.init (Array.length p.p_threads) Fun.id)

let pick_nth rng l = List.nth l (Rng.int rng (List.length l))

let drop_unit rng p =
  match busy_threads p with
  | [] -> p
  | ts ->
    let t = pick_nth rng ts in
    let unit = pick_nth rng (units_of p.p_threads.(t)) in
    with_thread p t (remove_indices p.p_threads.(t) unit)

let dup_unit rng p =
  match busy_threads p with
  | [] -> p
  | ts ->
    let t = pick_nth rng ts in
    let ops = p.p_threads.(t) in
    let unit = pick_nth rng (units_of ops) in
    (* a single op duplicates in place; a lock/unlock pair duplicates
       with its whole region right after itself, where the held-mutex
       stack equals the stack at its start, preserving the ordered
       discipline *)
    let lo = List.fold_left min max_int unit in
    let hi = List.fold_left max (-1) unit in
    let seg = Array.sub ops lo (hi - lo + 1) in
    let out =
      Array.concat [ Array.sub ops 0 (hi + 1); seg;
                     Array.sub ops (hi + 1) (Array.length ops - hi - 1) ]
    in
    with_thread p t out

let rotate_mo rng p =
  let sites =
    List.concat_map
      (fun t ->
        List.filter_map
          (fun i -> Option.map (fun op' -> (t, i, op')) (rotate_op p.p_threads.(t).(i)))
          (List.init (Array.length p.p_threads.(t)) Fun.id))
      (List.init (Array.length p.p_threads) Fun.id)
  in
  match sites with
  | [] -> p
  | _ ->
    let t, i, op' = pick_nth rng sites in
    let ops = Array.copy p.p_threads.(t) in
    ops.(i) <- op';
    with_thread p t ops

let swap_locs rng p =
  let swap_atomic a b =
    let m loc = if loc = a then b else if loc = b then a else loc in
    {
      p with
      p_threads =
        Array.map
          (Array.map (function
            | Load f -> Load { f with loc = m f.loc }
            | Store f -> Store { f with loc = m f.loc }
            | Add f -> Add { f with loc = m f.loc }
            | Cas f -> Cas { f with loc = m f.loc }
            | Xchg f -> Xchg { f with loc = m f.loc }
            | Reuse_load f -> Reuse_load { loc = m f.loc }
            | Reuse_store f -> Reuse_store { f with loc = m f.loc }
            | (Na_read _ | Na_write _ | Fence _ | Lock _ | Unlock _ | Yield) as o -> o))
          p.p_threads;
    }
  in
  let swap_na a b =
    let m na = if na = a then b else if na = b then a else na in
    {
      p with
      p_threads =
        Array.map
          (Array.map (function
            | Na_read f -> Na_read { na = m f.na }
            | Na_write f -> Na_write { f with na = m f.na }
            | o -> o))
          p.p_threads;
    }
  in
  if p.p_atomic_locs >= 2 then begin
    let a = Rng.int rng p.p_atomic_locs in
    let b = (a + 1 + Rng.int rng (p.p_atomic_locs - 1)) mod p.p_atomic_locs in
    swap_atomic a b
  end
  else if p.p_na_locs >= 2 then begin
    let a = Rng.int rng p.p_na_locs in
    let b = (a + 1 + Rng.int rng (p.p_na_locs - 1)) mod p.p_na_locs in
    swap_na a b
  end
  else p

let mutate ~rng p =
  let steps = 1 + Rng.int rng 3 in
  let cur = ref p in
  for _ = 1 to steps do
    (* inapplicable operators leave the program unchanged but still
       consume the same rng draws, so the schedule stays a pure function
       of the stream *)
    match Rng.int rng 100 with
    | r when r < 40 -> cur := rotate_mo rng !cur
    | r when r < 60 -> cur := drop_unit rng !cur
    | r when r < 80 -> cur := dup_unit rng !cur
    | _ -> cur := swap_locs rng !cur
  done;
  !cur

(* ------------------------------------------------------------------ *)
(* Plan *)

type plan = { pl_entries : entry list; pl_mutate_pct : int; pl_round : int }

let default_mutate_pct = 60
let default_round = 250

let plan ?(mutate_pct = default_mutate_pct) ?(round = default_round) entries =
  if mutate_pct < 0 || mutate_pct > 100 then
    invalid_arg "Corpus.plan: mutate_pct must be in [0,100]";
  if round < 1 then invalid_arg "Corpus.plan: round must be >= 1";
  { pl_entries = entries; pl_mutate_pct = mutate_pct; pl_round = round }

let plan_digest pl =
  (* digest the serialized programs, not just their shape digests: two
     different programs can share a shape, and the cache key must change
     whenever any program mutation source changes *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pct=%d;round=%d" pl.pl_mutate_pct pl.pl_round);
  List.iter
    (fun e ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf e.en_digest;
      Buffer.add_char buf ':';
      Buffer.add_string buf (Jsonx.to_string (entry_to_json e)))
    pl.pl_entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))
