(** C11corpus — the persistent on-disk corpus behind coverage-guided
    fuzzing ([c11test fuzz --corpus DIR]).

    A corpus entry is a generated (or mutated) {!Progir.program} that hit
    a coverage-novel key — a new execution-shape digest, race site or
    certifier violation key ({!Cov.summary_keys} namespace) — together
    with the program seed its executions replay from and the keys it
    contributed.  Entries are stored one JSON document per file
    ([<shape-digest>.json], schema [c11corpus-v1]) with an atomic
    temp-file + rename write, so concurrent campaigns over one corpus
    directory never observe a torn entry.

    Corruption contract: a file that fails to parse or validate is
    skipped, deleted and noted on stderr — never a crash ({!load}).

    Determinism contract: everything here is a pure function of its
    inputs.  {!mutate} draws from the caller's {!Rng.t} only; {!load}
    returns entries in ascending digest order, so a freshly loaded
    snapshot is byte-identical across runs and machines. *)

(** One admitted program.  [en_digest] is the execution-shape digest the
    admitting execution produced (also the storage key); [en_keys] the
    coverage keys it contributed, in {!Cov.summary_keys}'s prefixed
    namespace; [en_seed] the program seed ([Rng.substream] of it gives
    the execution seeds, exactly as for a generated program). *)
type entry = {
  en_digest : string;
  en_index : int;  (** global program index at admission *)
  en_seed : int64;
  en_keys : string list;
  en_program : Progir.program;
}

val entry_to_json : entry -> Jsonx.t

(** Parse an entry document; [Error] on missing/ill-typed fields, schema
    mismatch or a program failing {!Progir.validate}. *)
val entry_of_json : Jsonx.t -> (entry, string) result

(** {1 Storage} *)

type t

(** Create [dir] (and parents) if needed and probe it is writable;
    [Error msg] otherwise — the CLI turns that into a usage error
    (exit 2) before any campaign work starts, mirroring the result
    cache's contract. *)
val open_dir : string -> (t, string) result

val dir : t -> string

(** Load every entry, ascending digest order.  Corrupt entries (parse
    failure, schema/digest mismatch, invalid program) are skipped,
    deleted and noted on stderr. *)
val load : t -> entry list

(** Persist one entry under its digest ([false] when that digest is
    already stored — first admission wins).  Atomic temp + rename. *)
val store : t -> entry -> bool

(** {1 Mutation}

    Validity-preserving program edits over the shrinker's op-unit
    machinery ({!Progir.units_of}): drop a unit, duplicate a unit (a
    lock/unlock pair is duplicated with its whole region, immediately
    after it — the held-mutex stack there equals the stack at its start,
    so the ordered discipline is preserved), rotate one memory order
    along the {!Memorder} lattice within its access category, or swap
    two locations.  Every result satisfies {!Progir.validate}. *)

(** [mutate ~rng p] applies 1–3 mutation steps drawn from [rng].  Pure in
    [rng]'s stream: the same rng state yields the same program. *)
val mutate : rng:Rng.t -> Progir.program -> Progir.program

(** {1 Campaign plan}

    What a corpus-guided campaign carries into its shards: the entry
    snapshot mutation draws from, the per-round admission barrier length
    and the mutate-vs-fresh percentage.  Plain data — survives [Marshal]
    to worker processes. *)

type plan = {
  pl_entries : entry list;
      (** the snapshot mutation draws from (round [r] sees the initial
          snapshot plus every entry admitted in rounds [< r]) *)
  pl_mutate_pct : int;  (** percent of programs mutated from the corpus *)
  pl_round : int;  (** programs per admission round (>= 1) *)
}

val default_mutate_pct : int
val default_round : int

val plan : ?mutate_pct:int -> ?round:int -> entry list -> plan

(** Content fingerprint of a plan (entries' digests {e and} serialized
    programs, schedule knobs) — the corpus component of the fabric's
    cache key. *)
val plan_digest : plan -> string
