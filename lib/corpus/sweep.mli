(** C11sweep — exhaustive memory-order sweep families.

    A {e family} is a parameterised litmus pattern (seqlock, rwlock,
    Dekker, ring buffer) instantiated at every point of its memory-order
    matrix: each {e cell} fixes one memory order per parameter and is run
    [iters] times through the engine with the streaming certifier on,
    then statically analysed by {!Lint} over its straight-line
    {!Progir.program} model.  The rendered verdict matrix reproduces the
    memory-order studies the C11 testing literature reports (which
    order combinations of a seqlock tear, which rwlock shapes race) as a
    single reproducible artifact.

    Determinism contract: execution [k] of cell [c] is seeded
    [Rng.substream (Rng.substream seed ~index:c) ~index:k], a pure
    function of the (family, seed, flattened index); shards accumulate
    per-cell counters, which are additive, so any leapfrog sharding of
    the flattened index space merges to the same result — [-j N] and
    [--workers N] are byte-identical to sequential. *)

(** One matrix cell. *)
type cell = {
  cl_index : int;  (** position in [fa_cells], the NDJSON cell key *)
  cl_id : string;  (** ["first=relaxed,second=acquire,fence=none"] *)
  cl_params : (string * string) list;  (** ordered parameter bindings *)
  cl_model : Progir.program;  (** straight-line model for {!Lint} *)
  cl_run : unit -> unit;  (** the DSL closure the engine executes *)
}

type family = {
  fa_name : string;
  fa_desc : string;
  fa_row : string;  (** parameter rendered as matrix rows *)
  fa_col : string;  (** parameter rendered as matrix columns *)
  fa_cells : cell list;
}

val families : family list
val find : string -> family option

(** {1 Running} *)

(** Additive per-cell counters over [iters] executions. *)
type cell_stats = {
  st_execs : int;
  st_racy : int;  (** executions with a data race *)
  st_torn : int;  (** executions with an assertion failure *)
  st_cert_rejected : int;  (** executions the certifier rejected *)
  st_deadlocks : int;
}

(** Cell classification, in priority order: a certifier rejection
    (engine/certifier disagreement — a genuine finding) dominates a data
    race, which dominates a torn assertion, which dominates clean. *)
type verdict = V_cert_rejected | V_racy | V_torn | V_clean

val verdict_of_stats : cell_stats -> verdict
val verdict_name : verdict -> string
val verdict_letter : verdict -> char

(** Flattened index-space size: cells x iters. *)
val total : family:family -> iters:int -> int

(** Plain data (no closures) — survives [Marshal] to the multi-process
    fabric's workers and the result cache. *)
type shard

(** Run the flattened indices [start, start+stride, ...] below
    [total ~family ~iters]; index [t] is execution [t / cells] of cell
    [t mod cells]. *)
val run_shard :
  ?progress:Progress.t ->
  family:family ->
  iters:int ->
  seed:int64 ->
  start:int ->
  stride:int ->
  unit ->
  shard

(** {1 Results} *)

type cell_result = {
  cr_index : int;
  cr_id : string;
  cr_params : (string * string) list;
  cr_stats : cell_stats;
  cr_lint_rules : string list;  (** static rule hits on the cell model *)
  cr_verdict : verdict;
}

type result = {
  rs_family : string;
  rs_row : string;
  rs_col : string;
  rs_iters : int;
  rs_seed : int64;
  rs_cells : cell_result list;  (** ascending [cr_index] *)
}

(** Sum the shards' counters cell-wise (order-independent), lint each
    cell model, classify. *)
val merge : family:family -> iters:int -> seed:int64 -> shard list -> result

(** [1] when any cell's verdict is [V_cert_rejected] (an
    engine/certifier disagreement), [0] otherwise — racy/torn cells are
    the matrix's expected content, not findings. *)
val exit_code : result -> int

(** {1 Serialisation — the [c11sweep-v1] artifact}

    One [campaign] record followed by one [cell] record per cell. *)

val result_to_ndjson : result -> Jsonx.t list

(** Parse back (any line order; exactly one [campaign] record; cell
    count must match) — the read side of [c11test report]. *)
val result_of_ndjson : Jsonx.t list -> (result, string) Stdlib.result

val result_to_json : result -> Jsonx.t

(** The rendered verdict matrix: one row x col grid per assignment of
    the remaining parameters, plus a legend. *)
val pp_matrix : Format.formatter -> result -> unit
