(* C11sweep — see sweep.mli for the contract. *)

type cell = {
  cl_index : int;
  cl_id : string;
  cl_params : (string * string) list;
  cl_model : Progir.program;
  cl_run : unit -> unit;
}

type family = {
  fa_name : string;
  fa_desc : string;
  fa_row : string;
  fa_col : string;
  fa_cells : cell list;
}

(* ------------------------------------------------------------------ *)
(* Families *)

let mo_name = Memorder.to_string

let id_of params =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) params)

let model ~atomic_locs ~na_locs threads =
  {
    Progir.p_seed = 0L;
    p_profile = Progir.Mixed;
    p_atomic_locs = atomic_locs;
    p_na_locs = na_locs;
    p_mutexes = 0;
    (* main spawns the worker threads and has an empty body of its own *)
    p_threads = Array.of_list ([||] :: threads);
  }

let index_cells cells = List.mapi (fun i c -> { c with cl_index = i }) cells

(* --- seqlock ------------------------------------------------------- *)
(* Writer publishes two generations behind an odd/even sequence counter
   (relaxed counter bump, release fence, relaxed data stores, release
   counter store — the classic fence-based seqlock writer).  Reader
   speculates: first counter read at [first], relaxed data reads, an
   optional validation fence, second counter read at [second]; a
   validated pair with mismatched data is a torn read.  Data lives in
   relaxed atomics: the C11 seqlock's speculative reads are undefined on
   plain memory, and an all-racy matrix would show nothing. *)

let seqlock_run ~first ~second ~fence () =
  let open C11 in
  let seq = Atomic.make ~name:"seq" 0 in
  let key = Atomic.make ~name:"key" 0 in
  let value = Atomic.make ~name:"value" 0 in
  let writer () =
    for g = 1 to 2 do
      let c = Atomic.load ~mo:Memorder.Relaxed seq in
      Atomic.store ~mo:Memorder.Relaxed seq (c + 1);
      Fence.release ();
      Atomic.store ~mo:Memorder.Relaxed key g;
      Atomic.store ~mo:Memorder.Relaxed value g;
      Atomic.store ~mo:Memorder.Release seq (c + 2)
    done
  in
  let reader () =
    let tries = ref 0 in
    let stop = ref false in
    while (not !stop) && !tries < 3 do
      incr tries;
      let s1 = Atomic.load ~mo:first seq in
      if s1 land 1 = 0 then begin
        let k = Atomic.load ~mo:Memorder.Relaxed key in
        let v = Atomic.load ~mo:Memorder.Relaxed value in
        (match fence with None -> () | Some mo -> Fence.fence mo);
        let s2 = Atomic.load ~mo:second seq in
        if s1 = s2 then begin
          stop := true;
          assert_that (k = v) "torn read"
        end
      end
    done
  in
  let w = Thread.spawn writer in
  let r = Thread.spawn reader in
  Thread.join w;
  Thread.join r

let seqlock_model ~first ~second ~fence =
  let writer =
    [|
      Progir.Load { loc = 0; mo = Memorder.Relaxed };
      Progir.Store { loc = 0; mo = Memorder.Relaxed; value = 1 };
      Progir.Fence Memorder.Release;
      Progir.Store { loc = 1; mo = Memorder.Relaxed; value = 1 };
      Progir.Store { loc = 2; mo = Memorder.Relaxed; value = 1 };
      Progir.Store { loc = 0; mo = Memorder.Release; value = 2 };
    |]
  in
  let reader =
    Array.of_list
      ([
         Progir.Load { loc = 0; mo = first };
         Progir.Load { loc = 1; mo = Memorder.Relaxed };
         Progir.Load { loc = 2; mo = Memorder.Relaxed };
       ]
      @ (match fence with None -> [] | Some mo -> [ Progir.Fence mo ])
      @ [ Progir.Load { loc = 0; mo = second } ])
  in
  model ~atomic_locs:3 ~na_locs:0 [ writer; reader ]

let seqlock_family =
  let firsts = [ Memorder.Relaxed; Memorder.Acquire; Memorder.Seq_cst ] in
  let seconds = [ Memorder.Relaxed; Memorder.Acquire; Memorder.Seq_cst ] in
  let fences = [ None; Some Memorder.Acquire; Some Memorder.Seq_cst ] in
  let cells =
    List.concat_map
      (fun fence ->
        List.concat_map
          (fun first ->
            List.map
              (fun second ->
                let params =
                  [
                    ("first", mo_name first);
                    ("second", mo_name second);
                    ( "fence",
                      match fence with None -> "none" | Some mo -> mo_name mo
                    );
                  ]
                in
                {
                  cl_index = 0;
                  cl_id = id_of params;
                  cl_params = params;
                  cl_model = seqlock_model ~first ~second ~fence;
                  cl_run = seqlock_run ~first ~second ~fence;
                })
              seconds)
          firsts)
      fences
  in
  {
    fa_name = "seqlock";
    fa_desc =
      "seqlock reader validation: first/second counter-read orders x \
       validation fence";
    fa_row = "first";
    fa_col = "second";
    fa_cells = index_cells cells;
  }

(* --- rwlock -------------------------------------------------------- *)
(* Two writers contend on a CAS spinlock guarding plain data; the sweep
   varies the lock CAS order and the unlock store order.  A lock without
   acquire or an unlock without release leaves the two critical sections
   unsynchronised — the plain accesses race. *)

let rwlock_run ~lock_mo ~unlock_mo () =
  let open C11 in
  let lock = Atomic.make ~name:"wlock" 0 in
  let data = Nonatomic.make ~name:"data" 0 in
  let writer () =
    let got = ref false in
    let tries = ref 0 in
    while (not !got) && !tries < 4 do
      incr tries;
      if Atomic.compare_exchange ~mo:lock_mo lock ~expected:0 ~desired:1 then
        got := true
      else Thread.yield ()
    done;
    if !got then begin
      Nonatomic.write data (Nonatomic.read data + 1);
      Atomic.store ~mo:unlock_mo lock 0
    end
  in
  let a = Thread.spawn writer in
  let b = Thread.spawn writer in
  Thread.join a;
  Thread.join b

let rwlock_model ~lock_mo ~unlock_mo =
  let writer () =
    [|
      Progir.Cas { loc = 0; mo = lock_mo; expected = 0; desired = 1 };
      Progir.Na_read { na = 0 };
      Progir.Na_write { na = 0; value = 1 };
      Progir.Store { loc = 0; mo = unlock_mo; value = 0 };
    |]
  in
  model ~atomic_locs:1 ~na_locs:1 [ writer (); writer () ]

let rwlock_family =
  let locks = [ Memorder.Relaxed; Memorder.Acquire; Memorder.Seq_cst ] in
  let unlocks = [ Memorder.Relaxed; Memorder.Release; Memorder.Seq_cst ] in
  let cells =
    List.concat_map
      (fun lock_mo ->
        List.map
          (fun unlock_mo ->
            let params =
              [ ("wlock", mo_name lock_mo); ("wunlock", mo_name unlock_mo) ]
            in
            {
              cl_index = 0;
              cl_id = id_of params;
              cl_params = params;
              cl_model = rwlock_model ~lock_mo ~unlock_mo;
              cl_run = rwlock_run ~lock_mo ~unlock_mo;
            })
          unlocks)
      locks
  in
  {
    fa_name = "rwlock";
    fa_desc = "CAS write-lock discipline: lock CAS order x unlock store order";
    fa_row = "wlock";
    fa_col = "wunlock";
    fa_cells = index_cells cells;
  }

(* --- dekker -------------------------------------------------------- *)
(* Store-buffering mutual exclusion: each thread raises its flag, reads
   the other's, and enters the critical section (a plain write) only on
   zero.  Anything short of seq_cst on both sides lets both loads read
   zero — both enter, and the plain writes race. *)

let dekker_run ~store_mo ~load_mo () =
  let open C11 in
  let flag0 = Atomic.make ~name:"flag0" 0 in
  let flag1 = Atomic.make ~name:"flag1" 0 in
  let data = Nonatomic.make ~name:"crit" 0 in
  let side mine theirs v () =
    Atomic.store ~mo:store_mo mine 1;
    if Atomic.load ~mo:load_mo theirs = 0 then Nonatomic.write data v
  in
  let a = Thread.spawn (side flag0 flag1 1) in
  let b = Thread.spawn (side flag1 flag0 2) in
  Thread.join a;
  Thread.join b

let dekker_model ~store_mo ~load_mo =
  let side mine theirs =
    [|
      Progir.Store { loc = mine; mo = store_mo; value = 1 };
      Progir.Load { loc = theirs; mo = load_mo };
      Progir.Na_write { na = 0; value = 1 };
    |]
  in
  model ~atomic_locs:2 ~na_locs:1 [ side 0 1; side 1 0 ]

let dekker_family =
  let stores = [ Memorder.Relaxed; Memorder.Release; Memorder.Seq_cst ] in
  let loads = [ Memorder.Relaxed; Memorder.Acquire; Memorder.Seq_cst ] in
  let cells =
    List.concat_map
      (fun store_mo ->
        List.map
          (fun load_mo ->
            let params =
              [ ("store", mo_name store_mo); ("load", mo_name load_mo) ]
            in
            {
              cl_index = 0;
              cl_id = id_of params;
              cl_params = params;
              cl_model = dekker_model ~store_mo ~load_mo;
              cl_run = dekker_run ~store_mo ~load_mo;
            })
          loads)
      stores
  in
  {
    fa_name = "dekker";
    fa_desc =
      "store-buffering mutual exclusion: flag store order x flag load order";
    fa_row = "store";
    fa_col = "load";
    fa_cells = index_cells cells;
  }

(* --- ring-buffer --------------------------------------------------- *)
(* Single-producer single-consumer publication: the producer fills a
   plain slot and publishes by storing the head index; the consumer
   polls the head and reads the slot.  Publication below release or
   consumption below acquire leaves the slot accesses unsynchronised. *)

let ring_run ~pub_mo ~con_mo () =
  let open C11 in
  let slot = Nonatomic.make ~name:"slot" 0 in
  let head = Atomic.make ~name:"head" 0 in
  let producer () =
    Nonatomic.write slot 42;
    Atomic.store ~mo:pub_mo head 1
  in
  let consumer () =
    if Atomic.load ~mo:con_mo head = 1 then
      assert_that (Nonatomic.read slot = 42) "stale slot"
  in
  let p = Thread.spawn producer in
  let c = Thread.spawn consumer in
  Thread.join p;
  Thread.join c

let ring_model ~pub_mo ~con_mo =
  let producer =
    [|
      Progir.Na_write { na = 0; value = 42 };
      Progir.Store { loc = 0; mo = pub_mo; value = 1 };
    |]
  in
  let consumer =
    [| Progir.Load { loc = 0; mo = con_mo }; Progir.Na_read { na = 0 } |]
  in
  model ~atomic_locs:1 ~na_locs:1 [ producer; consumer ]

let ring_family =
  let pubs = [ Memorder.Relaxed; Memorder.Release; Memorder.Seq_cst ] in
  let cons = [ Memorder.Relaxed; Memorder.Acquire; Memorder.Seq_cst ] in
  let cells =
    List.concat_map
      (fun pub_mo ->
        List.map
          (fun con_mo ->
            let params = [ ("pub", mo_name pub_mo); ("con", mo_name con_mo) ] in
            {
              cl_index = 0;
              cl_id = id_of params;
              cl_params = params;
              cl_model = ring_model ~pub_mo ~con_mo;
              cl_run = ring_run ~pub_mo ~con_mo;
            })
          cons)
      pubs
  in
  {
    fa_name = "ring-buffer";
    fa_desc = "SPSC slot publication: head store order x head load order";
    fa_row = "pub";
    fa_col = "con";
    fa_cells = index_cells cells;
  }

let families = [ seqlock_family; rwlock_family; dekker_family; ring_family ]
let find name = List.find_opt (fun f -> f.fa_name = name) families

(* ------------------------------------------------------------------ *)
(* Running *)

type cell_stats = {
  st_execs : int;
  st_racy : int;
  st_torn : int;
  st_cert_rejected : int;
  st_deadlocks : int;
}

let zero_stats =
  {
    st_execs = 0;
    st_racy = 0;
    st_torn = 0;
    st_cert_rejected = 0;
    st_deadlocks = 0;
  }

let add_stats a b =
  {
    st_execs = a.st_execs + b.st_execs;
    st_racy = a.st_racy + b.st_racy;
    st_torn = a.st_torn + b.st_torn;
    st_cert_rejected = a.st_cert_rejected + b.st_cert_rejected;
    st_deadlocks = a.st_deadlocks + b.st_deadlocks;
  }

type verdict = V_cert_rejected | V_racy | V_torn | V_clean

let verdict_of_stats st =
  if st.st_cert_rejected > 0 then V_cert_rejected
  else if st.st_racy > 0 then V_racy
  else if st.st_torn > 0 then V_torn
  else V_clean

let verdict_name = function
  | V_cert_rejected -> "cert-rejected"
  | V_racy -> "racy"
  | V_torn -> "torn"
  | V_clean -> "clean"

let verdict_of_name = function
  | "cert-rejected" -> Some V_cert_rejected
  | "racy" -> Some V_racy
  | "torn" -> Some V_torn
  | "clean" -> Some V_clean
  | _ -> None

let verdict_letter = function
  | V_cert_rejected -> 'C'
  | V_racy -> 'R'
  | V_torn -> 'T'
  | V_clean -> '.'

let total ~family ~iters = List.length family.fa_cells * iters

type shard = { sw_family : string; sw_stats : cell_stats array }

let engine_config ~seed =
  { Engine.default_config with Engine.max_steps = 200_000; certify = true; seed }

let run_shard ?(progress = Progress.null) ~family ~iters ~seed ~start ~stride
    () =
  if iters < 0 then invalid_arg "Sweep.run_shard: iters must be >= 0";
  let cells = Array.of_list family.fa_cells in
  let ncells = Array.length cells in
  let stats = Array.make ncells zero_stats in
  let stop = ncells * iters in
  let progress_on = Progress.enabled progress in
  let t = ref start in
  while !t < stop do
    let c = !t mod ncells in
    let k = !t / ncells in
    let cell_seed = Rng.substream (Rng.substream seed ~index:c) ~index:k in
    let s =
      Tester.run ~config:(engine_config ~seed:cell_seed) ~iters:1
        cells.(c).cl_run
    in
    stats.(c) <-
      add_stats stats.(c)
        {
          st_execs = s.Tester.executions;
          st_racy = s.Tester.race_executions;
          st_torn = s.Tester.assert_executions;
          st_cert_rejected = s.Tester.cert_rejected_executions;
          st_deadlocks = s.Tester.deadlocks;
        };
    if progress_on then
      Progress.tick progress ~novel:false
        ~finding:(s.Tester.cert_rejected_executions > 0);
    t := !t + stride
  done;
  { sw_family = family.fa_name; sw_stats = stats }

(* ------------------------------------------------------------------ *)
(* Results *)

type cell_result = {
  cr_index : int;
  cr_id : string;
  cr_params : (string * string) list;
  cr_stats : cell_stats;
  cr_lint_rules : string list;
  cr_verdict : verdict;
}

type result = {
  rs_family : string;
  rs_row : string;
  rs_col : string;
  rs_iters : int;
  rs_seed : int64;
  rs_cells : cell_result list;
}

let merge ~family ~iters ~seed shards =
  let ncells = List.length family.fa_cells in
  let stats = Array.make ncells zero_stats in
  List.iter
    (fun sh ->
      if sh.sw_family <> family.fa_name then
        invalid_arg "Sweep.merge: shard from a different family";
      if Array.length sh.sw_stats <> ncells then
        invalid_arg "Sweep.merge: shard cell count mismatch";
      Array.iteri (fun i st -> stats.(i) <- add_stats stats.(i) st) sh.sw_stats)
    shards;
  let cells =
    List.map
      (fun cell ->
        let st = stats.(cell.cl_index) in
        let lres = Lint.analyze cell.cl_model in
        let rules =
          List.sort_uniq String.compare
            (List.map (fun h -> h.Lint.h_rule) lres.Lint.res_hits)
        in
        {
          cr_index = cell.cl_index;
          cr_id = cell.cl_id;
          cr_params = cell.cl_params;
          cr_stats = st;
          cr_lint_rules = rules;
          cr_verdict = verdict_of_stats st;
        })
      family.fa_cells
  in
  {
    rs_family = family.fa_name;
    rs_row = family.fa_row;
    rs_col = family.fa_col;
    rs_iters = iters;
    rs_seed = seed;
    rs_cells = cells;
  }

let exit_code r =
  if List.exists (fun c -> c.cr_verdict = V_cert_rejected) r.rs_cells then 1
  else 0

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let schema = "c11sweep-v1"

let cell_to_json c =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("record", Jsonx.String "cell");
      ("index", Jsonx.Int c.cr_index);
      ("id", Jsonx.String c.cr_id);
      ( "params",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.String v)) c.cr_params) );
      ("execs", Jsonx.Int c.cr_stats.st_execs);
      ("racy", Jsonx.Int c.cr_stats.st_racy);
      ("torn", Jsonx.Int c.cr_stats.st_torn);
      ("cert_rejected", Jsonx.Int c.cr_stats.st_cert_rejected);
      ("deadlocks", Jsonx.Int c.cr_stats.st_deadlocks);
      ( "lint_rules",
        Jsonx.List (List.map (fun r -> Jsonx.String r) c.cr_lint_rules) );
      ("verdict", Jsonx.String (verdict_name c.cr_verdict));
    ]

let result_to_ndjson r =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("record", Jsonx.String "campaign");
      ("family", Jsonx.String r.rs_family);
      ("row", Jsonx.String r.rs_row);
      ("col", Jsonx.String r.rs_col);
      ("iters", Jsonx.Int r.rs_iters);
      ("seed", Jsonx.String (Printf.sprintf "0x%Lx" r.rs_seed));
      ("cells", Jsonx.Int (List.length r.rs_cells));
    ]
  :: List.map cell_to_json r.rs_cells

let result_to_json r =
  Jsonx.Obj
    [
      ("family", Jsonx.String r.rs_family);
      ("row", Jsonx.String r.rs_row);
      ("col", Jsonx.String r.rs_col);
      ("iters", Jsonx.Int r.rs_iters);
      ("seed", Jsonx.String (Printf.sprintf "0x%Lx" r.rs_seed));
      ("cells", Jsonx.List (List.map cell_to_json r.rs_cells));
    ]

let result_of_ndjson lines =
  let ( let* ) = Result.bind in
  let str j k =
    match Option.bind (Jsonx.member k j) Jsonx.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "c11sweep-v1: missing string field %S" k)
  in
  let int j k =
    match Option.bind (Jsonx.member k j) Jsonx.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "c11sweep-v1: missing integer field %S" k)
  in
  let parse_cell j =
    let* index = int j "index" in
    let* id = str j "id" in
    let* params =
      match Jsonx.member "params" j with
      | Some (Jsonx.Obj kvs) ->
        List.fold_left
          (fun acc (k, vj) ->
            let* ps = acc in
            match Jsonx.to_str vj with
            | Some v -> Ok ((k, v) :: ps)
            | None -> Error "c11sweep-v1: non-string param value")
          (Ok []) kvs
        |> Result.map List.rev
      | _ -> Error "c11sweep-v1: missing params object"
    in
    let* execs = int j "execs" in
    let* racy = int j "racy" in
    let* torn = int j "torn" in
    let* cert_rejected = int j "cert_rejected" in
    let* deadlocks = int j "deadlocks" in
    let* rules =
      match Option.bind (Jsonx.member "lint_rules" j) Jsonx.to_list with
      | None -> Error "c11sweep-v1: missing lint_rules"
      | Some rs ->
        List.fold_left
          (fun acc rj ->
            let* rs = acc in
            match Jsonx.to_str rj with
            | Some r -> Ok (r :: rs)
            | None -> Error "c11sweep-v1: non-string lint rule")
          (Ok []) rs
        |> Result.map List.rev
    in
    let* verdict =
      let* v = str j "verdict" in
      match verdict_of_name v with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "c11sweep-v1: unknown verdict %S" v)
    in
    Ok
      {
        cr_index = index;
        cr_id = id;
        cr_params = params;
        cr_stats =
          {
            st_execs = execs;
            st_racy = racy;
            st_torn = torn;
            st_cert_rejected = cert_rejected;
            st_deadlocks = deadlocks;
          };
        cr_lint_rules = rules;
        cr_verdict = verdict;
      }
  in
  let* campaign, cells =
    List.fold_left
      (fun acc j ->
        let* campaign, cells = acc in
        let* sch = str j "schema" in
        if sch <> schema then
          Error (Printf.sprintf "c11sweep-v1: unexpected schema %S" sch)
        else
          let* record = str j "record" in
          match record with
          | "campaign" -> (
            match campaign with
            | None -> Ok (Some j, cells)
            | Some _ -> Error "c11sweep-v1: duplicate campaign record")
          | "cell" ->
            let* c = parse_cell j in
            Ok (campaign, c :: cells)
          | r -> Error (Printf.sprintf "c11sweep-v1: unknown record %S" r))
      (Ok (None, []))
      lines
  in
  match campaign with
  | None -> Error "c11sweep-v1: missing campaign record"
  | Some j ->
    let* family = str j "family" in
    let* row = str j "row" in
    let* col = str j "col" in
    let* iters = int j "iters" in
    let* seed =
      let* s = str j "seed" in
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "c11sweep-v1: bad seed %S" s)
    in
    let* ncells = int j "cells" in
    let cells =
      List.sort (fun a b -> compare a.cr_index b.cr_index) (List.rev cells)
    in
    if List.length cells <> ncells then
      Error
        (Printf.sprintf "c11sweep-v1: campaign announces %d cells, found %d"
           ncells (List.length cells))
    else
      Ok
        {
          rs_family = family;
          rs_row = row;
          rs_col = col;
          rs_iters = iters;
          rs_seed = seed;
          rs_cells = cells;
        }

(* ------------------------------------------------------------------ *)
(* Matrix rendering *)

let uniq_in_order xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let pp_matrix fmt r =
  let param c k = try List.assoc k c.cr_params with Not_found -> "?" in
  let rows = uniq_in_order (List.map (fun c -> param c r.rs_row) r.rs_cells) in
  let cols = uniq_in_order (List.map (fun c -> param c r.rs_col) r.rs_cells) in
  let block_of c =
    List.filter (fun (k, _) -> k <> r.rs_row && k <> r.rs_col) c.cr_params
  in
  let blocks = uniq_in_order (List.map block_of r.rs_cells) in
  let width =
    List.fold_left (fun w s -> max w (String.length s)) 7 (rows @ cols)
  in
  Format.fprintf fmt "@[<v>sweep %s (%d iters per cell, seed 0x%Lx)@ "
    r.rs_family r.rs_iters r.rs_seed;
  Format.fprintf fmt "rows: %s; cols: %s@ " r.rs_row r.rs_col;
  List.iter
    (fun block ->
      if block <> [] then Format.fprintf fmt "@ [%s]@ " (id_of block);
      Format.fprintf fmt "%*s" (width + 2) "";
      List.iter (fun c -> Format.fprintf fmt " %*s" width c) cols;
      Format.fprintf fmt "@ ";
      List.iter
        (fun row ->
          Format.fprintf fmt "  %*s" width row;
          List.iter
            (fun col ->
              let v =
                match
                  List.find_opt
                    (fun c ->
                      param c r.rs_row = row
                      && param c r.rs_col = col
                      && block_of c = block)
                    r.rs_cells
                with
                | Some c -> verdict_letter c.cr_verdict
                | None -> '?'
              in
              Format.fprintf fmt " %*s" width (String.make 1 v))
            cols;
          Format.fprintf fmt "@ ")
        rows)
    blocks;
  Format.fprintf fmt "@ legend: . clean  T torn-assert  R racy  C cert-rejected@]"
